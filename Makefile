# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

.PHONY: build test race bench bench-smoke determinism

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench records a benchmark-trajectory point (ns/op, B/op, allocs/op,
# parallel speedup, suite wall time / peak RSS / pool counters) to
# BENCH_PR6.json. Takes a few minutes: every experiment benchmark reruns
# its campaign 3 times, plus one full suite run for telemetry.
bench:
	go run ./cmd/bench -count 3 -out BENCH_PR6.json

# bench-smoke compiles and runs every benchmark for one iteration, so
# benchmarks cannot bit-rot.
bench-smoke:
	go test -run XXX -bench . -benchtime 1x ./...

# determinism diffs representative experiments at -parallel 1 vs 8.
determinism:
	@for id in E4 E12 E13 E16 E19 E20; do \
		go run ./cmd/experiments -id $$id -parallel 1 > /tmp/$$id-p1.txt; \
		go run ./cmd/experiments -id $$id -parallel 8 > /tmp/$$id-p8.txt; \
		diff -u /tmp/$$id-p1.txt /tmp/$$id-p8.txt || exit 1; \
		echo "$$id deterministic"; \
	done
