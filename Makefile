# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

.PHONY: build test race bench bench-smoke determinism cover fuzz-smoke lint live-smoke

# staticcheck is pinned so local runs and CI agree on findings; when the
# binary is absent (offline sandboxes), lint still runs simlint + go vet
# and prints a skip notice instead of failing.
STATICCHECK_VERSION := 2025.1.1
STATICCHECK := $(shell command -v staticcheck 2>/dev/null)

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...
	go test -race -count=1 -run 'Deterministic|Parallel' ./internal/...

# live-smoke exercises the netapi/livenet backend over real loopback
# sockets (a UDP + TLS DNS responder on 127.0.0.1 ephemeral ports) and
# runs the backend conformance suite against simnet and livenet, all
# under the race detector. Hermetic: no external network access.
live-smoke:
	go test -race -count=1 ./internal/netapi/...

# lint runs the repo's own analyzer suite (cmd/simlint: determinism,
# pool-ownership, hot-path, layering, and backend-purity rules), go vet,
# and staticcheck.
# simlint fails on any finding not covered by a //simlint:allow pragma or
# the layering ratchet baseline (internal/lint/layering_baseline.txt).
lint:
	go run ./cmd/simlint ./...
	go vet ./...
ifdef STATICCHECK
	staticcheck ./...
else
	@echo "lint: staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"
endif

# bench records a benchmark-trajectory point (ns/op, B/op, allocs/op,
# parallel speedup, suite wall time / peak RSS / pool counters) to
# BENCH_PR7.json. Takes a few minutes: every experiment benchmark reruns
# its campaign 3 times, plus one full suite run for telemetry.
bench:
	go run ./cmd/bench -count 3 -out BENCH_PR7.json

# cover prints the per-function coverage summary CI publishes.
cover:
	go test -coverprofile=/tmp/cover.out ./...
	go tool cover -func=/tmp/cover.out | tail -20

# fuzz-smoke runs each fuzz target briefly against its seed corpus plus
# fresh mutations; crashes land in testdata/fuzz as regression inputs.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzDecode -fuzztime 10s ./internal/dnsmsg
	go test -run '^$$' -fuzz FuzzDecodeMessage -fuzztime 10s ./internal/tlsmini
	go test -run '^$$' -fuzz FuzzServerRecords -fuzztime 10s ./internal/tlsmini

# bench-smoke compiles and runs every benchmark for one iteration, so
# benchmarks cannot bit-rot.
bench-smoke:
	go test -run XXX -bench . -benchtime 1x ./...

# determinism diffs representative experiments at -parallel 1 vs 8.
determinism:
	@for id in E4 E12 E13 E16 E19 E20 E22 E23 E24 E25 E26 E27; do \
		go run ./cmd/experiments -id $$id -parallel 1 > /tmp/$$id-p1.txt; \
		go run ./cmd/experiments -id $$id -parallel 8 > /tmp/$$id-p8.txt; \
		diff -u /tmp/$$id-p1.txt /tmp/$$id-p8.txt || exit 1; \
		echo "$$id deterministic"; \
	done
