// Command webperf runs the web performance campaign (the paper's
// Selenium+Chromium+DNS-proxy methodology): the Tranco top-10 pages are
// loaded with each DNS transport as the local proxy's upstream, and the
// relative FCP/PLT differences are reported as in Fig. 3 and Fig. 4.
//
// Campaigns execute as sharded parallel campaigns: -parallel N sizes the
// worker pool (default GOMAXPROCS) and scales wall time only — for a
// fixed seed, stdout is byte-identical at any -parallel level (timings
// go to stderr).
//
// Usage:
//
//	webperf [-resolvers N] [-loads N] [-pages N] [-seed N] [-parallel N]
//	        [-fcp] [-plt] [-grid] [-dot-fixed] [-doh3] [-warm-cache]
//	        [-migrate]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	resolvers := flag.Int("resolvers", 6, "resolvers per web campaign (paper: 313)")
	loads := flag.Int("loads", 2, "measured loads per combination (paper: 4)")
	pagesN := flag.Int("pages", 10, "number of Tranco pages")
	seed := flag.Int64("seed", 2022, "simulation seed")
	parallel := flag.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS; affects speed, never results)")
	fcp := flag.Bool("fcp", false, "Fig. 3a FCP CDFs")
	plt := flag.Bool("plt", false, "Fig. 3b PLT CDFs")
	grid := flag.Bool("grid", false, "Fig. 4 vantage-by-page grid")
	dotFixed := flag.Bool("dot-fixed", false, "E12 ablation: DoT proxy bug vs fix")
	doh3 := flag.Bool("doh3", false, "E15: PLT grid with DoH3 baseline")
	warmCache := flag.Bool("warm-cache", false, "E18: PLT grid under a warm shared (stub) cache")
	migrate := flag.Bool("migrate", false, "E26: PLT with a mid-load wifi-to-4g flip (QUIC migration vs TCP reconnect)")
	flag.Parse()

	cfg := experiments.Default()
	cfg.Seed = *seed
	cfg.WebResolvers = *resolvers
	cfg.WebLoads = *loads
	cfg.WebPages = *pagesN
	cfg.Parallelism = *parallel
	if *parallel > 0 {
		runtime.GOMAXPROCS(*parallel)
	}
	runner := experiments.NewRunner(cfg)

	ids := []string{}
	if *fcp {
		ids = append(ids, "E7")
	}
	if *plt {
		ids = append(ids, "E8")
	}
	if *grid {
		ids = append(ids, "E9")
	}
	if *dotFixed {
		ids = append(ids, "E12")
	}
	if *doh3 {
		ids = append(ids, "E15")
	}
	if *warmCache {
		ids = append(ids, "E18")
	}
	if *migrate {
		ids = append(ids, "E26")
	}
	if len(ids) == 0 {
		ids = []string{"E7", "E8", "E9"}
	}
	start := time.Now()
	for _, id := range ids {
		e, _ := experiments.ByID(id)
		out, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	fmt.Fprintf(os.Stderr, "%d reports in %.1fs\n", len(ids), time.Since(start).Seconds())
}
