package main

// The vet-tool mode speaks the go command's unit-checker protocol: for
// each package, `go vet -vettool=simlint` invokes the tool with a single
// JSON .cfg argument describing the compilation unit (file list, import
// map, and export-data locations), expects a facts file to be written to
// VetxOutput, and treats a nonzero exit as findings. simlint uses no
// cross-package facts, so the facts file is always empty; diagnostics go
// to stderr in the usual file:line:col form.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/loader"
)

// vetConfig mirrors the fields of the go command's vet config file that
// simlint consumes.
type vetConfig struct {
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vettoolMain(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "simlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The go command requires the facts file even from fact-free tools.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// simlint's contract covers non-test sources; test variants of a
	// package (ImportPath "p [p.test]" or "p.test") are skipped, as are
	// any _test.go files vet hands us.
	if strings.Contains(cfg.ImportPath, ".test") || strings.Contains(cfg.ImportPath, " [") {
		return 0
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}

	// Export data for every import: map source-level paths through
	// ImportMap onto the package files the compiler produced.
	exports := make(map[string]string, len(cfg.PackageFile)+len(cfg.ImportMap))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for path, canon := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[canon]; ok {
			exports[path] = f
		}
	}

	pkg, err := loader.LoadFiles(cfg.ImportPath, cfg.Dir, goFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	findings, err := lint.Run([]*loader.Package{pkg}, lint.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	base := lint.Baseline{}
	if root, err := moduleRoot(cfg.Dir); err == nil {
		if b, err := lint.ReadBaseline(filepath.Join(root, "internal", "lint", "layering_baseline.txt")); err == nil {
			base = b
		}
	}
	failing, _, _ := lint.ApplyBaseline(findings, base)
	for _, f := range failing {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Rule)
	}
	if len(failing) > 0 {
		return 2
	}
	return 0
}
