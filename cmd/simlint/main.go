// Command simlint runs the repository's analyzer suite (internal/lint):
// six checkers that machine-enforce the determinism, pool-ownership,
// hot-path, and layering invariants. Two modes:
//
// Standalone multichecker (the `make lint` entry point):
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -rules maporder,poolown ./internal/...
//	go run ./cmd/simlint -write-layering-baseline   # ratchet down
//
// Vet tool (per-package, driven by the go command):
//
//	go build -o bin/simlint ./cmd/simlint
//	go vet -vettool=$(pwd)/bin/simlint ./...
//
// Exit status is nonzero when any finding survives //simlint:allow
// pragmas and the layering baseline. Layering findings are ratcheted:
// each protocol package may carry at most the sim.World reference count
// recorded in internal/lint/layering_baseline.txt, so existing debt is
// tolerated while new debt fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

func main() {
	// go vet probes its tool with -V=full, then invokes it with a
	// single *.cfg argument per package.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Println("simlint version 1 (repro analyzer suite)")
		return
	}
	// go vet asks the tool which flags it supports; simlint takes none
	// in vet-tool mode.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vettoolMain(os.Args[1]))
	}
	os.Exit(standaloneMain())
}

func standaloneMain() int {
	var (
		rulesFlag     = flag.String("rules", "", "comma-separated rule subset to run (default: all)")
		baselineFlag  = flag.String("layering-baseline", "", "layering baseline file (default: <module>/internal/lint/layering_baseline.txt)")
		writeBaseline = flag.Bool("write-layering-baseline", false, "rewrite the layering baseline from current findings and exit")
		listRules     = flag.Bool("list", false, "print the rule catalog and exit")
	)
	flag.Parse()

	if *listRules {
		for _, a := range lint.Analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectRules(*rulesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	root, err := moduleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	baselinePath := *baselineFlag
	if baselinePath == "" {
		baselinePath = filepath.Join(root, "internal", "lint", "layering_baseline.txt")
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.LoadModule(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	base, err := lint.ReadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	failing, counts, shrunk := lint.ApplyBaseline(findings, base)

	if *writeBaseline {
		if err := lint.WriteBaseline(baselinePath, counts); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "simlint: wrote %s (%d packages)\n", baselinePath, len(counts))
		// Non-layering findings still fail the run.
		failing = failing[:0]
		for _, f := range findings {
			if f.Rule != lint.Layering.Name {
				failing = append(failing, f)
			}
		}
	}

	printFindings(failing, root)
	if len(shrunk) > 0 && !*writeBaseline {
		fmt.Fprintf(os.Stderr, "simlint: layering debt shrank (%s); ratchet down with -write-layering-baseline\n",
			strings.Join(shrunk, ", "))
	}
	if len(failing) > 0 {
		return 1
	}
	return 0
}

// printFindings emits one line per finding, with paths relative to root
// so output is stable across checkouts.
func printFindings(findings []lint.Finding, root string) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", name, f.Pos.Line, f.Pos.Column, f.Message, f.Rule)
	}
}

// selectRules resolves a comma-separated -rules value against the suite.
func selectRules(csv string) ([]*analysis.Analyzer, error) {
	if csv == "" {
		return lint.Analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range lint.Analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(csv, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, ruleNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func ruleNames() string {
	names := make([]string, len(lint.Analyzers))
	for i, a := range lint.Analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}
