// Command bench runs the repository's benchmark suite and records a
// benchmark-trajectory point as JSON: per-benchmark ns/op, B/op, and
// allocs/op, plus the serial→parallel speedup of the sharded campaign
// benchmarks, plus one full experiment-suite run's wall time, peak RSS,
// and byte-pool hit/miss counters. Committing one BENCH_PR<n>.json per
// performance PR turns "it got faster" into a reviewable series (see
// README "Performance").
//
// Usage:
//
//	go run ./cmd/bench [-count 3] [-bench regexp] [-pkg ./...] [-suite=false] [-out BENCH_PR6.json]
//
// Equivalent to `make bench`. Each benchmark's best run across -count
// repetitions is recorded (minimum ns/op; B/op and allocs/op are
// iteration-count independent).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded point.
type Result struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// Suite is one full run of the 21-experiment suite with resource
// telemetry: wall time, peak RSS, and the byte-pool lease counters (all
// parsed from cmd/experiments' stderr).
type Suite struct {
	Seconds    float64 `json:"seconds"`
	PeakRSSKB  int64   `json:"peak_rss_kb"`
	PoolHits   uint64  `json:"pool_hits"`
	PoolMisses uint64  `json:"pool_misses"`
}

// Trajectory is the file schema.
type Trajectory struct {
	GoVersion  string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Count      int    `json:"count"`
	// Benchmarks maps benchmark name (package-qualified outside the
	// root package) to its best run.
	Benchmarks map[string]Result `json:"benchmarks"`
	// ParallelSpeedup maps experiment id to serial-ns / parallel-ns for
	// the benchmark pairs that exist in both forms (E4, E9).
	ParallelSpeedup map[string]float64 `json:"parallel_speedup"`
	// Suite holds the resource telemetry of one full experiment-suite
	// run (omitted when -suite is disabled or the run fails).
	Suite *Suite `json:"suite,omitempty"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\S+) ns/op(?:\s+(\S+) B/op)?(?:\s+(\S+) allocs/op)?`)
	expID     = regexp.MustCompile(`^(E\d+)`)
	suiteLine = regexp.MustCompile(`(\d+) experiments in ([0-9.]+)s`)
	poolLine  = regexp.MustCompile(`bytepool (\d+) hits (\d+) misses(?:; peak rss (\d+) KB)?`)
)

// runSuite executes the full experiment suite once and parses its
// stderr telemetry. Returns nil when the run fails.
func runSuite() *Suite {
	fmt.Fprintln(os.Stderr, "bench: go run ./cmd/experiments (suite telemetry)")
	cmd := exec.Command("go", "run", "./cmd/experiments")
	var errBuf bytes.Buffer
	cmd.Stdout = nil // reports are byte-stable; only stderr matters here
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: suite run failed: %v\n%s", err, errBuf.String())
		return nil
	}
	s := &Suite{}
	if m := suiteLine.FindStringSubmatch(errBuf.String()); m != nil {
		s.Seconds, _ = strconv.ParseFloat(m[2], 64)
	}
	if m := poolLine.FindStringSubmatch(errBuf.String()); m != nil {
		s.PoolHits, _ = strconv.ParseUint(m[1], 10, 64)
		s.PoolMisses, _ = strconv.ParseUint(m[2], 10, 64)
		if m[3] != "" {
			s.PeakRSSKB, _ = strconv.ParseInt(m[3], 10, 64)
		}
	}
	return s
}

func main() {
	count := flag.Int("count", 3, "benchmark repetitions (best run is recorded)")
	benchRe := flag.String("bench", ".", "benchmark filter regexp passed to go test")
	pkg := flag.String("pkg", "./...", "packages to benchmark")
	out := flag.String("out", "BENCH_PR6.json", "output JSON path")
	suite := flag.Bool("suite", true, "also run the full experiment suite once for wall-time/RSS/pool telemetry")
	flag.Parse()

	args := []string{"test", "-run", "XXX", "-bench", *benchRe, "-benchmem",
		"-count", strconv.Itoa(*count), *pkg}
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: go test failed: %v\n%s", err, buf.String())
		os.Exit(1)
	}

	tr := Trajectory{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Count:      *count,
		Benchmarks: map[string]Result{},
	}
	pkgPrefix := ""
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			// Qualify names outside the root package: "repro/internal/sim"
			// -> "sim/"; the root package "repro" stays unqualified.
			pkgPrefix = ""
			if i := strings.LastIndex(rest, "/"); i >= 0 {
				pkgPrefix = rest[i+1:] + "/"
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := pkgPrefix + strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := Result{NsPerOp: ns}
		if m[3] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if prev, ok := tr.Benchmarks[name]; !ok || r.NsPerOp < prev.NsPerOp {
			tr.Benchmarks[name] = r
		}
	}

	tr.ParallelSpeedup = map[string]float64{}
	for name, serial := range tr.Benchmarks {
		par, ok := tr.Benchmarks[name+"Parallel"]
		if !ok || par.NsPerOp == 0 {
			continue
		}
		// "E4Table1Sizes" -> "E4"
		id := name
		if m := expID.FindStringSubmatch(name); m != nil {
			id = m[1]
		}
		tr.ParallelSpeedup[id] = math.Round(serial.NsPerOp/par.NsPerOp*100) / 100
	}

	if *suite {
		tr.Suite = runSuite()
	}

	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d benchmarks to %s\n", len(tr.Benchmarks), *out)
}
