// Command doqscan reproduces the paper's resolver discovery (§2): a
// ZMap-style Version Negotiation probe of the proposed DoQ ports,
// ALPN-verifying handshakes, and the DoX support funnel ending at the
// verified resolvers (plus a DoH3 support row beyond the paper).
//
// The funnel runs as a sharded parallel campaign: -parallel N sizes the
// worker pool (default GOMAXPROCS) and scales wall time only — for a
// fixed seed, stdout is byte-identical at any -parallel level (timings
// go to stderr).
//
// Usage:
//
//	doqscan [-scale N] [-dist] [-seed N] [-parallel N]
//
// -scale divides the paper's 1216-resolver population (1 = full scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 8, "population scale divisor (1 = paper's 1216 resolvers)")
	dist := flag.Bool("dist", false, "also print the Fig. 1 distribution (E2)")
	seed := flag.Int64("seed", 2022, "simulation seed")
	parallel := flag.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS; affects speed, never results)")
	flag.Parse()

	cfg := experiments.Default()
	cfg.Seed = *seed
	cfg.ScanScale = *scale
	cfg.Parallelism = *parallel
	if *parallel > 0 {
		runtime.GOMAXPROCS(*parallel)
	}
	runner := experiments.NewRunner(cfg)

	ids := []string{"E1"}
	if *dist {
		ids = append(ids, "E2")
	}
	start := time.Now()
	for _, id := range ids {
		e, _ := experiments.ByID(id)
		out, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	fmt.Fprintf(os.Stderr, "%d reports in %.1fs\n", len(ids), time.Since(start).Seconds())
}
