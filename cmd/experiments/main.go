// Command experiments regenerates every table and figure of the paper
// (see DESIGN.md §4 for the experiment index). By default it runs all
// twelve experiments at a fast, shape-preserving scale; -full uses the
// paper's population sizes.
//
// Usage:
//
//	experiments [-full] [-id E4] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "paper-scale campaigns (slow)")
	id := flag.String("id", "", "run a single experiment (e.g. E4)")
	seed := flag.Int64("seed", 0, "override the campaign seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-14s %s\n", e.ID, e.Artifact, e.About)
		}
		return
	}

	cfg := experiments.Default()
	if *full {
		cfg = experiments.Full()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	runner := experiments.NewRunner(cfg)

	run := experiments.All()
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *id)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}
	for _, e := range run {
		start := time.Now()
		out, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s (%s) [%.1fs]\n%s\n", e.ID, e.Artifact, e.About, time.Since(start).Seconds(), out)
	}
}
