// Command experiments regenerates every table and figure of the paper,
// plus the DoH3 sixth-transport artifacts E13–E15, the caching /
// Zipf-workload artifacts E16–E18, the dynamic-link-model artifacts
// E19–E21 (access-network grids and Gilbert–Elliott burst loss), and
// the proxy serving-semantics artifacts E22–E24 (coalescing,
// serve-stale, prefetch; see DESIGN.md §4 for the experiment index). By
// default it runs all twenty-four experiments at a fast,
// shape-preserving scale; -full uses the paper's population sizes.
//
// Campaigns execute as sharded parallel campaigns: -parallel N sizes the
// worker pool (default GOMAXPROCS). Parallelism scales wall time only —
// for a fixed seed, stdout is byte-identical at -parallel 1 and
// -parallel 8 (timings go to stderr).
//
// Usage:
//
//	experiments [-full] [-id E4] [-seed N] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"syscall"
	"time"

	"repro/internal/bytepool"
	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "paper-scale campaigns (slow)")
	id := flag.String("id", "", "run a single experiment (e.g. E4)")
	seed := flag.Int64("seed", 0, "override the campaign seed")
	parallel := flag.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS; affects speed, never results)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-14s %s\n", e.ID, e.Artifact, e.About)
		}
		return
	}

	cfg := experiments.Default()
	if *full {
		cfg = experiments.Full()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Parallelism = *parallel
	if *parallel > 0 {
		// -parallel N is a CPU budget. RunAll nests campaign worker
		// pools inside concurrently running experiments (goroutines, so
		// oversubscription is cheap), and capping GOMAXPROCS is what
		// bounds actual simultaneous execution at N.
		runtime.GOMAXPROCS(*parallel)
	}
	runner := experiments.NewRunner(cfg)

	run := experiments.All()
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *id)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}
	start := time.Now()
	failed := 0
	// Reports stream in input order as they complete, so long -full runs
	// show progress; stdout stays byte-stable at any parallelism.
	results := experiments.RunAllFunc(runner, run, cfg.Parallelism, func(res experiments.Result) {
		e := res.Experiment
		if res.Err != nil {
			// Keep printing the experiments that succeed; their
			// campaigns already ran.
			failed++
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, res.Err)
			return
		}
		fmt.Printf("=== %s — %s (%s)\n%s\n", e.ID, e.Artifact, e.About, res.Output)
	})
	fmt.Fprintf(os.Stderr, "%d experiments in %.1fs\n", len(results), time.Since(start).Seconds())
	// Resource telemetry for cmd/bench (stderr only; stdout stays
	// byte-stable across runs and parallelism).
	hits, misses := bytepool.Stats()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		fmt.Fprintf(os.Stderr, "bytepool %d hits %d misses; peak rss %d KB\n", hits, misses, ru.Maxrss)
	} else {
		fmt.Fprintf(os.Stderr, "bytepool %d hits %d misses\n", hits, misses)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
