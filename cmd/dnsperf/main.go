// Command dnsperf runs the single-query campaign (the paper's DNSPerf
// methodology): cache-warming query, then a measured query on a fresh
// session with TLS Session Resumption, the cached QUIC version and the
// address-validation token.
//
// Campaigns execute as sharded parallel campaigns: -parallel N sizes the
// worker pool (default GOMAXPROCS) and scales wall time only — for a
// fixed seed, stdout is byte-identical at any -parallel level (timings
// go to stderr).
//
// Usage:
//
//	dnsperf [-resolvers N] [-rounds N] [-seed N] [-parallel N]
//	        [-handshake] [-resolve] [-sizes] [-versions]
//	        [-no-resumption] [-zero-rtt] [-doh3] [-workload] [-cached]
//	        [-coalesce] [-serve-stale] [-prefetch]
//	        [-race-transports] [-policy NAME] [-failover]
//	dnsperf -backend live -server <ip[:port]> [-server-name NAME]
//	        [-protocols do53,tcp,dot,doh] [-domain NAME]
//	        [-dot-port N] [-doh-port N] [-insecure]
//
// Without selection flags it prints all four reports. -backend selects
// the netapi backend: "sim" (default) runs the deterministic campaigns;
// "live" sends the same clients' Do53/DoT/DoH queries to a real
// resolver over the operating system's sockets.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	resolvers := flag.Int("resolvers", 48, "verified resolver population (paper: 313)")
	rounds := flag.Int("rounds", 1, "campaign rounds (paper: 84, every 2h for a week)")
	seed := flag.Int64("seed", 2022, "simulation seed")
	parallel := flag.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS; affects speed, never results)")
	handshake := flag.Bool("handshake", false, "Fig. 2a handshake-time matrix")
	resolve := flag.Bool("resolve", false, "Fig. 2b resolve-time matrix")
	sizes := flag.Bool("sizes", false, "Table 1 size medians")
	versions := flag.Bool("versions", false, "§3 version/feature shares")
	noResumption := flag.Bool("no-resumption", false, "E10 ablation: cold sessions")
	zeroRTT := flag.Bool("zero-rtt", false, "E11 ablation: 0-RTT resolvers")
	doh3 := flag.Bool("doh3", false, "E13/E14: sixth-transport (DoH3) sizes and timing")
	workload := flag.Bool("workload", false, "E16: Zipf cache-workload hit-ratio grid")
	cached := flag.Bool("cached", false, "E17: cached vs uncached resolve medians (lossless baseline)")
	coalesce := flag.Bool("coalesce", false, "E22: in-flight query coalescing under aligned stub cohorts")
	serveStale := flag.Bool("serve-stale", false, "E23: RFC 8767 serve-stale availability across an upstream outage")
	prefetch := flag.Bool("prefetch", false, "E24: TTL-expiry prefetch of the Zipf head")
	raceTransports := flag.Bool("race-transports", false, "E25: happy-eyeballs racing ladder under middlebox fault policies")
	policy := flag.String("policy", "", "E25: restrict the middlebox grid to one policy (open, drop-udp-853, reject-udp-853, blackhole-udp, rst-tcp-853); implies -race-transports")
	failover := flag.Bool("failover", false, "E27: multi-upstream failover through a primary-resolver outage")
	backend := flag.String("backend", "sim", "netapi backend: sim (deterministic campaigns) or live (real sockets)")
	server := flag.String("server", "", "live target resolver, ip or ip:port (required with -backend live)")
	serverName := flag.String("server-name", "", "live TLS server name (default: the server address)")
	protocols := flag.String("protocols", "do53,tcp,dot", "live transports to measure (do53,tcp,dot,doh)")
	domain := flag.String("domain", "example.com", "live query name")
	dotPort := flag.Uint("dot-port", 853, "live DoT port")
	dohPort := flag.Uint("doh-port", 443, "live DoH port")
	insecure := flag.Bool("insecure", false, "live: skip TLS certificate verification")
	flag.Parse()

	switch *backend {
	case "sim":
	case "live":
		if *server == "" {
			fmt.Fprintln(os.Stderr, "dnsperf: -backend live requires -server")
			os.Exit(2)
		}
		os.Exit(runLive(*server, *serverName, *protocols, *domain,
			uint16(*dotPort), uint16(*dohPort), *insecure, *seed))
	default:
		fmt.Fprintf(os.Stderr, "dnsperf: unknown -backend %q (want sim or live)\n", *backend)
		os.Exit(2)
	}

	cfg := experiments.Default()
	cfg.Seed = *seed
	cfg.Resolvers = *resolvers
	cfg.Rounds = *rounds
	cfg.Parallelism = *parallel
	if *parallel > 0 {
		// -parallel N is a CPU budget: capping GOMAXPROCS bounds actual
		// simultaneous shard execution at N.
		runtime.GOMAXPROCS(*parallel)
	}
	runner := experiments.NewRunner(cfg)

	ids := []string{}
	if *versions {
		ids = append(ids, "E3")
	}
	if *sizes {
		ids = append(ids, "E4")
	}
	if *handshake {
		ids = append(ids, "E5")
	}
	if *resolve {
		ids = append(ids, "E6")
	}
	if *noResumption {
		ids = append(ids, "E10")
	}
	if *zeroRTT {
		ids = append(ids, "E11")
	}
	if *doh3 {
		ids = append(ids, "E13", "E14")
	}
	if *workload {
		ids = append(ids, "E16")
	}
	if *cached {
		ids = append(ids, "E17")
	}
	if *coalesce {
		ids = append(ids, "E22")
	}
	if *serveStale {
		ids = append(ids, "E23")
	}
	if *prefetch {
		ids = append(ids, "E24")
	}
	if *raceTransports || *policy != "" {
		cfg.RacingPolicy = *policy
		runner = experiments.NewRunner(cfg)
		ids = append(ids, "E25")
	}
	if *failover {
		ids = append(ids, "E27")
	}
	if len(ids) == 0 {
		ids = []string{"E3", "E4", "E5", "E6"}
	}
	start := time.Now()
	for _, id := range ids {
		e, _ := experiments.ByID(id)
		out, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	fmt.Fprintf(os.Stderr, "%d reports in %.1fs\n", len(ids), time.Since(start).Seconds())
}
