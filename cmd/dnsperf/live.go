package main

import (
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/netapi/livenet"
	"repro/internal/tlsmini"
)

// liveProtocols are the transports the live backend supports; DoQ and
// DoH3 require the sim QUIC stack and are rejected by dox.Connect.
var liveProtocols = map[string]dox.Protocol{
	"do53": dox.DoUDP,
	"tcp":  dox.DoTCP,
	"dot":  dox.DoT,
	"doh":  dox.DoH,
}

// runLive measures real resolvers: one warm query then one measured
// query per transport against -server, the DNSPerf pattern applied to
// a live target over the netapi/livenet backend.
func runLive(server, serverName, protoList, domain string, dotPort, dohPort uint16, insecure bool, seed int64) int {
	addr, udpPort, err := parseServer(server)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsperf: -server: %v\n", err)
		return 2
	}
	if serverName == "" {
		serverName = addr.String()
	}
	be := livenet.New(seed)
	sessions := tlsmini.NewSessionCache() // non-nil requests live resumption
	exit := 0
	fmt.Printf("live measurement: %s (%s)\n", server, domain)
	fmt.Printf("%-6s %-8s %12s %12s %8s %8s %s\n",
		"proto", "status", "handshake", "resolve", "hs-tx", "hs-rx", "session")
	for _, name := range strings.Split(protoList, ",") {
		name = strings.TrimSpace(name)
		proto, ok := liveProtocols[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "dnsperf: unknown live protocol %q (have do53,tcp,dot,doh)\n", name)
			return 2
		}
		opts := dox.Options{
			Backend:      be,
			Resolver:     addr,
			ServerName:   serverName,
			UDPPort:      udpPort,
			TCPPort:      udpPort,
			DoTPort:      dotPort,
			DoHPort:      dohPort,
			SessionCache: sessions,
			InsecureTLS:  insecure,
			UDPTimeout:   3 * time.Second,
		}
		if ec := liveQuery(proto, name, opts, domain); ec != 0 {
			exit = ec
		}
	}
	return exit
}

func liveQuery(proto dox.Protocol, name string, opts dox.Options, domain string) int {
	start := opts.Backend.Now()
	c, err := dox.Connect(proto, opts)
	if err != nil {
		fmt.Printf("%-6s connect failed: %v\n", name, err)
		return 1
	}
	defer c.Close()
	q := dnsmsg.NewQuery(uint16(opts.Backend.Rand().Intn(1<<16)), domain, dnsmsg.TypeA)
	resp, err := c.Query(&q)
	resolve := opts.Backend.Now() - start
	if err != nil {
		fmt.Printf("%-6s query failed: %v\n", name, err)
		return 1
	}
	m := c.Metrics()
	status := "NOERROR"
	if resp.RCode != dnsmsg.RCodeSuccess {
		status = fmt.Sprintf("rcode=%d", resp.RCode)
	}
	session := "-"
	if proto == dox.DoT || proto == dox.DoH {
		session = fmt.Sprintf("tls=%#x", uint16(m.TLSVersion))
		if m.UsedResumption {
			session += " resumed"
		}
	}
	answer := ""
	if a, ok := resp.FirstA(); ok {
		answer = " " + a.String()
	}
	fmt.Printf("%-6s %-8s %12s %12s %8d %8d %s%s\n",
		name, status, m.HandshakeTime.Round(time.Microsecond),
		resolve.Round(time.Microsecond), m.HandshakeTx, m.HandshakeRx, session, answer)
	return 0
}

// parseServer accepts ip:port or a bare ip (port 53).
func parseServer(s string) (netip.Addr, uint16, error) {
	if ap, err := netip.ParseAddrPort(s); err == nil {
		return ap.Addr(), ap.Port(), nil
	}
	addr, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Addr{}, 0, fmt.Errorf("want ip or ip:port, got %q", s)
	}
	return addr, 53, nil
}
