// resumption demonstrates the round-trip arithmetic behind the paper's
// headline single-query result: how TLS Session Resumption and QUIC
// address-validation tokens remove the Version Negotiation and
// amplification-limit round trips, and how 0-RTT (the paper's future
// work) collapses the whole exchange into a single round trip.
package main

import (
	"fmt"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/quic"
	"repro/internal/resolver"
	"repro/internal/tlsmini"
)

func main() {
	// A resolver with a certificate chain too large for QUIC's 3x
	// amplification budget, deployed on a draft QUIC version: the worst
	// case for a cold connection.
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           3,
		ResolverCounts: map[geo.Continent]int{geo.NA: 1},
		MutateProfile: func(p *resolver.Profile) {
			p.CertChainSize = 5500
			p.QUICVersion = quic.VersionDraft34
			p.AcceptEarlyData = true // for the 0-RTT act
		},
	})
	if err != nil {
		panic(err)
	}
	vp, res := u.Vantages[0], u.Resolvers[0]
	rtt := u.PathRTT(vp, res)
	fmt.Printf("resolver: %s, cert chain %d B, QUIC %s, path RTT %v\n\n",
		res.Name, res.CertChainSize, quic.VersionName(res.QUICVersion), rtt)

	sessions := tlsmini.NewSessionCache()
	quicSessions := dox.NewQUICSessionStore()

	exchange := func(label string, opts dox.Options) {
		start := u.W.Now()
		c, err := dox.Connect(dox.DoQ, opts)
		if err != nil {
			fmt.Printf("%-34s failed: %v\n", label, err)
			return
		}
		q := dnsmsg.NewQuery(0, "google.com", dnsmsg.TypeA)
		if _, err := c.Query(&q); err != nil {
			fmt.Printf("%-34s query failed: %v\n", label, err)
			c.Close()
			return
		}
		total := u.W.Now() - start
		m := c.Metrics()
		fmt.Printf("%-34s total %8s (~%.1f RTT)  hs %8s  vn=%-5v resumed=%-5v 0rtt=%v\n",
			label, total.Round(time.Millisecond), float64(total)/float64(rtt),
			m.HandshakeTime.Round(time.Millisecond), m.UsedVN, m.UsedResumption, m.Used0RTT)
		quicSessions.Remember(res.Addr, c)
		c.Close()
	}

	u.W.Go(func() {
		base := dox.Options{
			Backend:      vp.Backend,
			Resolver:     res.Addr,
			ServerName:   res.Name,
			SessionCache: sessions,
		}

		// Act 1: cold connection. Version Negotiation (+1 RTT) and the
		// amplification limit on the oversized certificate (+1 RTT).
		exchange("cold (VN + amplification limit)", base)

		// Act 2: resumed connection with cached version + token:
		// 1-RTT handshake, 1-RTT query.
		o2 := base
		quicSessions.Apply(res.Addr, &o2)
		exchange("resumed + token", o2)

		// Act 3: 0-RTT — the query rides in the first flight.
		o3 := base
		quicSessions.Apply(res.Addr, &o3)
		o3.OfferEarlyData = true
		exchange("resumed + token + 0-RTT", o3)
	})
	u.W.Run()

	fmt.Println("\npaper: Session Resumption makes DoQ ~33% faster than DoT/DoH;")
	fmt.Println("0-RTT (future work, §4) would shift DoQ to DoUDP's single round trip.")
}
