// Quickstart: bring up a simulated resolver and issue one DNS query over
// DNS-over-QUIC. This is the smallest end-to-end use of the library: a
// virtual-time world, a network, one resolver, one client.
package main

import (
	"fmt"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/resolver"
)

func main() {
	// A universe wires vantage points and resolvers together with
	// geography-derived path delays. One EU resolver is enough here.
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           1,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
	})
	if err != nil {
		panic(err)
	}
	vp, res := u.Vantages[0], u.Resolvers[0]
	fmt.Printf("vantage %s -> resolver %s (%s), path RTT %v\n",
		vp.Name, res.Name, res.Place.Continent, u.PathRTT(vp, res))

	u.W.Go(func() {
		// Connect over DoQ. The client offers every DoQ version and all
		// QUIC wire versions, like the paper's tooling.
		client, err := dox.Connect(dox.DoQ, dox.Options{
			Backend:    vp.Backend,
			Resolver:   res.Addr,
			ServerName: res.Name,
		})
		if err != nil {
			fmt.Println("connect:", err)
			return
		}
		defer client.Close()

		q := dnsmsg.NewQuery(1, "google.com", dnsmsg.TypeA)
		resp, err := client.Query(&q)
		if err != nil {
			fmt.Println("query:", err)
			return
		}
		m := client.Metrics()
		fmt.Println("answer:", resp.String())
		fmt.Printf("handshake %v (1 round trip), %d B up / %d B down\n",
			m.HandshakeTime, m.HandshakeTx, m.HandshakeRx)
		fmt.Printf("negotiated: QUIC %#x, ALPN %q, TLS %v\n",
			m.QUICVersion, m.DoQALPN, m.TLSVersion)
	})
	u.W.Run()
}
