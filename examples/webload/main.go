// webload loads modeled Tranco pages through the local DNS proxy with
// different upstream DNS transports and prints FCP/PLT — a miniature of
// the paper's Fig. 3/4 methodology, showing the amortization effect:
// DoQ's handshake cost matters on a 1-query page and nearly vanishes on
// a 9-query page because the proxy reuses the upstream session.
package main

import (
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/dnsproxy"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/pages"
	"repro/internal/resolver"
)

func main() {
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           7,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
	})
	if err != nil {
		panic(err)
	}
	vp, res := u.Vantages[0], u.Resolvers[0]
	fmt.Printf("vantage %s, resolver RTT %v\n\n", vp.Name, u.PathRTT(vp, res))

	load := func(proto dox.Protocol, page *pages.Page, port uint16) (browser.Result, error) {
		proxy, err := dnsproxy.New(vp.Backend, dnsproxy.Config{
			Upstream: proto,
			Options: dox.Options{
				Resolver:   res.Addr,
				ServerName: res.Name,
			},
			ListenPort: port,
		})
		if err != nil {
			return browser.Result{}, err
		}
		defer proxy.Close()
		eng := &browser.Engine{Backend: vp.Backend, Proxy: proxy.Addr()}
		// Warm, reset sessions, measure — the paper's navigation pattern.
		eng.Load(page)
		proxy.ResetSessions()
		return eng.Load(page), nil
	}

	u.W.Go(func() {
		port := uint16(6000)
		for _, pageName := range []string{"wikipedia", "youtube"} {
			page := pages.ByName(pageName)
			fmt.Printf("%s (%d DNS queries):\n", page.Name, page.DNSQueryCount())
			var base time.Duration
			for _, proto := range []dox.Protocol{dox.DoUDP, dox.DoQ, dox.DoH} {
				port++
				r, err := load(proto, page, port)
				if err != nil || r.Err != nil {
					fmt.Printf("  %-6s load failed: %v %v\n", proto, err, r.Err)
					continue
				}
				diff := ""
				if proto == dox.DoUDP {
					base = r.PLT
				} else if base > 0 {
					diff = fmt.Sprintf(" (%+.1f%% vs DoUDP)", float64(r.PLT-base)/float64(base)*100)
				}
				fmt.Printf("  %-6s FCP %8s  PLT %8s%s\n",
					proto, r.FCP.Round(time.Millisecond), r.PLT.Round(time.Millisecond), diff)
			}
			fmt.Println()
		}
	})
	u.W.Run()
}
