// compare-protocols issues the paper's single-query measurement over all
// six DNS transports (the paper's five plus DoH3) against the same
// resolver and prints the handshake and resolve times side by side — a
// miniature of Fig. 2 and Table 1 with the E14 comparison riding along.
//
// The run follows the paper's methodology: a cache-warming query first
// (which also provisions the TLS session ticket and QUIC token), then a
// measured query on a fresh, resumed session.
package main

import (
	"fmt"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/resolver"
	"repro/internal/tlsmini"
)

func main() {
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           42,
		ResolverCounts: map[geo.Continent]int{geo.NA: 1},
	})
	if err != nil {
		panic(err)
	}
	vp, res := u.Vantages[0], u.Resolvers[0]
	fmt.Printf("resolver %s, path RTT %v\n\n", res.Name, u.PathRTT(vp, res))
	fmt.Printf("%-6s  %10s  %10s  %7s  %7s  %s\n",
		"proto", "handshake", "resolve", "hs B up", "hs B dn", "notes")

	sessions := tlsmini.NewSessionCache()
	// One store per QUIC transport: the stored state includes the ALPN.
	quicSessions := map[dox.Protocol]*dox.QUICSessionStore{
		dox.DoQ:  dox.NewQUICSessionStore(),
		dox.DoH3: dox.NewQUICSessionStore(),
	}

	u.W.Go(func() {
		for _, proto := range dox.AllProtocols {
			opts := dox.Options{
				Backend:      vp.Backend,
				Resolver:     res.Addr,
				ServerName:   res.Name,
				SessionCache: sessions,
			}
			// Warming exchange: resolver cache + session state.
			warm, err := dox.Connect(proto, opts)
			if err != nil {
				fmt.Printf("%-6s  warming failed: %v\n", proto, err)
				continue
			}
			q := dnsmsg.NewQuery(1, "google.com", dnsmsg.TypeA)
			warm.Query(&q)
			if st := quicSessions[proto]; st != nil {
				st.Remember(res.Addr, warm)
			}
			warm.Close()

			// Measured exchange on a fresh (resumed) session.
			if st := quicSessions[proto]; st != nil {
				st.Apply(res.Addr, &opts)
			}
			c, err := dox.Connect(proto, opts)
			if err != nil {
				fmt.Printf("%-6s  connect failed: %v\n", proto, err)
				continue
			}
			q2 := dnsmsg.NewQuery(2, "google.com", dnsmsg.TypeA)
			start := u.W.Now()
			if _, err := c.Query(&q2); err != nil {
				fmt.Printf("%-6s  query failed: %v\n", proto, err)
				c.Close()
				continue
			}
			resolve := u.W.Now() - start
			m := c.Metrics()
			notes := ""
			if m.UsedResumption {
				notes += "resumed "
			}
			if m.UsedToken {
				notes += "token "
			}
			if m.TLSVersion != 0 {
				notes += m.TLSVersion.String()
			}
			fmt.Printf("%-6s  %10s  %10s  %7d  %7d  %s\n",
				proto, round(m.HandshakeTime), round(resolve), m.HandshakeTx, m.HandshakeRx, notes)
			c.Close()
		}
	})
	u.W.Run()

	fmt.Println("\nexpected shape (paper Fig. 2): DoTCP ~ DoQ ~ DoH3 ~ 1 RTT handshakes,")
	fmt.Println("DoH ~ DoT ~ 2 RTT; resolve ~ 1 RTT for every protocol on a warm cache.")
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond / 10) }
