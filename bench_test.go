package repro

// The benchmark harness: one benchmark per paper artifact (table,
// figure, or ablation), each regenerating the artifact end to end on a
// scaled-down but shape-preserving campaign. Run with:
//
//	go test -bench=. -benchmem
//
// The reported ns/op is the wall time to re-run the full experiment
// (simulated campaigns execute on virtual time, so even the week-long
// single-query campaign costs only real CPU, not real hours).

import (
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// benchConfig keeps each iteration around a second on one core while
// preserving the population distributions. Parallelism 1 pins the
// serial baseline; the *Parallel variants below lift it to GOMAXPROCS
// so the recorded benchmarks capture the serial->parallel speedup
// trajectory (results are byte-identical either way).
func benchConfig(seed int64) experiments.Config {
	cfg := experiments.Default()
	cfg.Seed = seed
	cfg.Resolvers = 24
	cfg.WebResolvers = 3
	cfg.WebLoads = 1
	cfg.WebPages = 10
	cfg.ScanScale = 16
	cfg.CacheQueries = 100
	cfg.CacheNames = 150
	cfg.Parallelism = 1
	return cfg
}

func benchExperimentCfg(b *testing.B, id string, parallelism int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(1000 + int64(i))
		cfg.Parallelism = parallelism
		r := experiments.NewRunner(cfg)
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		out, err := e.Run(r)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(out) == 0 {
			b.Fatalf("%s produced no report", id)
		}
	}
}

func benchExperiment(b *testing.B, id string) { benchExperimentCfg(b, id, 1) }

// BenchmarkE1ScanFunnel regenerates the §2 discovery funnel
// (1216 DoQ resolvers -> 313 verified, scaled).
func BenchmarkE1ScanFunnel(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2GeoDistribution regenerates Fig. 1 (continent and AS
// distribution of the verified resolvers).
func BenchmarkE2GeoDistribution(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3VersionShares regenerates the §3 protocol version and
// feature shares (QUIC v1 89.1%, doq-i02 87.4%, TLS 1.3 ~99%, ...).
func BenchmarkE3VersionShares(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Table1Sizes regenerates Table 1 (median single-query sizes
// and sample counts).
func BenchmarkE4Table1Sizes(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Fig2aHandshake regenerates Fig. 2a (median handshake time
// per protocol and vantage point).
func BenchmarkE5Fig2aHandshake(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Fig2bResolve regenerates Fig. 2b (median resolve time per
// protocol and vantage point).
func BenchmarkE6Fig2bResolve(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Fig3aFCP regenerates Fig. 3a (CDF of relative FCP
// differences against DoUDP).
func BenchmarkE7Fig3aFCP(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Fig3bPLT regenerates Fig. 3b (CDF of relative PLT
// differences against DoUDP).
func BenchmarkE8Fig3bPLT(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Fig4Grid regenerates Fig. 4 (the vantage-by-page PLT grid
// with DoQ as the baseline).
func BenchmarkE9Fig4Grid(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10NoResumption regenerates the §3.1 preliminary-work
// comparison: handshakes without Session Resumption pay the
// amplification-limit and Version Negotiation round trips.
func BenchmarkE10NoResumption(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11ZeroRTT regenerates the §4 future-work ablation: resolvers
// supporting 0-RTT shift DoQ's total response time toward DoUDP's.
func BenchmarkE11ZeroRTT(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12DoTFix regenerates the §3.2 root-cause ablation: the DNS
// proxy's DoT in-flight bug versus the authors' upstream fix.
func BenchmarkE12DoTFix(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE16CacheWorkload regenerates the §4 caching artifact: the
// resolver-cache hit-ratio grid over Zipf skew and TTL. Its aggregation
// is streaming (stats.Sketch), so campaign memory stays fixed as the
// query count grows — see BenchmarkZipfAggregation* in internal/measure
// for the flat-B/op evidence.
func BenchmarkE16CacheWorkload(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17CachedSplit regenerates the cached-vs-uncached resolve
// split on the lossless (resolver.NoLoss) baseline.
func BenchmarkE17CachedSplit(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18WarmWeb regenerates the PLT grid under a warm shared
// stub cache.
func BenchmarkE18WarmWeb(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE4Table1SizesParallel is BenchmarkE4Table1Sizes with the
// single-query campaign sharded across GOMAXPROCS workers. The report
// is byte-identical to the serial run; only wall time changes.
func BenchmarkE4Table1SizesParallel(b *testing.B) {
	benchExperimentCfg(b, "E4", runtime.GOMAXPROCS(0))
}

// BenchmarkE9Fig4GridParallel is BenchmarkE9Fig4Grid with the web
// page-load matrix sharded across GOMAXPROCS workers.
func BenchmarkE9Fig4GridParallel(b *testing.B) {
	benchExperimentCfg(b, "E9", runtime.GOMAXPROCS(0))
}
