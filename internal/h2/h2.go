// Package h2 implements the subset of HTTP/2 (RFC 9113) that DNS over
// HTTPS needs: the client connection preface, SETTINGS exchange, and
// HEADERS/DATA streams with an HPACK-like header compression scheme.
//
// The point of modeling HTTP/2 explicitly (rather than treating DoH as
// "DoT with a different port") is the size overhead the paper's Table 1
// attributes to DoH: message framing and header compression setup make a
// single DoH query several hundred bytes larger than the equivalent DoT
// or DoQ query. The first request on a connection carries full header
// literals; later requests reference the connection's dynamic table and
// shrink dramatically, which is also why resolving many names over one
// DoH connection amortizes better than its single-query numbers suggest.
// internal/h3 plays the same role for DoH3 on the QUIC stack, where the
// first-request literal penalty disappears into QPACK's static table
// (experiment E13 compares the two).
package h2

import (
	"encoding/binary"
	"errors"
	"fmt"
	"maps"
	"slices"

	"repro/internal/netapi"
	"repro/internal/tlsmini"
)

// ClientPreface opens every HTTP/2 client connection (RFC 9113 §3.4).
const ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// Frame types.
const (
	frameData     = 0x0
	frameHeaders  = 0x1
	frameSettings = 0x4
	frameGoAway   = 0x7
)

// Frame flags.
const (
	flagEndStream   = 0x1
	flagEndHeaders  = 0x4
	flagSettingsAck = 0x1
)

// Header is an HTTP header field.
type Header struct {
	Name, Value string
}

// settingsPayload models a typical SETTINGS frame body (6 bytes per
// setting, three settings).
var settingsPayload = make([]byte, 18)

//simlint:hotpath
func writeFrame(s tlsmini.Stream, ftype, flags byte, streamID uint32, payload []byte) error {
	buf := make([]byte, 9, 9+len(payload))
	buf[0] = byte(len(payload) >> 16)
	buf[1] = byte(len(payload) >> 8)
	buf[2] = byte(len(payload))
	buf[3] = ftype
	buf[4] = flags
	binary.BigEndian.PutUint32(buf[5:], streamID)
	return s.Write(append(buf, payload...))
}

type rawFrame struct {
	ftype, flags byte
	streamID     uint32
	payload      []byte
}

// frameReader buffers stream chunks and slices them into frames.
type frameReader struct {
	s   tlsmini.Stream
	buf []byte
	eof bool
}

func (r *frameReader) fill() bool {
	if r.eof {
		return false
	}
	chunk, ok := r.s.Read()
	if !ok {
		r.eof = true
		return false
	}
	r.buf = append(r.buf, chunk...)
	return true
}

func (r *frameReader) skip(n int) bool {
	for len(r.buf) < n {
		if !r.fill() {
			return false
		}
	}
	r.buf = r.buf[n:]
	return true
}

func (r *frameReader) next() (rawFrame, bool) {
	for len(r.buf) < 9 {
		if !r.fill() {
			return rawFrame{}, false
		}
	}
	n := int(r.buf[0])<<16 | int(r.buf[1])<<8 | int(r.buf[2])
	f := rawFrame{ftype: r.buf[3], flags: r.buf[4], streamID: binary.BigEndian.Uint32(r.buf[5:9]) & 0x7fffffff}
	for len(r.buf) < 9+n {
		if !r.fill() {
			return rawFrame{}, false
		}
	}
	f.payload = append([]byte(nil), r.buf[9:9+n]...)
	r.buf = r.buf[9+n:]
	return f, true
}

// hpackTable is a toy dynamic table: full literals on first use, 2-byte
// references afterwards (the size behaviour of HPACK without its exact
// encoding).
type hpackTable struct {
	index map[Header]uint16
	byIdx []Header // byIdx[i] holds the header assigned index 62+i
	next  uint16
	ebuf  []byte // encode scratch; safe because writeFrame copies
}

func newHpackTable() *hpackTable {
	return &hpackTable{index: make(map[Header]uint16), next: 62} // after static table
}

func (t *hpackTable) insert(h Header) {
	t.index[h] = t.next
	t.byIdx = append(t.byIdx, h)
	t.next++
}

func (t *hpackTable) encode(headers []Header) []byte {
	b := append(t.ebuf[:0], byte(len(headers)))
	for _, h := range headers {
		if idx, ok := t.index[h]; ok {
			b = append(b, 0xff)
			b = binary.BigEndian.AppendUint16(b, idx)
			continue
		}
		t.insert(h)
		b = append(b, byte(len(h.Name)))
		b = append(b, h.Name...)
		b = binary.BigEndian.AppendUint16(b, uint16(len(h.Value)))
		b = append(b, h.Value...)
	}
	t.ebuf = b
	return b
}

func (t *hpackTable) decode(b []byte) ([]Header, error) {
	if len(b) < 1 {
		return nil, errors.New("h2: empty header block")
	}
	n := int(b[0])
	b = b[1:]
	out := make([]Header, 0, n)
	// The decoder mirrors the encoder's table assignments.
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, errors.New("h2: truncated header block")
		}
		if b[0] == 0xff {
			if len(b) < 3 {
				return nil, errors.New("h2: truncated header reference")
			}
			idx := binary.BigEndian.Uint16(b[1:3])
			b = b[3:]
			h, ok := t.byIndex(idx)
			if !ok {
				return nil, fmt.Errorf("h2: unknown header index %d", idx)
			}
			out = append(out, h)
			continue
		}
		nl := int(b[0])
		if len(b) < 1+nl+2 {
			return nil, errors.New("h2: truncated header literal")
		}
		name := string(b[1 : 1+nl])
		vl := int(binary.BigEndian.Uint16(b[1+nl : 3+nl]))
		if len(b) < 3+nl+vl {
			return nil, errors.New("h2: truncated header value")
		}
		value := string(b[3+nl : 3+nl+vl])
		b = b[3+nl+vl:]
		h := Header{name, value}
		t.insert(h)
		out = append(out, h)
	}
	return out, nil
}

func (t *hpackTable) byIndex(idx uint16) (Header, bool) {
	if idx >= 62 && int(idx-62) < len(t.byIdx) {
		return t.byIdx[idx-62], true
	}
	return Header{}, false
}

// Response is a completed HTTP/2 exchange result.
type Response struct {
	Headers []Header
	Body    []byte
}

// Status returns the :status pseudo-header value.
func (r *Response) Status() string {
	for _, h := range r.Headers {
		if h.Name == ":status" {
			return h.Value
		}
	}
	return ""
}

// ClientConn is the client side of an HTTP/2 connection.
type ClientConn struct {
	rt      netapi.Runtime
	s       tlsmini.Stream
	reader  *frameReader
	encTab  *hpackTable
	decTab  *hpackTable
	nextID  uint32
	pending map[uint32]*streamState
	closed  bool
}

type streamState struct {
	headers []Header
	body    []byte
	done    *netapi.Future[*Response]
}

// NewClientConn sends the connection preface and SETTINGS, and starts the
// response dispatcher.
func NewClientConn(rt netapi.Runtime, s tlsmini.Stream) (*ClientConn, error) {
	c := &ClientConn{
		rt:      rt,
		s:       s,
		reader:  &frameReader{s: s},
		encTab:  newHpackTable(),
		decTab:  newHpackTable(),
		nextID:  1,
		pending: make(map[uint32]*streamState),
	}
	if err := s.Write([]byte(ClientPreface)); err != nil {
		return nil, err
	}
	if err := writeFrame(s, frameSettings, 0, 0, settingsPayload); err != nil {
		return nil, err
	}
	rt.Go(c.readLoop)
	return c, nil
}

// failPending fails open streams in ascending stream-ID order so the
// waiting tasks wake deterministically (map order would leak Go's
// randomized iteration into the simulation's run queue).
func (c *ClientConn) failPending() {
	for _, id := range slices.Sorted(maps.Keys(c.pending)) {
		c.pending[id].done.Fail()
		delete(c.pending, id)
	}
}

func (c *ClientConn) readLoop() {
	for {
		f, ok := c.reader.next()
		if !ok {
			c.closed = true
			c.failPending()
			return
		}
		switch f.ftype {
		case frameSettings:
			if f.flags&flagSettingsAck == 0 {
				writeFrame(c.s, frameSettings, flagSettingsAck, 0, nil)
			}
		case frameHeaders:
			st := c.pending[f.streamID]
			if st == nil {
				continue
			}
			hs, err := c.decTab.decode(f.payload)
			if err != nil {
				st.done.Fail()
				delete(c.pending, f.streamID)
				continue
			}
			st.headers = hs
			if f.flags&flagEndStream != 0 {
				st.done.Resolve(&Response{Headers: st.headers, Body: st.body})
				delete(c.pending, f.streamID)
			}
		case frameData:
			st := c.pending[f.streamID]
			if st == nil {
				continue
			}
			st.body = append(st.body, f.payload...)
			if f.flags&flagEndStream != 0 {
				st.done.Resolve(&Response{Headers: st.headers, Body: st.body})
				delete(c.pending, f.streamID)
			}
		case frameGoAway:
			c.closed = true
			c.failPending()
			return
		}
	}
}

// RoundTrip issues one request and blocks for its response.
func (c *ClientConn) RoundTrip(headers []Header, body []byte) (*Response, error) {
	if c.closed {
		return nil, errors.New("h2: connection closed")
	}
	id := c.nextID
	c.nextID += 2
	// Static name: the id only matters in deadlock diagnostics, and
	// formatting it would allocate per request.
	st := &streamState{done: netapi.NewFuture[*Response](c.rt, "h2-stream")}
	c.pending[id] = st
	if err := writeFrame(c.s, frameHeaders, flagEndHeaders, id, c.encTab.encode(headers)); err != nil {
		return nil, err
	}
	if err := writeFrame(c.s, frameData, flagEndStream, id, body); err != nil {
		return nil, err
	}
	resp, ok := st.done.Wait()
	if !ok {
		return nil, errors.New("h2: stream reset or connection lost")
	}
	return resp, nil
}

// Close tears the connection down.
func (c *ClientConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	writeFrame(c.s, frameGoAway, 0, 0, make([]byte, 8))
	c.s.Close()
}

// Handler processes one request and returns the response.
type Handler func(headers []Header, body []byte) (respHeaders []Header, respBody []byte)

// ServeConn runs the server side of an HTTP/2 connection until the peer
// disconnects. It blocks, so call it from its own sim task.
func ServeConn(rt netapi.Runtime, s tlsmini.Stream, handler Handler) {
	reader := &frameReader{s: s}
	// Consume the client preface.
	if !reader.skip(len(ClientPreface)) {
		return
	}
	if err := writeFrame(s, frameSettings, 0, 0, settingsPayload); err != nil {
		return
	}
	decTab := newHpackTable()
	srv := &serverConn{rt: rt, s: s, encTab: newHpackTable(), handler: handler}
	reqs := make(map[uint32]*reqState)
	for {
		f, ok := reader.next()
		if !ok {
			return
		}
		switch f.ftype {
		case frameSettings:
			if f.flags&flagSettingsAck == 0 {
				writeFrame(s, frameSettings, flagSettingsAck, 0, nil)
			}
		case frameHeaders:
			hs, err := decTab.decode(f.payload)
			if err != nil {
				return
			}
			reqs[f.streamID] = &reqState{headers: hs}
			if f.flags&flagEndStream != 0 {
				st, id := reqs[f.streamID], f.streamID
				delete(reqs, f.streamID)
				// Streams are served concurrently, as real servers do;
				// response frames interleave but are written atomically.
				srv.spawn(id, st)
			}
		case frameData:
			st := reqs[f.streamID]
			if st == nil {
				continue
			}
			st.body = append(st.body, f.payload...)
			if f.flags&flagEndStream != 0 {
				id := f.streamID
				delete(reqs, f.streamID)
				srv.spawn(id, st)
			}
		case frameGoAway:
			return
		}
	}
}

type reqState struct {
	headers []Header
	body    []byte
}

// serverConn carries the per-connection server state shared by all of
// its response tasks, plus a free list of their argument boxes so the
// per-request spawn is neither a closure nor a fresh carrier.
type serverConn struct {
	rt      netapi.Runtime
	s       tlsmini.Stream
	encTab  *hpackTable
	handler Handler
	free    []*serveJob
}

type serveJob struct {
	srv *serverConn
	id  uint32
	req *reqState
}

func (srv *serverConn) spawn(id uint32, req *reqState) {
	var j *serveJob
	if n := len(srv.free); n > 0 {
		j = srv.free[n-1]
		srv.free = srv.free[:n-1]
	} else {
		j = &serveJob{}
	}
	j.srv, j.id, j.req = srv, id, req
	srv.rt.GoCall(serveOne, j)
}

// serveOne is the pre-bound adapter every response task shares. The job
// box returns to the free list as soon as its fields are read — safe
// because the world runs one task at a time, so the accept loop cannot
// reuse it before this task yields.
func serveOne(v any) {
	j := v.(*serveJob)
	srv, id, req := j.srv, j.id, j.req
	j.srv, j.req = nil, nil
	srv.free = append(srv.free, j)
	respHeaders, respBody := srv.handler(req.headers, req.body)
	writeFrame(srv.s, frameHeaders, flagEndHeaders, id, srv.encTab.encode(respHeaders))
	writeFrame(srv.s, frameData, flagEndStream, id, respBody)
}
