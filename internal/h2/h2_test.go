package h2

import (
	"bytes"
	"testing"

	"repro/internal/netapi/simnet"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

// pipeStream mirrors the tlsmini test pipe.
type pipeStream struct {
	out *sim.Queue[[]byte]
	in  *sim.Queue[[]byte]
}

func (p *pipeStream) Write(b []byte) error {
	p.out.Push(append([]byte(nil), b...))
	return nil
}
func (p *pipeStream) Read() ([]byte, bool) { return p.in.Pop() }
func (p *pipeStream) Close()               { p.out.Close() }

func pipe(w *sim.World) (a, b tlsmini.Stream) {
	q1 := sim.NewQueue[[]byte](w, "h2-ab")
	q2 := sim.NewQueue[[]byte](w, "h2-ba")
	return &pipeStream{out: q1, in: q2}, &pipeStream{out: q2, in: q1}
}

func dohHandler(headers []Header, body []byte) ([]Header, []byte) {
	return []Header{
		{":status", "200"},
		{"content-type", "application/dns-message"},
	}, append([]byte("resp:"), body...)
}

func TestRoundTrip(t *testing.T) {
	w := sim.NewWorld(1)
	cs, ss := pipe(w)
	w.Go(func() { ServeConn(simnet.NewRuntime(w, nil), ss, dohHandler) })
	var resp *Response
	var err error
	w.Go(func() {
		c, cerr := NewClientConn(simnet.NewRuntime(w, nil), cs)
		if cerr != nil {
			t.Error(cerr)
			return
		}
		resp, err = c.RoundTrip([]Header{
			{":method", "POST"},
			{":path", "/dns-query"},
			{":authority", "resolver.example"},
			{"content-type", "application/dns-message"},
		}, []byte("query"))
	})
	w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status() != "200" {
		t.Errorf("status = %q", resp.Status())
	}
	if !bytes.Equal(resp.Body, []byte("resp:query")) {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestMultipleRequestsOneConnection(t *testing.T) {
	w := sim.NewWorld(1)
	cs, ss := pipe(w)
	w.Go(func() { ServeConn(simnet.NewRuntime(w, nil), ss, dohHandler) })
	bodies := make([][]byte, 3)
	w.Go(func() {
		c, err := NewClientConn(simnet.NewRuntime(w, nil), cs)
		if err != nil {
			t.Error(err)
			return
		}
		for i := range bodies {
			resp, err := c.RoundTrip([]Header{
				{":method", "POST"},
				{":path", "/dns-query"},
			}, []byte{byte('a' + i)})
			if err != nil {
				t.Error(err)
				return
			}
			bodies[i] = resp.Body
		}
	})
	w.Run()
	for i, b := range bodies {
		want := []byte{'r', 'e', 's', 'p', ':', byte('a' + i)}
		if !bytes.Equal(b, want) {
			t.Errorf("request %d: got %q", i, b)
		}
	}
}

// TestHeaderCompressionShrinksRepeatedRequests verifies the HPACK-like
// behaviour that the paper's size analysis depends on: the first request
// carries full literals, later identical headers compress to references.
func TestHeaderCompressionShrinksRepeatedRequests(t *testing.T) {
	tab := newHpackTable()
	headers := []Header{
		{":method", "POST"},
		{":path", "/dns-query"},
		{":authority", "resolver.example"},
		{"content-type", "application/dns-message"},
	}
	first := tab.encode(headers)
	second := tab.encode(headers)
	if len(second) >= len(first) {
		t.Errorf("second encoding (%d B) not smaller than first (%d B)", len(second), len(first))
	}
	if len(second) != 1+3*len(headers) {
		t.Errorf("second encoding = %d B, want all references", len(second))
	}
}

func TestHpackRoundTrip(t *testing.T) {
	enc := newHpackTable()
	dec := newHpackTable()
	headers := []Header{{":status", "200"}, {"x", "y"}}
	for i := 0; i < 3; i++ {
		got, err := dec.decode(enc.encode(headers))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if len(got) != len(headers) || got[0] != headers[0] || got[1] != headers[1] {
			t.Fatalf("round %d: got %v", i, got)
		}
	}
}

func TestHpackDecodeErrors(t *testing.T) {
	dec := newHpackTable()
	cases := [][]byte{
		nil,
		{2, 0xff, 0x00},       // truncated reference
		{1, 0xff, 0x00, 0x05}, // unknown index
		{1, 5, 'a'},           // truncated literal
	}
	for i, b := range cases {
		if _, err := dec.decode(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestServerConnClosedMidRequest(t *testing.T) {
	w := sim.NewWorld(1)
	cs, ss := pipe(w)
	var err error
	w.Go(func() {
		// Server drops the connection without answering.
		reader := &frameReader{s: ss}
		reader.skip(len(ClientPreface))
		reader.next() // client SETTINGS
		ss.Close()
	})
	w.Go(func() {
		c, cerr := NewClientConn(simnet.NewRuntime(w, nil), cs)
		if cerr != nil {
			t.Error(cerr)
			return
		}
		_, err = c.RoundTrip([]Header{{":method", "POST"}}, []byte("q"))
	})
	w.Run()
	if err == nil {
		t.Error("RoundTrip succeeded on a dead connection")
	}
}
