package sim

// Seed derivation for sharded campaigns. A campaign that splits into
// shards needs every shard's World to be seeded by a value that (a) is a
// pure function of the campaign seed and the shard's coordinates, so the
// derivation is independent of execution order and parallelism, and (b)
// decorrelates nearby inputs, so shard 0 and shard 1 do not produce
// near-identical random streams the way rand.NewSource(seed) and
// rand.NewSource(seed+1) can.

// splitmix64 is the finalizer from Vigna's SplitMix64 generator, a
// bijective avalanche mix on 64 bits.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed maps (root, path...) to a well-mixed seed. The path is a
// sequence of coordinates identifying the consumer — e.g. a campaign
// domain tag followed by shard indices. Derivation folds each component
// through SplitMix64, so any change to any component reshuffles the
// result completely, while the same (root, path) always yields the same
// seed on every platform and at every parallelism level.
func DeriveSeed(root int64, path ...uint64) int64 {
	z := splitmix64(uint64(root))
	for _, p := range path {
		z = splitmix64(z ^ splitmix64(p))
	}
	return int64(z)
}
