package sim

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	a := DeriveSeed(2022, 3, 7)
	b := DeriveSeed(2022, 3, 7)
	if a != b {
		t.Fatalf("same inputs, different seeds: %d vs %d", a, b)
	}
}

func TestDeriveSeedSensitivity(t *testing.T) {
	base := DeriveSeed(2022, 3, 7)
	variants := []int64{
		DeriveSeed(2023, 3, 7), // root changed
		DeriveSeed(2022, 4, 7), // first component changed
		DeriveSeed(2022, 3, 8), // second component changed
		DeriveSeed(2022, 7, 3), // components swapped
		DeriveSeed(2022, 3),    // shorter path
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

// TestDeriveSeedDecorrelatesNeighbors guards against the failure mode of
// seed+i schemes: adjacent shard indices must not produce adjacent or
// equal seeds.
func TestDeriveSeedDecorrelatesNeighbors(t *testing.T) {
	seen := map[int64]bool{}
	for i := uint64(0); i < 10000; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("collision at index %d", i)
		}
		seen[s] = true
		if n := DeriveSeed(1, i+1); n == s+1 || n == s-1 || n == s {
			t.Fatalf("indices %d and %d derive adjacent seeds", i, i+1)
		}
	}
}
