package sim

import "time"

// timerEntry is one scheduled event: either a direct task wake (Sleep,
// PopTimeout deadlines) or a callback (AfterFunc/AfterCall). Entries are
// recycled through a per-World free list; gen distinguishes incarnations
// so a stale Timer handle can never cancel a later timer that happens to
// reuse the same entry.
type timerEntry struct {
	w   *World
	at  time.Duration
	seq uint64
	gen uint64
	idx int32 // position in w.theap; -1 when free or fired

	task  *task // wake this task, or:
	fn    func()
	fnArg func(any)
	arg   any

	next *timerEntry // free list link
}

// newEntry takes an entry from the free list (or allocates one) and
// stamps it with the deadline and the next creation sequence number.
func (w *World) newEntry(at time.Duration) *timerEntry {
	e := w.freeEnt
	if e != nil {
		w.freeEnt = e.next
		e.next = nil
	} else {
		e = &timerEntry{w: w, idx: -1}
	}
	w.seq++
	e.at, e.seq = at, w.seq
	return e
}

// putEntry recycles an entry, dropping every reference it holds so a
// cancelled or fired timer cannot pin its callback, argument, or task.
func (w *World) putEntry(e *timerEntry) {
	e.gen++
	e.task, e.fn, e.fnArg, e.arg = nil, nil, nil, nil
	e.idx = -1
	e.next = w.freeEnt
	w.freeEnt = e
}

// Timer is a cancellable handle to a scheduled callback, returned by
// AfterFunc and AfterCall. The zero Timer is valid; Stop on it reports
// false. Timer is a value type: copy it freely, there is no state beyond
// the (entry, generation) pair.
type Timer struct {
	e   *timerEntry
	gen uint64
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was prevented from firing. Stopping removes the entry from the
// timer heap immediately and drops its callback references, so a
// cancelled timer pins no memory while waiting to be reused.
func (t Timer) Stop() bool {
	e := t.e
	if e == nil || e.gen != t.gen || e.idx < 0 {
		return false
	}
	w := e.w
	w.heapRemove(e)
	w.putEntry(e)
	return true
}

// --- 4-ary index-tracked min-heap keyed (at, seq) ---
//
// A 4-ary layout halves the tree depth of a binary heap, trading a few
// extra comparisons per level for fewer cache-missing levels; with the
// index stored on each entry, Stop removes in O(log₄ n) instead of
// leaving dead entries to be skipped at pop time.

func entryLess(a, b *timerEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (w *World) heapPush(e *timerEntry) {
	w.theap = append(w.theap, e)
	e.idx = int32(len(w.theap) - 1)
	w.heapUp(int(e.idx))
}

// heapRemove deletes e, which must currently be in the heap.
func (w *World) heapRemove(e *timerEntry) {
	h := w.theap
	i := int(e.idx)
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].idx = int32(i)
	}
	h[last] = nil
	w.theap = h[:last]
	if i < last {
		w.heapDown(i)
		w.heapUp(i)
	}
	e.idx = -1
}

func (w *World) heapUp(i int) {
	h := w.theap
	e := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].idx = int32(i)
		i = p
	}
	h[i] = e
	e.idx = int32(i)
}

func (w *World) heapDown(i int) {
	h := w.theap
	n := len(h)
	e := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], e) {
			break
		}
		h[i] = h[m]
		h[i].idx = int32(i)
		i = m
	}
	h[i] = e
	e.idx = int32(i)
}
