package sim

// ring is a reusable FIFO ring buffer. Unlike the append/reslice idiom
// (q = append(q, v); v, q = q[0], q[1:]), a drained ring keeps — and
// reuses — its backing array, so steady-state push/pop cycles allocate
// nothing and capacity is bounded by the high-water mark of *concurrent*
// occupancy, not by cumulative throughput. Popped slots are zeroed so
// the ring never pins items it no longer holds.
type ring[T any] struct {
	buf  []T // power-of-two length
	head int
	n    int
}

func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring[T]) pop() (v T, ok bool) {
	if r.n == 0 {
		return v, false
	}
	i := r.head & (len(r.buf) - 1)
	v = r.buf[i]
	var zero T
	r.buf[i] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v, true
}

func (r *ring[T]) len() int { return r.n }

// capacity reports the backing-array size, for growth-bound tests.
func (r *ring[T]) capacity() int { return len(r.buf) }

func (r *ring[T]) grow() {
	nc := len(r.buf) * 2
	if nc == 0 {
		nc = 8
	}
	nb := make([]T, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}
