package sim

// Kernel microbenchmarks. These isolate the scheduler's hot paths from
// the protocol stacks: a task switch (BenchmarkPingPong), timer
// arm/cancel churn (BenchmarkTimerChurn), and mass concurrent sleepers
// (BenchmarkSleepStorm). All three must report 0 B/op and 0 allocs/op
// in steady state — the zero-allocation guarantee is additionally
// enforced by the TestXxxZeroAlloc tests in kernel_test.go.

import (
	"testing"
	"time"
)

// BenchmarkPingPong measures one full task switch: two tasks alternating
// via Sleep(0). Each b.N iteration is two parks, two direct handoffs,
// and two pooled timer entries.
func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(1)
	for t := 0; t < 2; t++ {
		w.Go(func() {
			for i := 0; i < b.N; i++ {
				w.Sleep(0)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	w.Run()
	b.StopTimer()
	w.Shutdown()
}

// BenchmarkTimerChurn measures AfterFunc+Stop cycles: the PTO/RTO
// pattern of the transport simulators, where nearly every armed timer is
// cancelled before it fires.
func BenchmarkTimerChurn(b *testing.B) {
	w := NewWorld(1)
	fn := func() {}
	w.Go(func() {
		for i := 0; i < b.N; i++ {
			tm := w.AfterFunc(time.Hour, fn)
			tm.Stop()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	w.Run()
	b.StopTimer()
	w.Shutdown()
}

// BenchmarkSleepStorm measures the timer heap under load: 10k concurrent
// sleepers with staggered periods. The storm is warmed up before the
// timer starts (goroutine stacks, pools, and the heap are one-time
// costs), so the reported allocs/op is the steady state: 0. Each b.N
// iteration advances the storm by one 97µs window (~28k wakeups).
func BenchmarkSleepStorm(b *testing.B) {
	w := NewWorld(1)
	const sleepers = 10000
	for t := 0; t < sleepers; t++ {
		d := time.Duration(t%97+1) * time.Microsecond
		w.Go(func() {
			for {
				w.Sleep(d)
			}
		})
	}
	w.RunFor(time.Millisecond) // reach steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunFor(97 * time.Microsecond)
	}
	b.StopTimer()
	w.Shutdown()
}

// BenchmarkQueuePingPong measures the producer/consumer path: one Push
// waking one Pop per iteration.
func BenchmarkQueuePingPong(b *testing.B) {
	w := NewWorld(1)
	q := NewQueue[int](w, "bench")
	w.Go(func() {
		for i := 0; i < b.N; i++ {
			q.Push(i)
			w.Yield()
		}
		q.Close()
	})
	w.Go(func() {
		for {
			if _, ok := q.Pop(); !ok {
				return
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	w.Run()
	b.StopTimer()
	w.Shutdown()
}
