// Package sim provides a deterministic virtual-time simulation kernel.
//
// All protocol and measurement code in this repository runs on virtual
// time: tasks are ordinary goroutines that cooperate with a World through
// blocking primitives (Sleep, Queue.Pop, timers). The kernel runs exactly
// one task at a time and advances the clock only when every task is
// blocked, so a simulated week-long measurement campaign executes in
// milliseconds and is reproducible given a seed.
//
// The execution model is cooperative ("one big lock"): because at most one
// task executes at any instant, tasks may share mutable state without
// additional locking, and event ordering is deterministic (FIFO among
// runnable tasks, then earliest-deadline-first among timers, ties broken
// by creation order).
//
// # Scheduling
//
// The scheduler is a direct-handoff design: when the running task blocks
// or finishes, it selects the next runnable task (or fires the next due
// timer) and wakes it directly over that task's persistent wake channel,
// without a round trip through the host goroutine. The host goroutine
// that called Run participates only twice per run — once to start the
// first task and once to be told the world is quiescent — so a task
// switch costs one channel handoff instead of two.
//
// The kernel allocates nothing on its steady-state hot paths: tasks are
// pooled worker goroutines with reusable wake channels, timer entries
// come from a free list and live in an index-tracked 4-ary heap, and the
// run queue is a reusable ring buffer. See DESIGN.md ("Scheduler
// internals") for the full model and the determinism argument.
//
// World methods must be called either from tasks (which run one at a
// time) or from the host goroutine while no Run/RunFor is in progress;
// calling them from the host while the world is running is a data race.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"
)

const maxDuration = time.Duration(1<<63 - 1)

// blockOp records why a task is parked, for lazy deadlock labels: the
// label string is only built if Blocked() is called, never on the block
// path itself.
type blockOp uint8

const (
	opNone blockOp = iota
	opSleep
	opQueuePop
	opQueuePopTimeout
	opWaitGroup
)

// task is one schedulable context: a pooled worker goroutine with a
// persistent one-slot wake channel. A token sent on wake hands the CPU
// to the task; the sender must have set w.cur first. Idle workers park
// on the same channel waiting for their next body.
type task struct {
	wake chan struct{}

	// Pending body, set while the task sits on the runq (or is being
	// handed a fired AfterFunc callback). Exactly one of fn and fnArg
	// is set.
	fn    func()
	fnArg func(any)
	arg   any

	// Block diagnostics, valid while parked (op != opNone).
	op     blockOp
	opName string
	opDur  time.Duration

	// Timeout parking (Queue.PopTimeout): the pending deadline entry,
	// and whether the last wake came from it rather than from ready.
	timeout  *timerEntry
	timedOut bool

	// Live-task registry (intrusive doubly-linked list) for Blocked
	// and Shutdown.
	prev, next *task
	idle       bool // parked in the worker pool, not in user code
}

// World is a virtual-time event kernel. Create one with NewWorld, spawn
// the initial task(s) with Go, then call Run from the host goroutine.
type World struct {
	now      time.Duration
	deadline time.Duration // RunFor bound; maxDuration under Run
	seq      uint64        // timer-entry creation order, for tie-breaks

	theap    []*timerEntry // 4-ary min-heap keyed (at, seq), index-tracked
	freeEnt  *timerEntry   // free list of recycled entries
	runq     ring[*task]   // tasks ready to run, FIFO
	idle     []*task       // worker pool (LIFO, so hot workers rerun)
	cur      *task         // the task currently executing
	liveHead *task         // all live workers, for Blocked/Shutdown
	hostWake chan struct{} // quiescence signal to the host goroutine

	rng     *rand.Rand
	killing bool // Shutdown in progress: blocking primitives bail out
}

// NewWorld returns a World whose random source is seeded with seed.
func NewWorld(seed int64) *World {
	return &World{
		rng:      rand.New(rand.NewSource(seed)),
		deadline: maxDuration,
		hostWake: make(chan struct{}, 1),
	}
}

// Now returns the current virtual time, measured from the World's epoch.
// It must be called from a task or while the world is idle.
func (w *World) Now() time.Duration { return w.now }

// Rand returns the World's deterministic random source. It must only be
// used from tasks (which run one at a time), never from the host goroutine
// while Run is in progress.
func (w *World) Rand() *rand.Rand { return w.rng }

// --- Worker pool ---

func (w *World) addLive(t *task) {
	t.next = w.liveHead
	if w.liveHead != nil {
		w.liveHead.prev = t
	}
	w.liveHead = t
}

func (w *World) removeLive(t *task) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		w.liveHead = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.prev, t.next = nil, nil
}

// getWorker returns an idle worker, spawning a new goroutine only when
// the pool is empty. Steady-state task churn therefore reuses both the
// task struct and its goroutine.
func (w *World) getWorker() *task {
	if n := len(w.idle); n > 0 {
		t := w.idle[n-1]
		w.idle[n-1] = nil
		w.idle = w.idle[:n-1]
		t.idle = false
		return t
	}
	t := &task{wake: make(chan struct{}, 1)}
	w.addLive(t)
	go w.workerLoop(t)
	return t
}

func (w *World) workerLoop(t *task) {
	defer w.workerExit(t) // reached only via Shutdown (return or Goexit)
	for {
		<-t.wake
		if w.killing {
			return
		}
		if fn := t.fn; fn != nil {
			t.fn = nil
			fn()
		} else {
			fn, arg := t.fnArg, t.arg
			t.fnArg, t.arg = nil, nil
			fn(arg)
		}
		t.idle = true
		w.idle = append(w.idle, t)
		w.handoff()
	}
}

func (w *World) workerExit(t *task) {
	w.removeLive(t)
	w.hostWake <- struct{}{}
}

// Go spawns fn as a new task. It may be called from the host goroutine
// before Run, or from any running task. The task starts in FIFO order
// behind already-runnable tasks.
//
//simlint:hotpath
func (w *World) Go(fn func()) {
	t := w.getWorker()
	t.fn = fn
	w.runq.push(t)
}

// GoCall is Go for a pre-bound callback: it spawns fn(arg) as a new task
// without forcing the caller to allocate a fresh closure per spawn. fn is
// typically a long-lived adapter and arg a pooled object.
//
//simlint:hotpath
func (w *World) GoCall(fn func(any), arg any) {
	t := w.getWorker()
	t.fnArg, t.arg = fn, arg
	w.runq.push(t)
}

// --- Scheduling core ---

// dispatch hands the CPU to the next work item: the oldest runnable
// task, else the earliest pending timer (advancing the clock). It
// returns false when the world is quiescent or the next timer lies
// beyond the RunFor deadline (in which case the clock is capped at the
// deadline). After a successful dispatch the caller must not touch
// kernel state: the woken task owns it.
//
//simlint:hotpath
func (w *World) dispatch() bool {
	if t, ok := w.runq.pop(); ok {
		w.cur = t
		t.wake <- struct{}{}
		return true
	}
	if len(w.theap) == 0 {
		return false
	}
	e := w.theap[0]
	if e.at > w.deadline {
		w.now = w.deadline
		return false
	}
	w.heapRemove(e)
	if e.at > w.now {
		w.now = e.at
	}
	var t *task
	if e.task != nil {
		t = e.task
		if t.timeout == e {
			t.timeout = nil
			t.timedOut = true
		}
	} else {
		t = w.getWorker()
		t.fn, t.fnArg, t.arg = e.fn, e.fnArg, e.arg
	}
	w.putEntry(e)
	w.cur = t
	t.wake <- struct{}{}
	return true
}

// handoff cedes the CPU: dispatch the next item, or tell the host the
// world is quiescent.
//
//simlint:hotpath
func (w *World) handoff() {
	if !w.dispatch() {
		w.hostWake <- struct{}{}
	}
}

// park blocks the current task until woken. The caller must have
// arranged a wake: a timer entry bound to the task, or membership in a
// waiter list whose owner will call ready.
func (w *World) park() {
	t := w.cur
	w.handoff()
	<-t.wake
	if w.killing {
		runtime.Goexit() // Shutdown: unwind (running defers) and exit
	}
}

// ready marks t runnable. Safe to call from a running task or a timer
// callback; the kernel hands execution over once the current task blocks.
func (w *World) ready(t *task) {
	if w.killing {
		return
	}
	w.runq.push(t)
}

// parkTimeout parks the current task until readied or until the absolute
// virtual-time deadline, whichever first. It reports whether the wake
// was the deadline. The deadline timer is recycled on either path.
func (w *World) parkTimeout(deadline time.Duration) bool {
	t := w.cur
	e := w.newEntry(deadline)
	e.task = t
	t.timeout = e
	t.timedOut = false
	w.heapPush(e)
	w.park()
	if t.timedOut {
		t.timedOut = false
		return true
	}
	if t.timeout != nil { // readied: cancel the pending deadline timer
		w.heapRemove(t.timeout)
		w.putEntry(t.timeout)
		t.timeout = nil
	}
	return false
}

// Sleep blocks the calling task for d of virtual time. Non-positive
// durations yield the processor to other runnable tasks at the same
// instant.
func (w *World) Sleep(d time.Duration) {
	if w.killing {
		return
	}
	if d < 0 {
		d = 0
	}
	t := w.cur
	e := w.newEntry(w.now + d)
	e.task = t
	w.heapPush(e)
	t.op, t.opDur = opSleep, d
	w.park()
	t.op = opNone
}

// Yield lets other runnable tasks execute before continuing.
func (w *World) Yield() { w.Sleep(0) }

// AfterFunc schedules fn to run at Now()+d on the kernel, as a pseudo-task
// of its own. fn must not block forever; it may use World primitives.
//
//simlint:hotpath
func (w *World) AfterFunc(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	e := w.newEntry(w.now + d)
	e.fn = fn
	w.heapPush(e)
	return Timer{e: e, gen: e.gen}
}

// AfterCall is AfterFunc for a pre-bound callback: it schedules fn(arg)
// without forcing the caller to allocate a fresh closure per timer. fn is
// typically a long-lived adapter and arg a pooled object.
//
//simlint:hotpath
func (w *World) AfterCall(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	e := w.newEntry(w.now + d)
	e.fnArg, e.arg = fn, arg
	w.heapPush(e)
	return Timer{e: e, gen: e.gen}
}

// Run drives the simulation until quiescence: no runnable tasks and no
// pending timers. Tasks blocked forever (e.g. servers waiting for
// requests) do not prevent Run from returning. Run must be called from
// the host goroutine, not from a task. It returns the final virtual time.
func (w *World) Run() time.Duration { return w.runScheduler(maxDuration) }

// RunFor drives the simulation like Run but stops once virtual time would
// exceed the deadline now+d; timers beyond the deadline are left pending.
func (w *World) RunFor(d time.Duration) time.Duration {
	return w.runScheduler(w.now + d)
}

func (w *World) runScheduler(deadline time.Duration) time.Duration {
	w.deadline = deadline
	if w.dispatch() {
		<-w.hostWake
	}
	return w.now
}

// Shutdown reaps every live task goroutine, including tasks blocked
// forever and idle pooled workers. It must only be called from the host
// goroutine after Run has returned, and the World must not be used
// afterwards. Parked tasks unwind via runtime.Goexit, so their deferred
// calls run; during the unwind all blocking primitives return
// immediately (Pop reports a closed queue, Sleep is a no-op).
//
// Worlds that skip Shutdown keep their parked goroutines alive for the
// life of the process — the Go runtime never collects a blocked
// goroutine — which both leaks their stacks and adds them to every GC
// mark phase. Campaign drivers that create a World per shard call this
// as soon as the shard's Run returns.
func (w *World) Shutdown() {
	if w.killing {
		return
	}
	w.killing = true
	for w.liveHead != nil {
		t := w.liveHead
		w.cur = t
		t.wake <- struct{}{}
		<-w.hostWake // its workerExit confirms the goroutine is gone
	}
	w.theap = nil
	w.freeEnt = nil
	w.runq = ring[*task]{}
	w.idle = nil
	w.cur = nil
}

// Blocked returns debug labels of all currently blocked tasks. Intended
// for tests and deadlock diagnostics. Labels are formatted lazily here,
// never on the block path.
func (w *World) Blocked() []string {
	var out []string
	for t := w.liveHead; t != nil; t = t.next {
		switch t.op {
		case opSleep:
			out = append(out, fmt.Sprintf("sleep(%v)", t.opDur))
		case opQueuePop:
			out = append(out, "queue.Pop("+t.opName+")")
		case opQueuePopTimeout:
			out = append(out, "queue.PopTimeout("+t.opName+")")
		case opWaitGroup:
			out = append(out, "waitgroup")
		}
	}
	return out
}
