// Package sim provides a deterministic virtual-time simulation kernel.
//
// All protocol and measurement code in this repository runs on virtual
// time: tasks are ordinary goroutines that cooperate with a World through
// blocking primitives (Sleep, Queue.Pop, timers). The kernel runs exactly
// one task at a time and advances the clock only when every task is
// blocked, so a simulated week-long measurement campaign executes in
// milliseconds and is reproducible given a seed.
//
// The execution model is cooperative ("one big lock"): because at most one
// task executes at any instant, tasks may share mutable state without
// additional locking, and event ordering is deterministic (FIFO among
// runnable tasks, then earliest-deadline-first among timers, ties broken
// by creation order).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// World is a virtual-time event kernel. Create one with NewWorld, spawn
// the initial task(s) with Go, then call Run from the host goroutine.
type World struct {
	mu   sync.Mutex
	cond *sync.Cond // signaled whenever active drops to zero

	now    time.Duration
	seq    uint64
	timers timerHeap
	runq   []chan struct{} // tasks ready to run, FIFO

	active int // 1 while a task or timer callback is executing
	tasks  int // live tasks (running or blocked)

	rng     *rand.Rand
	stopped bool
	label   map[chan struct{}]string // debug labels for blocked tasks
}

// NewWorld returns a World whose random source is seeded with seed.
func NewWorld(seed int64) *World {
	w := &World{
		rng:   rand.New(rand.NewSource(seed)),
		label: make(map[chan struct{}]string),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Now returns the current virtual time, measured from the World's epoch.
func (w *World) Now() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

// Rand returns the World's deterministic random source. It must only be
// used from tasks (which run one at a time), never from the host goroutine
// while Run is in progress.
func (w *World) Rand() *rand.Rand { return w.rng }

// Go spawns fn as a new task. It may be called from the host goroutine
// before Run, or from any running task.
func (w *World) Go(fn func()) {
	w.mu.Lock()
	w.tasks++
	ch := make(chan struct{})
	w.runq = append(w.runq, ch)
	w.mu.Unlock()
	go func() {
		<-ch // wait to be scheduled
		defer w.taskExit()
		fn()
	}()
}

func (w *World) taskExit() {
	w.mu.Lock()
	w.tasks--
	w.active--
	w.cond.Signal()
	w.mu.Unlock()
}

// block parks the calling task until ch is closed (or receives). The
// caller must have registered ch somewhere a waker can find it. label is
// used in deadlock reports.
func (w *World) block(ch chan struct{}, label string) {
	w.mu.Lock()
	w.label[ch] = label
	w.active--
	w.cond.Signal()
	w.mu.Unlock()
	<-ch
	w.mu.Lock()
	delete(w.label, ch)
	w.mu.Unlock()
}

// ready marks ch runnable. Safe to call from a running task or a timer
// callback; the kernel hands execution over once the current task blocks.
func (w *World) ready(ch chan struct{}) {
	w.mu.Lock()
	w.runq = append(w.runq, ch)
	w.mu.Unlock()
}

// Sleep blocks the calling task for d of virtual time. Non-positive
// durations yield the processor to other runnable tasks at the same
// instant.
func (w *World) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ch := make(chan struct{})
	w.mu.Lock()
	w.pushTimerLocked(w.now+d, timerWake, ch, nil)
	w.mu.Unlock()
	w.block(ch, fmt.Sprintf("sleep(%v)", d))
}

// Yield lets other runnable tasks execute before continuing.
func (w *World) Yield() { w.Sleep(0) }

type timerKind uint8

const (
	timerWake timerKind = iota
	timerFunc
)

// Timer is a cancellable scheduled callback created by AfterFunc.
type Timer struct {
	w       *World
	at      time.Duration
	seq     uint64
	stopped bool
	fired   bool
}

type timerEntry struct {
	at   time.Duration
	seq  uint64
	kind timerKind
	ch   chan struct{}
	fn   func()
	t    *Timer
}

func (w *World) pushTimerLocked(at time.Duration, kind timerKind, ch chan struct{}, fn func()) *Timer {
	w.seq++
	t := &Timer{w: w, at: at, seq: w.seq}
	heap.Push(&w.timers, &timerEntry{at: at, seq: w.seq, kind: kind, ch: ch, fn: fn, t: t})
	return t
}

// AfterFunc schedules fn to run at Now()+d on the kernel, as a pseudo-task
// of its own. fn must not block forever; it may use World primitives.
func (w *World) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pushTimerLocked(w.now+d, timerFunc, nil, fn)
}

// Stop cancels the timer if it has not fired. It reports whether the
// timer was prevented from firing.
func (t *Timer) Stop() bool {
	t.w.mu.Lock()
	defer t.w.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Run drives the simulation until quiescence: no runnable tasks and no
// pending timers. Tasks blocked forever (e.g. servers waiting for
// requests) do not prevent Run from returning. Run must be called from
// the host goroutine, not from a task. It returns the final virtual time.
func (w *World) Run() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		// Wait until the currently executing task blocks or exits.
		for w.active > 0 {
			w.cond.Wait()
		}
		if len(w.runq) > 0 {
			ch := w.runq[0]
			w.runq = w.runq[1:]
			w.active++
			close(ch)
			continue
		}
		// No runnable task: advance time to the next timer.
		fired := false
		for w.timers.Len() > 0 {
			e := heap.Pop(&w.timers).(*timerEntry)
			if e.t != nil && e.t.stopped {
				continue
			}
			if e.t != nil {
				e.t.fired = true
			}
			if e.at > w.now {
				w.now = e.at
			}
			switch e.kind {
			case timerWake:
				w.runq = append(w.runq, e.ch)
			case timerFunc:
				w.active++
				fn := e.fn
				w.mu.Unlock()
				func() {
					defer func() {
						w.mu.Lock()
						w.active--
						w.cond.Signal()
						w.mu.Unlock()
					}()
					fn()
				}()
				w.mu.Lock()
			}
			fired = true
			break
		}
		if !fired && len(w.runq) == 0 {
			return w.now
		}
	}
}

// RunFor drives the simulation like Run but stops once virtual time would
// exceed the deadline now+d; timers beyond the deadline are left pending.
func (w *World) RunFor(d time.Duration) time.Duration {
	w.mu.Lock()
	deadline := w.now + d
	w.mu.Unlock()
	return w.runUntil(deadline)
}

func (w *World) runUntil(deadline time.Duration) time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		for w.active > 0 {
			w.cond.Wait()
		}
		if len(w.runq) > 0 {
			ch := w.runq[0]
			w.runq = w.runq[1:]
			w.active++
			close(ch)
			continue
		}
		fired := false
		for w.timers.Len() > 0 {
			if w.timers[0].at > deadline {
				w.now = deadline
				return w.now
			}
			e := heap.Pop(&w.timers).(*timerEntry)
			if e.t != nil && e.t.stopped {
				continue
			}
			if e.t != nil {
				e.t.fired = true
			}
			if e.at > w.now {
				w.now = e.at
			}
			switch e.kind {
			case timerWake:
				w.runq = append(w.runq, e.ch)
			case timerFunc:
				w.active++
				fn := e.fn
				w.mu.Unlock()
				func() {
					defer func() {
						w.mu.Lock()
						w.active--
						w.cond.Signal()
						w.mu.Unlock()
					}()
					fn()
				}()
				w.mu.Lock()
			}
			fired = true
			break
		}
		if !fired && len(w.runq) == 0 {
			return w.now
		}
	}
}

// Blocked returns debug labels of all currently blocked tasks. Intended
// for tests and deadlock diagnostics.
func (w *World) Blocked() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.label))
	for _, l := range w.label {
		out = append(out, l)
	}
	return out
}

// timerHeap is a min-heap ordered by (at, seq).
type timerHeap []*timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timerEntry)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
