package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	w := NewWorld(1)
	var got time.Duration
	w.Go(func() {
		w.Sleep(5 * time.Second)
		got = w.Now()
	})
	start := time.Now()
	end := w.Run()
	if got != 5*time.Second {
		t.Errorf("task observed %v, want 5s", got)
	}
	if end != 5*time.Second {
		t.Errorf("Run returned %v, want 5s", end)
	}
	if real := time.Since(start); real > time.Second {
		t.Errorf("virtual sleep took %v of real time", real)
	}
}

func TestTimersFireInDeadlineOrder(t *testing.T) {
	w := NewWorld(1)
	var order []int
	w.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	w.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	w.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	w.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestTimerTieBrokenByCreationOrder(t *testing.T) {
	w := NewWorld(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		w.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	w.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	w := NewWorld(1)
	fired := false
	tm := w.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Error("Stop returned false before firing")
	}
	w.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
}

func TestQueuePushPop(t *testing.T) {
	w := NewWorld(1)
	q := NewQueue[int](w, "test")
	var got []int
	w.Go(func() {
		for i := 0; i < 3; i++ {
			v, ok := q.Pop()
			if !ok {
				t.Error("Pop reported closed")
				return
			}
			got = append(got, v)
		}
	})
	w.Go(func() {
		w.Sleep(time.Second)
		q.Push(1)
		q.Push(2)
		w.Sleep(time.Second)
		q.Push(3)
	})
	w.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got %v, want [1 2 3]", got)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	w := NewWorld(1)
	q := NewQueue[int](w, "test")
	var timedOutAt time.Duration
	var gotLate bool
	w.Go(func() {
		_, ok := q.PopTimeout(2 * time.Second)
		if ok {
			t.Error("PopTimeout returned a value from an empty queue")
		}
		timedOutAt = w.Now()
		v, ok := q.PopTimeout(10 * time.Second)
		gotLate = ok && v == 7
	})
	w.Go(func() {
		w.Sleep(5 * time.Second)
		q.Push(7)
	})
	w.Run()
	if timedOutAt != 2*time.Second {
		t.Errorf("timeout at %v, want 2s", timedOutAt)
	}
	if !gotLate {
		t.Error("second PopTimeout did not receive pushed value")
	}
}

func TestQueueClose(t *testing.T) {
	w := NewWorld(1)
	q := NewQueue[int](w, "test")
	q.Push(1)
	okAfterClose := true
	w.Go(func() {
		q.Close()
		if v, ok := q.Pop(); !ok || v != 1 {
			t.Errorf("Pop after close = (%v, %v), want (1, true)", v, ok)
		}
		_, okAfterClose = q.Pop()
	})
	w.Run()
	if okAfterClose {
		t.Error("Pop on drained closed queue returned ok=true")
	}
}

func TestFuture(t *testing.T) {
	w := NewWorld(1)
	f := NewFuture[string](w, "test")
	var got string
	w.Go(func() {
		v, ok := f.Wait()
		if !ok {
			t.Error("future abandoned")
		}
		got = v
	})
	w.Go(func() {
		w.Sleep(time.Second)
		f.Resolve("hello")
	})
	w.Run()
	if got != "hello" {
		t.Errorf("got %q", got)
	}
}

func TestWaitGroup(t *testing.T) {
	w := NewWorld(1)
	g := NewWaitGroup(w)
	n := 0
	var doneAt time.Duration
	w.Go(func() {
		for i := 1; i <= 3; i++ {
			i := i
			g.Add(1)
			w.Go(func() {
				w.Sleep(time.Duration(i) * time.Second)
				n++
				g.Done()
			})
		}
		g.Wait()
		doneAt = w.Now()
	})
	w.Run()
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	if doneAt != 3*time.Second {
		t.Errorf("Wait returned at %v, want 3s", doneAt)
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	w := NewWorld(1)
	fired := 0
	w.AfterFunc(time.Second, func() { fired++ })
	w.AfterFunc(10*time.Second, func() { fired++ })
	end := w.RunFor(5 * time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if end != 5*time.Second {
		t.Errorf("end = %v, want 5s", end)
	}
	// The remaining timer fires if we keep running.
	w.Run()
	if fired != 2 {
		t.Errorf("fired = %d after Run, want 2", fired)
	}
}

func TestManyTasksDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		w := NewWorld(42)
		var order []int
		for i := 0; i < 20; i++ {
			i := i
			w.Go(func() {
				w.Sleep(time.Duration(w.Rand().Intn(100)) * time.Millisecond)
				order = append(order, i)
			})
		}
		w.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic interleaving: %v vs %v", a, b)
		}
	}
}

func TestNestedSpawn(t *testing.T) {
	w := NewWorld(1)
	depth := 0
	var spawn func(d int)
	spawn = func(d int) {
		if d > depth {
			depth = d
		}
		if d < 5 {
			w.Go(func() {
				w.Sleep(time.Millisecond)
				spawn(d + 1)
			})
		}
	}
	w.Go(func() { spawn(0) })
	w.Run()
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
}

func TestYield(t *testing.T) {
	w := NewWorld(1)
	var order []string
	w.Go(func() {
		order = append(order, "a1")
		w.Yield()
		order = append(order, "a2")
	})
	w.Go(func() {
		order = append(order, "b1")
		w.Yield()
		order = append(order, "b2")
	})
	w.Run()
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
