package sim

// Regression tests for the direct-handoff kernel's resource behavior:
// bounded runq growth, stopped timers dropping their references, world
// teardown reaping parked goroutines, and the zero-allocation guarantees
// of the steady-state hot paths.

import (
	"runtime"
	"testing"
	"time"
)

// TestRunqCapacityBounded guards against the pre-ring regression where
// runq was an append/reslice slice: a long campaign's queue capacity is
// bounded by peak concurrent runnability, not cumulative wakeups.
func TestRunqCapacityBounded(t *testing.T) {
	w := NewWorld(1)
	const tasks = 8
	for i := 0; i < tasks; i++ {
		w.Go(func() {
			for j := 0; j < 10000; j++ {
				w.Yield()
			}
		})
	}
	w.Run()
	if c := w.runq.capacity(); c > 4*tasks {
		t.Errorf("runq capacity grew to %d after 80k wakeups of %d tasks", c, tasks)
	}
}

// TestQueueRingCapacityBounded is the same bound for Queue's item ring.
func TestQueueRingCapacityBounded(t *testing.T) {
	w := NewWorld(1)
	q := NewQueue[int](w, "bound")
	w.Go(func() {
		for i := 0; i < 100000; i++ {
			q.Push(i)
			if v, ok := q.Pop(); !ok || v != i {
				t.Errorf("pop %d = (%d, %v)", i, v, ok)
				return
			}
		}
	})
	w.Run()
	if c := q.items.capacity(); c > 64 {
		t.Errorf("queue ring capacity grew to %d under push/pop steady state", c)
	}
}

// TestTimerStopReleasesReferences checks that Stop removes the entry
// from the heap immediately and drops its callback reference, rather
// than leaving a dead entry pinning the closure until its deadline pops.
func TestTimerStopReleasesReferences(t *testing.T) {
	w := NewWorld(1)
	big := make([]byte, 1<<20)
	tm := w.AfterFunc(time.Hour, func() { _ = big })
	e := tm.e
	if len(w.theap) != 1 {
		t.Fatalf("heap size = %d, want 1", len(w.theap))
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false on an armed timer")
	}
	if len(w.theap) != 0 {
		t.Errorf("stopped entry still in heap (len %d)", len(w.theap))
	}
	if e.fn != nil || e.fnArg != nil || e.arg != nil || e.task != nil {
		t.Error("stopped entry retains callback references")
	}
	if e.idx != -1 {
		t.Errorf("stopped entry idx = %d, want -1", e.idx)
	}
	if tm.Stop() {
		t.Error("second Stop returned true")
	}
}

// TestStoppedTimerDoesNotPinMemory is the end-to-end version: after
// Stop, the callback's captured memory must be collectable even though
// the (pooled) entry lives on. This was the PTO-heavy burst-loss leak:
// every cancelled retransmission timer pinned its conn until the far
// deadline drained from the heap.
func TestStoppedTimerDoesNotPinMemory(t *testing.T) {
	w := NewWorld(1)
	freed := make(chan struct{})
	func() {
		big := new([1 << 20]byte)
		runtime.SetFinalizer(big, func(*[1 << 20]byte) { close(freed) })
		tm := w.AfterFunc(time.Hour, func() { _ = big })
		tm.Stop()
	}()
	for i := 0; i < 20; i++ {
		runtime.GC()
		select {
		case <-freed:
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
	t.Error("stopped timer still pins its callback memory after GC")
}

// TestTimerHandleSurvivesEntryReuse checks the generation guard: a
// handle to a fired timer must not cancel an unrelated timer that
// recycled the same entry.
func TestTimerHandleSurvivesEntryReuse(t *testing.T) {
	w := NewWorld(1)
	fired := 0
	t1 := w.AfterFunc(time.Second, func() { fired++ })
	w.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// The next timer reuses t1's pooled entry.
	t2 := w.AfterFunc(time.Second, func() { fired++ })
	if t2.e != t1.e {
		t.Fatalf("test setup: entry not reused")
	}
	if t1.Stop() {
		t.Error("stale handle cancelled a recycled timer")
	}
	w.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (stale Stop must not cancel)", fired)
	}
	if !t2.e.w.killing && t2.Stop() {
		t.Error("Stop after firing returned true")
	}
}

// TestShutdownReapsParkedGoroutines: a world full of forever-blocked
// tasks (servers, sleepers) must release all its goroutines on Shutdown.
func TestShutdownReapsParkedGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	w := NewWorld(1)
	q := NewQueue[int](w, "dead")
	cleanedUp := 0
	for i := 0; i < 50; i++ {
		w.Go(func() {
			defer func() { cleanedUp++ }()
			q.Pop() // blocks forever
		})
	}
	for i := 0; i < 50; i++ {
		w.Go(func() { w.Sleep(1000 * time.Hour) })
	}
	w.RunFor(time.Second)
	w.Shutdown()
	if cleanedUp != 50 {
		t.Errorf("deferred cleanups ran %d times, want 50", cleanedUp)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after Shutdown", before, runtime.NumGoroutine())
}

// TestShutdownBlockingPrimitivesBailOut: primitives called from deferred
// teardown code during Shutdown unwinding must return immediately.
func TestShutdownBlockingPrimitivesBailOut(t *testing.T) {
	w := NewWorld(1)
	q := NewQueue[int](w, "x")
	other := NewQueue[int](w, "y")
	ranDefer := false
	w.Go(func() {
		defer func() {
			ranDefer = true
			w.Sleep(time.Hour) // must not park
			if _, ok := other.Pop(); ok {
				t.Error("Pop during shutdown returned ok")
			}
			if _, ok := other.PopTimeout(time.Hour); ok {
				t.Error("PopTimeout during shutdown returned ok")
			}
			g := NewWaitGroup(w)
			g.Add(1)
			g.Wait() // must not park
		}()
		q.Pop()
	})
	w.Run()
	w.Shutdown()
	if !ranDefer {
		t.Error("deferred teardown did not run")
	}
}

// TestGoCallAndAfterCall cover the closure-free spawn/timer variants.
func TestGoCallAndAfterCall(t *testing.T) {
	w := NewWorld(1)
	var got []int
	fn := func(a any) { got = append(got, a.(int)) }
	w.GoCall(fn, 1)
	w.AfterCall(time.Second, fn, 2)
	tm := w.AfterCall(2*time.Second, fn, 3)
	tm.Stop()
	w.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got %v, want [1 2]", got)
	}
}

// TestBlockedLabels: labels must be formatted lazily but still match the
// eager originals.
func TestBlockedLabels(t *testing.T) {
	w := NewWorld(1)
	q := NewQueue[int](w, "reqs")
	w.Go(func() { q.Pop() })
	w.Go(func() { w.Sleep(5 * time.Second) })
	w.Go(func() { q.PopTimeout(time.Hour) })
	w.RunFor(time.Second)
	want := map[string]bool{
		"queue.Pop(reqs)":        true,
		"sleep(5s)":              true,
		"queue.PopTimeout(reqs)": true,
	}
	labels := w.Blocked()
	if len(labels) != len(want) {
		t.Fatalf("Blocked() = %v, want %d labels", labels, len(want))
	}
	for _, l := range labels {
		if !want[l] {
			t.Errorf("unexpected label %q", l)
		}
	}
}

// --- Zero-allocation guarantees (the tentpole's acceptance bars) ---

// steadyWorld builds a world with two ping-pong tasks and returns it
// warmed up: every pool (workers, timer entries, rings) is populated.
func steadyWorld() *World {
	w := NewWorld(1)
	for i := 0; i < 2; i++ {
		w.Go(func() {
			for {
				w.Sleep(time.Millisecond)
			}
		})
	}
	w.RunFor(100 * time.Millisecond) // warm up pools
	return w
}

func TestPingPongZeroAlloc(t *testing.T) {
	w := steadyWorld()
	allocs := testing.AllocsPerRun(10, func() {
		w.RunFor(100 * time.Millisecond) // ~200 sleep/wake events
	})
	if allocs != 0 {
		t.Errorf("steady-state scheduling allocated %v objects per 100ms slice, want 0", allocs)
	}
}

func TestTimerChurnZeroAlloc(t *testing.T) {
	w := NewWorld(1)
	fn := func() {}
	w.Go(func() {
		for {
			for i := 0; i < 100; i++ {
				tm := w.AfterFunc(time.Hour, fn)
				tm.Stop()
			}
			w.Sleep(time.Millisecond)
		}
	})
	w.RunFor(10 * time.Millisecond)
	allocs := testing.AllocsPerRun(10, func() {
		w.RunFor(10 * time.Millisecond) // ~1000 arm/cancel cycles
	})
	if allocs != 0 {
		t.Errorf("AfterFunc+Stop churn allocated %v objects, want 0", allocs)
	}
}

func TestQueueSteadyStateZeroAlloc(t *testing.T) {
	w := NewWorld(1)
	q := NewQueue[int](w, "hot")
	w.Go(func() {
		for {
			q.Push(1)
			w.Sleep(time.Millisecond)
		}
	})
	w.Go(func() {
		for {
			q.Pop()
		}
	})
	w.RunFor(10 * time.Millisecond)
	allocs := testing.AllocsPerRun(10, func() {
		w.RunFor(10 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("queue push/pop steady state allocated %v objects, want 0", allocs)
	}
}

// TestGoCallFreeListZeroAlloc guards the pre-bound callback pattern the
// protocol layers use for steady-state spawns: a package-level adapter
// func plus a free list of job boxes. GoCall with a top-level func and a
// recycled box must not allocate.
type ktJob struct {
	free *[]*ktJob
	n    *int
}

func ktServe(v any) {
	j := v.(*ktJob)
	free, n := j.free, j.n
	j.free, j.n = nil, nil
	*free = append(*free, j) // box returns before the "work"
	*n++
}

func TestGoCallFreeListZeroAlloc(t *testing.T) {
	w := NewWorld(1)
	var free []*ktJob
	var served int
	w.Go(func() {
		for {
			for i := 0; i < 50; i++ {
				var j *ktJob
				if k := len(free); k > 0 {
					j, free = free[k-1], free[:k-1]
				} else {
					j = &ktJob{}
				}
				j.free, j.n = &free, &served
				w.GoCall(ktServe, j)
			}
			w.Sleep(time.Millisecond)
		}
	})
	w.RunFor(10 * time.Millisecond)
	before := served
	allocs := testing.AllocsPerRun(10, func() {
		w.RunFor(10 * time.Millisecond) // ~500 spawn cycles
	})
	if allocs != 0 {
		t.Errorf("GoCall free-list spawns allocated %v objects, want 0", allocs)
	}
	if served <= before {
		t.Fatalf("no jobs served during measurement window")
	}
}
