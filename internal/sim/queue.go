package sim

import "time"

// Queue is an unbounded FIFO channel analogue that cooperates with the
// virtual clock: Pop blocks the calling task on the kernel rather than on
// the Go scheduler. Queues are the only way tasks should exchange data
// when one side may need to wait. Items live in a reusable ring buffer
// and waiting tasks park on their own persistent wake channels, so
// steady-state push/pop traffic allocates nothing.
type Queue[T any] struct {
	w       *World
	items   ring[T]
	waiters []*task
	closed  bool
	name    string
}

// NewQueue creates an empty queue. name is used in deadlock diagnostics.
func NewQueue[T any](w *World, name string) *Queue[T] {
	return &Queue[T]{w: w, name: name}
}

// Push appends v and wakes one waiting Pop, if any. Push never blocks.
// Pushing to a closed queue is a no-op.
func (q *Queue[T]) Push(v T) {
	if q.closed {
		return
	}
	q.items.push(v)
	q.wakeOne()
}

func (q *Queue[T]) wakeOne() {
	if len(q.waiters) == 0 {
		return
	}
	t := q.waiters[0]
	q.dropWaiter(0)
	q.w.ready(t)
}

// dropWaiter removes q.waiters[i], shifting in place so the backing
// array keeps being reused.
func (q *Queue[T]) dropWaiter(i int) {
	last := len(q.waiters) - 1
	copy(q.waiters[i:], q.waiters[i+1:])
	q.waiters[last] = nil
	q.waiters = q.waiters[:last]
}

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return q.items.len() }

// Pop removes and returns the oldest item, blocking until one is
// available. ok is false if the queue was closed and drained.
func (q *Queue[T]) Pop() (v T, ok bool) {
	for {
		if v, ok = q.items.pop(); ok {
			return v, true
		}
		if q.closed || q.w.killing {
			return v, false
		}
		t := q.w.cur
		t.op, t.opName = opQueuePop, q.name
		q.waiters = append(q.waiters, t)
		q.w.park()
		t.op = opNone
	}
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) { return q.items.pop() }

// PopTimeout is Pop with a virtual-time deadline. ok is false on timeout
// or close.
func (q *Queue[T]) PopTimeout(d time.Duration) (v T, ok bool) {
	if v, ok = q.items.pop(); ok {
		return v, true
	}
	if q.closed || q.w.killing {
		return v, false
	}
	deadline := q.w.now + d
	for {
		t := q.w.cur
		t.op, t.opName = opQueuePopTimeout, q.name
		q.waiters = append(q.waiters, t)
		timedOut := q.w.parkTimeout(deadline)
		t.op = opNone
		if timedOut {
			// The deadline woke us directly; leave the waiter list.
			for i, c := range q.waiters {
				if c == t {
					q.dropWaiter(i)
					break
				}
			}
		}
		if v, ok = q.items.pop(); ok {
			return v, true
		}
		if q.closed || timedOut {
			return v, false
		}
		// Spurious wake (another popper beat us); retry until deadline.
		if q.w.now >= deadline {
			return v, false
		}
	}
}

// Close marks the queue closed and wakes all waiters. Buffered items can
// still be drained with Pop/TryPop.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for i, t := range q.waiters {
		q.w.ready(t)
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Future is a one-shot value handed from one task to another.
type Future[T any] struct {
	q *Queue[T]
}

// NewFuture creates an unresolved future.
func NewFuture[T any](w *World, name string) *Future[T] {
	return &Future[T]{q: NewQueue[T](w, "future:"+name)}
}

// Resolve sets the value. Resolving twice is a no-op for waiters that
// already consumed the first value.
func (f *Future[T]) Resolve(v T) { f.q.Push(v); f.q.Close() }

// Wait blocks until the future is resolved. ok is false if the future was
// abandoned (resolved never, queue closed).
func (f *Future[T]) Wait() (T, bool) { return f.q.Pop() }

// WaitTimeout is Wait with a virtual-time deadline.
func (f *Future[T]) WaitTimeout(d time.Duration) (T, bool) { return f.q.PopTimeout(d) }

// Fail abandons the future, unblocking waiters with ok=false.
func (f *Future[T]) Fail() { f.q.Close() }

// WaitGroup tracks a set of concurrent tasks on the virtual clock.
type WaitGroup struct {
	w     *World
	count int
	done  []*task
}

// NewWaitGroup returns a WaitGroup bound to w.
func NewWaitGroup(w *World) *WaitGroup { return &WaitGroup{w: w} }

// Add increments the counter by n.
func (g *WaitGroup) Add(n int) { g.count += n }

// Done decrements the counter, waking waiters when it reaches zero.
func (g *WaitGroup) Done() {
	g.count--
	if g.count <= 0 {
		for i, t := range g.done {
			g.w.ready(t)
			g.done[i] = nil
		}
		g.done = g.done[:0]
	}
}

// Wait blocks until the counter reaches zero.
func (g *WaitGroup) Wait() {
	for g.count > 0 {
		if g.w.killing {
			return
		}
		t := g.w.cur
		t.op = opWaitGroup
		g.done = append(g.done, t)
		g.w.park()
		t.op = opNone
	}
}
