package sim

import "time"

// Queue is an unbounded FIFO channel analogue that cooperates with the
// virtual clock: Pop blocks the calling task on the kernel rather than on
// the Go scheduler. Queues are the only way tasks should exchange data
// when one side may need to wait.
type Queue[T any] struct {
	w       *World
	items   []T
	waiters []chan struct{}
	closed  bool
	name    string
}

// NewQueue creates an empty queue. name is used in deadlock diagnostics.
func NewQueue[T any](w *World, name string) *Queue[T] {
	return &Queue[T]{w: w, name: name}
}

// Push appends v and wakes one waiting Pop, if any. Push never blocks.
// Pushing to a closed queue is a no-op.
func (q *Queue[T]) Push(v T) {
	if q.closed {
		return
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

func (q *Queue[T]) wakeOne() {
	if len(q.waiters) > 0 {
		ch := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.w.ready(ch)
	}
}

// Len reports the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Pop removes and returns the oldest item, blocking until one is
// available. ok is false if the queue was closed and drained.
func (q *Queue[T]) Pop() (v T, ok bool) {
	for {
		if len(q.items) > 0 {
			v = q.items[0]
			q.items = q.items[1:]
			return v, true
		}
		if q.closed {
			return v, false
		}
		ch := make(chan struct{})
		q.waiters = append(q.waiters, ch)
		q.w.block(ch, "queue.Pop("+q.name+")")
	}
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// PopTimeout is Pop with a virtual-time deadline. ok is false on timeout
// or close.
func (q *Queue[T]) PopTimeout(d time.Duration) (v T, ok bool) {
	if len(q.items) > 0 {
		v = q.items[0]
		q.items = q.items[1:]
		return v, true
	}
	if q.closed {
		return v, false
	}
	deadline := q.w.Now() + d
	for {
		ch := make(chan struct{})
		q.waiters = append(q.waiters, ch)
		timedOut := false
		t := q.w.AfterFunc(deadline-q.w.Now(), func() {
			timedOut = true
			// Remove ch from waiters if still present, then wake it.
			for i, c := range q.waiters {
				if c == ch {
					q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
					q.w.ready(ch)
					return
				}
			}
		})
		q.w.block(ch, "queue.PopTimeout("+q.name+")")
		t.Stop()
		if len(q.items) > 0 {
			v = q.items[0]
			q.items = q.items[1:]
			return v, true
		}
		if q.closed || timedOut {
			return v, false
		}
		// Spurious wake (another popper beat us); retry until deadline.
		if q.w.Now() >= deadline {
			return v, false
		}
	}
}

// Close marks the queue closed and wakes all waiters. Buffered items can
// still be drained with Pop/TryPop.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, ch := range q.waiters {
		q.w.ready(ch)
	}
	q.waiters = nil
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Future is a one-shot value handed from one task to another.
type Future[T any] struct {
	q *Queue[T]
}

// NewFuture creates an unresolved future.
func NewFuture[T any](w *World, name string) *Future[T] {
	return &Future[T]{q: NewQueue[T](w, "future:"+name)}
}

// Resolve sets the value. Resolving twice is a no-op for waiters that
// already consumed the first value.
func (f *Future[T]) Resolve(v T) { f.q.Push(v); f.q.Close() }

// Wait blocks until the future is resolved. ok is false if the future was
// abandoned (resolved never, queue closed).
func (f *Future[T]) Wait() (T, bool) { return f.q.Pop() }

// WaitTimeout is Wait with a virtual-time deadline.
func (f *Future[T]) WaitTimeout(d time.Duration) (T, bool) { return f.q.PopTimeout(d) }

// Fail abandons the future, unblocking waiters with ok=false.
func (f *Future[T]) Fail() { f.q.Close() }

// WaitGroup tracks a set of concurrent tasks on the virtual clock.
type WaitGroup struct {
	w     *World
	count int
	done  []chan struct{}
}

// NewWaitGroup returns a WaitGroup bound to w.
func NewWaitGroup(w *World) *WaitGroup { return &WaitGroup{w: w} }

// Add increments the counter by n.
func (g *WaitGroup) Add(n int) { g.count += n }

// Done decrements the counter, waking waiters when it reaches zero.
func (g *WaitGroup) Done() {
	g.count--
	if g.count <= 0 {
		for _, ch := range g.done {
			g.w.ready(ch)
		}
		g.done = nil
	}
}

// Wait blocks until the counter reaches zero.
func (g *WaitGroup) Wait() {
	for g.count > 0 {
		ch := make(chan struct{})
		g.done = append(g.done, ch)
		g.w.block(ch, "waitgroup")
	}
}
