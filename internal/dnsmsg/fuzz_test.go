package dnsmsg

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
)

// nameRoundTrips reports whether a decoded name survives re-encoding
// unchanged. The decoder joins label bytes with '.' separators, so a
// wire label that itself contains a dot (legal on the wire, absurd in
// practice) or is empty decodes into a string the encoder would split
// differently; those names are excluded from the round-trip property
// rather than from Decode.
func nameRoundTrips(name string) bool {
	if name == "." {
		return true
	}
	if strings.HasSuffix(name, ".") {
		return false
	}
	for _, l := range strings.Split(name, ".") {
		if l == "" || len(l) > 63 {
			return false
		}
	}
	return true
}

func resourceRoundTrips(r *Resource) bool {
	if !nameRoundTrips(r.Name) {
		return false
	}
	switch r.Type {
	case TypeA:
		// A malformed rdata length leaves Addr invalid; the encoder
		// would emit 16 zero bytes for it, which is not the input.
		return r.Addr.Is4()
	case TypeAAAA:
		return r.Addr.IsValid()
	case TypeCNAME, TypeNS:
		return nameRoundTrips(r.Target)
	}
	return true
}

// FuzzDecode checks three properties on arbitrary wire input: Decode
// never panics (compression loops and truncations must surface as
// errors), any message Decode accepts re-encodes to wire the decoder
// accepts again with identical field content, and the encoding is a
// fixed point (encode∘decode∘encode == encode), so compression cannot
// oscillate.
func FuzzDecode(f *testing.F) {
	// Well-formed messages exercising each encoder path.
	q := NewQuery(0x1234, "dns.example.com", TypeA)
	f.Add(q.Encode())
	r := Reply(q)
	r.AnswerA(netip.AddrFrom4([4]byte{192, 0, 2, 1}), 300)
	r.Answers = append(r.Answers, Resource{
		Name: "dns.example.com", Type: TypeCNAME, Class: ClassIN, TTL: 60,
		Target: "cdn.example.com",
	})
	r.Authorities = append(r.Authorities, Resource{
		Name: "example.com", Type: TypeNS, Class: ClassIN, TTL: 86400,
		Target: "ns1.example.com",
	})
	r.Additionals = append(r.Additionals, Resource{
		Name: "ns1.example.com", Type: TypeTXT, Class: ClassIN, TTL: 30,
		Data: []byte("\x04text"),
	})
	f.Add(r.Encode())
	aaaa := NewQuery(7, ".", TypeAAAA)
	f.Add(aaaa.Encode())
	// Hostile inputs: truncated header, and a compression pointer at the
	// first question name pointing into the header.
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{
		0, 9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, // header, qdcount=1
		0xc0, 0x02, // name: pointer to offset 2 (header bytes)
		0, 1, 0, 1, // type A, class IN
	})

	f.Fuzz(func(t *testing.T, b []byte) {
		m1, err := Decode(b)
		if err != nil {
			return
		}
		for i := range m1.Questions {
			if !nameRoundTrips(m1.Questions[i].Name) {
				return
			}
		}
		for _, sec := range [][]Resource{m1.Answers, m1.Authorities, m1.Additionals} {
			for i := range sec {
				if !resourceRoundTrips(&sec[i]) {
					return
				}
			}
		}
		wire := m1.AppendEncode(nil)
		m2, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v\ninput: %x\nwire:  %x", err, b, wire)
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("round trip changed the message:\nbefore: %+v\nafter:  %+v", m1, m2)
		}
		wire2 := m2.AppendEncode(nil)
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("encoding is not a fixed point:\nfirst:  %x\nsecond: %x", wire, wire2)
		}
	})
}
