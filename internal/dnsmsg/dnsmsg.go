// Package dnsmsg implements the DNS wire format (RFC 1035) with EDNS0
// (RFC 6891): message header, questions, resource records for the types
// the study uses, and domain-name compression on encode and decode.
package dnsmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Type is a resource record type.
type Type uint16

// Record types used by the study.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
)

func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a resource record class. Only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a response code.
type RCode uint8

// Response codes.
const (
	RCodeSuccess  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeRefused  RCode = 5
)

// Question is a query name/type/class triple.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// Resource is a resource record.
type Resource struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	// Data holds the record payload: for A/AAAA the address bytes, for
	// CNAME/NS an encoded name is produced from Target, otherwise raw.
	Data []byte
	// Addr is used for A and AAAA records.
	Addr netip.Addr
	// Target is used for CNAME and NS records.
	Target string
}

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	OpCode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode

	Questions   []Question
	Answers     []Resource
	Authorities []Resource
	Additionals []Resource

	// EDNS0 reflects an OPT pseudo-record in Additionals. When UDPSize is
	// non-zero an OPT record is appended on encode.
	UDPSize uint16
}

// NewQuery returns a recursive query for (name, type) with the given ID
// and an EDNS0 OPT advertising a 1232-byte UDP payload, matching common
// stub resolver behaviour.
func NewQuery(id uint16, name string, t Type) Message {
	return Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: t, Class: ClassIN}},
		UDPSize:          1232,
	}
}

// Reply constructs a response skeleton for q (same ID and question,
// response and recursion-available bits set).
func Reply(q Message) Message {
	return Message{
		ID:                 q.ID,
		Response:           true,
		RecursionDesired:   q.RecursionDesired,
		RecursionAvailable: true,
		Questions:          append([]Question(nil), q.Questions...),
		UDPSize:            q.UDPSize,
	}
}

var (
	errShortMessage = errors.New("dnsmsg: short message")
	errBadName      = errors.New("dnsmsg: malformed name")
	errLoop         = errors.New("dnsmsg: compression loop")
)

// Encode serializes the message to wire format.
func (m *Message) Encode() []byte {
	// One right-sized allocation beats letting append discover the
	// message size 16 bytes at a time.
	return m.AppendEncode(make([]byte, 0, 512))
}

// AppendEncode appends the wire encoding to dst and returns the extended
// slice, reusing dst's capacity (servers lease dst from a byte pool).
func (m *Message) AppendEncode(dst []byte) []byte {
	var e encoder
	e.buf = dst
	e.base = len(dst) // compression offsets are message-relative
	e.names = e.nameArr[:0]
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.OpCode&0xf) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0xf)

	nAdds := len(m.Additionals)
	if m.UDPSize > 0 {
		nAdds++ // OPT pseudo-record appended below
	}

	e.u16(m.ID)
	e.u16(flags)
	e.u16(uint16(len(m.Questions)))
	e.u16(uint16(len(m.Answers)))
	e.u16(uint16(len(m.Authorities)))
	e.u16(uint16(nAdds))
	for i := range m.Questions {
		q := &m.Questions[i]
		e.name(q.Name)
		e.u16(uint16(q.Type))
		e.u16(uint16(q.Class))
	}
	for _, sec := range [3][]Resource{m.Answers, m.Authorities, m.Additionals} {
		for i := range sec {
			e.resource(&sec[i])
		}
	}
	if m.UDPSize > 0 {
		opt := Resource{Name: ".", Type: TypeOPT, Class: Class(m.UDPSize)}
		e.resource(&opt)
	}
	return e.buf
}

// nameOffset records where a name suffix was written, for compression.
// A small linear table beats a map here: messages carry a handful of
// names, and the table lives on the encoder's stack frame.
type nameOffset struct {
	suffix string
	off    int
}

type encoder struct {
	buf     []byte
	base    int // message start within buf
	names   []nameOffset
	nameArr [24]nameOffset
}

func (e *encoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// name encodes a domain name with compression against previously written
// names. Suffixes are substrings of name, so recording them costs no
// allocation.
func (e *encoder) name(name string) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		e.buf = append(e.buf, 0)
		return
	}
	for i := 0; i < len(name); {
		suffix := name[i:]
		for _, n := range e.names {
			if n.suffix == suffix {
				e.u16(0xc000 | uint16(n.off))
				return
			}
		}
		if len(e.buf)-e.base < 0x3fff {
			e.names = append(e.names, nameOffset{suffix, len(e.buf) - e.base})
		}
		l := suffix
		if j := strings.IndexByte(suffix, '.'); j >= 0 {
			l = suffix[:j]
			i += j + 1
		} else {
			i = len(name)
		}
		if len(l) > 63 {
			l = l[:63]
		}
		e.buf = append(e.buf, byte(len(l)))
		e.buf = append(e.buf, l...)
	}
	e.buf = append(e.buf, 0)
}

func (e *encoder) resource(r *Resource) {
	e.name(r.Name)
	e.u16(uint16(r.Type))
	e.u16(uint16(r.Class))
	e.u32(r.TTL)
	lenAt := len(e.buf)
	e.u16(0) // patched below
	start := len(e.buf)
	switch r.Type {
	case TypeA, TypeAAAA:
		if r.Addr.Is4() {
			a := r.Addr.As4()
			e.buf = append(e.buf, a[:]...)
		} else {
			a := r.Addr.As16()
			e.buf = append(e.buf, a[:]...)
		}
	case TypeCNAME, TypeNS:
		e.name(r.Target)
	default:
		e.buf = append(e.buf, r.Data...)
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(len(e.buf)-start))
}

// Decode parses a wire-format message.
func Decode(b []byte) (*Message, error) {
	d := decoder{buf: b}
	m := &Message{}
	id, err := d.u16()
	if err != nil {
		return nil, err
	}
	m.ID = id
	flags, err := d.u16()
	if err != nil {
		return nil, err
	}
	m.Response = flags&(1<<15) != 0
	m.OpCode = uint8(flags >> 11 & 0xf)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xf)

	var counts [4]uint16
	for i := range counts {
		if counts[i], err = d.u16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = d.name(); err != nil {
			return nil, err
		}
		t, err := d.u16()
		if err != nil {
			return nil, err
		}
		c, err := d.u16()
		if err != nil {
			return nil, err
		}
		q.Type, q.Class = Type(t), Class(c)
		m.Questions = append(m.Questions, q)
	}
	secs := []*[]Resource{&m.Answers, &m.Authorities, &m.Additionals}
	for si, sec := range secs {
		for i := 0; i < int(counts[si+1]); i++ {
			r, err := d.resource()
			if err != nil {
				return nil, err
			}
			if r.Type == TypeOPT {
				m.UDPSize = uint16(r.Class)
				continue
			}
			*sec = append(*sec, r)
		}
	}
	return m, nil
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u16() (uint16, error) {
	if d.off+2 > len(d.buf) {
		return 0, errShortMessage
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, errShortMessage
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) name() (string, error) {
	s, next, err := d.nameAt(d.off)
	if err != nil {
		return "", err
	}
	d.off = next
	return s, nil
}

// nameAt decodes a possibly compressed name starting at off. It returns
// the name and the offset just past the name's first encoding. Labels
// accumulate in a stack buffer (names are at most 255 bytes on the wire)
// so the only allocation is the returned string; compression pointers
// are followed iteratively and must point strictly backwards, which
// bounds the walk without a depth counter.
func (d *decoder) nameAt(off int) (string, int, error) {
	var arr [256]byte
	b := arr[:0]
	end := -1 // offset just past the first encoding, once known
	for {
		if off >= len(d.buf) {
			return "", 0, errShortMessage
		}
		l := int(d.buf[off])
		switch {
		case l == 0:
			off++
			if end < 0 {
				end = off
			}
			if len(b) == 0 {
				return ".", end, nil
			}
			return string(b), end, nil
		case l&0xc0 == 0xc0:
			if off+2 > len(d.buf) {
				return "", 0, errShortMessage
			}
			ptr := int(binary.BigEndian.Uint16(d.buf[off:]) & 0x3fff)
			if ptr >= off {
				return "", 0, errLoop
			}
			if end < 0 {
				end = off + 2
			}
			off = ptr
		case l&0xc0 != 0:
			return "", 0, errBadName
		default:
			off++
			if off+l > len(d.buf) {
				return "", 0, errShortMessage
			}
			if len(b) > 0 {
				b = append(b, '.')
			}
			if len(b)+l > len(arr) {
				return "", 0, errBadName
			}
			b = append(b, d.buf[off:off+l]...)
			off += l
		}
	}
}

func (d *decoder) resource() (Resource, error) {
	var r Resource
	var err error
	if r.Name, err = d.name(); err != nil {
		return r, err
	}
	t, err := d.u16()
	if err != nil {
		return r, err
	}
	c, err := d.u16()
	if err != nil {
		return r, err
	}
	ttl, err := d.u32()
	if err != nil {
		return r, err
	}
	rdlen, err := d.u16()
	if err != nil {
		return r, err
	}
	r.Type, r.Class, r.TTL = Type(t), Class(c), ttl
	if d.off+int(rdlen) > len(d.buf) {
		return r, errShortMessage
	}
	rdata := d.buf[d.off : d.off+int(rdlen)]
	switch r.Type {
	case TypeA:
		if len(rdata) == 4 {
			r.Addr = netip.AddrFrom4([4]byte(rdata))
		}
	case TypeAAAA:
		if len(rdata) == 16 {
			r.Addr = netip.AddrFrom16([16]byte(rdata))
		}
	case TypeCNAME, TypeNS:
		target, _, err := d.nameAt(d.off)
		if err != nil {
			return r, err
		}
		r.Target = target
	default:
		r.Data = append([]byte(nil), rdata...)
	}
	d.off += int(rdlen)
	return r, nil
}

// AnswerA appends an A record answering the first question.
func (m *Message) AnswerA(addr netip.Addr, ttl uint32) {
	if len(m.Questions) == 0 {
		return
	}
	m.Answers = append(m.Answers, Resource{
		Name: m.Questions[0].Name, Type: TypeA, Class: ClassIN, TTL: ttl, Addr: addr,
	})
}

// FirstA returns the first A answer's address.
func (m *Message) FirstA() (netip.Addr, bool) {
	for _, a := range m.Answers {
		if a.Type == TypeA && a.Addr.IsValid() {
			return a.Addr, true
		}
	}
	return netip.Addr{}, false
}

// String renders a compact dig-like summary, useful in examples.
func (m *Message) String() string {
	var sb strings.Builder
	kind := "query"
	if m.Response {
		kind = "response"
	}
	fmt.Fprintf(&sb, "%s id=%d rcode=%d", kind, m.ID, m.RCode)
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, " %s/%s", q.Name, q.Type)
	}
	for _, a := range m.Answers {
		switch a.Type {
		case TypeA, TypeAAAA:
			fmt.Fprintf(&sb, " -> %s", a.Addr)
		case TypeCNAME:
			fmt.Fprintf(&sb, " -> CNAME %s", a.Target)
		}
	}
	return sb.String()
}
