package dnsmsg

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "google.com", TypeA)
	b := q.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || !got.RecursionDesired {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "google.com" || got.Questions[0].Type != TypeA {
		t.Errorf("question mismatch: %+v", got.Questions)
	}
	if got.UDPSize != 1232 {
		t.Errorf("UDPSize = %d, want 1232 (EDNS0 OPT)", got.UDPSize)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "example.org", TypeA)
	r := Reply(q)
	r.AnswerA(netip.MustParseAddr("93.184.216.34"), 300)
	b := r.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.RecursionAvailable {
		t.Error("response bits not set")
	}
	addr, ok := got.FirstA()
	if !ok || addr != netip.MustParseAddr("93.184.216.34") {
		t.Errorf("FirstA = %v, %v", addr, ok)
	}
	if got.Answers[0].Name != "example.org" || got.Answers[0].TTL != 300 {
		t.Errorf("answer = %+v", got.Answers[0])
	}
}

func TestNameCompressionShrinksMessage(t *testing.T) {
	q := NewQuery(1, "www.example.com", TypeA)
	r := Reply(q)
	r.AnswerA(netip.MustParseAddr("1.2.3.4"), 60)
	b := r.Encode()
	// The answer's owner name must be a 2-byte pointer, not a repeat of
	// the 17-byte name encoding.
	count := strings.Count(string(b), "example")
	if count != 1 {
		t.Errorf("name appears %d times in encoding, want 1 (compression)", count)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != "www.example.com" {
		t.Errorf("decompressed name = %q", got.Answers[0].Name)
	}
}

func TestCNAMERoundTrip(t *testing.T) {
	q := NewQuery(2, "google.com", TypeA)
	r := Reply(q)
	r.Answers = append(r.Answers, Resource{
		Name: "google.com", Type: TypeCNAME, Class: ClassIN, TTL: 60,
		Target: "www.google.com",
	})
	got, err := Decode(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Target != "www.google.com" {
		t.Errorf("CNAME target = %q", got.Answers[0].Target)
	}
}

func TestRCodeRoundTrip(t *testing.T) {
	for _, rc := range []RCode{RCodeSuccess, RCodeFormErr, RCodeServFail, RCodeNXDomain, RCodeRefused} {
		m := NewQuery(1, "x.test", TypeA)
		m.Response = true
		m.RCode = rc
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got.RCode != rc {
			t.Errorf("rcode = %d, want %d", got.RCode, rc)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x12},
		{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}, // claims a question, no data
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: Decode succeeded on truncated input", i)
		}
	}
}

func TestCompressionPointerLoopRejected(t *testing.T) {
	// Header + a question whose name is a pointer to itself.
	b := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xc0, 12, // pointer to offset 12 (itself)
		0, 1, 0, 1,
	}
	if _, err := Decode(b); err == nil {
		t.Error("self-referential compression pointer accepted")
	}
}

func TestRootName(t *testing.T) {
	q := Message{ID: 1, Questions: []Question{{Name: ".", Type: TypeNS, Class: ClassIN}}}
	got, err := Decode(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "." {
		t.Errorf("root name = %q", got.Questions[0].Name)
	}
}

func TestQuerySizeRealistic(t *testing.T) {
	// An A query for google.com with EDNS0 is 39 bytes on the wire; the
	// paper's Table 1 reports 59 B median DoUDP query *IP payload* (DNS
	// payload + 8 B UDP header + padding-free EDNS). Sanity-check we are
	// in that neighbourhood.
	q := NewQuery(1, "google.com", TypeA)
	n := len(q.Encode())
	if n < 28 || n > 64 {
		t.Errorf("query size = %d, want 28..64", n)
	}
}

// randName generates a syntactically valid DNS name from the fuzz source.
func randName(r *rand.Rand) string {
	labels := 1 + r.Intn(4)
	parts := make([]string, labels)
	for i := range parts {
		n := 1 + r.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + r.Intn(26))
		}
		parts[i] = string(b)
	}
	return strings.Join(parts, ".")
}

func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	f := func(id uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Message{
			ID:               id,
			RecursionDesired: r.Intn(2) == 0,
			Response:         r.Intn(2) == 0,
			RCode:            RCode(r.Intn(6)),
		}
		nq := 1 + r.Intn(3)
		for i := 0; i < nq; i++ {
			m.Questions = append(m.Questions, Question{Name: randName(r), Type: TypeA, Class: ClassIN})
		}
		na := r.Intn(4)
		for i := 0; i < na; i++ {
			addr := netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
			m.Answers = append(m.Answers, Resource{
				Name: m.Questions[0].Name, Type: TypeA, Class: ClassIN,
				TTL: uint32(r.Intn(3600)), Addr: addr,
			})
		}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		if got.ID != m.ID || got.Response != m.Response || got.RCode != m.RCode {
			return false
		}
		if !reflect.DeepEqual(got.Questions, m.Questions) {
			return false
		}
		if len(got.Answers) != len(m.Answers) {
			return false
		}
		for i := range got.Answers {
			if got.Answers[i].Addr != m.Answers[i].Addr || got.Answers[i].Name != m.Answers[i].Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("Decode panicked on %x: %v", b, p)
			}
		}()
		Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
