package geo

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestDistanceKnownPairs(t *testing.T) {
	frankfurt := Coord{50.11, 8.68}
	singapore := Coord{1.35, 103.82}
	d := DistanceKm(frankfurt, singapore)
	if d < 9500 || d > 10800 {
		t.Errorf("Frankfurt-Singapore = %.0f km, want ~10300", d)
	}
	if z := DistanceKm(frankfurt, frankfurt); z > 0.001 {
		t.Errorf("zero distance = %f", z)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a := Coord{rng.Float64()*160 - 80, rng.Float64()*360 - 180}
		b := Coord{rng.Float64()*160 - 80, rng.Float64()*360 - 180}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		if diff := d1 - d2; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("asymmetric distance: %f vs %f", d1, d2)
		}
	}
}

func TestPlaceResolversCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	places := PlaceResolvers(rng, nil)
	if len(places) != 313 {
		t.Fatalf("placed %d resolvers, want 313", len(places))
	}
	got := map[Continent]int{}
	for _, p := range places {
		got[p.Continent]++
	}
	for c, want := range VerifiedResolverCounts {
		if got[c] != want {
			t.Errorf("%v: %d resolvers, want %d", c, got[c], want)
		}
	}
}

func TestASNDistributionMatchesPaper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	places := PlaceResolvers(rng, nil)
	byAS := map[string]int{}
	for _, p := range places {
		if p.ASN == "" {
			t.Fatal("resolver without ASN")
		}
		byAS[p.ASN]++
	}
	if byAS["ORACLE"] != 47 {
		t.Errorf("ORACLE hosts %d, want 47", byAS["ORACLE"])
	}
	if byAS["DIGITALOCEAN"] != 20 {
		t.Errorf("DIGITALOCEAN hosts %d, want 20", byAS["DIGITALOCEAN"])
	}
	for as, n := range byAS {
		switch as {
		case "ORACLE", "DIGITALOCEAN", "MNGTNET", "OVHCLOUD":
		default:
			if n > 12 {
				t.Errorf("small AS %s hosts %d resolvers, paper says <= 12", as, n)
			}
		}
	}
}

// TestVantageMedianRTTOrdering checks that the calibrated path model
// reproduces the ordering of Fig. 2b: EU sees the lowest median RTT to
// the verified resolver population, AF the highest, and all vantage
// points fall within a plausible band around the paper's medians.
func TestVantageMedianRTTOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	places := PlaceResolvers(rng, nil)
	medians := map[string]time.Duration{}
	for _, vp := range VantagePoints() {
		rtts := make([]time.Duration, 0, len(places))
		for _, p := range places {
			rtts = append(rtts, RTT(vp.Coord, p.Coord))
		}
		sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
		medians[vp.Name] = rtts[len(rtts)/2]
	}
	// Paper Fig. 2b (DoUDP resolve time, ~1 RTT): EU ~106ms ... AF ~229ms.
	within := func(name string, lo, hi time.Duration) {
		m := medians[name]
		if m < lo || m > hi {
			t.Errorf("%s median RTT = %v, want in [%v, %v]", name, m, lo, hi)
		}
	}
	within("EU", 40*time.Millisecond, 170*time.Millisecond)
	within("AS", 80*time.Millisecond, 230*time.Millisecond)
	within("NA", 90*time.Millisecond, 230*time.Millisecond)
	within("AF", 150*time.Millisecond, 320*time.Millisecond)
	within("OC", 140*time.Millisecond, 300*time.Millisecond)
	within("SA", 150*time.Millisecond, 300*time.Millisecond)
	if medians["EU"] >= medians["AF"] {
		t.Errorf("EU median (%v) should be below AF median (%v)", medians["EU"], medians["AF"])
	}
	t.Logf("median RTTs: %v", medians)
}

func TestOneWayDelayMonotonicInDistance(t *testing.T) {
	a := Coord{0, 0}
	prev := time.Duration(0)
	for lon := 1.0; lon <= 180; lon += 10 {
		d := OneWayDelay(a, Coord{0, lon})
		if d <= prev {
			t.Fatalf("delay not monotonic at lon=%v: %v <= %v", lon, d, prev)
		}
		prev = d
	}
}

func TestVantagePointsOnePerContinent(t *testing.T) {
	seen := map[Continent]bool{}
	for _, vp := range VantagePoints() {
		if seen[vp.Continent] {
			t.Errorf("duplicate vantage point for %v", vp.Continent)
		}
		seen[vp.Continent] = true
	}
	if len(seen) != 6 {
		t.Errorf("%d continents covered, want 6", len(seen))
	}
}
