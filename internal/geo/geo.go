// Package geo models the geography of the measurement study: the six
// Amazon EC2 vantage points (one per continent), the placement of the 313
// verified DoX resolvers (Fig. 1 of the paper: EU 130, AS 128, NA 49, and
// AF/OC/SA 2 each), their Autonomous System assignment, and the mapping
// from great-circle distance to network propagation delay.
package geo

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Continent identifies one of the six continents of the study.
type Continent int

// Continents in the paper's ordering (by number of verified resolvers).
const (
	EU Continent = iota
	AS
	NA
	AF
	OC
	SA
)

var continentNames = [...]string{"EU", "AS", "NA", "AF", "OC", "SA"}

func (c Continent) String() string {
	if c < 0 || int(c) >= len(continentNames) {
		return fmt.Sprintf("Continent(%d)", int(c))
	}
	return continentNames[c]
}

// Continents lists all continents in paper order.
var Continents = []Continent{EU, AS, NA, AF, OC, SA}

// Coord is a geographic coordinate in degrees.
type Coord struct {
	Lat, Lon float64
}

// VantagePoint is one of the study's six EC2 instances.
type VantagePoint struct {
	Name      string
	Region    string
	Continent Continent
	Coord     Coord
}

// VantagePoints returns the six vantage points, one per continent, at the
// AWS regions used by distributed-measurement studies of this kind.
func VantagePoints() []VantagePoint {
	return []VantagePoint{
		{Name: "EU", Region: "eu-central-1", Continent: EU, Coord: Coord{50.11, 8.68}},      // Frankfurt
		{Name: "AS", Region: "ap-southeast-1", Continent: AS, Coord: Coord{1.35, 103.82}},   // Singapore
		{Name: "NA", Region: "us-east-1", Continent: NA, Coord: Coord{38.95, -77.45}},       // N. Virginia
		{Name: "AF", Region: "af-south-1", Continent: AF, Coord: Coord{-33.93, 18.42}},      // Cape Town
		{Name: "OC", Region: "ap-southeast-2", Continent: OC, Coord: Coord{-33.87, 151.21}}, // Sydney
		{Name: "SA", Region: "sa-east-1", Continent: SA, Coord: Coord{-23.55, -46.63}},      // Sao Paulo
	}
}

// anchor is a population/hosting center around which resolvers cluster.
type anchor struct {
	coord  Coord
	weight int
}

var anchors = map[Continent][]anchor{
	EU: {
		{Coord{50.11, 8.68}, 4},  // Frankfurt
		{Coord{52.37, 4.90}, 3},  // Amsterdam
		{Coord{48.86, 2.35}, 2},  // Paris
		{Coord{51.51, -0.13}, 2}, // London
		{Coord{55.75, 37.62}, 2}, // Moscow
		{Coord{41.01, 28.98}, 1}, // Istanbul
		{Coord{59.33, 18.07}, 1}, // Stockholm
	},
	AS: {
		{Coord{1.35, 103.82}, 3},  // Singapore
		{Coord{35.68, 139.69}, 2}, // Tokyo
		{Coord{22.32, 114.17}, 2}, // Hong Kong
		{Coord{37.57, 126.98}, 1}, // Seoul
		{Coord{19.08, 72.88}, 2},  // Mumbai
		{Coord{25.20, 55.27}, 1},  // Dubai
		{Coord{39.90, 116.40}, 1}, // Beijing
	},
	NA: {
		{Coord{38.95, -77.45}, 3},  // Ashburn
		{Coord{37.34, -121.89}, 2}, // San Jose
		{Coord{41.88, -87.63}, 1},  // Chicago
		{Coord{32.78, -96.80}, 1},  // Dallas
		{Coord{43.65, -79.38}, 1},  // Toronto
	},
	AF: {
		{Coord{-26.20, 28.05}, 1}, // Johannesburg
		{Coord{30.04, 31.24}, 1},  // Cairo
	},
	OC: {
		{Coord{-33.87, 151.21}, 2}, // Sydney
		{Coord{-36.85, 174.76}, 1}, // Auckland
	},
	SA: {
		{Coord{-23.55, -46.63}, 2}, // Sao Paulo
		{Coord{-34.60, -58.38}, 1}, // Buenos Aires
	},
}

// VerifiedResolverCounts is the paper's per-continent count of the 313
// verified DoX resolvers (Fig. 1).
var VerifiedResolverCounts = map[Continent]int{
	EU: 130, AS: 128, NA: 49, AF: 2, OC: 2, SA: 2,
}

// ASNDistribution reproduces the paper's Autonomous System distribution:
// the four named systems host 47/20/18/16 of the 313 resolvers and the
// remaining 212 are spread over 103 further ASes with at most 12 each.
type ASName = string

// Place is a geolocated resolver site.
type Place struct {
	Continent Continent
	Coord     Coord
	ASN       string
}

// PlaceResolvers places n resolvers per continent following the anchor
// distribution, with coordinates jittered around hosting centers, and
// assigns Autonomous Systems per the paper's distribution. The counts map
// defaults to VerifiedResolverCounts when nil.
func PlaceResolvers(rng *rand.Rand, counts map[Continent]int) []Place {
	if counts == nil {
		counts = VerifiedResolverCounts
	}
	var places []Place
	for _, c := range Continents {
		n := counts[c]
		as := anchors[c]
		total := 0
		for _, a := range as {
			total += a.weight
		}
		for i := 0; i < n; i++ {
			pick := rng.Intn(total)
			var chosen anchor
			for _, a := range as {
				if pick < a.weight {
					chosen = a
					break
				}
				pick -= a.weight
			}
			// Jitter within ~600 km of the anchor.
			lat := chosen.coord.Lat + rng.NormFloat64()*2.5
			lon := chosen.coord.Lon + rng.NormFloat64()*2.5
			places = append(places, Place{Continent: c, Coord: Coord{lat, lon}})
		}
	}
	assignASNs(rng, places)
	return places
}

func assignASNs(rng *rand.Rand, places []Place) {
	n := len(places)
	// Scale the paper's top-AS counts to the population size.
	scale := func(k int) int {
		v := k * n / 313
		if v < 1 && n > 0 {
			v = 1
		}
		return v
	}
	type asQuota struct {
		name  string
		quota int
	}
	var quotas []asQuota
	assigned := 0
	for _, top := range []asQuota{
		{"ORACLE", scale(47)},
		{"DIGITALOCEAN", scale(20)},
		{"MNGTNET", scale(18)},
		{"OVHCLOUD", scale(16)},
	} {
		if assigned+top.quota > n {
			top.quota = n - assigned
		}
		if top.quota <= 0 {
			break
		}
		quotas = append(quotas, top)
		assigned += top.quota
	}
	// Remaining resolvers go to small ASes (<=12 each in the paper).
	small := 0
	for assigned < n {
		small++
		sz := 1 + rng.Intn(12)
		if assigned+sz > n {
			sz = n - assigned
		}
		quotas = append(quotas, asQuota{fmt.Sprintf("AS-%03d", small), sz})
		assigned += sz
	}
	perm := rng.Perm(n)
	idx := 0
	for _, q := range quotas {
		for i := 0; i < q.quota; i++ {
			places[perm[idx]].ASN = q.name
			idx++
		}
	}
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two coordinates.
func DistanceKm(a, b Coord) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dla := (b.Lat - a.Lat) * math.Pi / 180
	dlo := (b.Lon - a.Lon) * math.Pi / 180
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// Path model calibration. Signals propagate at roughly 2/3 c in fiber and
// routes are longer than great circles; routeStretch folds both the
// detour factor and queueing into one multiplier. baseDelay covers the
// fixed cost of first/last-mile hops.
const (
	fiberKmPerMs = 200.0 // ~2/3 speed of light, km per millisecond
	routeStretch = 1.9
	baseDelay    = 4 * time.Millisecond
)

// OneWayDelay converts a geodesic distance into a one-way propagation
// delay under the calibrated path model.
func OneWayDelay(a, b Coord) time.Duration {
	km := DistanceKm(a, b)
	prop := time.Duration(km / fiberKmPerMs * routeStretch * float64(time.Millisecond))
	return baseDelay + prop
}

// RTT is twice the one-way delay.
func RTT(a, b Coord) time.Duration { return 2 * OneWayDelay(a, b) }
