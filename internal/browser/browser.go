// Package browser is the page-load engine of the web performance
// methodology: the Chromium stand-in that resolves names through the
// local DNS proxy and loads the modeled pages, reporting First
// Contentful Paint and Page Load Time.
//
// DNS resolution uses the real protocol stack (UDP to the proxy, which
// forwards over the configured DoX upstream), including Chromium's
// application-layer retransmission with its 5-second initial timeout —
// the mechanism the paper identifies behind DoUDP's outlier tail.
// Content fetches are analytic (connection setup + per-resource round
// trip + serialization): the paper treats web content delivery as a
// confound, not a subject, and holds it constant across DNS protocols.
// Serialization, however, runs through the vantage host's real netem
// access link (netem.Network.OccupyDown): content downloads reserve the
// same shared downlink bottleneck the DNS datagrams traverse, so on a
// slow access network (E21's 3G cell) parallel fetches contend and the
// access profile's last-mile latency stretches every content round
// trip. Hosts without an access link keep the historical analytic
// 50 Mbit/s assumption.
package browser

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/netapi"
	"repro/internal/pages"
)

// Chromium's stub retransmission behaviour (resolv.conf defaults).
const (
	stubTimeout = 5 * time.Second
	stubRetries = 2
)

// Engine loads pages from one vantage backend through a local DNS
// proxy. Content-fetch timing comes from the backend's access-link
// model; there is no analytic bandwidth knob.
type Engine struct {
	Backend netapi.Backend
	Proxy   netip.AddrPort
}

// Result is one page load's outcome.
type Result struct {
	FCP        time.Duration
	PLT        time.Duration
	DNSQueries int
	DNSTime    time.Duration // cumulative stub-observed resolution time
	Err        error
}

// accessDelay is the one-way last-mile latency of the backend's access
// link, paid on every content round trip (DNS datagrams pay it inside
// the network model itself).
func (e *Engine) accessDelay() time.Duration {
	return e.Backend.AccessDelay()
}

// resolve performs one stub lookup through the proxy, with Chromium's
// application-layer retransmission.
func (e *Engine) resolve(name string, qid uint16) (netip.Addr, time.Duration, error) {
	rt := e.Backend
	sock, err := rt.DialUDP(8)
	if err != nil {
		return netip.Addr{}, 0, err
	}
	defer sock.Close()
	start := rt.Now()
	q := dnsmsg.NewQuery(qid, name, dnsmsg.TypeA)
	wire := q.Encode()
	for attempt := 0; attempt <= stubRetries; attempt++ {
		sock.Send(e.Proxy, append([]byte(nil), wire...))
		deadline := rt.Now() + stubTimeout
		for {
			d, ok := sock.RecvTimeout(deadline - rt.Now())
			if !ok {
				break // retransmit
			}
			resp, err := dnsmsg.Decode(d.Payload)
			if err != nil || resp.ID != qid {
				continue
			}
			addr, ok := resp.FirstA()
			if !ok {
				return netip.Addr{}, 0, fmt.Errorf("browser: no A record for %s", name)
			}
			return addr, rt.Now() - start, nil
		}
	}
	return netip.Addr{}, rt.Now() - start, fmt.Errorf("browser: resolution of %s timed out", name)
}

// fetch models retrieving size bytes over an established connection:
// one request round trip (origin RTT plus the access link's last-mile
// latency both ways), then serialization through the shared downlink.
// It sleeps through both phases, reserving the downlink (OccupyDown)
// only once the request round trip has elapsed — the moment response
// bytes can actually reach the link — so concurrent fetches and DNS
// datagrams queue behind real bytes, never behind a request still in
// flight.
func (e *Engine) fetch(originRTT time.Duration, size int) {
	e.Backend.Sleep(originRTT + 2*e.accessDelay())
	e.Backend.Sleep(e.Backend.OccupyDown(size))
}

// connSetup models TCP+TLS 1.3 connection establishment to the origin.
func (e *Engine) connSetup(originRTT time.Duration) time.Duration {
	return 2 * (originRTT + 2*e.accessDelay())
}

// Load performs one cold-start navigation and reports FCP and PLT.
//
// Timeline (mirroring how Chromium loads a page):
//  1. resolve the landing host (through the proxy), connect, fetch HTML;
//  2. discover sub-resources; resolve all third-party hosts in parallel,
//     connect per host, fetch that host's assets sequentially;
//  3. FCP fires when the HTML and all critical assets are in, plus render
//     time; PLT fires at onLoad, after every asset and the load handlers.
func (e *Engine) Load(p *pages.Page) Result {
	rt := e.Backend
	start := rt.Now()
	res := Result{}

	addr, dnsTime, err := e.resolve(p.URL, 1)
	if err != nil {
		res.Err = err
		return res
	}
	_ = addr
	res.DNSQueries++
	res.DNSTime += dnsTime

	// Connect to the landing origin and fetch the HTML.
	rt.Sleep(e.connSetup(p.OriginRTT))
	e.fetch(p.OriginRTT, p.HTMLSize)
	htmlDone := rt.Now()

	// Group sub-resources by host, preserving page order.
	var order []string
	byHost := map[string]*hostWork{}
	for _, r := range p.Resources {
		hw, ok := byHost[r.Host]
		if !ok {
			hw = &hostWork{host: r.Host}
			byHost[r.Host] = hw
			order = append(order, r.Host)
		}
		hw.resources = append(hw.resources, r)
	}

	// Per-host fetch tasks spawn through a pre-bound adapter sharing one
	// loadState instead of per-host closures over the local variables.
	ls := &loadState{
		e:            e,
		p:            p,
		res:          &res,
		wg:           rt.NewGroup(),
		criticalDone: htmlDone,
		allDone:      htmlDone,
	}
	for i, host := range order {
		ls.wg.Add(1)
		rt.GoCall(loadHostJob, &hostJob{ls: ls, hw: byHost[host], qid: uint16(i + 2)})
	}
	ls.wg.Wait()
	if ls.firstErr != nil {
		res.Err = ls.firstErr
		return res
	}

	res.FCP = ls.criticalDone + p.RenderDelay - start
	res.PLT = ls.allDone + p.OnLoadDelay - start
	if res.FCP > res.PLT {
		res.FCP = res.PLT
	}
	return res
}

// hostWork is one host's ordered slice of sub-resources.
type hostWork struct {
	host      string
	resources []pages.Resource
}

// loadState is the shared state of one Load's parallel per-host fetch
// tasks. The sim world runs one task at a time, so the fields need no
// locking.
type loadState struct {
	e            *Engine
	p            *pages.Page
	res          *Result
	wg           netapi.Group
	firstErr     error
	criticalDone time.Duration
	allDone      time.Duration
}

type hostJob struct {
	ls  *loadState
	hw  *hostWork
	qid uint16
}

// loadHostJob resolves (if third-party) and fetches one host's assets;
// it is the pre-bound adapter shared by all per-host tasks.
func loadHostJob(v any) {
	j := v.(*hostJob)
	ls, hw := j.ls, j.hw
	defer ls.wg.Done()
	rt := ls.e.Backend
	// The landing host is already resolved and connected; third
	// parties need DNS + connection setup.
	if hw.host != ls.p.URL {
		_, dt, err := ls.e.resolve(hw.host, j.qid)
		if err != nil {
			if ls.firstErr == nil {
				ls.firstErr = err
			}
			return
		}
		ls.res.DNSQueries++
		ls.res.DNSTime += dt
		rt.Sleep(ls.e.connSetup(ls.p.OriginRTT))
	}
	for _, r := range hw.resources {
		ls.e.fetch(ls.p.OriginRTT, r.Size)
		if r.Critical && rt.Now() > ls.criticalDone {
			ls.criticalDone = rt.Now()
		}
	}
	if rt.Now() > ls.allDone {
		ls.allDone = rt.Now()
	}
}

// LoadAll navigates a list of pages sequentially, returning per-page
// results.
func (e *Engine) LoadAll(ps []*pages.Page) ([]Result, error) {
	out := make([]Result, 0, len(ps))
	for _, p := range ps {
		r := e.Load(p)
		out = append(out, r)
		if r.Err != nil {
			return out, r.Err
		}
	}
	return out, nil
}

var errNoProxy = errors.New("browser: engine has no proxy address")
