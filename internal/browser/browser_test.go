package browser

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnsproxy"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/pages"
	"repro/internal/resolver"
)

func setup(t *testing.T, seed int64, upstream dox.Protocol, mut func(*dnsproxy.Config)) (*resolver.Universe, *Engine, *dnsproxy.Proxy) {
	t.Helper()
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           seed,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
		Loss:           0,
	})
	if err != nil {
		t.Fatal(err)
	}
	vp, res := u.Vantages[0], u.Resolvers[0]
	cfg := dnsproxy.Config{
		Upstream: upstream,
		Options: dox.Options{
			Resolver:     res.Addr,
			ServerName:   res.Name,
			QUICVersions: []uint32{res.QUICVersion},
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := dnsproxy.New(vp.Backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u, &Engine{Backend: vp.Backend, Proxy: p.Addr()}, p
}

func TestLoadSimplePage(t *testing.T) {
	u, eng, _ := setup(t, 1, dox.DoUDP, nil)
	var r Result
	u.W.Go(func() { r = eng.Load(pages.ByName("wikipedia")) })
	u.W.Run()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.DNSQueries != 1 {
		t.Errorf("wikipedia used %d DNS queries, want 1", r.DNSQueries)
	}
	if r.FCP <= 0 || r.PLT < r.FCP {
		t.Errorf("FCP=%v PLT=%v", r.FCP, r.PLT)
	}
	// Simple pages load fast: roughly 1-3 seconds.
	if r.PLT > 4*time.Second {
		t.Errorf("wikipedia PLT = %v, implausibly slow", r.PLT)
	}
}

func TestDNSQueryCountsMatchPaper(t *testing.T) {
	want := map[string]int{
		"wikipedia": 1, "instagram": 1, "facebook": 3, "linkedin": 3,
		"google": 5, "baidu": 6, "twitter": 6, "netflix": 7,
		"microsoft": 8, "youtube": 9,
	}
	for _, p := range pages.Top10() {
		if got := p.DNSQueryCount(); got != want[p.Name] {
			t.Errorf("%s: %d DNS names, want %d", p.Name, got, want[p.Name])
		}
	}
	// Fig. 4 orders pages by query count; Top10 should too.
	prev := 0
	for _, p := range pages.Top10() {
		if p.DNSQueryCount() < prev {
			t.Errorf("Top10 not ordered by DNS query count at %s", p.Name)
		}
		prev = p.DNSQueryCount()
	}
}

func TestAllPagesLoadOverAllProtocols(t *testing.T) {
	for _, proto := range dox.Protocols {
		u, eng, _ := setup(t, 2, proto, nil)
		var results []Result
		var err error
		u.W.Go(func() { results, err = eng.LoadAll(pages.Top10()) })
		u.W.Run()
		if err != nil {
			t.Errorf("%v: %v", proto, err)
			continue
		}
		for i, r := range results {
			if r.Err != nil {
				t.Errorf("%v %s: %v", proto, pages.Top10()[i].Name, r.Err)
			}
		}
	}
}

// TestEncryptedUpstreamSlowerThanDoUDP verifies the core Fig. 3
// relationship on a single page: a DoQ page load is somewhat slower than
// DoUDP (handshake cost), and DoH is slower than DoQ (extra round trip).
func TestEncryptedUpstreamSlowerThanDoUDP(t *testing.T) {
	plt := map[dox.Protocol]time.Duration{}
	for _, proto := range []dox.Protocol{dox.DoUDP, dox.DoQ, dox.DoH} {
		u, eng, _ := setup(t, 3, proto, nil)
		var r Result
		u.W.Go(func() { r = eng.Load(pages.ByName("wikipedia")) })
		u.W.Run()
		if r.Err != nil {
			t.Fatalf("%v: %v", proto, r.Err)
		}
		plt[proto] = r.PLT
	}
	if plt[dox.DoQ] <= plt[dox.DoUDP] {
		t.Errorf("DoQ PLT (%v) not slower than DoUDP (%v)", plt[dox.DoQ], plt[dox.DoUDP])
	}
	if plt[dox.DoH] <= plt[dox.DoQ] {
		t.Errorf("DoH PLT (%v) not slower than DoQ (%v)", plt[dox.DoH], plt[dox.DoQ])
	}
}

// TestDoTInFlightBugTriggersExtraConnections loads a page with several
// concurrent third-party resolutions over DoT and expects the proxy to
// open extra connections (the paper's ~60%-of-page-loads bug), and none
// with the fix applied.
func TestDoTInFlightBugTriggersExtraConnections(t *testing.T) {
	u, eng, proxy := setup(t, 4, dox.DoT, nil)
	var r Result
	u.W.Go(func() { r = eng.Load(pages.ByName("youtube")) })
	u.W.Run()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if proxy.ExtraConnections == 0 {
		t.Error("buggy proxy opened no extra DoT connections on a 9-name page")
	}

	u2, eng2, proxy2 := setup(t, 4, dox.DoT, func(c *dnsproxy.Config) { c.FixDoTReuse = true })
	var r2 Result
	u2.W.Go(func() { r2 = eng2.Load(pages.ByName("youtube")) })
	u2.W.Run()
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if proxy2.ExtraConnections != 0 {
		t.Errorf("fixed proxy still opened %d extra connections", proxy2.ExtraConnections)
	}
	if r2.PLT > r.PLT {
		t.Errorf("fixed DoT (%v) slower than buggy DoT (%v)", r2.PLT, r.PLT)
	}
}

// TestAmortization verifies the paper's headline: the relative DNS cost
// of DoQ vs DoUDP shrinks as pages need more DNS queries, because the
// proxy reuses the upstream session after the first query.
func TestAmortization(t *testing.T) {
	rel := func(page string) float64 {
		var plts [2]time.Duration
		for i, proto := range []dox.Protocol{dox.DoUDP, dox.DoQ} {
			u, eng, _ := setup(t, 5, proto, nil)
			var r Result
			u.W.Go(func() { r = eng.Load(pages.ByName(page)) })
			u.W.Run()
			if r.Err != nil {
				t.Fatalf("%v %s: %v", proto, page, r.Err)
			}
			plts[i] = r.PLT
		}
		return float64(plts[1]-plts[0]) / float64(plts[0])
	}
	simple := rel("wikipedia")
	complex := rel("youtube")
	if complex >= simple {
		t.Errorf("DoQ relative cost did not amortize: wikipedia %+.1f%%, youtube %+.1f%%",
			simple*100, complex*100)
	}
	t.Logf("DoQ vs DoUDP PLT: wikipedia %+.1f%%, youtube %+.1f%%", simple*100, complex*100)
}

func TestResolutionFailureReported(t *testing.T) {
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           6,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
		Loss:           0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Engine pointed at a port where no proxy listens: every resolution
	// times out after the stub's retransmissions.
	vp := u.Vantages[0]
	eng := &Engine{Backend: vp.Backend, Proxy: netip.AddrPortFrom(vp.Host.Addr(), 9999)}
	var r Result
	u.W.Go(func() { r = eng.Load(pages.ByName("wikipedia")) })
	u.W.Run()
	if r.Err == nil {
		t.Error("load succeeded without a proxy")
	}
}
