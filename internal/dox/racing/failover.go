package racing

import (
	"sync"
	"time"

	"repro/internal/netapi"
)

// Defaults for the zero FailoverConfig fields.
const (
	DefaultEjectAfter   = 3
	DefaultCooldownBase = 2 * time.Second
	DefaultCooldownMax  = 60 * time.Second
	DefaultJitterFrac   = 0.1
)

// FailoverConfig parameterizes upstream health tracking.
type FailoverConfig struct {
	// EjectAfter is how many consecutive failures eject an upstream
	// (default DefaultEjectAfter).
	EjectAfter int
	// CooldownBase is the first ejection's cooldown; it doubles per
	// consecutive ejection up to CooldownMax (defaults
	// DefaultCooldownBase, DefaultCooldownMax).
	CooldownBase time.Duration
	CooldownMax  time.Duration
	// JitterFrac spreads each cooldown by ±JitterFrac (default
	// DefaultJitterFrac), drawn from the runtime's seeded random
	// stream — deterministic on the sim backend. Negative disables
	// jitter.
	JitterFrac float64
}

func (c *FailoverConfig) withDefaults() FailoverConfig {
	v := *c
	if v.EjectAfter == 0 {
		v.EjectAfter = DefaultEjectAfter
	}
	if v.CooldownBase == 0 {
		v.CooldownBase = DefaultCooldownBase
	}
	if v.CooldownMax == 0 {
		v.CooldownMax = DefaultCooldownMax
	}
	if v.JitterFrac == 0 {
		v.JitterFrac = DefaultJitterFrac
	}
	return v
}

// upstreamState is one upstream's health record.
type upstreamState struct {
	consecutive  int           // failures since the last success
	ejections    int           // consecutive ejections (backoff exponent)
	ejectedUntil time.Duration // healthy again at this virtual time
}

// Failover tracks the health of an ordered list of upstream resolvers
// and picks the most-preferred healthy one. An upstream that times out
// EjectAfter times in a row is ejected for a jittered exponential
// cooldown, after which the next Pick may try it again; a success
// clears its record. A readmitted upstream is on probation until that
// success: one more failure re-ejects it immediately with a doubled
// cooldown, so an ongoing outage costs one probe per cooldown rather
// than the full threshold again. The caller owns the address list —
// Failover deals only in indices, which keeps it free of any resolver
// plumbing.
//
// Like Stub, Failover is written against the netapi seam (it needs
// only the clock and the seeded random stream) and works on either
// backend.
type Failover struct {
	rt   netapi.Runtime
	cfg  FailoverConfig
	lock sync.Locker
	st   []upstreamState
}

// NewFailover tracks n upstreams, preference-ordered by index.
func NewFailover(rt netapi.Runtime, n int, cfg FailoverConfig) *Failover {
	return &Failover{
		rt:   rt,
		cfg:  cfg.withDefaults(),
		lock: rt.NewLock(),
		st:   make([]upstreamState, n),
	}
}

// Pick returns the most-preferred upstream that is not ejected. If
// every upstream is ejected it returns the one whose cooldown expires
// soonest (ties to the lower index), so the caller always has a
// target.
func (f *Failover) Pick() int {
	now := f.rt.Now()
	f.lock.Lock()
	defer f.lock.Unlock()
	best, bestUntil := 0, f.st[0].ejectedUntil
	for i := range f.st {
		until := f.st[i].ejectedUntil
		if now >= until {
			return i
		}
		if until < bestUntil {
			best, bestUntil = i, until
		}
	}
	return best
}

// Report records the outcome of one exchange against upstream i. A
// failure that reaches EjectAfter consecutive failures ejects the
// upstream; an upstream on probation (readmitted from a cooldown with
// no success since) re-ejects on a single failure.
func (f *Failover) Report(i int, ok bool) {
	f.lock.Lock()
	defer f.lock.Unlock()
	u := &f.st[i]
	if ok {
		u.consecutive = 0
		u.ejections = 0
		u.ejectedUntil = 0
		return
	}
	u.consecutive++
	if u.ejections == 0 && u.consecutive < f.cfg.EjectAfter {
		return
	}
	u.consecutive = 0
	cooldown := f.cfg.CooldownBase << u.ejections
	if cooldown > f.cfg.CooldownMax || cooldown <= 0 {
		cooldown = f.cfg.CooldownMax
	}
	if u.ejections < 62 { // keep the shift defined
		u.ejections++
	}
	if j := f.cfg.JitterFrac; j > 0 {
		// ±JitterFrac, one deterministic draw per ejection.
		spread := 1 + j*(2*f.rt.Rand().Float64()-1)
		cooldown = time.Duration(float64(cooldown) * spread)
	}
	u.ejectedUntil = f.rt.Now() + cooldown
}

// Ejected reports whether upstream i is currently ejected.
func (f *Failover) Ejected(i int) bool {
	f.lock.Lock()
	defer f.lock.Unlock()
	return f.rt.Now() < f.st[i].ejectedUntil
}
