// Package racing implements a happy-eyeballs-style resilient stub: an
// ordered ladder of DNS transports raced with staggered starts, so a
// vantage behind a hostile middlebox (UDP blackholed, port 853 blocked,
// QUIC eaten) still resolves — it just pays a bounded fallback penalty
// instead of hanging on its preferred transport.
//
// The stub is written entirely against the netapi backend seam: it
// schedules with netapi.Runtime, resolves through dox.Client, and never
// touches the simulation stack, so the identical racing logic runs on
// simnet inside the campaigns and on livenet against real resolvers.
// simlint's backendpurity analyzer enforces the boundary.
//
// Race shape (modelled on RFC 8305 happy eyeballs, transposed from
// address families to DNS transports):
//
//   - The ladder's first rung starts immediately; each later rung
//     starts Stagger after the one before it, unless a winner has
//     already been declared.
//   - Each rung attempt (connect + query) runs under a budget that
//     starts at AttemptTimeout and doubles per retry up to BackoffMax.
//   - The first rung to complete a query wins; every other attempt is
//     cancelled — attempts that already hold a session close it, and
//     attempts still blocked in a handshake are abandoned (they close
//     their session themselves when the transport gives up).
//   - The winner is sticky: later Resolve calls reuse its session
//     directly. Every ReprobeInterval a sticky winner below the top of
//     the ladder is re-raced against the more-preferred rungs, so a
//     lifted middlebox block lets the stub climb back to its preferred
//     transport.
//
// The package also provides Failover, the multi-upstream health
// tracker behind E27: eject an upstream after consecutive timeouts,
// with jittered exponential cooldown before it is retried.
package racing

import (
	"errors"
	"sync"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/netapi"
)

// DefaultLadder is the racing order: encrypted UDP transports first
// (the paper's headline finding is that DoQ is the fastest encrypted
// transport), TCP-based encrypted transports as middleboxes eat UDP,
// and classic Do53 as the last resort.
func DefaultLadder() []dox.Protocol {
	return []dox.Protocol{dox.DoQ, dox.DoH3, dox.DoT, dox.DoH, dox.DoUDP}
}

// Defaults for the zero Config fields.
const (
	DefaultStagger         = 250 * time.Millisecond
	DefaultAttemptTimeout  = 2 * time.Second
	DefaultBackoffMax      = 8 * time.Second
	DefaultReprobeInterval = 60 * time.Second
)

// Config parameterizes a racing stub.
type Config struct {
	// Options is the per-transport session configuration (Backend,
	// Resolver, TLS). Backend is required; it supplies the runtime the
	// race is scheduled on.
	Options dox.Options
	// Ladder is the transport preference order (default DefaultLadder).
	Ladder []dox.Protocol
	// Stagger is the head start each rung gets over the next one
	// (default DefaultStagger). RFC 8305 calls this the connection
	// attempt delay.
	Stagger time.Duration
	// AttemptTimeout is the first connect+query budget of each rung;
	// the budget doubles per retry up to BackoffMax (defaults
	// DefaultAttemptTimeout, DefaultBackoffMax).
	AttemptTimeout time.Duration
	BackoffMax     time.Duration
	// Retries is how many extra attempts each rung gets within one race
	// after its first budget expires (default 1).
	Retries int
	// ReprobeInterval is how often a sticky winner below the top of the
	// ladder is re-raced against the more-preferred rungs (default
	// DefaultReprobeInterval). Negative disables re-probing.
	ReprobeInterval time.Duration
}

func (c *Config) withDefaults() Config {
	v := *c
	if len(v.Ladder) == 0 {
		v.Ladder = DefaultLadder()
	}
	if v.Stagger == 0 {
		v.Stagger = DefaultStagger
	}
	if v.AttemptTimeout == 0 {
		v.AttemptTimeout = DefaultAttemptTimeout
	}
	if v.BackoffMax == 0 {
		v.BackoffMax = DefaultBackoffMax
	}
	if v.Retries == 0 {
		v.Retries = 1
	}
	if v.ReprobeInterval == 0 {
		v.ReprobeInterval = DefaultReprobeInterval
	}
	return v
}

// Metrics counts what the stub did.
type Metrics struct {
	Races    int // full races run
	Attempts int // transport attempts started (across races)
	Sticky   int // Resolve calls served by the sticky session
	// LastRaceTime is how long the most recent race took from first
	// attempt to winning answer — the fallback penalty E25 measures.
	LastRaceTime time.Duration
}

// Stub is a racing resolver client. Campaign code drives one stub per
// vantage task; Resolve is not reentrant.
type Stub struct {
	cfg Config
	rt  netapi.Runtime

	lock      sync.Locker
	sticky    int // ladder index of the current winner; -1 = none
	stickyC   dox.Client
	lastProbe time.Duration
	metrics   Metrics
}

// New builds a racing stub. cfg.Options.Backend must be set.
func New(cfg Config) *Stub {
	v := cfg.withDefaults()
	return &Stub{
		cfg:    v,
		rt:     v.Options.Backend,
		lock:   v.Options.Backend.NewLock(),
		sticky: -1,
	}
}

// Metrics returns a snapshot of the stub's counters.
func (s *Stub) Metrics() Metrics { return s.metrics }

// Sticky reports the current sticky transport, if any.
func (s *Stub) Sticky() (dox.Protocol, bool) {
	if s.sticky < 0 {
		return 0, false
	}
	return s.cfg.Ladder[s.sticky], true
}

// Close releases the sticky session.
func (s *Stub) Close() {
	s.lock.Lock()
	c := s.stickyC
	s.stickyC = nil
	s.sticky = -1
	s.lock.Unlock()
	if c != nil {
		c.Close()
	}
}

var errAllFailed = errors.New("racing: all transports failed")

// Resolve answers one query: through the sticky session when one is
// healthy, otherwise by racing the ladder. It returns the answer and
// the transport that produced it.
func (s *Stub) Resolve(q *dnsmsg.Message) (*dnsmsg.Message, dox.Protocol, error) {
	s.lock.Lock()
	c, idx := s.stickyC, s.sticky
	reprobe := c != nil && idx > 0 && s.cfg.ReprobeInterval > 0 &&
		s.rt.Now()-s.lastProbe >= s.cfg.ReprobeInterval
	s.lock.Unlock()

	if c != nil && !reprobe {
		out := s.attempt(s.cfg.Ladder[idx], c, q, s.cfg.AttemptTimeout)
		if out.err == nil {
			s.lock.Lock()
			s.metrics.Sticky++
			s.lock.Unlock()
			return out.resp, s.cfg.Ladder[idx], nil
		}
		// The sticky session went dark (middlebox arrived, resolver
		// rebooted): drop it and fall back to a full race.
		s.dropSticky(c)
		return s.race(q, nil, -1)
	}
	if c != nil {
		// A due re-probe is a race that seeds the sticky session into
		// its own rung: a still-blocked preferred transport loses to
		// the proven one after one stagger rather than stranding the
		// resolve, and a lifted block lets a preferred rung win it
		// back.
		s.lock.Lock()
		s.stickyC = nil
		s.sticky = -1
		s.lock.Unlock()
		return s.race(q, c, idx)
	}
	return s.race(q, nil, -1)
}

func (s *Stub) dropSticky(c dox.Client) {
	s.lock.Lock()
	if s.stickyC == c {
		s.stickyC = nil
		s.sticky = -1
	}
	s.lock.Unlock()
	c.Close()
}

// --- One attempt ---

// attemptOut is the result of one connect+query attempt.
type attemptOut struct {
	client dox.Client
	resp   *dnsmsg.Message
	err    error
}

// attemptBox carries one attempt's coordination state between the rung
// and its subtask: the result future and the abandoned flag the
// subtask checks before handing its session over.
type attemptBox struct {
	stub      *Stub
	lock      sync.Locker
	done      *netapi.Future[attemptOut]
	client    dox.Client // non-nil: reuse this session instead of dialing
	proto     dox.Protocol
	q         *dnsmsg.Message
	abandoned bool
}

func runAttempt(arg any) {
	a := arg.(*attemptBox)
	c := a.client
	var err error
	if c == nil {
		// Keep c a true nil on failure: Connect's concrete constructors
		// return typed nil pointers, which a bare assignment would wrap
		// into a non-nil interface.
		if nc, cerr := dox.Connect(a.proto, a.stub.cfg.Options); cerr != nil {
			err = cerr
		} else {
			c = nc
		}
	}
	var resp *dnsmsg.Message
	if err == nil {
		resp, err = c.Query(a.q)
	}
	a.lock.Lock()
	abandoned := a.abandoned
	a.lock.Unlock()
	if abandoned {
		// The race moved on while this attempt was still in flight;
		// release the session it may have since established.
		if c != nil {
			c.Close()
		}
		return
	}
	if err != nil && c != nil {
		c.Close()
		c = nil
	}
	a.done.Resolve(attemptOut{client: c, resp: resp, err: err})
}

var errAttemptTimeout = errors.New("racing: attempt timed out")

// attempt runs one connect+query attempt under budget. On timeout the
// subtask is abandoned — it cannot be interrupted mid-handshake, so it
// keeps running until its transport gives up, then closes the session
// itself.
func (s *Stub) attempt(proto dox.Protocol, client dox.Client, q *dnsmsg.Message, budget time.Duration) attemptOut {
	a := &attemptBox{
		stub:   s,
		lock:   s.rt.NewLock(),
		done:   netapi.NewFuture[attemptOut](s.rt, "racing-attempt"),
		client: client,
		proto:  proto,
		q:      q,
	}
	s.lock.Lock()
	s.metrics.Attempts++
	s.lock.Unlock()
	s.rt.GoCall(runAttempt, a)
	out, ok := a.done.WaitTimeout(budget)
	if !ok {
		a.lock.Lock()
		a.abandoned = true
		a.lock.Unlock()
		return attemptOut{err: errAttemptTimeout}
	}
	return out
}

// --- The race ---

// raceState is the shared scoreboard of one race.
type raceState struct {
	stub    *Stub
	q       *dnsmsg.Message
	lock    sync.Locker
	winner  *netapi.Future[attemptOut]
	winIdx  int
	decided bool
	pending int // rungs that have not finished
	// started marks rungs whose body has begun, so a rung reached both
	// by its stagger timer and by an early advance runs exactly once.
	started []bool
	// seedC is an existing session handed to rung seedIdx as its first
	// attempt (the re-probe path). Consumed under lock exactly once —
	// by the rung, or by the race's cleanup if the rung never ran.
	seedC   dox.Client
	seedIdx int
}

// takeSeed hands the seeded session to rung idx, once.
func (st *raceState) takeSeed(idx int) dox.Client {
	st.lock.Lock()
	defer st.lock.Unlock()
	if idx != st.seedIdx || st.seedC == nil {
		return nil
	}
	c := st.seedC
	st.seedC = nil
	return c
}

func (st *raceState) isDecided() bool {
	st.lock.Lock()
	defer st.lock.Unlock()
	return st.decided
}

// rungDone retires one rung. The last losing rung fails the winner
// future so the race's Wait unblocks with an error.
func (st *raceState) rungDone() {
	st.lock.Lock()
	st.pending--
	lost := st.pending == 0 && !st.decided
	st.lock.Unlock()
	if lost {
		st.winner.Fail()
	}
}

// rungBox is the GoCall argument of one rung task.
type rungBox struct {
	st  *raceState
	idx int
}

func runRung(arg any) {
	b := arg.(*rungBox)
	b.st.runRung(b.idx)
}

// advance starts the first not-yet-started rung immediately: a rung
// whose attempt failed definitively (port unreachable, injected RST)
// hands its remaining head start to the next transport, per RFC 8305's
// rule that a conclusive failure advances the attempt schedule. This is
// why active rejection costs less than a silent blackhole — the refused
// rung's stagger is not waited out.
func (st *raceState) advance() {
	st.lock.Lock()
	next := -1
	for i, began := range st.started {
		if !began {
			next = i
			break
		}
	}
	st.lock.Unlock()
	if next >= 0 {
		st.stub.rt.GoCall(runRung, &rungBox{st: st, idx: next})
	}
}

func (st *raceState) runRung(idx int) {
	st.lock.Lock()
	if st.started[idx] {
		// Already run via an early advance (or vice versa).
		st.lock.Unlock()
		return
	}
	st.started[idx] = true
	st.lock.Unlock()
	defer st.rungDone()
	s := st.stub
	if st.isDecided() {
		return
	}
	proto := s.cfg.Ladder[idx]
	budget := s.cfg.AttemptTimeout
	client := st.takeSeed(idx)
	for try := 0; try <= s.cfg.Retries; try++ {
		out := s.attempt(proto, client, st.q, budget)
		client = nil // a reused session is spent after its first attempt
		if out.err == nil {
			st.lock.Lock()
			if st.decided {
				st.lock.Unlock()
				out.client.Close()
				return
			}
			st.decided = true
			st.winIdx = idx
			st.lock.Unlock()
			st.winner.Resolve(out)
			return
		}
		if st.isDecided() {
			return
		}
		// Whatever the failure, the next rung may as well start now; for
		// timeouts past the stagger horizon this is a no-op.
		st.advance()
		// Exponential per-rung backoff: the next attempt gets a doubled
		// budget, capped at BackoffMax.
		budget *= 2
		if budget > s.cfg.BackoffMax {
			budget = s.cfg.BackoffMax
		}
	}
}

// race launches the ladder with staggered starts and waits for the
// first rung to produce an answer. seed (with its ladder index) is an
// existing session reused as that rung's first attempt, or nil.
func (s *Stub) race(q *dnsmsg.Message, seed dox.Client, seedIdx int) (*dnsmsg.Message, dox.Protocol, error) {
	start := s.rt.Now()
	st := &raceState{
		stub:    s,
		q:       q,
		lock:    s.rt.NewLock(),
		winner:  netapi.NewFuture[attemptOut](s.rt, "racing-winner"),
		pending: len(s.cfg.Ladder),
		started: make([]bool, len(s.cfg.Ladder)),
		seedC:   seed,
		seedIdx: seedIdx,
	}
	s.lock.Lock()
	s.metrics.Races++
	s.lock.Unlock()
	for i := range s.cfg.Ladder {
		b := &rungBox{st: st, idx: i}
		if i == 0 {
			s.rt.GoCall(runRung, b)
			continue
		}
		s.rt.AfterFunc(time.Duration(i)*s.cfg.Stagger, func() { runRung(b) })
	}
	out, ok := st.winner.Wait()
	// If the race ended before the seeded rung ever ran, the seed
	// session is still parked on the scoreboard: release it.
	if c := st.takeSeed(seedIdx); c != nil && seed != nil {
		c.Close()
	}
	if !ok {
		return nil, 0, errAllFailed
	}
	now := s.rt.Now()
	s.lock.Lock()
	s.metrics.LastRaceTime = now - start
	s.sticky = st.winIdx
	s.stickyC = out.client
	s.lastProbe = now
	s.lock.Unlock()
	return out.resp, s.cfg.Ladder[st.winIdx], nil
}
