package racing

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/netapi/simnet"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

type env struct {
	w      *sim.World
	n      *netem.Network
	client *netem.Host
	server *netem.Host
	rng    *rand.Rand
	cache  *tlsmini.SessionCache
}

func newEnv(t *testing.T, seed int64, rtt time.Duration) *env {
	t.Helper()
	w := sim.NewWorld(seed)
	n := netem.NewNetwork(w)
	ch := n.Host(netip.MustParseAddr("10.0.0.1"))
	sh := n.Host(netip.MustParseAddr("10.0.0.2"))
	n.SetSymmetricPath(ch.Addr(), sh.Addr(), netem.PathParams{Delay: rtt / 2})
	rng := rand.New(rand.NewSource(seed))
	e := &env{w: w, n: n, client: ch, server: sh, rng: rng, cache: tlsmini.NewSessionCache()}
	answer := netip.MustParseAddr("93.184.216.34")
	srv := dox.NewServer(simnet.New(sh, rng), dox.ServerConfig{
		Handler: func(q *dnsmsg.Message, proto dox.Protocol, _ netip.AddrPort) *dnsmsg.Message {
			r := dnsmsg.Reply(*q)
			r.AnswerA(answer, 300)
			return &r
		},
		Identity:    tlsmini.GenerateIdentity(rng, "resolver.example", 1000),
		TicketStore: tlsmini.NewTicketStore(),
		TokenKey:    []byte("token-key"),
	})
	if err := srv.ServeAll(); err != nil {
		t.Fatal(err)
	}
	return e
}

func (e *env) stub(mut func(*Config)) *Stub {
	cfg := Config{
		Options: dox.Options{
			Backend:      simnet.New(e.client, e.rng),
			Resolver:     e.server.Addr(),
			ServerName:   "resolver.example",
			SessionCache: e.cache,
			// Keep abandoned Do53 attempts short so worlds drain fast.
			UDPTimeout: 500 * time.Millisecond,
			UDPBackoff: 2,
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg)
}

// blockUDP853And443 is the "enterprise middlebox" of E25: QUIC-carrying
// UDP ports blackholed, TCP untouched.
func blockUDP853And443(e *env) {
	e.n.SetPolicy(e.client.Addr(), e.server.Addr(), netem.Policy{
		BlockUDPPorts: []uint16{dox.PortDoQ, dox.PortDoH3},
	})
}

func TestRaceFallsBackToDoT(t *testing.T) {
	e := newEnv(t, 1, 40*time.Millisecond)
	blockUDP853And443(e)
	var got dox.Protocol
	var raceTime time.Duration
	e.w.Go(func() {
		s := e.stub(nil)
		q := dnsmsg.NewQuery(1, "example.com", dnsmsg.TypeA)
		resp, proto, err := s.Resolve(&q)
		if err != nil {
			t.Errorf("resolve: %v", err)
			return
		}
		if _, ok := resp.FirstA(); !ok {
			t.Error("no A answer")
		}
		got = proto
		raceTime = s.Metrics().LastRaceTime
		s.Close()
	})
	e.w.Run()
	if got != dox.DoT {
		t.Fatalf("winner = %v, want DoT (first unblocked rung)", got)
	}
	// DoT starts after two staggers (DoQ, DoH3 go first) and needs
	// ~3 RTT (TCP + TLS 1.3 + query): the fallback penalty is bounded,
	// not a timeout multiple.
	if raceTime < 2*DefaultStagger || raceTime > 2*DefaultStagger+4*40*time.Millisecond {
		t.Errorf("race took %v, want ~%v + 3 RTT", raceTime, 2*DefaultStagger)
	}
}

func TestPreferredRungWinsUnhindered(t *testing.T) {
	e := newEnv(t, 2, 40*time.Millisecond)
	var got dox.Protocol
	e.w.Go(func() {
		s := e.stub(nil)
		q := dnsmsg.NewQuery(2, "example.com", dnsmsg.TypeA)
		_, proto, err := s.Resolve(&q)
		if err != nil {
			t.Errorf("resolve: %v", err)
			return
		}
		got = proto
		s.Close()
	})
	e.w.Run()
	if got != dox.DoQ {
		t.Errorf("winner = %v, want DoQ on a clean path", got)
	}
}

func TestStickyWinnerServesFollowUps(t *testing.T) {
	e := newEnv(t, 3, 40*time.Millisecond)
	blockUDP853And443(e)
	e.w.Go(func() {
		s := e.stub(nil)
		for i := 0; i < 3; i++ {
			q := dnsmsg.NewQuery(uint16(10+i), "example.com", dnsmsg.TypeA)
			_, proto, err := s.Resolve(&q)
			if err != nil {
				t.Errorf("resolve %d: %v", i, err)
				return
			}
			if proto != dox.DoT {
				t.Errorf("resolve %d over %v, want DoT", i, proto)
			}
		}
		m := s.Metrics()
		if m.Races != 1 {
			t.Errorf("races = %d, want 1 (sticky session reused)", m.Races)
		}
		if m.Sticky != 2 {
			t.Errorf("sticky serves = %d, want 2", m.Sticky)
		}
		s.Close()
	})
	e.w.Run()
}

func TestReprobeClimbsBackAfterBlockLifts(t *testing.T) {
	e := newEnv(t, 4, 40*time.Millisecond)
	blockUDP853And443(e)
	e.w.Go(func() {
		s := e.stub(nil)
		q := dnsmsg.NewQuery(20, "example.com", dnsmsg.TypeA)
		_, proto, err := s.Resolve(&q)
		if err != nil {
			t.Errorf("blocked resolve: %v", err)
			return
		}
		if proto != dox.DoT {
			t.Errorf("blocked winner = %v, want DoT", proto)
		}
		// The middlebox goes away; after the re-probe interval the
		// next resolve races again and DoQ wins its rung back.
		e.n.SetPolicy(e.client.Addr(), e.server.Addr(), netem.Policy{})
		s.rt.Sleep(DefaultReprobeInterval)
		q2 := dnsmsg.NewQuery(21, "example.com", dnsmsg.TypeA)
		_, proto, err = s.Resolve(&q2)
		if err != nil {
			t.Errorf("re-probe resolve: %v", err)
			return
		}
		if proto != dox.DoQ {
			t.Errorf("re-probe winner = %v, want DoQ after block lifted", proto)
		}
		if sticky, ok := s.Sticky(); !ok || sticky != dox.DoQ {
			t.Errorf("sticky = %v/%v, want DoQ", sticky, ok)
		}
		s.Close()
	})
	e.w.Run()
}

func TestRaceFailsWhenEverythingBlocked(t *testing.T) {
	e := newEnv(t, 5, 40*time.Millisecond)
	// Reject everywhere: every transport fails fast instead of
	// retransmitting into a blackhole for minutes of virtual time.
	e.n.SetPolicy(e.client.Addr(), e.server.Addr(), netem.Policy{
		BlockAllUDP:   true,
		Reject:        true,
		BlockTCPPorts: []uint16{dox.PortDoTCP, dox.PortDoT, dox.PortDoH},
		RSTInject:     true,
	})
	e.w.Go(func() {
		s := e.stub(nil)
		q := dnsmsg.NewQuery(30, "example.com", dnsmsg.TypeA)
		_, _, err := s.Resolve(&q)
		if err == nil {
			t.Error("resolve succeeded through a total block")
		}
		s.Close()
	})
	e.w.Run()
}

func TestFailoverEjectsAndReadmits(t *testing.T) {
	w := sim.NewWorld(6)
	rt := simnet.NewRuntime(w, rand.New(rand.NewSource(6)))
	w.Go(func() {
		f := NewFailover(rt, 3, FailoverConfig{})
		if got := f.Pick(); got != 0 {
			t.Fatalf("initial pick = %d, want 0", got)
		}
		// Two failures are tolerated; the third ejects.
		f.Report(0, false)
		f.Report(0, false)
		if got := f.Pick(); got != 0 {
			t.Fatalf("pick after 2 failures = %d, want 0", got)
		}
		f.Report(0, false)
		if got := f.Pick(); got != 1 {
			t.Fatalf("pick after ejection = %d, want 1", got)
		}
		if !f.Ejected(0) {
			t.Fatal("upstream 0 not marked ejected")
		}
		// After the cooldown (2s base, ±10% jitter) the preferred
		// upstream is retried.
		rt.Sleep(3 * time.Second)
		if got := f.Pick(); got != 0 {
			t.Fatalf("pick after cooldown = %d, want 0", got)
		}
		// A success clears the record entirely.
		f.Report(0, true)
		if f.Ejected(0) {
			t.Fatal("upstream 0 still ejected after success")
		}
	})
	w.Run()
}

func TestFailoverAllEjectedPicksSoonest(t *testing.T) {
	w := sim.NewWorld(7)
	rt := simnet.NewRuntime(w, rand.New(rand.NewSource(7)))
	w.Go(func() {
		f := NewFailover(rt, 2, FailoverConfig{EjectAfter: 1, JitterFrac: -1})
		f.Report(0, false) // ejected until +2s
		rt.Sleep(time.Second)
		f.Report(1, false) // ejected until +3s
		if got := f.Pick(); got != 0 {
			t.Fatalf("all-ejected pick = %d, want 0 (soonest cooldown)", got)
		}
	})
	w.Run()
}

func TestFailoverProbationReejectsOnOneFailure(t *testing.T) {
	w := sim.NewWorld(9)
	rt := simnet.NewRuntime(w, rand.New(rand.NewSource(9)))
	w.Go(func() {
		f := NewFailover(rt, 2, FailoverConfig{JitterFrac: -1})
		// Full threshold for the first ejection.
		f.Report(0, false)
		f.Report(0, false)
		f.Report(0, false)
		if !f.Ejected(0) {
			t.Fatal("upstream 0 not ejected at threshold")
		}
		rt.Sleep(3 * time.Second)
		if got := f.Pick(); got != 0 {
			t.Fatalf("pick after cooldown = %d, want 0 (probation probe)", got)
		}
		// On probation, a single failed probe re-ejects immediately.
		f.Report(0, false)
		if !f.Ejected(0) {
			t.Fatal("probation failure did not re-eject")
		}
		// And a probe that succeeds clears probation: the next failure
		// is tolerated up to the full threshold again.
		rt.Sleep(5 * time.Second)
		f.Report(0, true)
		f.Report(0, false)
		if f.Ejected(0) {
			t.Fatal("single failure after recovery ejected a healthy upstream")
		}
	})
	w.Run()
}

func TestFailoverCooldownBacksOff(t *testing.T) {
	w := sim.NewWorld(8)
	rt := simnet.NewRuntime(w, rand.New(rand.NewSource(8)))
	w.Go(func() {
		f := NewFailover(rt, 1, FailoverConfig{EjectAfter: 1, JitterFrac: -1})
		f.Report(0, false)
		first := f.st[0].ejectedUntil - rt.Now()
		rt.Sleep(first)
		f.Report(0, false)
		second := f.st[0].ejectedUntil - rt.Now()
		if second != 2*first {
			t.Errorf("cooldowns %v then %v, want doubling", first, second)
		}
	})
	w.Run()
}
