package dox

import (
	"fmt"
	"net/netip"

	"repro/internal/dnsmsg"
	"repro/internal/h2"
	"repro/internal/h3"
	"repro/internal/netapi"
	"repro/internal/quic"
	"repro/internal/tlsmini"
)

// Handler answers one DNS query. Returning nil drops the query (models a
// resolver not responding, the source of the paper's sample-size
// variation). Handlers run in their own sim task and may sleep to model
// processing or recursive-lookup latency.
type Handler func(q *dnsmsg.Message, proto Protocol, from netip.AddrPort) *dnsmsg.Message

// ServerConfig configures a resolver-side transport endpoint set. Clock
// and randomness come from the backend the server is built on.
type ServerConfig struct {
	Handler  Handler
	Identity *tlsmini.Identity

	TicketStore           *tlsmini.TicketStore
	DisableSessionTickets bool
	AcceptEarlyData       bool
	TLSVersion            tlsmini.Version // max version; VersionTLS12 forces the legacy flow

	QUICVersions []uint32
	DoQALPN      string // the single DoQ version this resolver deploys
	TokenKey     []byte

	// Ports default to the standard ones; DoQPort may be 784/8853 for
	// early-draft deployments.
	UDPPort, TCPPort, DoTPort, DoHPort, DoQPort, DoH3Port uint16
}

func (c *ServerConfig) withDefaults() ServerConfig {
	v := *c
	if v.UDPPort == 0 {
		v.UDPPort = PortDoUDP
	}
	if v.TCPPort == 0 {
		v.TCPPort = PortDoTCP
	}
	if v.DoTPort == 0 {
		v.DoTPort = PortDoT
	}
	if v.DoHPort == 0 {
		v.DoHPort = PortDoH
	}
	if v.DoQPort == 0 {
		v.DoQPort = PortDoQ
	}
	if v.DoH3Port == 0 {
		v.DoH3Port = PortDoH3
	}
	if v.DoQALPN == "" {
		v.DoQALPN = DoQALPNRFC
	}
	return v
}

// quicListener is the capability a backend provides when it can accept
// QUIC; see quicDialer.
type quicListener interface {
	ListenQUIC(port uint16, cfg quic.Config) (*quic.Listener, error)
}

// Server runs the requested transports on one backend.
type Server struct {
	be  netapi.Backend
	cfg ServerConfig

	udpSock netapi.PacketConn
	tcpL    netapi.StreamListener
	dotL    netapi.StreamListener
	dohL    netapi.StreamListener
	doqL    *quic.Listener
	doh3L   *quic.Listener

	// Free lists for the per-query task argument boxes, so steady-state
	// request dispatch spawns through pre-bound adapters (GoCall) with
	// neither a closure nor a fresh carrier allocation. The sim world
	// runs one task at a time, so no locking is needed.
	udpFree []*udpJob
	tcpFree []*tcpJob
	dotFree []*dotJob
	doqFree []*doqJob
}

// udpJob carries one DoUDP query from the receive loop to its task.
type udpJob struct {
	s    *Server
	sock netapi.PacketConn
	p    netapi.Packet
}

// serveUDPJob is the pre-bound adapter for DoUDP queries. The box is
// freed as soon as its fields are read; the datagram buffer returns to
// the pool right after decoding (Decode copies everything it keeps).
//
//simlint:hotpath
func serveUDPJob(v any) {
	j := v.(*udpJob)
	s, sock, p := j.s, j.sock, j.p
	j.s, j.sock, j.p = nil, nil, netapi.Packet{}
	s.udpFree = append(s.udpFree, j)
	q, err := dnsmsg.Decode(p.Payload)
	sock.Pool().Put(p.Payload)
	if err != nil {
		return
	}
	if resp := s.cfg.Handler(q, DoUDP, p.Src); resp != nil {
		// Encode straight into a pooled buffer; Send transfers its
		// ownership to the network.
		sock.Send(p.Src, resp.AppendEncode(sock.Pool().Get(512)))
	}
}

// tcpJob carries one accepted DoTCP connection (one query each: no
// public resolver supports edns-tcp-keepalive, paper §3).
type tcpJob struct {
	s    *Server
	conn netapi.StreamConn
}

func serveTCPJob(v any) {
	j := v.(*tcpJob)
	s, conn := j.s, j.conn
	j.s, j.conn = nil, nil
	s.tcpFree = append(s.tcpFree, j)
	q, err := readPrefixedMessage(conn)
	if err != nil {
		conn.Close()
		return
	}
	if resp := s.cfg.Handler(q, DoTCP, conn.RemoteAddr()); resp != nil {
		conn.Write(appendPrefixed(resp))
	}
	conn.Close()
}

// dotJob carries one length-delimited DoT query off a persistent
// connection's TLS stream.
type dotJob struct {
	s    *Server
	tls  *tlsmini.Conn
	from netip.AddrPort
	wire []byte
}

func serveDoTJob(v any) {
	j := v.(*dotJob)
	s, tls, from, wire := j.s, j.tls, j.from, j.wire
	j.s, j.tls, j.wire = nil, nil, nil
	s.dotFree = append(s.dotFree, j)
	q, err := dnsmsg.Decode(wire)
	if err != nil {
		return
	}
	if resp := s.cfg.Handler(q, DoT, from); resp != nil {
		tls.Write(appendPrefixed(resp))
	}
}

// doqJob carries one accepted DoQ stream (= one query, RFC 9250).
type doqJob struct {
	s        *Server
	conn     *quic.Conn
	st       *quic.Stream
	prefixed bool
}

func serveDoQJob(v any) {
	j := v.(*doqJob)
	s, conn, st, prefixed := j.s, j.conn, j.st, j.prefixed
	j.s, j.conn, j.st = nil, nil, nil
	s.doqFree = append(s.doqFree, j)
	data, ok := st.ReadAll()
	if !ok {
		return
	}
	if prefixed {
		if len(data) < 2 {
			return
		}
		n := int(data[0])<<8 | int(data[1])
		if len(data) < 2+n {
			return
		}
		data = data[2 : 2+n]
	}
	q, err := dnsmsg.Decode(data)
	if err != nil {
		return
	}
	resp := s.cfg.Handler(q, DoQ, conn.RemoteAddr())
	if resp == nil {
		return
	}
	if prefixed {
		st.Write(appendPrefixed(resp), true)
	} else {
		st.Write(resp.Encode(), true)
	}
}

// NewServer creates a server; call the Serve* methods to enable
// transports.
func NewServer(be netapi.Backend, cfg ServerConfig) *Server {
	return &Server{be: be, cfg: cfg.withDefaults()}
}

// ServeUDP starts the DoUDP endpoint.
func (s *Server) ServeUDP() error {
	sock, err := s.be.ListenUDP(s.cfg.UDPPort, 8)
	if err != nil {
		return err
	}
	s.udpSock = sock
	s.be.Go(func() {
		for {
			p, ok := sock.Recv()
			if !ok {
				return
			}
			var j *udpJob
			if n := len(s.udpFree); n > 0 {
				j = s.udpFree[n-1]
				s.udpFree = s.udpFree[:n-1]
			} else {
				j = &udpJob{}
			}
			j.s, j.sock, j.p = s, sock, p
			s.be.GoCall(serveUDPJob, j)
		}
	})
	return nil
}

// ServeTCP starts the DoTCP endpoint. Connections close after one
// exchange: no public resolver supports edns-tcp-keepalive (paper §3).
func (s *Server) ServeTCP() error {
	l, err := s.be.ListenStream(s.cfg.TCPPort)
	if err != nil {
		return err
	}
	s.tcpL = l
	s.be.Go(func() {
		for {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			var j *tcpJob
			if n := len(s.tcpFree); n > 0 {
				j = s.tcpFree[n-1]
				s.tcpFree = s.tcpFree[:n-1]
			} else {
				j = &tcpJob{}
			}
			j.s, j.conn = s, conn
			s.be.GoCall(serveTCPJob, j)
		}
	})
	return nil
}

// answerMaxAge derives the HTTP cache-control lifetime from the DNS
// answer's remaining TTL, so the HTTP transports' cache metadata tracks
// the resolver's shared answer cache instead of a fixed constant
// (answerless responses keep the historical 60s).
func answerMaxAge(resp *dnsmsg.Message) string {
	ttl := uint32(60)
	if len(resp.Answers) > 0 {
		ttl = resp.Answers[0].TTL
	}
	return fmt.Sprintf("max-age=%d", ttl)
}

func (s *Server) tlsServerConfig(alpn []string) tlsmini.Config {
	return tlsmini.Config{
		ALPN:                  alpn,
		Identity:              s.cfg.Identity,
		Version:               s.cfg.TLSVersion,
		TicketStore:           s.cfg.TicketStore,
		DisableSessionTickets: s.cfg.DisableSessionTickets,
		AcceptEarlyData:       s.cfg.AcceptEarlyData,
		Rand:                  s.be.Rand(),
		Now:                   s.be.Now,
	}
}

// ServeDoT starts the DoT endpoint. Connections persist across queries.
func (s *Server) ServeDoT() error {
	l, err := s.be.ListenStream(s.cfg.DoTPort)
	if err != nil {
		return err
	}
	s.dotL = l
	s.be.Go(func() {
		for {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			s.be.Go(func() {
				tls := tlsmini.NewConn(conn, s.tlsServerConfig([]string{"dot"}))
				if err := tls.Handshake(); err != nil {
					conn.Close()
					return
				}
				// Extract length-prefixed queries from the TLS stream,
				// consuming buf through a cursor instead of re-copying the
				// remainder after every query.
				var buf []byte
				off := 0
				for {
					for len(buf)-off >= 2 {
						n := int(buf[off])<<8 | int(buf[off+1])
						if len(buf)-off < 2+n {
							break
						}
						wire := append([]byte(nil), buf[off+2:off+2+n]...)
						off += 2 + n
						var j *dotJob
						if l := len(s.dotFree); l > 0 {
							j = s.dotFree[l-1]
							s.dotFree = s.dotFree[:l-1]
						} else {
							j = &dotJob{}
						}
						j.s, j.tls, j.from, j.wire = s, tls, conn.RemoteAddr(), wire
						s.be.GoCall(serveDoTJob, j)
					}
					if off == len(buf) {
						buf = buf[:0]
						off = 0
					}
					chunk, ok := tls.Read()
					if !ok {
						conn.Close()
						return
					}
					buf = append(buf, chunk...)
				}
			})
		}
	})
	return nil
}

// ServeDoH starts the DoH endpoint (HTTP/2 over TLS).
func (s *Server) ServeDoH() error {
	l, err := s.be.ListenStream(s.cfg.DoHPort)
	if err != nil {
		return err
	}
	s.dohL = l
	s.be.Go(func() {
		for {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			s.be.Go(func() {
				tls := tlsmini.NewConn(conn, s.tlsServerConfig([]string{"h2"}))
				if err := tls.Handshake(); err != nil {
					conn.Close()
					return
				}
				remote := conn.RemoteAddr()
				h2.ServeConn(s.be, tls, func(headers []h2.Header, body []byte) ([]h2.Header, []byte) {
					q, err := dnsmsg.Decode(body)
					if err != nil {
						return []h2.Header{{Name: ":status", Value: "400"}}, nil
					}
					resp := s.cfg.Handler(q, DoH, remote)
					if resp == nil {
						return []h2.Header{{Name: ":status", Value: "503"}}, nil
					}
					wire := resp.Encode()
					return []h2.Header{
						{Name: ":status", Value: "200"},
						{Name: "content-type", Value: "application/dns-message"},
						{Name: "cache-control", Value: answerMaxAge(resp)},
					}, wire
				})
			})
		}
	})
	return nil
}

func (s *Server) quicServerConfig(alpn string) quic.Config {
	return quic.Config{
		ALPN:                  []string{alpn},
		Identity:              s.cfg.Identity,
		TicketStore:           s.cfg.TicketStore,
		DisableSessionTickets: s.cfg.DisableSessionTickets,
		AcceptEarlyData:       s.cfg.AcceptEarlyData,
		// QUIC mandates TLS 1.3 (RFC 9001); a resolver's TLS 1.2
		// limitation only affects its TCP-based transports.
		TLSVersion: 0,
		Versions:   s.cfg.QUICVersions,
		TokenKey:   s.cfg.TokenKey,
		Rand:       s.be.Rand(),
		Now:        s.be.Now,
	}
}

// ServeDoQ starts the DoQ endpoint.
func (s *Server) ServeDoQ() error {
	ql, ok := s.be.(quicListener)
	if !ok {
		return fmt.Errorf("dox: DoQ requires a QUIC-capable backend (sim only)")
	}
	l, err := ql.ListenQUIC(s.cfg.DoQPort, s.quicServerConfig(s.cfg.DoQALPN))
	if err != nil {
		return err
	}
	s.doqL = l
	prefixed := alpnUsesLengthPrefix(s.cfg.DoQALPN)
	s.be.Go(func() {
		for {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			s.be.Go(func() {
				for {
					st, ok := conn.AcceptStream()
					if !ok {
						return
					}
					var j *doqJob
					if n := len(s.doqFree); n > 0 {
						j = s.doqFree[n-1]
						s.doqFree = s.doqFree[:n-1]
					} else {
						j = &doqJob{}
					}
					j.s, j.conn, j.st, j.prefixed = s, conn, st, prefixed
					s.be.GoCall(serveDoQJob, j)
				}
			})
		}
	})
	return nil
}

// ServeDoH3 starts the DoH3 endpoint: HTTP/3 over QUIC with the "h3"
// ALPN, sharing the resolver's ticket store and token key with DoQ so a
// session warmed on either QUIC transport resumes with the same
// machinery.
func (s *Server) ServeDoH3() error {
	ql, ok := s.be.(quicListener)
	if !ok {
		return fmt.Errorf("dox: DoH3 requires a QUIC-capable backend (sim only)")
	}
	l, err := ql.ListenQUIC(s.cfg.DoH3Port, s.quicServerConfig(DoH3ALPN))
	if err != nil {
		return err
	}
	s.doh3L = l
	s.be.Go(func() {
		for {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			remote := conn.RemoteAddr()
			s.be.Go(func() {
				h3.ServeConn(s.be, conn, func(headers []h3.Header, body []byte) ([]h3.Header, []byte) {
					q, err := dnsmsg.Decode(body)
					if err != nil {
						return []h3.Header{{Name: ":status", Value: "400"}}, nil
					}
					resp := s.cfg.Handler(q, DoH3, remote)
					if resp == nil {
						return []h3.Header{{Name: ":status", Value: "503"}}, nil
					}
					wire := resp.Encode()
					return []h3.Header{
						{Name: ":status", Value: "200"},
						{Name: "content-type", Value: "application/dns-message"},
						{Name: "cache-control", Value: answerMaxAge(resp)},
					}, wire
				})
			})
		}
	})
	return nil
}

// ServeAll enables every transport, returning the first error.
func (s *Server) ServeAll() error {
	for _, fn := range []func() error{s.ServeUDP, s.ServeTCP, s.ServeDoT, s.ServeDoH, s.ServeDoQ, s.ServeDoH3} {
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops all endpoints.
func (s *Server) Close() {
	if s.udpSock != nil {
		s.udpSock.Close()
	}
	for _, l := range []netapi.StreamListener{s.tcpL, s.dotL, s.dohL} {
		if l != nil {
			l.Close()
		}
	}
	for _, l := range []*quic.Listener{s.doqL, s.doh3L} {
		if l != nil {
			l.Close()
		}
	}
}
