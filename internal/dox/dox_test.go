package dox

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/netapi/simnet"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

type env struct {
	w      *sim.World
	client *netem.Host
	server *netem.Host
	rng    *rand.Rand
	cache  *tlsmini.SessionCache
	store  *tlsmini.TicketStore
	id     *tlsmini.Identity
	rtt    time.Duration
	srv    *Server
}

func newEnv(t *testing.T, seed int64, rtt time.Duration, loss float64, mut func(*ServerConfig)) *env {
	t.Helper()
	w := sim.NewWorld(seed)
	n := netem.NewNetwork(w)
	ch := n.Host(netip.MustParseAddr("10.0.0.1"))
	sh := n.Host(netip.MustParseAddr("10.0.0.2"))
	n.SetSymmetricPath(ch.Addr(), sh.Addr(), netem.PathParams{Delay: rtt / 2, Loss: loss})
	rng := rand.New(rand.NewSource(seed))
	e := &env{
		w: w, client: ch, server: sh, rng: rng,
		cache: tlsmini.NewSessionCache(),
		store: tlsmini.NewTicketStore(),
		id:    tlsmini.GenerateIdentity(rng, "resolver.example", 1000),
		rtt:   rtt,
	}
	answer := netip.MustParseAddr("93.184.216.34")
	cfg := ServerConfig{
		Handler: func(q *dnsmsg.Message, proto Protocol, _ netip.AddrPort) *dnsmsg.Message {
			r := dnsmsg.Reply(*q)
			r.AnswerA(answer, 300)
			return &r
		},
		Identity:    e.id,
		TicketStore: e.store,
		TokenKey:    []byte("token-key"),
	}
	if mut != nil {
		mut(&cfg)
	}
	e.srv = NewServer(simnet.New(sh, rng), cfg)
	if err := e.srv.ServeAll(); err != nil {
		t.Fatal(err)
	}
	return e
}

func (e *env) opts() Options {
	return Options{
		Backend:      simnet.New(e.client, e.rng),
		Resolver:     e.server.Addr(),
		ServerName:   "resolver.example",
		SessionCache: e.cache,
	}
}

// exchange runs one query over proto and returns (resolveTime, metrics).
func (e *env) exchange(t *testing.T, proto Protocol) (time.Duration, *Metrics) {
	t.Helper()
	var resolve time.Duration
	var m *Metrics
	e.w.Go(func() {
		c, err := Connect(proto, e.opts())
		if err != nil {
			t.Errorf("%v connect: %v", proto, err)
			return
		}
		q := dnsmsg.NewQuery(uint16(e.rng.Intn(65536)), "google.com", dnsmsg.TypeA)
		start := e.w.Now()
		resp, err := c.Query(&q)
		if err != nil {
			t.Errorf("%v query: %v", proto, err)
			return
		}
		resolve = e.w.Now() - start
		if _, ok := resp.FirstA(); !ok {
			t.Errorf("%v: no A answer", proto)
		}
		m = c.Metrics()
		c.Close()
	})
	e.w.Run()
	return resolve, m
}

func TestAllProtocolsAnswer(t *testing.T) {
	for _, proto := range AllProtocols {
		e := newEnv(t, 1, 40*time.Millisecond, 0, nil)
		resolve, m := e.exchange(t, proto)
		if m == nil {
			continue
		}
		if resolve <= 0 {
			t.Errorf("%v: resolve time %v", proto, resolve)
		}
		t.Logf("%v: handshake=%v resolve=%v hsTx=%d hsRx=%d qTx=%d qRx=%d",
			proto, m.HandshakeTime, resolve, m.HandshakeTx, m.HandshakeRx, m.QueryTx, m.QueryRx)
	}
}

// TestHandshakeRoundTripArithmetic verifies the core of Fig. 2a: DoTCP
// and DoQ handshakes take ~1 RTT; DoT and DoH take ~2 RTT.
func TestHandshakeRoundTripArithmetic(t *testing.T) {
	rtt := 100 * time.Millisecond
	tol := 15 * time.Millisecond
	want := map[Protocol]time.Duration{
		DoTCP: rtt,
		DoQ:   rtt,
		DoT:   2 * rtt,
		DoH:   2 * rtt,
		DoH3:  rtt, // same combined QUIC round trip as DoQ
	}
	for proto, expect := range want {
		e := newEnv(t, 2, rtt, 0, nil)
		_, m := e.exchange(t, proto)
		if m == nil {
			continue
		}
		if m.HandshakeTime < expect-tol || m.HandshakeTime > expect+tol {
			t.Errorf("%v handshake = %v, want ~%v", proto, m.HandshakeTime, expect)
		}
	}
}

// TestResolveTimeOneRTT verifies Fig. 2b: with an established session and
// a cached record, resolve time is ~1 RTT for every protocol except
// DoTCP (2 RTT: new connection per query since nothing supports
// keepalive... the first query runs on the Connect conn, so 1 RTT too).
func TestResolveTimeOneRTT(t *testing.T) {
	rtt := 100 * time.Millisecond
	tol := 15 * time.Millisecond
	for _, proto := range Protocols {
		e := newEnv(t, 3, rtt, 0, nil)
		resolve, m := e.exchange(t, proto)
		if m == nil {
			continue
		}
		if resolve < rtt-tol || resolve > rtt+tol {
			t.Errorf("%v resolve = %v, want ~1 RTT", proto, resolve)
		}
	}
}

func TestDoTCPSecondQueryNeedsNewConnection(t *testing.T) {
	rtt := 100 * time.Millisecond
	e := newEnv(t, 4, rtt, 0, nil)
	var second time.Duration
	e.w.Go(func() {
		c, err := Connect(DoTCP, e.opts())
		if err != nil {
			t.Error(err)
			return
		}
		q := dnsmsg.NewQuery(1, "google.com", dnsmsg.TypeA)
		if _, err := c.Query(&q); err != nil {
			t.Error(err)
			return
		}
		q2 := dnsmsg.NewQuery(2, "google.com", dnsmsg.TypeA)
		start := e.w.Now()
		if _, err := c.Query(&q2); err != nil {
			t.Error(err)
			return
		}
		second = e.w.Now() - start
		c.Close()
	})
	e.w.Run()
	// Second query pays connection setup + query: 2 RTT.
	if second < 2*rtt-20*time.Millisecond {
		t.Errorf("second DoTCP query = %v, want ~2 RTT (no keepalive)", second)
	}
}

func TestEncryptedProtocolsUseSessionResumption(t *testing.T) {
	for _, proto := range []Protocol{DoT, DoH, DoQ, DoH3} {
		e := newEnv(t, 5, 50*time.Millisecond, 0, nil)
		_, m1 := e.exchange(t, proto)
		if m1 == nil || m1.UsedResumption {
			if m1 != nil && m1.UsedResumption {
				t.Errorf("%v: first session resumed", proto)
			}
			continue
		}
		_, m2 := e.exchange(t, proto)
		if m2 == nil || !m2.UsedResumption {
			t.Errorf("%v: second session did not resume", proto)
		}
	}
}

// TestTable1SizeOrdering checks the size relationships of Table 1:
// DoUDP total is tiny; DoQ's handshake more than doubles DoH's (Initial
// padding); DoH queries are the largest of the encrypted transports
// (HTTP/2 overhead); DoQ queries are smaller than DoH's.
func TestTable1SizeOrdering(t *testing.T) {
	sizes := map[Protocol]*Metrics{}
	for _, proto := range Protocols {
		e := newEnv(t, 6, 40*time.Millisecond, 0, nil)
		// Warm session for resumption, as the paper's methodology does.
		if proto.Encrypted() {
			e.exchange(t, proto)
		}
		_, m := e.exchange(t, proto)
		if m == nil {
			t.Fatalf("%v failed", proto)
		}
		sizes[proto] = m
	}
	udpTotal := sizes[DoUDP].QueryTx + sizes[DoUDP].QueryRx
	if udpTotal > 200 {
		t.Errorf("DoUDP total = %d B, want < 200", udpTotal)
	}
	doqHS := sizes[DoQ].HandshakeTx + sizes[DoQ].HandshakeRx
	dohHS := sizes[DoH].HandshakeTx + sizes[DoH].HandshakeRx
	if doqHS < dohHS*3/2 {
		t.Errorf("DoQ handshake (%d B) not clearly larger than DoH (%d B)", doqHS, dohHS)
	}
	if sizes[DoQ].QueryTx >= sizes[DoH].QueryTx {
		t.Errorf("DoQ query (%d B) not smaller than DoH query (%d B)",
			sizes[DoQ].QueryTx, sizes[DoH].QueryTx)
	}
	if sizes[DoUDP].HandshakeTx != 0 || sizes[DoUDP].HandshakeTime != 0 {
		t.Error("DoUDP has handshake cost")
	}
}

func TestDoUDPRetransmitAfter5s(t *testing.T) {
	// 100% loss on the forward path for the first send is hard to set up
	// per-packet; instead use heavy loss and verify that slow answers
	// arrive in multiples of the 5s stub timeout.
	e := newEnv(t, 7, 20*time.Millisecond, 0.95, nil)
	var resolve time.Duration
	var failed bool
	e.w.Go(func() {
		c, _ := Connect(DoUDP, e.opts())
		q := dnsmsg.NewQuery(9, "google.com", dnsmsg.TypeA)
		start := e.w.Now()
		if _, err := c.Query(&q); err != nil {
			failed = true
			return
		}
		resolve = e.w.Now() - start
		c.Close()
	})
	e.w.Run()
	if failed {
		t.Skip("all retransmissions lost at 95% loss; acceptable")
	}
	if resolve > 40*time.Millisecond && resolve < 5*time.Second {
		t.Errorf("resolve %v: retransmission happened before the 5s stub timeout", resolve)
	}
}

// TestDoUDPBackoffBoundsLossPenalty is the regression test for the
// resolv.conf-style retransmission knobs: with a short initial timeout
// and exponential backoff, a lossy first datagram costs ~UDPTimeout,
// not the classic 5 seconds.
func TestDoUDPBackoffBoundsLossPenalty(t *testing.T) {
	rtt := 40 * time.Millisecond
	e := newEnv(t, 11, rtt, 0, nil)
	// Deterministically eat the first datagram: 100% loss until well
	// after the first send, clean afterwards so the 500ms retransmission
	// gets through.
	n := e.client.Network()
	n.SetPathSchedule(e.client.Addr(), e.server.Addr(), []netem.PathStep{
		{At: 0, Params: netem.PathParams{Delay: rtt / 2, Loss: 1}},
		{At: 250 * time.Millisecond, Params: netem.PathParams{Delay: rtt / 2}},
	})
	var resolve time.Duration
	e.w.Go(func() {
		o := e.opts()
		o.UDPTimeout = 500 * time.Millisecond
		o.UDPBackoff = 2
		c, err := Connect(DoUDP, o)
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		q := dnsmsg.NewQuery(17, "google.com", dnsmsg.TypeA)
		start := e.w.Now()
		if _, err := c.Query(&q); err != nil {
			t.Errorf("query: %v", err)
			return
		}
		resolve = e.w.Now() - start
		c.Close()
	})
	e.w.Run()
	want := 500*time.Millisecond + rtt
	if resolve < 500*time.Millisecond || resolve > want+20*time.Millisecond {
		t.Errorf("resolve = %v, want ~%v (one 500ms backoff step + RTT)", resolve, want)
	}
}

// TestDoUDPRejectFailsFast verifies the middlebox-rejection path: a
// policy that actively rejects UDP/53 makes the stub fail in about one
// RTT instead of burning the full retransmission ladder.
func TestDoUDPRejectFailsFast(t *testing.T) {
	rtt := 40 * time.Millisecond
	e := newEnv(t, 12, rtt, 0, nil)
	e.client.Network().SetPolicy(e.client.Addr(), e.server.Addr(), netem.Policy{
		BlockUDPPorts: []uint16{PortDoUDP},
		Reject:        true,
	})
	var elapsed time.Duration
	var qerr error
	e.w.Go(func() {
		c, err := Connect(DoUDP, e.opts())
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		q := dnsmsg.NewQuery(18, "google.com", dnsmsg.TypeA)
		start := e.w.Now()
		_, qerr = c.Query(&q)
		elapsed = e.w.Now() - start
		c.Close()
	})
	e.w.Run()
	if qerr == nil {
		t.Fatal("query succeeded through a rejecting middlebox")
	}
	if qerr.Error() != "dox: DoUDP refused (port unreachable)" {
		t.Errorf("error = %v, want port-unreachable refusal", qerr)
	}
	if elapsed > rtt+10*time.Millisecond {
		t.Errorf("refusal took %v, want ~%v (one RTT, no timeout wait)", elapsed, rtt)
	}
}

func TestDoQDraftFramings(t *testing.T) {
	for _, alpn := range []string{"doq", "doq-i03", "doq-i02", "doq-i00"} {
		alpn := alpn
		e := newEnv(t, 8, 30*time.Millisecond, 0, func(c *ServerConfig) { c.DoQALPN = alpn })
		_, m := e.exchange(t, DoQ)
		if m == nil {
			t.Errorf("%s: query failed", alpn)
			continue
		}
		if m.DoQALPN != alpn {
			t.Errorf("negotiated %q, want %q", m.DoQALPN, alpn)
		}
	}
}

func TestTLS12ResolverAddsRoundTrip(t *testing.T) {
	rtt := 100 * time.Millisecond
	e := newEnv(t, 9, rtt, 0, func(c *ServerConfig) { c.TLSVersion = tlsmini.VersionTLS12 })
	_, m := e.exchange(t, DoT)
	if m == nil {
		t.Fatal("query failed")
	}
	if m.TLSVersion != tlsmini.VersionTLS12 {
		t.Errorf("negotiated %v", m.TLSVersion)
	}
	// TCP (1) + TLS 1.2 (2) = 3 RTT.
	if m.HandshakeTime < 3*rtt-20*time.Millisecond {
		t.Errorf("TLS 1.2 DoT handshake = %v, want ~3 RTT", m.HandshakeTime)
	}
}

func TestDoQZeroRTT(t *testing.T) {
	rtt := 100 * time.Millisecond
	e := newEnv(t, 10, rtt, 0, func(c *ServerConfig) { c.AcceptEarlyData = true })
	// Warm.
	e.exchange(t, DoQ)
	var resolve time.Duration
	var used0RTT bool
	e.w.Go(func() {
		o := e.opts()
		o.OfferEarlyData = true
		o.DoQALPNs = []string{"doq"}
		c, err := Connect(DoQ, o)
		if err != nil {
			t.Error(err)
			return
		}
		q := dnsmsg.NewQuery(0, "google.com", dnsmsg.TypeA)
		start := e.w.Now()
		if _, err := c.Query(&q); err != nil {
			t.Error(err)
			return
		}
		resolve = e.w.Now() - start
		used0RTT = c.Metrics().Used0RTT
		c.Close()
	})
	e.w.Run()
	if !used0RTT {
		t.Error("0-RTT not used")
	}
	// Connection setup + query all within ~1 RTT.
	if resolve > rtt+20*time.Millisecond {
		t.Errorf("0-RTT query = %v, want ~1 RTT total", resolve)
	}
}

// TestDoH3SizesBetweenDoQAndDoH is the transport-level core of E13: on
// identical paths with warmed (resumed) sessions, DoH3's query bytes
// must be strictly below DoH's (QPACK static references and two varint
// frames instead of first-request HPACK literals over TLS over TCP) and
// above DoQ's bare length-prefixed stream.
func TestDoH3SizesBetweenDoQAndDoH(t *testing.T) {
	sizes := map[Protocol]*Metrics{}
	for _, proto := range []Protocol{DoQ, DoH, DoH3} {
		e := newEnv(t, 12, 40*time.Millisecond, 0, nil)
		e.exchange(t, proto) // warm for resumption
		_, m := e.exchange(t, proto)
		if m == nil {
			t.Fatalf("%v failed", proto)
		}
		sizes[proto] = m
	}
	if got, limit := sizes[DoH3].QueryTx, sizes[DoH].QueryTx; got >= limit {
		t.Errorf("DoH3 query (%d B) not below DoH query (%d B)", got, limit)
	}
	if got, floor := sizes[DoH3].QueryTx, sizes[DoQ].QueryTx; got <= floor {
		t.Errorf("DoH3 query (%d B) not above DoQ query (%d B)", got, floor)
	}
	if sizes[DoH3].DoQALPN != DoH3ALPN {
		t.Errorf("negotiated ALPN %q, want %q", sizes[DoH3].DoQALPN, DoH3ALPN)
	}
}

// TestDoH3ZeroRTT mirrors TestDoQZeroRTT: with a warmed session and
// early data offered, the control-stream SETTINGS and the request ride
// in 0-RTT packets, so connect-to-answer fits in ~1 RTT.
func TestDoH3ZeroRTT(t *testing.T) {
	rtt := 100 * time.Millisecond
	e := newEnv(t, 13, rtt, 0, func(c *ServerConfig) { c.AcceptEarlyData = true })
	// Warm.
	e.exchange(t, DoH3)
	var resolve time.Duration
	var used0RTT bool
	e.w.Go(func() {
		o := e.opts()
		o.OfferEarlyData = true
		c, err := Connect(DoH3, o)
		if err != nil {
			t.Error(err)
			return
		}
		q := dnsmsg.NewQuery(0, "google.com", dnsmsg.TypeA)
		start := e.w.Now()
		if _, err := c.Query(&q); err != nil {
			t.Error(err)
			return
		}
		resolve = e.w.Now() - start
		used0RTT = c.Metrics().Used0RTT
		c.Close()
	})
	e.w.Run()
	if !used0RTT {
		t.Error("0-RTT not used")
	}
	if resolve > rtt+20*time.Millisecond {
		t.Errorf("0-RTT DoH3 query = %v, want ~1 RTT total", resolve)
	}
}

func TestUnresponsiveHandlerDropsQuery(t *testing.T) {
	e := newEnv(t, 11, 20*time.Millisecond, 0, func(c *ServerConfig) {
		inner := c.Handler
		n := 0
		c.Handler = func(q *dnsmsg.Message, p Protocol, from netip.AddrPort) *dnsmsg.Message {
			n++
			if n <= 3 {
				return nil // drop the first attempts
			}
			return inner(q, p, from)
		}
	})
	var err error
	e.w.Go(func() {
		c, _ := Connect(DoUDP, e.opts())
		q := dnsmsg.NewQuery(1, "google.com", dnsmsg.TypeA)
		_, err = c.Query(&q)
		c.Close()
	})
	e.w.Run()
	if err == nil {
		t.Error("query succeeded despite handler dropping all attempts")
	}
}
