package dox

import (
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"net/netip"
	"slices"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/h2"
	"repro/internal/h3"
	"repro/internal/netem"
	"repro/internal/quic"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/tlsmini"
)

// failPending fails every in-flight query in ascending query-ID order.
// Iterating the map directly would wake the waiting tasks in Go's
// randomized map order, which leaks into the kernel's run queue and
// breaks bit-level reproducibility of lossy campaigns.
func failPending(pending map[uint16]*sim.Future[*dnsmsg.Message]) {
	for _, id := range slices.Sorted(maps.Keys(pending)) {
		pending[id].Fail()
		delete(pending, id)
	}
}

// Client is a DNS transport session against one resolver.
type Client interface {
	// Query performs one DNS exchange.
	Query(q *dnsmsg.Message) (*dnsmsg.Message, error)
	// Metrics returns the session's measurements (updated by Query).
	Metrics() *Metrics
	// InFlight reports queries currently awaiting a response.
	InFlight() int
	// Close releases the session.
	Close()
}

// Options configures a client session.
type Options struct {
	Host     *netem.Host
	Resolver netip.Addr

	// Ports default to the standard ones.
	UDPPort, TCPPort, DoTPort, DoHPort, DoQPort, DoH3Port uint16

	ServerName     string
	SessionCache   *tlsmini.SessionCache
	OfferEarlyData bool
	Token          []byte   // QUIC address-validation token
	QUICVersions   []uint32 // preference order
	DoQALPNs       []string // offered DoQ versions; default AllDoQALPNs
	TLSMaxVersion  tlsmini.Version

	// UDPTimeout is the stub's application-layer retransmission timeout
	// (resolv.conf default: 5 seconds). UDPRetries caps retransmissions.
	UDPTimeout time.Duration
	UDPRetries int

	Rand *rand.Rand
	Now  func() time.Duration
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.UDPPort == 0 {
		v.UDPPort = PortDoUDP
	}
	if v.TCPPort == 0 {
		v.TCPPort = PortDoTCP
	}
	if v.DoTPort == 0 {
		v.DoTPort = PortDoT
	}
	if v.DoHPort == 0 {
		v.DoHPort = PortDoH
	}
	if v.DoQPort == 0 {
		v.DoQPort = PortDoQ
	}
	if v.DoH3Port == 0 {
		v.DoH3Port = PortDoH3
	}
	if v.UDPTimeout == 0 {
		v.UDPTimeout = 5 * time.Second
	}
	if v.UDPRetries == 0 {
		v.UDPRetries = 2
	}
	if len(v.DoQALPNs) == 0 {
		v.DoQALPNs = AllDoQALPNs()
	}
	if len(v.QUICVersions) == 0 {
		v.QUICVersions = quic.AllVersions()
	}
	if v.ServerName == "" {
		v.ServerName = v.Resolver.String()
	}
	return v
}

// Connect establishes a client session for the given transport. For
// connection-oriented transports this blocks for the handshake.
func Connect(proto Protocol, opts Options) (Client, error) {
	o := opts.withDefaults()
	switch proto {
	case DoUDP:
		return newUDPClient(o)
	case DoTCP:
		return newTCPClient(o)
	case DoT:
		return newDoTClient(o)
	case DoH:
		return newDoHClient(o)
	case DoQ:
		return newDoQClient(o)
	case DoH3:
		return newDoH3Client(o)
	}
	return nil, fmt.Errorf("dox: unknown protocol %v", proto)
}

// --- DoUDP ---

type udpClient struct {
	o        Options
	sock     *netem.Socket
	raddr    netip.AddrPort
	m        Metrics
	inFlight int
	pending  map[uint16]*sim.Future[*dnsmsg.Message]
	closed   bool
}

func newUDPClient(o Options) (*udpClient, error) {
	c := &udpClient{
		o:       o,
		sock:    o.Host.Dial(netem.ProtoUDP, 8),
		raddr:   netip.AddrPortFrom(o.Resolver, o.UDPPort),
		pending: make(map[uint16]*sim.Future[*dnsmsg.Message]),
	}
	o.Host.World().Go(c.readLoop)
	return c, nil
}

func (c *udpClient) readLoop() {
	for {
		d, ok := c.sock.Recv()
		if !ok {
			failPending(c.pending)
			return
		}
		resp, err := dnsmsg.Decode(d.Payload)
		c.sock.Pool().Put(d.Payload) // Decode copies everything it keeps
		if err != nil {
			continue
		}
		if f, ok := c.pending[resp.ID]; ok {
			delete(c.pending, resp.ID)
			f.Resolve(resp)
		}
	}
}

func (c *udpClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	txBefore, rxBefore := c.sock.Snapshot()
	c.inFlight++
	defer func() { c.inFlight-- }()
	wire := q.Encode()
	var resp *dnsmsg.Message
	for attempt := 0; attempt <= c.o.UDPRetries; attempt++ {
		f := sim.NewFuture[*dnsmsg.Message](c.o.Host.World(), "doudp-query")
		c.pending[q.ID] = f
		c.sock.Send(c.raddr, append([]byte(nil), wire...))
		r, ok := f.WaitTimeout(c.o.UDPTimeout)
		if ok {
			resp = r
			break
		}
		delete(c.pending, q.ID)
	}
	tx, rx := c.sock.Snapshot()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if resp == nil {
		return nil, errors.New("dox: DoUDP query timed out")
	}
	return resp, nil
}

func (c *udpClient) Metrics() *Metrics { return &c.m }
func (c *udpClient) InFlight() int     { return c.inFlight }
func (c *udpClient) Close() {
	if !c.closed {
		c.closed = true
		c.sock.Close()
	}
}

// --- DoTCP ---

type tcpClient struct {
	o        Options
	raddr    netip.AddrPort
	conn     *tcpsim.Conn
	connUsed bool
	m        Metrics
	inFlight int
	closed   bool
}

func newTCPClient(o Options) (*tcpClient, error) {
	c := &tcpClient{o: o, raddr: netip.AddrPortFrom(o.Resolver, o.TCPPort)}
	start := o.Now()
	conn, err := tcpsim.Dial(o.Host, c.raddr)
	if err != nil {
		return nil, err
	}
	c.m.HandshakeTime = o.Now() - start
	// The SYN-ACK may still be counted in flight; snapshot what we have.
	c.m.HandshakeTx, c.m.HandshakeRx = conn.Stats()
	c.conn = conn
	return c, nil
}

func (c *tcpClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	conn := c.conn
	if conn == nil || c.connUsed {
		// No resolver supports edns-tcp-keepalive (paper §3), so every
		// query needs a fresh connection: 2 RTT per query.
		var err error
		conn, err = tcpsim.Dial(c.o.Host, c.raddr)
		if err != nil {
			return nil, err
		}
		c.conn = conn
	}
	c.connUsed = true
	txBefore, rxBefore := conn.Stats()
	if err := conn.Write(prefixMessage(q.Encode())); err != nil {
		return nil, err
	}
	resp, err := readPrefixedMessage(conn)
	tx, rx := conn.Stats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if err != nil {
		return nil, err
	}
	conn.Close()
	c.conn = nil
	return resp, nil
}

func (c *tcpClient) Metrics() *Metrics { return &c.m }
func (c *tcpClient) InFlight() int     { return c.inFlight }
func (c *tcpClient) Close() {
	if !c.closed {
		c.closed = true
		if c.conn != nil {
			c.conn.Close()
		}
	}
}

// prefixMessage adds the RFC 7766 2-byte length prefix.
func prefixMessage(wire []byte) []byte {
	out := make([]byte, 2, 2+len(wire))
	out[0] = byte(len(wire) >> 8)
	out[1] = byte(len(wire))
	return append(out, wire...)
}

// appendPrefixed encodes the message with its 2-byte length prefix in a
// single right-sized buffer.
//
//simlint:hotpath
func appendPrefixed(m *dnsmsg.Message) []byte {
	wire := m.AppendEncode(make([]byte, 2, 2+512))
	n := len(wire) - 2
	wire[0] = byte(n >> 8)
	wire[1] = byte(n)
	return wire
}

// byteStream is the minimal reader both tcpsim.Conn and tlsmini.Conn
// satisfy.
type byteStream interface {
	Read() ([]byte, bool)
}

// readPrefixedMessage reads one length-prefixed DNS message.
func readPrefixedMessage(s byteStream) (*dnsmsg.Message, error) {
	var buf []byte
	for {
		if len(buf) >= 2 {
			n := int(buf[0])<<8 | int(buf[1])
			if len(buf) >= 2+n {
				return dnsmsg.Decode(buf[2 : 2+n])
			}
		}
		chunk, ok := s.Read()
		if !ok {
			return nil, errors.New("dox: connection closed mid-message")
		}
		buf = append(buf, chunk...)
	}
}

// --- DoT ---

type dotClient struct {
	o        Options
	tls      *tlsmini.Conn
	tcpStats func() (int, int)
	m        Metrics
	pending  map[uint16]*sim.Future[*dnsmsg.Message]
	inFlight int
	closed   bool
	rbuf     []byte
}

func newDoTClient(o Options) (*dotClient, error) {
	raddr := netip.AddrPortFrom(o.Resolver, o.DoTPort)
	start := o.Now()
	tcp, err := tcpsim.Dial(o.Host, raddr)
	if err != nil {
		return nil, err
	}
	tlsConn := tlsmini.NewConn(tcp, tlsmini.Config{
		IsClient:     true,
		ServerName:   o.ServerName,
		ALPN:         []string{"dot"},
		Version:      o.TLSMaxVersion,
		SessionCache: o.SessionCache,
		Rand:         o.Rand,
		Now:          o.Now,
	})
	if err := tlsConn.Handshake(); err != nil {
		tcp.Close()
		return nil, err
	}
	c := &dotClient{
		o:       o,
		tls:     tlsConn,
		pending: make(map[uint16]*sim.Future[*dnsmsg.Message]),
	}
	c.m.HandshakeTime = o.Now() - start
	c.m.HandshakeTx, c.m.HandshakeRx = tcp.Stats()
	c.m.TLSVersion = tlsConn.Engine().NegotiatedVersion()
	c.m.UsedResumption = tlsConn.Engine().UsedResumption()
	c.tcpStats = tcp.Stats
	o.Host.World().Go(c.readLoop)
	return c, nil
}

func (c *dotClient) readLoop() {
	for {
		resp, err := c.readOne()
		if err != nil {
			failPending(c.pending)
			return
		}
		if f, ok := c.pending[resp.ID]; ok {
			delete(c.pending, resp.ID)
			f.Resolve(resp)
		}
	}
}

func (c *dotClient) readOne() (*dnsmsg.Message, error) {
	for {
		if len(c.rbuf) >= 2 {
			n := int(c.rbuf[0])<<8 | int(c.rbuf[1])
			if len(c.rbuf) >= 2+n {
				wire := c.rbuf[2 : 2+n]
				c.rbuf = append([]byte(nil), c.rbuf[2+n:]...)
				return dnsmsg.Decode(wire)
			}
		}
		chunk, ok := c.tls.Read()
		if !ok {
			return nil, errors.New("dox: DoT connection closed")
		}
		c.rbuf = append(c.rbuf, chunk...)
	}
}

func (c *dotClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	txBefore, rxBefore := c.tcpStats()
	f := sim.NewFuture[*dnsmsg.Message](c.o.Host.World(), "dot-query")
	c.pending[q.ID] = f
	if err := c.tls.Write(prefixMessage(q.Encode())); err != nil {
		return nil, err
	}
	resp, ok := f.Wait()
	tx, rx := c.tcpStats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if !ok {
		return nil, errors.New("dox: DoT query failed")
	}
	return resp, nil
}

func (c *dotClient) Metrics() *Metrics { return &c.m }
func (c *dotClient) InFlight() int     { return c.inFlight }
func (c *dotClient) Close() {
	if !c.closed {
		c.closed = true
		c.tls.Close()
	}
}

// --- DoH ---

type dohClient struct {
	o        Options
	h2c      *h2.ClientConn
	tcpStats func() (int, int)
	m        Metrics
	inFlight int
	closed   bool
}

func newDoHClient(o Options) (*dohClient, error) {
	raddr := netip.AddrPortFrom(o.Resolver, o.DoHPort)
	start := o.Now()
	tcp, err := tcpsim.Dial(o.Host, raddr)
	if err != nil {
		return nil, err
	}
	tlsConn := tlsmini.NewConn(tcp, tlsmini.Config{
		IsClient:     true,
		ServerName:   o.ServerName,
		ALPN:         []string{"h2"},
		Version:      o.TLSMaxVersion,
		SessionCache: o.SessionCache,
		Rand:         o.Rand,
		Now:          o.Now,
	})
	if err := tlsConn.Handshake(); err != nil {
		tcp.Close()
		return nil, err
	}
	h2c, err := h2.NewClientConn(o.Host.World(), tlsConn)
	if err != nil {
		return nil, err
	}
	c := &dohClient{o: o, h2c: h2c, tcpStats: tcp.Stats}
	c.m.HandshakeTime = o.Now() - start
	c.m.HandshakeTx, c.m.HandshakeRx = tcp.Stats()
	c.m.TLSVersion = tlsConn.Engine().NegotiatedVersion()
	c.m.UsedResumption = tlsConn.Engine().UsedResumption()
	return c, nil
}

func (c *dohClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	txBefore, rxBefore := c.tcpStats()
	resp, err := c.h2c.RoundTrip([]h2.Header{
		{Name: ":method", Value: "POST"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: c.o.ServerName},
		{Name: ":path", Value: "/dns-query"},
		{Name: "accept", Value: "application/dns-message"},
		{Name: "content-type", Value: "application/dns-message"},
		{Name: "content-length", Value: fmt.Sprint(len(q.Encode()))},
		{Name: "user-agent", Value: "repro-dnsperf/1.0"},
	}, q.Encode())
	tx, rx := c.tcpStats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if err != nil {
		return nil, err
	}
	if resp.Status() != "200" {
		return nil, fmt.Errorf("dox: DoH status %s", resp.Status())
	}
	return dnsmsg.Decode(resp.Body)
}

func (c *dohClient) Metrics() *Metrics { return &c.m }
func (c *dohClient) InFlight() int     { return c.inFlight }
func (c *dohClient) Close() {
	if !c.closed {
		c.closed = true
		c.h2c.Close()
	}
}

// --- DoQ ---

type doqClient struct {
	o        Options
	conn     *quic.Conn
	m        Metrics
	inFlight int
	closed   bool
}

func newDoQClient(o Options) (*doqClient, error) {
	raddr := netip.AddrPortFrom(o.Resolver, o.DoQPort)
	cfg := quic.Config{
		ALPN:           o.DoQALPNs,
		ServerName:     o.ServerName,
		SessionCache:   o.SessionCache,
		OfferEarlyData: o.OfferEarlyData,
		Token:          o.Token,
		Versions:       o.QUICVersions,
		TLSVersion:     o.TLSMaxVersion,
		Rand:           o.Rand,
		Now:            o.Now,
	}
	start := o.Now()
	var conn *quic.Conn
	var err error
	if o.OfferEarlyData {
		conn, err = quic.DialEarly(o.Host, raddr, cfg)
	} else {
		conn, err = quic.Dial(o.Host, raddr, cfg)
	}
	if err != nil {
		return nil, err
	}
	c := &doqClient{o: o, conn: conn}
	if !o.OfferEarlyData {
		c.m.HandshakeTime = o.Now() - start
		c.fillHandshakeMetrics()
	}
	return c, nil
}

func (c *doqClient) fillHandshakeMetrics() {
	c.m.HandshakeTx, c.m.HandshakeRx = c.conn.HandshakeStats()
	c.m.TLSVersion = c.conn.TLSVersion()
	c.m.QUICVersion = c.conn.Version()
	c.m.DoQALPN = c.conn.ALPN()
	c.m.UsedResumption = c.conn.UsedResumption()
	c.m.Used0RTT = c.conn.EarlyDataAccepted()
	c.m.UsedVN = c.conn.VersionNegotiated()
	c.m.UsedToken = len(c.o.Token) > 0
}

// WaitHandshake joins an early (0-RTT) dial.
func (c *doqClient) WaitHandshake() error {
	err := c.conn.WaitHandshake()
	if err == nil {
		c.m.HandshakeTime = c.conn.HandshakeTime()
		c.fillHandshakeMetrics()
	}
	return err
}

func (c *doqClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	txBefore, rxBefore := c.conn.Stats()
	st := c.conn.OpenStream()
	// RFC 9250: queries over DoQ use message ID 0.
	wire := q.Encode()
	alpn := c.conn.ALPN()
	if alpn == "" {
		// 0-RTT dial before handshake: frame per the offered preference.
		alpn = c.o.DoQALPNs[0]
	}
	if alpnUsesLengthPrefix(alpn) {
		st.Write(prefixMessage(wire), true)
	} else {
		st.Write(wire, true)
	}
	data, ok := st.ReadAll()
	tx, rx := c.conn.Stats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if c.m.HandshakeTime == 0 && c.conn.HandshakeTime() > 0 {
		c.fillHandshakeMetrics()
		c.m.HandshakeTime = c.conn.HandshakeTime()
	}
	if !ok {
		return nil, errors.New("dox: DoQ stream failed")
	}
	if alpnUsesLengthPrefix(c.conn.ALPN()) {
		if len(data) < 2 {
			return nil, errors.New("dox: short DoQ response")
		}
		n := int(data[0])<<8 | int(data[1])
		if len(data) < 2+n {
			return nil, errors.New("dox: truncated DoQ response")
		}
		data = data[2 : 2+n]
	}
	return dnsmsg.Decode(data)
}

// Token returns the address-validation token the server issued.
func (c *doqClient) Token() []byte { return c.conn.NewToken() }

func (c *doqClient) Metrics() *Metrics { return &c.m }
func (c *doqClient) InFlight() int     { return c.inFlight }
func (c *doqClient) Close() {
	if !c.closed {
		c.closed = true
		c.conn.Close()
	}
}

// --- DoH3 ---

type doh3Client struct {
	o        Options
	conn     *quic.Conn
	h3c      *h3.ClientConn
	m        Metrics
	inFlight int
	closed   bool
}

// newDoH3Client dials QUIC with the HTTP/3 ALPN and sets the control
// stream up. On an early (0-RTT) dial the SETTINGS and the first request
// ride in 0-RTT packets: DoH3's framing depends only on the QPACK static
// table, so — like DoQ framing per the offered ALPN — the client needs
// no negotiated server state to serialize early data.
func newDoH3Client(o Options) (*doh3Client, error) {
	raddr := netip.AddrPortFrom(o.Resolver, o.DoH3Port)
	cfg := quic.Config{
		ALPN:           []string{DoH3ALPN},
		ServerName:     o.ServerName,
		SessionCache:   o.SessionCache,
		OfferEarlyData: o.OfferEarlyData,
		Token:          o.Token,
		Versions:       o.QUICVersions,
		TLSVersion:     o.TLSMaxVersion,
		Rand:           o.Rand,
		Now:            o.Now,
	}
	start := o.Now()
	var conn *quic.Conn
	var err error
	if o.OfferEarlyData {
		conn, err = quic.DialEarly(o.Host, raddr, cfg)
	} else {
		conn, err = quic.Dial(o.Host, raddr, cfg)
	}
	if err != nil {
		return nil, err
	}
	c := &doh3Client{o: o, conn: conn}
	txBefore, _ := conn.Stats()
	c.h3c = h3.NewClientConn(o.Host.World(), conn)
	txAfter, _ := conn.Stats()
	if !o.OfferEarlyData {
		c.m.HandshakeTime = o.Now() - start
		c.fillHandshakeMetrics()
		// Like DoH's accounting (the HTTP/2 preface and SETTINGS count
		// as session setup, not query bytes), fold exactly the
		// control-stream SETTINGS just sent into the handshake tally —
		// and nothing else, so the C->R/R->C rows stay comparable with
		// DoQ's handshake-completion snapshot.
		c.m.HandshakeTx += txAfter - txBefore
	}
	return c, nil
}

func (c *doh3Client) fillHandshakeMetrics() {
	c.m.HandshakeTx, c.m.HandshakeRx = c.conn.HandshakeStats()
	c.m.TLSVersion = c.conn.TLSVersion()
	c.m.QUICVersion = c.conn.Version()
	c.m.DoQALPN = c.conn.ALPN()
	c.m.UsedResumption = c.conn.UsedResumption()
	c.m.Used0RTT = c.conn.EarlyDataAccepted()
	c.m.UsedVN = c.conn.VersionNegotiated()
	c.m.UsedToken = len(c.o.Token) > 0
}

// WaitHandshake joins an early (0-RTT) dial.
func (c *doh3Client) WaitHandshake() error {
	err := c.conn.WaitHandshake()
	if err == nil {
		c.m.HandshakeTime = c.conn.HandshakeTime()
		c.fillHandshakeMetrics()
	}
	return err
}

func (c *doh3Client) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	txBefore, rxBefore := c.conn.Stats()
	wire := q.Encode()
	resp, err := c.h3c.RoundTrip([]h3.Header{
		{Name: ":method", Value: "POST"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: c.o.ServerName},
		{Name: ":path", Value: "/dns-query"},
		{Name: "accept", Value: "application/dns-message"},
		{Name: "content-type", Value: "application/dns-message"},
		{Name: "content-length", Value: fmt.Sprint(len(wire))},
		{Name: "user-agent", Value: "repro-dnsperf/1.0"},
	}, wire)
	tx, rx := c.conn.Stats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if c.m.HandshakeTime == 0 && c.conn.HandshakeTime() > 0 {
		c.m.HandshakeTime = c.conn.HandshakeTime()
		c.fillHandshakeMetrics()
	}
	if err != nil {
		return nil, err
	}
	if resp.Status() != "200" {
		return nil, fmt.Errorf("dox: DoH3 status %s", resp.Status())
	}
	return dnsmsg.Decode(resp.Body)
}

// Token returns the address-validation token the server issued.
func (c *doh3Client) Token() []byte { return c.conn.NewToken() }

func (c *doh3Client) Metrics() *Metrics { return &c.m }
func (c *doh3Client) InFlight() int     { return c.inFlight }
func (c *doh3Client) Close() {
	if !c.closed {
		c.closed = true
		c.h3c.Close()
	}
}
