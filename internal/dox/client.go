package dox

import (
	"errors"
	"fmt"
	"maps"
	"net/netip"
	"slices"
	"sync"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/h2"
	"repro/internal/h3"
	"repro/internal/netapi"
	"repro/internal/quic"
	"repro/internal/tlsmini"
)

// failPending fails every in-flight query in ascending query-ID order.
// Iterating the map directly would wake the waiting tasks in Go's
// randomized map order, which leaks into the kernel's run queue and
// breaks bit-level reproducibility of lossy campaigns.
func failPending(pending map[uint16]*netapi.Future[*dnsmsg.Message]) {
	for _, id := range slices.Sorted(maps.Keys(pending)) {
		pending[id].Fail()
		delete(pending, id)
	}
}

// Client is a DNS transport session against one resolver.
type Client interface {
	// Query performs one DNS exchange.
	Query(q *dnsmsg.Message) (*dnsmsg.Message, error)
	// Metrics returns the session's measurements (updated by Query).
	Metrics() *Metrics
	// InFlight reports queries currently awaiting a response.
	InFlight() int
	// Close releases the session.
	Close()
}

// Migrator is the optional interface of clients whose transport can
// follow the stub to a new access network without re-handshaking. Only
// the QUIC transports (DoQ, DoH3) implement it: QUIC validates the new
// path with PATH_CHALLENGE and keeps the connection, while TCP-based
// sessions are bound to the old 4-tuple and must reconnect.
type Migrator interface {
	// Migrate moves the session to a fresh local endpoint and blocks
	// until the server validates the new path (about one RTT).
	Migrate() error
}

// Aborter is the optional interface of clients whose session can be
// torn down abortively, failing in-flight queries at once. The
// TCP-based transports (DoT, DoH) implement it: when the access network
// changes the old 4-tuple is dead, the peer's in-flight bytes can never
// arrive, and waiting out a graceful close would pretend otherwise.
type Aborter interface {
	Abort()
}

// Options configures a client session.
type Options struct {
	// Backend supplies sockets, TLS, timers, clock and randomness. Use
	// netapi/simnet inside a simulation and netapi/livenet for real
	// resolvers.
	Backend  netapi.Backend
	Resolver netip.Addr

	// Ports default to the standard ones.
	UDPPort, TCPPort, DoTPort, DoHPort, DoQPort, DoH3Port uint16

	ServerName     string
	SessionCache   *tlsmini.SessionCache
	OfferEarlyData bool
	Token          []byte   // QUIC address-validation token
	QUICVersions   []uint32 // preference order
	DoQALPNs       []string // offered DoQ versions; default AllDoQALPNs
	TLSMaxVersion  tlsmini.Version

	// InsecureTLS disables certificate verification on backends that
	// verify (livenet); the sim backend's certificates are modeled.
	InsecureTLS bool

	// UDPTimeout is the stub's initial application-layer retransmission
	// timeout (resolv.conf default: 5 seconds). UDPRetries caps
	// retransmissions, and UDPBackoff multiplies the per-attempt timeout
	// after each unanswered attempt (resolv.conf-style exponential
	// backoff). The default backoff of 1 keeps the classic flat
	// schedule — a lossy first datagram costs the full UDPTimeout —
	// while a resilience-minded stub sets a short UDPTimeout with
	// UDPBackoff 2 and bounds the total wait without giving up retries.
	UDPTimeout time.Duration
	UDPRetries int
	UDPBackoff float64
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.UDPPort == 0 {
		v.UDPPort = PortDoUDP
	}
	if v.TCPPort == 0 {
		v.TCPPort = PortDoTCP
	}
	if v.DoTPort == 0 {
		v.DoTPort = PortDoT
	}
	if v.DoHPort == 0 {
		v.DoHPort = PortDoH
	}
	if v.DoQPort == 0 {
		v.DoQPort = PortDoQ
	}
	if v.DoH3Port == 0 {
		v.DoH3Port = PortDoH3
	}
	if v.UDPTimeout == 0 {
		v.UDPTimeout = 5 * time.Second
	}
	if v.UDPRetries == 0 {
		v.UDPRetries = 2
	}
	if v.UDPBackoff == 0 {
		v.UDPBackoff = 1
	}
	if len(v.DoQALPNs) == 0 {
		v.DoQALPNs = AllDoQALPNs()
	}
	if len(v.QUICVersions) == 0 {
		v.QUICVersions = quic.AllVersions()
	}
	if v.ServerName == "" {
		v.ServerName = v.Resolver.String()
	}
	return v
}

func (o *Options) tlsConfig(alpn []string) netapi.TLSConfig {
	return netapi.TLSConfig{
		ServerName:         o.ServerName,
		ALPN:               alpn,
		MaxVersion:         o.TLSMaxVersion,
		SessionCache:       o.SessionCache,
		InsecureSkipVerify: o.InsecureTLS,
	}
}

// quicDialer is the capability a backend provides when it can carry
// QUIC. Only the sim backend has it: the QUIC stack is built on the
// simulated network, so DoQ and DoH3 are sim-only transports.
type quicDialer interface {
	DialQUIC(raddr netip.AddrPort, cfg quic.Config, early bool) (*quic.Conn, error)
}

// httpRoundTripper is the capability a backend provides when DoH should
// run over a real HTTP stack (livenet: net/http with its HTTP/2
// support) instead of the in-repo h2 layer over the backend's TLS.
type httpRoundTripper interface {
	RoundTripHTTP(serverName string, raddr netip.AddrPort, path string, insecure bool, body []byte) (status int, respBody []byte, err error)
}

// Connect establishes a client session for the given transport. For
// connection-oriented transports this blocks for the handshake.
func Connect(proto Protocol, opts Options) (Client, error) {
	o := opts.withDefaults()
	switch proto {
	case DoUDP:
		return newUDPClient(o)
	case DoTCP:
		return newTCPClient(o)
	case DoT:
		return newDoTClient(o)
	case DoH:
		return newDoHClient(o)
	case DoQ:
		return newDoQClient(o)
	case DoH3:
		return newDoH3Client(o)
	}
	return nil, fmt.Errorf("dox: unknown protocol %v", proto)
}

// --- DoUDP ---

type udpClient struct {
	o        Options
	sock     netapi.PacketConn
	raddr    netip.AddrPort
	m        Metrics
	inFlight int
	// mu guards pending against the read loop (a no-op lock on sim).
	mu      sync.Locker
	pending map[uint16]*netapi.Future[*dnsmsg.Message]
	closed  bool
	// refused is set when the network actively rejects the resolver port
	// (ICMP-style unreachable from a middlebox policy): further
	// retransmissions are pointless, so Query fails fast.
	refused bool
}

func newUDPClient(o Options) (*udpClient, error) {
	sock, err := o.Backend.DialUDP(8)
	if err != nil {
		return nil, err
	}
	c := &udpClient{
		o:       o,
		sock:    sock,
		raddr:   netip.AddrPortFrom(o.Resolver, o.UDPPort),
		mu:      o.Backend.NewLock(),
		pending: make(map[uint16]*netapi.Future[*dnsmsg.Message]),
	}
	o.Backend.Go(c.readLoop)
	return c, nil
}

func (c *udpClient) readLoop() {
	for {
		d, ok := c.sock.Recv()
		if !ok {
			c.mu.Lock()
			failPending(c.pending)
			c.mu.Unlock()
			return
		}
		if d.Reject {
			c.mu.Lock()
			c.refused = true
			failPending(c.pending)
			c.mu.Unlock()
			continue
		}
		resp, err := dnsmsg.Decode(d.Payload)
		c.sock.Pool().Put(d.Payload) // Decode copies everything it keeps
		if err != nil {
			continue
		}
		c.mu.Lock()
		f, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			f.Resolve(resp)
		}
	}
}

func (c *udpClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	txBefore, rxBefore := c.sock.Snapshot()
	c.inFlight++
	defer func() { c.inFlight-- }()
	wire := q.Encode()
	var resp *dnsmsg.Message
	refused := false
	timeout := c.o.UDPTimeout
	for attempt := 0; attempt <= c.o.UDPRetries; attempt++ {
		f := netapi.NewFuture[*dnsmsg.Message](c.o.Backend, "doudp-query")
		c.mu.Lock()
		c.pending[q.ID] = f
		c.mu.Unlock()
		c.sock.Send(c.raddr, append([]byte(nil), wire...))
		r, ok := f.WaitTimeout(timeout)
		if ok {
			resp = r
			break
		}
		c.mu.Lock()
		delete(c.pending, q.ID)
		refused = c.refused
		c.mu.Unlock()
		if refused {
			break
		}
		timeout = time.Duration(float64(timeout) * c.o.UDPBackoff)
	}
	tx, rx := c.sock.Snapshot()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if resp == nil {
		if refused {
			return nil, errors.New("dox: DoUDP refused (port unreachable)")
		}
		return nil, errors.New("dox: DoUDP query timed out")
	}
	return resp, nil
}

func (c *udpClient) Metrics() *Metrics { return &c.m }
func (c *udpClient) InFlight() int     { return c.inFlight }
func (c *udpClient) Close() {
	if !c.closed {
		c.closed = true
		c.sock.Close()
	}
}

// --- DoTCP ---

type tcpClient struct {
	o        Options
	raddr    netip.AddrPort
	conn     netapi.StreamConn
	connUsed bool
	m        Metrics
	inFlight int
	closed   bool
}

func newTCPClient(o Options) (*tcpClient, error) {
	c := &tcpClient{o: o, raddr: netip.AddrPortFrom(o.Resolver, o.TCPPort)}
	start := o.Backend.Now()
	conn, err := o.Backend.DialStream(c.raddr)
	if err != nil {
		return nil, err
	}
	c.m.HandshakeTime = o.Backend.Now() - start
	// The SYN-ACK may still be counted in flight; snapshot what we have.
	c.m.HandshakeTx, c.m.HandshakeRx = conn.Stats()
	c.conn = conn
	return c, nil
}

func (c *tcpClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	conn := c.conn
	if conn == nil || c.connUsed {
		// No resolver supports edns-tcp-keepalive (paper §3), so every
		// query needs a fresh connection: 2 RTT per query.
		var err error
		conn, err = c.o.Backend.DialStream(c.raddr)
		if err != nil {
			return nil, err
		}
		c.conn = conn
	}
	c.connUsed = true
	txBefore, rxBefore := conn.Stats()
	if err := conn.Write(prefixMessage(q.Encode())); err != nil {
		return nil, err
	}
	resp, err := readPrefixedMessage(conn)
	tx, rx := conn.Stats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if err != nil {
		return nil, err
	}
	conn.Close()
	c.conn = nil
	return resp, nil
}

func (c *tcpClient) Metrics() *Metrics { return &c.m }
func (c *tcpClient) InFlight() int     { return c.inFlight }
func (c *tcpClient) Close() {
	if !c.closed {
		c.closed = true
		if c.conn != nil {
			c.conn.Close()
		}
	}
}

// prefixMessage adds the RFC 7766 2-byte length prefix.
func prefixMessage(wire []byte) []byte {
	out := make([]byte, 2, 2+len(wire))
	out[0] = byte(len(wire) >> 8)
	out[1] = byte(len(wire))
	return append(out, wire...)
}

// appendPrefixed encodes the message with its 2-byte length prefix in a
// single right-sized buffer.
//
//simlint:hotpath
func appendPrefixed(m *dnsmsg.Message) []byte {
	wire := m.AppendEncode(make([]byte, 2, 2+512))
	n := len(wire) - 2
	wire[0] = byte(n >> 8)
	wire[1] = byte(n)
	return wire
}

// byteStream is the minimal reader netapi.StreamConn, tlsmini.Conn and
// every TLS-wrapped stream satisfy.
type byteStream interface {
	Read() ([]byte, bool)
}

// readPrefixedMessage reads one length-prefixed DNS message.
func readPrefixedMessage(s byteStream) (*dnsmsg.Message, error) {
	var buf []byte
	for {
		if len(buf) >= 2 {
			n := int(buf[0])<<8 | int(buf[1])
			if len(buf) >= 2+n {
				return dnsmsg.Decode(buf[2 : 2+n])
			}
		}
		chunk, ok := s.Read()
		if !ok {
			return nil, errors.New("dox: connection closed mid-message")
		}
		buf = append(buf, chunk...)
	}
}

// --- DoT ---

type dotClient struct {
	o   Options
	tls netapi.TLSConn
	m   Metrics
	// mu guards pending against the read loop (a no-op lock on sim).
	mu       sync.Locker
	pending  map[uint16]*netapi.Future[*dnsmsg.Message]
	inFlight int
	closed   bool
	rbuf     []byte
}

func newDoTClient(o Options) (*dotClient, error) {
	raddr := netip.AddrPortFrom(o.Resolver, o.DoTPort)
	start := o.Backend.Now()
	tlsConn, err := o.Backend.DialTLS(raddr, o.tlsConfig([]string{"dot"}))
	if err != nil {
		return nil, err
	}
	c := &dotClient{
		o:       o,
		tls:     tlsConn,
		mu:      o.Backend.NewLock(),
		pending: make(map[uint16]*netapi.Future[*dnsmsg.Message]),
	}
	c.m.HandshakeTime = o.Backend.Now() - start
	c.m.HandshakeTx, c.m.HandshakeRx = tlsConn.Stats()
	c.m.TLSVersion = tlsConn.TLSVersion()
	c.m.UsedResumption = tlsConn.Resumed()
	o.Backend.Go(c.readLoop)
	return c, nil
}

func (c *dotClient) readLoop() {
	for {
		resp, err := c.readOne()
		if err != nil {
			c.mu.Lock()
			failPending(c.pending)
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		f, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			f.Resolve(resp)
		}
	}
}

func (c *dotClient) readOne() (*dnsmsg.Message, error) {
	for {
		if len(c.rbuf) >= 2 {
			n := int(c.rbuf[0])<<8 | int(c.rbuf[1])
			if len(c.rbuf) >= 2+n {
				wire := c.rbuf[2 : 2+n]
				c.rbuf = append([]byte(nil), c.rbuf[2+n:]...)
				return dnsmsg.Decode(wire)
			}
		}
		chunk, ok := c.tls.Read()
		if !ok {
			return nil, errors.New("dox: DoT connection closed")
		}
		c.rbuf = append(c.rbuf, chunk...)
	}
}

func (c *dotClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	txBefore, rxBefore := c.tls.Stats()
	f := netapi.NewFuture[*dnsmsg.Message](c.o.Backend, "dot-query")
	c.mu.Lock()
	c.pending[q.ID] = f
	c.mu.Unlock()
	if err := c.tls.Write(prefixMessage(q.Encode())); err != nil {
		return nil, err
	}
	resp, ok := f.Wait()
	tx, rx := c.tls.Stats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if !ok {
		return nil, errors.New("dox: DoT query failed")
	}
	return resp, nil
}

func (c *dotClient) Metrics() *Metrics { return &c.m }
func (c *dotClient) InFlight() int     { return c.inFlight }

// Abort kills the session without a close exchange (Aborter); pending
// queries fail through the read loop's failPending.
func (c *dotClient) Abort() {
	c.closed = true
	if a, ok := c.tls.(Aborter); ok {
		a.Abort()
		return
	}
	c.tls.Close()
}

func (c *dotClient) Close() {
	if !c.closed {
		c.closed = true
		c.tls.Close()
	}
}

// --- DoH ---

type dohClient struct {
	o        Options
	h2c      *h2.ClientConn
	hrt      httpRoundTripper // real-HTTP path (livenet); nil on sim
	raddr    netip.AddrPort
	tlsc     netapi.TLSConn // h2's transport, for abortive teardown
	tlsStats func() (int, int)
	m        Metrics
	inFlight int
	closed   bool
}

func newDoHClient(o Options) (*dohClient, error) {
	raddr := netip.AddrPortFrom(o.Resolver, o.DoHPort)
	if hrt, ok := o.Backend.(httpRoundTripper); ok {
		// Backend brings its own HTTP stack; connections are managed (and
		// reused) inside it, so there is no per-session handshake to time.
		return &dohClient{o: o, hrt: hrt, raddr: raddr}, nil
	}
	start := o.Backend.Now()
	tlsConn, err := o.Backend.DialTLS(raddr, o.tlsConfig([]string{"h2"}))
	if err != nil {
		return nil, err
	}
	h2c, err := h2.NewClientConn(o.Backend, tlsConn)
	if err != nil {
		return nil, err
	}
	c := &dohClient{o: o, h2c: h2c, raddr: raddr, tlsc: tlsConn, tlsStats: tlsConn.Stats}
	c.m.HandshakeTime = o.Backend.Now() - start
	c.m.HandshakeTx, c.m.HandshakeRx = tlsConn.Stats()
	c.m.TLSVersion = tlsConn.TLSVersion()
	c.m.UsedResumption = tlsConn.Resumed()
	return c, nil
}

func (c *dohClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	if c.hrt != nil {
		status, body, err := c.hrt.RoundTripHTTP(c.o.ServerName, c.raddr, "/dns-query", c.o.InsecureTLS, q.Encode())
		if err != nil {
			return nil, err
		}
		if status != 200 {
			return nil, fmt.Errorf("dox: DoH status %d", status)
		}
		return dnsmsg.Decode(body)
	}
	txBefore, rxBefore := c.tlsStats()
	resp, err := c.h2c.RoundTrip([]h2.Header{
		{Name: ":method", Value: "POST"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: c.o.ServerName},
		{Name: ":path", Value: "/dns-query"},
		{Name: "accept", Value: "application/dns-message"},
		{Name: "content-type", Value: "application/dns-message"},
		{Name: "content-length", Value: fmt.Sprint(len(q.Encode()))},
		{Name: "user-agent", Value: "repro-dnsperf/1.0"},
	}, q.Encode())
	tx, rx := c.tlsStats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if err != nil {
		return nil, err
	}
	if resp.Status() != "200" {
		return nil, fmt.Errorf("dox: DoH status %s", resp.Status())
	}
	return dnsmsg.Decode(resp.Body)
}

func (c *dohClient) Metrics() *Metrics { return &c.m }
func (c *dohClient) InFlight() int     { return c.inFlight }

// Abort kills the transport under the HTTP/2 session (Aborter); the h2
// read loop fails pending round trips when its stream breaks.
func (c *dohClient) Abort() {
	if a, ok := c.tlsc.(Aborter); ok {
		c.closed = true
		a.Abort()
		return
	}
	c.Close()
}

func (c *dohClient) Close() {
	if !c.closed {
		c.closed = true
		if c.h2c != nil {
			c.h2c.Close()
		}
	}
}

// --- DoQ ---

type doqClient struct {
	o        Options
	conn     *quic.Conn
	m        Metrics
	inFlight int
	closed   bool
}

func newDoQClient(o Options) (*doqClient, error) {
	qd, ok := o.Backend.(quicDialer)
	if !ok {
		return nil, errors.New("dox: DoQ requires a QUIC-capable backend (sim only)")
	}
	raddr := netip.AddrPortFrom(o.Resolver, o.DoQPort)
	cfg := quic.Config{
		ALPN:           o.DoQALPNs,
		ServerName:     o.ServerName,
		SessionCache:   o.SessionCache,
		OfferEarlyData: o.OfferEarlyData,
		Token:          o.Token,
		Versions:       o.QUICVersions,
		TLSVersion:     o.TLSMaxVersion,
		Rand:           o.Backend.Rand(),
		Now:            o.Backend.Now,
	}
	start := o.Backend.Now()
	conn, err := qd.DialQUIC(raddr, cfg, o.OfferEarlyData)
	if err != nil {
		return nil, err
	}
	c := &doqClient{o: o, conn: conn}
	if !o.OfferEarlyData {
		c.m.HandshakeTime = o.Backend.Now() - start
		c.fillHandshakeMetrics()
	}
	return c, nil
}

func (c *doqClient) fillHandshakeMetrics() {
	c.m.HandshakeTx, c.m.HandshakeRx = c.conn.HandshakeStats()
	c.m.TLSVersion = c.conn.TLSVersion()
	c.m.QUICVersion = c.conn.Version()
	c.m.DoQALPN = c.conn.ALPN()
	c.m.UsedResumption = c.conn.UsedResumption()
	c.m.Used0RTT = c.conn.EarlyDataAccepted()
	c.m.UsedVN = c.conn.VersionNegotiated()
	c.m.UsedToken = len(c.o.Token) > 0
}

// WaitHandshake joins an early (0-RTT) dial.
func (c *doqClient) WaitHandshake() error {
	err := c.conn.WaitHandshake()
	if err == nil {
		c.m.HandshakeTime = c.conn.HandshakeTime()
		c.fillHandshakeMetrics()
	}
	return err
}

func (c *doqClient) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	txBefore, rxBefore := c.conn.Stats()
	st := c.conn.OpenStream()
	// RFC 9250: queries over DoQ use message ID 0.
	wire := q.Encode()
	alpn := c.conn.ALPN()
	if alpn == "" {
		// 0-RTT dial before handshake: frame per the offered preference.
		alpn = c.o.DoQALPNs[0]
	}
	if alpnUsesLengthPrefix(alpn) {
		st.Write(prefixMessage(wire), true)
	} else {
		st.Write(wire, true)
	}
	data, ok := st.ReadAll()
	tx, rx := c.conn.Stats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if c.m.HandshakeTime == 0 && c.conn.HandshakeTime() > 0 {
		c.fillHandshakeMetrics()
		c.m.HandshakeTime = c.conn.HandshakeTime()
	}
	if !ok {
		return nil, errors.New("dox: DoQ stream failed")
	}
	if alpnUsesLengthPrefix(c.conn.ALPN()) {
		if len(data) < 2 {
			return nil, errors.New("dox: short DoQ response")
		}
		n := int(data[0])<<8 | int(data[1])
		if len(data) < 2+n {
			return nil, errors.New("dox: truncated DoQ response")
		}
		data = data[2 : 2+n]
	}
	return dnsmsg.Decode(data)
}

// Token returns the address-validation token the server issued.
func (c *doqClient) Token() []byte { return c.conn.NewToken() }

// Migrate moves the DoQ session to a new local address (Migrator).
func (c *doqClient) Migrate() error { return c.conn.Migrate() }

func (c *doqClient) Metrics() *Metrics { return &c.m }
func (c *doqClient) InFlight() int     { return c.inFlight }
func (c *doqClient) Close() {
	if !c.closed {
		c.closed = true
		c.conn.Close()
	}
}

// --- DoH3 ---

type doh3Client struct {
	o        Options
	conn     *quic.Conn
	h3c      *h3.ClientConn
	m        Metrics
	inFlight int
	closed   bool
}

// newDoH3Client dials QUIC with the HTTP/3 ALPN and sets the control
// stream up. On an early (0-RTT) dial the SETTINGS and the first request
// ride in 0-RTT packets: DoH3's framing depends only on the QPACK static
// table, so — like DoQ framing per the offered ALPN — the client needs
// no negotiated server state to serialize early data.
func newDoH3Client(o Options) (*doh3Client, error) {
	qd, ok := o.Backend.(quicDialer)
	if !ok {
		return nil, errors.New("dox: DoH3 requires a QUIC-capable backend (sim only)")
	}
	raddr := netip.AddrPortFrom(o.Resolver, o.DoH3Port)
	cfg := quic.Config{
		ALPN:           []string{DoH3ALPN},
		ServerName:     o.ServerName,
		SessionCache:   o.SessionCache,
		OfferEarlyData: o.OfferEarlyData,
		Token:          o.Token,
		Versions:       o.QUICVersions,
		TLSVersion:     o.TLSMaxVersion,
		Rand:           o.Backend.Rand(),
		Now:            o.Backend.Now,
	}
	start := o.Backend.Now()
	conn, err := qd.DialQUIC(raddr, cfg, o.OfferEarlyData)
	if err != nil {
		return nil, err
	}
	c := &doh3Client{o: o, conn: conn}
	txBefore, _ := conn.Stats()
	c.h3c = h3.NewClientConn(o.Backend, conn)
	txAfter, _ := conn.Stats()
	if !o.OfferEarlyData {
		c.m.HandshakeTime = o.Backend.Now() - start
		c.fillHandshakeMetrics()
		// Like DoH's accounting (the HTTP/2 preface and SETTINGS count
		// as session setup, not query bytes), fold exactly the
		// control-stream SETTINGS just sent into the handshake tally —
		// and nothing else, so the C->R/R->C rows stay comparable with
		// DoQ's handshake-completion snapshot.
		c.m.HandshakeTx += txAfter - txBefore
	}
	return c, nil
}

func (c *doh3Client) fillHandshakeMetrics() {
	c.m.HandshakeTx, c.m.HandshakeRx = c.conn.HandshakeStats()
	c.m.TLSVersion = c.conn.TLSVersion()
	c.m.QUICVersion = c.conn.Version()
	c.m.DoQALPN = c.conn.ALPN()
	c.m.UsedResumption = c.conn.UsedResumption()
	c.m.Used0RTT = c.conn.EarlyDataAccepted()
	c.m.UsedVN = c.conn.VersionNegotiated()
	c.m.UsedToken = len(c.o.Token) > 0
}

// WaitHandshake joins an early (0-RTT) dial.
func (c *doh3Client) WaitHandshake() error {
	err := c.conn.WaitHandshake()
	if err == nil {
		c.m.HandshakeTime = c.conn.HandshakeTime()
		c.fillHandshakeMetrics()
	}
	return err
}

func (c *doh3Client) Query(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if c.closed {
		return nil, errors.New("dox: client closed")
	}
	c.inFlight++
	defer func() { c.inFlight-- }()
	txBefore, rxBefore := c.conn.Stats()
	wire := q.Encode()
	resp, err := c.h3c.RoundTrip([]h3.Header{
		{Name: ":method", Value: "POST"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: c.o.ServerName},
		{Name: ":path", Value: "/dns-query"},
		{Name: "accept", Value: "application/dns-message"},
		{Name: "content-type", Value: "application/dns-message"},
		{Name: "content-length", Value: fmt.Sprint(len(wire))},
		{Name: "user-agent", Value: "repro-dnsperf/1.0"},
	}, wire)
	tx, rx := c.conn.Stats()
	c.m.QueryTx, c.m.QueryRx = tx-txBefore, rx-rxBefore
	if c.m.HandshakeTime == 0 && c.conn.HandshakeTime() > 0 {
		c.m.HandshakeTime = c.conn.HandshakeTime()
		c.fillHandshakeMetrics()
	}
	if err != nil {
		return nil, err
	}
	if resp.Status() != "200" {
		return nil, fmt.Errorf("dox: DoH3 status %s", resp.Status())
	}
	return dnsmsg.Decode(resp.Body)
}

// Token returns the address-validation token the server issued.
func (c *doh3Client) Token() []byte { return c.conn.NewToken() }

// Migrate moves the DoH3 session to a new local address (Migrator).
func (c *doh3Client) Migrate() error { return c.conn.Migrate() }

func (c *doh3Client) Metrics() *Metrics { return &c.m }
func (c *doh3Client) InFlight() int     { return c.inFlight }
func (c *doh3Client) Close() {
	if !c.closed {
		c.closed = true
		c.h3c.Close()
	}
}
