// Package dox implements the six DNS transports this repository
// measures — the paper's five, DoUDP (RFC 1035), DoTCP (RFC 7766), DoT
// (RFC 7858), DoH (RFC 8484, HTTP/2) and DoQ (RFC 9250), plus DoH3 (DNS
// over HTTP/3, RFC 8484 over RFC 9114), the successor question the
// paper leaves open in §5 — as clients and servers over this
// repository's protocol stack, with the byte and time accounting the
// evaluation needs.
//
// Transport behaviours the paper calls out are reproduced faithfully:
//
//   - DoUDP has no handshake but relies on the stub's application-layer
//     retransmission with a 5-second initial timeout (resolv.conf
//     default), the source of the paper's DoUDP tail outliers.
//   - DoTCP pays one round trip per connection, and because no resolver
//     supports TCP Fast Open or edns-tcp-keepalive, every query runs on
//     a fresh connection (2 RTT per query).
//   - DoT and DoH pay TCP + TLS 1.3 (two round trips; three under the
//     TLS 1.2 emulation), then reuse the connection.
//   - DoQ pays a single combined round trip, and supports session
//     resumption, address-validation tokens and 0-RTT.
//   - DoH3 rides the same QUIC stack as DoQ (one combined round trip,
//     resumption, tokens, 0-RTT) but frames queries as HTTP/3 requests
//     with static-table-only QPACK (internal/h3), so its sizes land
//     between DoQ's bare streams and DoH's HTTP/2-over-TLS-over-TCP
//     layering (experiment E13).
//
// Clients and servers are written against the netapi backend seam
// (DESIGN.md §10), never the simulation kernel directly: Options.Backend
// selects netapi/simnet inside deterministic campaigns or netapi/livenet
// to query real resolvers over OS sockets (Do53, DoTCP, DoT, and DoH via
// net/http). DoQ and DoH3 are sim-only: the QUIC stack exists on the sim
// side, and Connect reports a clear error when the backend cannot
// provide it.
package dox

import (
	"fmt"
	"time"

	"repro/internal/tlsmini"
)

// Protocol identifies a DNS transport, in the paper's column order.
type Protocol int

// The transports. The paper's five come first in Table 1 order; DoH3 is
// this repository's sixth transport (the paper's §5 open question).
const (
	DoUDP Protocol = iota
	DoTCP
	DoQ
	DoH
	DoT
	DoH3
)

// Protocols lists the paper's five transports in Table 1 order. The
// campaigns default to this set so the paper's artifacts (E1–E12) keep
// their shape; the DoH3 experiments (E13–E15) opt in explicitly.
var Protocols = []Protocol{DoUDP, DoTCP, DoQ, DoH, DoT}

// AllProtocols lists every implemented transport, DoH3 included.
var AllProtocols = []Protocol{DoUDP, DoTCP, DoQ, DoH, DoT, DoH3}

func (p Protocol) String() string {
	switch p {
	case DoUDP:
		return "DoUDP"
	case DoTCP:
		return "DoTCP"
	case DoQ:
		return "DoQ"
	case DoH:
		return "DoH"
	case DoT:
		return "DoT"
	case DoH3:
		return "DoH3"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Encrypted reports whether the transport encrypts queries.
func (p Protocol) Encrypted() bool { return p == DoQ || p == DoH || p == DoT || p == DoH3 }

// Default ports.
const (
	PortDoUDP = 53
	PortDoTCP = 53
	PortDoT   = 853
	PortDoH   = 443
	PortDoQ   = 853 // RFC 9250; the early drafts also used 784 and 8853
	PortDoH3  = 443 // UDP; shares the number with DoH's TCP port
)

// DoH3ALPN is the HTTP/3 ALPN identifier (RFC 9114).
const DoH3ALPN = "h3"

// DoQ ALPN identifiers. doq-i00 through doq-i02 carry one raw DNS message
// per stream; doq-i03 onward (and the RFC's "doq") add a 2-byte length
// prefix so a stream can carry multiple response messages.
var (
	DoQALPNRFC    = "doq"
	DoQALPNDrafts = []string{
		"doq-i00", "doq-i01", "doq-i02", "doq-i03", "doq-i04", "doq-i05",
		"doq-i06", "doq-i07", "doq-i08", "doq-i09", "doq-i10", "doq-i11",
	}
)

// AllDoQALPNs is the client's offer list: the RFC identifier plus every
// draft, matching the paper's tooling ("our tooling supports all
// available DoQ versions as of April 18, 2022").
func AllDoQALPNs() []string {
	return append([]string{DoQALPNRFC}, DoQALPNDrafts...)
}

// alpnUsesLengthPrefix reports whether the negotiated DoQ version frames
// messages with a 2-byte length.
func alpnUsesLengthPrefix(alpn string) bool {
	switch alpn {
	case "doq-i00", "doq-i01", "doq-i02":
		return false
	}
	return true
}

// Metrics captures what the paper measures per session and per query.
type Metrics struct {
	// Handshake time: from the first transport packet to an established
	// (encrypted, where applicable) session. Zero for DoUDP.
	HandshakeTime time.Duration
	// Bytes (IP payload) exchanged during the handshake.
	HandshakeTx, HandshakeRx int
	// Bytes exchanged by the last Query call (query direction / response
	// direction).
	QueryTx, QueryRx int

	TLSVersion  tlsmini.Version
	QUICVersion uint32
	// DoQALPN records the negotiated application protocol of a
	// QUIC-based session: the DoQ version identifier, or "h3" for DoH3.
	DoQALPN        string
	UsedResumption bool
	Used0RTT       bool
	UsedVN         bool // a Version Negotiation round trip occurred
	UsedToken      bool // an address-validation token was presented
}
