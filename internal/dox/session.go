package dox

import (
	"net/netip"

	"repro/internal/quic"
)

// QUICSession is the client-side state the paper's methodology carries
// from a cache-warming connection to the measured connection: the
// address-validation token from the NEW_TOKEN frame, the negotiated wire
// version (so Version Negotiation is not repeated), and the negotiated
// DoQ ALPN (so 0-RTT data can be framed correctly before the handshake
// completes). TLS session tickets live in tlsmini.SessionCache.
type QUICSession struct {
	Token   []byte
	Version uint32
	ALPN    string
}

// QUICSessionStore keeps QUICSessions per resolver address. It serves
// both QUIC transports (DoQ and DoH3); because the ALPN is part of the
// stored state, callers measuring both transports against the same
// resolver keep one store per transport.
type QUICSessionStore struct {
	m map[netip.Addr]*QUICSession
}

// NewQUICSessionStore returns an empty store.
func NewQUICSessionStore() *QUICSessionStore {
	return &QUICSessionStore{m: make(map[netip.Addr]*QUICSession)}
}

// Get returns the stored session state for addr, or nil.
func (s *QUICSessionStore) Get(addr netip.Addr) *QUICSession { return s.m[addr] }

// Put stores session state for addr.
func (s *QUICSessionStore) Put(addr netip.Addr, q *QUICSession) { s.m[addr] = q }

// Remember extracts reusable state from a finished QUIC-based client
// (DoQ or DoH3).
func (s *QUICSessionStore) Remember(addr netip.Addr, c Client) {
	var conn *quic.Conn
	switch cl := c.(type) {
	case *doqClient:
		conn = cl.conn
	case *doh3Client:
		conn = cl.conn
	default:
		return
	}
	q := &QUICSession{
		Version: conn.Version(),
		ALPN:    conn.ALPN(),
	}
	if tok := conn.NewToken(); len(tok) > 0 {
		q.Token = append([]byte(nil), tok...)
	} else if old := s.m[addr]; old != nil {
		// Keep a previously issued token: a connection that closed
		// before its NEW_TOKEN arrived must not erase usable state.
		q.Token = old.Token
	}
	s.m[addr] = q
}

// Apply primes Options with the stored state: token, the previously
// negotiated version first, and the negotiated ALPN (needed for 0-RTT
// framing).
func (s *QUICSessionStore) Apply(addr netip.Addr, o *Options) {
	q := s.m[addr]
	if q == nil {
		return
	}
	if len(q.Token) > 0 {
		o.Token = append([]byte(nil), q.Token...)
	}
	if q.Version != 0 {
		o.QUICVersions = []uint32{q.Version}
	}
	if q.ALPN != "" {
		o.DoQALPNs = []string{q.ALPN}
	}
}
