// Conformance suite: the Runtime contract (timers, events, groups,
// locks) must behave identically on both backends, because the
// protocol clients are written once against the seam. Each case runs
// on simnet inside a virtual-time world and on livenet with real
// goroutines and short wall-clock delays.
package netapi_test

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netapi"
	"repro/internal/netapi/livenet"
	"repro/internal/netapi/simnet"
	"repro/internal/netem"
	"repro/internal/sim"
)

// onBackends runs fn on a task of each backend. The sim variant owns a
// fresh world and drains it; the live variant runs fn directly.
func onBackends(t *testing.T, fn func(t *testing.T, be netapi.Backend)) {
	t.Run("simnet", func(t *testing.T) {
		w := sim.NewWorld(1)
		n := netem.NewNetwork(w)
		host := n.Host(netip.MustParseAddr("10.9.0.1"))
		be := simnet.New(host, rand.New(rand.NewSource(1)))
		w.Go(func() { fn(t, be) })
		w.Run()
	})
	t.Run("livenet", func(t *testing.T) {
		fn(t, livenet.New(1))
	})
}

func TestTimerCancelBeforeFire(t *testing.T) {
	onBackends(t, func(t *testing.T, be netapi.Backend) {
		mu := be.NewLock()
		fired := false
		tm := be.AfterFunc(50*time.Millisecond, func() {
			mu.Lock()
			fired = true
			mu.Unlock()
		})
		if !tm.Stop() {
			t.Error("Stop before fire = false, want true")
		}
		be.Sleep(80 * time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		if fired {
			t.Error("stopped timer fired")
		}
	})
}

func TestTimerStopAfterFire(t *testing.T) {
	onBackends(t, func(t *testing.T, be netapi.Backend) {
		done := be.NewEvent("conformance-fire")
		tm := be.AfterFunc(time.Millisecond, func() { done.Complete(true) })
		if !done.Wait() {
			t.Fatal("timer event failed")
		}
		if tm.Stop() {
			t.Error("Stop after fire = true, want false")
		}
	})
}

func TestTimerFireOrder(t *testing.T) {
	onBackends(t, func(t *testing.T, be netapi.Backend) {
		mu := be.NewLock()
		var order []int
		done := be.NewEvent("conformance-order")
		for i, d := range []time.Duration{30, 10, 20} {
			i, d := i, d
			be.AfterFunc(d*time.Millisecond, func() {
				mu.Lock()
				order = append(order, i)
				n := len(order)
				mu.Unlock()
				if n == 3 {
					done.Complete(true)
				}
			})
		}
		done.Wait()
		mu.Lock()
		defer mu.Unlock()
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
			t.Errorf("fire order = %v, want [1 2 0]", order)
		}
	})
}

func TestEventCompleteValue(t *testing.T) {
	onBackends(t, func(t *testing.T, be netapi.Backend) {
		okEv := be.NewEvent("conformance-ok")
		be.Go(func() { okEv.Complete(true) })
		if !okEv.Wait() {
			t.Error("completed-ok event: Wait = false")
		}
		failEv := be.NewEvent("conformance-fail")
		be.Go(func() { failEv.Complete(false) })
		if failEv.Wait() {
			t.Error("failed event: Wait = true")
		}
	})
}

func TestEventDeadlineExceeded(t *testing.T) {
	onBackends(t, func(t *testing.T, be netapi.Backend) {
		ev := be.NewEvent("conformance-deadline")
		start := be.Now()
		if ev.WaitTimeout(30 * time.Millisecond) {
			t.Error("WaitTimeout on pending event = true")
		}
		if el := be.Now() - start; el < 30*time.Millisecond {
			t.Errorf("deadline returned after %v, want >= 30ms", el)
		}
		// A late completion is still observable by later waiters.
		ev.Complete(true)
		if !ev.WaitTimeout(30 * time.Millisecond) {
			t.Error("completed event: WaitTimeout = false")
		}
	})
}

func TestEventCompleteBeforeWait(t *testing.T) {
	onBackends(t, func(t *testing.T, be netapi.Backend) {
		ev := be.NewEvent("conformance-prewait")
		ev.Complete(true)
		if !ev.Wait() {
			t.Error("pre-completed event: Wait = false")
		}
	})
}

func TestGroupWait(t *testing.T) {
	onBackends(t, func(t *testing.T, be netapi.Backend) {
		mu := be.NewLock()
		n := 0
		wg := be.NewGroup()
		wg.Add(3)
		for i := 0; i < 3; i++ {
			be.Go(func() {
				be.Sleep(time.Millisecond)
				mu.Lock()
				n++
				mu.Unlock()
				wg.Done()
			})
		}
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		if n != 3 {
			t.Errorf("after Wait, %d of 3 tasks recorded", n)
		}
	})
}

func TestFutureResolveAndFail(t *testing.T) {
	onBackends(t, func(t *testing.T, be netapi.Backend) {
		f := netapi.NewFuture[int](be, "conformance-future")
		be.Go(func() { f.Resolve(42) })
		if v, ok := f.Wait(); !ok || v != 42 {
			t.Errorf("resolved future = (%v, %v), want (42, true)", v, ok)
		}
		g := netapi.NewFuture[int](be, "conformance-future-fail")
		be.Go(func() { g.Fail() })
		if _, ok := g.Wait(); ok {
			t.Error("failed future: ok = true")
		}
		h := netapi.NewFuture[int](be, "conformance-future-timeout")
		if _, ok := h.WaitTimeout(20 * time.Millisecond); ok {
			t.Error("pending future: WaitTimeout ok = true")
		}
	})
}

func TestMonotonicClock(t *testing.T) {
	onBackends(t, func(t *testing.T, be netapi.Backend) {
		a := be.Now()
		be.Sleep(10 * time.Millisecond)
		if b := be.Now(); b-a < 10*time.Millisecond {
			t.Errorf("Sleep(10ms) advanced clock by %v", b-a)
		}
	})
}
