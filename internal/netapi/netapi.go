// Package netapi is the backend seam between protocol clients and the
// runtime they execute on. It captures everything the DoX transports,
// the HTTP layers and the stub proxy used to take directly from the
// simulation kernel — datagram and stream sockets, timers, one-shot
// completion events, clocks and seeded randomness — as a set of narrow
// interfaces, so the identical client code can run on two backends:
//
//   - netapi/simnet adapts the deterministic virtual-time stack
//     (internal/sim + internal/netem). It is a pure pass-through: every
//     kernel call a client makes through the seam is the same call, in
//     the same order, it made before the seam existed, which is what
//     keeps the committed experiment reports byte-identical.
//   - netapi/livenet binds the same interfaces to real sockets
//     (net UDP/TCP, crypto/tls) and the wall clock, turning the
//     reproduction's clients into a measurement tool for Do53 and DoT
//     against live resolvers.
//
// The seam is deliberately minimal: it is the intersection of what the
// protocol packages need, not a general networking API. Capabilities
// only one backend can provide (QUIC dial/listen, which exist only on
// the sim stack; HTTP round trips, which livenet serves through
// net/http) are structural assertions against the concrete backend, not
// part of Backend. See DESIGN.md §10 for the surface, the determinism
// boundary, and what livenet supports.
package netapi

import (
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/bytepool"
	"repro/internal/tlsmini"
)

// Runtime is the scheduling and time surface of a backend: the subset
// of the simulation kernel protocol code is allowed to see. On simnet
// every method is the corresponding sim.World call; on livenet it is
// the Go runtime and the wall clock.
type Runtime interface {
	// Now returns the backend's monotonic clock (virtual time on simnet,
	// time since backend creation on livenet).
	Now() time.Duration
	// Sleep blocks the calling task for d.
	Sleep(d time.Duration)
	// Go spawns fn as a concurrent task.
	Go(fn func())
	// GoCall spawns fn(arg) as a concurrent task without allocating a
	// closure; hot spawn paths pair it with a free list of argument
	// boxes.
	GoCall(fn func(any), arg any)
	// AfterFunc runs fn as a new task after d.
	AfterFunc(d time.Duration, fn func()) Timer
	// Rand returns the backend's seeded random stream.
	Rand() *rand.Rand
	// NewEvent creates a one-shot completion event. name appears in
	// deadlock diagnostics on the sim backend.
	NewEvent(name string) Event
	// NewGroup creates a task completion group.
	NewGroup() Group
	// NewLock guards state shared between a client and its reader task
	// (pending-query maps). Sim tasks are cooperatively scheduled and
	// never preempted inside a critical section, so the sim lock is a
	// no-op; livenet returns a real mutex.
	NewLock() sync.Locker
}

// Timer is a pending AfterFunc. Stop reports whether the call was
// prevented from firing.
type Timer interface {
	Stop() bool
}

// Event is a one-shot completion: exactly one Complete call, any number
// of waiters. Wait reports the ok value passed to Complete; ok=false
// means the operation the event tracks was abandoned. WaitTimeout
// additionally returns false when the deadline passes first. On the sim
// backend waiting parks the task on the kernel; on livenet it blocks
// the goroutine.
type Event interface {
	Complete(ok bool)
	Wait() bool
	WaitTimeout(d time.Duration) bool
}

// Group tracks a set of concurrent tasks (the WaitGroup shape).
type Group interface {
	Add(n int)
	Done()
	Wait()
}

// Packet is one received datagram: the peer it came from and its
// payload. Payloads received from a PacketConn are leased from the
// conn's pool; the receiver must Put them back once decoded.
type Packet struct {
	Src     netip.AddrPort
	Payload []byte
	// Reject marks an active network rejection (ICMP-style unreachable)
	// instead of a payload: Payload is nil, and the receiver should fail
	// in-flight operations toward Src immediately rather than waiting
	// for a timeout. Only backends with a middlebox model (simnet over
	// netem policies) ever set it.
	Reject bool
}

// PacketConn is an unconnected datagram socket.
type PacketConn interface {
	LocalAddr() netip.AddrPort
	// Send transmits payload to dst. The conn takes ownership of
	// payload (pool lease discipline: a pooled buffer handed to Send
	// must not be touched again).
	Send(dst netip.AddrPort, payload []byte)
	// Recv blocks for the next datagram; ok is false once the conn is
	// closed.
	Recv() (Packet, bool)
	// RecvTimeout is Recv with a deadline; ok is false on timeout or
	// close.
	RecvTimeout(d time.Duration) (Packet, bool)
	Close()
	// Pool is the buffer pool receive payloads are leased from.
	Pool() *bytepool.Pool
	// Snapshot returns cumulative wire bytes sent and received.
	Snapshot() (tx, rx int)
}

// StreamConn is a connected, reliable byte stream (TCP or its sim
// equivalent). Read returns the next chunk; ok is false at EOF. The
// interface is a superset of tlsmini.Stream, so a StreamConn can carry
// a sim TLS session directly.
type StreamConn interface {
	Write(p []byte) error
	Read() ([]byte, bool)
	Close()
	RemoteAddr() netip.AddrPort
	// Stats returns cumulative wire bytes sent and received, including
	// transport framing.
	Stats() (tx, rx int)
}

// StreamListener accepts inbound stream connections.
type StreamListener interface {
	Accept() (StreamConn, bool)
	Addr() netip.AddrPort
	Close()
}

// TLSConfig parameterizes a client TLS session over the seam. The
// backend maps it onto its TLS implementation (tlsmini on simnet,
// crypto/tls on livenet).
type TLSConfig struct {
	ServerName string
	ALPN       []string
	// MaxVersion caps the offered TLS version (zero: the backend's
	// default, TLS 1.3).
	MaxVersion tlsmini.Version
	// SessionCache enables session resumption across connections.
	SessionCache *tlsmini.SessionCache
	// InsecureSkipVerify disables certificate verification on backends
	// that verify (livenet); the sim backend's certificates are modeled
	// and never verified.
	InsecureSkipVerify bool
}

// TLSConn is an established client TLS session: the stream surface plus
// the negotiated-session facts the measurements record. Stats reports
// the underlying transport's wire bytes (so handshake byte accounting
// matches the pre-seam clients).
type TLSConn interface {
	StreamConn
	TLSVersion() tlsmini.Version
	Resumed() bool
}

// Backend is a complete client/server networking substrate: scheduling
// plus socket construction. overhead is the per-datagram wire framing
// (UDP+IP header bytes) counted by Snapshot.
type Backend interface {
	Runtime
	DialUDP(overhead int) (PacketConn, error)
	ListenUDP(port uint16, overhead int) (PacketConn, error)
	DialStream(raddr netip.AddrPort) (StreamConn, error)
	ListenStream(port uint16) (StreamListener, error)
	// DialTLS dials a stream to raddr and completes a client TLS
	// handshake over it.
	DialTLS(raddr netip.AddrPort, cfg TLSConfig) (TLSConn, error)
	// AccessDelay is the one-way last-mile latency of the backend's
	// access link (zero without a modeled link).
	AccessDelay() time.Duration
	// OccupyDown reserves the downlink for a bulk transfer of size
	// bytes and returns the time until it completes. Backends without a
	// shared downlink model serialize at DefaultDownloadRate.
	OccupyDown(size int) time.Duration
}

// DefaultDownloadRate is the analytic bulk-download rate (bytes/second)
// OccupyDown assumes on backends without a shared downlink model:
// 50 Mbit/s, matching netem's historical assumption.
const DefaultDownloadRate = 6.25e6
