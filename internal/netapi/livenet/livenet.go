// Package livenet binds the netapi backend seam to the operating
// system: real UDP and TCP sockets via package net, TLS via crypto/tls,
// goroutines for tasks and the wall clock for time. The same dox
// clients that run deterministic campaigns on simnet resolve against
// live Do53 and DoT servers through this backend, and DoH rides a
// net/http round-trip capability; DoQ and DoH3 remain sim-only because
// the QUIC stack exists only on the sim side.
//
// Determinism boundary: livenet is intentionally outside the
// reproducibility envelope. Its clock is wall time, its scheduling is
// the Go runtime's, and nothing it measures lands in committed
// experiment reports. The simlint nowallclock rule exempts this
// package for exactly that reason.
//
// Pool discipline: bytepool.Pool is unlocked (a sim single-task
// assumption), so each PacketConn owns a private pool that only the
// conn's receiving task touches — Recv leases from it and the receive
// loop Puts leases back on the same goroutine. Send never recycles the
// payload; it is dropped to the garbage collector.
package livenet

import (
	"bytes"
	"crypto/tls"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bytepool"
	"repro/internal/netapi"
	"repro/internal/tlsmini"
)

// Backend is a live-network netapi backend. The zero value is not
// usable; construct with New.
type Backend struct {
	epoch time.Time
	rng   *rand.Rand
	// tlsSessions resumes TLS sessions across DialTLS calls, mirroring
	// the role tlsmini.SessionCache plays on the sim backend. It is only
	// consulted when the dial's TLSConfig carries a session cache.
	tlsSessions tls.ClientSessionCache
}

// New returns a live backend seeded with seed. The monotonic clock
// starts at zero at the call.
func New(seed int64) *Backend {
	return &Backend{
		epoch:       time.Now(),
		rng:         rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)}),
		tlsSessions: tls.NewLRUClientSessionCache(64),
	}
}

// lockedSource makes the backend's shared rand stream safe for the
// many goroutines a live run schedules (rand.New sources are not).
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// --- Runtime ---

func (b *Backend) Now() time.Duration           { return time.Since(b.epoch) }
func (b *Backend) Sleep(d time.Duration)        { time.Sleep(d) }
func (b *Backend) Go(fn func())                 { go fn() }
func (b *Backend) GoCall(fn func(any), arg any) { go fn(arg) }
func (b *Backend) Rand() *rand.Rand             { return b.rng }

func (b *Backend) AfterFunc(d time.Duration, fn func()) netapi.Timer {
	return time.AfterFunc(d, fn)
}

func (b *Backend) NewEvent(name string) netapi.Event {
	return &chanEvent{ch: make(chan struct{})}
}

func (b *Backend) NewGroup() netapi.Group { return &sync.WaitGroup{} }

func (b *Backend) NewLock() sync.Locker { return &sync.Mutex{} }

// chanEvent is a one-shot completion on a closed channel. The ok write
// happens before the close, so waiters observe it (channel close is a
// release/acquire pair).
type chanEvent struct {
	ch   chan struct{}
	once sync.Once
	ok   bool
}

func (e *chanEvent) Complete(ok bool) {
	e.once.Do(func() {
		e.ok = ok
		close(e.ch)
	})
}

func (e *chanEvent) Wait() bool {
	<-e.ch
	return e.ok
}

func (e *chanEvent) WaitTimeout(d time.Duration) bool {
	select {
	case <-e.ch:
		return e.ok
	case <-time.After(d):
		return false
	}
}

// --- PacketConn ---

type packetConn struct {
	conn *net.UDPConn
	// overhead is the modeled per-datagram framing (UDP+IP headers), kept
	// so Snapshot matches the sim backend's byte accounting convention.
	overhead int
	pool     *bytepool.Pool
	tx, rx   atomic.Int64
	closed   atomic.Bool
}

func (b *Backend) DialUDP(overhead int) (netapi.PacketConn, error) {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4zero})
	if err != nil {
		return nil, err
	}
	return &packetConn{conn: c, overhead: overhead, pool: &bytepool.Pool{}}, nil
}

func (b *Backend) ListenUDP(port uint16, overhead int) (netapi.PacketConn, error) {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4zero, Port: int(port)})
	if err != nil {
		return nil, err
	}
	return &packetConn{conn: c, overhead: overhead, pool: &bytepool.Pool{}}, nil
}

func (c *packetConn) LocalAddr() netip.AddrPort {
	return c.conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

func (c *packetConn) Pool() *bytepool.Pool { return c.pool }

func (c *packetConn) Send(dst netip.AddrPort, payload []byte) {
	if n, err := c.conn.WriteToUDPAddrPort(payload, dst); err == nil {
		c.tx.Add(int64(n + c.overhead))
	}
	// payload is owned by the conn now; it goes to the GC, not the pool,
	// because the pool belongs to the receive goroutine.
}

func (c *packetConn) Recv() (netapi.Packet, bool) {
	buf := c.pool.Get(2048)
	buf = buf[:cap(buf)]
	n, src, err := c.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		c.pool.Put(buf[:0])
		return netapi.Packet{}, false
	}
	c.rx.Add(int64(n + c.overhead))
	return netapi.Packet{Src: src, Payload: buf[:n]}, true
}

func (c *packetConn) RecvTimeout(d time.Duration) (netapi.Packet, bool) {
	c.conn.SetReadDeadline(time.Now().Add(d))
	p, ok := c.Recv()
	c.conn.SetReadDeadline(time.Time{})
	return p, ok
}

func (c *packetConn) Close() {
	if c.closed.CompareAndSwap(false, true) {
		c.conn.Close()
	}
}

func (c *packetConn) Snapshot() (tx, rx int) {
	return int(c.tx.Load()), int(c.rx.Load())
}

// --- StreamConn ---

// streamConn adapts a net.Conn to the chunked read surface, counting
// wire bytes for Stats. For TLS sessions the counters live on the
// underlying TCP conn so Stats includes handshake and record framing,
// matching the sim clients' accounting.
type streamConn struct {
	conn   net.Conn
	remote netip.AddrPort
	tx, rx *atomic.Int64
	buf    []byte
}

func newStreamConn(conn net.Conn, remote netip.AddrPort) *streamConn {
	return &streamConn{
		conn: conn, remote: remote,
		tx: new(atomic.Int64), rx: new(atomic.Int64),
		buf: make([]byte, 32*1024),
	}
}

func (c *streamConn) Write(p []byte) error {
	n, err := c.conn.Write(p)
	c.tx.Add(int64(n))
	return err
}

func (c *streamConn) Read() ([]byte, bool) {
	n, err := c.conn.Read(c.buf)
	if n > 0 {
		c.rx.Add(int64(n))
		return append([]byte(nil), c.buf[:n]...), true
	}
	_ = err
	return nil, false
}

func (c *streamConn) Close()                     { c.conn.Close() }
func (c *streamConn) RemoteAddr() netip.AddrPort { return c.remote }
func (c *streamConn) Stats() (tx, rx int) {
	return int(c.tx.Load()), int(c.rx.Load())
}

func (b *Backend) DialStream(raddr netip.AddrPort) (netapi.StreamConn, error) {
	conn, err := net.DialTimeout("tcp", raddr.String(), 10*time.Second)
	if err != nil {
		return nil, err
	}
	return newStreamConn(conn, raddr), nil
}

type streamListener struct {
	l *net.TCPListener
}

func (b *Backend) ListenStream(port uint16) (netapi.StreamListener, error) {
	l, err := net.ListenTCP("tcp", &net.TCPAddr{IP: net.IPv4zero, Port: int(port)})
	if err != nil {
		return nil, err
	}
	return &streamListener{l: l}, nil
}

func (l *streamListener) Accept() (netapi.StreamConn, bool) {
	conn, err := l.l.AcceptTCP()
	if err != nil {
		return nil, false
	}
	remote, _ := netip.ParseAddrPort(conn.RemoteAddr().String())
	return newStreamConn(conn, remote), true
}

func (l *streamListener) Addr() netip.AddrPort {
	return l.l.Addr().(*net.TCPAddr).AddrPort()
}

func (l *streamListener) Close() { l.l.Close() }

// --- TLS ---

// countingConn counts raw transport bytes under a crypto/tls session,
// so TLSConn.Stats covers handshake flights and record overhead.
type countingConn struct {
	net.Conn
	tx, rx *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rx.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.tx.Add(int64(n))
	return n, err
}

type tlsConn struct {
	*streamConn
	tls *tls.Conn
}

func (c *tlsConn) Write(p []byte) error {
	_, err := c.tls.Write(p)
	return err
}

func (c *tlsConn) Read() ([]byte, bool) {
	n, err := c.tls.Read(c.buf)
	if n > 0 {
		return append([]byte(nil), c.buf[:n]...), true
	}
	_ = err
	return nil, false
}

func (c *tlsConn) Close() { c.tls.Close() }

// TLSVersion reports the negotiated version as a tlsmini.Version; the
// wire constants are identical (0x0303, 0x0304), so the cast is exact.
func (c *tlsConn) TLSVersion() tlsmini.Version {
	return tlsmini.Version(c.tls.ConnectionState().Version)
}

func (c *tlsConn) Resumed() bool { return c.tls.ConnectionState().DidResume }

func (b *Backend) DialTLS(raddr netip.AddrPort, cfg netapi.TLSConfig) (netapi.TLSConn, error) {
	raw, err := net.DialTimeout("tcp", raddr.String(), 10*time.Second)
	if err != nil {
		return nil, err
	}
	sc := newStreamConn(raw, raddr)
	counting := &countingConn{Conn: raw, tx: sc.tx, rx: sc.rx}
	tcfg := &tls.Config{
		ServerName:         cfg.ServerName,
		NextProtos:         cfg.ALPN,
		InsecureSkipVerify: cfg.InsecureSkipVerify,
	}
	if cfg.MaxVersion != 0 {
		tcfg.MaxVersion = uint16(cfg.MaxVersion)
	}
	if cfg.SessionCache != nil {
		// The seam's cache type is tlsmini's; crypto/tls cannot share its
		// entries, so a non-nil cache means "resumption wanted" and the
		// backend supplies its own live session store.
		tcfg.ClientSessionCache = b.tlsSessions
	}
	conn := tls.Client(counting, tcfg)
	if err := conn.Handshake(); err != nil {
		raw.Close()
		return nil, err
	}
	return &tlsConn{streamConn: sc, tls: conn}, nil
}

// --- Link model ---

// AccessDelay is zero: a live vantage's access link is part of the path
// being measured, not a modeled add-on.
func (b *Backend) AccessDelay() time.Duration { return 0 }

// OccupyDown serializes analytic downloads at the default rate; live
// runs have no shared emulated downlink to occupy.
func (b *Backend) OccupyDown(size int) time.Duration {
	return time.Duration(float64(size) / netapi.DefaultDownloadRate * float64(time.Second))
}

// --- DoH capability ---

// RoundTripHTTP performs one DoH POST over net/http, the structural
// capability internal/dox asserts for its live DoH path. The request
// dials raddr directly while presenting serverName for SNI and
// verification, mirroring how the measurement tool targets a resolver
// by address.
func (b *Backend) RoundTripHTTP(serverName string, raddr netip.AddrPort, path string, insecure bool, body []byte) (int, []byte, error) {
	transport := &http.Transport{
		DialContext: (&net.Dialer{Timeout: 10 * time.Second}).DialContext,
		TLSClientConfig: &tls.Config{
			ServerName:         serverName,
			InsecureSkipVerify: insecure,
		},
		ForceAttemptHTTP2: true,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	defer transport.CloseIdleConnections()
	url := fmt.Sprintf("https://%s%s", raddr, path)
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/dns-message")
	req.Header.Set("Accept", "application/dns-message")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, respBody, nil
}
