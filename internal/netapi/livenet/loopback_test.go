// Hermetic live-backend integration test: an in-process DNS responder
// on real loopback sockets (UDP for Do53, TLS-over-TCP for DoT, both
// on 127.0.0.1 ephemeral ports) answers the same dox clients that run
// in the simulation, and the decoded answers must match what a simnet
// resolver returns for the identical zone. No packet leaves the host
// and no external resolver is contacted.
package livenet_test

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	mrand "math/rand"
	"net"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/netapi/livenet"
	"repro/internal/netapi/simnet"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

// zoneAnswer is the one record both responders serve.
var zoneAnswer = netip.MustParseAddr("93.184.216.34")

func answerQuery(wire []byte) ([]byte, bool) {
	q, err := dnsmsg.Decode(wire)
	if err != nil {
		return nil, false
	}
	r := dnsmsg.Reply(*q)
	r.AnswerA(zoneAnswer, 300)
	return r.Encode(), true
}

// startUDPResponder serves Do53 on an ephemeral loopback port.
func startUDPResponder(t *testing.T) netip.AddrPort {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 4096)
		for {
			n, src, err := conn.ReadFromUDPAddrPort(buf)
			if err != nil {
				return
			}
			if resp, ok := answerQuery(buf[:n]); ok {
				conn.WriteToUDPAddrPort(resp, src)
			}
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// selfSignedCert mints an in-memory certificate for the responder.
func selfSignedCert(t *testing.T, name string) tls.Certificate {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: name},
		DNSNames:     []string{name},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
}

// startDoTResponder serves RFC 7858 DoT (2-byte framed DNS over TLS)
// on an ephemeral loopback port.
func startDoTResponder(t *testing.T, name string) netip.AddrPort {
	t.Helper()
	l, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{
		Certificates: []tls.Certificate{selfSignedCert(t, name)},
		NextProtos:   []string{"dot"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go serveDoTConn(conn)
		}
	}()
	return l.Addr().(*net.TCPAddr).AddrPort()
}

func serveDoTConn(conn net.Conn) {
	defer conn.Close()
	hdr := make([]byte, 2)
	for {
		if _, err := readFull(conn, hdr); err != nil {
			return
		}
		wire := make([]byte, int(hdr[0])<<8|int(hdr[1]))
		if _, err := readFull(conn, wire); err != nil {
			return
		}
		resp, ok := answerQuery(wire)
		if !ok {
			return
		}
		framed := make([]byte, 2, 2+len(resp))
		framed[0], framed[1] = byte(len(resp)>>8), byte(len(resp))
		if _, err := conn.Write(append(framed, resp...)); err != nil {
			return
		}
	}
}

func readFull(conn net.Conn, p []byte) (int, error) {
	read := 0
	for read < len(p) {
		n, err := conn.Read(p[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

// simAnswer resolves name over proto on a simnet universe serving the
// same zone, returning the decoded answer address.
func simAnswer(t *testing.T, proto dox.Protocol, name string) netip.Addr {
	t.Helper()
	w := sim.NewWorld(7)
	n := netem.NewNetwork(w)
	ch := n.Host(netip.MustParseAddr("10.0.0.1"))
	sh := n.Host(netip.MustParseAddr("10.0.0.2"))
	n.SetSymmetricPath(ch.Addr(), sh.Addr(), netem.PathParams{Delay: time.Millisecond})
	rng := mrand.New(mrand.NewSource(7))
	srv := dox.NewServer(simnet.New(sh, rng), dox.ServerConfig{
		Handler: func(q *dnsmsg.Message, _ dox.Protocol, _ netip.AddrPort) *dnsmsg.Message {
			r := dnsmsg.Reply(*q)
			r.AnswerA(zoneAnswer, 300)
			return &r
		},
		Identity:    tlsmini.GenerateIdentity(rng, "resolver.example", 1000),
		TicketStore: tlsmini.NewTicketStore(),
	})
	if err := srv.ServeAll(); err != nil {
		t.Fatal(err)
	}
	var got netip.Addr
	w.Go(func() {
		c, err := dox.Connect(proto, dox.Options{
			Backend:    simnet.New(ch, rng),
			Resolver:   sh.Addr(),
			ServerName: "resolver.example",
		})
		if err != nil {
			t.Errorf("sim connect: %v", err)
			return
		}
		defer c.Close()
		q := dnsmsg.NewQuery(1, name, dnsmsg.TypeA)
		resp, err := c.Query(&q)
		if err != nil {
			t.Errorf("sim query: %v", err)
			return
		}
		got, _ = resp.FirstA()
	})
	w.Run()
	return got
}

// liveAnswer resolves name over proto through the livenet backend
// against the loopback responder at raddr.
func liveAnswer(t *testing.T, proto dox.Protocol, raddr netip.AddrPort, serverName, name string) netip.Addr {
	t.Helper()
	opts := dox.Options{
		Backend:     livenet.New(7),
		Resolver:    raddr.Addr(),
		ServerName:  serverName,
		UDPPort:     raddr.Port(),
		DoTPort:     raddr.Port(),
		InsecureTLS: true, // the responder's certificate is self-signed
		UDPTimeout:  2 * time.Second,
	}
	c, err := dox.Connect(proto, opts)
	if err != nil {
		t.Fatalf("live connect: %v", err)
	}
	defer c.Close()
	q := dnsmsg.NewQuery(1, name, dnsmsg.TypeA)
	resp, err := c.Query(&q)
	if err != nil {
		t.Fatalf("live query: %v", err)
	}
	got, ok := resp.FirstA()
	if !ok {
		t.Fatal("live response has no A record")
	}
	return got
}

func TestLoopbackDo53MatchesSim(t *testing.T) {
	raddr := startUDPResponder(t)
	live := liveAnswer(t, dox.DoUDP, raddr, "", "loopback.example")
	sim := simAnswer(t, dox.DoUDP, "loopback.example")
	if live != sim {
		t.Errorf("Do53 answers differ: live=%v sim=%v", live, sim)
	}
}

func TestLoopbackDoTMatchesSim(t *testing.T) {
	raddr := startDoTResponder(t, "resolver.example")
	live := liveAnswer(t, dox.DoT, raddr, "resolver.example", "loopback.example")
	sim := simAnswer(t, dox.DoT, "loopback.example")
	if live != sim {
		t.Errorf("DoT answers differ: live=%v sim=%v", live, sim)
	}
	m := liveMetricsOverDoT(t, raddr)
	if m.TLSVersion != tlsmini.VersionTLS13 {
		t.Errorf("live DoT negotiated %#x, want TLS 1.3", uint16(m.TLSVersion))
	}
	if m.HandshakeTx == 0 || m.HandshakeRx == 0 {
		t.Errorf("live DoT handshake bytes not counted: tx=%d rx=%d", m.HandshakeTx, m.HandshakeRx)
	}
}

// liveMetricsOverDoT checks the live backend fills the same metric
// fields the sim clients populate.
func liveMetricsOverDoT(t *testing.T, raddr netip.AddrPort) *dox.Metrics {
	t.Helper()
	c, err := dox.Connect(dox.DoT, dox.Options{
		Backend:     livenet.New(11),
		Resolver:    raddr.Addr(),
		DoTPort:     raddr.Port(),
		ServerName:  "resolver.example",
		InsecureTLS: true,
	})
	if err != nil {
		t.Fatalf("live connect: %v", err)
	}
	defer c.Close()
	q := dnsmsg.NewQuery(2, "metrics.example", dnsmsg.TypeA)
	if _, err := c.Query(&q); err != nil {
		t.Fatalf("live query: %v", err)
	}
	return c.Metrics()
}
