package netapi

import "time"

// Future is a one-shot value handed from one task to another, built on
// the backend's Event primitive. It mirrors sim.Future's contract: on
// the sim backend Resolve/Wait compile down to exactly the same kernel
// operations (one queue push waking one waiter), so replacing
// sim.Future with netapi.Future changes no scheduling order.
type Future[T any] struct {
	ev  Event
	val T
}

// NewFuture creates an unresolved future. name appears in deadlock
// diagnostics on the sim backend.
func NewFuture[T any](rt Runtime, name string) *Future[T] {
	return &Future[T]{ev: rt.NewEvent(name)}
}

// Resolve sets the value and wakes waiters. The value is written before
// the completion is published, so waiters on any backend observe it.
func (f *Future[T]) Resolve(v T) {
	f.val = v
	f.ev.Complete(true)
}

// Fail abandons the future, unblocking waiters with ok=false.
func (f *Future[T]) Fail() { f.ev.Complete(false) }

// Wait blocks until the future is resolved or failed.
func (f *Future[T]) Wait() (T, bool) {
	if !f.ev.Wait() {
		var zero T
		return zero, false
	}
	return f.val, true
}

// WaitTimeout is Wait with a deadline; ok is false on timeout or
// failure.
func (f *Future[T]) WaitTimeout(d time.Duration) (T, bool) {
	if !f.ev.WaitTimeout(d) {
		var zero T
		return zero, false
	}
	return f.val, true
}
