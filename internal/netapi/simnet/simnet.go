// Package simnet adapts the deterministic virtual-time stack
// (internal/sim, internal/netem, internal/tcpsim, internal/tlsmini,
// internal/quic) to the netapi backend seam.
//
// The adapter is a strict pass-through: every seam call maps onto
// exactly the kernel or emulator call the protocol clients made before
// the seam existed — same socket dials in the same order (so ephemeral
// port allocation is unchanged), same queue names, same wake sequences,
// same random draws. That invariant is what proves the backend refactor
// is behavior-preserving: the committed experiment reports are
// byte-identical against a pre-seam tree.
//
// Beyond the Backend interface, simnet provides the sim-only
// capabilities (QUIC dial and listen) that internal/dox discovers by
// structural assertion; livenet has no equivalents, which is why DoQ,
// DoH3 — and the sim TLS stack behind DoH — are sim-only transports.
package simnet

import (
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/bytepool"
	"repro/internal/netapi"
	"repro/internal/netem"
	"repro/internal/quic"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/tlsmini"
)

// Backend binds the netapi seam to one netem host. The random stream is
// supplied by the caller (campaigns derive it from the campaign seed),
// not taken from the World, so existing draw sequences are preserved.
type Backend struct {
	host *netem.Host
	w    *sim.World
	rng  *rand.Rand
}

// New returns a backend for host drawing randomness from rng.
func New(host *netem.Host, rng *rand.Rand) *Backend {
	return &Backend{host: host, w: host.World(), rng: rng}
}

// Host exposes the underlying netem host for sim-side test plumbing.
func (b *Backend) Host() *netem.Host { return b.host }

// NewRuntime adapts a bare World — no netem host attached — to
// netapi.Runtime, for tests that drive protocol engines over in-memory
// pipes. Socket methods on the result panic; only the Runtime surface
// is usable.
func NewRuntime(w *sim.World, rng *rand.Rand) *Backend {
	return &Backend{w: w, rng: rng}
}

// --- Runtime ---

func (b *Backend) Now() time.Duration           { return b.w.Now() }
func (b *Backend) Sleep(d time.Duration)        { b.w.Sleep(d) }
func (b *Backend) Go(fn func())                 { b.w.Go(fn) }
func (b *Backend) GoCall(fn func(any), arg any) { b.w.GoCall(fn, arg) }
func (b *Backend) Rand() *rand.Rand             { return b.rng }

func (b *Backend) AfterFunc(d time.Duration, fn func()) netapi.Timer {
	return b.w.AfterFunc(d, fn)
}

// NewEvent builds the event on a sim.Future[bool] with the caller's
// name, so the underlying queue label — and with it every deadlock
// diagnostic and wake sequence — matches the pre-seam sim.Future users.
func (b *Backend) NewEvent(name string) netapi.Event {
	return (*simEvent)(sim.NewFuture[bool](b.w, name))
}

func (b *Backend) NewGroup() netapi.Group {
	return (*simGroup)(sim.NewWaitGroup(b.w))
}

// NewLock is a no-op: sim tasks are cooperatively scheduled, so a
// critical section that never parks cannot be preempted.
func (b *Backend) NewLock() sync.Locker { return nopLock{} }

type nopLock struct{}

func (nopLock) Lock()   {}
func (nopLock) Unlock() {}

// simEvent is a zero-overhead view of a sim.Future[bool]: the pointer
// conversion allocates nothing, and Complete(true) performs exactly the
// Push+Close a direct sim.Future Resolve performed.
type simEvent sim.Future[bool]

func (e *simEvent) Complete(ok bool) {
	f := (*sim.Future[bool])(e)
	if ok {
		f.Resolve(true)
	} else {
		f.Fail()
	}
}

func (e *simEvent) Wait() bool {
	v, ok := (*sim.Future[bool])(e).Wait()
	return ok && v
}

func (e *simEvent) WaitTimeout(d time.Duration) bool {
	v, ok := (*sim.Future[bool])(e).WaitTimeout(d)
	return ok && v
}

// simGroup is a zero-overhead view of a sim.WaitGroup.
type simGroup sim.WaitGroup

func (g *simGroup) Add(n int) { (*sim.WaitGroup)(g).Add(n) }
func (g *simGroup) Done()     { (*sim.WaitGroup)(g).Done() }
func (g *simGroup) Wait()     { (*sim.WaitGroup)(g).Wait() }

// --- Sockets ---

// packetConn is a zero-overhead view of a netem.Socket.
type packetConn netem.Socket

func (b *Backend) DialUDP(overhead int) (netapi.PacketConn, error) {
	return (*packetConn)(b.host.Dial(netem.ProtoUDP, overhead)), nil
}

func (b *Backend) ListenUDP(port uint16, overhead int) (netapi.PacketConn, error) {
	s, err := b.host.Listen(netem.ProtoUDP, port, overhead)
	if err != nil {
		return nil, err
	}
	return (*packetConn)(s), nil
}

func (c *packetConn) sock() *netem.Socket       { return (*netem.Socket)(c) }
func (c *packetConn) LocalAddr() netip.AddrPort { return c.sock().LocalAddr() }
func (c *packetConn) Close()                    { c.sock().Close() }
func (c *packetConn) Pool() *bytepool.Pool      { return c.sock().Pool() }

func (c *packetConn) Send(dst netip.AddrPort, payload []byte) {
	c.sock().Send(dst, payload)
}

func (c *packetConn) Recv() (netapi.Packet, bool) {
	d, ok := c.sock().Recv()
	return netapi.Packet{Src: d.Src, Payload: d.Payload, Reject: d.Reject}, ok
}

func (c *packetConn) RecvTimeout(d time.Duration) (netapi.Packet, bool) {
	dg, ok := c.sock().RecvTimeout(d)
	return netapi.Packet{Src: dg.Src, Payload: dg.Payload, Reject: dg.Reject}, ok
}

func (c *packetConn) Snapshot() (tx, rx int) { return c.sock().Snapshot() }

// --- Streams ---

func (b *Backend) DialStream(raddr netip.AddrPort) (netapi.StreamConn, error) {
	return tcpsim.Dial(b.host, raddr)
}

// streamListener is a zero-overhead view of a tcpsim.Listener.
type streamListener tcpsim.Listener

func (b *Backend) ListenStream(port uint16) (netapi.StreamListener, error) {
	l, err := tcpsim.Listen(b.host, port)
	if err != nil {
		return nil, err
	}
	return (*streamListener)(l), nil
}

func (l *streamListener) Accept() (netapi.StreamConn, bool) {
	c, ok := (*tcpsim.Listener)(l).Accept()
	if !ok {
		return nil, false
	}
	return c, true
}

func (l *streamListener) Addr() netip.AddrPort { return (*tcpsim.Listener)(l).Addr() }
func (l *streamListener) Close()               { (*tcpsim.Listener)(l).Close() }

// --- TLS ---

// tlsConn pairs a sim TLS session with its transport for byte
// accounting.
type tlsConn struct {
	*tlsmini.Conn
	tcp *tcpsim.Conn
}

func (c *tlsConn) Stats() (tx, rx int) { return c.tcp.Stats() }

// Abort kills the transport under the TLS session without a close
// exchange, failing in-flight reads immediately (asserted by dox when
// an access-network change strands the 4-tuple).
func (c *tlsConn) Abort()                     { c.tcp.Abort() }
func (c *tlsConn) RemoteAddr() netip.AddrPort { return c.tcp.RemoteAddr() }
func (c *tlsConn) TLSVersion() tlsmini.Version {
	return c.Conn.Engine().NegotiatedVersion()
}
func (c *tlsConn) Resumed() bool { return c.Conn.Engine().UsedResumption() }

// DialTLS dials TCP and completes the sim TLS handshake, mirroring the
// pre-seam client sequence exactly (dial, NewConn, Handshake, close the
// transport on failure).
func (b *Backend) DialTLS(raddr netip.AddrPort, cfg netapi.TLSConfig) (netapi.TLSConn, error) {
	tcp, err := tcpsim.Dial(b.host, raddr)
	if err != nil {
		return nil, err
	}
	conn := tlsmini.NewConn(tcp, tlsmini.Config{
		IsClient:     true,
		ServerName:   cfg.ServerName,
		ALPN:         cfg.ALPN,
		Version:      cfg.MaxVersion,
		SessionCache: cfg.SessionCache,
		Rand:         b.rng,
		Now:          b.w.Now,
	})
	if err := conn.Handshake(); err != nil {
		tcp.Close()
		return nil, err
	}
	return &tlsConn{Conn: conn, tcp: tcp}, nil
}

// --- Link model ---

func (b *Backend) AccessDelay() time.Duration {
	prof, ok := b.host.Network().AccessLink(b.host.Addr())
	if !ok {
		return 0
	}
	return prof.ExtraDelay
}

func (b *Backend) OccupyDown(size int) time.Duration {
	return b.host.Network().OccupyDown(b.host.Addr(), size)
}

// --- Sim-only capabilities (structural, asserted by internal/dox) ---

// DialQUIC dials a QUIC connection; early selects the 0-RTT dial.
func (b *Backend) DialQUIC(raddr netip.AddrPort, cfg quic.Config, early bool) (*quic.Conn, error) {
	if early {
		return quic.DialEarly(b.host, raddr, cfg)
	}
	return quic.Dial(b.host, raddr, cfg)
}

// ListenQUIC starts a QUIC listener on port.
func (b *Backend) ListenQUIC(port uint16, cfg quic.Config) (*quic.Listener, error) {
	return quic.Listen(b.host, port, cfg)
}
