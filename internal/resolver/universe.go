package resolver

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Vantage is one measurement host at a geographic location.
type Vantage struct {
	geo.VantagePoint
	Host *netem.Host
}

// Universe is the full simulated measurement testbed: six vantage points
// and a population of resolvers placed per the paper's Fig. 1, wired
// together with distance-derived path delays.
type Universe struct {
	W         *sim.World
	Net       *netem.Network
	Vantages  []*Vantage
	Resolvers []*Resolver
	Rand      *rand.Rand
}

// UniverseConfig parameterizes testbed construction.
type UniverseConfig struct {
	Seed int64
	// ResolverCounts defaults to the paper's 313-resolver distribution.
	// Tests and benchmarks use scaled-down counts with the same shape.
	ResolverCounts map[geo.Continent]int
	// Loss is the per-path datagram drop rate (default 0.3%), the source
	// of the paper's retransmission-tail observations.
	Loss float64
	// Jitter is the per-path delay jitter bound (default 1ms).
	Jitter time.Duration
	// Population tunes profile synthesis.
	Population PopulationParams
	// MutateProfile lets ablations rewrite each profile before start
	// (e.g. enable 0-RTT everywhere for E11).
	MutateProfile func(*Profile)
}

// ScaledCounts returns the paper's continent distribution scaled to
// roughly n resolvers (at least one per continent).
func ScaledCounts(n int) map[geo.Continent]int {
	out := make(map[geo.Continent]int, len(geo.VerifiedResolverCounts))
	for c, v := range geo.VerifiedResolverCounts {
		s := v * n / 313
		if s < 1 {
			s = 1
		}
		out[c] = s
	}
	return out
}

// NewUniverse builds and starts the testbed.
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	if cfg.Loss == 0 {
		cfg.Loss = 0.003
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = time.Millisecond
	}
	if cfg.Population == (PopulationParams{}) {
		cfg.Population = DefaultPopulation()
	}
	w := sim.NewWorld(cfg.Seed)
	net := netem.NewNetwork(w)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	u := &Universe{W: w, Net: net, Rand: rng}

	for i, vp := range geo.VantagePoints() {
		addr := netip.AddrFrom4([4]byte{10, 1, 0, byte(i + 1)})
		host := net.Host(addr)
		// Loopback for the local DNS proxy.
		net.SetPath(addr, addr, netem.PathParams{Delay: 50 * time.Microsecond})
		u.Vantages = append(u.Vantages, &Vantage{VantagePoint: vp, Host: host})
	}

	places := geo.PlaceResolvers(rng, cfg.ResolverCounts)
	for i, place := range places {
		addr := netip.AddrFrom4([4]byte{203, byte(i/250) + 1, byte(i % 250), 53})
		host := net.Host(addr)
		prof := SynthesizeProfile(rng, fmt.Sprintf("resolver-%03d.%s.example", i, place.Continent), addr, place, cfg.Population)
		if cfg.MutateProfile != nil {
			cfg.MutateProfile(&prof)
		}
		res, err := Start(host, prof, rand.New(rand.NewSource(cfg.Seed+int64(i)+100)))
		if err != nil {
			return nil, err
		}
		u.Resolvers = append(u.Resolvers, res)
		for _, v := range u.Vantages {
			delay := geo.OneWayDelay(v.Coord, place.Coord)
			u.Net.SetSymmetricPath(v.Host.Addr(), addr, netem.PathParams{
				Delay:  delay,
				Jitter: cfg.Jitter,
				Loss:   cfg.Loss,
			})
		}
	}
	return u, nil
}

// PathRTT returns the configured round-trip time between a vantage and a
// resolver (without jitter).
func (u *Universe) PathRTT(v *Vantage, r *Resolver) time.Duration {
	return 2 * u.Net.Path(v.Host.Addr(), r.Addr).Delay
}
