package resolver

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/geo"
	"repro/internal/netapi/simnet"
	"repro/internal/netem"
	"repro/internal/sim"
)

// Vantage is one measurement host at a geographic location.
type Vantage struct {
	geo.VantagePoint
	Host *netem.Host
	// Backend is the vantage's netapi seam over Host, sharing the
	// Universe's random stream; clients built on it draw from the same
	// sequence the pre-seam Options.Rand plumbing produced.
	Backend *simnet.Backend
	// Index is the vantage's global index in the blueprint (stable across
	// partitioned instantiations).
	Index int
}

// Universe is a simulated measurement testbed bound to one World: vantage
// points and a population of resolvers placed per the paper's Fig. 1,
// wired together with distance-derived path delays. A Universe may be the
// whole blueprint or a vantage/resolver partition of it (see
// Blueprint.Instantiate); Resolvers[i] always has global index
// ResolverLo+i.
type Universe struct {
	W         *sim.World
	Net       *netem.Network
	Vantages  []*Vantage
	Resolvers []*Resolver
	Rand      *rand.Rand
	// ResolverLo is the global (blueprint) index of Resolvers[0].
	ResolverLo int
}

// UniverseConfig parameterizes testbed construction.
type UniverseConfig struct {
	Seed int64
	// ResolverCounts defaults to the paper's 313-resolver distribution.
	// Tests and benchmarks use scaled-down counts with the same shape.
	ResolverCounts map[geo.Continent]int
	// Loss is the per-path datagram drop rate (default 0.3%), the source
	// of the paper's retransmission-tail observations. The zero value
	// selects the default; a truly lossless universe — the clean cached
	// baseline of E17 — is requested with the NoLoss sentinel (any
	// negative value), since 0 cannot distinguish "unset" from "none".
	Loss float64
	// Jitter is the per-path delay jitter bound (default 1ms).
	Jitter time.Duration
	// Access names the netem access profile every vantage's host sits
	// behind ("fiber" when empty — the paper's EC2 datacenter uplinks).
	// The E19–E21 grids rebuild the same population with each profile.
	Access string
	// PathPhases, when non-empty, installs a time-varying schedule on
	// every vantage<->resolver path: from each phase's At (virtual time)
	// the path's loss model is replaced by the phase's Loss/Burst, while
	// delay and jitter stay as configured. Phases express mid-campaign
	// degradation and recovery (E20's burst-loss windows).
	PathPhases []PathPhase
	// Population tunes profile synthesis.
	Population PopulationParams
	// MutateProfile lets ablations rewrite each profile before start
	// (e.g. enable 0-RTT everywhere for E11).
	MutateProfile func(*Profile)
}

// PathPhase is one phase of a universe-wide path schedule. Unlike
// UniverseConfig.Loss, a phase's Loss is literal: 0 means lossless.
type PathPhase struct {
	// At is the virtual time the phase takes effect.
	At time.Duration
	// Loss is the independent per-datagram drop probability.
	Loss float64
	// Burst is the Gilbert–Elliott burst-loss model.
	Burst netem.BurstLoss
}

// OutagePhases builds the three-phase path schedule of a total upstream
// outage: the base loss before start, 100% datagram loss inside
// [start, end), and the base loss again after recovery. E23 and the
// serve-stale tests install it via UniverseConfig.PathPhases to make
// every resolver unreachable for the window while the vantage hosts
// stay up.
func OutagePhases(baseLoss float64, start, end time.Duration) []PathPhase {
	return []PathPhase{
		{At: 0, Loss: baseLoss},
		{At: start, Loss: 1},
		{At: end, Loss: baseLoss},
	}
}

// ScaledCounts returns the paper's continent distribution scaled to
// roughly n resolvers (at least one per continent).
func ScaledCounts(n int) map[geo.Continent]int {
	out := make(map[geo.Continent]int, len(geo.VerifiedResolverCounts))
	for c, v := range geo.VerifiedResolverCounts {
		s := v * n / 313
		if s < 1 {
			s = 1
		}
		out[c] = s
	}
	return out
}

// Blueprint is the World-free description of a universe: the vantage
// list, every resolver's place and synthesized profile, and the path
// parameters. Building the blueprint consumes all construction
// randomness up front, so one blueprint can be instantiated into many
// Worlds — whole, or partitioned by vantage and resolver range — with
// every instantiation seeing exactly the same population. Blueprints are
// immutable after construction and safe for concurrent Instantiate
// calls from parallel campaign shards.
type Blueprint struct {
	Seed     int64
	Loss     float64
	Jitter   time.Duration
	Vantages []geo.VantagePoint
	Profiles []Profile
	// Access is the netem access profile attached to every vantage host.
	Access netem.AccessProfile
	// Phases is the time-varying loss schedule applied to every
	// vantage<->resolver path (empty: static paths).
	Phases []PathPhase
}

// NoLoss is the UniverseConfig.Loss sentinel for a truly lossless
// universe. Loss == 0 means "use the 0.3% default" (the config trap
// this sentinel resolves), so a zero-loss path needs an explicit
// request.
const NoLoss = -1.0

// NewBlueprint synthesizes the population described by cfg without
// binding it to a World.
func NewBlueprint(cfg UniverseConfig) (*Blueprint, error) {
	switch {
	case cfg.Loss < 0: // NoLoss (or any negative): genuinely lossless
		cfg.Loss = 0
	case cfg.Loss == 0:
		cfg.Loss = 0.003
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = time.Millisecond
	}
	if cfg.Population == (PopulationParams{}) {
		cfg.Population = DefaultPopulation()
	}
	if cfg.Access == "" {
		cfg.Access = "fiber"
	}
	access, err := netem.ProfileByName(cfg.Access)
	if err != nil {
		return nil, err
	}
	b := &Blueprint{
		Seed:     cfg.Seed,
		Loss:     cfg.Loss,
		Jitter:   cfg.Jitter,
		Vantages: geo.VantagePoints(),
		Access:   access,
		Phases:   append([]PathPhase(nil), cfg.PathPhases...),
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	places := geo.PlaceResolvers(rng, cfg.ResolverCounts)
	for i, place := range places {
		addr := netip.AddrFrom4([4]byte{203, byte(i/250) + 1, byte(i % 250), 53})
		prof := SynthesizeProfile(rng, fmt.Sprintf("resolver-%03d.%s.example", i, place.Continent), addr, place, cfg.Population)
		if cfg.MutateProfile != nil {
			cfg.MutateProfile(&prof)
		}
		b.Profiles = append(b.Profiles, prof)
	}
	return b, nil
}

// Scope selects the partition of a blueprint to instantiate. The zero
// value instantiates everything.
type Scope struct {
	// Vantages lists global vantage indices to include; nil means all.
	Vantages []int
	// ResolverLo and ResolverHi bound the global resolver range [Lo, Hi);
	// Hi == 0 means the whole population.
	ResolverLo, ResolverHi int
}

// Instantiate builds a running Universe for the scoped partition inside
// a fresh World seeded with seed. Everything that identifies a resolver
// (address, profile, server randomness) is keyed by its global index, so
// a resolver behaves identically whether it is instantiated as part of
// the full universe or inside a single-shard partition.
func (b *Blueprint) Instantiate(seed int64, sc Scope) (*Universe, error) {
	w := sim.NewWorld(seed)
	net := netem.NewNetwork(w)
	u := &Universe{
		W:   w,
		Net: net,
		// The client-side random stream is derived, not seed-adjacent, so
		// shard worlds do not correlate with each other.
		Rand: rand.New(rand.NewSource(sim.DeriveSeed(seed, 0xC11E47))),
	}

	vantages := sc.Vantages
	if vantages == nil {
		vantages = make([]int, len(b.Vantages))
		for i := range vantages {
			vantages[i] = i
		}
	}
	for _, i := range vantages {
		addr := netip.AddrFrom4([4]byte{10, 1, 0, byte(i + 1)})
		host := net.Host(addr)
		// Loopback for the local DNS proxy.
		net.SetPath(addr, addr, netem.PathParams{Delay: 50 * time.Microsecond})
		// The vantage's access network: every datagram it exchanges with
		// a resolver — and every analytic content download the browser
		// performs — traverses this link.
		net.SetAccessLink(addr, b.Access)
		u.Vantages = append(u.Vantages, &Vantage{VantagePoint: b.Vantages[i], Host: host, Backend: simnet.New(host, u.Rand), Index: i})
	}

	lo, hi := sc.ResolverLo, sc.ResolverHi
	if hi <= 0 || hi > len(b.Profiles) {
		hi = len(b.Profiles)
	}
	u.ResolverLo = lo
	for gi := lo; gi < hi; gi++ {
		prof := b.Profiles[gi]
		host := net.Host(prof.Addr)
		res, err := Start(host, prof, rand.New(rand.NewSource(b.Seed+int64(gi)+100)))
		if err != nil {
			return nil, err
		}
		u.Resolvers = append(u.Resolvers, res)
		for _, v := range u.Vantages {
			delay := geo.OneWayDelay(v.Coord, prof.Place.Coord)
			base := netem.PathParams{
				Delay:  delay,
				Jitter: b.Jitter,
				Loss:   b.Loss,
			}
			u.Net.SetSymmetricPath(v.Host.Addr(), prof.Addr, base)
			if len(b.Phases) > 0 {
				steps := make([]netem.PathStep, len(b.Phases))
				for pi, ph := range b.Phases {
					params := base
					params.Loss = ph.Loss
					params.Burst = ph.Burst
					steps[pi] = netem.PathStep{At: ph.At, Params: params}
				}
				u.Net.SetSymmetricPathSchedule(v.Host.Addr(), prof.Addr, steps)
			}
		}
	}
	return u, nil
}

// NewUniverse builds and starts the full testbed in one World — the
// single-shard convenience path used by tests and examples. Sharded
// campaigns build a Blueprint once and Instantiate partitions of it.
func NewUniverse(cfg UniverseConfig) (*Universe, error) {
	b, err := NewBlueprint(cfg)
	if err != nil {
		return nil, err
	}
	return b.Instantiate(cfg.Seed, Scope{})
}

// GlobalResolverIdx translates a local index into Resolvers to the
// resolver's global index in the blueprint.
func (u *Universe) GlobalResolverIdx(i int) int { return u.ResolverLo + i }

// PathRTT returns the configured round-trip time between a vantage and a
// resolver (without jitter).
func (u *Universe) PathRTT(v *Vantage, r *Resolver) time.Duration {
	return 2 * u.Net.Path(v.Host.Addr(), r.Addr).Delay
}
