// Package resolver simulates the population of public DoX resolvers the
// paper measures: recursive resolvers reachable over all five DNS
// transports, with deployment characteristics matching §3 of the paper:
//
//   - QUIC versions: 89.1% v1, 8.5% draft-34, 1.8% draft-32, 0.6% draft-29;
//   - DoQ versions: 87.4% doq-i02, 10.8% doq-i03, 1.8% doq-i00;
//   - TLS: ~99% TLS 1.3, the rest TLS 1.2;
//   - Session Resumption with the 7-day maximum ticket lifetime: all;
//   - 0-RTT, TCP Fast Open, edns-tcp-keepalive: none;
//   - certificate chains of varying size, a minority exceeding QUIC's
//     amplification budget (the paper's preliminary-work +1 RTT effect);
//   - an answer cache (cache-warming queries make the follow-up
//     measurement a cache hit) and recursive-lookup latency for misses;
//   - a small probability of not answering a query at all, producing the
//     sample-size variation visible in Table 1.
package resolver

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/cache"
	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/netapi/simnet"
	"repro/internal/netem"
	"repro/internal/quic"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

// Profile describes one simulated resolver's deployment.
type Profile struct {
	Name  string
	Addr  netip.Addr
	Place geo.Place

	// Supports lists the transports this resolver serves. The 313
	// verified DoX resolvers support all five.
	Supports map[dox.Protocol]bool

	QUICVersion   uint32
	DoQALPN       string
	DoQPort       uint16 // 853, or 784/8853 for early-draft deployments
	TLS12Only     bool
	CertChainSize int
	// AcceptEarlyData is false for every public resolver in the paper;
	// the E11 ablation turns it on.
	AcceptEarlyData bool
	// DisableSessionTickets models a resolver without Session
	// Resumption (none observed; E10 ablates it on the client instead).
	DisableSessionTickets bool

	// ResponseRate is the probability a query is answered at all.
	ResponseRate float64
	// ProcessingDelay is the per-query server-side cost for cache hits.
	ProcessingDelay time.Duration
	// RecursiveRTT is the extra latency of a cache miss (upstream
	// lookups to authoritative servers).
	RecursiveRTT time.Duration
	// CacheTTL bounds how long answers stay cached.
	CacheTTL time.Duration
	// CacheCapacity bounds the answer cache's entry count (LRU
	// eviction); 0 means unbounded, the public-resolver default.
	CacheCapacity int
}

// PopulationParams controls profile synthesis.
type PopulationParams struct {
	// BigCertFraction is the share of resolvers whose certificate chain
	// exceeds the QUIC amplification budget (~40% in the paper's
	// preliminary work).
	BigCertFraction float64
	// ResponseRate defaults to 0.985.
	ResponseRate float64
}

// DefaultPopulation matches the paper.
func DefaultPopulation() PopulationParams {
	return PopulationParams{BigCertFraction: 0.4, ResponseRate: 0.985}
}

// SynthesizeProfile draws one resolver profile from the paper's §3
// distributions.
func SynthesizeProfile(rng *rand.Rand, name string, addr netip.Addr, place geo.Place, p PopulationParams) Profile {
	prof := Profile{
		Name:  name,
		Addr:  addr,
		Place: place,
		// Verified resolvers serve the paper's five transports; DoH3 is
		// assumed wherever DoH is deployed (the HTTP stack upgrade rides
		// the existing QUIC endpoint), which is what E13–E15 measure.
		Supports: map[dox.Protocol]bool{
			dox.DoUDP: true, dox.DoTCP: true, dox.DoQ: true, dox.DoH: true, dox.DoT: true,
			dox.DoH3: true,
		},
		DoQPort:         dox.PortDoQ,
		ResponseRate:    p.ResponseRate,
		ProcessingDelay: time.Duration(200+rng.Intn(600)) * time.Microsecond,
		RecursiveRTT:    time.Duration(30+rng.Intn(120)) * time.Millisecond,
		CacheTTL:        300 * time.Second,
	}
	switch f := rng.Float64(); {
	case f < 0.891:
		prof.QUICVersion = quic.Version1
	case f < 0.891+0.085:
		prof.QUICVersion = quic.VersionDraft34
	case f < 0.891+0.085+0.018:
		prof.QUICVersion = quic.VersionDraft32
	default:
		prof.QUICVersion = quic.VersionDraft29
	}
	switch f := rng.Float64(); {
	case f < 0.874:
		prof.DoQALPN = "doq-i02"
	case f < 0.874+0.108:
		prof.DoQALPN = "doq-i03"
	default:
		prof.DoQALPN = "doq-i00"
	}
	prof.TLS12Only = rng.Float64() < 0.01
	if rng.Float64() < p.BigCertFraction {
		prof.CertChainSize = 4000 + rng.Intn(1800)
	} else {
		prof.CertChainSize = 900 + rng.Intn(1600)
	}
	return prof
}

// Resolver is a running simulated resolver.
type Resolver struct {
	Profile
	host   *netem.Host
	w      *sim.World
	rng    *rand.Rand
	server *dox.Server
	// cache is the resolver's shared answer cache: every transport
	// endpoint feeds the same TTL-aware cache, which is what makes a
	// warming query over one transport a hit for the measured query.
	cache *cache.Cache

	// Queries counts handled queries per protocol.
	Queries map[dox.Protocol]int
	// Dropped counts deliberately unanswered queries.
	Dropped int
}

// Start brings the resolver up on its host, serving the supported
// transports.
func Start(host *netem.Host, prof Profile, rng *rand.Rand) (*Resolver, error) {
	w := host.World()
	r := &Resolver{
		Profile: prof,
		host:    host,
		w:       w,
		rng:     rng,
		cache:   cache.New(w.Now, prof.CacheCapacity),
		Queries: make(map[dox.Protocol]int),
	}
	identity := tlsmini.GenerateIdentity(rng, prof.Name, prof.CertChainSize)
	var tlsVersion tlsmini.Version
	if prof.TLS12Only {
		tlsVersion = tlsmini.VersionTLS12
	}
	cfg := dox.ServerConfig{
		Handler:               r.handle,
		Identity:              identity,
		TicketStore:           tlsmini.NewTicketStore(),
		DisableSessionTickets: prof.DisableSessionTickets,
		AcceptEarlyData:       prof.AcceptEarlyData,
		TLSVersion:            tlsVersion,
		QUICVersions:          []uint32{prof.QUICVersion},
		DoQALPN:               prof.DoQALPN,
		DoQPort:               prof.DoQPort,
		TokenKey:              []byte(prof.Name + "-token-key"),
	}
	r.server = dox.NewServer(simnet.New(host, rng), cfg)
	type ent struct {
		p  dox.Protocol
		fn func() error
	}
	for _, e := range []ent{
		{dox.DoUDP, r.server.ServeUDP},
		{dox.DoTCP, r.server.ServeTCP},
		{dox.DoT, r.server.ServeDoT},
		{dox.DoH, r.server.ServeDoH},
		{dox.DoQ, r.server.ServeDoQ},
		{dox.DoH3, r.server.ServeDoH3},
	} {
		if !prof.Supports[e.p] {
			continue
		}
		if err := e.fn(); err != nil {
			return nil, fmt.Errorf("resolver %s: %w", prof.Name, err)
		}
	}
	return r, nil
}

// handle implements the recursive resolver: answer from cache, otherwise
// simulate upstream recursion, with a small unresponsiveness probability.
func (r *Resolver) handle(q *dnsmsg.Message, proto dox.Protocol, _ netip.AddrPort) *dnsmsg.Message {
	r.Queries[proto]++
	if r.rng.Float64() > r.ResponseRate {
		r.Dropped++
		return nil
	}
	r.w.Sleep(r.ProcessingDelay)
	if len(q.Questions) == 0 {
		resp := dnsmsg.Reply(*q)
		resp.RCode = dnsmsg.RCodeFormErr
		return &resp
	}
	question := q.Questions[0]
	key := cache.Key{Name: question.Name, Type: question.Type}
	entry, ok := r.cache.Lookup(key)
	if !ok {
		r.w.Sleep(r.RecursiveRTT)
		entry = r.cache.Put(key, SyntheticAddr(question.Name), r.CacheTTL)
	}
	resp := dnsmsg.Reply(*q)
	// The advertised TTL is the entry's remaining lifetime, so
	// downstream (stub) caches expire in lockstep with this resolver.
	resp.AnswerA(entry.Addr, cache.TTLSeconds(entry.Remaining(r.w.Now())))
	return &resp
}

// CacheStats returns the shared answer cache's counters.
func (r *Resolver) CacheStats() cache.Stats { return r.cache.Stats() }

// CacheHits returns the number of queries answered from cache.
func (r *Resolver) CacheHits() int { return r.cache.Stats().Hits }

// CacheMisses returns the number of queries that paid upstream
// recursion.
func (r *Resolver) CacheMisses() int { return r.cache.Stats().Misses }

// FlushCache clears the answer cache, keeping its statistics (used
// between measurement rounds and by the uncached-baseline ablation).
func (r *Resolver) FlushCache() { r.cache.Flush() }

// Close stops all transports.
func (r *Resolver) Close() { r.server.Close() }

// SyntheticAddr derives a stable public-looking address for a DNS name,
// standing in for the real records the authoritative DNS would serve.
func SyntheticAddr(name string) netip.Addr {
	h := fnv.New32a()
	h.Write([]byte(name))
	v := h.Sum32()
	return netip.AddrFrom4([4]byte{198, byte(18 + v%2), byte(v >> 8), byte(v)})
}
