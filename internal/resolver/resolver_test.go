package resolver

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/quic"
)

func TestSyntheticAddrStable(t *testing.T) {
	a := SyntheticAddr("google.com")
	b := SyntheticAddr("google.com")
	if a != b {
		t.Error("addresses differ across calls")
	}
	if SyntheticAddr("example.org") == a {
		t.Error("different names map to same address")
	}
	if !a.Is4() {
		t.Error("not IPv4")
	}
}

func TestProfileDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	v1, i02, tls12, bigCert := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		p := SynthesizeProfile(rng, "r", netip.MustParseAddr("203.0.0.1"), geo.Place{}, DefaultPopulation())
		if p.QUICVersion == quic.Version1 {
			v1++
		}
		if p.DoQALPN == "doq-i02" {
			i02++
		}
		if p.TLS12Only {
			tls12++
		}
		if p.CertChainSize >= 4000 {
			bigCert++
		}
	}
	check := func(name string, got, wantPct, tolPct int) {
		pct := got * 100 / n
		if pct < wantPct-tolPct || pct > wantPct+tolPct {
			t.Errorf("%s share = %d%%, want ~%d%%", name, pct, wantPct)
		}
	}
	check("QUIC v1", v1, 89, 3)   // paper: 89.1%
	check("doq-i02", i02, 87, 3)  // paper: 87.4%
	check("TLS 1.2", tls12, 1, 2) // paper: ~1%
	check("big cert", bigCert, 40, 4)
}

func TestUniverseSmokeAllProtocols(t *testing.T) {
	u, err := NewUniverse(UniverseConfig{
		Seed:           42,
		ResolverCounts: map[geo.Continent]int{geo.EU: 2, geo.NA: 1},
		Loss:           0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Resolvers) != 3 || len(u.Vantages) != 6 {
		t.Fatalf("universe has %d resolvers, %d vantages", len(u.Resolvers), len(u.Vantages))
	}
	vp := u.Vantages[0]
	res := u.Resolvers[0]
	results := map[dox.Protocol]bool{}
	u.W.Go(func() {
		for _, proto := range dox.Protocols {
			c, err := dox.Connect(proto, dox.Options{
				Backend:      vp.Backend,
				Resolver:     res.Addr,
				ServerName:   res.Name,
				QUICVersions: []uint32{res.QUICVersion},
			})
			if err != nil {
				t.Errorf("%v: %v", proto, err)
				continue
			}
			q := dnsmsg.NewQuery(uint16(proto), "google.com", dnsmsg.TypeA)
			resp, err := c.Query(&q)
			if err != nil {
				t.Errorf("%v query: %v", proto, err)
				c.Close()
				continue
			}
			_, ok := resp.FirstA()
			results[proto] = ok
			c.Close()
		}
	})
	u.W.Run()
	for _, proto := range dox.Protocols {
		if !results[proto] {
			t.Errorf("%v did not resolve", proto)
		}
	}
}

func TestCacheWarmingMakesSecondQueryFast(t *testing.T) {
	u, err := NewUniverse(UniverseConfig{
		Seed:           7,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
		Loss:           0,
	})
	if err != nil {
		t.Fatal(err)
	}
	vp, res := u.Vantages[0], u.Resolvers[0]
	rtt := u.PathRTT(vp, res)
	var cold, warm time.Duration
	u.W.Go(func() {
		c, err := dox.Connect(dox.DoUDP, dox.Options{
			Backend: vp.Backend, Resolver: res.Addr,
		})
		if err != nil {
			t.Error(err)
			return
		}
		q := dnsmsg.NewQuery(1, "warmtest.example", dnsmsg.TypeA)
		start := u.W.Now()
		if _, err := c.Query(&q); err != nil {
			t.Error(err)
			return
		}
		cold = u.W.Now() - start
		q2 := dnsmsg.NewQuery(2, "warmtest.example", dnsmsg.TypeA)
		start = u.W.Now()
		if _, err := c.Query(&q2); err != nil {
			t.Error(err)
			return
		}
		warm = u.W.Now() - start
		c.Close()
	})
	u.W.Run()
	if cold < rtt+res.RecursiveRTT {
		t.Errorf("cold query %v faster than RTT+recursion (%v)", cold, rtt+res.RecursiveRTT)
	}
	if warm > rtt+5*time.Millisecond {
		t.Errorf("warm query %v, want ~RTT (%v)", warm, rtt)
	}
	if res.CacheHits() != 1 || res.CacheMisses() != 1 {
		t.Errorf("cache hits=%d misses=%d, want 1/1", res.CacheHits(), res.CacheMisses())
	}
}

// TestNoLossSentinel is the regression test for the zero-loss config
// trap: Loss == 0 keeps selecting the 0.3% default, while the NoLoss
// sentinel yields genuinely lossless paths — and therefore zero
// datagram drops on every vantage-resolver path.
func TestNoLossSentinel(t *testing.T) {
	counts := map[geo.Continent]int{geo.EU: 2, geo.NA: 1}
	bp, err := NewBlueprint(UniverseConfig{Seed: 5, ResolverCounts: counts, Loss: NoLoss})
	if err != nil {
		t.Fatal(err)
	}
	if bp.Loss != 0 {
		t.Fatalf("NoLoss blueprint has Loss=%v, want 0", bp.Loss)
	}
	defaulted, err := NewBlueprint(UniverseConfig{Seed: 5, ResolverCounts: counts})
	if err != nil {
		t.Fatal(err)
	}
	if defaulted.Loss != 0.003 {
		t.Fatalf("zero-value Loss = %v, want the 0.3%% default", defaulted.Loss)
	}
	u, err := bp.Instantiate(5, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	for _, vp := range u.Vantages {
		for _, res := range u.Resolvers {
			if l := u.Net.Path(vp.Host.Addr(), res.Addr).Loss; l != 0 {
				t.Fatalf("path %s->%s has loss %v under NoLoss", vp.Name, res.Name, l)
			}
		}
	}
}

// TestAccessProfileThreading checks the blueprint carries the named
// access profile onto every vantage host, defaults to fiber, and
// rejects unknown names; and that PathPhases install a schedule on
// every vantage-resolver path.
func TestAccessProfileThreading(t *testing.T) {
	counts := map[geo.Continent]int{geo.EU: 2, geo.NA: 1}
	bp, err := NewBlueprint(UniverseConfig{Seed: 5, ResolverCounts: counts, Access: "3g"})
	if err != nil {
		t.Fatal(err)
	}
	if bp.Access.Name != "3g" {
		t.Fatalf("blueprint access = %q, want 3g", bp.Access.Name)
	}
	u, err := bp.Instantiate(5, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	for _, vp := range u.Vantages {
		prof, ok := u.Net.AccessLink(vp.Host.Addr())
		if !ok || prof.Name != "3g" {
			t.Fatalf("vantage %s access link = %+v, %v; want 3g", vp.Name, prof, ok)
		}
	}

	def, err := NewBlueprint(UniverseConfig{Seed: 5, ResolverCounts: counts})
	if err != nil {
		t.Fatal(err)
	}
	if def.Access.Name != "fiber" {
		t.Fatalf("default access = %q, want fiber", def.Access.Name)
	}
	if _, err := NewBlueprint(UniverseConfig{Seed: 5, ResolverCounts: counts, Access: "dialup"}); err == nil {
		t.Fatal("unknown access profile accepted")
	}

	phased, err := NewBlueprint(UniverseConfig{
		Seed: 5, ResolverCounts: counts,
		PathPhases: []PathPhase{
			{At: 0, Loss: 0.003},
			{At: time.Minute, Burst: netem.BurstLoss{PGoodBad: 0.1, PBadGood: 0.2, LossBad: 0.5}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	up, err := phased.Instantiate(5, Scope{})
	if err != nil {
		t.Fatal(err)
	}
	for _, vp := range up.Vantages {
		for _, res := range up.Resolvers {
			early := up.Net.PathAt(vp.Host.Addr(), res.Addr, 0)
			late := up.Net.PathAt(res.Addr, vp.Host.Addr(), 90*time.Second)
			if early.Burst.Enabled() {
				t.Fatalf("phase 0 has burst loss enabled: %+v", early.Burst)
			}
			if !late.Burst.Enabled() || late.Loss != 0 {
				t.Fatalf("phase 1 not in effect at 90s: %+v", late)
			}
			if late.Delay != early.Delay {
				t.Fatalf("schedule changed path delay: %v vs %v", late.Delay, early.Delay)
			}
		}
	}
}

func TestScaledCountsShape(t *testing.T) {
	c := ScaledCounts(60)
	if c[geo.EU] < c[geo.NA] || c[geo.AS] < c[geo.NA] {
		t.Errorf("scaling lost the EU/AS dominance: %v", c)
	}
	for _, cont := range geo.Continents {
		if c[cont] < 1 {
			t.Errorf("%v has no resolvers", cont)
		}
	}
	full := ScaledCounts(313)
	if full[geo.EU] != 130 || full[geo.AS] != 128 {
		t.Errorf("full scale mismatch: %v", full)
	}
}

func TestUnresponsiveness(t *testing.T) {
	u, err := NewUniverse(UniverseConfig{
		Seed:           3,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
		Loss:           0,
		Population:     PopulationParams{BigCertFraction: 0.4, ResponseRate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	vp, res := u.Vantages[0], u.Resolvers[0]
	answered := 0
	const queries = 40
	u.W.Go(func() {
		c, _ := dox.Connect(dox.DoUDP, dox.Options{
			Backend: vp.Backend, Resolver: res.Addr,
			UDPTimeout: 100 * time.Millisecond, UDPRetries: 1,
		})
		for i := 0; i < queries; i++ {
			q := dnsmsg.NewQuery(uint16(i), "google.com", dnsmsg.TypeA)
			if _, err := c.Query(&q); err == nil {
				answered++
			}
		}
		c.Close()
	})
	u.W.Run()
	if answered < queries/4 || answered > queries {
		t.Errorf("answered %d/%d at 50%% response rate", answered, queries)
	}
	if res.Dropped == 0 {
		t.Error("resolver never dropped a query")
	}
}
