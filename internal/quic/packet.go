package quic

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/tlsmini"
)

// Supported wire versions. The drafts are feature equivalent to v1 in
// this implementation, exactly as the paper observes ("we find no
// differences between the QUIC versions").
const (
	Version1       uint32 = 0x00000001
	VersionDraft34 uint32 = 0xff000022
	VersionDraft32 uint32 = 0xff000020
	VersionDraft29 uint32 = 0xff00001d
)

// AllVersions lists every wire version this implementation supports, in
// client preference order (v1 first, then drafts newest-first), matching
// the paper's tooling which "supports all available DoQ versions".
func AllVersions() []uint32 {
	return []uint32{Version1, VersionDraft34, VersionDraft32, VersionDraft29}
}

// VersionName renders a version for reports.
func VersionName(v uint32) string {
	switch v {
	case Version1:
		return "v1"
	case VersionDraft34:
		return "draft-34"
	case VersionDraft32:
		return "draft-32"
	case VersionDraft29:
		return "draft-29"
	}
	return fmt.Sprintf("0x%08x", v)
}

// Packet types.
type packetType uint8

const (
	ptInitial packetType = iota
	ptZeroRTT
	ptHandshake
	ptOneRTT
	ptVersionNego
)

func (t packetType) String() string {
	switch t {
	case ptInitial:
		return "Initial"
	case ptZeroRTT:
		return "0-RTT"
	case ptHandshake:
		return "Handshake"
	case ptOneRTT:
		return "1-RTT"
	case ptVersionNego:
		return "VersionNegotiation"
	}
	return "?"
}

const (
	cidLen = 8
	// MinInitialDatagram is the RFC 9000 minimum size of datagrams
	// carrying Initial packets.
	MinInitialDatagram = 1200
	// maxDatagram caps all QUIC datagrams (we do not probe for larger
	// MTUs).
	maxDatagram = 1200
	pnLen       = 4 // fixed-length packet numbers
)

// packet is a parsed QUIC packet.
type packet struct {
	ptype   packetType
	version uint32
	dcid    []byte
	scid    []byte
	token   []byte // Initial only
	pn      uint64
	payload []byte // decrypted frames

	versions []uint32 // Version Negotiation only
}

// retained returns a copy of p whose connection ID and token fields no
// longer alias the datagram buffer, for packets buffered past the
// datagram's pooled lifetime.
func (p packet) retained() packet {
	p.dcid = append([]byte(nil), p.dcid...)
	p.scid = append([]byte(nil), p.scid...)
	p.token = append([]byte(nil), p.token...)
	return p
}

// appendHeader appends the unprotected header bytes for a packet about
// to be sealed; the caller appends the sealed payload after it.
func appendHeader(b []byte, t packetType, version uint32, dcid, scid, token []byte, pn uint64, payloadLen int) []byte {
	if t == ptOneRTT {
		b = append(b, 0x40)
		b = append(b, dcid...)
		b = binary.BigEndian.AppendUint32(b, uint32(pn))
		return b
	}
	b = append(b, 0x80|byte(t)<<4|(pnLen-1))
	b = binary.BigEndian.AppendUint32(b, version)
	b = append(b, byte(len(dcid)))
	b = append(b, dcid...)
	b = append(b, byte(len(scid)))
	b = append(b, scid...)
	if t == ptInitial {
		b = appendVarint(b, uint64(len(token)))
		b = append(b, token...)
	}
	// Length covers packet number + sealed payload.
	b = appendVarint(b, uint64(pnLen+payloadLen))
	b = binary.BigEndian.AppendUint32(b, uint32(pn))
	return b
}

// encodeVersionNegotiation builds a Version Negotiation packet.
func encodeVersionNegotiation(dcid, scid []byte, versions []uint32) []byte {
	b := []byte{0x80}
	b = binary.BigEndian.AppendUint32(b, 0)
	b = append(b, byte(len(dcid)))
	b = append(b, dcid...)
	b = append(b, byte(len(scid)))
	b = append(b, scid...)
	for _, v := range versions {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	return b
}

var errPacket = errors.New("quic: malformed packet")

// parseHeader parses one packet header from the front of a datagram. It
// returns the header fields, the offset where the protected payload
// starts, the total length of this packet within the datagram, and the
// header bytes (AAD).
//
// The returned connection IDs, token, and AAD alias b — the datagram
// buffer, which is released back to the pool after processing. Callers
// that retain any of them past the datagram's lifetime must copy
// (packet.retained for the ID fields).
func parseHeader(b []byte) (p packet, payloadOff, total int, aad []byte, err error) {
	if len(b) < 1 {
		return p, 0, 0, nil, errPacket
	}
	first := b[0]
	if first&0x80 == 0 {
		// Short header: 1-RTT, consumes the rest of the datagram.
		if len(b) < 1+cidLen+pnLen {
			return p, 0, 0, nil, errPacket
		}
		p.ptype = ptOneRTT
		p.dcid = b[1 : 1+cidLen]
		p.pn = uint64(binary.BigEndian.Uint32(b[1+cidLen : 1+cidLen+pnLen]))
		off := 1 + cidLen + pnLen
		return p, off, len(b), b[:off], nil
	}
	if len(b) < 7 {
		return p, 0, 0, nil, errPacket
	}
	p.version = binary.BigEndian.Uint32(b[1:5])
	i := 5
	dl := int(b[i])
	i++
	if len(b) < i+dl+1 {
		return p, 0, 0, nil, errPacket
	}
	p.dcid = b[i : i+dl]
	i += dl
	sl := int(b[i])
	i++
	if len(b) < i+sl {
		return p, 0, 0, nil, errPacket
	}
	p.scid = b[i : i+sl]
	i += sl
	if p.version == 0 {
		// Version Negotiation: remainder is a version list.
		p.ptype = ptVersionNego
		rest := b[i:]
		for len(rest) >= 4 {
			p.versions = append(p.versions, binary.BigEndian.Uint32(rest[:4]))
			rest = rest[4:]
		}
		return p, i, len(b), nil, nil
	}
	p.ptype = packetType((first >> 4) & 0x03)
	if p.ptype == ptInitial {
		tl, n, err := readVarint(b[i:])
		if err != nil {
			return p, 0, 0, nil, err
		}
		i += n
		if len(b) < i+int(tl) {
			return p, 0, 0, nil, errPacket
		}
		p.token = b[i : i+int(tl)]
		i += int(tl)
	}
	length, n, err := readVarint(b[i:])
	if err != nil {
		return p, 0, 0, nil, err
	}
	i += n
	if len(b) < i+int(length) || length < pnLen {
		return p, 0, 0, nil, errPacket
	}
	p.pn = uint64(binary.BigEndian.Uint32(b[i : i+pnLen]))
	payloadOff = i + pnLen
	total = i + int(length)
	return p, payloadOff, total, b[:payloadOff], nil
}

// Initial packet protection (RFC 9001 §5.2 shaped): keys derived from the
// client's first Destination Connection ID so both endpoints can compute
// them before any TLS keys exist.
var initialSalt = []byte("repro-quic-initial-salt-v1")

func initialSecrets(dcid []byte) (client, server []byte) {
	prk := hmacSHA256(initialSalt, dcid)
	return expandLabel(prk, "client in"), expandLabel(prk, "server in")
}

func hmacSHA256(key, data []byte) []byte {
	s := tlsmini.HMACShort(key, data, nil)
	out := make([]byte, len(s))
	copy(out, s[:])
	return out
}

var expandCounterOne = []byte{1}

func expandLabel(prk []byte, label string) []byte {
	s := tlsmini.HMACShort(prk, []byte(label), expandCounterOne)
	out := make([]byte, len(s))
	copy(out, s[:])
	return out
}
