package quic

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

type env struct {
	w        *sim.World
	client   *netem.Host
	server   *netem.Host
	identity *tlsmini.Identity
	cache    *tlsmini.SessionCache
	store    *tlsmini.TicketStore
	rng      *rand.Rand
	rtt      time.Duration
}

func newEnv(seed int64, rtt time.Duration, loss float64) *env {
	w := sim.NewWorld(seed)
	n := netem.NewNetwork(w)
	c := n.Host(netip.MustParseAddr("10.0.0.1"))
	s := n.Host(netip.MustParseAddr("10.0.0.2"))
	n.SetSymmetricPath(c.Addr(), s.Addr(), netem.PathParams{Delay: rtt / 2, Loss: loss})
	rng := rand.New(rand.NewSource(seed))
	return &env{
		w: w, client: c, server: s,
		identity: tlsmini.GenerateIdentity(rng, "resolver.example", 1000),
		cache:    tlsmini.NewSessionCache(),
		store:    tlsmini.NewTicketStore(),
		rng:      rng,
		rtt:      rtt,
	}
}

func (e *env) serverCfg() Config {
	return Config{
		ALPN:        []string{"doq"},
		Identity:    e.identity,
		TicketStore: e.store,
		TokenKey:    []byte("server-token-key"),
		Rand:        e.rng,
		Now:         e.w.Now,
	}
}

func (e *env) clientCfg() Config {
	return Config{
		ALPN:         []string{"doq"},
		ServerName:   "resolver.example",
		SessionCache: e.cache,
		Rand:         e.rng,
		Now:          e.w.Now,
	}
}

// startEchoServer runs a stream-echo DoQ-style server.
func (e *env) startEchoServer(t *testing.T, cfg Config) *Listener {
	t.Helper()
	l, err := Listen(e.server, 853, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.w.Go(func() {
		for {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			e.w.Go(func() {
				for {
					st, ok := conn.AcceptStream()
					if !ok {
						return
					}
					e.w.Go(func() {
						data, ok := st.ReadAll()
						if ok {
							st.Write(append([]byte("echo:"), data...), true)
						}
					})
				}
			})
		}
	})
	return l
}

func TestHandshakeOneRTT(t *testing.T) {
	e := newEnv(1, 100*time.Millisecond, 0)
	l := e.startEchoServer(t, e.serverCfg())
	var hsTime time.Duration
	e.w.Go(func() {
		start := e.w.Now()
		c, err := Dial(e.client, l.Addr(), e.clientCfg())
		if err != nil {
			t.Error(err)
			return
		}
		hsTime = e.w.Now() - start
		c.Close()
	})
	e.w.Run()
	// QUIC combines transport and crypto: handshake completes in 1 RTT.
	if hsTime < e.rtt || hsTime > e.rtt+10*time.Millisecond {
		t.Errorf("handshake took %v, want ~%v (1 RTT)", hsTime, e.rtt)
	}
}

func TestStreamEcho(t *testing.T) {
	e := newEnv(2, 40*time.Millisecond, 0)
	l := e.startEchoServer(t, e.serverCfg())
	var got []byte
	e.w.Go(func() {
		c, err := Dial(e.client, l.Addr(), e.clientCfg())
		if err != nil {
			t.Error(err)
			return
		}
		st := c.OpenStream()
		st.Write([]byte("query"), true)
		got, _ = st.ReadAll()
		c.Close()
	})
	e.w.Run()
	if !bytes.Equal(got, []byte("echo:query")) {
		t.Errorf("got %q", got)
	}
}

func TestMultipleStreamsOneConnection(t *testing.T) {
	e := newEnv(3, 30*time.Millisecond, 0)
	l := e.startEchoServer(t, e.serverCfg())
	results := make([][]byte, 5)
	e.w.Go(func() {
		c, err := Dial(e.client, l.Addr(), e.clientCfg())
		if err != nil {
			t.Error(err)
			return
		}
		wg := sim.NewWaitGroup(e.w)
		for i := 0; i < 5; i++ {
			i := i
			wg.Add(1)
			st := c.OpenStream()
			e.w.Go(func() {
				defer wg.Done()
				st.Write([]byte{byte('a' + i)}, true)
				results[i], _ = st.ReadAll()
			})
		}
		wg.Wait()
		c.Close()
	})
	e.w.Run()
	for i, r := range results {
		want := []byte{'e', 'c', 'h', 'o', ':', byte('a' + i)}
		if !bytes.Equal(r, want) {
			t.Errorf("stream %d: got %q want %q", i, r, want)
		}
	}
}

func TestInitialDatagramPadded(t *testing.T) {
	e := newEnv(4, 10*time.Millisecond, 0)
	l := e.startEchoServer(t, e.serverCfg())
	e.w.Go(func() {
		c, err := Dial(e.client, l.Addr(), e.clientCfg())
		if err != nil {
			t.Error(err)
			return
		}
		tx, rx := c.HandshakeStats()
		// The client's first flight is a single padded Initial datagram:
		// at least 1200 bytes + UDP header. The server's reply contains a
		// padded Initial too.
		if tx < MinInitialDatagram+udpOverhead {
			t.Errorf("handshake tx = %d, want >= %d", tx, MinInitialDatagram+udpOverhead)
		}
		if rx < MinInitialDatagram+udpOverhead {
			t.Errorf("handshake rx = %d, want >= %d", rx, MinInitialDatagram+udpOverhead)
		}
		c.Close()
	})
	e.w.Run()
}

func TestSessionResumptionAndToken(t *testing.T) {
	e := newEnv(5, 60*time.Millisecond, 0)
	l := e.startEchoServer(t, e.serverCfg())
	var token []byte
	var second *Conn
	e.w.Go(func() {
		c, err := Dial(e.client, l.Addr(), e.clientCfg())
		if err != nil {
			t.Error(err)
			return
		}
		if c.UsedResumption() {
			t.Error("first connection resumed")
		}
		// Exchange a stream so the NEW_TOKEN and ticket arrive.
		st := c.OpenStream()
		st.Write([]byte("warm"), true)
		st.ReadAll()
		token = c.NewToken()
		c.Close()

		cfg := e.clientCfg()
		cfg.Token = token
		second, err = Dial(e.client, l.Addr(), cfg)
		if err != nil {
			t.Error(err)
			return
		}
		second.Close()
	})
	e.w.Run()
	if len(token) == 0 {
		t.Fatal("no NEW_TOKEN received")
	}
	if second == nil || !second.UsedResumption() {
		t.Error("second connection did not resume the session")
	}
}

func TestAmplificationLimitDelaysBigCertWithoutToken(t *testing.T) {
	// A certificate chain larger than 3x the client's 1200-byte Initial
	// keeps the server amplification-blocked until the client's ACK
	// arrives, costing roughly one extra RTT (the paper's preliminary-
	// work finding, resolved by Session Resumption + tokens).
	rtt := 100 * time.Millisecond
	measure := func(chain int) time.Duration {
		e := newEnv(6, rtt, 0)
		e.identity = tlsmini.GenerateIdentity(e.rng, "resolver.example", chain)
		l := e.startEchoServer(t, e.serverCfg())
		var hs time.Duration
		e.w.Go(func() {
			start := e.w.Now()
			c, err := Dial(e.client, l.Addr(), e.clientCfg())
			if err != nil {
				t.Error(err)
				return
			}
			hs = e.w.Now() - start
			c.Close()
		})
		e.w.Run()
		return hs
	}
	small := measure(1000)
	big := measure(6000)
	if small > rtt+20*time.Millisecond {
		t.Errorf("small-cert handshake = %v, want ~1 RTT", small)
	}
	if big < rtt+rtt*8/10 {
		t.Errorf("big-cert handshake = %v, want >= ~2 RTT (amplification limit)", big)
	}
}

func TestTokenLiftsAmplificationLimit(t *testing.T) {
	rtt := 100 * time.Millisecond
	e := newEnv(7, rtt, 0)
	e.identity = tlsmini.GenerateIdentity(e.rng, "resolver.example", 6000)
	l := e.startEchoServer(t, e.serverCfg())
	var first, second time.Duration
	e.w.Go(func() {
		start := e.w.Now()
		c, err := Dial(e.client, l.Addr(), e.clientCfg())
		if err != nil {
			t.Error(err)
			return
		}
		first = e.w.Now() - start
		st := c.OpenStream()
		st.Write([]byte("warm"), true)
		st.ReadAll()
		token := c.NewToken()
		c.Close()

		cfg := e.clientCfg()
		cfg.Token = token
		start = e.w.Now()
		c2, err := Dial(e.client, l.Addr(), cfg)
		if err != nil {
			t.Error(err)
			return
		}
		second = e.w.Now() - start
		c2.Close()
	})
	e.w.Run()
	if first < rtt*18/10 {
		t.Errorf("first handshake = %v, want ~2 RTT (amp limited)", first)
	}
	if second > rtt+20*time.Millisecond {
		t.Errorf("resumed handshake with token = %v, want ~1 RTT", second)
	}
}

func TestVersionNegotiationCostsOneRTT(t *testing.T) {
	rtt := 80 * time.Millisecond
	e := newEnv(8, rtt, 0)
	scfg := e.serverCfg()
	scfg.Versions = []uint32{VersionDraft34}
	l := e.startEchoServer(t, scfg)
	ccfg := e.clientCfg()
	ccfg.Versions = []uint32{Version1, VersionDraft34}
	var hs time.Duration
	var conn *Conn
	e.w.Go(func() {
		start := e.w.Now()
		c, err := Dial(e.client, l.Addr(), ccfg)
		if err != nil {
			t.Error(err)
			return
		}
		hs = e.w.Now() - start
		conn = c
		c.Close()
	})
	e.w.Run()
	if conn == nil {
		t.Fatal("dial failed")
	}
	if !conn.VersionNegotiated() {
		t.Error("VN round trip not flagged")
	}
	if conn.Version() != VersionDraft34 {
		t.Errorf("version = %s", VersionName(conn.Version()))
	}
	if hs < 2*rtt-10*time.Millisecond {
		t.Errorf("handshake with VN = %v, want ~2 RTT", hs)
	}
}

func TestZeroRTTQueryCompletesInOneRTT(t *testing.T) {
	rtt := 100 * time.Millisecond
	e := newEnv(9, rtt, 0)
	scfg := e.serverCfg()
	scfg.AcceptEarlyData = true
	l := e.startEchoServer(t, scfg)
	var elapsed time.Duration
	var accepted bool
	e.w.Go(func() {
		// Warm: full handshake to obtain ticket allowing early data.
		c, err := Dial(e.client, l.Addr(), e.clientCfg())
		if err != nil {
			t.Error(err)
			return
		}
		st := c.OpenStream()
		st.Write([]byte("warm"), true)
		st.ReadAll()
		c.Close()

		cfg := e.clientCfg()
		cfg.OfferEarlyData = true
		start := e.w.Now()
		c2, err := DialEarly(e.client, l.Addr(), cfg)
		if err != nil {
			t.Error(err)
			return
		}
		st2 := c2.OpenStream()
		st2.Write([]byte("early"), true)
		resp, ok := st2.ReadAll()
		if !ok || !bytes.Equal(resp, []byte("echo:early")) {
			t.Errorf("0-RTT response %q ok=%v", resp, ok)
		}
		elapsed = e.w.Now() - start
		accepted = c2.EarlyDataAccepted()
		c2.Close()
	})
	e.w.Run()
	if !accepted {
		t.Error("0-RTT not accepted")
	}
	if elapsed > rtt+20*time.Millisecond {
		t.Errorf("0-RTT query took %v, want ~1 RTT", elapsed)
	}
}

func TestZeroRTTRejectedReplaysAs1RTT(t *testing.T) {
	rtt := 60 * time.Millisecond
	e := newEnv(10, rtt, 0)
	// Phase 1: server that allows early data issues the ticket.
	scfg := e.serverCfg()
	scfg.AcceptEarlyData = true
	l := e.startEchoServer(t, scfg)
	var resp []byte
	e.w.Go(func() {
		c, err := Dial(e.client, l.Addr(), e.clientCfg())
		if err != nil {
			t.Error(err)
			return
		}
		st := c.OpenStream()
		st.Write([]byte("warm"), true)
		st.ReadAll()
		c.Close()

		// Phase 2: server now refuses early data; client offers it.
		l.Close()
		scfg2 := e.serverCfg()
		scfg2.AcceptEarlyData = false
		l2 := e.startEchoServer(t, scfg2)
		cfg := e.clientCfg()
		cfg.OfferEarlyData = true
		c2, err := DialEarly(e.client, l2.Addr(), cfg)
		if err != nil {
			t.Error(err)
			return
		}
		st2 := c2.OpenStream()
		st2.Write([]byte("early"), true)
		resp, _ = st2.ReadAll()
		c2.Close()
	})
	e.w.Run()
	if !bytes.Equal(resp, []byte("echo:early")) {
		t.Errorf("rejected 0-RTT data not replayed: got %q", resp)
	}
}

func TestLossRecoveryViaPTO(t *testing.T) {
	e := newEnv(11, 30*time.Millisecond, 0.10)
	l := e.startEchoServer(t, e.serverCfg())
	success := 0
	const attempts = 20
	e.w.Go(func() {
		for i := 0; i < attempts; i++ {
			c, err := Dial(e.client, l.Addr(), e.clientCfg())
			if err != nil {
				continue
			}
			st := c.OpenStream()
			st.Write([]byte("q"), true)
			if resp, ok := st.ReadAll(); ok && bytes.Equal(resp, []byte("echo:q")) {
				success++
			}
			c.Close()
		}
	})
	e.w.Run()
	if success < attempts*8/10 {
		t.Errorf("only %d/%d queries succeeded under 10%% loss", success, attempts)
	}
}

func TestConnectionMigration(t *testing.T) {
	e := newEnv(14, 40*time.Millisecond, 0)
	l := e.startEchoServer(t, e.serverCfg())
	var (
		got1, got2  []byte
		migrateTime time.Duration
		migrations  int
		txAfter     int
	)
	e.w.Go(func() {
		c, err := Dial(e.client, l.Addr(), e.clientCfg())
		if err != nil {
			t.Error(err)
			return
		}
		st := c.OpenStream()
		st.Write([]byte("before"), true)
		got1, _ = st.ReadAll()
		txBefore, _ := c.Stats()

		start := e.w.Now()
		if err := c.Migrate(); err != nil {
			t.Errorf("Migrate: %v", err)
			return
		}
		migrateTime = e.w.Now() - start
		migrations = c.Migrations()

		// The server must have rebound the connection to the new path:
		// a follow-up request flows over the migrated socket.
		st2 := c.OpenStream()
		st2.Write([]byte("after"), true)
		got2, _ = st2.ReadAll()
		txAfter, _ = c.Stats()
		if txAfter <= txBefore {
			t.Errorf("Stats did not accumulate across migration: before %d, after %d", txBefore, txAfter)
		}
		c.Close()
	})
	e.w.Run()
	if !bytes.Equal(got1, []byte("echo:before")) {
		t.Errorf("pre-migration echo: got %q", got1)
	}
	if !bytes.Equal(got2, []byte("echo:after")) {
		t.Errorf("post-migration echo: got %q", got2)
	}
	if migrations != 1 {
		t.Errorf("Migrations() = %d, want 1", migrations)
	}
	// Path validation is one round trip of PATH_CHALLENGE/PATH_RESPONSE.
	if migrateTime < e.rtt || migrateTime > e.rtt+10*time.Millisecond {
		t.Errorf("migration took %v, want ~%v (1 RTT)", migrateTime, e.rtt)
	}
}

func TestMigrationSurvivesChallengeLoss(t *testing.T) {
	// Even when packets on the new path are lost, the PTO machinery
	// retransmits PATH_CHALLENGE until validation completes.
	e := newEnv(15, 30*time.Millisecond, 0.15)
	l := e.startEchoServer(t, e.serverCfg())
	success := 0
	const attempts = 10
	e.w.Go(func() {
		for i := 0; i < attempts; i++ {
			c, err := Dial(e.client, l.Addr(), e.clientCfg())
			if err != nil {
				continue
			}
			if err := c.Migrate(); err != nil {
				c.Close()
				continue
			}
			st := c.OpenStream()
			st.Write([]byte("q"), true)
			if resp, ok := st.ReadAll(); ok && bytes.Equal(resp, []byte("echo:q")) {
				success++
			}
			c.Close()
		}
	})
	e.w.Run()
	if success < attempts*7/10 {
		t.Errorf("only %d/%d migrated queries succeeded under 15%% loss", success, attempts)
	}
}

func TestDraftVersionsWork(t *testing.T) {
	for _, v := range []uint32{Version1, VersionDraft34, VersionDraft32, VersionDraft29} {
		e := newEnv(12, 20*time.Millisecond, 0)
		scfg := e.serverCfg()
		scfg.Versions = []uint32{v}
		l := e.startEchoServer(t, scfg)
		ccfg := e.clientCfg()
		ccfg.Versions = []uint32{v}
		var got []byte
		e.w.Go(func() {
			c, err := Dial(e.client, l.Addr(), ccfg)
			if err != nil {
				t.Errorf("%s: %v", VersionName(v), err)
				return
			}
			st := c.OpenStream()
			st.Write([]byte("x"), true)
			got, _ = st.ReadAll()
			c.Close()
		})
		e.w.Run()
		if !bytes.Equal(got, []byte("echo:x")) {
			t.Errorf("%s: echo failed, got %q", VersionName(v), got)
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= 1<<62 - 1 // QUIC varints carry 62 bits
		enc := appendVarint(nil, v)
		if len(enc) != varintLen(v) {
			return false
		}
		got, n, err := readVarint(enc)
		return err == nil && n == len(enc) && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFrameParseNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("parseFrames panicked on %x: %v", b, p)
			}
		}()
		parseFrames(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []*frame{
		{kind: frPing},
		{kind: frAck, largestAcked: 100, firstRange: 10},
		{kind: frCrypto, offset: 5, data: []byte("crypto")},
		{kind: frNewToken, token: []byte("token-bytes")},
		{kind: frStreamBase, streamID: 4, offset: 9, data: []byte("stream"), fin: true},
		{kind: frConnClose, errorCode: 7, reason: "bye"},
		{kind: frHandshakeDone},
	}
	var buf []byte
	for _, f := range frames {
		if got := frameWireLen(f); got != len(appendFrame(nil, f)) {
			t.Errorf("frameWireLen(%#x) = %d, encoded %d", f.kind, got, len(appendFrame(nil, f)))
		}
		buf = appendFrame(buf, f)
	}
	got, err := parseFrames(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("parsed %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		a, b := frames[i], got[i]
		if a.kind != b.kind || a.largestAcked != b.largestAcked || a.offset != b.offset ||
			a.streamID != b.streamID || a.fin != b.fin || !bytes.Equal(a.data, b.data) ||
			!bytes.Equal(a.token, b.token) || a.reason != b.reason {
			t.Errorf("frame %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestTokenValidation(t *testing.T) {
	key := []byte("k")
	a1 := netip.MustParseAddr("10.0.0.1")
	a2 := netip.MustParseAddr("10.0.0.2")
	tok := mintToken(key, a1)
	if !validToken(key, tok, a1) {
		t.Error("valid token rejected")
	}
	if validToken(key, tok, a2) {
		t.Error("token valid for wrong address")
	}
	if validToken([]byte("other"), tok, a1) {
		t.Error("token valid under wrong key")
	}
	if validToken(key, nil, a1) {
		t.Error("nil token accepted")
	}
}
