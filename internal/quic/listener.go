package quic

import (
	"errors"
	"fmt"
	"net/netip"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

// udpOverhead is the per-datagram UDP header size counted as IP payload.
const udpOverhead = 8

// Dial establishes a QUIC connection and blocks until the handshake
// completes (one RTT with or without resumption; plus one RTT if the
// server requires Version Negotiation; plus one RTT if the server's
// certificate chain exceeds the amplification budget and no token was
// presented).
func Dial(host *netem.Host, raddr netip.AddrPort, cfg Config) (*Conn, error) {
	versions := cfg.versions()
	version := versions[0]
	vnHappened := false
	for attempt := 0; attempt < 4; attempt++ {
		c := dialOnce(host, raddr, cfg, version, vnHappened)
		err := c.WaitHandshake()
		if err == errVersionNegotiation {
			chosen, ok := pickVersion(versions, c.vnVersions)
			c.teardown(err)
			if !ok {
				return nil, errors.New("quic: no common version with server")
			}
			version = chosen
			vnHappened = true
			continue
		}
		if err != nil {
			c.teardown(err)
			return nil, err
		}
		return c, nil
	}
	return nil, errors.New("quic: dial failed after version negotiation")
}

// DialEarly starts a connection and returns before the handshake
// completes, so the caller can open streams and write 0-RTT data
// immediately. Use WaitHandshake to join. DialEarly does not handle
// Version Negotiation transparently: callers resuming a session are
// expected to offer the previously negotiated version first (cfg.Versions
// [0]), per the paper's methodology of caching the negotiated version
// alongside the session ticket.
func DialEarly(host *netem.Host, raddr netip.AddrPort, cfg Config) (*Conn, error) {
	return dialOnce(host, raddr, cfg, cfg.versions()[0], false), nil
}

func dialOnce(host *netem.Host, raddr netip.AddrPort, cfg Config, version uint32, vnHappened bool) *Conn {
	sock := host.Dial(netem.ProtoUDP, udpOverhead)
	c := newConn(host.World(), sock, true, raddr, true, cfg, version)
	c.host = host
	c.vnHappened = vnHappened
	if err := c.startClient(); err != nil {
		c.teardown(err)
		return c
	}
	host.World().Go(func() { c.recvLoop(sock) })
	return c
}

func pickVersion(offered, supported []uint32) (uint32, bool) {
	for _, o := range offered {
		for _, s := range supported {
			if o == s {
				return o, true
			}
		}
	}
	return 0, false
}

// Listener accepts QUIC connections on a UDP port.
type Listener struct {
	w    *sim.World
	sock *netem.Socket
	cfg  Config
	// conns routes datagrams by source address (the fast path); byCID
	// routes short-header packets from unknown addresses by their
	// destination connection ID, which is how a migrated client's new
	// path finds its connection (RFC 9000 §9).
	conns   map[netip.AddrPort]*Conn
	byCID   map[string]*Conn
	acceptQ *sim.Queue[*Conn]
	closed  bool
}

// Listen binds a QUIC listener. Connections are delivered to Accept once
// their handshake completes.
func Listen(host *netem.Host, port uint16, cfg Config) (*Listener, error) {
	sock, err := host.Listen(netem.ProtoUDP, port, udpOverhead)
	if err != nil {
		return nil, err
	}
	l := &Listener{
		w:       host.World(),
		sock:    sock,
		cfg:     cfg,
		conns:   make(map[netip.AddrPort]*Conn),
		byCID:   make(map[string]*Conn),
		acceptQ: sim.NewQueue[*Conn](host.World(), fmt.Sprintf("quic-listen:%d", port)),
	}
	l.w.Go(l.demux)
	return l, nil
}

// Accept blocks for the next handshake-complete connection.
func (l *Listener) Accept() (*Conn, bool) { return l.acceptQ.Pop() }

// Addr returns the bound address.
func (l *Listener) Addr() netip.AddrPort { return l.sock.LocalAddr() }

// Close stops the listener.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	l.sock.Close()
	l.acceptQ.Close()
}

func (l *Listener) demux() {
	for {
		d, ok := l.sock.Recv()
		if !ok {
			return
		}
		if d.Reject {
			// Middlebox rejection of one of our sends; a server has no
			// per-path state worth tearing down for it.
			continue
		}
		l.handleOne(d)
		// Nothing retains the datagram buffer past handleOne (connections
		// copy what they keep), so it goes back to the pool here.
		l.sock.Pool().Put(d.Payload)
	}
}

func (l *Listener) handleOne(d netem.Datagram) {
	if conn, ok := l.conns[d.Src]; ok {
		conn.handleDatagram(d)
		return
	}
	p, _, _, _, err := parseHeader(d.Payload)
	if err != nil {
		return
	}
	if p.ptype == ptOneRTT {
		// A short-header packet from an unknown address addressed to a
		// live connection's CID is a migrated client: rebind the
		// connection to the new path and let the packet (usually
		// carrying PATH_CHALLENGE) process normally, so the response
		// goes to the new address.
		conn, ok := l.byCID[string(p.dcid)]
		if !ok {
			return
		}
		if sp := conn.spaces[spcApp]; sp.recvdAny && p.pn <= sp.largest {
			// A reordered straggler from a retired path must not rebind
			// the connection backwards (RFC 9000 §9.3 only moves the
			// path on the highest-numbered non-probing packet). Process
			// it against the connection's current path.
			conn.handleDatagram(d)
			return
		}
		delete(l.conns, conn.peer)
		conn.peer = d.Src
		l.conns[d.Src] = conn
		// The path changed under the peer, so anything outstanding
		// toward the old address — typically a response the migrating
		// client will otherwise wait a probe timeout for — is lost
		// (RFC 9000 §9.4). Recover it onto the new path immediately,
		// mirroring what the migrating client does for its own
		// application space.
		conn.retransmitUnacked(spcApp)
		conn.handleDatagram(d)
		return
	}
	if !versionSupported(l.cfg.versions(), p.version) {
		vn := encodeVersionNegotiation(p.scid, p.dcid, l.cfg.versions())
		l.sock.Send(d.Src, vn)
		return
	}
	if p.ptype != ptInitial && p.ptype != ptZeroRTT {
		return
	}
	// A 0-RTT packet can outrun its Initial under reordering; it
	// carries the same original DCID, so the connection can be set
	// up from it and the packet parks in the undecryptable buffer
	// until the ClientHello arrives.
	c := newConn(l.w, l.sock, false, d.Src, false, l.cfg, p.version)
	c.engine = tlsmini.NewEngine(c.tlsConfig())
	c.dcid = append([]byte(nil), p.scid...)
	c.initialClient, c.initialServer = initialSecrets(p.dcid)
	if len(l.cfg.TokenKey) > 0 && validToken(l.cfg.TokenKey, p.token, d.Src.Addr()) {
		c.validated = true
	}
	c.onClose = func() {
		// c.peer tracks migrations, so delete by its current value.
		delete(l.conns, c.peer)
		delete(l.byCID, string(c.scid))
	}
	l.conns[d.Src] = c
	l.byCID[string(c.scid)] = c
	// Hand the connection to Accept immediately so servers can read
	// 0-RTT stream data before the handshake completes; failed
	// handshakes tear the connection (and its streams) down.
	l.acceptQ.Push(c)
	c.handleDatagram(d)
}

func versionSupported(set []uint32, v uint32) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}
