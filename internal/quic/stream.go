package quic

import (
	"errors"

	"repro/internal/sim"
)

// Stream is a bidirectional QUIC stream. RFC 9250 maps one DNS query onto
// one client-initiated bidirectional stream.
type Stream struct {
	conn *Conn
	id   uint64

	sendOffset uint64
	sentFIN    bool
	earlyData  []*frame // frames sent as 0-RTT, kept for replay on reject

	recvNext    uint64
	recvPending map[uint64]*frame
	finalSize   uint64
	hasFinal    bool
	readQ       *sim.Queue[[]byte]
	done        bool
}

func newStream(c *Conn, id uint64) *Stream {
	return &Stream{
		conn:        c,
		id:          id,
		recvPending: make(map[uint64]*frame),
		// Static name: the id only matters in deadlock diagnostics, and
		// formatting it would allocate per stream (= per DNS query).
		readQ: sim.NewQueue[[]byte](c.w, "quic-stream"),
	}
}

// ID returns the stream identifier.
func (s *Stream) ID() uint64 { return s.id }

// Write queues p on the stream; fin marks the end of the stream. Writes
// before handshake completion are sent as 0-RTT when the connection
// offered it (and replayed as 1-RTT if the server rejects).
func (s *Stream) Write(p []byte, fin bool) error {
	if s.conn.closed {
		return errors.New("quic: connection closed")
	}
	if s.sentFIN {
		return errors.New("quic: write after FIN")
	}
	const chunk = 1000
	var frames []*frame
	for off := 0; off < len(p) || (fin && off == 0 && len(p) == 0); off += chunk {
		end := off + chunk
		if end > len(p) {
			end = len(p)
		}
		f := &frame{
			kind:     frStreamBase,
			streamID: s.id,
			offset:   s.sendOffset,
			data:     append([]byte(nil), p[off:end]...),
			fin:      fin && end == len(p),
		}
		s.sendOffset += uint64(end - off)
		frames = append(frames, f)
		if len(p) == 0 {
			break
		}
	}
	if fin {
		s.sentFIN = true
	}
	if !s.conn.hsComplete && s.conn.isClient && s.conn.engine.EarlyDataOffered() {
		s.earlyData = append(s.earlyData, frames...)
		s.conn.registerEarlyStream(s)
	}
	s.conn.sendInSpace(spcApp, frames)
	return nil
}

// replayEarlyData retransmits 0-RTT data as 1-RTT after a rejection.
func (s *Stream) replayEarlyData() {
	if len(s.earlyData) == 0 {
		return
	}
	frames := s.earlyData
	s.earlyData = nil
	s.conn.sendInSpace(spcApp, frames)
}

// receive ingests a STREAM frame, delivering in-order data to readers.
func (s *Stream) receive(f *frame) {
	if s.done {
		return
	}
	end := f.offset + uint64(len(f.data))
	if f.fin {
		s.finalSize = end
		s.hasFinal = true
	}
	if f.offset > s.recvNext {
		s.recvPending[f.offset] = f
	} else if end > s.recvNext {
		skip := s.recvNext - f.offset
		s.push(f.data[skip:])
	} else if len(f.data) == 0 && f.fin {
		// FIN-only frame at the current offset.
	}
	for {
		nf, ok := s.recvPending[s.recvNext]
		if !ok {
			break
		}
		delete(s.recvPending, s.recvNext)
		s.push(nf.data)
	}
	if s.hasFinal && s.recvNext >= s.finalSize {
		s.readQ.Close()
	}
}

func (s *Stream) push(data []byte) {
	s.recvNext += uint64(len(data))
	if len(data) > 0 {
		s.readQ.Push(data)
	}
}

// Read blocks for the next chunk; ok is false once the peer's FIN has
// been consumed or the stream shut down.
func (s *Stream) Read() ([]byte, bool) { return s.readQ.Pop() }

// ReadAll collects the stream's full content until FIN. ok is false if
// the stream was shut down before the FIN arrived.
func (s *Stream) ReadAll() ([]byte, bool) {
	var out []byte
	for {
		chunk, ok := s.readQ.Pop()
		if !ok {
			return out, s.hasFinal && s.recvNext >= s.finalSize
		}
		out = append(out, chunk...)
		if s.hasFinal && s.recvNext >= s.finalSize && s.readQ.Len() == 0 {
			return out, true
		}
	}
}

func (s *Stream) shutdown() {
	if s.done {
		return
	}
	s.done = true
	s.readQ.Close()
}
