package quic

import (
	"errors"
	"fmt"
)

// Frame type bytes (RFC 9000 §19, simplified set).
const (
	frPadding       = 0x00
	frPing          = 0x01
	frAck           = 0x02
	frCrypto        = 0x06
	frNewToken      = 0x07
	frStreamBase    = 0x08 // 0x08..0x0f with OFF/LEN/FIN bits
	frPathChallenge = 0x1a
	frPathResponse  = 0x1b
	frConnClose     = 0x1c
	frHandshakeDone = 0x1e
)

// pathDataLen is the fixed PATH_CHALLENGE/PATH_RESPONSE payload size
// (RFC 9000 §19.17).
const pathDataLen = 8

// frame is the decoded representation of any supported frame.
type frame struct {
	kind byte

	// ACK
	largestAcked uint64
	firstRange   uint64

	// CRYPTO / STREAM
	offset uint64
	data   []byte

	// STREAM
	streamID uint64
	fin      bool

	// NEW_TOKEN
	token []byte

	// PATH_CHALLENGE / PATH_RESPONSE (8 opaque bytes)
	pathData [pathDataLen]byte

	// CONNECTION_CLOSE
	errorCode uint64
	reason    string

	// PADDING
	padLen int
}

// ackEliciting reports whether the frame requires the peer to send an
// acknowledgement.
func (f *frame) ackEliciting() bool {
	switch f.kind {
	case frAck, frPadding, frConnClose:
		return false
	}
	return true
}

// retransmittable reports whether the frame's content must be recovered
// on loss. PATH_CHALLENGE is: a migrating endpoint must keep probing
// the new path until it is validated. PATH_RESPONSE is not — RFC 9000
// §13.3 forbids retransmitting responses; a lost one is recovered by
// the peer's retransmitted challenge.
func (f *frame) retransmittable() bool {
	switch f.kind {
	case frCrypto, frNewToken, frHandshakeDone, frPing, frPathChallenge:
		return true
	case frStreamBase:
		return true
	}
	return false
}

func appendFrame(b []byte, f *frame) []byte {
	switch f.kind {
	case frPadding:
		for i := 0; i < f.padLen; i++ {
			b = append(b, frPadding)
		}
		return b
	case frPing:
		return append(b, frPing)
	case frAck:
		b = append(b, frAck)
		b = appendVarint(b, f.largestAcked)
		b = appendVarint(b, 0) // ack delay
		b = appendVarint(b, 0) // additional range count
		b = appendVarint(b, f.firstRange)
		return b
	case frCrypto:
		b = append(b, frCrypto)
		b = appendVarint(b, f.offset)
		b = appendVarint(b, uint64(len(f.data)))
		return append(b, f.data...)
	case frNewToken:
		b = append(b, frNewToken)
		b = appendVarint(b, uint64(len(f.token)))
		return append(b, f.token...)
	case frStreamBase:
		t := byte(frStreamBase | 0x04 | 0x02) // OFF and LEN always present
		if f.fin {
			t |= 0x01
		}
		b = append(b, t)
		b = appendVarint(b, f.streamID)
		b = appendVarint(b, f.offset)
		b = appendVarint(b, uint64(len(f.data)))
		return append(b, f.data...)
	case frPathChallenge, frPathResponse:
		b = append(b, f.kind)
		return append(b, f.pathData[:]...)
	case frConnClose:
		b = append(b, frConnClose)
		b = appendVarint(b, f.errorCode)
		b = appendVarint(b, 0) // offending frame type
		b = appendVarint(b, uint64(len(f.reason)))
		return append(b, f.reason...)
	case frHandshakeDone:
		return append(b, frHandshakeDone)
	}
	panic(fmt.Sprintf("quic: cannot encode frame kind %#x", f.kind))
}

func frameWireLen(f *frame) int {
	switch f.kind {
	case frPadding:
		return f.padLen
	case frPing, frHandshakeDone:
		return 1
	case frAck:
		return 1 + varintLen(f.largestAcked) + 1 + 1 + varintLen(f.firstRange)
	case frCrypto:
		return 1 + varintLen(f.offset) + varintLen(uint64(len(f.data))) + len(f.data)
	case frNewToken:
		return 1 + varintLen(uint64(len(f.token))) + len(f.token)
	case frPathChallenge, frPathResponse:
		return 1 + pathDataLen
	case frStreamBase:
		return 1 + varintLen(f.streamID) + varintLen(f.offset) +
			varintLen(uint64(len(f.data))) + len(f.data)
	case frConnClose:
		return 1 + varintLen(f.errorCode) + 1 + varintLen(uint64(len(f.reason))) + len(f.reason)
	}
	return 0
}

var errFrame = errors.New("quic: malformed frame")

// parseFrames decodes all frames in a packet payload.
func parseFrames(b []byte) ([]*frame, error) {
	var out []*frame
	for len(b) > 0 {
		t := b[0]
		switch {
		case t == frPadding:
			// Coalesce a run of padding into one frame.
			n := 0
			for n < len(b) && b[n] == frPadding {
				n++
			}
			out = append(out, &frame{kind: frPadding, padLen: n})
			b = b[n:]
		case t == frPing:
			out = append(out, &frame{kind: frPing})
			b = b[1:]
		case t == frAck:
			b = b[1:]
			f := &frame{kind: frAck}
			var n int
			var err error
			if f.largestAcked, n, err = readVarint(b); err != nil {
				return nil, err
			}
			b = b[n:]
			if _, n, err = readVarint(b); err != nil { // delay
				return nil, err
			}
			b = b[n:]
			var rangeCount uint64
			if rangeCount, n, err = readVarint(b); err != nil {
				return nil, err
			}
			b = b[n:]
			if f.firstRange, n, err = readVarint(b); err != nil {
				return nil, err
			}
			b = b[n:]
			for i := uint64(0); i < rangeCount; i++ {
				// gap + range, both skipped (we never send them).
				for j := 0; j < 2; j++ {
					if _, n, err = readVarint(b); err != nil {
						return nil, err
					}
					b = b[n:]
				}
			}
			out = append(out, f)
		case t == frCrypto:
			b = b[1:]
			f := &frame{kind: frCrypto}
			var n int
			var err error
			if f.offset, n, err = readVarint(b); err != nil {
				return nil, err
			}
			b = b[n:]
			var ln uint64
			if ln, n, err = readVarint(b); err != nil {
				return nil, err
			}
			b = b[n:]
			if uint64(len(b)) < ln {
				return nil, errFrame
			}
			f.data = append([]byte(nil), b[:ln]...)
			b = b[ln:]
			out = append(out, f)
		case t == frNewToken:
			b = b[1:]
			f := &frame{kind: frNewToken}
			ln, n, err := readVarint(b)
			if err != nil {
				return nil, err
			}
			b = b[n:]
			if uint64(len(b)) < ln {
				return nil, errFrame
			}
			f.token = append([]byte(nil), b[:ln]...)
			b = b[ln:]
			out = append(out, f)
		case t >= frStreamBase && t <= frStreamBase|0x07:
			hasOff := t&0x04 != 0
			hasLen := t&0x02 != 0
			f := &frame{kind: frStreamBase, fin: t&0x01 != 0}
			b = b[1:]
			var n int
			var err error
			if f.streamID, n, err = readVarint(b); err != nil {
				return nil, err
			}
			b = b[n:]
			if hasOff {
				if f.offset, n, err = readVarint(b); err != nil {
					return nil, err
				}
				b = b[n:]
			}
			ln := uint64(len(b))
			if hasLen {
				if ln, n, err = readVarint(b); err != nil {
					return nil, err
				}
				b = b[n:]
			}
			if uint64(len(b)) < ln {
				return nil, errFrame
			}
			f.data = append([]byte(nil), b[:ln]...)
			b = b[ln:]
			out = append(out, f)
		case t == frPathChallenge || t == frPathResponse:
			if len(b) < 1+pathDataLen {
				return nil, errFrame
			}
			f := &frame{kind: t}
			copy(f.pathData[:], b[1:1+pathDataLen])
			b = b[1+pathDataLen:]
			out = append(out, f)
		case t == frConnClose:
			b = b[1:]
			f := &frame{kind: frConnClose}
			var n int
			var err error
			if f.errorCode, n, err = readVarint(b); err != nil {
				return nil, err
			}
			b = b[n:]
			if _, n, err = readVarint(b); err != nil {
				return nil, err
			}
			b = b[n:]
			var ln uint64
			if ln, n, err = readVarint(b); err != nil {
				return nil, err
			}
			b = b[n:]
			if uint64(len(b)) < ln {
				return nil, errFrame
			}
			f.reason = string(b[:ln])
			b = b[ln:]
			out = append(out, f)
		case t == frHandshakeDone:
			out = append(out, &frame{kind: frHandshakeDone})
			b = b[1:]
		default:
			return nil, fmt.Errorf("quic: unknown frame type %#x", t)
		}
	}
	return out, nil
}
