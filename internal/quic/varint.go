// Package quic implements a QUIC v1-shaped transport over netem,
// reproducing every QUIC mechanism the paper's measurements depend on:
//
//   - the combined 1-RTT transport+crypto handshake (via internal/tlsmini
//     carried in CRYPTO frames),
//   - 1200-byte padding of datagrams carrying Initial packets,
//   - the 3x traffic-amplification limit on unvalidated servers (which
//     delays handshakes with large certificate chains by one RTT unless
//     an address-validation token is presented — the paper's §3.1
//     preliminary-work comparison),
//   - NEW_TOKEN address validation and Version Negotiation (both cached
//     by clients across connections, per the DoQ RFC 9250 guidance),
//   - PTO-based loss recovery with the ~1s initial timeout (RFC 9002),
//   - session resumption and 0-RTT through the TLS engine,
//   - bidirectional streams (one DNS query per stream, per RFC 9250).
//
// Packets are AEAD-protected with keys derived per epoch; header
// protection is not modeled (it does not affect timing or sizes beyond a
// few bytes).
package quic

import "errors"

// AppendVarint appends QUIC's variable-length integer encoding of v
// (RFC 9000 §16): the two most significant bits of the first byte give
// the length. Exported for internal/h3, whose frames reuse the QUIC
// varint exactly as RFC 9114 specifies.
func AppendVarint(b []byte, v uint64) []byte { return appendVarint(b, v) }

// ReadVarint decodes a varint from b, returning the value and the number
// of bytes consumed.
func ReadVarint(b []byte) (uint64, int, error) { return readVarint(b) }

// VarintLen returns the encoded size of v.
func VarintLen(v uint64) int { return varintLen(v) }

// Varint implements QUIC's variable-length integer encoding (RFC 9000
// §16): the two most significant bits of the first byte give the length.
func appendVarint(b []byte, v uint64) []byte {
	switch {
	case v < 1<<6:
		return append(b, byte(v))
	case v < 1<<14:
		return append(b, byte(v>>8)|0x40, byte(v))
	case v < 1<<30:
		return append(b, byte(v>>24)|0x80, byte(v>>16), byte(v>>8), byte(v))
	default:
		return append(b, byte(v>>56)|0xc0, byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

var errVarint = errors.New("quic: truncated varint")

// readVarint decodes a varint from b, returning the value and bytes
// consumed.
func readVarint(b []byte) (uint64, int, error) {
	if len(b) == 0 {
		return 0, 0, errVarint
	}
	n := 1 << (b[0] >> 6)
	if len(b) < n {
		return 0, 0, errVarint
	}
	v := uint64(b[0] & 0x3f)
	for i := 1; i < n; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v, n, nil
}

func varintLen(v uint64) int {
	switch {
	case v < 1<<6:
		return 1
	case v < 1<<14:
		return 2
	case v < 1<<30:
		return 4
	default:
		return 8
	}
}
