package quic

import (
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"net/netip"
	"slices"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

// Config parameterizes connections on either side.
type Config struct {
	ALPN       []string
	ServerName string

	// TLS state.
	Identity              *tlsmini.Identity
	SessionCache          *tlsmini.SessionCache
	TicketStore           *tlsmini.TicketStore
	AcceptEarlyData       bool
	OfferEarlyData        bool
	DisableSessionTickets bool
	TLSVersion            tlsmini.Version

	// Versions lists the supported wire versions: for servers the
	// acceptance set, for clients the preference order (first is tried
	// initially). Defaults to [Version1].
	Versions []uint32

	// Token is an address-validation token from a prior connection
	// (client). Presenting it lifts the server's amplification limit
	// immediately, per RFC 9250's recommendation to reuse tokens
	// alongside session resumption.
	Token []byte
	// TokenKey mints and validates tokens (server). Nil disables
	// NEW_TOKEN issuance.
	TokenKey []byte

	Rand *rand.Rand
	Now  func() time.Duration
}

func (c *Config) versions() []uint32 {
	if len(c.Versions) == 0 {
		return []uint32{Version1}
	}
	return c.Versions
}

// Loss recovery constants (RFC 9002 flavoured). The initial PTO of one
// second is the "transport layer retransmission with initial timeouts of
// 1 second" the paper contrasts with DoUDP's 5-second stub retry.
//
// Unlike TCP's RFC 6298 RTO (which common stacks floor at 200ms —
// tcpsim.minRTO), RFC 9002 imposes no minimum on the PTO beyond timer
// granularity (kGranularity, 1ms): once an RTT sample exists the probe
// timeout tracks 2*srtt directly. This is one of the structural reasons
// DoQ recovers from loss bursts faster than the TCP-based transports on
// short-RTT paths (E20): a nearby resolver's lost datagram is probed
// after tens of milliseconds, where TCP still waits out its floor.
const (
	initialPTO = 1 * time.Second
	minPTO     = 10 * time.Millisecond
	maxPTO     = 60 * time.Second
	maxPTOs    = 8
)

// Packet number spaces.
const (
	spcInitial = iota
	spcHandshake
	spcApp
	numSpaces
)

func spaceOf(t packetType) int {
	switch t {
	case ptInitial:
		return spcInitial
	case ptHandshake:
		return spcHandshake
	default:
		return spcApp
	}
}

type sentPacket struct {
	frames       []*frame
	timeSent     time.Duration
	ackEliciting bool
}

type pnSpace struct {
	nextPN    uint64
	recvd     map[uint64]bool
	largest   uint64
	recvdAny  bool
	ackQueued bool
	sent      map[uint64]*sentPacket

	cryptoOutOffset uint64
	cryptoInNext    uint64
	cryptoPending   map[uint64][]byte
	hsBuf           []byte
}

func newSpace() *pnSpace {
	return &pnSpace{
		recvd:         make(map[uint64]bool),
		sent:          make(map[uint64]*sentPacket),
		cryptoPending: make(map[uint64][]byte),
	}
}

// Conn is a QUIC connection endpoint.
type Conn struct {
	w        *sim.World
	sock     *netem.Socket
	owned    bool
	peer     netip.AddrPort
	isClient bool
	cfg      Config

	// host lets a dialed client open a replacement socket for
	// connection migration; nil for server connections.
	host *netem.Host
	// prevTx/prevRx accumulate the byte counters of sockets retired by
	// migration, so Stats spans the connection, not the current path.
	prevTx, prevRx int
	// pathChallenge is the outstanding PATH_CHALLENGE payload;
	// pathValidated resolves when the matching PATH_RESPONSE arrives.
	pathChallenge [pathDataLen]byte
	pathValidated *sim.Future[bool]
	migrations    int

	version uint32
	scid    []byte
	dcid    []byte

	engine        *tlsmini.Engine
	initialClient []byte // Initial-space secrets
	initialServer []byte

	spaces [numSpaces]*pnSpace

	streams      map[uint64]*Stream
	nextStreamID uint64
	acceptQ      *sim.Queue[*Stream]
	earlyStreams []*Stream // streams with data sent as 0-RTT

	// Address validation / anti-amplification (server).
	validated  bool
	recvdBytes int
	sentBytes  int
	ampQueue   [][]byte

	ptoTimer sim.Timer
	ptoFn    func() // onPTO, bound once so re-arming allocates nothing
	pto      time.Duration
	ptoCount int
	// ampPTOs counts probe timeouts fired while amplification-blocked.
	// Those don't burn the regular PTO budget (the server is waiting,
	// not losing packets), but they need their own cap: without one an
	// amplification-starved server whose client has given up re-arms
	// its probe timer forever, and the simulation never quiesces.
	ampPTOs int
	srtt    time.Duration

	dialResult *sim.Future[error]

	// Packet-protection caches: amortize the HKDF expansions and AES key
	// schedule across packets sealed/opened under the same secret.
	sealer tlsmini.AEADCache
	opener tlsmini.AEADCache
	// sendPlans/planFrames are sendInSpace's packet-plan scratch,
	// reused across calls; appendPacket copies what it retains.
	sendPlans  []sendPlan
	planFrames []*frame
	// padFrame is the reusable PADDING frame appended to Initial
	// datagrams; it is never ack-eliciting or retransmittable, so no
	// packet record retains it.
	padFrame frame
	// encBuf is the handshake-message encode scratch for
	// sendCryptoFlight; CRYPTO frames copy their chunks out of it.
	encBuf []byte
	// plainScratch is the reusable plaintext assembly buffer for
	// appendPacket (leased lazily from the socket pool, kept for the
	// connection's lifetime, returned at teardown).
	plainScratch []byte
	vnVersions   []uint32 // set when a Version Negotiation arrived
	vnHappened   bool
	newToken     []byte // token received from the server

	hsComplete   bool
	hsTx, hsRx   int
	hsCompleteAt time.Duration
	startedAt    time.Duration

	// undecryptable buffers packets that arrived before their keys
	// (reordering can deliver Handshake packets before the Initial that
	// establishes the handshake secrets); they are retried whenever the
	// key schedule advances.
	undecryptable []storedPacket

	onClose  func()
	closed   bool
	closeErr error
}

type storedPacket struct {
	p      packet
	sealed []byte
	aad    []byte
}

func newConn(w *sim.World, sock *netem.Socket, owned bool, peer netip.AddrPort, isClient bool, cfg Config, version uint32) *Conn {
	c := &Conn{
		w:          w,
		sock:       sock,
		owned:      owned,
		peer:       peer,
		isClient:   isClient,
		cfg:        cfg,
		version:    version,
		streams:    make(map[uint64]*Stream),
		acceptQ:    sim.NewQueue[*Stream](w, "quic-accept"),
		pto:        initialPTO,
		dialResult: sim.NewFuture[error](w, "quic-dial"),
		startedAt:  w.Now(),
	}
	for i := range c.spaces {
		c.spaces[i] = newSpace()
	}
	c.ptoFn = c.onPTO
	c.scid = make([]byte, cidLen)
	cfg.Rand.Read(c.scid)
	return c
}

// --- Public API ---

// WaitHandshake blocks until the handshake completes or fails.
func (c *Conn) WaitHandshake() error {
	err, ok := c.dialResult.Wait()
	if !ok {
		return errors.New("quic: connection aborted")
	}
	return err
}

// Version returns the negotiated wire version.
func (c *Conn) Version() uint32 { return c.version }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() netip.AddrPort { return c.peer }

// ALPN returns the negotiated application protocol.
func (c *Conn) ALPN() string { return c.engine.NegotiatedALPN() }

// UsedResumption reports whether the TLS session was resumed.
func (c *Conn) UsedResumption() bool { return c.engine.UsedResumption() }

// EarlyDataAccepted reports whether 0-RTT data was accepted.
func (c *Conn) EarlyDataAccepted() bool { return c.engine.EarlyDataAccepted() }

// VersionNegotiated reports whether a Version Negotiation round trip
// preceded this connection.
func (c *Conn) VersionNegotiated() bool { return c.vnHappened }

// NewToken returns the address-validation token received from the server
// (nil until the server issues one).
func (c *Conn) NewToken() []byte { return c.newToken }

// TLSVersion returns the negotiated TLS version.
func (c *Conn) TLSVersion() tlsmini.Version { return c.engine.NegotiatedVersion() }

// Stats returns total IP payload bytes sent and received on this
// connection (client side; includes the 8-byte UDP header per
// datagram, matching the paper's accounting). Counters span sockets
// retired by Migrate.
func (c *Conn) Stats() (tx, rx int) {
	return c.prevTx + c.sock.TxBytes, c.prevRx + c.sock.RxBytes
}

// Migrations reports how many times the connection migrated paths.
func (c *Conn) Migrations() int { return c.migrations }

// HandshakeStats returns the bytes exchanged up to handshake completion.
func (c *Conn) HandshakeStats() (tx, rx int) { return c.hsTx, c.hsRx }

// HandshakeTime returns how long the handshake took.
func (c *Conn) HandshakeTime() time.Duration { return c.hsCompleteAt - c.startedAt }

// OpenStream opens the next client-initiated bidirectional stream. If the
// handshake is still in flight and 0-RTT was offered, data written to the
// stream is sent as 0-RTT.
func (c *Conn) OpenStream() *Stream {
	id := c.nextStreamID
	c.nextStreamID += 4
	s := newStream(c, id)
	c.streams[id] = s
	return s
}

// AcceptStream blocks for the next peer-initiated stream.
func (c *Conn) AcceptStream() (*Stream, bool) { return c.acceptQ.Pop() }

func (c *Conn) registerEarlyStream(s *Stream) {
	for _, e := range c.earlyStreams {
		if e == s {
			return
		}
	}
	c.earlyStreams = append(c.earlyStreams, s)
}

// Close sends CONNECTION_CLOSE and tears the connection down.
func (c *Conn) Close() { c.CloseWithError(0, "") }

// CloseWithError sends CONNECTION_CLOSE with the given code and reason.
func (c *Conn) CloseWithError(code uint64, reason string) {
	if c.closed {
		return
	}
	space := spcApp
	if !c.hsComplete {
		space = spcInitial
	}
	c.sendInSpace(space, []*frame{{kind: frConnClose, errorCode: code, reason: reason}})
	c.teardown(nil)
}

func (c *Conn) teardown(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = err
	c.ptoTimer.Stop()
	c.ptoTimer = sim.Timer{}
	if c.pathValidated != nil {
		c.pathValidated.Fail()
		c.pathValidated = nil
	}
	for _, id := range slices.Sorted(maps.Keys(c.streams)) {
		c.streams[id].shutdown()
	}
	c.acceptQ.Close()
	if !c.hsComplete {
		if err == nil {
			err = errors.New("quic: connection closed during handshake")
		}
		c.dialResult.Resolve(err)
	}
	if c.owned {
		c.sock.Close()
	}
	c.sock.Pool().Put(c.plainScratch)
	c.plainScratch = nil
	if c.onClose != nil {
		c.onClose()
	}
}

// --- Handshake driving ---

func (c *Conn) tlsConfig() tlsmini.Config {
	return tlsmini.Config{
		IsClient:              c.isClient,
		ServerName:            c.cfg.ServerName,
		ALPN:                  c.cfg.ALPN,
		Identity:              c.cfg.Identity,
		Version:               c.cfg.TLSVersion,
		SessionCache:          c.cfg.SessionCache,
		TicketStore:           c.cfg.TicketStore,
		DisableSessionTickets: c.cfg.DisableSessionTickets,
		AcceptEarlyData:       c.cfg.AcceptEarlyData,
		OfferEarlyData:        c.cfg.OfferEarlyData,
		Rand:                  c.cfg.Rand,
		Now:                   c.cfg.Now,
	}
}

// startClient sends the first flight.
func (c *Conn) startClient() error {
	c.engine = tlsmini.NewEngine(c.tlsConfig())
	c.dcid = make([]byte, cidLen)
	c.cfg.Rand.Read(c.dcid)
	c.initialClient, c.initialServer = initialSecrets(c.dcid)
	flight, err := c.engine.Start()
	if err != nil {
		return err
	}
	c.sendCryptoFlight(flight)
	return nil
}

// sendCryptoFlight maps TLS messages to CRYPTO frames in their spaces and
// transmits them.
func (c *Conn) sendCryptoFlight(msgs []tlsmini.Message) {
	perSpace := map[int][]*frame{}
	order := []int{}
	for _, m := range msgs {
		var space int
		switch m.Epoch {
		case tlsmini.EpochInitial:
			space = spcInitial
		case tlsmini.EpochHandshake:
			space = spcHandshake
		default:
			space = spcApp
		}
		c.encBuf = tlsmini.AppendMessage(c.encBuf[:0], m)
		enc := c.encBuf
		sp := c.spaces[space]
		// Chunk the crypto stream.
		const chunk = 1000
		for off := 0; off < len(enc); off += chunk {
			end := off + chunk
			if end > len(enc) {
				end = len(enc)
			}
			f := &frame{kind: frCrypto, offset: sp.cryptoOutOffset, data: append([]byte(nil), enc[off:end]...)}
			sp.cryptoOutOffset += uint64(end - off)
			if perSpace[space] == nil {
				order = append(order, space)
			}
			perSpace[space] = append(perSpace[space], f)
		}
	}
	for _, space := range order {
		c.sendInSpace(space, perSpace[space])
	}
}

// --- Packetization and transmission ---

// maxPlain is the plaintext budget per packet, leaving room for the
// header and AEAD tag.
const maxPlain = maxDatagram - 60 - tlsmini.AEADOverhead

// sendInSpace packs frames into packets in the given space and transmits
// them (coalescing into datagrams, padding Initial datagrams).
//
//simlint:hotpath
func (c *Conn) sendInSpace(space int, frames []*frame) {
	if c.closed && frames[0].kind != frConnClose {
		return
	}
	plans := c.sendPlans[:0]
	pf := c.planFrames[:0]
	cur := sendPlan{}
	for _, f := range frames {
		l := frameWireLen(f)
		if cur.plain > 0 && cur.plain+l > maxPlain {
			plans = append(plans, cur)
			cur = sendPlan{lo: len(pf), hi: len(pf)}
		}
		pf = append(pf, f)
		cur.hi = len(pf)
		cur.plain += l
	}
	if cur.plain > 0 || cur.hi > cur.lo {
		plans = append(plans, cur)
	}

	// Group plans into datagrams. The datagram buffer is leased from the
	// socket pool; sendDatagram transfers its ownership to the network.
	pool := c.sock.Pool()
	var dgram []byte
	hasInitial := false
	//simlint:allow hotalloc flush never escapes sendInSpace, so its captures stay on the stack (allocs guarded by TestPooledDatagramPathZeroAlloc)
	flush := func() {
		if len(dgram) == 0 {
			return
		}
		c.sendDatagram(dgram)
		dgram = nil
		hasInitial = false
	}
	for i, p := range plans {
		est := p.plain + 60 + tlsmini.AEADOverhead
		if len(dgram) > 0 && len(dgram)+est > maxDatagram {
			flush()
		}
		last := i == len(plans)-1
		pad := 0
		if (space == spcInitial || hasInitial) && last {
			// Datagrams carrying Initial packets are padded to 1200.
			pad = maxDatagram - len(dgram) - est
			if pad < 0 {
				pad = 0
			}
		}
		if dgram == nil {
			dgram = pool.Get(maxDatagram)
		}
		dgram = c.appendPacket(dgram, space, pf[p.lo:p.hi], pad)
		if space == spcInitial {
			hasInitial = true
		}
		if len(dgram) >= maxDatagram-80 {
			flush()
		}
	}
	flush()
	// A leased buffer that ended up empty (every packet dropped for lack
	// of keys) goes back to the pool.
	pool.Put(dgram)
	c.sendPlans = plans[:0]
	c.planFrames = pf[:0]
}

// sendPlan is one packet's frame range in the planFrames scratch plus
// its plaintext size.
type sendPlan struct{ lo, hi, plain int }

func countRetransmittable(frames []*frame) int {
	n := 0
	for _, f := range frames {
		if f.retransmittable() {
			n++
		}
	}
	return n
}

// appendPacket assigns a packet number, seals the frames, appends the
// finished packet to dst, and records it for loss recovery. pad adds
// that many PADDING bytes. When the space's keys are not yet available
// the packet is dropped and dst is returned unchanged (the packet
// number is still consumed, matching RFC-style monotonic numbering).
//
//simlint:hotpath
func (c *Conn) appendPacket(dst []byte, space int, frames []*frame, pad int) []byte {
	sp := c.spaces[space]
	pn := sp.nextPN
	sp.nextPN++

	if c.plainScratch == nil {
		c.plainScratch = c.sock.Pool().Get(maxDatagram)
	}
	plain := c.plainScratch[:0]
	ackEliciting := false
	for _, f := range frames {
		plain = appendFrame(plain, f)
		if f.ackEliciting() {
			ackEliciting = true
		}
	}
	if pad > 0 {
		// PADDING is neither ack-eliciting nor retransmittable, so it
		// can live in a reusable frame outside the frames slice.
		c.padFrame = frame{kind: frPadding, padLen: pad}
		plain = appendFrame(plain, &c.padFrame)
	}
	c.plainScratch = plain[:0] // keep (possibly grown) scratch for reuse

	var ptype packetType
	var secret []byte
	switch space {
	case spcInitial:
		ptype = ptInitial
		if c.isClient {
			secret = c.initialClient
		} else {
			secret = c.initialServer
		}
	case spcHandshake:
		ptype = ptHandshake
		secret = c.engine.TrafficSecret(tlsmini.EpochHandshake, c.isClient)
	default:
		if c.isClient && !c.hsComplete && c.engine.EarlyDataOffered() {
			ptype = ptZeroRTT
			secret = c.engine.TrafficSecret(tlsmini.EpochEarly, true)
		} else {
			ptype = ptOneRTT
			secret = c.engine.TrafficSecret(tlsmini.EpochApp, c.isClient)
		}
	}
	if secret == nil {
		// Keys not available (e.g. 0-RTT without early keys): drop.
		return dst
	}
	var token []byte
	if ptype == ptInitial && c.isClient {
		token = c.cfg.Token
	}
	sealedLen := len(plain) + tlsmini.AEADOverhead
	hdrStart := len(dst)
	dst = appendHeader(dst, ptype, c.version, c.dcid, c.scid, token, pn, sealedLen)
	// The AAD slice is taken before SealAppend extends dst; its contents
	// stay valid even if the append reallocates.
	dst = c.sealer.SealAppend(dst, secret, pn, plain, dst[hdrStart:])

	// Record retransmittable content.
	var keep []*frame
	if n := countRetransmittable(frames); n > 0 {
		keep = make([]*frame, 0, n)
		for _, f := range frames {
			if f.retransmittable() {
				keep = append(keep, f)
			}
		}
	}
	sp.sent[pn] = &sentPacket{frames: keep, timeSent: c.w.Now(), ackEliciting: ackEliciting}
	if ackEliciting {
		c.armPTO()
	}
	return dst
}

// sendDatagram transmits raw, honouring the server's anti-amplification
// limit before address validation.
func (c *Conn) sendDatagram(raw []byte) {
	if len(raw) == 0 {
		return
	}
	if !c.isClient && !c.validated {
		if c.sentBytes+len(raw) > 3*c.recvdBytes {
			c.ampQueue = append(c.ampQueue, raw)
			return
		}
	}
	c.sentBytes += len(raw)
	c.sock.Send(c.peer, raw)
}

func (c *Conn) flushAmpQueue() {
	for len(c.ampQueue) > 0 {
		raw := c.ampQueue[0]
		if !c.validated && c.sentBytes+len(raw) > 3*c.recvdBytes {
			return
		}
		c.ampQueue = c.ampQueue[1:]
		c.sentBytes += len(raw)
		c.sock.Send(c.peer, raw)
	}
}

// --- Receive path ---

func (c *Conn) handleDatagram(d netem.Datagram) {
	if c.closed {
		return
	}
	c.recvdBytes += len(d.Payload)
	b := d.Payload
	for len(b) > 0 && !c.closed {
		p, off, total, aad, err := parseHeader(b)
		if err != nil {
			return
		}
		if p.ptype == ptVersionNego {
			if c.isClient && !c.hsComplete {
				c.vnVersions = p.versions
				c.dialResult.Resolve(errVersionNegotiation)
			}
			return
		}
		if !c.processPacket(p, b[off:total], aad) && len(c.undecryptable) < 32 {
			// Buffered past the datagram's pooled lifetime: copy every
			// field that aliases the datagram buffer.
			c.undecryptable = append(c.undecryptable, storedPacket{
				p:      p.retained(),
				sealed: append([]byte(nil), b[off:total]...),
				aad:    append([]byte(nil), aad...),
			})
		}
		b = b[total:]
	}
	if !c.isClient && !c.validated {
		// More client bytes raise the amplification budget.
		c.flushAmpQueue()
	}
	c.flushAcks()
}

var errVersionNegotiation = errors.New("quic: version negotiation required")

// PTOTrace enables PTO diagnostics on stdout (debug aid).
var PTOTrace = false

// processPacket handles one packet. It reports false when the packet
// could not be decrypted because its keys are not yet available (the
// caller buffers such packets for retry).
func (c *Conn) processPacket(p packet, sealed, aad []byte) bool {
	space := spaceOf(p.ptype)
	var secret []byte
	switch p.ptype {
	case ptInitial:
		if c.isClient {
			secret = c.initialServer
		} else {
			secret = c.initialClient
		}
	case ptHandshake:
		secret = c.engine.TrafficSecret(tlsmini.EpochHandshake, !c.isClient)
	case ptZeroRTT:
		if c.isClient {
			return true // irrelevant
		}
		if !c.engine.EarlyDataAccepted() {
			// Before the ClientHello is processed we cannot know; buffer.
			return c.engine.NegotiatedVersion() != 0
		}
		secret = c.engine.TrafficSecret(tlsmini.EpochEarly, true)
	case ptOneRTT:
		secret = c.engine.TrafficSecret(tlsmini.EpochApp, !c.isClient)
	}
	if secret == nil {
		return false
	}
	plain, err := c.opener.Open(secret, p.pn, sealed, aad)
	if err != nil {
		return true // authentication failure: drop, do not buffer
	}
	frames, err := parseFrames(plain)
	if err != nil {
		return true
	}

	sp := c.spaces[space]
	sp.recvd[p.pn] = true
	if !sp.recvdAny || p.pn > sp.largest {
		sp.largest = p.pn
		sp.recvdAny = true
	}

	if c.isClient && p.ptype == ptInitial && len(p.scid) > 0 {
		// Adopt the server's connection ID.
		c.dcid = append([]byte(nil), p.scid...)
	}
	if !c.isClient && p.ptype == ptHandshake {
		// A decryptable Handshake packet validates the client address.
		c.validated = true
		c.flushAmpQueue()
	}

	ackEliciting := false
	for _, f := range frames {
		if f.ackEliciting() {
			ackEliciting = true
		}
		c.handleFrame(space, f)
		if c.closed {
			return true
		}
	}
	if ackEliciting {
		sp.ackQueued = true
	}
	c.retryUndecryptable()
	return true
}

// retryUndecryptable re-processes buffered packets now that the key
// schedule may have advanced.
func (c *Conn) retryUndecryptable() {
	if len(c.undecryptable) == 0 {
		return
	}
	pending := c.undecryptable
	c.undecryptable = nil
	for _, sp := range pending {
		if c.closed {
			return
		}
		if !c.processPacket(sp.p, sp.sealed, sp.aad) && len(c.undecryptable) < 32 {
			c.undecryptable = append(c.undecryptable, sp)
		}
	}
}

func (c *Conn) handleFrame(space int, f *frame) {
	switch f.kind {
	case frPadding, frPing:
	case frAck:
		c.processAck(space, f)
	case frCrypto:
		c.processCrypto(space, f)
	case frNewToken:
		if c.isClient {
			c.newToken = f.token
		}
	case frStreamBase:
		c.processStreamFrame(f)
	case frPathChallenge:
		// Echo the payload back to the (possibly just-rebound) peer
		// address; receiving the echo there validates the path.
		c.sendInSpace(spcApp, []*frame{{kind: frPathResponse, pathData: f.pathData}})
	case frPathResponse:
		if c.pathValidated != nil && f.pathData == c.pathChallenge {
			c.pathValidated.Resolve(true)
			c.pathValidated = nil
		}
	case frHandshakeDone:
		// Client may drop handshake keys; nothing further needed here.
	case frConnClose:
		c.teardown(fmt.Errorf("quic: closed by peer: code=%d %s", f.errorCode, f.reason))
	}
}

func (c *Conn) processAck(space int, f *frame) {
	sp := c.spaces[space]
	low := uint64(0)
	if f.firstRange < f.largestAcked {
		low = f.largestAcked - f.firstRange
	}
	for pn := low; pn <= f.largestAcked; pn++ {
		ent, ok := sp.sent[pn]
		if !ok {
			continue
		}
		if pn == f.largestAcked && ent.ackEliciting {
			sample := c.w.Now() - ent.timeSent
			if c.srtt == 0 {
				c.srtt = sample
			} else {
				c.srtt = (7*c.srtt + sample) / 8
			}
			pto := 2*c.srtt + 30*time.Millisecond
			if pto < minPTO {
				pto = minPTO
			}
			c.pto = pto
		}
		delete(sp.sent, pn)
	}
	c.ptoCount = 0
	c.armPTO()
}

func (c *Conn) processCrypto(space int, f *frame) {
	sp := c.spaces[space]
	// Reassemble the crypto stream in order.
	if f.offset > sp.cryptoInNext {
		sp.cryptoPending[f.offset] = f.data
		return
	}
	if f.offset+uint64(len(f.data)) <= sp.cryptoInNext {
		return // duplicate
	}
	skip := sp.cryptoInNext - f.offset
	sp.hsBuf = append(sp.hsBuf, f.data[skip:]...)
	sp.cryptoInNext = f.offset + uint64(len(f.data))
	for {
		d, ok := sp.cryptoPending[sp.cryptoInNext]
		if !ok {
			break
		}
		delete(sp.cryptoPending, sp.cryptoInNext)
		sp.cryptoInNext += uint64(len(d))
		sp.hsBuf = append(sp.hsBuf, d...)
	}
	c.drainHandshakeMessages(space)
}

func (c *Conn) drainHandshakeMessages(space int) {
	sp := c.spaces[space]
	for len(sp.hsBuf) > 0 {
		m, n, err := tlsmini.DecodeMessage(sp.hsBuf)
		if err != nil {
			return // wait for more bytes
		}
		sp.hsBuf = sp.hsBuf[n:]
		switch space {
		case spcInitial:
			m.Epoch = tlsmini.EpochInitial
		case spcHandshake:
			m.Epoch = tlsmini.EpochHandshake
		default:
			m.Epoch = tlsmini.EpochApp
		}
		wasComplete := c.engine.Complete()
		flight, err := c.engine.Handle(m)
		if err != nil {
			c.sendInSpace(space, []*frame{{kind: frConnClose, errorCode: 0x128, reason: err.Error()}})
			c.teardown(err)
			return
		}
		if len(flight) > 0 {
			c.sendCryptoFlight(flight)
		}
		if !wasComplete && c.engine.Complete() {
			c.onHandshakeComplete()
		}
	}
}

func (c *Conn) onHandshakeComplete() {
	c.hsComplete = true
	c.hsCompleteAt = c.w.Now()
	c.hsTx, c.hsRx = c.sock.TxBytes, c.sock.RxBytes
	if c.isClient {
		// Replay 0-RTT data as 1-RTT if the server rejected it.
		if c.engine.EarlyDataOffered() && !c.engine.EarlyDataAccepted() {
			for _, s := range c.earlyStreams {
				s.replayEarlyData()
			}
		}
		c.earlyStreams = nil
		c.dialResult.Resolve(nil)
		return
	}
	// Server: confirm the handshake and provision the client.
	frames := []*frame{{kind: frHandshakeDone}}
	if len(c.cfg.TokenKey) > 0 {
		frames = append(frames, &frame{kind: frNewToken, token: mintToken(c.cfg.TokenKey, c.peer.Addr())})
	}
	c.sendInSpace(spcApp, frames)
	c.dialResult.Resolve(nil)
}

func (c *Conn) processStreamFrame(f *frame) {
	s, ok := c.streams[f.streamID]
	if !ok {
		// Peer-initiated stream.
		s = newStream(c, f.streamID)
		c.streams[f.streamID] = s
		c.acceptQ.Push(s)
	}
	s.receive(f)
}

// flushAcks emits pending ACK frames, one packet per space.
func (c *Conn) flushAcks() {
	if c.closed {
		return
	}
	for i, sp := range c.spaces {
		if !sp.ackQueued || !sp.recvdAny {
			continue
		}
		sp.ackQueued = false
		// Contiguous range ending at the largest received.
		run := uint64(0)
		for sp.recvd[sp.largest-run-1] && sp.largest >= run+1 {
			run++
		}
		c.sendInSpace(i, []*frame{{kind: frAck, largestAcked: sp.largest, firstRange: run}})
	}
}

// --- Loss recovery ---

func (c *Conn) armPTO() {
	c.ptoTimer.Stop()
	c.ptoTimer = sim.Timer{}
	if c.closed {
		return
	}
	outstanding := false
	for _, sp := range c.spaces {
		for _, ent := range sp.sent {
			if ent.ackEliciting {
				outstanding = true
				break
			}
		}
	}
	// RFC 9002 anti-deadlock: until the handshake completes, keep the PTO
	// armed even with nothing in flight, so a client whose packets were
	// all acknowledged still probes an amplification-starved server.
	if !outstanding && c.hsComplete {
		return
	}
	c.ptoTimer = c.w.AfterFunc(c.pto, c.ptoFn)
}

func (c *Conn) onPTO() {
	if c.closed {
		return
	}
	if PTOTrace {
		fmt.Printf("PTO at %v client=%v count=%d pto=%v\n", c.w.Now(), c.isClient, c.ptoCount, c.pto)
	}
	ampBlocked := !c.isClient && !c.validated && len(c.ampQueue) > 0
	if ampBlocked {
		// An amplification-limited server is waiting for client bytes,
		// not experiencing loss; its PTO budget must not burn down. It
		// still gives up eventually (the client may be gone for good —
		// under burst loss, routinely), or the armed timer would keep
		// the simulation alive forever.
		c.ampPTOs++
		if c.ampPTOs > maxPTOs {
			c.teardown(errors.New("quic: amplification-blocked with silent peer, giving up"))
			return
		}
	} else {
		c.ptoCount++
	}
	if c.ptoCount > maxPTOs {
		c.teardown(errors.New("quic: too many PTOs, peer unreachable"))
		return
	}
	resent := false
	if !ampBlocked {
		resent = c.retransmitUnacked(spcInitial)
	}
	if !resent && !c.hsComplete && c.isClient {
		// Anti-deadlock probe: a padded Initial PING re-validates our
		// address and raises the server's amplification budget.
		c.sendInSpace(spcInitial, []*frame{{kind: frPing}})
	}
	c.pto *= 2
	if c.pto > maxPTO {
		c.pto = maxPTO
	}
	c.armPTO()
}

// retransmitUnacked re-sends every unacked retransmittable frame across
// all packet-number spaces, in deterministic packet-number order (map
// iteration order must not leak into the wire image). Shared by the PTO
// probe and by path migration, which treats everything in flight toward
// the retired path as lost (RFC 9000 §9.4) rather than waiting out a
// probe timeout.
func (c *Conn) retransmitUnacked(from int) bool {
	resent := false
	for i := from; i < len(c.spaces); i++ {
		sp := c.spaces[i]
		pns := slices.Sorted(maps.Keys(sp.sent))
		var resend []*frame
		for _, pn := range pns {
			ent := sp.sent[pn]
			delete(sp.sent, pn)
			if len(ent.frames) == 0 {
				continue
			}
			resend = append(resend, ent.frames...)
		}
		if len(resend) > 0 {
			c.sendInSpace(i, resend)
			resent = true
		}
	}
	return resent
}

// recvLoop drives a dialed connection from one socket; migration
// retires the socket (ending its loop) and starts a loop on the
// replacement. The datagram buffer is released once handleDatagram
// returns: anything the connection keeps from it (buffered
// undecryptable packets, adopted connection IDs) has been copied by
// then.
func (c *Conn) recvLoop(sock *netem.Socket) {
	for {
		d, ok := sock.Recv()
		if !ok {
			return
		}
		if d.Reject {
			// ICMP-style rejection from a middlebox: the peer is
			// actively unreachable on this path, so fail now rather
			// than burning the PTO budget.
			c.teardown(errors.New("quic: connection refused"))
			return
		}
		c.handleDatagram(d)
		sock.Pool().Put(d.Payload)
		if c.closed {
			return
		}
	}
}

// Migrate moves the client end of the connection onto a fresh socket —
// what a real client does when its access network changes underneath
// it (RFC 9000 §9). It probes the new path with PATH_CHALLENGE and
// blocks until the server's PATH_RESPONSE validates it. The session
// survives: no new handshake, no lost streams — in-flight data is
// recovered onto the new path by normal loss recovery. This is the
// structural advantage E26 measures DoQ/DoH3 against the TCP
// transports, which must reconnect from scratch.
func (c *Conn) Migrate() error {
	if !c.isClient || c.host == nil {
		return errors.New("quic: only dialed client connections migrate")
	}
	if c.closed {
		return errors.New("quic: connection closed")
	}
	if !c.hsComplete {
		return errors.New("quic: cannot migrate during handshake")
	}
	old := c.sock
	sock := c.host.Dial(netem.ProtoUDP, udpOverhead)
	c.prevTx += old.TxBytes
	c.prevRx += old.RxBytes
	c.sock = sock
	c.w.Go(func() { c.recvLoop(sock) })
	// Closing the retired socket ends its recv loop; anything still in
	// flight toward it is recovered by PTO onto the new path.
	old.Close()

	f := &frame{kind: frPathChallenge}
	c.cfg.Rand.Read(f.pathData[:])
	c.pathChallenge = f.pathData
	validated := sim.NewFuture[bool](c.w, "quic-path-validate")
	c.pathValidated = validated
	c.migrations++
	// Anything in flight toward the retired socket — and any response
	// headed back to it — is gone with the old path. Recover the
	// application space onto the new path now instead of stalling
	// queries behind a probe timeout (RFC 9000 §9.4 lets a sender treat
	// those as lost). Handshake spaces stay put: a long-header packet
	// from the unknown address would look like a fresh connection
	// attempt to the server, not a rebind.
	c.retransmitUnacked(spcApp)
	// Probe until the path validates (RFC 9000 §8.2.4). The loss
	// recovery machinery is not enough here: PATH_RESPONSE is never
	// retransmitted (§13.3), so once the challenge itself is ACKed a
	// lost response would strand the wait forever. Re-probe on a
	// PTO-backoff schedule and abandon the path like any other
	// unreachable peer.
	c.sendInSpace(spcApp, []*frame{f})
	probe := c.pto
	for attempt := 0; ; attempt++ {
		if v, ok := validated.WaitTimeout(probe); ok {
			if !v {
				return errors.New("quic: path validation failed")
			}
			return nil
		}
		if c.closed {
			return errors.New("quic: connection closed")
		}
		if attempt >= maxPTOs {
			c.pathValidated = nil
			return errors.New("quic: path validation failed")
		}
		c.sendInSpace(spcApp, []*frame{{kind: frPathChallenge, pathData: f.pathData}})
		probe *= 2
		if probe > maxPTO {
			probe = maxPTO
		}
	}
}

// --- Address validation tokens ---

// mintToken binds a token to the client address with the server key.
func mintToken(key []byte, addr netip.Addr) []byte {
	mac := hmacSHA256(key, addr.AsSlice())
	return mac[:16]
}

func validToken(key, token []byte, addr netip.Addr) bool {
	if len(token) != 16 {
		return false
	}
	want := mintToken(key, addr)
	same := true
	for i := range want {
		if token[i] != want[i] {
			same = false
		}
	}
	return same
}
