package measure

import (
	"testing"
	"time"

	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/pages"
	"repro/internal/resolver"
	"repro/internal/stats"
	"repro/internal/tlsmini"
)

func smallUniverse(t *testing.T, seed int64) *resolver.Universe {
	t.Helper()
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           seed,
		ResolverCounts: map[geo.Continent]int{geo.EU: 3, geo.AS: 2, geo.NA: 2, geo.AF: 1},
		Loss:           0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func medianBy(samples []SingleQuerySample, proto dox.Protocol, f func(SingleQuerySample) time.Duration) time.Duration {
	var xs []time.Duration
	for _, s := range samples {
		if s.OK && s.Protocol == proto {
			xs = append(xs, f(s))
		}
	}
	return stats.MedianDuration(xs)
}

func TestSingleQueryCampaignShape(t *testing.T) {
	u := smallUniverse(t, 11)
	samples, err := RunSingleQuery(SingleQueryConfig{Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for _, s := range samples {
		if s.OK {
			okCount++
		}
	}
	total := len(samples)
	if total != 6*8*5 {
		t.Fatalf("sample count = %d, want %d", total, 6*8*5)
	}
	if okCount < total*9/10 {
		t.Fatalf("only %d/%d samples OK", okCount, total)
	}

	hs := func(s SingleQuerySample) time.Duration { return s.Handshake }
	rv := func(s SingleQuerySample) time.Duration { return s.Resolve }

	hsDoTCP := medianBy(samples, dox.DoTCP, hs)
	hsDoQ := medianBy(samples, dox.DoQ, hs)
	hsDoT := medianBy(samples, dox.DoT, hs)
	hsDoH := medianBy(samples, dox.DoH, hs)

	// Fig. 2a: DoT and DoH comparable, roughly double DoTCP and DoQ.
	if hsDoT < hsDoTCP*3/2 || hsDoH < hsDoTCP*3/2 {
		t.Errorf("handshake medians: DoTCP=%v DoQ=%v DoH=%v DoT=%v; want DoT/DoH ~2x DoTCP",
			hsDoTCP, hsDoQ, hsDoH, hsDoT)
	}
	if hsDoQ > hsDoTCP*13/10 || hsDoQ < hsDoTCP*7/10 {
		t.Errorf("DoQ handshake %v not comparable to DoTCP %v (resumption in effect)", hsDoQ, hsDoTCP)
	}

	// Fig. 2b: resolve times similar across protocols (cache warm).
	rvUDP := medianBy(samples, dox.DoUDP, rv)
	for _, proto := range dox.Protocols {
		m := medianBy(samples, proto, rv)
		if m > rvUDP*14/10 || m < rvUDP*6/10 {
			t.Errorf("resolve median %v = %v, DoUDP = %v; expected similar", proto, m, rvUDP)
		}
	}
}

func TestSingleQueryUsesResumptionAndTokens(t *testing.T) {
	u := smallUniverse(t, 12)
	samples, err := RunSingleQuery(SingleQueryConfig{Universe: u, Protocols: []dox.Protocol{dox.DoQ, dox.DoT, dox.DoH}})
	if err != nil {
		t.Fatal(err)
	}
	resumed, zeroRTT, tokens, vn := 0, 0, 0, 0
	ok := 0
	tls13 := 0
	for _, s := range samples {
		if !s.OK {
			continue
		}
		ok++
		if s.M.UsedResumption {
			resumed++
		}
		if s.M.Used0RTT {
			zeroRTT++
		}
		if s.Protocol == dox.DoQ {
			if s.M.UsedToken {
				tokens++
			}
			if s.M.UsedVN {
				vn++
			}
		}
		if s.M.TLSVersion == tlsmini.VersionTLS13 {
			tls13++
		}
	}
	// All resolvers support Session Resumption; TLS 1.2-only resolvers
	// cannot resume in our model, so allow a small remainder.
	if resumed < ok*9/10 {
		t.Errorf("resumption in %d/%d measured sessions", resumed, ok)
	}
	if zeroRTT != 0 {
		t.Errorf("0-RTT used %d times; no public resolver supports it", zeroRTT)
	}
	if tokens == 0 {
		t.Error("no DoQ measurement presented an address-validation token")
	}
	if vn != 0 {
		t.Errorf("%d measured DoQ handshakes needed Version Negotiation (version should be cached)", vn)
	}
	if tls13 < ok*9/10 {
		t.Errorf("TLS 1.3 in %d/%d sessions, want ~99%%", tls13, ok)
	}
}

// TestE10NoResumptionSlowsDoQ reproduces the preliminary-work comparison:
// without Session Resumption (and thus without tokens), DoQ handshakes
// with big-certificate resolvers pay the amplification-limit round trip,
// and draft-version resolvers cost a Version Negotiation round trip.
func TestE10NoResumptionSlowsDoQ(t *testing.T) {
	u1 := smallUniverse(t, 13)
	with, err := RunSingleQuery(SingleQueryConfig{Universe: u1, Protocols: []dox.Protocol{dox.DoQ}})
	if err != nil {
		t.Fatal(err)
	}
	u2 := smallUniverse(t, 13)
	without, err := RunSingleQuery(SingleQueryConfig{
		Universe: u2, Protocols: []dox.Protocol{dox.DoQ}, DisableResumption: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := func(s SingleQuerySample) time.Duration { return s.Handshake }
	mWith := medianBy(with, dox.DoQ, hs)
	mWithout := medianBy(without, dox.DoQ, hs)
	if mWithout <= mWith {
		t.Errorf("no-resumption DoQ median handshake %v not slower than resumed %v", mWithout, mWith)
	}
}

// TestE11ZeroRTT verifies that with resolvers supporting 0-RTT (the
// paper's future-work scenario) the measured DoQ resolve completes with
// early data.
func TestE11ZeroRTT(t *testing.T) {
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           14,
		ResolverCounts: map[geo.Continent]int{geo.EU: 2},
		Loss:           0,
		MutateProfile:  func(p *resolver.Profile) { p.AcceptEarlyData = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := RunSingleQuery(SingleQueryConfig{
		Universe: u, Protocols: []dox.Protocol{dox.DoQ}, Use0RTT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	okCount := 0
	for _, s := range samples {
		if s.OK {
			okCount++
			if s.M.Used0RTT {
				used++
			}
		}
	}
	if okCount == 0 {
		t.Fatal("no successful samples")
	}
	if used < okCount/2 {
		t.Errorf("0-RTT used in %d/%d measured DoQ sessions", used, okCount)
	}
}

func TestWebCampaignShape(t *testing.T) {
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           15,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1, geo.NA: 1},
		Loss:           0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := []*pages.Page{pages.ByName("wikipedia"), pages.ByName("youtube")}
	samples, err := RunWeb(WebConfig{
		Universe:  u,
		Protocols: []dox.Protocol{dox.DoUDP, dox.DoQ, dox.DoH},
		Pages:     ps,
		Loads:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 6 * 2 * 3 * 2 * 2 // vantages * resolvers * protocols * pages * loads
	if len(samples) != want {
		t.Fatalf("sample count = %d, want %d", len(samples), want)
	}
	okCount := 0
	plt := map[dox.Protocol][]float64{}
	for _, s := range samples {
		if !s.OK {
			continue
		}
		okCount++
		if s.FCP <= 0 || s.PLT < s.FCP {
			t.Errorf("sample %+v has invalid FCP/PLT", s)
		}
		if s.Page == "wikipedia" {
			plt[s.Protocol] = append(plt[s.Protocol], float64(s.PLT))
		}
	}
	if okCount < len(samples)*9/10 {
		t.Fatalf("only %d/%d web samples OK", okCount, len(samples))
	}
	mUDP := stats.Median(plt[dox.DoUDP])
	mDoQ := stats.Median(plt[dox.DoQ])
	mDoH := stats.Median(plt[dox.DoH])
	if !(mUDP < mDoQ && mDoQ < mDoH) {
		t.Errorf("wikipedia PLT medians: DoUDP=%v DoQ=%v DoH=%v; want DoUDP < DoQ < DoH",
			time.Duration(mUDP), time.Duration(mDoQ), time.Duration(mDoH))
	}
}
