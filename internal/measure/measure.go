// Package measure implements the paper's measurement methodology — the
// primary contribution being reproduced.
//
// Single query (§2, §3.1): every measurement is preceded by an identical
// cache-warming query, which (a) puts the record in the resolver's cache
// so the measured resolve time is not polluted by recursion, and (b)
// provisions the TLS session ticket, the QUIC address-validation token
// and the negotiated QUIC version. The measured connection is then a
// fresh session that uses Session Resumption (and, per RFC 9250, the
// token together with it), so the QUIC handshake is not inflated by
// Version Negotiation, Address Validation, or the amplification limit.
// The same warming discipline applies to DoH3 (E13–E15), whose sessions
// resume through identical QUIC machinery under the "h3" ALPN.
//
// Campaigns run every client on the vantage's netapi/simnet backend
// (resolver.Vantage.Backend), the deterministic side of the DESIGN.md
// §10 seam; the identical client code serves live measurements through
// cmd/dnsperf -backend live.
//
// Web (§2, §3.2): per [vantage : resolver : protocol] combination a local
// DNS proxy forwards Chromium's queries upstream; a cache-warming
// navigation precedes the measured loads; proxy sessions are reset in
// between so the measured navigation establishes new (resumed) sessions.
//
// # Execution model
//
// Both campaigns run as sharded parallel campaigns on the
// internal/campaign engine. The campaign is partitioned by vantage and
// by fixed-size resolver blocks into shards; each shard instantiates its
// partition of the resolver.Blueprint inside a private sim.World whose
// seed derives from (campaign seed, shard index), executes its slice of
// the measurement matrix serially on virtual time, and returns its
// samples. Shards run on a worker pool of OS threads sized by
// GOMAXPROCS (see the Parallelism knobs) and results merge in shard
// order, so the sample stream is byte-identical at any parallelism
// level: the shard plan and every shard seed are functions of the
// configuration only, never of the worker count.
//
// The single-World entry points (SingleQueryConfig.Universe,
// WebConfig.Universe) remain for tests and examples that drive a
// pre-built Universe directly; they are equivalent to a one-shard
// campaign.
package measure

import (
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/campaign"
	"repro/internal/dnsmsg"
	"repro/internal/dnsproxy"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/pages"
	"repro/internal/resolver"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

// SingleQuerySample is one single-query measurement.
type SingleQuerySample struct {
	Vantage           string
	VantageContinent  geo.Continent
	ResolverIdx       int
	ResolverContinent geo.Continent
	Protocol          dox.Protocol
	Round             int

	Handshake time.Duration
	Resolve   time.Duration
	// Total is the time from starting the connection to receiving the
	// answer. With 0-RTT the handshake and the query overlap, so Total
	// < Handshake+Resolve.
	Total time.Duration
	// At is the (shard-local) virtual time the measured exchange began;
	// experiments running under a time-varying path schedule (E20) use
	// it to attribute the sample to a schedule phase.
	At time.Duration
	M  dox.Metrics
	OK bool
}

// SingleQueryConfig parameterizes a single-query campaign.
type SingleQueryConfig struct {
	// Universe runs the campaign inside one pre-built World (legacy
	// single-shard path). Mutually exclusive with Blueprint.
	Universe *resolver.Universe
	// Blueprint selects the sharded path: the campaign is partitioned by
	// vantage and resolver block, and every shard instantiates its
	// partition of the blueprint in a private World.
	Blueprint *resolver.Blueprint
	// Seed is the campaign seed for the sharded path (default: the
	// blueprint's seed).
	Seed int64
	// Parallelism caps the worker pool (0 = GOMAXPROCS). It affects wall
	// time only, never results.
	Parallelism int
	// ResolverBlock is the shard granularity in resolvers (default 32).
	// Part of the shard plan: changing it changes shard seeds and thus
	// the exact sample stream, so it is a config knob, not a tuning knob
	// the engine may adjust on its own.
	ResolverBlock int

	Protocols []dox.Protocol // default: all five
	// Rounds repeats the campaign (the paper measures every 2 hours for
	// a week: 84 rounds).
	Rounds int
	// RoundInterval spaces rounds in virtual time (default 2h).
	RoundInterval time.Duration
	// Domain is the queried name (paper: an A record for google.com).
	Domain string
	// DisableResumption is the E10 ablation: the measured connection
	// starts from a cold session (no ticket, no token) and is therefore
	// exposed to the amplification limit.
	DisableResumption bool
	// Use0RTT is the E11 ablation: offer 0-RTT on resumed QUIC sessions
	// (DoQ, and DoH3 when it is in the protocol set).
	Use0RTT bool
	// FlushResolverCache is the E17 uncached baseline: the resolver's
	// answer cache is flushed between the warming and the measured
	// query, so the measured resolve pays full upstream recursion while
	// the session-level warming (ticket, token, version) still holds.
	FlushResolverCache bool
	// QuerySpacing paces the combinations of one shard apart in virtual
	// time (default 0: back to back). Campaigns under a time-varying
	// path schedule use it to spread measurements across the schedule's
	// phases.
	QuerySpacing time.Duration
	// QueryTimeout bounds one query (default 15s).
	QueryTimeout time.Duration
}

func (c *SingleQueryConfig) defaults() {
	if len(c.Protocols) == 0 {
		c.Protocols = dox.Protocols
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.RoundInterval == 0 {
		c.RoundInterval = 2 * time.Hour
	}
	if c.Domain == "" {
		c.Domain = "google.com"
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 15 * time.Second
	}
	if c.ResolverBlock == 0 {
		c.ResolverBlock = 32
	}
	if c.Seed == 0 && c.Blueprint != nil {
		c.Seed = c.Blueprint.Seed
	}
}

// runSharded scatters a campaign over (vantage x resolver block) shards
// and gathers the per-shard samples in shard order. Each shard
// instantiates its blueprint partition in a private World seeded from
// (seed, shard index) and runs body as that World's initial task. The
// first shard instantiation error aborts the campaign.
func runSharded[T any](bp *resolver.Blueprint, seed int64, parallelism, resolverBlock int, body func(u *resolver.Universe, vp *resolver.Vantage) []T) ([]T, error) {
	blocks := campaign.Blocks(len(bp.Profiles), resolverBlock)
	type shardPlan struct {
		vantage int
		span    campaign.Span
	}
	var plan []shardPlan
	for v := range bp.Vantages {
		for _, blk := range blocks {
			plan = append(plan, shardPlan{vantage: v, span: blk})
		}
	}
	parts, err := campaign.RunErr(seed, len(plan), parallelism, func(s campaign.Shard) ([]T, error) {
		p := plan[s.Index]
		u, err := bp.Instantiate(s.Seed, resolver.Scope{
			Vantages:   []int{p.vantage},
			ResolverLo: p.span.Lo,
			ResolverHi: p.span.Hi,
		})
		if err != nil {
			return nil, err
		}
		var out []T
		u.W.Go(func() { out = body(u, u.Vantages[0]) })
		u.W.Run()
		// The shard's World is dropped here; reap its parked goroutines
		// (resolver/server tasks blocked forever) so long campaigns don't
		// accumulate dead stacks for the GC to scan.
		u.W.Shutdown()
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return campaign.Concat(parts), nil
}

// RunSingleQuery executes the campaign and returns all samples, ordered
// by (vantage, resolver block, round, resolver, protocol). It must be
// called from the host side (it drives each World's Run itself).
func RunSingleQuery(cfg SingleQueryConfig) ([]SingleQuerySample, error) {
	cfg.defaults()
	if cfg.Blueprint != nil {
		return runSharded(cfg.Blueprint, cfg.Seed, cfg.Parallelism, cfg.ResolverBlock,
			func(u *resolver.Universe, vp *resolver.Vantage) []SingleQuerySample {
				return singleQueryShardBody(u, vp, cfg)
			})
	}
	u := cfg.Universe
	perVantage := make([][]SingleQuerySample, len(u.Vantages))
	for i, vp := range u.Vantages {
		i, vp := i, vp
		u.W.Go(func() {
			perVantage[i] = singleQueryShardBody(u, vp, cfg)
		})
	}
	u.W.Run()
	return campaign.Concat(perVantage), nil
}

// singleQueryShardBody is the serial measurement loop of one shard: all
// rounds over the universe's resolver partition from one vantage. It
// runs as a task inside u's World.
func singleQueryShardBody(u *resolver.Universe, vp *resolver.Vantage, cfg SingleQueryConfig) []SingleQuerySample {
	runner := newVantageRunner(u, vp, cfg)
	var out []SingleQuerySample
	for round := 0; round < cfg.Rounds; round++ {
		for idx, res := range u.Resolvers {
			for _, proto := range cfg.Protocols {
				s := runner.measureOne(u.GlobalResolverIdx(idx), res, proto)
				s.Round = round
				out = append(out, s)
				if cfg.QuerySpacing > 0 {
					u.W.Sleep(cfg.QuerySpacing)
				}
			}
		}
		if round < cfg.Rounds-1 {
			u.W.Sleep(cfg.RoundInterval)
		}
	}
	return out
}

// vantageRunner holds the per-vantage client state (session caches carry
// across rounds, as a long-running measurement host's would). The two
// QUIC transports keep separate session stores because the stored state
// includes the negotiated ALPN.
type vantageRunner struct {
	u        *resolver.Universe
	vp       *resolver.Vantage
	cfg      SingleQueryConfig
	sessions *tlsmini.SessionCache
	quicSess *dox.QUICSessionStore
	h3Sess   *dox.QUICSessionStore
	qid      uint16
}

func newVantageRunner(u *resolver.Universe, vp *resolver.Vantage, cfg SingleQueryConfig) *vantageRunner {
	return &vantageRunner{
		u:        u,
		vp:       vp,
		cfg:      cfg,
		sessions: tlsmini.NewSessionCache(),
		quicSess: dox.NewQUICSessionStore(),
		h3Sess:   dox.NewQUICSessionStore(),
	}
}

func (r *vantageRunner) options(res *resolver.Resolver, proto dox.Protocol, warming bool) dox.Options {
	o := dox.Options{
		Backend:    r.vp.Backend,
		Resolver:   res.Addr,
		ServerName: res.Name,
		DoQPort:    res.DoQPort,
	}
	if r.cfg.DisableResumption && !warming {
		// Cold session: fresh cache, no token, no cached version. The
		// client still has to discover the version via VN if needed.
		o.SessionCache = tlsmini.NewSessionCache()
		return o
	}
	o.SessionCache = r.sessions
	if st := r.sessionStore(proto); st != nil {
		st.Apply(res.Addr, &o)
		if !warming && r.cfg.Use0RTT {
			o.OfferEarlyData = true
		}
	}
	return o
}

// sessionStore returns the QUIC session store for proto, or nil for the
// non-QUIC transports.
func (r *vantageRunner) sessionStore(proto dox.Protocol) *dox.QUICSessionStore {
	switch proto {
	case dox.DoQ:
		return r.quicSess
	case dox.DoH3:
		return r.h3Sess
	}
	return nil
}

// measureOne performs warming + measured query for one combination.
// globalIdx is the resolver's blueprint-global index, recorded in the
// sample so partitioned and whole-universe runs report identically.
func (r *vantageRunner) measureOne(globalIdx int, res *resolver.Resolver, proto dox.Protocol) SingleQuerySample {
	s := SingleQuerySample{
		Vantage:           r.vp.Name,
		VantageContinent:  r.vp.Continent,
		ResolverIdx:       globalIdx,
		ResolverContinent: res.Place.Continent,
		Protocol:          proto,
	}
	// Cache warming (also provisions ticket + token + version).
	if !r.exchange(res, proto, true, &SingleQuerySample{}) {
		return s
	}
	if r.cfg.FlushResolverCache {
		// E17 uncached baseline: keep the session warming, drop the
		// answer cache, so the measured query is a clean cold miss.
		res.FlushCache()
	}
	// Actual measurement on a fresh connection.
	s.At = r.u.W.Now()
	s.OK = r.exchange(res, proto, false, &s)
	return s
}

// exchange runs one connect+query, bounded by the query timeout. It
// reports success and fills the sample's timing fields.
func (r *vantageRunner) exchange(res *resolver.Resolver, proto dox.Protocol, warming bool, s *SingleQuerySample) bool {
	w := r.u.W
	done := sim.NewFuture[bool](w, "measure-exchange")
	w.Go(func() {
		connStart := w.Now()
		o := r.options(res, proto, warming)
		c, err := dox.Connect(proto, o)
		if err != nil {
			done.Resolve(false)
			return
		}
		defer c.Close()
		r.qid++
		q := dnsmsg.NewQuery(r.qid, r.cfg.Domain, dnsmsg.TypeA)
		start := w.Now()
		_, err = c.Query(&q)
		if err != nil {
			done.Resolve(false)
			return
		}
		s.Resolve = w.Now() - start
		s.Total = w.Now() - connStart
		s.Handshake = c.Metrics().HandshakeTime
		s.M = *c.Metrics()
		if st := r.sessionStore(proto); st != nil {
			st.Remember(res.Addr, c)
		}
		done.Resolve(true)
	})
	ok, alive := done.WaitTimeout(r.cfg.QueryTimeout)
	return alive && ok
}

// --- Web performance campaign ---

// WebSample is one page-load measurement (the median of the per-combo
// loads is what Fig. 3 and Fig. 4 aggregate).
type WebSample struct {
	Vantage          string
	VantageContinent geo.Continent
	ResolverIdx      int
	Protocol         dox.Protocol
	Page             string
	Load             int

	FCP        time.Duration
	PLT        time.Duration
	DNSQueries int
	OK         bool
}

// WebConfig parameterizes the web campaign.
type WebConfig struct {
	// Universe runs the campaign inside one pre-built World (legacy
	// single-shard path). Mutually exclusive with Blueprint.
	Universe *resolver.Universe
	// Blueprint selects the sharded path (see SingleQueryConfig).
	Blueprint *resolver.Blueprint
	// Seed is the campaign seed for the sharded path (default: the
	// blueprint's seed).
	Seed int64
	// Parallelism caps the worker pool (0 = GOMAXPROCS); results do not
	// depend on it.
	Parallelism int
	// ResolverBlock is the shard granularity in resolvers (default 4;
	// web combinations are far more expensive than single queries).
	ResolverBlock int

	Protocols []dox.Protocol
	Pages     []*pages.Page
	// Loads is the number of measured cold-start loads per combination
	// (paper: four).
	Loads int
	// FixDoTReuse applies the DoT connection-reuse fix (E12); default
	// false reproduces the paper.
	FixDoTReuse bool
	// Use0RTT offers 0-RTT on resumed upstream sessions (E11).
	Use0RTT bool
	// StubCache gives each combination's DNS proxy a client-side
	// answer cache that survives session resets: the warming navigation
	// fills it, so the measured loads resolve repeated names locally
	// (experiment E18's warm shared cache).
	StubCache bool
	// StubCacheCapacity bounds the stub cache (LRU); 0 = unbounded.
	StubCacheCapacity int
	// LoadTimeout bounds one page load (default 60s).
	LoadTimeout time.Duration
}

func (c *WebConfig) defaults() {
	if len(c.Protocols) == 0 {
		c.Protocols = dox.Protocols
	}
	if len(c.Pages) == 0 {
		c.Pages = pages.Top10()
	}
	if c.Loads == 0 {
		c.Loads = 4
	}
	if c.LoadTimeout == 0 {
		c.LoadTimeout = 60 * time.Second
	}
	if c.ResolverBlock == 0 {
		c.ResolverBlock = 4
	}
	if c.Seed == 0 && c.Blueprint != nil {
		c.Seed = c.Blueprint.Seed
	}
}

// RunWeb executes the web campaign and returns all samples, ordered by
// (vantage, resolver block, resolver, protocol, page, load).
func RunWeb(cfg WebConfig) ([]WebSample, error) {
	cfg.defaults()
	if cfg.Blueprint != nil {
		return runSharded(cfg.Blueprint, cfg.Seed, cfg.Parallelism, cfg.ResolverBlock,
			func(u *resolver.Universe, vp *resolver.Vantage) []WebSample {
				return webShardBody(u, vp, cfg)
			})
	}
	u := cfg.Universe
	perVantage := make([][]WebSample, len(u.Vantages))
	for i, vp := range u.Vantages {
		i, vp := i, vp
		u.W.Go(func() {
			perVantage[i] = webShardBody(u, vp, cfg)
		})
	}
	u.W.Run()
	return campaign.Concat(perVantage), nil
}

// webShardBody measures every [resolver:protocol] combination of the
// universe's partition from one vantage. It runs as a task in u's World.
func webShardBody(u *resolver.Universe, vp *resolver.Vantage, cfg WebConfig) []WebSample {
	var out []WebSample
	for idx, res := range u.Resolvers {
		for _, proto := range cfg.Protocols {
			out = append(out, runWebCombo(u, vp, u.GlobalResolverIdx(idx), res, proto, cfg)...)
		}
	}
	return out
}

// runWebCombo measures all pages for one [vantage:resolver:protocol].
func runWebCombo(u *resolver.Universe, vp *resolver.Vantage, globalIdx int, res *resolver.Resolver, proto dox.Protocol, cfg WebConfig) []WebSample {
	// A fresh proxy per combination, as the paper sets DNS Proxy up anew.
	listenPort := uint16(10000 + vp.Index)
	proxy, err := dnsproxy.New(vp.Backend, dnsproxy.Config{
		Upstream: proto,
		Options: dox.Options{
			Resolver:   res.Addr,
			ServerName: res.Name,
			DoQPort:    res.DoQPort,
		},
		ListenPort:        listenPort,
		FixDoTReuse:       cfg.FixDoTReuse,
		Use0RTT:           cfg.Use0RTT,
		StubCache:         cfg.StubCache,
		StubCacheCapacity: cfg.StubCacheCapacity,
	})
	if err != nil {
		return nil
	}
	defer proxy.Close()
	eng := &browser.Engine{Backend: vp.Backend, Proxy: proxy.Addr()}

	var out []WebSample
	for _, page := range cfg.Pages {
		// Cache-warming navigation.
		loadWithTimeout(u, eng, page, cfg.LoadTimeout)
		for load := 0; load < cfg.Loads; load++ {
			proxy.ResetSessions()
			r, ok := loadWithTimeout(u, eng, page, cfg.LoadTimeout)
			s := WebSample{
				Vantage:          vp.Name,
				VantageContinent: vp.Continent,
				ResolverIdx:      globalIdx,
				Protocol:         proto,
				Page:             page.Name,
				Load:             load,
				OK:               ok && r.Err == nil,
			}
			if s.OK {
				s.FCP, s.PLT, s.DNSQueries = r.FCP, r.PLT, r.DNSQueries
			}
			out = append(out, s)
		}
	}
	return out
}

func loadWithTimeout(u *resolver.Universe, eng *browser.Engine, page *pages.Page, timeout time.Duration) (browser.Result, bool) {
	done := sim.NewFuture[browser.Result](u.W, fmt.Sprintf("webload-%s", page.Name))
	u.W.Go(func() { done.Resolve(eng.Load(page)) })
	return done.WaitTimeout(timeout)
}
