// Package measure implements the paper's measurement methodology — the
// primary contribution being reproduced.
//
// Single query (§2, §3.1): every measurement is preceded by an identical
// cache-warming query, which (a) puts the record in the resolver's cache
// so the measured resolve time is not polluted by recursion, and (b)
// provisions the TLS session ticket, the QUIC address-validation token
// and the negotiated QUIC version. The measured connection is then a
// fresh session that uses Session Resumption (and, per RFC 9250, the
// token together with it), so the QUIC handshake is not inflated by
// Version Negotiation, Address Validation, or the amplification limit.
//
// Web (§2, §3.2): per [vantage : resolver : protocol] combination a local
// DNS proxy forwards Chromium's queries upstream; a cache-warming
// navigation precedes the measured loads; proxy sessions are reset in
// between so the measured navigation establishes new (resumed) sessions.
package measure

import (
	"fmt"
	"time"

	"repro/internal/browser"
	"repro/internal/dnsmsg"
	"repro/internal/dnsproxy"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/pages"
	"repro/internal/resolver"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

// SingleQuerySample is one single-query measurement.
type SingleQuerySample struct {
	Vantage           string
	VantageContinent  geo.Continent
	ResolverIdx       int
	ResolverContinent geo.Continent
	Protocol          dox.Protocol
	Round             int

	Handshake time.Duration
	Resolve   time.Duration
	// Total is the time from starting the connection to receiving the
	// answer. With 0-RTT the handshake and the query overlap, so Total
	// < Handshake+Resolve.
	Total time.Duration
	M     dox.Metrics
	OK    bool
}

// SingleQueryConfig parameterizes a single-query campaign.
type SingleQueryConfig struct {
	Universe  *resolver.Universe
	Protocols []dox.Protocol // default: all five
	// Rounds repeats the campaign (the paper measures every 2 hours for
	// a week: 84 rounds).
	Rounds int
	// RoundInterval spaces rounds in virtual time (default 2h).
	RoundInterval time.Duration
	// Domain is the queried name (paper: an A record for google.com).
	Domain string
	// DisableResumption is the E10 ablation: the measured connection
	// starts from a cold session (no ticket, no token) and is therefore
	// exposed to the amplification limit.
	DisableResumption bool
	// Use0RTT is the E11 ablation: offer 0-RTT on resumed DoQ sessions.
	Use0RTT bool
	// QueryTimeout bounds one query (default 15s).
	QueryTimeout time.Duration
}

func (c *SingleQueryConfig) defaults() {
	if len(c.Protocols) == 0 {
		c.Protocols = dox.Protocols
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.RoundInterval == 0 {
		c.RoundInterval = 2 * time.Hour
	}
	if c.Domain == "" {
		c.Domain = "google.com"
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 15 * time.Second
	}
}

// RunSingleQuery executes the campaign and returns all samples. It must
// be called from outside the Universe's world (it drives Run itself).
func RunSingleQuery(cfg SingleQueryConfig) []SingleQuerySample {
	cfg.defaults()
	u := cfg.Universe
	perVantage := make([][]SingleQuerySample, len(u.Vantages))
	for i, vp := range u.Vantages {
		i, vp := i, vp
		u.W.Go(func() {
			runner := newVantageRunner(u, vp, cfg)
			for round := 0; round < cfg.Rounds; round++ {
				for idx, res := range u.Resolvers {
					for _, proto := range cfg.Protocols {
						s := runner.measureOne(idx, res, proto)
						s.Round = round
						perVantage[i] = append(perVantage[i], s)
					}
				}
				if round < cfg.Rounds-1 {
					u.W.Sleep(cfg.RoundInterval)
				}
			}
		})
	}
	u.W.Run()
	var all []SingleQuerySample
	for _, s := range perVantage {
		all = append(all, s...)
	}
	return all
}

// vantageRunner holds the per-vantage client state (session caches carry
// across rounds, as a long-running measurement host's would).
type vantageRunner struct {
	u        *resolver.Universe
	vp       *resolver.Vantage
	cfg      SingleQueryConfig
	sessions *tlsmini.SessionCache
	quicSess *dox.QUICSessionStore
	qid      uint16
}

func newVantageRunner(u *resolver.Universe, vp *resolver.Vantage, cfg SingleQueryConfig) *vantageRunner {
	return &vantageRunner{
		u:        u,
		vp:       vp,
		cfg:      cfg,
		sessions: tlsmini.NewSessionCache(),
		quicSess: dox.NewQUICSessionStore(),
	}
}

func (r *vantageRunner) options(res *resolver.Resolver, proto dox.Protocol, warming bool) dox.Options {
	o := dox.Options{
		Host:       r.vp.Host,
		Resolver:   res.Addr,
		ServerName: res.Name,
		DoQPort:    res.DoQPort,
		Rand:       r.u.Rand,
		Now:        r.u.W.Now,
	}
	if r.cfg.DisableResumption && !warming {
		// Cold session: fresh cache, no token, no cached version. The
		// client still has to discover the version via VN if needed.
		o.SessionCache = tlsmini.NewSessionCache()
		return o
	}
	o.SessionCache = r.sessions
	if proto == dox.DoQ {
		r.quicSess.Apply(res.Addr, &o)
		if !warming && r.cfg.Use0RTT {
			o.OfferEarlyData = true
		}
	}
	return o
}

// measureOne performs warming + measured query for one combination.
func (r *vantageRunner) measureOne(idx int, res *resolver.Resolver, proto dox.Protocol) SingleQuerySample {
	s := SingleQuerySample{
		Vantage:           r.vp.Name,
		VantageContinent:  r.vp.Continent,
		ResolverIdx:       idx,
		ResolverContinent: res.Place.Continent,
		Protocol:          proto,
	}
	// Cache warming (also provisions ticket + token + version).
	if !r.exchange(res, proto, true, &SingleQuerySample{}) {
		return s
	}
	// Actual measurement on a fresh connection.
	s.OK = r.exchange(res, proto, false, &s)
	return s
}

// exchange runs one connect+query, bounded by the query timeout. It
// reports success and fills the sample's timing fields.
func (r *vantageRunner) exchange(res *resolver.Resolver, proto dox.Protocol, warming bool, s *SingleQuerySample) bool {
	w := r.u.W
	done := sim.NewFuture[bool](w, "measure-exchange")
	w.Go(func() {
		connStart := w.Now()
		o := r.options(res, proto, warming)
		c, err := dox.Connect(proto, o)
		if err != nil {
			done.Resolve(false)
			return
		}
		defer c.Close()
		r.qid++
		q := dnsmsg.NewQuery(r.qid, r.cfg.Domain, dnsmsg.TypeA)
		start := w.Now()
		_, err = c.Query(&q)
		if err != nil {
			done.Resolve(false)
			return
		}
		s.Resolve = w.Now() - start
		s.Total = w.Now() - connStart
		s.Handshake = c.Metrics().HandshakeTime
		s.M = *c.Metrics()
		if proto == dox.DoQ {
			r.quicSess.Remember(res.Addr, c)
		}
		done.Resolve(true)
	})
	ok, alive := done.WaitTimeout(r.cfg.QueryTimeout)
	return alive && ok
}

// --- Web performance campaign ---

// WebSample is one page-load measurement (the median of the per-combo
// loads is what Fig. 3 and Fig. 4 aggregate).
type WebSample struct {
	Vantage          string
	VantageContinent geo.Continent
	ResolverIdx      int
	Protocol         dox.Protocol
	Page             string
	Load             int

	FCP        time.Duration
	PLT        time.Duration
	DNSQueries int
	OK         bool
}

// WebConfig parameterizes the web campaign.
type WebConfig struct {
	Universe  *resolver.Universe
	Protocols []dox.Protocol
	Pages     []*pages.Page
	// Loads is the number of measured cold-start loads per combination
	// (paper: four).
	Loads int
	// FixDoTReuse applies the DoT connection-reuse fix (E12); default
	// false reproduces the paper.
	FixDoTReuse bool
	// Use0RTT offers 0-RTT on resumed upstream sessions (E11).
	Use0RTT bool
	// LoadTimeout bounds one page load (default 60s).
	LoadTimeout time.Duration
}

func (c *WebConfig) defaults() {
	if len(c.Protocols) == 0 {
		c.Protocols = dox.Protocols
	}
	if len(c.Pages) == 0 {
		c.Pages = pages.Top10()
	}
	if c.Loads == 0 {
		c.Loads = 4
	}
	if c.LoadTimeout == 0 {
		c.LoadTimeout = 60 * time.Second
	}
}

// RunWeb executes the web campaign and returns all samples.
func RunWeb(cfg WebConfig) []WebSample {
	cfg.defaults()
	u := cfg.Universe
	perVantage := make([][]WebSample, len(u.Vantages))
	for vpIdx, vp := range u.Vantages {
		vp := vp
		vpIdx := vpIdx
		u.W.Go(func() {
			for idx, res := range u.Resolvers {
				for _, proto := range cfg.Protocols {
					perVantage[vpIdx] = append(perVantage[vpIdx], runWebCombo(u, vp, vpIdx, idx, res, proto, cfg)...)
				}
			}
		})
	}
	u.W.Run()
	var all []WebSample
	for _, s := range perVantage {
		all = append(all, s...)
	}
	return all
}

// runWebCombo measures all pages for one [vantage:resolver:protocol].
func runWebCombo(u *resolver.Universe, vp *resolver.Vantage, vpIdx, idx int, res *resolver.Resolver, proto dox.Protocol, cfg WebConfig) []WebSample {
	// A fresh proxy per combination, as the paper sets DNS Proxy up anew.
	listenPort := uint16(10000 + vpIdx)
	proxy, err := dnsproxy.New(vp.Host, dnsproxy.Config{
		Upstream: proto,
		Options: dox.Options{
			Resolver:   res.Addr,
			ServerName: res.Name,
			DoQPort:    res.DoQPort,
			Rand:       u.Rand,
			Now:        u.W.Now,
		},
		ListenPort:  listenPort,
		FixDoTReuse: cfg.FixDoTReuse,
		Use0RTT:     cfg.Use0RTT,
	})
	if err != nil {
		return nil
	}
	defer proxy.Close()
	eng := &browser.Engine{Host: vp.Host, Proxy: proxy.Addr()}

	var out []WebSample
	for _, page := range cfg.Pages {
		// Cache-warming navigation.
		loadWithTimeout(u, eng, page, cfg.LoadTimeout)
		for load := 0; load < cfg.Loads; load++ {
			proxy.ResetSessions()
			r, ok := loadWithTimeout(u, eng, page, cfg.LoadTimeout)
			s := WebSample{
				Vantage:          vp.Name,
				VantageContinent: vp.Continent,
				ResolverIdx:      idx,
				Protocol:         proto,
				Page:             page.Name,
				Load:             load,
				OK:               ok && r.Err == nil,
			}
			if s.OK {
				s.FCP, s.PLT, s.DNSQueries = r.FCP, r.PLT, r.DNSQueries
			}
			out = append(out, s)
		}
	}
	return out
}

func loadWithTimeout(u *resolver.Universe, eng *browser.Engine, page *pages.Page, timeout time.Duration) (browser.Result, bool) {
	done := sim.NewFuture[browser.Result](u.W, fmt.Sprintf("webload-%s", page.Name))
	u.W.Go(func() { done.Resolve(eng.Load(page)) })
	return done.WaitTimeout(timeout)
}
