// Hostile-network campaigns (DESIGN.md §11, experiments E25–E27): the
// racing fallback stub measured across middlebox policies, page loads
// with a mid-load access-network flip (QUIC connection migration vs TCP
// reconnect), and a steady query stream through a scheduled resolver
// outage with and without multi-upstream failover.
//
// All three run as sharded campaigns on the same engine as the paper
// campaigns: shard plans and seeds derive from the configuration only,
// so reports are byte-identical at any parallelism.
package measure

import (
	"time"

	"repro/internal/browser"
	"repro/internal/dnsmsg"
	"repro/internal/dnsproxy"
	"repro/internal/dox"
	"repro/internal/dox/racing"
	"repro/internal/netem"
	"repro/internal/pages"
	"repro/internal/resolver"
	"repro/internal/sim"
)

// --- E25: racing fallback under middlebox policies ---

// MiddleboxPolicy is one named fault-injection cell of the E25 grid.
type MiddleboxPolicy struct {
	Name   string
	Policy netem.Policy
}

// MiddleboxPolicies returns the canonical E25 policy grid: an open
// path, the paper's §6 concern of port-853 interference (silently and
// with active rejection), a full UDP blackhole (the middlebox posture
// that motivates happy eyeballs in the first place), and an RST
// injector on the TCP side.
func MiddleboxPolicies() []MiddleboxPolicy {
	return []MiddleboxPolicy{
		{Name: "open", Policy: netem.Policy{}},
		{Name: "drop-udp-853", Policy: netem.Policy{BlockUDPPorts: []uint16{853}}},
		{Name: "reject-udp-853", Policy: netem.Policy{BlockUDPPorts: []uint16{853}, Reject: true}},
		{Name: "blackhole-udp", Policy: netem.Policy{BlockAllUDP: true}},
		{Name: "rst-tcp-853", Policy: netem.Policy{BlockTCPPorts: []uint16{853}, RSTInject: true}},
	}
}

// RacingSample is one racing-stub resolve under a middlebox policy.
type RacingSample struct {
	Vantage     string
	ResolverIdx int
	Policy      string
	Round       int

	Winner  dox.Protocol
	Resolve time.Duration
	// RaceTime is the stub's fallback penalty: how long the winning
	// race ran, zero for sticky resolves.
	RaceTime time.Duration
	Sticky   bool
	OK       bool
}

// RacingConfig parameterizes the E25 campaign.
type RacingConfig struct {
	Blueprint   *resolver.Blueprint
	Seed        int64
	Parallelism int
	// ResolverBlock is the shard granularity (default 4).
	ResolverBlock int

	// Policies is the middlebox grid (default MiddleboxPolicies).
	Policies []MiddleboxPolicy
	// Queries per [vantage:resolver:policy] cell (default 4): the first
	// runs the race, the rest measure the sticky steady state.
	Queries int
	Domain  string
}

func (c *RacingConfig) defaults() {
	if c.ResolverBlock == 0 {
		c.ResolverBlock = 4
	}
	if len(c.Policies) == 0 {
		c.Policies = MiddleboxPolicies()
	}
	if c.Queries == 0 {
		c.Queries = 4
	}
	if c.Domain == "" {
		c.Domain = "google.com"
	}
	if c.Seed == 0 && c.Blueprint != nil {
		c.Seed = c.Blueprint.Seed
	}
}

// RunRacing executes the racing-fallback campaign and returns samples
// ordered by (vantage, resolver block, resolver, policy, round).
func RunRacing(cfg RacingConfig) ([]RacingSample, error) {
	cfg.defaults()
	return runSharded(cfg.Blueprint, cfg.Seed, cfg.Parallelism, cfg.ResolverBlock,
		func(u *resolver.Universe, vp *resolver.Vantage) []RacingSample {
			return racingShardBody(u, vp, cfg)
		})
}

func racingShardBody(u *resolver.Universe, vp *resolver.Vantage, cfg RacingConfig) []RacingSample {
	var out []RacingSample
	var qid uint16
	for idx, res := range u.Resolvers {
		for _, pol := range cfg.Policies {
			// The middlebox sits on the vantage's outbound path; replies
			// flow freely (blocking the forward direction is enough to
			// kill the exchange, as real port-blocking middleboxes do).
			u.Net.SetPolicy(vp.Host.Addr(), res.Addr, pol.Policy)
			stub := racing.New(racing.Config{
				Options: dox.Options{
					Backend:    vp.Backend,
					Resolver:   res.Addr,
					ServerName: res.Name,
					DoQPort:    res.DoQPort,
					// Bounded Do53 retransmits (satellite of this PR): a
					// blackholed rung gives up inside its race budget
					// instead of camping on the classic flat 5s.
					UDPTimeout: 500 * time.Millisecond,
					UDPBackoff: 2,
				},
				// No re-probing mid-cell: the policy never lifts, so a
				// re-race would only repeat the measured penalty.
				ReprobeInterval: -1,
			})
			for round := 0; round < cfg.Queries; round++ {
				qid++
				q := dnsmsg.NewQuery(qid, cfg.Domain, dnsmsg.TypeA)
				before := stub.Metrics().Races
				start := u.W.Now()
				_, winner, err := stub.Resolve(&q)
				m := stub.Metrics()
				out = append(out, RacingSample{
					Vantage:     vp.Name,
					ResolverIdx: u.GlobalResolverIdx(idx),
					Policy:      pol.Name,
					Round:       round,
					Winner:      winner,
					Resolve:     u.W.Now() - start,
					RaceTime:    m.LastRaceTime,
					Sticky:      m.Races == before,
					OK:          err == nil,
				})
			}
			stub.Close()
			u.Net.SetPolicy(vp.Host.Addr(), res.Addr, netem.Policy{})
		}
	}
	return out
}

// --- E26: page load with a mid-load access-network flip ---

// MigrationWebSample is one page load during which the vantage's access
// link flips (wifi to cellular) and the DNS proxy's upstream session
// either migrates (QUIC) or reconnects (TCP).
type MigrationWebSample struct {
	Vantage     string
	ResolverIdx int
	Protocol    dox.Protocol
	Page        string

	PLT        time.Duration
	DNSQueries int
	// Migrated reports whether the upstream session survived the flip
	// via QUIC connection migration.
	Migrated bool
	OK       bool
}

// MigrationWebConfig parameterizes the E26 campaign. The blueprint
// should place vantages behind the wifi access profile; FlipTo names
// the profile the link flips to mid-load.
type MigrationWebConfig struct {
	Blueprint   *resolver.Blueprint
	Seed        int64
	Parallelism int
	// ResolverBlock is the shard granularity (default 2).
	ResolverBlock int

	// Protocols under comparison (default DoQ, DoH3, DoT, DoH: the two
	// migrating QUIC transports vs the two reconnecting TCP ones).
	Protocols []dox.Protocol
	Pages     []*pages.Page
	// LoadTimeout bounds one page load (default 60s).
	LoadTimeout time.Duration
	// FlipTo is the access profile after the flip (default "4g").
	FlipTo string
}

func (c *MigrationWebConfig) defaults() {
	if c.ResolverBlock == 0 {
		c.ResolverBlock = 2
	}
	if len(c.Protocols) == 0 {
		c.Protocols = []dox.Protocol{dox.DoQ, dox.DoH3, dox.DoT, dox.DoH}
	}
	if len(c.Pages) == 0 {
		c.Pages = pages.Top10()[:3]
	}
	if c.LoadTimeout == 0 {
		c.LoadTimeout = 60 * time.Second
	}
	if c.FlipTo == "" {
		c.FlipTo = "4g"
	}
	if c.Seed == 0 && c.Blueprint != nil {
		c.Seed = c.Blueprint.Seed
	}
}

// RunMigrationWeb executes the mid-load migration campaign, ordered by
// (vantage, resolver block, resolver, protocol, page).
func RunMigrationWeb(cfg MigrationWebConfig) ([]MigrationWebSample, error) {
	cfg.defaults()
	flip, err := netem.ProfileByName(cfg.FlipTo)
	if err != nil {
		return nil, err
	}
	return runSharded(cfg.Blueprint, cfg.Seed, cfg.Parallelism, cfg.ResolverBlock,
		func(u *resolver.Universe, vp *resolver.Vantage) []MigrationWebSample {
			return migrationShardBody(u, vp, flip, cfg)
		})
}

func migrationShardBody(u *resolver.Universe, vp *resolver.Vantage, flip netem.AccessProfile, cfg MigrationWebConfig) []MigrationWebSample {
	var out []MigrationWebSample
	for idx, res := range u.Resolvers {
		out = append(out, runMigrationCell(u, vp, u.GlobalResolverIdx(idx), res, flip, cfg)...)
	}
	return out
}

// migrationArm is one protocol's proxy+engine pair within a cell. All
// arms of a cell share the same flip time, so the protocols are
// compared under an identical fault and only their recovery differs.
type migrationArm struct {
	proto dox.Protocol
	proxy *dnsproxy.Proxy
	eng   *browser.Engine
}

func runMigrationCell(u *resolver.Universe, vp *resolver.Vantage, globalIdx int, res *resolver.Resolver, flip netem.AccessProfile, cfg MigrationWebConfig) []MigrationWebSample {
	var arms []migrationArm
	for i, proto := range cfg.Protocols {
		proxy, err := dnsproxy.New(vp.Backend, dnsproxy.Config{
			Upstream: proto,
			Options: dox.Options{
				Resolver:   res.Addr,
				ServerName: res.Name,
				DoQPort:    res.DoQPort,
			},
			ListenPort: uint16(10000 + 8*vp.Index + i),
			// A query the flip kills mid-flight is retried over a fresh
			// session, as production forwarders do — the TCP arms pay
			// that reconnect, the QUIC arms migrate instead.
			RetryUpstream: true,
		})
		if err != nil {
			continue
		}
		arms = append(arms, migrationArm{proto: proto, proxy: proxy,
			eng: &browser.Engine{Backend: vp.Backend, Proxy: proxy.Addr()}})
	}
	defer func() {
		for _, a := range arms {
			a.proxy.Close()
		}
	}()
	base, _ := u.Net.AccessLink(vp.Host.Addr())

	var out []MigrationWebSample
	for _, page := range cfg.Pages {
		// Warming navigation on the base link per arm (fills each
		// proxy's cache, provisions tickets/tokens), then a second
		// warm-cache navigation that calibrates where "mid load" falls.
		// Calibrate on elapsed virtual time, not on PLT: PLT pads
		// render and onLoad delays that no fetch sleeps through, and a
		// flip scheduled by PLT would fire after the last byte arrived.
		// The flip offset is the smallest calibrated half-load across
		// arms — one shared fault instant that lands inside every
		// arm's network window, so a protocol whose slower DNS
		// stretches its own calibration load cannot buy itself a later,
		// milder flip.
		flipAt := time.Duration(-1)
		for _, a := range arms {
			loadWithTimeout(u, a.eng, page, cfg.LoadTimeout)
			calStart := u.W.Now()
			_, ok := loadWithTimeout(u, a.eng, page, cfg.LoadTimeout)
			el := u.W.Now() - calStart
			if ok && el > 0 && (flipAt < 0 || el/2 < flipAt) {
				flipAt = el / 2
			}
		}
		if flipAt <= 0 {
			flipAt = cfg.LoadTimeout / 4
		}

		for _, a := range arms {
			a := a
			a.proxy.ResetSessions()
			// A long-lived stub proxy keeps a live upstream session
			// from prior traffic; re-establish one (resumed handshake)
			// so the flip has a session to move, not a cold slate.
			_ = a.proxy.Prime()

			// Measured navigation: at the shared mid-load instant the
			// access link flips and the proxy moves its upstream
			// session to the new network. Timer callbacks run as
			// tasks, so blocking on path validation there is fine.
			migrated := false
			timer := vp.Backend.AfterFunc(flipAt, func() {
				u.Net.SetAccessLink(vp.Host.Addr(), flip)
				migrated, _ = a.proxy.MigrateUpstream()
			})
			r, ok := loadWithTimeout(u, a.eng, page, cfg.LoadTimeout)
			// A load that ended before the flip keeps its timer from
			// firing into the next measurement.
			timer.Stop()
			u.Net.SetAccessLink(vp.Host.Addr(), base)

			s := MigrationWebSample{
				Vantage:     vp.Name,
				ResolverIdx: globalIdx,
				Protocol:    a.proto,
				Page:        page.Name,
				Migrated:    migrated,
				OK:          ok && r.Err == nil,
			}
			if s.OK {
				s.PLT, s.DNSQueries = r.PLT, r.DNSQueries
			}
			out = append(out, s)
		}
	}
	return out
}

// --- E27: resolver failover through a scheduled outage ---

// FailoverSample is one query of the steady stream driven through a
// primary-resolver outage.
type FailoverSample struct {
	Vantage string
	// Set is the global index of the upstream set's primary resolver.
	Set int
	// Arm is "pinned" or "failover".
	Arm   string
	Round int
	// At is the query's start time relative to the arm's stream start;
	// the outage window is expressed on the same clock.
	At       time.Duration
	Upstream int // index into the upstream set actually queried
	Resolve  time.Duration
	OK       bool
}

// FailoverCampaignConfig parameterizes the E27 campaign. Each shard's
// resolver block forms one upstream set: the first resolver is the
// primary, which suffers a total outage for [OutageStart, OutageEnd)
// on the arm-relative clock.
type FailoverCampaignConfig struct {
	Blueprint   *resolver.Blueprint
	Seed        int64
	Parallelism int

	// Upstreams is the resolvers per set — and the shard granularity
	// (default 3).
	Upstreams int
	// Queries is the stream length per arm (default 40).
	Queries int
	// Interval spaces queries apart (default 1s).
	Interval time.Duration
	// QueryTimeout bounds one query; a timeout is the failure the
	// health tracker counts (default 1s).
	QueryTimeout time.Duration
	// OutageStart and OutageEnd bound the primary's outage on the
	// arm-relative clock (defaults: 10s and 25s).
	OutageStart, OutageEnd time.Duration
	// Failover is the health-tracker configuration (defaults applied by
	// racing.NewFailover).
	Failover racing.FailoverConfig
	Domain   string
}

func (c *FailoverCampaignConfig) defaults() {
	if c.Upstreams == 0 {
		c.Upstreams = 3
	}
	if c.Queries == 0 {
		c.Queries = 40
	}
	if c.Interval == 0 {
		c.Interval = time.Second
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = time.Second
	}
	if c.OutageStart == 0 {
		c.OutageStart = 10 * time.Second
	}
	if c.OutageEnd == 0 {
		c.OutageEnd = 25 * time.Second
	}
	if c.Domain == "" {
		c.Domain = "google.com"
	}
	if c.Seed == 0 && c.Blueprint != nil {
		c.Seed = c.Blueprint.Seed
	}
}

// RunFailoverCampaign executes the outage campaign: per upstream set, a
// pinned arm (every query to the primary) and a failover arm (upstream
// picked by the health tracker) run back to back through identical
// arm-relative outage schedules. Samples are ordered by (vantage,
// set, arm, round).
func RunFailoverCampaign(cfg FailoverCampaignConfig) ([]FailoverSample, error) {
	cfg.defaults()
	return runSharded(cfg.Blueprint, cfg.Seed, cfg.Parallelism, cfg.Upstreams,
		func(u *resolver.Universe, vp *resolver.Vantage) []FailoverSample {
			return failoverShardBody(u, vp, cfg)
		})
}

func failoverShardBody(u *resolver.Universe, vp *resolver.Vantage, cfg FailoverCampaignConfig) []FailoverSample {
	if len(u.Resolvers) < 2 {
		// A set needs somewhere to fail over to; the population floor
		// can leave a short tail block. Skip it.
		return nil
	}
	var out []FailoverSample
	out = append(out, runFailoverArm(u, vp, cfg, false)...)
	out = append(out, runFailoverArm(u, vp, cfg, true)...)
	return out
}

// runFailoverArm drives one arm's query stream. The primary's outage is
// scheduled relative to the arm's start, so both arms see the identical
// failure pattern on their own clocks.
func runFailoverArm(u *resolver.Universe, vp *resolver.Vantage, cfg FailoverCampaignConfig, failover bool) []FailoverSample {
	primary := u.Resolvers[0]
	armStart := u.W.Now()
	base := u.Net.Path(vp.Host.Addr(), primary.Addr)
	down := base
	down.Loss = 1
	u.Net.SetSymmetricPathSchedule(vp.Host.Addr(), primary.Addr, []netem.PathStep{
		{At: armStart, Params: base},
		{At: armStart + cfg.OutageStart, Params: down},
		{At: armStart + cfg.OutageEnd, Params: base},
	})
	defer u.Net.SetSymmetricPathSchedule(vp.Host.Addr(), primary.Addr, nil)

	arm := "pinned"
	if failover {
		arm = "failover"
	}
	tracker := racing.NewFailover(vp.Backend, len(u.Resolvers), cfg.Failover)
	var qid uint16
	var out []FailoverSample
	for round := 0; round < cfg.Queries; round++ {
		pick := 0
		if failover {
			pick = tracker.Pick()
		}
		res := u.Resolvers[pick]
		qid++
		start := u.W.Now()
		ok := failoverQuery(u, vp, res, cfg, qid)
		tracker.Report(pick, ok)
		out = append(out, FailoverSample{
			Vantage:  vp.Name,
			Set:      u.GlobalResolverIdx(0),
			Arm:      arm,
			Round:    round,
			At:       start - armStart,
			Upstream: pick,
			Resolve:  u.W.Now() - start,
			OK:       ok,
		})
		u.W.Sleep(cfg.Interval)
	}
	return out
}

// failoverQuery runs one bounded Do53 exchange — the transport a
// forwarder's health checks ride on. The bounded-retransmit knobs keep
// a dead upstream's cost inside the query timeout.
func failoverQuery(u *resolver.Universe, vp *resolver.Vantage, res *resolver.Resolver, cfg FailoverCampaignConfig, qid uint16) bool {
	done := sim.NewFuture[bool](u.W, "failover-query")
	u.W.Go(func() {
		c, err := dox.Connect(dox.DoUDP, dox.Options{
			Backend:    vp.Backend,
			Resolver:   res.Addr,
			ServerName: res.Name,
			UDPTimeout: cfg.QueryTimeout / 3,
			UDPRetries: 1,
		})
		if err != nil {
			done.Resolve(false)
			return
		}
		defer c.Close()
		q := dnsmsg.NewQuery(qid, cfg.Domain, dnsmsg.TypeA)
		_, err = c.Query(&q)
		done.Resolve(err == nil)
	})
	ok, alive := done.WaitTimeout(cfg.QueryTimeout)
	return alive && ok
}
