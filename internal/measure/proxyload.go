package measure

import (
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dnsproxy"
	"repro/internal/dox"
	"repro/internal/netem"
	"repro/internal/resolver"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ProxyServeConfig parameterizes the proxy serving-semantics campaign
// (E22–E24): per [vantage : resolver] combination one local DNS proxy is
// started and Clients concurrent stub clients issue the same Zipf query
// stream through it in lockstep. Aligned streams put identical queries
// in flight at the same virtual instant, which is exactly the regime
// coalescing, serve-stale and prefetch are built for.
type ProxyServeConfig struct {
	// Blueprint is the resolver population; the campaign is partitioned
	// by vantage and resolver block like the other sharded campaigns.
	Blueprint *resolver.Blueprint
	// Seed is the campaign seed (default: the blueprint's seed).
	Seed int64
	// Parallelism caps the worker pool (0 = GOMAXPROCS); wall time
	// only, never results.
	Parallelism int
	// ResolverBlock is the shard granularity in resolvers (default 8).
	ResolverBlock int

	// Protocol is the proxy's upstream transport (default DoUDP).
	Protocol dox.Protocol
	// Clients is the number of concurrent stub clients per stream
	// (default 4).
	Clients int
	// Queries per client (default 120).
	Queries int
	// Names sizes the Zipf name universe (default 300).
	Names int
	// Skew is the Zipf exponent (default 1.2; must be > 1).
	Skew float64
	// QueryInterval spaces each client's queries in virtual time
	// (default 1s).
	QueryInterval time.Duration
	// QueryTimeout bounds one client query (default 3s). It must exceed
	// the proxy's worst-case upstream exchange — (UDPRetries+1) x
	// UDPTimeout for DoUDP — or stale answers arrive after the client
	// gave up.
	QueryTimeout time.Duration

	// Proxy serving semantics under test (threaded into
	// dnsproxy.Config; the stub cache is always on — it is the layer
	// serve-stale and prefetch live on).
	Coalesce           bool
	ServeStale         bool
	StaleTTL           time.Duration
	RevalidateInterval time.Duration
	Prefetch           bool
	PrefetchMinHits    int
	PrefetchLead       time.Duration
	RateLimitQPS       float64
	RateLimitBurst     int
	StubCacheCapacity  int
	// UDPTimeout shortens the proxy's upstream retransmission timeout
	// (default: the resolv.conf 5s; E23 uses 500ms so stale fallbacks
	// beat the client timeout).
	UDPTimeout time.Duration

	// ClassifyStart/ClassifyEnd select a virtual-time window: queries
	// *sent* inside [Start, End) are tallied as WindowQueries, and those
	// also *answered* before End as WindowOK (E23's
	// availability-during-outage metric — an answer that only arrives
	// after the outage heals did not help anyone inside it). End == 0
	// disables classification.
	ClassifyStart, ClassifyEnd time.Duration
}

func (c *ProxyServeConfig) defaults() {
	// Protocol's zero value is DoUDP, the intended default.
	if c.Clients == 0 {
		c.Clients = 4
	}
	if c.Queries == 0 {
		c.Queries = 120
	}
	if c.Names == 0 {
		c.Names = 300
	}
	if c.Skew == 0 {
		c.Skew = 1.2
	}
	if c.QueryInterval == 0 {
		c.QueryInterval = time.Second
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 3 * time.Second
	}
	if c.ResolverBlock == 0 {
		c.ResolverBlock = 8
	}
	if c.Seed == 0 && c.Blueprint != nil {
		c.Seed = c.Blueprint.Seed
	}
}

// ProxyServeSummary aggregates one [vantage : resolver] proxy stream
// with fixed memory: client-observed resolve times and stale ages go
// into streaming sketches. Summaries gather in shard order and merge
// deterministically (MergeProxyServeSummaries).
type ProxyServeSummary struct {
	Vantage     string
	ResolverIdx int
	Protocol    dox.Protocol

	// Client-side tallies, merged in client order.
	Queries, OK int
	// Refused counts REFUSED responses (rate limiting).
	Refused int
	// WindowQueries/WindowOK tally queries sent inside the
	// classification window (zero without one).
	WindowQueries, WindowOK int

	// Proxy-side counters.
	ProxyQueries    int
	StubHits        int
	UpstreamQueries int
	Coalesced       int
	StaleServed     int
	Revalidations   int
	Prefetches      int
	Failures        int

	// Resolve sketches the client-observed latency of answered queries;
	// StaleAge the staleness (age past expiry) of stale-served answers.
	Resolve, StaleAge *stats.Sketch
}

func newProxyServeSummary(vantage string, resolverIdx int, proto dox.Protocol) ProxyServeSummary {
	return ProxyServeSummary{
		Vantage:     vantage,
		ResolverIdx: resolverIdx,
		Protocol:    proto,
		Resolve:     stats.NewSketch(),
		StaleAge:    stats.NewSketch(),
	}
}

// MergeProxyServeSummaries folds per-stream summaries into one
// aggregate. Callers pass summaries in campaign order; sketch counts
// merge exactly, so the aggregate is byte-identical at any parallelism.
func MergeProxyServeSummaries(parts []ProxyServeSummary) ProxyServeSummary {
	out := newProxyServeSummary("all", -1, dox.DoUDP)
	if len(parts) > 0 {
		out.Protocol = parts[0].Protocol
	}
	for _, p := range parts {
		out.Queries += p.Queries
		out.OK += p.OK
		out.Refused += p.Refused
		out.WindowQueries += p.WindowQueries
		out.WindowOK += p.WindowOK
		out.ProxyQueries += p.ProxyQueries
		out.StubHits += p.StubHits
		out.UpstreamQueries += p.UpstreamQueries
		out.Coalesced += p.Coalesced
		out.StaleServed += p.StaleServed
		out.Revalidations += p.Revalidations
		out.Prefetches += p.Prefetches
		out.Failures += p.Failures
		out.Resolve.Merge(p.Resolve)
		out.StaleAge.Merge(p.StaleAge)
	}
	return out
}

// RunProxyServe executes the campaign and returns one summary per
// [vantage : resolver] stream, ordered by (vantage, resolver block,
// resolver). Each shard confines its proxy and cache state to its own
// World, which keeps the summary stream byte-identical at any
// parallelism.
func RunProxyServe(cfg ProxyServeConfig) ([]ProxyServeSummary, error) {
	cfg.defaults()
	return runSharded(cfg.Blueprint, cfg.Seed, cfg.Parallelism, cfg.ResolverBlock,
		func(u *resolver.Universe, vp *resolver.Vantage) []ProxyServeSummary {
			var out []ProxyServeSummary
			for idx, res := range u.Resolvers {
				out = append(out, runProxyStream(u, vp, u.GlobalResolverIdx(idx), res, cfg))
			}
			return out
		})
}

// runProxyStream runs one proxy and its aligned client cohort against
// res. Every client draws the identical name sequence — the workload
// RNG is keyed by (campaign seed, vantage, global resolver index), not
// the client — and sends on the same cadence, so round i puts Clients
// identical queries in flight together.
func runProxyStream(u *resolver.Universe, vp *resolver.Vantage, globalIdx int, res *resolver.Resolver, cfg ProxyServeConfig) ProxyServeSummary {
	w := u.W
	s := newProxyServeSummary(vp.Name, globalIdx, cfg.Protocol)
	proxy, err := dnsproxy.New(vp.Backend, dnsproxy.Config{
		Upstream: cfg.Protocol,
		Options: dox.Options{
			Resolver:   res.Addr,
			ServerName: res.Name,
			DoQPort:    res.DoQPort,
			UDPTimeout: cfg.UDPTimeout,
		},
		ListenPort:         uint16(10000 + vp.Index),
		StubCache:          true,
		StubCacheCapacity:  cfg.StubCacheCapacity,
		Coalesce:           cfg.Coalesce,
		ServeStale:         cfg.ServeStale,
		StaleTTL:           cfg.StaleTTL,
		RevalidateInterval: cfg.RevalidateInterval,
		Prefetch:           cfg.Prefetch,
		PrefetchMinHits:    cfg.PrefetchMinHits,
		PrefetchLead:       cfg.PrefetchLead,
		RateLimitQPS:       cfg.RateLimitQPS,
		RateLimitBurst:     cfg.RateLimitBurst,
	})
	if err != nil {
		return s
	}
	defer proxy.Close()

	names := make([]string, cfg.Queries)
	wl := NewZipfWorkload(
		rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, 0x9E22, uint64(vp.Index), uint64(globalIdx)))),
		cfg.Skew, cfg.Names)
	for i := range names {
		names[i], _ = wl.Next()
	}

	type tally struct {
		queries, ok, refused int
		windowQ, windowOK    int
		resolve              *stats.Sketch
	}
	tallies := make([]tally, cfg.Clients)
	wg := sim.NewWaitGroup(w)
	wg.Add(cfg.Clients)
	for ci := 0; ci < cfg.Clients; ci++ {
		ci := ci
		tallies[ci].resolve = stats.NewSketch()
		w.Go(func() {
			defer wg.Done()
			runProxyClient(w, vp.Host, proxy.Addr(), names, cfg, &tallies[ci].queries,
				&tallies[ci].ok, &tallies[ci].refused, &tallies[ci].windowQ,
				&tallies[ci].windowOK, tallies[ci].resolve)
		})
	}
	wg.Wait()

	for i := range tallies {
		s.Queries += tallies[i].queries
		s.OK += tallies[i].ok
		s.Refused += tallies[i].refused
		s.WindowQueries += tallies[i].windowQ
		s.WindowOK += tallies[i].windowOK
		s.Resolve.Merge(tallies[i].resolve)
	}
	s.ProxyQueries = proxy.Queries
	s.StubHits = proxy.StubHits
	s.UpstreamQueries = proxy.UpstreamQueries
	s.Coalesced = proxy.Coalesced
	s.StaleServed = proxy.StaleServed
	s.Revalidations = proxy.Revalidations
	s.Prefetches = proxy.Prefetches
	s.Failures = proxy.Failures
	if proxy.StaleAge != nil {
		s.StaleAge.Merge(proxy.StaleAge)
	}
	return s
}

// runProxyClient is one stub client's query loop: send round i's name,
// wait (bounded) for the matching response, tally the outcome. Late
// responses from timed-out rounds are drained by ID match.
func runProxyClient(w *sim.World, host *netem.Host, proxyAddr netip.AddrPort, names []string, cfg ProxyServeConfig,
	queries, ok, refused, windowQ, windowOK *int, resolve *stats.Sketch) {
	sock := host.Dial(netem.ProtoUDP, 8)
	defer sock.Close()
	for i, name := range names {
		if i > 0 {
			w.Sleep(cfg.QueryInterval)
		}
		qid := uint16(i + 1)
		q := dnsmsg.NewQuery(qid, name, dnsmsg.TypeA)
		sent := w.Now()
		*queries++
		inWindow := cfg.ClassifyEnd > 0 && sent >= cfg.ClassifyStart && sent < cfg.ClassifyEnd
		if inWindow {
			*windowQ++
		}
		sock.Send(proxyAddr, q.AppendEncode(sock.Pool().Get(512)))
		deadline := sent + cfg.QueryTimeout
		for {
			remaining := deadline - w.Now()
			if remaining <= 0 {
				break
			}
			d, alive := sock.RecvTimeout(remaining)
			if !alive {
				break
			}
			resp, err := dnsmsg.Decode(d.Payload)
			sock.Pool().Put(d.Payload)
			if err != nil || resp.ID != qid {
				// A late answer to an earlier, timed-out round.
				continue
			}
			if resp.RCode == dnsmsg.RCodeRefused {
				*refused++
				break
			}
			*ok++
			resolve.AddDuration(w.Now() - sent)
			if inWindow && w.Now() < cfg.ClassifyEnd {
				*windowOK++
			}
			break
		}
	}
}

// StaleRatio returns StaleServed as a share of answered queries.
func (s ProxyServeSummary) StaleRatio() float64 {
	if s.OK == 0 {
		return 0
	}
	return float64(s.StaleServed) / float64(s.OK)
}

// Availability returns WindowOK/WindowQueries (1 when no window was
// classified — nothing was unavailable).
func (s ProxyServeSummary) Availability() float64 {
	if s.WindowQueries == 0 {
		return 1
	}
	return float64(s.WindowOK) / float64(s.WindowQueries)
}

// UpstreamReduction returns 1 - UpstreamQueries/ProxyMisses… the share
// of upstream exchanges saved relative to queries that reached the
// proxy and missed the stub cache. Guarded against empty streams.
func (s ProxyServeSummary) UpstreamReduction() float64 {
	misses := s.ProxyQueries - s.StubHits - s.Refused
	if misses <= 0 {
		return 0
	}
	return 1 - float64(s.UpstreamQueries)/float64(misses)
}
