package measure

import (
	"fmt"
	"math/rand"
)

// ZipfWorkload generates a deterministic, popularity-skewed query-name
// stream: rank 0 is the most popular name, and P(rank=k) follows a Zipf
// law with exponent Skew. This models many users behind a shared
// resolver — the workload regime in which the paper attributes most of
// the encrypted-transport resolution-time spread to resolver-side
// caching — instead of the unique cold names of the single-query
// campaign.
//
// The name table is precomputed at construction, so drawing from the
// workload allocates nothing: a million-query campaign costs the fixed
// table plus the fixed-size generator state.
type ZipfWorkload struct {
	zipf  *rand.Zipf
	names []string
}

// NewZipfWorkload builds a workload over a universe of n names with
// the given skew (rand.Zipf requires skew > 1; higher = more skewed,
// web-like popularity sits around 1.2–2). All randomness comes from
// rng, so equal (rng seed, skew, n) yields the identical stream.
func NewZipfWorkload(rng *rand.Rand, skew float64, n int) *ZipfWorkload {
	if n < 1 {
		n = 1
	}
	if skew <= 1 {
		skew = 1.0001
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("site-%06d.example", i)
	}
	return &ZipfWorkload{
		zipf:  rand.NewZipf(rng, skew, 1, uint64(n-1)),
		names: names,
	}
}

// Names returns the size of the name universe.
func (w *ZipfWorkload) Names() int { return len(w.names) }

// Next draws the next query: the name and its popularity rank
// (0 = most popular).
func (w *ZipfWorkload) Next() (string, uint64) {
	r := w.zipf.Uint64()
	return w.names[r], r
}
