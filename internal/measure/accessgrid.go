package measure

import (
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/pages"
	"repro/internal/resolver"
)

// This file implements the access-network profile grids of E19 and E21:
// the same blueprint population is rebuilt once per named netem access
// profile (fiber / cable / 4g / 3g / satellite) and the corresponding
// campaign runs against each. Because the blueprint seed is identical
// across cells, the resolver population, the vantage placement and all
// per-resolver randomness match exactly — the only difference between
// two cells is the access link every vantage sits behind, so any shift
// in the medians is attributable to the link model alone.

// AccessGridConfig parameterizes a profile-grid campaign.
type AccessGridConfig struct {
	// Seed is the blueprint (and campaign) seed, shared by every cell.
	Seed int64
	// ResolverCounts sizes the population (see resolver.ScaledCounts).
	ResolverCounts map[geo.Continent]int
	// Loss is the per-path loss rate (resolver.UniverseConfig semantics:
	// 0 = the 0.3% default, resolver.NoLoss = lossless).
	Loss float64
	// Profiles lists the netem access-profile names of the grid rows
	// (default: all named profiles, best to worst).
	Profiles []string
	// Parallelism caps each cell campaign's worker pool.
	Parallelism int

	// Protocols and Rounds parameterize the single-query cells.
	Protocols []dox.Protocol
	Rounds    int

	// Pages and Loads parameterize the web cells.
	Pages []*pages.Page
	Loads int
}

func (c *AccessGridConfig) profiles() []string {
	if len(c.Profiles) > 0 {
		return c.Profiles
	}
	return netem.ProfileNames()
}

// AccessGridCell is one profile's single-query sample stream.
type AccessGridCell struct {
	Profile string
	Samples []SingleQuerySample
}

// AccessWebGridCell is one profile's web sample stream.
type AccessWebGridCell struct {
	Profile string
	Samples []WebSample
}

func (c AccessGridConfig) blueprint(profile string) (*resolver.Blueprint, error) {
	return resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           c.Seed,
		ResolverCounts: c.ResolverCounts,
		Loss:           c.Loss,
		Access:         profile,
	})
}

// RunAccessGrid runs the single-query campaign once per access profile,
// in profile order. Each cell is itself a sharded campaign, so cells
// inherit the byte-identical-at-any-parallelism guarantee; the grid
// adds no randomness of its own.
func RunAccessGrid(cfg AccessGridConfig) ([]AccessGridCell, error) {
	var out []AccessGridCell
	for _, profile := range cfg.profiles() {
		bp, err := cfg.blueprint(profile)
		if err != nil {
			return nil, err
		}
		samples, err := RunSingleQuery(SingleQueryConfig{
			Blueprint:   bp,
			Parallelism: cfg.Parallelism,
			Protocols:   cfg.Protocols,
			Rounds:      cfg.Rounds,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AccessGridCell{Profile: profile, Samples: samples})
	}
	return out, nil
}

// RunAccessWebGrid runs the web campaign once per access profile, in
// profile order.
func RunAccessWebGrid(cfg AccessGridConfig) ([]AccessWebGridCell, error) {
	var out []AccessWebGridCell
	for _, profile := range cfg.profiles() {
		bp, err := cfg.blueprint(profile)
		if err != nil {
			return nil, err
		}
		samples, err := RunWeb(WebConfig{
			Blueprint:   bp,
			Parallelism: cfg.Parallelism,
			Protocols:   cfg.Protocols,
			Pages:       cfg.Pages,
			Loads:       cfg.Loads,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AccessWebGridCell{Profile: profile, Samples: samples})
	}
	return out, nil
}
