package measure

import (
	"math/rand"
	"time"

	"repro/internal/cache"
	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/resolver"
	"repro/internal/sim"
	"repro/internal/stats"
)

// CacheWorkloadConfig parameterizes a Zipf cache-workload campaign: per
// [vantage : resolver] combination, one client issues a popularity-
// skewed query stream against the resolver's shared answer cache,
// modelling many users behind one resolver rather than the single-query
// campaign's unique cold names.
type CacheWorkloadConfig struct {
	// Blueprint is the resolver population; the campaign is partitioned
	// by vantage and resolver block like the other sharded campaigns.
	Blueprint *resolver.Blueprint
	// Seed is the campaign seed (default: the blueprint's seed).
	Seed int64
	// Parallelism caps the worker pool (0 = GOMAXPROCS); wall time
	// only, never results.
	Parallelism int
	// ResolverBlock is the shard granularity in resolvers (default 8).
	ResolverBlock int

	// Protocol is the transport the stream runs on (default DoUDP; the
	// cache is transport-agnostic, so E16 measures the cache itself on
	// the cheapest transport and E17 covers the per-transport split).
	Protocol dox.Protocol
	// Queries per [vantage:resolver] stream (default 500).
	Queries int
	// Names sizes the Zipf name universe (default 1000).
	Names int
	// Skew is the Zipf exponent (default 1.2; must be > 1).
	Skew float64
	// QueryInterval spaces queries in virtual time (default 1s), which
	// is what makes TTL expiry observable: a popular name is refreshed
	// before its TTL lapses, an unpopular one expires in between.
	QueryInterval time.Duration

	// StubCache adds a client-side answer cache in front of the
	// transport: repeated names within TTL never leave the vantage.
	StubCache bool
	// StubCacheCapacity bounds the stub cache (LRU); 0 = unbounded.
	StubCacheCapacity int

	// QueryTimeout bounds one query (default 15s).
	QueryTimeout time.Duration
}

func (c *CacheWorkloadConfig) defaults() {
	if c.Queries == 0 {
		c.Queries = 500
	}
	if c.Names == 0 {
		c.Names = 1000
	}
	if c.Skew == 0 {
		c.Skew = 1.2
	}
	if c.QueryInterval == 0 {
		c.QueryInterval = time.Second
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 15 * time.Second
	}
	if c.ResolverBlock == 0 {
		c.ResolverBlock = 8
	}
	if c.Seed == 0 && c.Blueprint != nil {
		c.Seed = c.Blueprint.Seed
	}
}

// CacheWorkloadSummary aggregates one query stream with a fixed memory
// budget: resolve times go into streaming sketches, never a sample
// slice, so campaign memory is per-stream-constant no matter how many
// queries flow through. Summaries gather in shard order and merge
// deterministically (MergeCacheSummaries).
type CacheWorkloadSummary struct {
	Vantage     string
	ResolverIdx int
	Protocol    dox.Protocol

	// Queries and OK count issued and answered queries.
	Queries, OK int
	// StubHits counts queries the client-side stub cache absorbed.
	StubHits int
	// ResolverCache is the resolver-side cache behaviour this stream
	// induced (hits, misses, expirations, evictions).
	ResolverCache cache.Stats

	// Resolve sketches the resolve time of every answered query;
	// HitResolve and MissResolve split it by resolver-cache outcome
	// (stub-cache hits count as zero-cost hits).
	Resolve, HitResolve, MissResolve *stats.Sketch
}

// newCacheSummary returns a summary with empty sketches.
func newCacheSummary(vantage string, resolverIdx int, proto dox.Protocol) CacheWorkloadSummary {
	return CacheWorkloadSummary{
		Vantage:     vantage,
		ResolverIdx: resolverIdx,
		Protocol:    proto,
		Resolve:     stats.NewSketch(),
		HitResolve:  stats.NewSketch(),
		MissResolve: stats.NewSketch(),
	}
}

// MergeCacheSummaries folds per-stream summaries into one aggregate.
// Callers pass summaries in campaign order; sketch counts merge exactly,
// so the aggregate is byte-identical at any parallelism.
func MergeCacheSummaries(parts []CacheWorkloadSummary) CacheWorkloadSummary {
	out := newCacheSummary("all", -1, dox.DoUDP)
	if len(parts) > 0 {
		out.Protocol = parts[0].Protocol
	}
	for _, p := range parts {
		out.Queries += p.Queries
		out.OK += p.OK
		out.StubHits += p.StubHits
		out.ResolverCache.Merge(p.ResolverCache)
		out.Resolve.Merge(p.Resolve)
		out.HitResolve.Merge(p.HitResolve)
		out.MissResolve.Merge(p.MissResolve)
	}
	return out
}

// RunCacheWorkload executes the campaign and returns one summary per
// [vantage : resolver] stream, ordered by (vantage, resolver block,
// resolver). Each shard confines its cache state — the resolvers' shared
// caches and any stub caches — to its own World, which is what keeps the
// summary stream byte-identical at any parallelism.
func RunCacheWorkload(cfg CacheWorkloadConfig) ([]CacheWorkloadSummary, error) {
	cfg.defaults()
	return runSharded(cfg.Blueprint, cfg.Seed, cfg.Parallelism, cfg.ResolverBlock,
		func(u *resolver.Universe, vp *resolver.Vantage) []CacheWorkloadSummary {
			var out []CacheWorkloadSummary
			for idx, res := range u.Resolvers {
				out = append(out, runCacheStream(u, vp, u.GlobalResolverIdx(idx), res, cfg))
			}
			return out
		})
}

// runCacheStream issues one Zipf query stream from vp against res. The
// workload RNG derives from (campaign seed, vantage, global resolver
// index), so a stream draws the same names whether its resolver is
// instantiated in a whole universe or a single-shard partition.
func runCacheStream(u *resolver.Universe, vp *resolver.Vantage, globalIdx int, res *resolver.Resolver, cfg CacheWorkloadConfig) CacheWorkloadSummary {
	w := u.W
	s := newCacheSummary(vp.Name, globalIdx, cfg.Protocol)
	wl := NewZipfWorkload(
		rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, 0x21BF, uint64(vp.Index), uint64(globalIdx)))),
		cfg.Skew, cfg.Names)
	var stub *cache.Cache
	if cfg.StubCache {
		stub = cache.New(w.Now, cfg.StubCacheCapacity)
	}
	statsBefore := res.CacheStats()

	var client dox.Client
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	var qid uint16
	for i := 0; i < cfg.Queries; i++ {
		if i > 0 {
			w.Sleep(cfg.QueryInterval)
		}
		name, _ := wl.Next()
		qid++
		q := dnsmsg.NewQuery(qid, name, dnsmsg.TypeA)
		s.Queries++
		if stub != nil {
			if resp := stub.AnswerQuery(&q); resp != nil {
				// Absorbed locally: an answered zero-cost cache hit.
				s.StubHits++
				s.OK++
				s.Resolve.Add(0)
				s.HitResolve.Add(0)
				continue
			}
		}
		// DoTCP closes after one exchange (no edns-tcp-keepalive, §3),
		// so it reconnects per query; every other transport keeps one
		// long-lived session, as a busy stub would.
		if client != nil && cfg.Protocol == dox.DoTCP {
			client.Close()
			client = nil
		}
		if client == nil {
			c, err := dox.Connect(cfg.Protocol, dox.Options{
				Backend:    vp.Backend,
				Resolver:   res.Addr,
				ServerName: res.Name,
				DoQPort:    res.DoQPort,
			})
			if err != nil {
				continue
			}
			client = c
		}
		before := res.CacheStats()
		elapsed, resp, ok := cacheStreamQuery(w, client, &q, cfg.QueryTimeout)
		if !ok {
			// Timeout or transport error: drop the session so the next
			// query reconnects cleanly.
			client.Close()
			client = nil
			continue
		}
		s.OK++
		s.Resolve.AddDuration(elapsed)
		if delta := res.CacheStats(); delta.Misses > before.Misses {
			s.MissResolve.AddDuration(elapsed)
		} else {
			s.HitResolve.AddDuration(elapsed)
		}
		if stub != nil {
			stub.StoreResponse(resp)
		}
	}
	after := res.CacheStats()
	s.ResolverCache = cache.Stats{
		Hits:        after.Hits - statsBefore.Hits,
		Misses:      after.Misses - statsBefore.Misses,
		Expirations: after.Expirations - statsBefore.Expirations,
		Evictions:   after.Evictions - statsBefore.Evictions,
	}
	return s
}

// cacheStreamQuery runs one bounded query on an established client and
// returns the resolve time and the response.
func cacheStreamQuery(w *sim.World, client dox.Client, q *dnsmsg.Message, timeout time.Duration) (time.Duration, *dnsmsg.Message, bool) {
	type outcome struct {
		elapsed time.Duration
		resp    *dnsmsg.Message
	}
	done := sim.NewFuture[outcome](w, "cache-stream-query")
	w.Go(func() {
		start := w.Now()
		resp, err := client.Query(q)
		if err != nil {
			done.Resolve(outcome{elapsed: -1})
			return
		}
		done.Resolve(outcome{elapsed: w.Now() - start, resp: resp})
	})
	o, alive := done.WaitTimeout(timeout)
	return o.elapsed, o.resp, alive && o.elapsed >= 0
}
