package measure

import (
	"reflect"
	"testing"

	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/pages"
	"repro/internal/resolver"
)

// The tests in this file enforce the campaign engine's core guarantee:
// for a fixed seed and configuration, the sample stream is byte-identical
// at parallelism 1 and parallelism N. If one of these fails, some state
// is shared across shards or a nondeterministic source (map iteration,
// system DRBG) has leaked into the simulation.

func detBlueprint(t *testing.T) *resolver.Blueprint {
	t.Helper()
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           2022,
		ResolverCounts: resolver.ScaledCounts(12),
		Loss:           0.003,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestSingleQueryDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) []SingleQuerySample {
		samples, err := RunSingleQuery(SingleQueryConfig{
			Blueprint:     detBlueprint(t),
			Parallelism:   par,
			ResolverBlock: 3, // several shards per vantage
			Rounds:        2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	base := run(1)
	if len(base) == 0 {
		t.Fatal("no samples")
	}
	for _, par := range []int{2, 8} {
		got := run(par)
		if !reflect.DeepEqual(base, got) {
			for i := range base {
				if base[i] != got[i] {
					t.Fatalf("parallelism %d: first differing sample %d:\n1: %+v\n%d: %+v",
						par, i, base[i], par, got[i])
				}
			}
			t.Fatalf("parallelism %d: sample streams differ in length", par)
		}
	}
}

func TestWebDeterministicAcrossParallelism(t *testing.T) {
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           2022,
		ResolverCounts: map[geo.Continent]int{geo.EU: 2, geo.NA: 1},
		Loss:           0.003,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(par int) []WebSample {
		samples, err := RunWeb(WebConfig{
			Blueprint:     bp,
			Parallelism:   par,
			ResolverBlock: 1, // one shard per [vantage:resolver]
			Protocols:     []dox.Protocol{dox.DoUDP, dox.DoQ, dox.DoH},
			Pages:         []*pages.Page{pages.ByName("wikipedia"), pages.ByName("google")},
			Loads:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	base := run(1)
	if len(base) == 0 {
		t.Fatal("no samples")
	}
	for _, par := range []int{3, 8} {
		if got := run(par); !reflect.DeepEqual(base, got) {
			t.Fatalf("parallelism %d produced a different web sample stream", par)
		}
	}
}

// TestSingleQueryRunToRunIdentity pins down absolute reproducibility:
// two runs of the same sharded campaign in the same process must agree
// bit for bit (this catches map-iteration and system-DRBG leaks that
// parallelism comparisons alone might miss).
func TestSingleQueryRunToRunIdentity(t *testing.T) {
	run := func() []SingleQuerySample {
		samples, err := RunSingleQuery(SingleQueryConfig{Blueprint: detBlueprint(t), Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("two identical-seed campaign runs produced different samples")
	}
}

// TestShardedSampleStreamShape checks that the sharded path covers the
// full matrix exactly once with global resolver indices.
func TestShardedSampleStreamShape(t *testing.T) {
	bp := detBlueprint(t)
	samples, err := RunSingleQuery(SingleQueryConfig{
		Blueprint:     bp,
		Parallelism:   4,
		ResolverBlock: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nRes := len(bp.Profiles)
	nVan := len(bp.Vantages)
	if want := nVan * nRes * len(dox.Protocols); len(samples) != want {
		t.Fatalf("got %d samples, want %d", len(samples), want)
	}
	type key struct {
		vantage string
		res     int
		proto   dox.Protocol
	}
	seen := map[key]int{}
	for _, s := range samples {
		if s.ResolverIdx < 0 || s.ResolverIdx >= nRes {
			t.Fatalf("sample has out-of-range global resolver index %d", s.ResolverIdx)
		}
		seen[key{s.Vantage, s.ResolverIdx, s.Protocol}]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("combination %+v measured %d times", k, n)
		}
	}
}
