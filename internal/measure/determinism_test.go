package measure

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/pages"
	"repro/internal/resolver"
)

// The tests in this file enforce the campaign engine's core guarantee:
// for a fixed seed and configuration, the sample stream is byte-identical
// at parallelism 1 and parallelism N. If one of these fails, some state
// is shared across shards or a nondeterministic source (map iteration,
// system DRBG) has leaked into the simulation.

func detBlueprint(t *testing.T) *resolver.Blueprint {
	t.Helper()
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           2022,
		ResolverCounts: resolver.ScaledCounts(12),
		Loss:           0.003,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestSingleQueryDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) []SingleQuerySample {
		samples, err := RunSingleQuery(SingleQueryConfig{
			Blueprint:     detBlueprint(t),
			Parallelism:   par,
			ResolverBlock: 3, // several shards per vantage
			Rounds:        2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	base := run(1)
	if len(base) == 0 {
		t.Fatal("no samples")
	}
	for _, par := range []int{2, 8} {
		got := run(par)
		if !reflect.DeepEqual(base, got) {
			for i := range base {
				if base[i] != got[i] {
					t.Fatalf("parallelism %d: first differing sample %d:\n1: %+v\n%d: %+v",
						par, i, base[i], par, got[i])
				}
			}
			t.Fatalf("parallelism %d: sample streams differ in length", par)
		}
	}
}

func TestWebDeterministicAcrossParallelism(t *testing.T) {
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           2022,
		ResolverCounts: map[geo.Continent]int{geo.EU: 2, geo.NA: 1},
		Loss:           0.003,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(par int) []WebSample {
		samples, err := RunWeb(WebConfig{
			Blueprint:     bp,
			Parallelism:   par,
			ResolverBlock: 1, // one shard per [vantage:resolver]
			Protocols:     []dox.Protocol{dox.DoUDP, dox.DoQ, dox.DoH},
			Pages:         []*pages.Page{pages.ByName("wikipedia"), pages.ByName("google")},
			Loads:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	base := run(1)
	if len(base) == 0 {
		t.Fatal("no samples")
	}
	for _, par := range []int{3, 8} {
		if got := run(par); !reflect.DeepEqual(base, got) {
			t.Fatalf("parallelism %d produced a different web sample stream", par)
		}
	}
}

// TestSingleQueryRunToRunIdentity pins down absolute reproducibility:
// two runs of the same sharded campaign in the same process must agree
// bit for bit (this catches map-iteration and system-DRBG leaks that
// parallelism comparisons alone might miss).
func TestSingleQueryRunToRunIdentity(t *testing.T) {
	run := func() []SingleQuerySample {
		samples, err := RunSingleQuery(SingleQueryConfig{Blueprint: detBlueprint(t), Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("two identical-seed campaign runs produced different samples")
	}
}

// TestAccessGridDeterministicAcrossParallelism extends the campaign
// guarantee to the E19/E21 profile grids: every cell's sample stream
// must be byte-identical at parallelism 1 and N. The grid also exercises
// the netem link model (bandwidth queues, access links, burst loss on
// the satellite profile), so a divergence here points at link state
// leaking across shards.
func TestAccessGridDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) []AccessGridCell {
		cells, err := RunAccessGrid(AccessGridConfig{
			Seed:           2022,
			ResolverCounts: resolver.ScaledCounts(6),
			Profiles:       []string{"fiber", "3g", "satellite"},
			Parallelism:    par,
			Protocols:      []dox.Protocol{dox.DoUDP, dox.DoQ, dox.DoT},
		})
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	base := run(1)
	if len(base) != 3 || len(base[0].Samples) == 0 {
		t.Fatalf("unexpected grid shape: %d cells", len(base))
	}
	if got := run(8); !reflect.DeepEqual(base, got) {
		t.Fatal("access grid differs between parallelism 1 and 8")
	}
}

// TestScheduledCampaignDeterministicAndPaced drives a single-query
// campaign over a time-varying burst-loss schedule (the E20 shape) and
// checks (a) two same-seed runs agree exactly, and (b) QuerySpacing
// paces the samples of each shard apart so the schedule's phases are
// all visited.
func TestScheduledCampaignDeterministicAndPaced(t *testing.T) {
	const spacing = 2 * time.Second
	run := func(par int) []SingleQuerySample {
		bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
			Seed:           2022,
			ResolverCounts: resolver.ScaledCounts(8),
			PathPhases: []resolver.PathPhase{
				{At: 0, Loss: 0.003},
				{At: 20 * time.Second, Burst: netem.BurstLoss{PGoodBad: 0.08, PBadGood: 0.25, LossBad: 0.45}},
				{At: 60 * time.Second, Loss: 0.003},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		samples, err := RunSingleQuery(SingleQueryConfig{
			Blueprint:    bp,
			Parallelism:  par,
			Protocols:    []dox.Protocol{dox.DoQ, dox.DoT},
			QuerySpacing: spacing,
		})
		if err != nil {
			t.Fatal(err)
		}
		return samples
	}
	base := run(1)
	if got := run(4); !reflect.DeepEqual(base, got) {
		t.Fatal("scheduled campaign differs between parallelism 1 and 4")
	}
	var maxAt time.Duration
	for i, s := range base {
		if i > 0 && base[i-1].Vantage == s.Vantage && s.At > 0 && base[i-1].At > 0 {
			if gap := s.At - base[i-1].At; gap < spacing {
				t.Fatalf("samples %d and %d only %v apart, want >= %v", i-1, i, gap, spacing)
			}
		}
		if s.At > maxAt {
			maxAt = s.At
		}
	}
	if maxAt < 20*time.Second {
		t.Fatalf("campaign ended at %v, never reached the burst phase", maxAt)
	}
}

// TestShardedSampleStreamShape checks that the sharded path covers the
// full matrix exactly once with global resolver indices.
func TestShardedSampleStreamShape(t *testing.T) {
	bp := detBlueprint(t)
	samples, err := RunSingleQuery(SingleQueryConfig{
		Blueprint:     bp,
		Parallelism:   4,
		ResolverBlock: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nRes := len(bp.Profiles)
	nVan := len(bp.Vantages)
	if want := nVan * nRes * len(dox.Protocols); len(samples) != want {
		t.Fatalf("got %d samples, want %d", len(samples), want)
	}
	type key struct {
		vantage string
		res     int
		proto   dox.Protocol
	}
	seen := map[key]int{}
	for _, s := range samples {
		if s.ResolverIdx < 0 || s.ResolverIdx >= nRes {
			t.Fatalf("sample has out-of-range global resolver index %d", s.ResolverIdx)
		}
		seen[key{s.Vantage, s.ResolverIdx, s.Protocol}]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("combination %+v measured %d times", k, n)
		}
	}
}
