package measure

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/resolver"
	"repro/internal/stats"
)

func TestZipfWorkloadDeterministicAndSkewed(t *testing.T) {
	draw := func() []uint64 {
		wl := NewZipfWorkload(rand.New(rand.NewSource(9)), 1.5, 100)
		out := make([]uint64, 500)
		for i := range out {
			_, out[i] = wl.Next()
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different Zipf streams")
	}
	counts := map[uint64]int{}
	for _, r := range a {
		counts[r]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 drawn %d times, rank 50 %d — not popularity-skewed", counts[0], counts[50])
	}
	name, _ := NewZipfWorkload(rand.New(rand.NewSource(1)), 1.2, 10).Next()
	if name == "" {
		t.Error("empty name")
	}
}

func cacheBlueprint(t *testing.T, mutate func(*resolver.Profile)) *resolver.Blueprint {
	t.Helper()
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           2022,
		ResolverCounts: map[geo.Continent]int{geo.EU: 2, geo.NA: 1},
		Loss:           0.003,
		MutateProfile:  mutate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

// TestCacheWorkloadDeterministicAcrossParallelism extends the byte-
// identical guarantee to the Zipf cache campaign: cache state is
// confined to shards, so the summary stream cannot depend on the worker
// count.
func TestCacheWorkloadDeterministicAcrossParallelism(t *testing.T) {
	bp := cacheBlueprint(t, nil)
	run := func(par int) []CacheWorkloadSummary {
		sums, err := RunCacheWorkload(CacheWorkloadConfig{
			Blueprint:     bp,
			Parallelism:   par,
			ResolverBlock: 1, // several shards per vantage
			Queries:       40,
			Names:         50,
			Skew:          1.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	base := run(1)
	if len(base) == 0 {
		t.Fatal("no summaries")
	}
	for _, par := range []int{2, 8} {
		got := run(par)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("parallelism %d produced a different summary stream", par)
		}
	}
}

// TestCacheWorkloadHitRatioGrowsWithSkew checks the E16 relationship at
// campaign level: a more skewed workload concentrates queries on fewer
// names and lifts the resolver-cache hit ratio.
func TestCacheWorkloadHitRatioGrowsWithSkew(t *testing.T) {
	bp := cacheBlueprint(t, func(p *resolver.Profile) {
		p.ResponseRate = 1
		p.CacheTTL = time.Hour
	})
	ratio := func(skew float64) float64 {
		sums, err := RunCacheWorkload(CacheWorkloadConfig{
			Blueprint: bp,
			Queries:   150,
			Names:     200,
			Skew:      skew,
		})
		if err != nil {
			t.Fatal(err)
		}
		return MergeCacheSummaries(sums).ResolverCache.HitRatio()
	}
	flat, skewed := ratio(1.01), ratio(2.5)
	if skewed <= flat {
		t.Errorf("hit ratio %v at skew 2.5 not above %v at skew 1.01", skewed, flat)
	}
}

// TestCacheWorkloadHitsFasterThanMisses checks the effect the paper
// attributes to caching: cache hits skip upstream recursion, so their
// resolve times sit well below misses'.
func TestCacheWorkloadHitsFasterThanMisses(t *testing.T) {
	bp := cacheBlueprint(t, func(p *resolver.Profile) {
		p.ResponseRate = 1
		p.CacheTTL = time.Hour
	})
	sums, err := RunCacheWorkload(CacheWorkloadConfig{
		Blueprint: bp,
		Queries:   120,
		Names:     60,
		Skew:      1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := MergeCacheSummaries(sums)
	if all.HitResolve.N() == 0 || all.MissResolve.N() == 0 {
		t.Fatalf("need both hits (%d) and misses (%d)", all.HitResolve.N(), all.MissResolve.N())
	}
	hit, miss := all.HitResolve.MedianDuration(), all.MissResolve.MedianDuration()
	if hit >= miss {
		t.Errorf("median hit resolve %v not below miss %v", hit, miss)
	}
	if all.OK == 0 || all.OK > all.Queries {
		t.Errorf("OK=%d of %d", all.OK, all.Queries)
	}
}

// TestCacheWorkloadStubCache checks the client-side layer: with a stub
// cache, repeated names are absorbed locally.
func TestCacheWorkloadStubCache(t *testing.T) {
	bp := cacheBlueprint(t, func(p *resolver.Profile) {
		p.ResponseRate = 1
		p.CacheTTL = time.Hour
	})
	sums, err := RunCacheWorkload(CacheWorkloadConfig{
		Blueprint: bp,
		Queries:   100,
		Names:     30,
		Skew:      1.8,
		StubCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := MergeCacheSummaries(sums)
	if all.StubHits == 0 {
		t.Error("stub cache absorbed nothing")
	}
	if all.StubHits >= all.Queries {
		t.Error("stub cache cannot absorb every query (first sight must go upstream)")
	}
}

// benchZipfAggregation is the acceptance benchmark for streaming
// aggregation: one op = one full Zipf stream through a Sketch. B/op
// must stay flat as the stream grows 10× — the sketch and the name
// table are the only allocations, and neither scales with the query
// count.
func benchZipfAggregation(b *testing.B, queries int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wl := NewZipfWorkload(rand.New(rand.NewSource(1)), 1.3, 10000)
		s := stats.NewSketch()
		for j := 0; j < queries; j++ {
			_, rank := wl.Next()
			// A synthetic per-rank latency: popular ranks resolve fast
			// (cache hit), the tail pays recursion.
			s.AddDuration(time.Duration(rank+1) * 100 * time.Microsecond)
		}
		if s.N() != queries {
			b.Fatalf("lost samples: %d != %d", s.N(), queries)
		}
	}
}

// BenchmarkZipfAggregation100k and BenchmarkZipfAggregation1M differ
// only in stream length; compare their B/op to verify the fixed memory
// budget (run with -benchmem).
func BenchmarkZipfAggregation100k(b *testing.B) { benchZipfAggregation(b, 100_000) }

func BenchmarkZipfAggregation1M(b *testing.B) { benchZipfAggregation(b, 1_000_000) }

// BenchmarkCacheWorkloadCampaign regenerates a small end-to-end Zipf
// cache campaign (network stack included), the E16 workhorse.
func BenchmarkCacheWorkloadCampaign(b *testing.B) {
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           2022,
		ResolverCounts: map[geo.Continent]int{geo.EU: 2, geo.NA: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sums, err := RunCacheWorkload(CacheWorkloadConfig{
			Blueprint:   bp,
			Parallelism: 1,
			Queries:     100,
			Names:       100,
			Skew:        1.3,
			Protocol:    dox.DoUDP,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(sums) == 0 {
			b.Fatal("no summaries")
		}
	}
}
