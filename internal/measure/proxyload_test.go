package measure

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/resolver"
)

func proxyBlueprint(t *testing.T, phases []resolver.PathPhase, ttl time.Duration) *resolver.Blueprint {
	t.Helper()
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           2022,
		ResolverCounts: map[geo.Continent]int{geo.EU: 2, geo.NA: 1},
		Loss:           0.003,
		PathPhases:     phases,
		MutateProfile: func(p *resolver.Profile) {
			p.ResponseRate = 1
			p.CacheTTL = ttl
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

// TestProxyServeDeterministicAcrossParallelism extends the byte-identical
// guarantee to the proxy serving campaign with every serving feature on
// at once: coalescing, serve-stale across an outage, prefetch and rate
// limiting all confine their state to the shard's World, so the summary
// stream cannot depend on the worker count.
func TestProxyServeDeterministicAcrossParallelism(t *testing.T) {
	bp := proxyBlueprint(t, resolver.OutagePhases(0.003, 8*time.Second, 14*time.Second), 2*time.Second)
	run := func(par int) []ProxyServeSummary {
		sums, err := RunProxyServe(ProxyServeConfig{
			Blueprint:     bp,
			Parallelism:   par,
			ResolverBlock: 1, // several shards per vantage
			Clients:       3,
			Queries:       20,
			Names:         30,
			Coalesce:      true,
			ServeStale:    true,
			Prefetch:      true,
			RateLimitQPS:  5,
			UDPTimeout:    500 * time.Millisecond,
			ClassifyStart: 10 * time.Second,
			ClassifyEnd:   14 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	base := run(1)
	if len(base) == 0 {
		t.Fatal("no summaries")
	}
	for _, par := range []int{2, 8} {
		got := run(par)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("parallelism %d produced a different summary stream", par)
		}
	}
}

// TestProxyServeCoalescingReducesUpstream checks the E22 relationship at
// campaign level: with aligned client cohorts, coalescing collapses each
// concurrent miss group into one upstream exchange without losing
// answers.
func TestProxyServeCoalescingReducesUpstream(t *testing.T) {
	bp := proxyBlueprint(t, nil, 5*time.Second)
	run := func(coalesce bool) ProxyServeSummary {
		sums, err := RunProxyServe(ProxyServeConfig{
			Blueprint: bp,
			Clients:   4,
			Queries:   15,
			Names:     40,
			Coalesce:  coalesce,
		})
		if err != nil {
			t.Fatal(err)
		}
		return MergeProxyServeSummaries(sums)
	}
	off, on := run(false), run(true)
	if on.Coalesced == 0 {
		t.Fatal("aligned cohorts produced no coalesced queries")
	}
	if on.UpstreamQueries >= off.UpstreamQueries {
		t.Errorf("coalescing did not reduce upstream exchanges: %d >= %d",
			on.UpstreamQueries, off.UpstreamQueries)
	}
	if on.OK < off.OK {
		t.Errorf("coalescing lost answers: %d < %d", on.OK, off.OK)
	}
}

// TestProxyServeStaleSavesOutageWindow checks the E23 relationship: in a
// window starting one TTL (plus the 1s TTL round-up slack) into a total
// outage, only the serve-stale arm can answer anything.
func TestProxyServeStaleSavesOutageWindow(t *testing.T) {
	phases := resolver.OutagePhases(0, 8*time.Second, 20*time.Second)
	run := func(serveStale bool) ProxyServeSummary {
		bp := proxyBlueprint(t, phases, 2*time.Second)
		sums, err := RunProxyServe(ProxyServeConfig{
			Blueprint:     bp,
			Clients:       2,
			Queries:       20,
			Names:         10,
			Skew:          1.8,
			ServeStale:    serveStale,
			UDPTimeout:    500 * time.Millisecond,
			ClassifyStart: 12 * time.Second,
			ClassifyEnd:   20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return MergeProxyServeSummaries(sums)
	}
	off, on := run(false), run(true)
	if off.WindowOK != 0 {
		t.Errorf("without serve-stale %d window queries were answered; the window starts past every TTL", off.WindowOK)
	}
	if on.WindowOK == 0 || on.StaleServed == 0 {
		t.Errorf("serve-stale answered nothing in the window (ok=%d stale=%d)", on.WindowOK, on.StaleServed)
	}
	if on.StaleAge.N() == 0 {
		t.Error("no staleness samples recorded")
	}
}

// TestProxyServeRateLimitRefuses checks that the per-client token bucket
// surfaces in the campaign summary.
func TestProxyServeRateLimitRefuses(t *testing.T) {
	bp := proxyBlueprint(t, nil, time.Hour)
	sums, err := RunProxyServe(ProxyServeConfig{
		Blueprint:      bp,
		Clients:        2,
		Queries:        10,
		Names:          5,
		QueryInterval:  100 * time.Millisecond, // 10 qps per client
		RateLimitQPS:   2,
		RateLimitBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	all := MergeProxyServeSummaries(sums)
	if all.Refused == 0 {
		t.Error("a 10 qps client against a 2 qps bucket was never refused")
	}
	if all.OK == 0 {
		t.Error("rate limiting refused everything")
	}
	if all.OK+all.Refused > all.Queries {
		t.Errorf("outcomes exceed queries: ok=%d refused=%d of %d", all.OK, all.Refused, all.Queries)
	}
}
