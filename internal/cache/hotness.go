package cache

// Hotness is a deterministic fixed-memory popularity tracker over cache
// keys, in the spirit of the stats.Sketch memory discipline: a
// space-saving top-K counter table whose footprint is capacity slots no
// matter how many distinct keys flow through. A proxy uses it to decide
// which names are worth prefetching before their TTL lapses.
//
// The structure is deterministic on the access sequence alone: slot
// replacement scans the slot array for the first minimum-count victim,
// never a map iteration, so two shards fed the same key sequence track
// exactly the same table. A Hotness belongs to one World/shard and is
// not safe for concurrent use.
type Hotness struct {
	capacity int
	idx      map[Key]int
	slots    []hotSlot
}

type hotSlot struct {
	key   Key
	count int
}

// DefaultHotnessCapacity is the slot count used when none is given:
// enough to hold the Zipf head of the campaign workloads (~20KiB of
// keys) while staying O(1) per touch at linear-scan victim selection.
const DefaultHotnessCapacity = 64

// NewHotness returns a tracker with the given slot capacity (<= 0
// selects DefaultHotnessCapacity).
func NewHotness(capacity int) *Hotness {
	if capacity <= 0 {
		capacity = DefaultHotnessCapacity
	}
	return &Hotness{
		capacity: capacity,
		idx:      make(map[Key]int, capacity),
		slots:    make([]hotSlot, 0, capacity),
	}
}

// Touch records one access to k and returns its tracked count. When the
// table is full and k is untracked, the first minimum-count slot is
// evicted and k inherits its count plus one (the space-saving
// overestimate, which can only promote, never hide, a hot key).
func (h *Hotness) Touch(k Key) int {
	if i, ok := h.idx[k]; ok {
		h.slots[i].count++
		return h.slots[i].count
	}
	if len(h.slots) < h.capacity {
		h.slots = append(h.slots, hotSlot{key: k, count: 1})
		h.idx[k] = len(h.slots) - 1
		return 1
	}
	min := 0
	for i := 1; i < len(h.slots); i++ {
		if h.slots[i].count < h.slots[min].count {
			min = i
		}
	}
	delete(h.idx, h.slots[min].key)
	h.slots[min] = hotSlot{key: k, count: h.slots[min].count + 1}
	h.idx[k] = min
	return h.slots[min].count
}

// Count returns k's tracked count (0 when untracked).
func (h *Hotness) Count(k Key) int {
	if i, ok := h.idx[k]; ok {
		return h.slots[i].count
	}
	return 0
}

// Hot reports whether k is tracked with at least min accesses.
func (h *Hotness) Hot(k Key, min int) bool { return h.Count(k) >= min }

// Len returns the number of tracked keys (at most the capacity).
func (h *Hotness) Len() int { return len(h.slots) }
