// Package cache implements the TTL-aware DNS answer caches of the
// testbed: the per-resolver shared cache that collapses upstream
// recursion into a cache hit (the effect the paper credits for most of
// the resolution-time spread between cached and uncached queries), and
// the optional client-side stub cache a local proxy can keep so
// repeated names never leave the vantage host.
//
// Caches live on simulated virtual time: expiry compares the entry's
// absolute expiry instant against the owning World's clock, so cache
// behaviour is deterministic — two runs (or two shard partitions) that
// issue the same query sequence at the same virtual times observe the
// same hits, misses, expirations and evictions. Eviction is LRU over a
// deterministic access order, so a bounded cache stays deterministic
// too. A Cache belongs to one World/shard and must not be shared across
// concurrently running Worlds; sharded campaigns give each shard its
// own caches and merge the observed statistics in shard order.
package cache

import (
	"container/list"
	"net/netip"
	"time"

	"repro/internal/dnsmsg"
)

// Key identifies a cached answer: the paper's resolvers cache per
// (name, qtype).
type Key struct {
	Name string
	Type dnsmsg.Type
}

// Entry is one cached answer.
type Entry struct {
	Addr netip.Addr
	// TTL is the answer's original time-to-live at insertion.
	TTL time.Duration
	// Expires is the absolute virtual-time instant the entry dies.
	Expires time.Duration
}

// Remaining returns the entry's remaining lifetime at virtual time now
// (negative once expired).
func (e Entry) Remaining(now time.Duration) time.Duration { return e.Expires - now }

// Stats counts cache behaviour for the evaluation.
type Stats struct {
	// Hits and Misses count Lookup outcomes; an expired entry counts as
	// a miss (and an Expiration).
	Hits, Misses int
	// Expirations counts entries found dead by Lookup.
	Expirations int
	// Evictions counts LRU evictions under a capacity bound.
	Evictions int
}

// HitRatio returns Hits/(Hits+Misses), 0 before any lookup.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Merge adds o's counters into s (for gathering per-shard cache stats).
func (s *Stats) Merge(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Expirations += o.Expirations
	s.Evictions += o.Evictions
}

type node struct {
	key Key
	e   Entry
}

// Cache is a TTL-aware answer cache with an optional LRU capacity
// bound. The zero value is not usable; construct with New.
type Cache struct {
	now      func() time.Duration
	capacity int
	entries  map[Key]*list.Element
	lru      *list.List // front = most recently used
	stats    Stats
}

// New creates a cache on the given virtual clock. capacity bounds the
// entry count (LRU eviction); 0 means unbounded.
func New(now func() time.Duration, capacity int) *Cache {
	return &Cache{
		now:      now,
		capacity: capacity,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
	}
}

// Len returns the number of live-or-expired entries currently held
// (expired entries are reaped lazily by Lookup).
func (c *Cache) Len() int { return c.lru.Len() }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// Lookup returns the entry for k if present and alive, updating hit or
// miss counters and the LRU order.
func (c *Cache) Lookup(k Key) (Entry, bool) {
	el, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return Entry{}, false
	}
	n := el.Value.(*node)
	if n.e.Expires <= c.now() {
		c.lru.Remove(el)
		delete(c.entries, k)
		c.stats.Expirations++
		c.stats.Misses++
		return Entry{}, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return n.e, true
}

// Put inserts or refreshes the answer for k and returns the stored
// entry. A non-positive ttl stores nothing (the answer is uncacheable)
// and returns a zero-lifetime entry.
func (c *Cache) Put(k Key, addr netip.Addr, ttl time.Duration) Entry {
	now := c.now()
	e := Entry{Addr: addr, TTL: ttl, Expires: now + ttl}
	if ttl <= 0 {
		return Entry{Addr: addr, Expires: now}
	}
	if el, ok := c.entries[k]; ok {
		el.Value.(*node).e = e
		c.lru.MoveToFront(el)
		return e
	}
	c.entries[k] = c.lru.PushFront(&node{key: k, e: e})
	if c.capacity > 0 && c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*node).key)
		c.stats.Evictions++
	}
	return e
}

// Flush drops every entry, keeping the accumulated statistics (used
// between measurement rounds and by the uncached-baseline ablation).
func (c *Cache) Flush() {
	c.entries = make(map[Key]*list.Element)
	c.lru = list.New()
}

// TTLSeconds converts a remaining lifetime to the DNS TTL field,
// rounding up so a just-inserted answer never advertises TTL 0. Every
// cache layer (resolver answers, stub-cache replies) uses this one
// rule, so advertised TTLs stay consistent across layers.
func TTLSeconds(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	return uint32((d + time.Second - 1) / time.Second)
}

// AnswerQuery builds the cached response for q (an A-record reply with
// the entry's remaining TTL), or nil when the cache cannot answer. This
// is the stub-cache fast path: a non-nil reply short-circuits the
// upstream transport entirely.
func (c *Cache) AnswerQuery(q *dnsmsg.Message) *dnsmsg.Message {
	if len(q.Questions) == 0 {
		return nil
	}
	qu := q.Questions[0]
	if qu.Type != dnsmsg.TypeA {
		return nil
	}
	ent, ok := c.Lookup(Key{Name: qu.Name, Type: qu.Type})
	if !ok {
		return nil
	}
	resp := dnsmsg.Reply(*q)
	resp.AnswerA(ent.Addr, TTLSeconds(ent.Remaining(c.now())))
	return &resp
}

// StoreResponse caches the first A answer of an upstream response,
// honouring its TTL. Non-success responses and answerless replies are
// not cached.
func (c *Cache) StoreResponse(resp *dnsmsg.Message) {
	if resp == nil || resp.RCode != dnsmsg.RCodeSuccess {
		return
	}
	for _, a := range resp.Answers {
		if a.Type == dnsmsg.TypeA && a.Addr.IsValid() {
			c.Put(Key{Name: a.Name, Type: a.Type}, a.Addr, time.Duration(a.TTL)*time.Second)
			return
		}
	}
}
