// Package cache implements the TTL-aware DNS answer caches of the
// testbed: the per-resolver shared cache that collapses upstream
// recursion into a cache hit (the effect the paper credits for most of
// the resolution-time spread between cached and uncached queries), and
// the optional client-side stub cache a local proxy can keep so
// repeated names never leave the vantage host.
//
// Caches live on simulated virtual time: expiry compares the entry's
// absolute expiry instant against the owning World's clock, so cache
// behaviour is deterministic — two runs (or two shard partitions) that
// issue the same query sequence at the same virtual times observe the
// same hits, misses, expirations and evictions. Eviction is LRU over a
// deterministic access order, so a bounded cache stays deterministic
// too. A Cache belongs to one World/shard and must not be shared across
// concurrently running Worlds; sharded campaigns give each shard its
// own caches and merge the observed statistics in shard order.
package cache

import (
	"container/list"
	"net/netip"
	"time"

	"repro/internal/dnsmsg"
)

// Key identifies a cached answer: the paper's resolvers cache per
// (name, qtype).
type Key struct {
	Name string
	Type dnsmsg.Type
}

// Entry is one cached answer.
type Entry struct {
	Addr netip.Addr
	// TTL is the answer's original time-to-live at insertion.
	TTL time.Duration
	// Expires is the absolute virtual-time instant the entry dies.
	Expires time.Duration
}

// Remaining returns the entry's remaining lifetime at virtual time now
// (negative once expired).
func (e Entry) Remaining(now time.Duration) time.Duration { return e.Expires - now }

// Stats counts cache behaviour for the evaluation.
type Stats struct {
	// Hits and Misses count Lookup outcomes; an expired entry counts as
	// a miss (and, once reaped, an Expiration).
	Hits, Misses int
	// Expirations counts entries reaped because they were found dead.
	// Without a stale ceiling an entry is reaped by the first Lookup
	// that finds it expired; with one, only once it ages past the
	// ceiling.
	Expirations int
	// Evictions counts LRU evictions under a capacity bound.
	Evictions int
	// StaleHits counts LookupStale answers served past expiry (RFC 8767
	// serve-stale).
	StaleHits int
}

// HitRatio returns Hits/(Hits+Misses), 0 before any lookup.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Merge adds o's counters into s (for gathering per-shard cache stats).
func (s *Stats) Merge(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Expirations += o.Expirations
	s.Evictions += o.Evictions
	s.StaleHits += o.StaleHits
}

type node struct {
	key Key
	e   Entry
}

// Cache is a TTL-aware answer cache with an optional LRU capacity
// bound. The zero value is not usable; construct with New.
type Cache struct {
	now      func() time.Duration
	capacity int
	stale    time.Duration // serve-stale ceiling past expiry; 0 = off
	entries  map[Key]*list.Element
	lru      *list.List // front = most recently used
	stats    Stats
}

// New creates a cache on the given virtual clock. capacity bounds the
// entry count (LRU eviction); 0 means unbounded.
func New(now func() time.Duration, capacity int) *Cache {
	return &Cache{
		now:      now,
		capacity: capacity,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
	}
}

// SetStaleCeiling enables RFC 8767 serve-stale: expired entries are
// retained (and LookupStale can answer from them) until they age past
// Expires+d. A zero or negative d restores strict expiry, where the
// first Lookup that finds an entry dead reaps it.
func (c *Cache) SetStaleCeiling(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.stale = d
}

// StaleCeiling returns the configured serve-stale ceiling (0 = off).
func (c *Cache) StaleCeiling() time.Duration { return c.stale }

// Len returns the number of live-or-expired entries currently held
// (expired entries are reaped lazily by Lookup).
func (c *Cache) Len() int { return c.lru.Len() }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// Lookup returns the entry for k if present and alive, updating hit or
// miss counters and the LRU order.
func (c *Cache) Lookup(k Key) (Entry, bool) {
	el, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return Entry{}, false
	}
	n := el.Value.(*node)
	if now := c.now(); n.e.Expires <= now {
		if c.stale > 0 && now < n.e.Expires+c.stale {
			// Dead for fresh lookups but retained for serve-stale: a
			// miss, without the reap (LookupStale may still answer).
			c.stats.Misses++
			return Entry{}, false
		}
		c.reap(el, k)
		c.stats.Misses++
		return Entry{}, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return n.e, true
}

// LookupStale returns the entry for k if it is fresh or within the
// serve-stale ceiling of its expiry — the RFC 8767 path a proxy takes
// when the upstream is unreachable. A stale answer counts as a StaleHit
// (a fresh one as a plain Hit) and refreshes the LRU position either
// way; an entry past the ceiling is reaped.
func (c *Cache) LookupStale(k Key) (Entry, bool) {
	el, ok := c.entries[k]
	if !ok {
		return Entry{}, false
	}
	n := el.Value.(*node)
	now := c.now()
	if n.e.Expires > now {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return n.e, true
	}
	if c.stale <= 0 || now >= n.e.Expires+c.stale {
		c.reap(el, k)
		return Entry{}, false
	}
	c.lru.MoveToFront(el)
	c.stats.StaleHits++
	return n.e, true
}

// reap removes a dead entry and counts the expiration.
func (c *Cache) reap(el *list.Element, k Key) {
	c.lru.Remove(el)
	delete(c.entries, k)
	c.stats.Expirations++
}

// Put inserts or refreshes the answer for k and returns the stored
// entry. A non-positive ttl stores nothing (the answer is uncacheable)
// and returns a zero-lifetime entry.
func (c *Cache) Put(k Key, addr netip.Addr, ttl time.Duration) Entry {
	now := c.now()
	e := Entry{Addr: addr, TTL: ttl, Expires: now + ttl}
	if ttl <= 0 {
		return Entry{Addr: addr, Expires: now}
	}
	if el, ok := c.entries[k]; ok {
		el.Value.(*node).e = e
		c.lru.MoveToFront(el)
		return e
	}
	c.entries[k] = c.lru.PushFront(&node{key: k, e: e})
	if c.capacity > 0 && c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*node).key)
		c.stats.Evictions++
	}
	return e
}

// Flush drops every entry, keeping the accumulated statistics (used
// between measurement rounds and by the uncached-baseline ablation).
func (c *Cache) Flush() {
	c.entries = make(map[Key]*list.Element)
	c.lru = list.New()
}

// TTLSeconds converts a remaining lifetime to the DNS TTL field,
// rounding up so a just-inserted answer never advertises TTL 0. Every
// cache layer (resolver answers, stub-cache replies) uses this one
// rule, so advertised TTLs stay consistent across layers.
func TTLSeconds(d time.Duration) uint32 {
	if d <= 0 {
		return 0
	}
	return uint32((d + time.Second - 1) / time.Second)
}

// AnswerQuery builds the cached response for q (an A-record reply with
// the entry's remaining TTL), or nil when the cache cannot answer. This
// is the stub-cache fast path: a non-nil reply short-circuits the
// upstream transport entirely.
func (c *Cache) AnswerQuery(q *dnsmsg.Message) *dnsmsg.Message {
	if len(q.Questions) == 0 {
		return nil
	}
	qu := q.Questions[0]
	if qu.Type != dnsmsg.TypeA {
		return nil
	}
	ent, ok := c.Lookup(Key{Name: qu.Name, Type: qu.Type})
	if !ok {
		return nil
	}
	resp := dnsmsg.Reply(*q)
	resp.AnswerA(ent.Addr, TTLSeconds(ent.Remaining(c.now())))
	return &resp
}

// StaleAdvertTTL is the TTL advertised on answers served past their
// expiry, per RFC 8767 §4's recommendation to cap stale TTLs at 30
// seconds so downstream caches re-ask promptly.
const StaleAdvertTTL = 30 * time.Second

// AnswerQueryStale builds a response for q from a fresh-or-stale entry
// (LookupStale), or nil when none survives. Stale answers advertise
// StaleAdvertTTL; fresh ones their true remaining lifetime.
func (c *Cache) AnswerQueryStale(q *dnsmsg.Message) *dnsmsg.Message {
	if len(q.Questions) == 0 {
		return nil
	}
	qu := q.Questions[0]
	if qu.Type != dnsmsg.TypeA {
		return nil
	}
	ent, ok := c.LookupStale(Key{Name: qu.Name, Type: qu.Type})
	if !ok {
		return nil
	}
	ttl := StaleAdvertTTL
	if rem := ent.Remaining(c.now()); rem > 0 {
		ttl = rem
	}
	resp := dnsmsg.Reply(*q)
	resp.AnswerA(ent.Addr, TTLSeconds(ttl))
	return &resp
}

// StoreResponse caches the first A answer of an upstream response,
// honouring its TTL. Non-success responses and answerless replies are
// not cached.
func (c *Cache) StoreResponse(resp *dnsmsg.Message) {
	if resp == nil || resp.RCode != dnsmsg.RCodeSuccess {
		return
	}
	for _, a := range resp.Answers {
		if a.Type == dnsmsg.TypeA && a.Addr.IsValid() {
			c.Put(Key{Name: a.Name, Type: a.Type}, a.Addr, time.Duration(a.TTL)*time.Second)
			return
		}
	}
}
