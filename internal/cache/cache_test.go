package cache

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnsmsg"
)

// clock is a manual virtual clock.
type clock struct{ t time.Duration }

func (c *clock) now() time.Duration { return c.t }

var addr = netip.AddrFrom4([4]byte{198, 18, 0, 1})

func TestLookupHitMissExpiry(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 0)
	k := Key{Name: "a.example", Type: dnsmsg.TypeA}
	if _, ok := c.Lookup(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, addr, 60*time.Second)
	ent, ok := c.Lookup(k)
	if !ok || ent.Addr != addr {
		t.Fatalf("miss after Put: %+v %v", ent, ok)
	}
	if got := ent.Remaining(cl.now()); got != 60*time.Second {
		t.Errorf("remaining = %v", got)
	}
	cl.t = 59 * time.Second
	if _, ok := c.Lookup(k); !ok {
		t.Error("expired one second early")
	}
	cl.t = 60 * time.Second
	if _, ok := c.Lookup(k); ok {
		t.Error("hit at expiry instant")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Expirations != 1 {
		t.Errorf("stats = %+v", s)
	}
	if c.Len() != 0 {
		t.Errorf("expired entry not reaped, len=%d", c.Len())
	}
}

func TestLRUCapacityEviction(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 2)
	key := func(i int) Key { return Key{Name: fmt.Sprintf("%d.example", i), Type: dnsmsg.TypeA} }
	c.Put(key(1), addr, time.Hour)
	c.Put(key(2), addr, time.Hour)
	c.Lookup(key(1)) // 1 becomes most recent; 2 is LRU
	c.Put(key(3), addr, time.Hour)
	if _, ok := c.Lookup(key(2)); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Lookup(key(1)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := c.Lookup(key(3)); !ok {
		t.Error("new entry missing")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d", ev)
	}
}

func TestPutRefreshAndFlush(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 0)
	k := Key{Name: "a.example", Type: dnsmsg.TypeA}
	c.Put(k, addr, 10*time.Second)
	cl.t = 8 * time.Second
	c.Put(k, addr, 10*time.Second) // refresh pushes expiry to t=18s
	cl.t = 15 * time.Second
	if _, ok := c.Lookup(k); !ok {
		t.Error("refreshed entry expired early")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Error("flush left entries")
	}
	if c.Stats().Hits != 1 {
		t.Error("flush dropped stats")
	}
}

func TestZeroTTLNotCached(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 0)
	k := Key{Name: "a.example", Type: dnsmsg.TypeA}
	c.Put(k, addr, 0)
	if c.Len() != 0 {
		t.Error("zero-TTL answer cached")
	}
}

func TestAnswerQueryAndStoreResponse(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 0)
	q := dnsmsg.NewQuery(7, "web.example", dnsmsg.TypeA)
	if r := c.AnswerQuery(&q); r != nil {
		t.Fatal("cold cache answered")
	}
	resp := dnsmsg.Reply(q)
	resp.AnswerA(addr, 300)
	c.StoreResponse(&resp)
	cl.t = 100 * time.Second
	q2 := dnsmsg.NewQuery(8, "web.example", dnsmsg.TypeA)
	r := c.AnswerQuery(&q2)
	if r == nil {
		t.Fatal("warm cache did not answer")
	}
	if r.ID != 8 || len(r.Answers) != 1 || r.Answers[0].Addr != addr {
		t.Fatalf("bad cached reply: %+v", r)
	}
	if ttl := r.Answers[0].TTL; ttl != 200 {
		t.Errorf("remaining TTL = %d, want 200", ttl)
	}
	// Failed responses must not be cached.
	bad := dnsmsg.Reply(q)
	bad.RCode = dnsmsg.RCodeServFail
	before := c.Len()
	c.StoreResponse(&bad)
	if c.Len() != before {
		t.Error("SERVFAIL cached")
	}
}

func TestHitRatioAndMerge(t *testing.T) {
	a := Stats{Hits: 3, Misses: 1, Expirations: 1}
	b := Stats{Hits: 1, Misses: 3, Evictions: 2}
	a.Merge(b)
	if a.Hits != 4 || a.Misses != 4 || a.Expirations != 1 || a.Evictions != 2 {
		t.Errorf("merge = %+v", a)
	}
	if r := a.HitRatio(); r != 0.5 {
		t.Errorf("hit ratio = %v", r)
	}
	if r := (Stats{}).HitRatio(); r != 0 {
		t.Errorf("empty hit ratio = %v", r)
	}
}
