package cache

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dnsmsg"
)

func key(i int) Key {
	return Key{Name: fmt.Sprintf("n%d.example", i), Type: dnsmsg.TypeA}
}

// TestExpiryExactlyAtBoundary pins the expiry comparison: an entry is
// dead at the instant now == Expires (Expires <= now), not one tick
// later. The campaign layers lean on this — a stub entry whose TTL
// rounds up expires exactly one virtual second past the resolver's, so
// an off-by-one here would flip prefetch re-arm timing everywhere.
func TestExpiryExactlyAtBoundary(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 0)
	k := key(0)
	c.Put(k, addr, 10*time.Second)
	cl.t = 10*time.Second - time.Nanosecond
	if _, ok := c.Lookup(k); !ok {
		t.Fatal("entry dead one nanosecond before its expiry instant")
	}
	cl.t = 10 * time.Second
	if _, ok := c.Lookup(k); ok {
		t.Fatal("entry alive at its expiry instant")
	}
	if s := c.Stats(); s.Expirations != 1 {
		t.Fatalf("boundary miss did not reap: %+v", s)
	}
}

// TestCapacityZeroUnbounded checks that capacity 0 means unbounded, not
// "evict everything".
func TestCapacityZeroUnbounded(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 0)
	for i := 0; i < 1000; i++ {
		c.Put(key(i), addr, time.Hour)
	}
	if c.Len() != 1000 {
		t.Fatalf("unbounded cache holds %d of 1000 entries", c.Len())
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", s)
	}
}

// TestCapacityOne checks the degenerate LRU: a one-slot cache holds
// exactly the last-inserted entry and evicts on every new key.
func TestCapacityOne(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 1)
	c.Put(key(0), addr, time.Hour)
	c.Put(key(1), addr, time.Hour)
	if _, ok := c.Lookup(key(0)); ok {
		t.Fatal("evicted entry still answered")
	}
	if _, ok := c.Lookup(key(1)); !ok {
		t.Fatal("one-slot cache lost its only entry")
	}
	// Refreshing the resident key must not count as an eviction.
	c.Put(key(1), addr, time.Hour)
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("want exactly 1 eviction, got %+v", s)
	}
	if c.Len() != 1 {
		t.Fatalf("one-slot cache holds %d entries", c.Len())
	}
}

// TestLRUOrderSurvivesStatsMerge checks that reading and merging Stats
// is a pure observation: the LRU order (and thus the next eviction
// victim) is identical whether or not stats were harvested mid-stream.
// Sharded campaigns harvest counters between rounds, so an accidental
// touch here would change eviction behaviour with observation.
func TestLRUOrderSurvivesStatsMerge(t *testing.T) {
	run := func(harvest bool) []bool {
		cl := &clock{}
		c := New(cl.now, 3)
		for i := 0; i < 3; i++ {
			c.Put(key(i), addr, time.Hour)
		}
		c.Lookup(key(0)) // order (MRU first): 0, 2, 1
		if harvest {
			var agg Stats
			agg.Merge(c.Stats())
			agg.Merge(c.Stats())
			if agg.Hits != 2*c.Stats().Hits {
				t.Fatal("Merge did not add counters")
			}
		}
		c.Put(key(3), addr, time.Hour) // must evict 1, the LRU tail
		var alive []bool
		for i := 0; i < 4; i++ {
			_, ok := c.Lookup(key(i))
			alive = append(alive, ok)
		}
		return alive
	}
	plain, harvested := run(false), run(true)
	for i := range plain {
		if plain[i] != harvested[i] {
			t.Fatalf("stats harvest changed eviction: %v vs %v", plain, harvested)
		}
	}
	if plain[1] {
		t.Fatalf("LRU tail survived the eviction: %v", plain)
	}
	if !plain[0] || !plain[2] || !plain[3] {
		t.Fatalf("wrong eviction victim: %v", plain)
	}
}

// TestStaleCeilingInteraction walks one entry through the three
// serve-stale lifetimes: fresh (both lookups hit), expired-but-stale
// (Lookup misses without reaping, LookupStale answers), and past the
// ceiling (both miss, entry reaped once).
func TestStaleCeilingInteraction(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 0)
	c.SetStaleCeiling(30 * time.Second)
	k := key(0)
	c.Put(k, addr, 10*time.Second)

	cl.t = 5 * time.Second
	if _, ok := c.Lookup(k); !ok {
		t.Fatal("fresh entry missed")
	}
	if _, ok := c.LookupStale(k); !ok {
		t.Fatal("fresh entry missed via LookupStale")
	}

	cl.t = 15 * time.Second // expired 5s ago, within the 30s ceiling
	if _, ok := c.Lookup(k); ok {
		t.Fatal("expired entry served as fresh")
	}
	if c.Len() != 1 {
		t.Fatal("stale-eligible entry was reaped by Lookup")
	}
	ent, ok := c.LookupStale(k)
	if !ok {
		t.Fatal("stale entry not served within the ceiling")
	}
	if rem := ent.Remaining(cl.t); rem != -5*time.Second {
		t.Fatalf("stale remaining lifetime %v, want -5s", rem)
	}

	cl.t = 40 * time.Second // expiry(10s) + ceiling(30s): just past it
	if _, ok := c.LookupStale(k); ok {
		t.Fatal("entry served at the stale ceiling instant")
	}
	if c.Len() != 0 {
		t.Fatal("entry past the ceiling not reaped")
	}
	s := c.Stats()
	if s.StaleHits != 1 || s.Expirations != 1 {
		t.Fatalf("want 1 stale hit and 1 expiration: %+v", s)
	}

	// Restoring strict expiry reaps on the first expired Lookup again.
	c.SetStaleCeiling(0)
	c.Put(k, addr, time.Second)
	cl.t += 2 * time.Second
	if _, ok := c.Lookup(k); ok || c.Len() != 0 {
		t.Fatal("strict expiry not restored after disabling the ceiling")
	}
}

// TestStaleAnswerTTLCap checks AnswerQueryStale advertises the RFC 8767
// capped TTL on stale answers and the true remaining TTL on fresh ones.
func TestStaleAnswerTTLCap(t *testing.T) {
	cl := &clock{}
	c := New(cl.now, 0)
	c.SetStaleCeiling(time.Hour)
	q := dnsmsg.NewQuery(1, "n0.example", dnsmsg.TypeA)
	c.Put(key(0), addr, 100*time.Second)

	cl.t = 40 * time.Second
	resp := c.AnswerQueryStale(&q)
	if resp == nil || resp.Answers[0].TTL != 60 {
		t.Fatalf("fresh answer TTL: %+v", resp)
	}
	cl.t = 200 * time.Second
	resp = c.AnswerQueryStale(&q)
	if resp == nil || resp.Answers[0].TTL != uint32(StaleAdvertTTL/time.Second) {
		t.Fatalf("stale answer TTL not capped: %+v", resp)
	}
}

// TestHotnessTopKSurvivesChurn checks the space-saving property the
// prefetcher depends on: a key whose true frequency exceeds the N/k
// error bound (N touches over k slots) stays tracked with at least its
// true count while one-off keys churn through a full table. Here the
// hot key holds 50 of N=250 touches against 250/8 ≈ 31.
func TestHotnessTopKSurvivesChurn(t *testing.T) {
	h := NewHotness(8)
	hot := key(0)
	for i := 0; i < 50; i++ {
		h.Touch(hot)
	}
	for i := 1; i <= 200; i++ {
		h.Touch(key(i))
	}
	if h.Len() != 8 {
		t.Fatalf("table holds %d slots, want capacity 8", h.Len())
	}
	if got := h.Count(hot); got < 50 {
		t.Fatalf("hot key count %d dropped below its true 50 accesses", got)
	}
	if !h.Hot(hot, 50) {
		t.Fatal("hot key not reported hot")
	}
	// The overestimate can promote, never hide: any tracked count is an
	// upper bound, and untracked keys report 0.
	if h.Count(key(9999)) != 0 {
		t.Fatal("untracked key has nonzero count")
	}
}

// TestHotnessDeterministicVictim checks the victim scan is first-minimum
// and content-deterministic: two trackers fed the same sequence end up
// with identical tables.
func TestHotnessDeterministicVictim(t *testing.T) {
	feed := func() *Hotness {
		h := NewHotness(4)
		seq := []int{1, 2, 3, 4, 2, 3, 4, 5, 6, 1, 7, 2, 8}
		for _, i := range seq {
			h.Touch(key(i))
		}
		return h
	}
	a, b := feed(), feed()
	if a.Len() != b.Len() {
		t.Fatalf("table sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.slots {
		if a.slots[i] != b.slots[i] {
			t.Fatalf("slot %d differs: %+v vs %+v", i, a.slots[i], b.slots[i])
		}
	}
	// Default capacity applies for non-positive values.
	if NewHotness(0).capacity != DefaultHotnessCapacity || NewHotness(-3).capacity != DefaultHotnessCapacity {
		t.Fatal("default capacity not applied")
	}
}
