// Package dnsproxy reimplements the local stub proxy of the paper's web
// performance methodology: Chromium is pointed at a local DNS proxy that
// forwards every query over a configured upstream DoX transport.
//
// Two behaviours of the original tool (AdGuard dnsproxy as used by the
// paper) are modeled explicitly:
//
//   - Session carry-over: TLS session tickets, QUIC address-validation
//     tokens and the negotiated QUIC version (for the QUIC transports,
//     DoQ and DoH3) survive ResetSessions, so the measured navigation
//     resumes sessions exactly as the paper's patched proxy does.
//   - The DoT in-flight bug (paper §3.2): when a query arrives while
//     another DoT query is still in flight, the proxy opens a new
//     connection — repeating the full transport+TLS handshake — instead
//     of reusing the existing one. The paper found this affected almost
//     60% of DoT page loads and disregarded DoT in its web analysis; the
//     fix (contributed upstream by the authors) is the FixDoTReuse
//     toggle, ablated in experiment E12.
package dnsproxy

import (
	"fmt"
	"net/netip"

	"repro/internal/cache"
	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

// Config parameterizes a proxy instance.
type Config struct {
	// Upstream transport and resolver.
	Upstream dox.Protocol
	Options  dox.Options // Host is the vantage host; Resolver the upstream

	// ListenPort is the local UDP port (default 5353).
	ListenPort uint16

	// FixDoTReuse applies the authors' upstream fix for the in-flight
	// connection bug. Default false: reproduce the paper's behaviour.
	FixDoTReuse bool

	// Use0RTT makes resumed upstream sessions attempt 0-RTT (E11).
	Use0RTT bool

	// StubCache enables a client-side TTL-aware answer cache: queries
	// for names the proxy has seen (within TTL) are answered locally
	// without touching the upstream transport, modelling a caching stub
	// in front of a shared resolver (experiment E18). Unlike upstream
	// sessions the stub cache deliberately survives ResetSessions — it
	// is the "warm shared cache" under measurement.
	StubCache bool
	// StubCacheCapacity bounds the stub cache (LRU); 0 = unbounded.
	StubCacheCapacity int
}

// Proxy is a running DNS forwarder.
type Proxy struct {
	cfg  Config
	host *netem.Host
	w    *sim.World
	sock *netem.Socket

	sessions *tlsmini.SessionCache
	quicSess *dox.QUICSessionStore
	stub     *cache.Cache

	primary   dox.Client
	ephemeral []dox.Client

	// fwdFn is the per-query task body, bound once; dgFree recycles the
	// datagram boxes it is handed, so spawning a forward task allocates
	// neither a closure nor a carrier (sim.GoCall + free list).
	fwdFn  func(any)
	dgFree []*netem.Datagram

	// Counters for the evaluation.
	Queries          int
	ExtraConnections int // DoT-bug connections that repeated the handshake
	Failures         int
	StubHits         int // queries answered from the stub cache

	closed bool
}

// New starts a proxy on the vantage host. Upstream connections are
// established lazily on the first query, as the real tool does.
func New(host *netem.Host, cfg Config) (*Proxy, error) {
	if cfg.ListenPort == 0 {
		cfg.ListenPort = 5353
	}
	sock, err := host.Listen(netem.ProtoUDP, cfg.ListenPort, 8)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:      cfg,
		host:     host,
		w:        host.World(),
		sock:     sock,
		sessions: tlsmini.NewSessionCache(),
		quicSess: dox.NewQUICSessionStore(),
	}
	if cfg.StubCache {
		p.stub = cache.New(p.w.Now, cfg.StubCacheCapacity)
	}
	p.fwdFn = func(a any) {
		dg := a.(*netem.Datagram)
		d := *dg
		*dg = netem.Datagram{}
		p.dgFree = append(p.dgFree, dg)
		p.forward(d)
	}
	p.w.Go(p.serve)
	return p, nil
}

// Addr returns the local address Chromium's stub should query.
func (p *Proxy) Addr() netip.AddrPort { return p.sock.LocalAddr() }

func (p *Proxy) serve() {
	for {
		d, ok := p.sock.Recv()
		if !ok {
			return
		}
		var dg *netem.Datagram
		if n := len(p.dgFree); n > 0 {
			dg = p.dgFree[n-1]
			p.dgFree[n-1] = nil
			p.dgFree = p.dgFree[:n-1]
		} else {
			dg = new(netem.Datagram)
		}
		*dg = d
		p.w.GoCall(p.fwdFn, dg)
	}
}

func (p *Proxy) forward(d netem.Datagram) {
	q, err := dnsmsg.Decode(d.Payload)
	if err != nil {
		return
	}
	p.Queries++
	if p.stub != nil {
		if resp := p.stub.AnswerQuery(q); resp != nil {
			p.StubHits++
			p.sock.Send(d.Src, resp.Encode())
			return
		}
	}
	client, transient, err := p.client()
	if err != nil {
		p.Failures++
		return
	}
	resp, err := client.Query(q)
	if transient {
		client.Close()
	}
	if err != nil {
		p.Failures++
		// Drop: the stub retransmits at its own cadence, exactly the
		// asymmetry the paper observed between DoUDP and the others.
		return
	}
	if p.stub != nil {
		p.stub.StoreResponse(resp)
	}
	p.sock.Send(d.Src, resp.Encode())
}

// client returns the upstream session to use for the next query,
// reproducing the DoT in-flight bug unless FixDoTReuse is set. transient
// connections are closed after one exchange.
func (p *Proxy) client() (c dox.Client, transient bool, err error) {
	if p.primary != nil {
		if p.cfg.Upstream == dox.DoT && !p.cfg.FixDoTReuse && p.primary.InFlight() > 0 {
			// Bug: open a brand new connection (full TCP+TLS handshake)
			// because one query is already in flight.
			p.ExtraConnections++
			nc, err := p.connect()
			if err != nil {
				return nil, false, err
			}
			p.ephemeral = append(p.ephemeral, nc)
			return nc, false, nil
		}
		return p.primary, false, nil
	}
	p.primary, err = p.connect()
	return p.primary, false, err
}

// quicUpstream reports whether the upstream rides QUIC (and therefore
// carries token/version/ALPN state across ResetSessions).
func (p *Proxy) quicUpstream() bool {
	return p.cfg.Upstream == dox.DoQ || p.cfg.Upstream == dox.DoH3
}

func (p *Proxy) connect() (dox.Client, error) {
	o := p.cfg.Options
	o.Host = p.host
	o.SessionCache = p.sessions
	if p.quicUpstream() {
		p.quicSess.Apply(o.Resolver, &o)
		if p.cfg.Use0RTT {
			o.OfferEarlyData = true
		}
	}
	c, err := dox.Connect(p.cfg.Upstream, o)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// ResetSessions closes all upstream connections while keeping resumption
// state (tickets, tokens, negotiated versions), as the paper does between
// the cache-warming navigation and the measurement navigation.
func (p *Proxy) ResetSessions() {
	if p.primary != nil {
		if p.quicUpstream() {
			p.quicSess.Remember(p.cfg.Options.Resolver, p.primary)
		}
		p.primary.Close()
		p.primary = nil
	}
	for _, c := range p.ephemeral {
		c.Close()
	}
	p.ephemeral = nil
}

// UpstreamMetrics exposes the current upstream session's metrics (nil
// before the first query).
func (p *Proxy) UpstreamMetrics() *dox.Metrics {
	if p.primary == nil {
		return nil
	}
	return p.primary.Metrics()
}

// Close stops the proxy.
func (p *Proxy) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.ResetSessions()
	p.sock.Close()
}

// String describes the proxy configuration.
func (p *Proxy) String() string {
	return fmt.Sprintf("dnsproxy(%v -> %v)", p.cfg.Upstream, p.cfg.Options.Resolver)
}
