// Package dnsproxy reimplements the local stub proxy of the paper's web
// performance methodology: Chromium is pointed at a local DNS proxy that
// forwards every query over a configured upstream DoX transport.
//
// Two behaviours of the original tool (AdGuard dnsproxy as used by the
// paper) are modeled explicitly:
//
//   - Session carry-over: TLS session tickets, QUIC address-validation
//     tokens and the negotiated QUIC version (for the QUIC transports,
//     DoQ and DoH3) survive ResetSessions, so the measured navigation
//     resumes sessions exactly as the paper's patched proxy does.
//   - The DoT in-flight bug (paper §3.2): when a query arrives while
//     another DoT query is still in flight, the proxy opens a new
//     connection — repeating the full transport+TLS handshake — instead
//     of reusing the existing one. The paper found this affected almost
//     60% of DoT page loads and disregarded DoT in its web analysis; the
//     fix (contributed upstream by the authors) is the FixDoTReuse
//     toggle, ablated in experiment E12.
//
// Beyond the paper's tool, the proxy implements the serving semantics a
// production resolver frontend needs (DESIGN.md §8, experiments
// E22–E24):
//
//   - In-flight coalescing: identical concurrent (name, type) queries
//     share one upstream exchange; the fan-out answers waiters in their
//     virtual-time arrival order, so coalescing is deterministic.
//   - RFC 8767 serve-stale: when the upstream is unreachable, answers
//     past their TTL are served from the stub cache up to a bounded
//     stale ceiling, and a background revalidation task refreshes the
//     entry once the upstream recovers.
//   - TTL-expiry prefetch: names a deterministic fixed-memory hotness
//     tracker marks as hot are refreshed shortly before their TTL
//     lapses, so the Zipf head never goes cold.
//   - Per-client token-bucket rate limiting with REFUSED responses.
package dnsproxy

import (
	"fmt"
	"net/netip"
	"time"

	"repro/internal/cache"
	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/netapi"
	"repro/internal/stats"
	"repro/internal/tlsmini"
)

// Config parameterizes a proxy instance.
type Config struct {
	// Upstream transport and resolver.
	Upstream dox.Protocol
	Options  dox.Options // Backend is the vantage backend; Resolver the upstream

	// ListenPort is the local UDP port (default 5353).
	ListenPort uint16

	// FixDoTReuse applies the authors' upstream fix for the in-flight
	// connection bug. Default false: reproduce the paper's behaviour.
	FixDoTReuse bool

	// Use0RTT makes resumed upstream sessions attempt 0-RTT (E11).
	Use0RTT bool

	// StubCache enables a client-side TTL-aware answer cache: queries
	// for names the proxy has seen (within TTL) are answered locally
	// without touching the upstream transport, modelling a caching stub
	// in front of a shared resolver (experiment E18). Unlike upstream
	// sessions the stub cache deliberately survives ResetSessions — it
	// is the "warm shared cache" under measurement.
	StubCache bool
	// StubCacheCapacity bounds the stub cache (LRU); 0 = unbounded.
	StubCacheCapacity int

	// Coalesce shares one upstream exchange among identical concurrent
	// (name, type) queries. Waiters are answered in virtual-time arrival
	// order (E22).
	Coalesce bool

	// ServeStale answers from expired stub-cache entries while the
	// upstream is unreachable, per RFC 8767 (E23). Requires StubCache.
	ServeStale bool
	// StaleTTL bounds how far past expiry an entry may still be served
	// (default 1h; RFC 8767 suggests 1-3 days, scaled down to campaign
	// timescales).
	StaleTTL time.Duration
	// RevalidateInterval is the cadence of background revalidation
	// attempts for stale-served names (default 2s).
	RevalidateInterval time.Duration

	// Prefetch refreshes hot names shortly before their TTL lapses so
	// the Zipf head stays warm (E24). Requires StubCache.
	Prefetch bool
	// PrefetchMinHits is the hotness threshold (default 3 accesses).
	PrefetchMinHits int
	// PrefetchLead is how long before expiry the refresh fires (default
	// 1s, clamped below the answer TTL).
	PrefetchLead time.Duration
	// PrefetchCapacity bounds the hotness tracker's slot table
	// (default cache.DefaultHotnessCapacity).
	PrefetchCapacity int
	// PrefetchIdle bounds how long the refresh chain outlives client
	// demand: once no client query for the name has arrived within this
	// window, the next scheduled refresh lapses instead of firing
	// (default 30s). Without the horizon a once-hot name would be
	// refreshed forever.
	PrefetchIdle time.Duration

	// RateLimitQPS enables per-client token-bucket rate limiting:
	// clients exceeding this sustained rate get REFUSED responses.
	// 0 disables limiting.
	RateLimitQPS float64
	// RateLimitBurst is the bucket depth (default 4).
	RateLimitBurst int

	// RetryUpstream retries a failed upstream exchange once over a
	// fresh session, as production forwarders do when a reused
	// connection dies under a query (an access-network flip being the
	// canonical cause, E26). Default false: the paper-reproduction
	// experiments surface transport errors as-is.
	RetryUpstream bool
}

// waiter is one stub endpoint awaiting a coalesced exchange: where to
// send the answer and which query ID to stamp on it.
type waiter struct {
	src netip.AddrPort
	id  uint16
}

// flight is one in-progress upstream exchange and its waiter list, in
// arrival order. Flights are pooled: the waiters slice keeps its
// capacity across reuse, so steady-state coalescing does not allocate.
type flight struct {
	waiters []waiter
}

// tokenBucket is one client's rate-limit state on virtual time.
type tokenBucket struct {
	tokens float64
	last   time.Duration
}

// Proxy is a running DNS forwarder.
type Proxy struct {
	cfg  Config
	be   netapi.Backend
	sock netapi.PacketConn

	sessions *tlsmini.SessionCache
	quicSess *dox.QUICSessionStore
	stub     *cache.Cache

	primary   dox.Client
	ephemeral []dox.Client

	// fwdFn is the per-query task body, bound once; dgFree recycles the
	// packet boxes it is handed, so spawning a forward task allocates
	// neither a closure nor a carrier (GoCall + free list).
	fwdFn  func(any)
	dgFree []*netapi.Packet

	// inflight maps a query key to its coalesced flight. The map is
	// only ever indexed, never iterated, so it leaks no ordering.
	inflight   map[cache.Key]*flight
	flightFree []*flight

	hot          *cache.Hotness
	prefetchOn   map[cache.Key]bool          // armed prefetch timers
	lastSeen     map[cache.Key]time.Duration // last client demand per armed chain
	revalidating map[cache.Key]bool          // armed revalidation retries
	buckets      map[netip.AddrPort]*tokenBucket
	qid          uint16 // internal IDs for prefetch/revalidation queries

	// Counters for the evaluation.
	Queries          int
	ExtraConnections int // DoT-bug connections that repeated the handshake
	Failures         int
	StubHits         int // queries answered from the stub cache
	UpstreamQueries  int // exchanges actually sent upstream
	Coalesced        int // queries that joined an in-flight exchange
	StaleServed      int // answers served past expiry (RFC 8767)
	Revalidations    int // stale entries refreshed after upstream recovery
	Prefetches       int // hot-name refreshes issued before expiry
	Refused          int // queries rejected by the rate limiter
	UpstreamRetries  int // exchanges retried over a fresh session
	Migrations       int // upstream connections that survived a link flip

	// StaleAge sketches the staleness (age past expiry) of every
	// stale-served answer, for the E23 staleness CDF. Nil unless
	// ServeStale is on.
	StaleAge *stats.Sketch

	closed bool
}

// New starts a proxy on the vantage backend. Upstream connections are
// established lazily on the first query, as the real tool does.
func New(be netapi.Backend, cfg Config) (*Proxy, error) {
	if cfg.ListenPort == 0 {
		cfg.ListenPort = 5353
	}
	if cfg.StaleTTL == 0 {
		cfg.StaleTTL = time.Hour
	}
	if cfg.RevalidateInterval == 0 {
		cfg.RevalidateInterval = 2 * time.Second
	}
	if cfg.PrefetchMinHits == 0 {
		cfg.PrefetchMinHits = 3
	}
	if cfg.PrefetchLead == 0 {
		cfg.PrefetchLead = time.Second
	}
	if cfg.PrefetchIdle == 0 {
		cfg.PrefetchIdle = 30 * time.Second
	}
	if cfg.RateLimitBurst == 0 {
		cfg.RateLimitBurst = 4
	}
	if cfg.ServeStale || cfg.Prefetch {
		// Both features live on the stub cache; enabling them implies it.
		cfg.StubCache = true
	}
	sock, err := be.ListenUDP(cfg.ListenPort, 8)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:      cfg,
		be:       be,
		sock:     sock,
		sessions: tlsmini.NewSessionCache(),
		quicSess: dox.NewQUICSessionStore(),
	}
	if cfg.StubCache {
		p.stub = cache.New(be.Now, cfg.StubCacheCapacity)
	}
	if cfg.ServeStale {
		p.stub.SetStaleCeiling(cfg.StaleTTL)
		p.revalidating = make(map[cache.Key]bool)
		p.StaleAge = stats.NewSketch()
	}
	if cfg.Coalesce {
		p.inflight = make(map[cache.Key]*flight)
	}
	if cfg.Prefetch {
		p.hot = cache.NewHotness(cfg.PrefetchCapacity)
		p.prefetchOn = make(map[cache.Key]bool)
		p.lastSeen = make(map[cache.Key]time.Duration)
	}
	if cfg.RateLimitQPS > 0 {
		p.buckets = make(map[netip.AddrPort]*tokenBucket)
	}
	p.fwdFn = func(a any) {
		dg := a.(*netapi.Packet)
		d := *dg
		*dg = netapi.Packet{}
		p.dgFree = append(p.dgFree, dg)
		p.forward(d)
	}
	p.be.Go(p.serve)
	return p, nil
}

// Addr returns the local address Chromium's stub should query.
func (p *Proxy) Addr() netip.AddrPort { return p.sock.LocalAddr() }

// StubCacheStats returns the stub cache's counters (zero without a stub
// cache).
func (p *Proxy) StubCacheStats() cache.Stats {
	if p.stub == nil {
		return cache.Stats{}
	}
	return p.stub.Stats()
}

func (p *Proxy) serve() {
	for {
		d, ok := p.sock.Recv()
		if !ok {
			return
		}
		var dg *netapi.Packet
		if n := len(p.dgFree); n > 0 {
			dg = p.dgFree[n-1]
			p.dgFree[n-1] = nil
			p.dgFree = p.dgFree[:n-1]
		} else {
			dg = new(netapi.Packet)
		}
		*dg = d
		p.be.GoCall(p.fwdFn, dg)
	}
}

// queryKey extracts the coalescing/cache key of a query's first
// question. ok is false for questionless messages.
func queryKey(q *dnsmsg.Message) (cache.Key, bool) {
	if len(q.Questions) == 0 {
		return cache.Key{}, false
	}
	qu := q.Questions[0]
	return cache.Key{Name: qu.Name, Type: qu.Type}, true
}

// send encodes resp into a pooled buffer and sends it to dst (the
// network assumes ownership of the buffer).
func (p *Proxy) send(dst netip.AddrPort, resp *dnsmsg.Message) {
	p.sock.Send(dst, resp.AppendEncode(p.sock.Pool().Get(512)))
}

func (p *Proxy) forward(d netapi.Packet) {
	q, err := dnsmsg.Decode(d.Payload)
	if err != nil {
		return
	}
	p.Queries++
	if !p.allow(d.Src) {
		p.Refused++
		resp := dnsmsg.Reply(*q)
		resp.RCode = dnsmsg.RCodeRefused
		p.send(d.Src, &resp)
		return
	}
	key, hasKey := queryKey(q)
	if hasKey && p.hot != nil {
		// Popularity reflects demand, so every query counts — including
		// the ones the stub cache absorbs.
		p.hot.Touch(key)
		if p.prefetchOn[key] {
			// Live demand extends the armed refresh chain's idle horizon.
			p.lastSeen[key] = p.be.Now()
		}
	}
	if p.stub != nil {
		if resp := p.stub.AnswerQuery(q); resp != nil {
			p.StubHits++
			p.send(d.Src, resp)
			return
		}
	}
	if p.cfg.Coalesce && hasKey {
		if f, ok := p.inflight[key]; ok {
			// Join the in-flight exchange. Arrival order is virtual-time
			// order (the kernel runs one task at a time), so the waiter
			// list — and with it the fan-out below — is deterministic.
			p.Coalesced++
			f.waiters = append(f.waiters, waiter{src: d.Src, id: q.ID})
			return
		}
		f := p.newFlight()
		f.waiters = append(f.waiters, waiter{src: d.Src, id: q.ID})
		p.inflight[key] = f
		resp := p.exchange(q, false)
		// Unregister before fanning out: replies may yield, and a new
		// identical query must start a fresh exchange, not join a
		// completed one.
		delete(p.inflight, key)
		if resp != nil {
			for _, wt := range f.waiters {
				resp.ID = wt.id
				p.send(wt.src, resp)
			}
		} else {
			for _, wt := range f.waiters {
				p.answerStale(key, wt.src, wt.id)
			}
		}
		p.freeFlight(f)
		return
	}
	resp := p.exchange(q, false)
	if resp == nil {
		if hasKey {
			// RFC 8767: prefer a stale answer over no answer. Without
			// serve-stale the query is dropped: the stub retransmits at
			// its own cadence, exactly the asymmetry the paper observed
			// between DoUDP and the others.
			p.answerStale(key, d.Src, q.ID)
		}
		return
	}
	p.send(d.Src, resp)
}

// exchange performs one upstream query, storing any answer in the stub
// cache and arming prefetch for hot names. internal marks proxy-initiated
// queries (revalidation, prefetch), which must not count as client demand
// — otherwise the refresh chain would feed its own idle horizon and never
// die. Returns nil on failure.
func (p *Proxy) exchange(q *dnsmsg.Message, internal bool) *dnsmsg.Message {
	client, transient, err := p.client()
	if err != nil {
		p.Failures++
		return nil
	}
	p.UpstreamQueries++
	// Rewrite the transaction ID for the upstream leg, as real proxies
	// do: two stubs may pick the same ID for concurrent queries, and the
	// upstream transports match responses by ID.
	orig := q.ID
	p.qid++
	q.ID = p.qid
	resp, err := client.Query(q)
	if err != nil && p.cfg.RetryUpstream && !transient && !p.closed {
		// The session died under the query (the access network flipped,
		// the peer reset): retry once over a fresh session. Only the
		// first failing exchange resets the shared primary — a
		// concurrent flight that failed with it finds the replacement
		// already in place and must not tear it down again.
		if p.primary == client {
			p.ResetSessions()
		}
		if rc, _, rerr := p.client(); rerr == nil {
			p.UpstreamRetries++
			resp, err = rc.Query(q)
		}
	}
	q.ID = orig
	if transient {
		client.Close()
	}
	if err != nil {
		p.Failures++
		return nil
	}
	resp.ID = orig
	if p.stub != nil {
		p.stub.StoreResponse(resp)
		p.armPrefetch(resp, internal)
	}
	return resp
}

// allow charges src's token bucket for one query. Buckets refill at
// RateLimitQPS on virtual time up to RateLimitBurst; the map is only
// indexed by source, never iterated, so limiting stays deterministic.
func (p *Proxy) allow(src netip.AddrPort) bool {
	if p.buckets == nil {
		return true
	}
	now := p.be.Now()
	b, ok := p.buckets[src]
	if !ok {
		b = &tokenBucket{tokens: float64(p.cfg.RateLimitBurst), last: now}
		p.buckets[src] = b
	}
	b.tokens += p.cfg.RateLimitQPS * (now - b.last).Seconds()
	if max := float64(p.cfg.RateLimitBurst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// answerStale serves src from a fresh-or-stale stub entry after a failed
// upstream exchange, arming background revalidation when the answer was
// genuinely stale. Reports whether an answer was sent.
func (p *Proxy) answerStale(key cache.Key, src netip.AddrPort, id uint16) bool {
	if !p.cfg.ServeStale || p.closed {
		return false
	}
	ent, ok := p.stub.LookupStale(key)
	if !ok {
		return false
	}
	ttl := cache.StaleAdvertTTL
	if rem := ent.Remaining(p.be.Now()); rem > 0 {
		// A concurrent exchange refreshed the entry while ours failed:
		// this is a plain hit, not a stale serve.
		ttl = rem
	} else {
		p.StaleServed++
		p.StaleAge.AddDuration(-rem)
		p.scheduleRevalidate(key)
	}
	resp := dnsmsg.Message{
		ID:                 id,
		Response:           true,
		RecursionDesired:   true,
		RecursionAvailable: true,
		Questions:          []dnsmsg.Question{{Name: key.Name, Type: key.Type, Class: dnsmsg.ClassIN}},
	}
	resp.AnswerA(ent.Addr, cache.TTLSeconds(ttl))
	p.send(src, &resp)
	return true
}

// scheduleRevalidate arms (at most one per key) a background refresh of
// a stale-served entry: retried every RevalidateInterval until the
// upstream recovers or the entry ages past the stale ceiling.
func (p *Proxy) scheduleRevalidate(key cache.Key) {
	if p.revalidating[key] {
		return
	}
	p.revalidating[key] = true
	p.be.AfterFunc(p.cfg.RevalidateInterval, func() { p.revalidate(key) })
}

// revalidate runs one background refresh attempt for key. Timer
// callbacks run as kernel tasks, so blocking on the upstream exchange
// here is safe.
func (p *Proxy) revalidate(key cache.Key) {
	if p.closed {
		delete(p.revalidating, key)
		return
	}
	if _, stillHeld := p.stub.LookupStale(key); !stillHeld {
		// Aged past the ceiling (or flushed): nothing left to refresh.
		delete(p.revalidating, key)
		return
	}
	p.qid++
	q := dnsmsg.NewQuery(p.qid, key.Name, key.Type)
	if resp := p.exchange(&q, true); resp != nil {
		p.Revalidations++
		delete(p.revalidating, key)
		return
	}
	// Still unreachable: keep the marker and retry.
	p.be.AfterFunc(p.cfg.RevalidateInterval, func() { p.revalidate(key) })
}

// armPrefetch schedules a TTL-expiry refresh for the first A answer of
// resp when the hotness tracker marks its name hot. At most one timer
// per key is armed; a successful refresh re-arms through this same path.
// A client-triggered arm records demand (seeding the idle horizon); an
// internal re-arm does not.
func (p *Proxy) armPrefetch(resp *dnsmsg.Message, internal bool) {
	if p.hot == nil || resp.RCode != dnsmsg.RCodeSuccess {
		return
	}
	for _, a := range resp.Answers {
		if a.Type != dnsmsg.TypeA || !a.Addr.IsValid() {
			continue
		}
		key := cache.Key{Name: a.Name, Type: a.Type}
		ttl := time.Duration(a.TTL) * time.Second
		if ttl <= 0 || p.prefetchOn[key] || !p.hot.Hot(key, p.cfg.PrefetchMinHits) {
			return
		}
		lead := p.cfg.PrefetchLead
		if ttl <= lead {
			// The upstream handed down the tail of its own cache entry
			// (shorter than the lead). Refreshing early would inherit an
			// even shorter remainder and starve the chain; refresh at
			// expiry instead, when the upstream re-recurses too (TTLs
			// round up, so our expiry lands just past the upstream's).
			lead = 0
		}
		p.prefetchOn[key] = true
		if !internal {
			p.lastSeen[key] = p.be.Now()
		}
		p.be.AfterFunc(ttl-lead, func() { p.prefetch(key) })
		return
	}
}

// prefetch refreshes key just before its TTL lapses, provided the name
// is still hot and clients have asked for it within the idle horizon.
// The refreshed answer re-arms the next prefetch, so a name under live
// demand never goes cold — while a chain the clients abandoned lapses
// at its next scheduled refresh.
func (p *Proxy) prefetch(key cache.Key) {
	delete(p.prefetchOn, key)
	if p.closed {
		return
	}
	if !p.hot.Hot(key, p.cfg.PrefetchMinHits) || p.be.Now()-p.lastSeen[key] > p.cfg.PrefetchIdle {
		delete(p.lastSeen, key)
		return
	}
	if p.cfg.Coalesce {
		if _, busy := p.inflight[key]; busy {
			// A client exchange is already refreshing this name.
			return
		}
	}
	p.Prefetches++
	p.qid++
	q := dnsmsg.NewQuery(p.qid, key.Name, key.Type)
	p.exchange(&q, true)
}

// newFlight leases a flight with an empty (capacity-retaining) waiter
// list.
func (p *Proxy) newFlight() *flight {
	if n := len(p.flightFree); n > 0 {
		f := p.flightFree[n-1]
		p.flightFree[n-1] = nil
		p.flightFree = p.flightFree[:n-1]
		return f
	}
	return &flight{}
}

// freeFlight recycles a completed flight.
func (p *Proxy) freeFlight(f *flight) {
	f.waiters = f.waiters[:0]
	p.flightFree = append(p.flightFree, f)
}

// client returns the upstream session to use for the next query,
// reproducing the DoT in-flight bug unless FixDoTReuse is set. transient
// connections are closed after one exchange.
func (p *Proxy) client() (c dox.Client, transient bool, err error) {
	if p.primary != nil {
		if p.cfg.Upstream == dox.DoT && !p.cfg.FixDoTReuse && p.primary.InFlight() > 0 {
			// Bug: open a brand new connection (full TCP+TLS handshake)
			// because one query is already in flight.
			p.ExtraConnections++
			nc, err := p.connect()
			if err != nil {
				return nil, false, err
			}
			p.ephemeral = append(p.ephemeral, nc)
			return nc, false, nil
		}
		return p.primary, false, nil
	}
	p.primary, err = p.connect()
	if err != nil {
		p.primary = nil
	}
	return p.primary, false, err
}

// quicUpstream reports whether the upstream rides QUIC (and therefore
// carries token/version/ALPN state across ResetSessions).
func (p *Proxy) quicUpstream() bool {
	return p.cfg.Upstream == dox.DoQ || p.cfg.Upstream == dox.DoH3
}

func (p *Proxy) connect() (dox.Client, error) {
	o := p.cfg.Options
	o.Backend = p.be
	o.SessionCache = p.sessions
	if p.quicUpstream() {
		p.quicSess.Apply(o.Resolver, &o)
		if p.cfg.Use0RTT {
			o.OfferEarlyData = true
		}
	}
	c, err := dox.Connect(p.cfg.Upstream, o)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// ResetSessions closes all upstream connections while keeping resumption
// state (tickets, tokens, negotiated versions), as the paper does between
// the cache-warming navigation and the measurement navigation. The stub
// cache — including its stale inventory, hotness table and armed
// prefetches — survives: it is the warm shared cache under measurement.
func (p *Proxy) ResetSessions() {
	if p.primary != nil {
		if p.quicUpstream() {
			p.quicSess.Remember(p.cfg.Options.Resolver, p.primary)
		}
		p.primary.Close()
		p.primary = nil
	}
	for _, c := range p.ephemeral {
		c.Close()
	}
	p.ephemeral = nil
}

// Prime establishes the primary upstream session without sending a
// query, as a long-lived stub proxy would have from prior traffic.
// With resumption state remembered, this is a resumed handshake.
func (p *Proxy) Prime() error {
	_, _, err := p.client()
	return err
}

// MigrateUpstream moves the upstream session to a new access network
// (the vantage's link flipped, e.g. wifi to cellular). QUIC upstreams
// (DoQ, DoH3) migrate the live connection — one PATH_CHALLENGE round
// trip, no re-handshake; TCP-based upstreams are bound to the dead
// 4-tuple, so their sessions are torn down and the next query pays a
// fresh (resumed) handshake. Reports whether the connection survived.
func (p *Proxy) MigrateUpstream() (migrated bool, err error) {
	if p.primary == nil {
		return false, nil
	}
	if m, ok := p.primary.(dox.Migrator); ok {
		if err := m.Migrate(); err != nil {
			// Path validation failed: fall back to reconnecting.
			p.ResetSessions()
			return false, err
		}
		p.Migrations++
		return true, nil
	}
	// TCP-based sessions are bound to the dead 4-tuple. Abort them:
	// the peer's in-flight bytes can never reach the old address, so a
	// graceful close (which would let them drain) mismodels the flip.
	if a, ok := p.primary.(dox.Aborter); ok {
		a.Abort()
	}
	for _, c := range p.ephemeral {
		if a, ok := c.(dox.Aborter); ok {
			a.Abort()
		}
	}
	p.ResetSessions()
	return false, nil
}

// UpstreamMetrics exposes the current upstream session's metrics (nil
// before the first query).
func (p *Proxy) UpstreamMetrics() *dox.Metrics {
	if p.primary == nil {
		return nil
	}
	return p.primary.Metrics()
}

// Close stops the proxy.
func (p *Proxy) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.ResetSessions()
	p.sock.Close()
}

// String describes the proxy configuration.
func (p *Proxy) String() string {
	return fmt.Sprintf("dnsproxy(%v -> %v)", p.cfg.Upstream, p.cfg.Options.Resolver)
}
