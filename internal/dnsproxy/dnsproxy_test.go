package dnsproxy

import (
	"net/netip"
	"runtime"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/resolver"
	"repro/internal/sim"
)

func setup(t *testing.T, upstream dox.Protocol, mut func(*Config)) (*resolver.Universe, *Proxy) {
	t.Helper()
	return setupFull(t, upstream, nil, mut)
}

// setupFull is setup with control over the universe too (path phases,
// profile mutation) for the serving-semantics tests.
func setupFull(t *testing.T, upstream dox.Protocol, umut func(*resolver.UniverseConfig), mut func(*Config)) (*resolver.Universe, *Proxy) {
	t.Helper()
	ucfg := resolver.UniverseConfig{
		Seed:           21,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
		Loss:           0,
	}
	if umut != nil {
		umut(&ucfg)
	}
	u, err := resolver.NewUniverse(ucfg)
	if err != nil {
		t.Fatal(err)
	}
	vp, res := u.Vantages[0], u.Resolvers[0]
	cfg := Config{
		Upstream: upstream,
		Options: dox.Options{
			Resolver:   res.Addr,
			ServerName: res.Name,
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := New(vp.Backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u, p
}

// stubQuery performs a stub-style lookup through the proxy.
func stubQuery(u *resolver.Universe, proxyAddr netip.AddrPort, id uint16, name string, timeout time.Duration) (*dnsmsg.Message, bool) {
	host := u.Vantages[0].Host
	sock := host.Dial(netem.ProtoUDP, 8)
	defer sock.Close()
	q := dnsmsg.NewQuery(id, name, dnsmsg.TypeA)
	sock.Send(proxyAddr, q.Encode())
	d, ok := sock.RecvTimeout(timeout)
	if !ok {
		return nil, false
	}
	resp, err := dnsmsg.Decode(d.Payload)
	return resp, err == nil
}

func TestForwardsOverEachUpstream(t *testing.T) {
	for _, proto := range dox.Protocols {
		u, p := setup(t, proto, nil)
		var ok bool
		u.W.Go(func() {
			_, ok = stubQuery(u, p.Addr(), 1, "example.org", 10*time.Second)
		})
		u.W.Run()
		if !ok {
			t.Errorf("%v: no response through proxy", proto)
		}
		if p.Queries != 1 {
			t.Errorf("%v: proxy counted %d queries", proto, p.Queries)
		}
	}
}

func TestConnectionReuseAcrossQueries(t *testing.T) {
	u, p := setup(t, dox.DoQ, nil)
	var times [3]time.Duration
	u.W.Go(func() {
		for i := range times {
			start := u.W.Now()
			if _, ok := stubQuery(u, p.Addr(), uint16(i+1), "example.org", 10*time.Second); !ok {
				t.Error("query failed")
				return
			}
			times[i] = u.W.Now() - start
		}
	})
	u.W.Run()
	// First query pays the upstream handshake; later ones reuse the
	// session and should be roughly half as slow (1 RTT vs 2).
	if times[1] >= times[0] || times[2] >= times[0] {
		t.Errorf("no reuse benefit: %v", times)
	}
}

func TestResetSessionsKeepsResumptionState(t *testing.T) {
	u, p := setup(t, dox.DoQ, nil)
	var second *dox.Metrics
	u.W.Go(func() {
		if _, ok := stubQuery(u, p.Addr(), 1, "example.org", 10*time.Second); !ok {
			t.Error("warm query failed")
			return
		}
		p.ResetSessions()
		if _, ok := stubQuery(u, p.Addr(), 2, "example.org", 10*time.Second); !ok {
			t.Error("post-reset query failed")
			return
		}
		second = p.UpstreamMetrics()
	})
	u.W.Run()
	if second == nil {
		t.Fatal("no upstream metrics")
	}
	if !second.UsedResumption {
		t.Error("post-reset upstream session did not resume")
	}
	if !second.UsedToken {
		t.Error("post-reset DoQ session did not reuse the address-validation token")
	}
}

func TestDoTInFlightBugAndFix(t *testing.T) {
	run := func(fixed bool) int {
		u, p := setup(t, dox.DoT, func(c *Config) { c.FixDoTReuse = fixed })
		u.W.Go(func() {
			// Prime the primary connection.
			stubQuery(u, p.Addr(), 1, "seed.example", 10*time.Second)
			// Fire several concurrent queries: with the bug, in-flight
			// detection opens extra connections.
			wg := sim.NewWaitGroup(u.W)
			for i := 0; i < 4; i++ {
				i := i
				wg.Add(1)
				u.W.Go(func() {
					defer wg.Done()
					stubQuery(u, p.Addr(), uint16(10+i), "concurrent.example", 10*time.Second)
				})
			}
			wg.Wait()
		})
		u.W.Run()
		return p.ExtraConnections
	}
	if extra := run(false); extra == 0 {
		t.Error("buggy mode opened no extra connections under concurrency")
	}
	if extra := run(true); extra != 0 {
		t.Errorf("fixed mode opened %d extra connections", extra)
	}
}

func TestUpstreamFailureCountsAsFailure(t *testing.T) {
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           22,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
		Loss:           0,
	})
	if err != nil {
		t.Fatal(err)
	}
	vp := u.Vantages[0]
	// Upstream points at an address with no resolver.
	p, err := New(vp.Backend, Config{
		Upstream: dox.DoUDP,
		Options: dox.Options{
			Resolver:   netip.MustParseAddr("203.255.255.1"),
			UDPTimeout: 200 * time.Millisecond,
			UDPRetries: 0,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ok bool
	u.W.Go(func() {
		_, ok = stubQuery(u, p.Addr(), 1, "x.example", 2*time.Second)
	})
	u.W.Run()
	if ok {
		t.Error("stub got a response despite dead upstream")
	}
	if p.Failures == 0 {
		t.Error("proxy did not count the failure")
	}
}

// TestCoalescingSharesUpstreamExchange checks the E22 mechanism at unit
// scale: identical concurrent queries share one upstream exchange, every
// waiter still gets a response stamped with its own ID, and disabling
// coalescing restores one exchange per query.
func TestCoalescingSharesUpstreamExchange(t *testing.T) {
	run := func(coalesce bool) (*Proxy, int) {
		u, p := setup(t, dox.DoUDP, func(c *Config) { c.Coalesce = coalesce })
		answered := 0
		u.W.Go(func() {
			wg := sim.NewWaitGroup(u.W)
			for i := 0; i < 4; i++ {
				id := uint16(10 + i)
				wg.Add(1)
				u.W.Go(func() {
					defer wg.Done()
					resp, ok := stubQuery(u, p.Addr(), id, "hot.example", 10*time.Second)
					if ok && resp.ID == id && len(resp.Answers) > 0 {
						answered++
					}
				})
			}
			wg.Wait()
		})
		u.W.Run()
		return p, answered
	}
	p, answered := run(true)
	if answered != 4 {
		t.Fatalf("coalesced: %d/4 waiters answered", answered)
	}
	if p.UpstreamQueries != 1 {
		t.Errorf("coalesced: %d upstream exchanges, want 1", p.UpstreamQueries)
	}
	if p.Coalesced != 3 {
		t.Errorf("coalesced: %d joins, want 3", p.Coalesced)
	}
	p, answered = run(false)
	if answered != 4 {
		t.Fatalf("uncoalesced: %d/4 queries answered", answered)
	}
	if p.UpstreamQueries != 4 {
		t.Errorf("uncoalesced: %d upstream exchanges, want 4", p.UpstreamQueries)
	}
}

// outageSetup builds a universe whose single resolver answers every
// query with a 5s TTL and goes unreachable during [10s, 40s).
func outageSetup(t *testing.T, mut func(*Config)) (*resolver.Universe, *Proxy) {
	t.Helper()
	return setupFull(t, dox.DoUDP,
		func(uc *resolver.UniverseConfig) {
			uc.PathPhases = resolver.OutagePhases(0, 10*time.Second, 40*time.Second)
			uc.MutateProfile = func(p *resolver.Profile) {
				p.ResponseRate = 1
				p.CacheTTL = 5 * time.Second
			}
		},
		func(c *Config) {
			c.Options.UDPTimeout = 500 * time.Millisecond
			c.Options.UDPRetries = 0
			mut(c)
		})
}

// TestServeStaleAcrossOutage checks the RFC 8767 state machine: a name
// cached before an upstream outage is served stale (advertising the
// 30s cap) once its TTL lapses mid-outage, background revalidation
// refreshes it after recovery, and with serve-stale off the same query
// gets nothing.
func TestServeStaleAcrossOutage(t *testing.T) {
	u, p := outageSetup(t, func(c *Config) {
		c.ServeStale = true
		c.StaleTTL = 5 * time.Minute
		c.RevalidateInterval = 2 * time.Second
	})
	var warmAddr, staleAddr [4]byte
	var staleOK, postOK bool
	var staleTTL uint32
	var postHits int
	u.W.Go(func() {
		resp, ok := stubQuery(u, p.Addr(), 1, "popular.example", 5*time.Second)
		if !ok || len(resp.Answers) == 0 {
			t.Error("warm query failed")
			return
		}
		warmAddr = resp.Answers[0].Addr.As4()
		// 20s: mid-outage, entry expired 15s ago.
		u.W.Sleep(20*time.Second - u.W.Now())
		var stale *dnsmsg.Message
		stale, staleOK = stubQuery(u, p.Addr(), 2, "popular.example", 5*time.Second)
		if staleOK && len(stale.Answers) > 0 {
			staleAddr = stale.Answers[0].Addr.As4()
			staleTTL = stale.Answers[0].TTL
		}
		// 43.5s: just past recovery. Revalidation (retrying every
		// ~2.5s) succeeds within an attempt or two of the path healing,
		// and its refreshed entry — whose TTL is the upstream's 5s —
		// is still fresh here.
		u.W.Sleep(43500*time.Millisecond - u.W.Now())
		before := p.StubHits
		_, postOK = stubQuery(u, p.Addr(), 3, "popular.example", 5*time.Second)
		postHits = p.StubHits - before
	})
	u.W.Run()
	if !staleOK {
		t.Fatal("no stale answer during outage")
	}
	if staleAddr != warmAddr {
		t.Errorf("stale answer addr %v differs from cached %v", staleAddr, warmAddr)
	}
	if staleTTL != uint32(cache.StaleAdvertTTL/time.Second) {
		t.Errorf("stale answer advertised TTL %d, want %d", staleTTL, cache.StaleAdvertTTL/time.Second)
	}
	if p.StaleServed != 1 {
		t.Errorf("StaleServed = %d, want 1", p.StaleServed)
	}
	if p.Revalidations != 1 {
		t.Errorf("Revalidations = %d, want 1 (background refresh after recovery)", p.Revalidations)
	}
	if !postOK {
		t.Error("post-recovery query failed")
	}
	if postHits != 1 {
		t.Errorf("post-recovery query was not served from the revalidated cache (hits delta %d)", postHits)
	}

	// Off arm: same outage, no serve-stale — the mid-outage query gets
	// nothing at all.
	u2, p2 := outageSetup(t, func(c *Config) { c.StubCache = true })
	var gotDuringOutage bool
	u2.W.Go(func() {
		if _, ok := stubQuery(u2, p2.Addr(), 1, "popular.example", 5*time.Second); !ok {
			t.Error("warm query failed (off arm)")
			return
		}
		u2.W.Sleep(20*time.Second - u2.W.Now())
		_, gotDuringOutage = stubQuery(u2, p2.Addr(), 2, "popular.example", 5*time.Second)
	})
	u2.W.Run()
	if gotDuringOutage {
		t.Error("serve-stale off: expired name was answered during the outage")
	}
	if p2.StaleServed != 0 {
		t.Errorf("serve-stale off: StaleServed = %d", p2.StaleServed)
	}
}

// TestPrefetchKeepsHotNameWarm checks the E24 mechanism: once a name
// crosses the hotness threshold, the proxy refreshes it before every
// TTL expiry, so later queries are stub hits instead of misses.
func TestPrefetchKeepsHotNameWarm(t *testing.T) {
	u, p := setupFull(t, dox.DoUDP,
		func(uc *resolver.UniverseConfig) {
			uc.MutateProfile = func(pr *resolver.Profile) {
				pr.ResponseRate = 1
				pr.CacheTTL = 5 * time.Second
			}
		},
		func(c *Config) {
			c.Prefetch = true
			c.PrefetchMinHits = 3
			c.PrefetchLead = time.Second
		})
	u.W.Go(func() {
		// Three queries make the name hot; the third-second one still
		// rides the first answer's TTL.
		for i := 0; i < 3; i++ {
			if _, ok := stubQuery(u, p.Addr(), uint16(i+1), "hot.example", 5*time.Second); !ok {
				t.Error("query failed")
				return
			}
			u.W.Sleep(time.Second)
		}
		// 6s: the first entry expired at ~5s; this miss arms the
		// prefetch chain.
		u.W.Sleep(6*time.Second - u.W.Now())
		stubQuery(u, p.Addr(), 4, "hot.example", 5*time.Second)
		// From here on the name should never expire again: sample well
		// past two more TTL generations.
		u.W.Sleep(18*time.Second - u.W.Now())
		before := p.StubHits
		if _, ok := stubQuery(u, p.Addr(), 5, "hot.example", 5*time.Second); !ok {
			t.Error("late query failed")
			return
		}
		if p.StubHits != before+1 {
			t.Error("late query missed the stub cache despite prefetch")
		}
	})
	u.W.Run()
	if p.Prefetches == 0 {
		t.Error("no prefetches issued for a hot name")
	}
}

// TestRateLimitRefuses checks the token bucket: a burst beyond the
// bucket depth gets REFUSED responses, and the bucket refills on
// virtual time.
func TestRateLimitRefuses(t *testing.T) {
	u, p := setup(t, dox.DoUDP, func(c *Config) {
		c.RateLimitQPS = 1
		c.RateLimitBurst = 2
	})
	refusedSeen := 0
	okSeen := 0
	u.W.Go(func() {
		host := u.Vantages[0].Host
		sock := host.Dial(netem.ProtoUDP, 8)
		defer sock.Close()
		for i := 0; i < 4; i++ {
			q := dnsmsg.NewQuery(uint16(i+1), "burst.example", dnsmsg.TypeA)
			sock.Send(p.Addr(), q.Encode())
		}
		for i := 0; i < 4; i++ {
			d, ok := sock.RecvTimeout(5 * time.Second)
			if !ok {
				break
			}
			resp, err := dnsmsg.Decode(d.Payload)
			if err != nil {
				continue
			}
			if resp.RCode == dnsmsg.RCodeRefused {
				refusedSeen++
			} else {
				okSeen++
			}
		}
		// After 3s the bucket has refilled.
		u.W.Sleep(3 * time.Second)
		q := dnsmsg.NewQuery(9, "later.example", dnsmsg.TypeA)
		sock.Send(p.Addr(), q.Encode())
		if d, ok := sock.RecvTimeout(5 * time.Second); ok {
			if resp, err := dnsmsg.Decode(d.Payload); err == nil && resp.RCode == dnsmsg.RCodeSuccess {
				okSeen++
			}
		}
	})
	u.W.Run()
	if refusedSeen != 2 {
		t.Errorf("refused responses seen: %d, want 2", refusedSeen)
	}
	if p.Refused != 2 {
		t.Errorf("Refused counter = %d, want 2", p.Refused)
	}
	if okSeen != 3 {
		t.Errorf("successful responses: %d, want 3 (2 burst + 1 refilled)", okSeen)
	}
}

// TestResetSessionsKeepsStubCacheMidCampaign covers the documented but
// previously unverified semantics: ResetSessions mid-campaign — with a
// query in flight — tears down upstream sessions only, and the
// populated stub cache keeps answering without touching the upstream.
func TestResetSessionsKeepsStubCacheMidCampaign(t *testing.T) {
	u, p := setup(t, dox.DoQ, func(c *Config) { c.StubCache = true })
	u.W.Go(func() {
		if _, ok := stubQuery(u, p.Addr(), 1, "warm.example", 10*time.Second); !ok {
			t.Error("warming query failed")
			return
		}
		// Put a second name's query in flight, then reset mid-exchange.
		u.W.Go(func() {
			stubQuery(u, p.Addr(), 2, "inflight.example", 3*time.Second)
		})
		u.W.Sleep(10 * time.Millisecond)
		p.ResetSessions()
		u.W.Sleep(5 * time.Second)
		// The warm name must come from the stub cache: no new upstream
		// exchange, no new connection handshake.
		upBefore, hitsBefore := p.UpstreamQueries, p.StubHits
		resp, ok := stubQuery(u, p.Addr(), 3, "warm.example", 10*time.Second)
		if !ok || len(resp.Answers) == 0 {
			t.Error("post-reset query for cached name failed")
			return
		}
		if p.StubHits != hitsBefore+1 {
			t.Errorf("post-reset query missed the stub cache (hits %d -> %d)", hitsBefore, p.StubHits)
		}
		if p.UpstreamQueries != upBefore {
			t.Errorf("post-reset cached query went upstream (%d -> %d)", upBefore, p.UpstreamQueries)
		}
	})
	u.W.Run()
}

// TestCoalescedFanoutSteadyStateAllocs bounds the per-round allocation
// of the coalesced fan-out path in steady state: pooled flights, pooled
// waiter lists and pooled response buffers must keep a 4-waiter round
// from allocating per waiter.
func TestCoalescedFanoutSteadyStateAllocs(t *testing.T) {
	u, p := setup(t, dox.DoUDP, func(c *Config) { c.Coalesce = true })
	const clients = 4
	const rounds = 50
	var perRound float64
	u.W.Go(func() {
		host := u.Vantages[0].Host
		socks := make([]*netem.Socket, clients)
		qs := make([]dnsmsg.Message, clients)
		for i := range socks {
			socks[i] = host.Dial(netem.ProtoUDP, 8)
			qs[i] = dnsmsg.NewQuery(uint16(i+1), "steady.example", dnsmsg.TypeA)
		}
		round := func() {
			for i := range socks {
				socks[i].Send(p.Addr(), qs[i].AppendEncode(socks[i].Pool().Get(512)))
			}
			for i := range socks {
				d, ok := socks[i].RecvTimeout(5 * time.Second)
				if !ok {
					t.Error("fan-out response missing")
					return
				}
				socks[i].Pool().Put(d.Payload)
			}
			u.W.Sleep(50 * time.Millisecond)
		}
		for i := 0; i < 20; i++ {
			round() // warm pools (flights, buffers, sim timer entries)
		}
		var m1, m2 runtime.MemStats
		runtime.ReadMemStats(&m1)
		for i := 0; i < rounds; i++ {
			round()
		}
		runtime.ReadMemStats(&m2)
		perRound = float64(m2.Mallocs-m1.Mallocs) / rounds
	})
	u.W.Run()
	if p.Coalesced == 0 {
		t.Fatal("no queries coalesced; the guard is not exercising the fan-out path")
	}
	t.Logf("coalesced fan-out: %.1f allocs/round (%d clients)", perRound, clients)
	// The round inevitably pays the upstream exchange and client-side
	// decode; the budget guards against per-waiter regressions (each
	// waiter costing encode+send must stay pooled).
	if perRound > 60 {
		t.Errorf("coalesced fan-out allocates %.1f/round; budget 60", perRound)
	}
}
