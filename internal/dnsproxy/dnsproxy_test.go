package dnsproxy

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/netem"
	"repro/internal/resolver"
	"repro/internal/sim"
)

func setup(t *testing.T, upstream dox.Protocol, mut func(*Config)) (*resolver.Universe, *Proxy) {
	t.Helper()
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           21,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
		Loss:           0,
	})
	if err != nil {
		t.Fatal(err)
	}
	vp, res := u.Vantages[0], u.Resolvers[0]
	cfg := Config{
		Upstream: upstream,
		Options: dox.Options{
			Resolver:   res.Addr,
			ServerName: res.Name,
			Rand:       u.Rand,
			Now:        u.W.Now,
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := New(vp.Host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return u, p
}

// stubQuery performs a stub-style lookup through the proxy.
func stubQuery(u *resolver.Universe, proxyAddr netip.AddrPort, id uint16, name string, timeout time.Duration) (*dnsmsg.Message, bool) {
	host := u.Vantages[0].Host
	sock := host.Dial(netem.ProtoUDP, 8)
	defer sock.Close()
	q := dnsmsg.NewQuery(id, name, dnsmsg.TypeA)
	sock.Send(proxyAddr, q.Encode())
	d, ok := sock.RecvTimeout(timeout)
	if !ok {
		return nil, false
	}
	resp, err := dnsmsg.Decode(d.Payload)
	return resp, err == nil
}

func TestForwardsOverEachUpstream(t *testing.T) {
	for _, proto := range dox.Protocols {
		u, p := setup(t, proto, nil)
		var ok bool
		u.W.Go(func() {
			_, ok = stubQuery(u, p.Addr(), 1, "example.org", 10*time.Second)
		})
		u.W.Run()
		if !ok {
			t.Errorf("%v: no response through proxy", proto)
		}
		if p.Queries != 1 {
			t.Errorf("%v: proxy counted %d queries", proto, p.Queries)
		}
	}
}

func TestConnectionReuseAcrossQueries(t *testing.T) {
	u, p := setup(t, dox.DoQ, nil)
	var times [3]time.Duration
	u.W.Go(func() {
		for i := range times {
			start := u.W.Now()
			if _, ok := stubQuery(u, p.Addr(), uint16(i+1), "example.org", 10*time.Second); !ok {
				t.Error("query failed")
				return
			}
			times[i] = u.W.Now() - start
		}
	})
	u.W.Run()
	// First query pays the upstream handshake; later ones reuse the
	// session and should be roughly half as slow (1 RTT vs 2).
	if times[1] >= times[0] || times[2] >= times[0] {
		t.Errorf("no reuse benefit: %v", times)
	}
}

func TestResetSessionsKeepsResumptionState(t *testing.T) {
	u, p := setup(t, dox.DoQ, nil)
	var second *dox.Metrics
	u.W.Go(func() {
		if _, ok := stubQuery(u, p.Addr(), 1, "example.org", 10*time.Second); !ok {
			t.Error("warm query failed")
			return
		}
		p.ResetSessions()
		if _, ok := stubQuery(u, p.Addr(), 2, "example.org", 10*time.Second); !ok {
			t.Error("post-reset query failed")
			return
		}
		second = p.UpstreamMetrics()
	})
	u.W.Run()
	if second == nil {
		t.Fatal("no upstream metrics")
	}
	if !second.UsedResumption {
		t.Error("post-reset upstream session did not resume")
	}
	if !second.UsedToken {
		t.Error("post-reset DoQ session did not reuse the address-validation token")
	}
}

func TestDoTInFlightBugAndFix(t *testing.T) {
	run := func(fixed bool) int {
		u, p := setup(t, dox.DoT, func(c *Config) { c.FixDoTReuse = fixed })
		u.W.Go(func() {
			// Prime the primary connection.
			stubQuery(u, p.Addr(), 1, "seed.example", 10*time.Second)
			// Fire several concurrent queries: with the bug, in-flight
			// detection opens extra connections.
			wg := sim.NewWaitGroup(u.W)
			for i := 0; i < 4; i++ {
				i := i
				wg.Add(1)
				u.W.Go(func() {
					defer wg.Done()
					stubQuery(u, p.Addr(), uint16(10+i), "concurrent.example", 10*time.Second)
				})
			}
			wg.Wait()
		})
		u.W.Run()
		return p.ExtraConnections
	}
	if extra := run(false); extra == 0 {
		t.Error("buggy mode opened no extra connections under concurrency")
	}
	if extra := run(true); extra != 0 {
		t.Errorf("fixed mode opened %d extra connections", extra)
	}
}

func TestUpstreamFailureCountsAsFailure(t *testing.T) {
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           22,
		ResolverCounts: map[geo.Continent]int{geo.EU: 1},
		Loss:           0,
	})
	if err != nil {
		t.Fatal(err)
	}
	vp := u.Vantages[0]
	// Upstream points at an address with no resolver.
	p, err := New(vp.Host, Config{
		Upstream: dox.DoUDP,
		Options: dox.Options{
			Resolver:   netip.MustParseAddr("203.255.255.1"),
			Rand:       u.Rand,
			Now:        u.W.Now,
			UDPTimeout: 200 * time.Millisecond,
			UDPRetries: 0,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ok bool
	u.W.Go(func() {
		_, ok = stubQuery(u, p.Addr(), 1, "x.example", 2*time.Second)
	})
	u.W.Run()
	if ok {
		t.Error("stub got a response despite dead upstream")
	}
	if p.Failures == 0 {
		t.Error("proxy did not count the failure")
	}
}
