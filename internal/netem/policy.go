package netem

import (
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// Policy describes middlebox interference on a directional path: port
// blocking, UDP blackholing, MTU clamping, and active rejection (an
// ICMP-style unreachable for UDP, an injected RST for TCP). The zero
// Policy does nothing; install one with SetPolicy or on a schedule with
// SetPolicySchedule.
//
// A policy is evaluated at send time, before the path's own loss and
// queue models: a middlebox sits on the path, so a datagram it eats
// never contends for the bottleneck. Silent drops are counted in
// Drops.Blocked; active rejections in Drops.Rejected (and the sender
// receives a Reject-marked notification datagram after a full path
// round trip, modelling the middlebox answering from the far network
// edge); clamp drops in Drops.Clamped.
type Policy struct {
	// BlockUDPPorts and BlockTCPPorts drop datagrams to these
	// destination ports.
	BlockUDPPorts []uint16
	BlockTCPPorts []uint16
	// BlockAllUDP blackholes every UDP datagram on the path regardless
	// of port (the "UDP is firewalled" enterprise middlebox).
	BlockAllUDP bool
	// Reject turns blocked-UDP drops from silent blackholes into
	// immediate ICMP-style rejections: the sender's socket receives a
	// Reject-marked datagram and can fail fast instead of timing out.
	Reject bool
	// RSTInject turns blocked-TCP drops into injected RSTs: the sender
	// receives a Reject-marked datagram, which the TCP transport
	// surfaces as a connection reset.
	RSTInject bool
	// ClampMTU silently drops datagrams whose payload exceeds this many
	// bytes (a path-MTU blackhole: no fragmentation, no ICMP). Zero
	// disables the clamp.
	ClampMTU int
}

// Active reports whether the policy interferes with anything.
func (p Policy) Active() bool {
	return len(p.BlockUDPPorts) > 0 || len(p.BlockTCPPorts) > 0 ||
		p.BlockAllUDP || p.ClampMTU > 0
}

// match reports whether the policy blocks the datagram, and if so
// whether the sender is actively notified (reject/RST) rather than
// silently blackholed.
func (p Policy) match(d Datagram) (drop, notify bool) {
	switch d.Proto {
	case ProtoUDP:
		if p.BlockAllUDP || portIn(d.Dst.Port(), p.BlockUDPPorts) {
			return true, p.Reject
		}
	case ProtoTCP:
		if portIn(d.Dst.Port(), p.BlockTCPPorts) {
			return true, p.RSTInject
		}
	}
	return false, false
}

func portIn(port uint16, ports []uint16) bool {
	for _, p := range ports {
		if p == port {
			return true
		}
	}
	return false
}

// PolicyStep is one phase of a time-varying middlebox schedule.
type PolicyStep struct {
	// At is the virtual time this step takes effect.
	At time.Duration
	// Policy is in effect from At until the next step (or forever, for
	// the last step). A zero Policy step models the middlebox being
	// removed.
	Policy Policy
}

// SetPolicy installs a static middlebox policy on the directional path
// from src to dst. A zero Policy removes it.
func (n *Network) SetPolicy(src, dst netip.Addr, p Policy) {
	key := pathKey{src, dst}
	if !p.Active() {
		delete(n.policies, key)
		return
	}
	n.policies[key] = p
}

// SetSymmetricPolicy installs the same policy in both directions.
func (n *Network) SetSymmetricPolicy(a, b netip.Addr, p Policy) {
	n.SetPolicy(a, b, p)
	n.SetPolicy(b, a, p)
}

// SetPolicySchedule installs a time-varying middlebox schedule on the
// directional path from src to dst, with PathStep semantics: from
// steps[i].At onward steps[i].Policy applies, the last step holds
// forever, and before steps[0].At the static SetPolicy (or no) policy
// applies. Steps must be in ascending At order. An empty steps slice
// removes the schedule.
func (n *Network) SetPolicySchedule(src, dst netip.Addr, steps []PolicyStep) {
	key := pathKey{src, dst}
	if len(steps) == 0 {
		delete(n.policySchedules, key)
		return
	}
	cp := append([]PolicyStep(nil), steps...)
	for i := 1; i < len(cp); i++ {
		if cp[i].At < cp[i-1].At {
			panic(fmt.Sprintf("netem: policy schedule steps out of order: step %d at %v after %v", i, cp[i].At, cp[i-1].At))
		}
	}
	n.policySchedules[key] = cp
}

// PolicyAt returns the policy in effect from src to dst at virtual time
// at (the zero Policy when none is installed).
func (n *Network) PolicyAt(src, dst netip.Addr, at time.Duration) Policy {
	key := pathKey{src, dst}
	if steps := n.policySchedules[key]; len(steps) > 0 && at >= steps[0].At {
		i := sort.Search(len(steps), func(i int) bool { return steps[i].At > at })
		return steps[i-1].Policy
	}
	return n.policies[key]
}

// policyDrop applies the policy in effect on key to d at time now. It
// reports whether the datagram was consumed by the middlebox; the
// caller stops processing on true. Callers guard with havePolicies, so
// the campaigns that install no policies never reach the map lookups.
func (n *Network) policyDrop(key pathKey, d Datagram, delay, now time.Duration) bool {
	pol := n.PolicyAt(key.src, key.dst, now)
	if !pol.Active() {
		return false
	}
	if drop, notify := pol.match(d); drop {
		if notify {
			n.Drops.Rejected++
			n.pool.Put(d.Payload)
			// The rejection travels back from the far network edge: one
			// full path round trip, no loss or queueing (determinism:
			// no extra rng draws).
			fl := n.getInflight()
			fl.d = Datagram{Proto: d.Proto, Src: d.Dst, Dst: d.Src, Reject: true}
			fl.loopback = true
			n.World.AfterCall(2*delay, n.deliverFn, fl)
		} else {
			n.Drops.Blocked++
			n.pool.Put(d.Payload)
		}
		return true
	}
	if pol.ClampMTU > 0 && len(d.Payload) > pol.ClampMTU {
		n.Drops.Clamped++
		n.pool.Put(d.Payload)
		return true
	}
	return false
}

// havePolicies reports whether any middlebox policy is installed.
func (n *Network) havePolicies() bool {
	return len(n.policies) > 0 || len(n.policySchedules) > 0
}
