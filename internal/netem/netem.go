// Package netem emulates an Internet of hosts exchanging datagrams over
// paths with configurable propagation delay, jitter, loss, and MTU, plus
// a dynamic link model: per-path bottleneck bandwidth with a bounded
// tail-drop FIFO queue, Gilbert–Elliott two-state burst loss,
// time-varying path schedules, and per-host access links drawn from
// named access-network profiles (see profiles.go).
//
// netem sits directly on top of the sim kernel: sending a datagram
// schedules its delivery at Now()+delay on the destination host's socket
// queue, where delay includes propagation, serialization through every
// bottleneck on the way (path and access links), and queueing behind
// earlier datagrams. Transport protocols (internal/tcpsim,
// internal/quic) and plain UDP applications all run over netem sockets.
//
// Byte accounting follows the paper's convention of counting IP payload
// bytes: each socket is created with a per-datagram header overhead (8 for
// UDP, 20 for the TCP-like transport) which is added to its Tx/Rx
// counters. Counters can be snapshotted to split handshake bytes from
// query/response bytes.
package netem

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"repro/internal/bytepool"
	"repro/internal/sim"
)

// BurstLoss is a Gilbert–Elliott two-state loss model. The chain sits in
// a good or a bad state; each datagram first draws a state transition,
// then a drop with the state's loss probability. Mean burst length is
// 1/PBadGood datagrams. The zero value disables the model.
type BurstLoss struct {
	// PGoodBad is the per-datagram probability of entering the bad state.
	PGoodBad float64
	// PBadGood is the per-datagram probability of leaving the bad state.
	PBadGood float64
	// LossGood is the drop probability in the good state (usually 0).
	LossGood float64
	// LossBad is the drop probability in the bad state.
	LossBad float64
}

// Enabled reports whether the model has a reachable bad state.
func (b BurstLoss) Enabled() bool { return b.PGoodBad > 0 && b.PBadGood > 0 }

// PathParams describes one direction of a network path.
type PathParams struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the independent per-datagram drop probability in [0, 1).
	Loss float64
	// Burst adds Gilbert–Elliott burst loss on top of (or instead of)
	// the independent Loss. Burst state is kept per directional path and
	// survives schedule changes, so a bad burst can straddle a phase
	// boundary exactly like a real fade.
	Burst BurstLoss
	// MTU caps the datagram payload size; larger datagrams are dropped.
	// Zero means 1500.
	MTU int
	// Bandwidth is the bottleneck rate in bytes/second. Zero means
	// infinitely fast (no serialization delay, no queue). A positive
	// value serializes every datagram through a FIFO queue on virtual
	// time: a datagram departs at max(now, link busy-until) + size/rate.
	Bandwidth float64
	// QueueBytes bounds the bottleneck queue: a datagram whose arrival
	// would push the backlog past this many bytes is tail-dropped
	// (counted in Drops.Overflow). Zero means DefaultQueueBytes.
	QueueBytes int
}

// DefaultMTU is used when PathParams.MTU is zero.
const DefaultMTU = 1500

// DefaultQueueBytes is the bottleneck queue bound used when
// PathParams.QueueBytes (or AccessProfile.QueueBytes) is zero: 50
// full-size datagrams, a common router default.
const DefaultQueueBytes = 50 * DefaultMTU

// PathStep is one phase of a time-varying path schedule.
type PathStep struct {
	// At is the virtual time this step takes effect.
	At time.Duration
	// Params are the path parameters in effect from At until the next
	// step (or forever, for the last step).
	Params PathParams
}

// Proto is an IP protocol number; netem keeps separate port spaces per
// protocol, like a real host.
type Proto uint8

// The two transport protocols in use.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// Datagram is a payload in flight between two endpoints.
type Datagram struct {
	Proto    Proto
	Src, Dst netip.AddrPort
	Payload  []byte
	// Reject marks a synthetic middlebox notification (an ICMP-style
	// unreachable for UDP, an injected RST for TCP) rather than a real
	// payload: Payload is nil and byte counters ignore it. Transports
	// surface it as an immediate connection-refused/reset.
	Reject bool
}

// Drops counts dropped datagrams by cause. The split matters for
// diagnostics: a loss-model drop is the network behaving as configured,
// a queue overflow means a bottleneck is saturated, and a no-route drop
// is usually a test bug.
type Drops struct {
	// Loss counts random-loss drops (independent or burst-state).
	Loss int
	// MTU counts datagrams larger than the path MTU.
	MTU int
	// NoRoute counts datagrams to unknown hosts or unbound ports.
	NoRoute int
	// Overflow counts bottleneck-queue tail drops.
	Overflow int
	// Blocked counts silent middlebox-policy drops (port blocks and UDP
	// blackholes without active rejection).
	Blocked int
	// Rejected counts middlebox-policy drops that actively notified the
	// sender (ICMP-style reject, injected RST).
	Rejected int
	// Clamped counts datagrams over a policy's ClampMTU.
	Clamped int
}

// Total sums all causes.
func (d Drops) Total() int {
	return d.Loss + d.MTU + d.NoRoute + d.Overflow + d.Blocked + d.Rejected + d.Clamped
}

// Network is the root object: a set of hosts and the paths between them.
type Network struct {
	World *sim.World

	hosts       map[netip.Addr]*Host
	defaultPath PathParams
	paths       map[pathKey]PathParams
	schedules   map[pathKey][]PathStep
	links       map[pathKey]*linkState
	access      map[netip.Addr]*accessLink
	rng         *rand.Rand

	// Middlebox policies (see policy.go). Both maps empty is the common
	// case: send() skips the policy lookup entirely, so campaigns that
	// install no policies draw exactly the same rng stream as before the
	// policy layer existed.
	policies        map[pathKey]Policy
	policySchedules map[pathKey][]PolicyStep

	// In-flight datagram pool and the two timer callbacks bound once at
	// construction: a datagram's delivery timers then allocate neither a
	// closure nor a per-datagram carrier (sim.AfterCall + free list).
	flFree    *inflight
	arriveFn  func(any)
	deliverFn func(any)

	// pool is the World's tiered buffer free list. Every payload handed
	// to Socket.Send is owned by the network (Send's no-reuse contract
	// has always required that), so drop paths return payloads here and
	// receivers release them after parsing.
	pool bytepool.Pool

	// Delivered counts delivered datagrams; Drops counts dropped ones by
	// cause (see Drops).
	Delivered int
	Drops     Drops

	// Trace, when set, observes every datagram send before the loss and
	// jitter draws. It exists for determinism debugging: diffing the
	// packet traces of two same-seed runs pinpoints the first diverging
	// event. Per-Network (not global) so that concurrent shard Worlds
	// never share a trace sink.
	Trace func(d Datagram, now time.Duration)
}

type pathKey struct{ src, dst netip.Addr }

// linkState is the mutable per-directional-link state: the FIFO clock,
// the datagram backlog bucket, and the Gilbert–Elliott chain state.
//
// busyUntil tracks all occupancy (datagrams plus OccupyDown bulk
// reservations). The tail-drop bound judges only dgBytes — the bytes
// of datagrams in the buffer, drained at link rate since dgAsOf —
// never time spent waiting behind a bulk reservation: a bulk transfer
// delays datagrams (by at most a full queue of serialization time) but
// cannot starve them out of the queue, just as a TCP download's
// in-flight bytes are capped by the same buffer the datagrams share.
// dgDepart is the last datagram's departure, the FIFO floor among
// datagrams.
type linkState struct {
	busyUntil time.Duration
	dgBytes   int
	dgAsOf    time.Duration
	dgDepart  time.Duration
	bad       bool
}

// accessLink is a host's access network: one shared bottleneck per
// direction, traversed by every non-loopback datagram the host sends or
// receives — and occupied by analytic bulk transfers (OccupyDown), so
// web content and DNS datagrams contend for the same link.
type accessLink struct {
	prof     AccessProfile
	up, down linkState
}

// NewNetwork creates an empty network on w. The default path (used when
// no explicit path is configured) has 10ms delay and no loss.
func NewNetwork(w *sim.World) *Network {
	n := &Network{
		World:       w,
		hosts:       make(map[netip.Addr]*Host),
		defaultPath: PathParams{Delay: 10 * time.Millisecond},
		paths:       make(map[pathKey]PathParams),
		schedules:   make(map[pathKey][]PathStep),
		links:       make(map[pathKey]*linkState),
		access:      make(map[netip.Addr]*accessLink),
		rng:         rand.New(rand.NewSource(w.Rand().Int63())),

		policies:        make(map[pathKey]Policy),
		policySchedules: make(map[pathKey][]PolicyStep),
	}
	n.arriveFn = func(a any) { n.arrive(a.(*inflight)) }
	n.deliverFn = func(a any) { n.deliverInflight(a.(*inflight)) }
	return n
}

// inflight carries a datagram between its send-time processing and its
// delivery timer(s). Pooled per Network: Worlds run one task at a time,
// so the free list needs no lock.
type inflight struct {
	d        Datagram
	wire     int
	loopback bool
	next     *inflight
}

func (n *Network) getInflight() *inflight {
	fl := n.flFree
	if fl != nil {
		n.flFree = fl.next
		fl.next = nil
		return fl
	}
	return &inflight{}
}

func (n *Network) putInflight(fl *inflight) {
	fl.d = Datagram{} // drop the payload reference
	fl.next = n.flFree
	n.flFree = fl
}

// Dropped returns the total dropped-datagram count across all causes.
func (n *Network) Dropped() int { return n.Drops.Total() }

// Pool returns the network's buffer pool. Transports lease datagram and
// record buffers here; the pool is single-World and needs no locking.
func (n *Network) Pool() *bytepool.Pool { return &n.pool }

// SetDefaultPath sets the parameters used for host pairs without an
// explicit path.
func (n *Network) SetDefaultPath(p PathParams) { n.defaultPath = p }

// SetPath sets the path parameters for datagrams from src to dst. Paths
// are directional; call twice for a symmetric configuration or use
// SetSymmetricPath.
func (n *Network) SetPath(src, dst netip.Addr, p PathParams) {
	n.paths[pathKey{src, dst}] = p
}

// SetSymmetricPath sets the same parameters in both directions.
func (n *Network) SetSymmetricPath(a, b netip.Addr, p PathParams) {
	n.SetPath(a, b, p)
	n.SetPath(b, a, p)
}

// SetPathSchedule installs a time-varying schedule on the directional
// path from src to dst: from steps[i].At (virtual time) onward the
// path uses steps[i].Params, until the next step takes over; the last
// step holds forever. Before steps[0].At the static SetPath (or
// default) parameters apply. Steps must be in ascending At order. Link
// state — queue backlog and burst-loss state — persists across steps,
// so a path can degrade and recover mid-campaign without resetting its
// bottleneck. An empty steps slice removes the schedule.
func (n *Network) SetPathSchedule(src, dst netip.Addr, steps []PathStep) {
	n.setPathSchedule(pathKey{src, dst}, append([]PathStep(nil), steps...))
}

func (n *Network) setPathSchedule(key pathKey, steps []PathStep) {
	if len(steps) == 0 {
		delete(n.schedules, key)
		return
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].At < steps[i-1].At {
			panic(fmt.Sprintf("netem: schedule steps out of order: step %d at %v after %v", i, steps[i].At, steps[i-1].At))
		}
	}
	n.schedules[key] = steps
}

// SetSymmetricPathSchedule installs the same schedule in both
// directions. The two directions share one backing slice (schedules
// are read-only once installed), so long schedules on many paths don't
// double their memory.
func (n *Network) SetSymmetricPathSchedule(a, b netip.Addr, steps []PathStep) {
	cp := append([]PathStep(nil), steps...)
	n.setPathSchedule(pathKey{a, b}, cp)
	n.setPathSchedule(pathKey{b, a}, cp)
}

// SetAccessLink attaches an access-network profile to a host: every
// non-loopback datagram the host sends traverses the profile's uplink
// (serialization + queue + loss + extra delay) and every datagram it
// receives traverses the downlink. Use AccessProfile{} to detach.
func (n *Network) SetAccessLink(addr netip.Addr, prof AccessProfile) {
	if prof == (AccessProfile{}) {
		delete(n.access, addr)
		return
	}
	n.access[addr] = &accessLink{prof: prof}
}

// AccessLink returns the host's access profile, if one is attached.
func (n *Network) AccessLink(addr netip.Addr) (AccessProfile, bool) {
	al, ok := n.access[addr]
	if !ok {
		return AccessProfile{}, false
	}
	return al.prof, true
}

// DefaultDownloadRate is the analytic bulk-download rate (bytes/second)
// OccupyDown assumes for hosts without an access link: 50 Mbit/s, the
// historical fixed assumption of internal/browser.
const DefaultDownloadRate = 6.25e6

// OccupyDown reserves the host's downlink for a bulk transfer of size
// bytes starting now and returns the time until the transfer completes
// (queueing behind whatever the downlink is already carrying, then
// serializing at the downlink rate). It models an application-layer
// byte stream with its own reliability (an HTTP response over TCP), so
// no loss or queue bound applies — but the reservation advances the
// shared downlink clock, so concurrent transfers and DNS datagrams
// contend for the same bottleneck. Hosts without an access link (or
// with an unshaped downlink) get the analytic DefaultDownloadRate with
// no shared state.
func (n *Network) OccupyDown(addr netip.Addr, size int) time.Duration {
	now := n.World.Now()
	al := n.access[addr]
	if al == nil || al.prof.Down <= 0 {
		return time.Duration(float64(size) / DefaultDownloadRate * float64(time.Second))
	}
	ser := time.Duration(float64(size) / al.prof.Down * float64(time.Second))
	depart := al.down.busyUntil
	if depart < now {
		depart = now
	}
	depart += ser
	al.down.busyUntil = depart
	return depart - now
}

// Path returns the effective parameters from src to dst at the current
// virtual time (honouring any installed schedule).
func (n *Network) Path(src, dst netip.Addr) PathParams {
	return n.PathAt(src, dst, n.World.Now())
}

// PathAt returns the effective parameters from src to dst at virtual
// time at. Schedule lookup is a binary search: send() calls this per
// datagram, and schedules can hold hundreds of steps (E20).
func (n *Network) PathAt(src, dst netip.Addr, at time.Duration) PathParams {
	key := pathKey{src, dst}
	if steps := n.schedules[key]; len(steps) > 0 && at >= steps[0].At {
		i := sort.Search(len(steps), func(i int) bool { return steps[i].At > at })
		return steps[i-1].Params
	}
	if p, ok := n.paths[key]; ok {
		return p
	}
	return n.defaultPath
}

// Host registers (or returns the existing) host with the given address.
func (n *Network) Host(addr netip.Addr) *Host {
	if h, ok := n.hosts[addr]; ok {
		return h
	}
	h := &Host{
		net:           n,
		addr:          addr,
		ports:         make(map[portKey]*Socket),
		nextEphemeral: firstEphemeral,
	}
	n.hosts[addr] = h
	return h
}

// link returns (creating on first use) the mutable state of the
// directional link identified by key.
func (n *Network) link(key pathKey) *linkState {
	ls, ok := n.links[key]
	if !ok {
		ls = &linkState{}
		n.links[key] = ls
	}
	return ls
}

// lossPass draws the loss models against ls and reports whether the
// datagram survives. The burst chain transitions first (state evolves
// whether or not the datagram is dropped), then the state's loss, then
// the independent loss.
func (n *Network) lossPass(ls *linkState, loss float64, burst BurstLoss) bool {
	if burst.Enabled() {
		if ls.bad {
			if n.rng.Float64() < burst.PBadGood {
				ls.bad = false
			}
		} else if n.rng.Float64() < burst.PGoodBad {
			ls.bad = true
		}
		p := burst.LossGood
		if ls.bad {
			p = burst.LossBad
		}
		if p > 0 && n.rng.Float64() < p {
			return false
		}
	}
	if loss > 0 && n.rng.Float64() < loss {
		return false
	}
	return true
}

// serialize pushes size bytes through a bottleneck of rate bytes/second
// with the datagram arriving at the bottleneck at arrive. It returns
// the departure time and whether the datagram fit in the queue: the
// tail-drop bound (queueBytes) judges the datagram-only backlog, while
// bulk OccupyDown reservations add waiting time capped at one full
// queue of serialization (the datagram sits behind at most queueBytes
// of the stream's bytes). rate <= 0 means an unshaped link: depart
// immediately.
func (n *Network) serialize(ls *linkState, rate float64, queueBytes int, size int, arrive time.Duration) (time.Duration, bool) {
	if rate <= 0 {
		return arrive, true
	}
	if queueBytes == 0 {
		queueBytes = DefaultQueueBytes
	}
	// Drain the datagram byte bucket at link rate. Arrivals at one link
	// are monotone in virtual time (same-pair sends are ordered, and
	// downlink legs run off a sorted timer heap).
	if arrive > ls.dgAsOf {
		ls.dgBytes -= int(float64(arrive-ls.dgAsOf) / float64(time.Second) * rate)
		if ls.dgBytes < 0 {
			ls.dgBytes = 0
		}
		ls.dgAsOf = arrive
	}
	if ls.dgBytes+size > queueBytes {
		return 0, false
	}
	ls.dgBytes += size
	// FIFO position: behind everything already admitted, but waiting
	// behind a bulk reservation is capped at one full queue of
	// serialization time; datagrams then drain serially (dgDepart).
	start := arrive
	if ls.busyUntil > start {
		start = min(ls.busyUntil, arrive+time.Duration(float64(queueBytes)/rate*float64(time.Second)))
	}
	if ls.dgDepart > start {
		start = ls.dgDepart
	}
	depart := start + time.Duration(float64(size)/rate*float64(time.Second))
	ls.dgDepart = depart
	if depart > ls.busyUntil {
		ls.busyUntil = depart
	}
	return depart, true
}

// send routes a datagram, applying the path model: loss (burst and
// independent), the bottleneck queue, access links on both ends, then
// propagation delay and jitter. Drops are counted by cause in Drops.
// wire is the datagram's on-the-wire size (payload plus the sending
// socket's per-datagram header overhead), the size the bottlenecks
// serialize — matching the package's byte-accounting convention.
//
// The uplink leg and the path bottleneck are processed at send time:
// both sit at the sender, and all traffic sharing them originates from
// the same host, so send order equals bottleneck-arrival order. The
// downlink leg is deferred to the datagram's arrival at the receiver's
// access link (a second timer): that bottleneck is shared by flows
// with different path delays, and serializing it at send time would
// queue datagrams in send order rather than in the order their bytes
// actually reach the link.
func (n *Network) send(d Datagram, wire int) {
	now := n.World.Now()
	if n.Trace != nil {
		n.Trace(d, now)
	}
	src, dst := d.Src.Addr(), d.Dst.Addr()
	key := pathKey{src, dst}
	p := n.PathAt(src, dst, now)
	if n.havePolicies() && n.policyDrop(key, d, p.Delay, now) {
		return
	}
	mtu := p.MTU
	if mtu == 0 {
		mtu = DefaultMTU
	}
	if len(d.Payload) > mtu {
		n.Drops.MTU++
		n.pool.Put(d.Payload)
		return
	}
	loopback := src == dst

	// Uplink leg of the sender's access network.
	at := now
	if al := n.access[src]; al != nil && !loopback {
		if !n.lossPass(&al.up, al.prof.Loss, al.prof.Burst) {
			n.Drops.Loss++
			n.pool.Put(d.Payload)
			return
		}
		depart, ok := n.serialize(&al.up, al.prof.Up, al.prof.QueueBytes, wire, at)
		if !ok {
			n.Drops.Overflow++
			n.pool.Put(d.Payload)
			return
		}
		at = depart + al.prof.ExtraDelay
	}

	// The path itself: loss models, then the bottleneck queue.
	ls := n.link(key)
	if !n.lossPass(ls, p.Loss, p.Burst) {
		n.Drops.Loss++
		n.pool.Put(d.Payload)
		return
	}
	depart, ok := n.serialize(ls, p.Bandwidth, p.QueueBytes, wire, at)
	if !ok {
		n.Drops.Overflow++
		n.pool.Put(d.Payload)
		return
	}
	at = depart + p.Delay
	if p.Jitter > 0 {
		at += time.Duration(n.rng.Int63n(int64(p.Jitter)))
	}

	fl := n.getInflight()
	fl.d, fl.wire, fl.loopback = d, wire, loopback
	n.World.AfterCall(at-now, n.arriveFn, fl)
}

// arrive processes the downlink leg of the receiver's access network,
// serialized at actual arrival time, then delivers.
func (n *Network) arrive(fl *inflight) {
	if al := n.access[fl.d.Dst.Addr()]; al != nil && !fl.loopback {
		arrive := n.World.Now()
		if !n.lossPass(&al.down, al.prof.Loss, al.prof.Burst) {
			n.Drops.Loss++
			n.pool.Put(fl.d.Payload)
			n.putInflight(fl)
			return
		}
		depart, ok := n.serialize(&al.down, al.prof.Down, al.prof.QueueBytes, fl.wire, arrive)
		if !ok {
			n.Drops.Overflow++
			n.pool.Put(fl.d.Payload)
			n.putInflight(fl)
			return
		}
		n.World.AfterCall(depart+al.prof.ExtraDelay-arrive, n.deliverFn, fl)
		return
	}
	n.deliverInflight(fl)
}

//simlint:hotpath
func (n *Network) deliverInflight(fl *inflight) {
	d := fl.d
	n.putInflight(fl)
	n.deliver(d)
}

// deliver hands a datagram to the destination socket, if any. Ownership
// of the payload transfers to the receiver, which releases it to the
// pool after parsing.
//
//simlint:hotpath
func (n *Network) deliver(d Datagram) {
	host, ok := n.hosts[d.Dst.Addr()]
	if !ok {
		if d.Reject {
			return // a notification to a vanished sender is not a drop
		}
		n.Drops.NoRoute++
		n.pool.Put(d.Payload)
		return
	}
	sock, ok := host.ports[portKey{d.Proto, d.Dst.Port()}]
	if !ok {
		if d.Reject {
			return
		}
		n.Drops.NoRoute++
		n.pool.Put(d.Payload)
		return
	}
	if !d.Reject {
		n.Delivered++
	}
	sock.deliver(d)
}

// The ephemeral port range (RFC 6335).
const (
	firstEphemeral uint16 = 49152
	ephemeralSpan  int    = 65536 - int(firstEphemeral)
)

// Host is a network endpoint with per-protocol port spaces.
type Host struct {
	net           *Network
	addr          netip.Addr
	ports         map[portKey]*Socket
	nextEphemeral uint16
}

type portKey struct {
	proto Proto
	port  uint16
}

// Addr returns the host's address.
func (h *Host) Addr() netip.Addr { return h.addr }

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// World returns the simulation kernel.
func (h *Host) World() *sim.World { return h.net.World }

// Listen binds a socket to the given protocol and port. overhead is the
// per-datagram header size added to byte counters (8 for UDP; 0 for TCP,
// whose padded segment headers carry their own overhead).
func (h *Host) Listen(proto Proto, port uint16, overhead int) (*Socket, error) {
	return h.listen(proto, port, overhead, fmt.Sprintf("%v:%d", h.addr, port))
}

func (h *Host) listen(proto Proto, port uint16, overhead int, name string) (*Socket, error) {
	key := portKey{proto, port}
	if _, ok := h.ports[key]; ok {
		return nil, fmt.Errorf("netem: %d/port %d already bound on %v", proto, port, h.addr)
	}
	s := &Socket{
		host:     h,
		proto:    proto,
		local:    netip.AddrPortFrom(h.addr, port),
		overhead: overhead,
		queue:    sim.NewQueue[Datagram](h.net.World, name),
	}
	h.ports[key] = s
	return s, nil
}

// Dial binds a socket to a fresh ephemeral port. It panics with a
// diagnostic if the entire ephemeral range (49152–65535) is bound — a
// leaked-socket bug that previously spun forever.
func (h *Host) Dial(proto Proto, overhead int) *Socket {
	for tries := 0; tries < ephemeralSpan; tries++ {
		port := h.nextEphemeral
		h.nextEphemeral++
		if h.nextEphemeral == 0 {
			h.nextEphemeral = firstEphemeral
		}
		if _, ok := h.ports[portKey{proto, port}]; !ok {
			// Ephemeral sockets are created per connection on hot paths;
			// a static queue name avoids the per-conn fmt.Sprintf.
			s, _ := h.listen(proto, port, overhead, "ephemeral-sock")
			return s
		}
	}
	panic(fmt.Sprintf("netem: host %v: ephemeral port space exhausted for proto %d (%d sockets bound; leaking sockets?)",
		h.addr, proto, len(h.ports)))
}

// Socket is a bound datagram endpoint.
type Socket struct {
	host     *Host
	proto    Proto
	local    netip.AddrPort
	overhead int
	queue    *sim.Queue[Datagram]
	closed   bool

	// TxBytes and RxBytes count IP payload bytes (datagram payload plus
	// the configured per-datagram header overhead).
	TxBytes, RxBytes int
	// TxDatagrams and RxDatagrams count datagrams.
	TxDatagrams, RxDatagrams int
}

// LocalAddr returns the bound address.
func (s *Socket) LocalAddr() netip.AddrPort { return s.local }

// Pool returns the World-wide buffer pool, for leasing send buffers.
func (s *Socket) Pool() *bytepool.Pool { return &s.host.net.pool }

// Send transmits payload to dst. Ownership of the payload transfers to
// the network (it is not copied, and callers must not reuse the slice):
// the network releases it to the pool on drop, or hands it to the
// receiving socket, whose reader releases it after parsing.
//
//simlint:hotpath
func (s *Socket) Send(dst netip.AddrPort, payload []byte) {
	if s.closed {
		s.host.net.pool.Put(payload)
		return
	}
	s.TxBytes += len(payload) + s.overhead
	s.TxDatagrams++
	s.host.net.send(Datagram{Proto: s.proto, Src: s.local, Dst: dst, Payload: payload}, len(payload)+s.overhead)
}

//simlint:hotpath
func (s *Socket) deliver(d Datagram) {
	if s.closed {
		s.host.net.pool.Put(d.Payload)
		return
	}
	if !d.Reject {
		s.RxBytes += len(d.Payload) + s.overhead
		s.RxDatagrams++
	}
	s.queue.Push(d)
}

// Recv blocks until a datagram arrives. ok is false once the socket is
// closed and drained.
func (s *Socket) Recv() (Datagram, bool) { return s.queue.Pop() }

// RecvTimeout is Recv with a virtual-time deadline.
func (s *Socket) RecvTimeout(d time.Duration) (Datagram, bool) {
	return s.queue.PopTimeout(d)
}

// Close unbinds the socket and wakes blocked receivers.
func (s *Socket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.host.ports, portKey{s.proto, s.local.Port()})
	s.queue.Close()
}

// Snapshot captures the current byte counters, for splitting measurement
// phases (e.g. handshake vs. query bytes).
func (s *Socket) Snapshot() (tx, rx int) { return s.TxBytes, s.RxBytes }
