// Package netem emulates an Internet of hosts exchanging datagrams over
// paths with configurable propagation delay, jitter, loss, and MTU.
//
// netem sits directly on top of the sim kernel: sending a datagram
// schedules its delivery at Now()+delay on the destination host's socket
// queue. Transport protocols (internal/tcpsim, internal/quic) and plain
// UDP applications all run over netem sockets.
//
// Byte accounting follows the paper's convention of counting IP payload
// bytes: each socket is created with a per-datagram header overhead (8 for
// UDP, 20 for the TCP-like transport) which is added to its Tx/Rx
// counters. Counters can be snapshotted to split handshake bytes from
// query/response bytes.
package netem

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/sim"
)

// PathParams describes one direction of a network path.
type PathParams struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the independent per-datagram drop probability in [0, 1).
	Loss float64
	// MTU caps the datagram payload size; larger datagrams are dropped.
	// Zero means 1500.
	MTU int
}

// DefaultMTU is used when PathParams.MTU is zero.
const DefaultMTU = 1500

// Proto is an IP protocol number; netem keeps separate port spaces per
// protocol, like a real host.
type Proto uint8

// The two transport protocols in use.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// Datagram is a payload in flight between two endpoints.
type Datagram struct {
	Proto    Proto
	Src, Dst netip.AddrPort
	Payload  []byte
}

// Network is the root object: a set of hosts and the paths between them.
type Network struct {
	World *sim.World

	hosts       map[netip.Addr]*Host
	defaultPath PathParams
	paths       map[pathKey]PathParams
	rng         *rand.Rand

	// Delivered and Dropped count datagrams for diagnostics.
	Delivered, Dropped int

	// Trace, when set, observes every datagram send before the loss and
	// jitter draws. It exists for determinism debugging: diffing the
	// packet traces of two same-seed runs pinpoints the first diverging
	// event. Per-Network (not global) so that concurrent shard Worlds
	// never share a trace sink.
	Trace func(d Datagram, now time.Duration)
}

type pathKey struct{ src, dst netip.Addr }

// NewNetwork creates an empty network on w. The default path (used when
// no explicit path is configured) has 10ms delay and no loss.
func NewNetwork(w *sim.World) *Network {
	return &Network{
		World:       w,
		hosts:       make(map[netip.Addr]*Host),
		defaultPath: PathParams{Delay: 10 * time.Millisecond},
		paths:       make(map[pathKey]PathParams),
		rng:         rand.New(rand.NewSource(w.Rand().Int63())),
	}
}

// SetDefaultPath sets the parameters used for host pairs without an
// explicit path.
func (n *Network) SetDefaultPath(p PathParams) { n.defaultPath = p }

// SetPath sets the path parameters for datagrams from src to dst. Paths
// are directional; call twice for a symmetric configuration or use
// SetSymmetricPath.
func (n *Network) SetPath(src, dst netip.Addr, p PathParams) {
	n.paths[pathKey{src, dst}] = p
}

// SetSymmetricPath sets the same parameters in both directions.
func (n *Network) SetSymmetricPath(a, b netip.Addr, p PathParams) {
	n.SetPath(a, b, p)
	n.SetPath(b, a, p)
}

// Path returns the effective parameters from src to dst.
func (n *Network) Path(src, dst netip.Addr) PathParams {
	if p, ok := n.paths[pathKey{src, dst}]; ok {
		return p
	}
	return n.defaultPath
}

// Host registers (or returns the existing) host with the given address.
func (n *Network) Host(addr netip.Addr) *Host {
	if h, ok := n.hosts[addr]; ok {
		return h
	}
	h := &Host{
		net:           n,
		addr:          addr,
		ports:         make(map[portKey]*Socket),
		nextEphemeral: 49152,
	}
	n.hosts[addr] = h
	return h
}

// send routes a datagram, applying the path model. Unknown destinations
// and lossy drops are counted in Dropped.
func (n *Network) send(d Datagram) {
	if n.Trace != nil {
		n.Trace(d, n.World.Now())
	}
	p := n.Path(d.Src.Addr(), d.Dst.Addr())
	mtu := p.MTU
	if mtu == 0 {
		mtu = DefaultMTU
	}
	if len(d.Payload) > mtu {
		n.Dropped++
		return
	}
	if p.Loss > 0 && n.rng.Float64() < p.Loss {
		n.Dropped++
		return
	}
	delay := p.Delay
	if p.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(p.Jitter)))
	}
	n.World.AfterFunc(delay, func() {
		host, ok := n.hosts[d.Dst.Addr()]
		if !ok {
			n.Dropped++
			return
		}
		sock, ok := host.ports[portKey{d.Proto, d.Dst.Port()}]
		if !ok {
			n.Dropped++
			return
		}
		n.Delivered++
		sock.deliver(d)
	})
}

// Host is a network endpoint with per-protocol port spaces.
type Host struct {
	net           *Network
	addr          netip.Addr
	ports         map[portKey]*Socket
	nextEphemeral uint16
}

type portKey struct {
	proto Proto
	port  uint16
}

// Addr returns the host's address.
func (h *Host) Addr() netip.Addr { return h.addr }

// Network returns the network the host is attached to.
func (h *Host) Network() *Network { return h.net }

// World returns the simulation kernel.
func (h *Host) World() *sim.World { return h.net.World }

// Listen binds a socket to the given protocol and port. overhead is the
// per-datagram header size added to byte counters (8 for UDP; 0 for TCP,
// whose padded segment headers carry their own overhead).
func (h *Host) Listen(proto Proto, port uint16, overhead int) (*Socket, error) {
	key := portKey{proto, port}
	if _, ok := h.ports[key]; ok {
		return nil, fmt.Errorf("netem: %d/port %d already bound on %v", proto, port, h.addr)
	}
	s := &Socket{
		host:     h,
		proto:    proto,
		local:    netip.AddrPortFrom(h.addr, port),
		overhead: overhead,
		queue:    sim.NewQueue[Datagram](h.net.World, fmt.Sprintf("%v:%d", h.addr, port)),
	}
	h.ports[key] = s
	return s, nil
}

// Dial binds a socket to a fresh ephemeral port.
func (h *Host) Dial(proto Proto, overhead int) *Socket {
	for {
		port := h.nextEphemeral
		h.nextEphemeral++
		if h.nextEphemeral == 0 {
			h.nextEphemeral = 49152
		}
		if _, ok := h.ports[portKey{proto, port}]; !ok {
			s, _ := h.Listen(proto, port, overhead)
			return s
		}
	}
}

// Socket is a bound datagram endpoint.
type Socket struct {
	host     *Host
	proto    Proto
	local    netip.AddrPort
	overhead int
	queue    *sim.Queue[Datagram]
	closed   bool

	// TxBytes and RxBytes count IP payload bytes (datagram payload plus
	// the configured per-datagram header overhead).
	TxBytes, RxBytes int
	// TxDatagrams and RxDatagrams count datagrams.
	TxDatagrams, RxDatagrams int
}

// LocalAddr returns the bound address.
func (s *Socket) LocalAddr() netip.AddrPort { return s.local }

// Send transmits payload to dst. The payload is not copied; callers must
// not reuse the slice.
func (s *Socket) Send(dst netip.AddrPort, payload []byte) {
	if s.closed {
		return
	}
	s.TxBytes += len(payload) + s.overhead
	s.TxDatagrams++
	s.host.net.send(Datagram{Proto: s.proto, Src: s.local, Dst: dst, Payload: payload})
}

func (s *Socket) deliver(d Datagram) {
	if s.closed {
		return
	}
	s.RxBytes += len(d.Payload) + s.overhead
	s.RxDatagrams++
	s.queue.Push(d)
}

// Recv blocks until a datagram arrives. ok is false once the socket is
// closed and drained.
func (s *Socket) Recv() (Datagram, bool) { return s.queue.Pop() }

// RecvTimeout is Recv with a virtual-time deadline.
func (s *Socket) RecvTimeout(d time.Duration) (Datagram, bool) {
	return s.queue.PopTimeout(d)
}

// Close unbinds the socket and wakes blocked receivers.
func (s *Socket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.host.ports, portKey{s.proto, s.local.Port()})
	s.queue.Close()
}

// Snapshot captures the current byte counters, for splitting measurement
// phases (e.g. handshake vs. query bytes).
func (s *Socket) Snapshot() (tx, rx int) { return s.TxBytes, s.RxBytes }
