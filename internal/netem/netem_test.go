package netem

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/sim"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestDatagramDeliveryWithDelay(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetSymmetricPath(a.Addr(), b.Addr(), PathParams{Delay: 25 * time.Millisecond})

	srv, err := b.Listen(ProtoUDP, 53, 8)
	if err != nil {
		t.Fatal(err)
	}
	var rtt time.Duration
	w.Go(func() {
		d, ok := srv.Recv()
		if !ok {
			t.Error("server socket closed")
			return
		}
		srv.Send(d.Src, []byte("pong"))
	})
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		start := w.Now()
		c.Send(srv.LocalAddr(), []byte("ping"))
		if _, ok := c.Recv(); !ok {
			t.Error("client socket closed")
			return
		}
		rtt = w.Now() - start
	})
	w.Run()
	if rtt != 50*time.Millisecond {
		t.Errorf("rtt = %v, want 50ms", rtt)
	}
}

func TestByteAccountingIncludesOverhead(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		c.Send(srv.LocalAddr(), make([]byte, 100))
		if c.TxBytes != 108 {
			t.Errorf("TxBytes = %d, want 108", c.TxBytes)
		}
	})
	w.Run()
	if srv.RxBytes != 108 {
		t.Errorf("RxBytes = %d, want 108", srv.RxBytes)
	}
}

func TestLossDropsDatagrams(t *testing.T) {
	w := sim.NewWorld(7)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: time.Millisecond, Loss: 0.5})
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	const total = 1000
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		for i := 0; i < total; i++ {
			c.Send(srv.LocalAddr(), []byte("x"))
		}
	})
	w.Run()
	got := srv.RxDatagrams
	if got < 400 || got > 600 {
		t.Errorf("delivered %d of %d with 50%% loss, want ~500", got, total)
	}
	if n.Dropped()+n.Delivered != total {
		t.Errorf("dropped %d + delivered %d != %d", n.Dropped(), n.Delivered, total)
	}
	if n.Drops.Loss != n.Dropped() {
		t.Errorf("Drops.Loss = %d, want all %d drops attributed to loss", n.Drops.Loss, n.Dropped())
	}
}

func TestMTUDrop(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		c.Send(srv.LocalAddr(), make([]byte, DefaultMTU+1))
		c.Send(srv.LocalAddr(), make([]byte, DefaultMTU))
	})
	w.Run()
	if srv.RxDatagrams != 1 {
		t.Errorf("RxDatagrams = %d, want 1 (oversized dropped)", srv.RxDatagrams)
	}
	if n.Drops.MTU != 1 {
		t.Errorf("Drops.MTU = %d, want 1", n.Drops.MTU)
	}
}

func TestUnboundPortDrops(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	n.Host(addr("10.0.0.2"))
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		c.Send(netip.AddrPortFrom(addr("10.0.0.2"), 9), []byte("x"))
		c.Send(netip.AddrPortFrom(addr("10.0.0.3"), 9), []byte("y")) // unknown host
	})
	w.Run()
	if n.Drops.NoRoute != 2 {
		t.Errorf("Drops.NoRoute = %d, want 2", n.Drops.NoRoute)
	}
	if n.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", n.Dropped())
	}
}

func TestRecvTimeout(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	var elapsed time.Duration
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		start := w.Now()
		_, ok := c.RecvTimeout(3 * time.Second)
		if ok {
			t.Error("RecvTimeout returned a datagram")
		}
		elapsed = w.Now() - start
	})
	w.Run()
	if elapsed != 3*time.Second {
		t.Errorf("elapsed = %v, want 3s", elapsed)
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		s := a.Dial(ProtoUDP, 8)
		p := s.LocalAddr().Port()
		if seen[p] {
			t.Fatalf("duplicate ephemeral port %d", p)
		}
		seen[p] = true
	}
}

func TestDoubleListenFails(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	if _, err := a.Listen(ProtoUDP, 53, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Listen(ProtoUDP, 53, 8); err == nil {
		t.Error("second Listen on same port succeeded")
	}
}

func TestCloseUnbinds(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	s, _ := a.Listen(ProtoUDP, 53, 8)
	s.Close()
	if _, err := a.Listen(ProtoUDP, 53, 8); err != nil {
		t.Errorf("rebind after close failed: %v", err)
	}
}

// TestPooledDatagramPathZeroAlloc is the pooled byte path's regression
// guard: a steady-state UDP echo whose buffers are leased from and
// returned to the network's byte pool must not allocate per datagram
// once every pool (buffers, inflight carriers, timer entries, queue
// rings) is warm.
func TestPooledDatagramPathZeroAlloc(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetSymmetricPath(a.Addr(), b.Addr(), PathParams{Delay: 200 * time.Microsecond})

	srv, err := b.Listen(ProtoUDP, 53, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.Go(func() {
		for {
			d, ok := srv.Recv()
			if !ok {
				return
			}
			reply := append(srv.Pool().Get(len(d.Payload)), d.Payload...)
			srv.Pool().Put(d.Payload)
			srv.Send(d.Src, reply)
		}
	})
	payload := []byte("0123456789abcdef0123456789abcdef")
	cli := a.Dial(ProtoUDP, 8)
	w.Go(func() {
		for {
			cli.Send(srv.LocalAddr(), append(cli.Pool().Get(len(payload)), payload...))
			d, ok := cli.Recv()
			if !ok {
				return
			}
			cli.Pool().Put(d.Payload)
			w.Sleep(time.Millisecond)
		}
	})
	w.RunFor(50 * time.Millisecond) // warm every pool
	allocs := testing.AllocsPerRun(10, func() {
		w.RunFor(20 * time.Millisecond) // ~20 full round trips
	})
	if allocs != 0 {
		t.Errorf("pooled datagram echo allocated %v objects per 20ms slice, want 0", allocs)
	}
}
