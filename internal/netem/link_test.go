package netem

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestBandwidthSerializationFIFO checks the bottleneck queue's virtual
// timing: a 1000-byte datagram over a 1 MB/s link with 10ms propagation
// arrives after 11ms, and a second one sent at the same instant queues
// behind it, arriving exactly one serialization time later.
func TestBandwidthSerializationFIFO(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: 10 * time.Millisecond, Bandwidth: 1e6})
	srv, _ := b.Listen(ProtoUDP, 53, 0)

	var arrivals []time.Duration
	var payloads []string
	w.Go(func() {
		c := a.Dial(ProtoUDP, 0)
		c.Send(srv.LocalAddr(), []byte(strings.Repeat("a", 1000)))
		c.Send(srv.LocalAddr(), []byte(strings.Repeat("b", 1000)))
	})
	w.Go(func() {
		for i := 0; i < 2; i++ {
			d, ok := srv.Recv()
			if !ok {
				t.Error("socket closed early")
				return
			}
			arrivals = append(arrivals, w.Now())
			payloads = append(payloads, string(d.Payload[:1]))
		}
	})
	w.Run()
	want := []time.Duration{11 * time.Millisecond, 12 * time.Millisecond}
	if !reflect.DeepEqual(arrivals, want) {
		t.Errorf("arrivals = %v, want %v", arrivals, want)
	}
	if !reflect.DeepEqual(payloads, []string{"a", "b"}) {
		t.Errorf("FIFO violated: order %v", payloads)
	}
}

// TestQueueOverflowTailDrop saturates a bottleneck with more bytes than
// its queue holds and checks the excess is tail-dropped and counted.
func TestQueueOverflowTailDrop(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{
		Delay: time.Millisecond, Bandwidth: 1e6, QueueBytes: 3000,
	})
	srv, _ := b.Listen(ProtoUDP, 53, 0)
	const total = 10
	w.Go(func() {
		c := a.Dial(ProtoUDP, 0)
		for i := 0; i < total; i++ {
			c.Send(srv.LocalAddr(), make([]byte, 1000))
		}
	})
	w.Run()
	if srv.RxDatagrams != 3 {
		t.Errorf("delivered %d datagrams through a 3000B queue, want 3", srv.RxDatagrams)
	}
	if n.Drops.Overflow != total-3 {
		t.Errorf("Drops.Overflow = %d, want %d", n.Drops.Overflow, total-3)
	}
	if n.Drops.Loss != 0 {
		t.Errorf("Drops.Loss = %d, want 0 (no loss configured)", n.Drops.Loss)
	}
}

// TestBurstLossIsBursty checks the Gilbert–Elliott chain produces
// correlated loss: with LossBad=1 and mean bad-state dwell of 5
// datagrams, dropped datagrams must come in runs far longer than
// independent loss at the same average rate would produce.
func TestBurstLossIsBursty(t *testing.T) {
	w := sim.NewWorld(11)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{
		Delay: time.Microsecond,
		Burst: BurstLoss{PGoodBad: 0.05, PBadGood: 0.2, LossBad: 1},
	})
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	const total = 5000
	received := make([]bool, total)
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		for i := 0; i < total; i++ {
			c.Send(srv.LocalAddr(), []byte(fmt.Sprintf("%d", i)))
			w.Sleep(time.Microsecond)
		}
	})
	w.Go(func() {
		for {
			d, ok := srv.Recv()
			if !ok {
				return
			}
			var idx int
			fmt.Sscanf(string(d.Payload), "%d", &idx)
			received[idx] = true
		}
	})
	w.RunFor(time.Second)
	srv.Close()
	w.Run()

	dropped, runs, inRun := 0, 0, false
	for _, ok := range received {
		if !ok {
			dropped++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if dropped == 0 || dropped == total {
		t.Fatalf("dropped %d of %d, want partial loss", dropped, total)
	}
	meanRun := float64(dropped) / float64(runs)
	// Mean bad dwell is 1/0.2 = 5 datagrams; independent loss would give
	// mean runs barely above 1.
	if meanRun < 2.5 {
		t.Errorf("mean loss-run length %.2f (dropped %d in %d runs), want >= 2.5 (bursty)", meanRun, dropped, runs)
	}
}

// TestPathScheduleDegradeRecover drives a path through a
// clean -> blackout -> clean schedule and checks each phase behaves as
// configured at the right virtual times.
func TestPathScheduleDegradeRecover(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	base := PathParams{Delay: 10 * time.Millisecond}
	n.SetPath(a.Addr(), b.Addr(), base)
	n.SetPathSchedule(a.Addr(), b.Addr(), []PathStep{
		{At: 0, Params: base},
		{At: time.Second, Params: PathParams{Delay: 10 * time.Millisecond, Loss: 1}},
		{At: 2 * time.Second, Params: base},
	})
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		c.Send(srv.LocalAddr(), []byte("clean"))
		w.Sleep(1500 * time.Millisecond)
		c.Send(srv.LocalAddr(), []byte("blackout"))
		w.Sleep(time.Second)
		c.Send(srv.LocalAddr(), []byte("recovered"))
	})
	var got []string
	w.Go(func() {
		for {
			d, ok := srv.Recv()
			if !ok {
				return
			}
			got = append(got, string(d.Payload))
		}
	})
	w.RunFor(5 * time.Second)
	srv.Close()
	w.Run()
	if want := []string{"clean", "recovered"}; !reflect.DeepEqual(got, want) {
		t.Errorf("delivered %v, want %v (blackout phase must drop)", got, want)
	}
	if n.Drops.Loss != 1 {
		t.Errorf("Drops.Loss = %d, want 1", n.Drops.Loss)
	}
	if got := n.PathAt(a.Addr(), b.Addr(), 1500*time.Millisecond).Loss; got != 1 {
		t.Errorf("PathAt(1.5s).Loss = %v, want 1", got)
	}
	if got := n.PathAt(a.Addr(), b.Addr(), 2500*time.Millisecond).Loss; got != 0 {
		t.Errorf("PathAt(2.5s).Loss = %v, want 0", got)
	}
}

// TestJitterReorderDeterministic guards the link model against
// wall-clock or map-order leaks: two same-seed runs over a jittery path
// must deliver datagrams in the identical (reordered) order.
func TestJitterReorderDeterministic(t *testing.T) {
	run := func() []string {
		w := sim.NewWorld(42)
		n := NewNetwork(w)
		a := n.Host(addr("10.0.0.1"))
		b := n.Host(addr("10.0.0.2"))
		n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: 5 * time.Millisecond, Jitter: 50 * time.Millisecond})
		srv, _ := b.Listen(ProtoUDP, 53, 8)
		var order []string
		w.Go(func() {
			c := a.Dial(ProtoUDP, 8)
			for i := 0; i < 50; i++ {
				c.Send(srv.LocalAddr(), []byte(fmt.Sprintf("%02d", i)))
				w.Sleep(time.Millisecond)
			}
		})
		w.Go(func() {
			for {
				d, ok := srv.Recv()
				if !ok {
					return
				}
				order = append(order, string(d.Payload))
			}
		})
		w.RunFor(time.Second)
		srv.Close()
		w.Run()
		return order
	}
	first := run()
	if len(first) != 50 {
		t.Fatalf("delivered %d of 50", len(first))
	}
	sorted := true
	for i := 1; i < len(first); i++ {
		if first[i] < first[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("jitter produced no reordering; test is vacuous, increase jitter")
	}
	for run2 := 0; run2 < 2; run2++ {
		if got := run(); !reflect.DeepEqual(first, got) {
			t.Fatalf("same-seed runs delivered different orders:\n%v\n%v", first, got)
		}
	}
}

// TestAccessLinkShapesDatagrams checks the per-host access link: extra
// delay and downlink serialization apply to datagrams toward the host,
// and loopback traffic (the local DNS proxy) is exempt.
func TestAccessLinkShapesDatagrams(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: 10 * time.Millisecond})
	n.SetPath(b.Addr(), b.Addr(), PathParams{Delay: 50 * time.Microsecond})
	n.SetAccessLink(b.Addr(), AccessProfile{
		Name: "test", Down: 1e6, Up: 1e6, ExtraDelay: 5 * time.Millisecond,
	})
	srv, _ := b.Listen(ProtoUDP, 53, 0)
	loop, _ := b.Listen(ProtoUDP, 54, 0)
	var remoteAt, loopAt time.Duration
	w.Go(func() {
		c := a.Dial(ProtoUDP, 0)
		c.Send(srv.LocalAddr(), make([]byte, 1000))
	})
	w.Go(func() {
		c := b.Dial(ProtoUDP, 0)
		c.Send(loop.LocalAddr(), make([]byte, 1000))
	})
	w.Go(func() {
		if _, ok := srv.Recv(); ok {
			remoteAt = w.Now()
		}
	})
	w.Go(func() {
		if _, ok := loop.Recv(); ok {
			loopAt = w.Now()
		}
	})
	w.Run()
	// 10ms propagation + 1ms serialization at 1 MB/s + 5ms access delay.
	if want := 16 * time.Millisecond; remoteAt != want {
		t.Errorf("remote arrival at %v, want %v", remoteAt, want)
	}
	// Loopback skips the access link entirely.
	if want := 50 * time.Microsecond; loopAt != want {
		t.Errorf("loopback arrival at %v, want %v (access must not apply)", loopAt, want)
	}
}

// TestOccupyDownSharesLink checks that analytic bulk transfers reserve
// the shared downlink: two back-to-back transfers serialize, and a
// datagram sent during the transfer queues behind it.
func TestOccupyDownSharesLink(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	b := n.Host(addr("10.0.0.2"))
	n.SetAccessLink(b.Addr(), AccessProfile{Name: "test", Down: 1e6})

	if got, want := n.OccupyDown(b.Addr(), 1e6), time.Second; got != want {
		t.Errorf("first transfer = %v, want %v", got, want)
	}
	if got, want := n.OccupyDown(b.Addr(), 1e6), 2*time.Second; got != want {
		t.Errorf("second transfer = %v, want %v (queued behind first)", got, want)
	}
	// A host without an access link falls back to the analytic default
	// with no shared state.
	c := n.Host(addr("10.0.0.3"))
	want := time.Duration(1e6 / DefaultDownloadRate * float64(time.Second))
	for i := 0; i < 2; i++ {
		if got := n.OccupyDown(c.Addr(), 1e6); got != want {
			t.Errorf("unshaped transfer %d = %v, want %v", i, got, want)
		}
	}
}

// TestSerializationCountsOverhead checks that the bottlenecks
// serialize the wire size (payload plus the socket's per-datagram
// header overhead), matching the package's byte-accounting convention:
// a 992-byte payload on an overhead-8 socket is 1000 wire bytes, 1ms
// at 1 MB/s.
func TestSerializationCountsOverhead(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: 10 * time.Millisecond, Bandwidth: 1e6})
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	var at time.Duration
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		c.Send(srv.LocalAddr(), make([]byte, 992))
	})
	w.Go(func() {
		if _, ok := srv.Recv(); ok {
			at = w.Now()
		}
	})
	w.Run()
	if want := 11 * time.Millisecond; at != want {
		t.Errorf("arrival at %v, want %v (992B payload + 8B overhead at 1 MB/s)", at, want)
	}
}

// TestBulkTransferDelaysButDoesNotStarveDatagrams checks the
// bulk-vs-datagram queue semantics: a long OccupyDown reservation
// delays an interleaved datagram by at most one full queue of
// serialization time — it must NOT tail-drop it, because a real
// bounded buffer holds at most QueueBytes of the stream's bytes at
// once.
func TestBulkTransferDelaysButDoesNotStarveDatagrams(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: 10 * time.Millisecond})
	n.SetAccessLink(b.Addr(), AccessProfile{Name: "test", Down: 1e6, QueueBytes: 75000})
	srv, _ := b.Listen(ProtoUDP, 53, 0)
	var arrivals []time.Duration
	w.Go(func() {
		// A 5-second bulk reservation on the downlink...
		if got := n.OccupyDown(b.Addr(), 5e6); got != 5*time.Second {
			t.Errorf("bulk transfer = %v, want 5s", got)
		}
		// ...must not starve concurrent datagrams — including a second
		// one inside the same bulk window, whose (bulk-induced) waiting
		// must not be mistaken for datagram backlog.
		c := a.Dial(ProtoUDP, 0)
		c.Send(srv.LocalAddr(), make([]byte, 1000))
		w.Sleep(time.Millisecond)
		c.Send(srv.LocalAddr(), make([]byte, 1000))
	})
	w.Go(func() {
		for i := 0; i < 2; i++ {
			if _, ok := srv.Recv(); ok {
				arrivals = append(arrivals, w.Now())
			}
		}
	})
	w.Run()
	if n.Drops.Overflow != 0 {
		t.Fatalf("Drops.Overflow = %d; bulk reservation starved a datagram", n.Drops.Overflow)
	}
	// First: 10ms path + 75ms capped bulk wait (75000B queue at 1 MB/s)
	// + 1ms serialization; second queues right behind it.
	want := []time.Duration{86 * time.Millisecond, 87 * time.Millisecond}
	if !reflect.DeepEqual(arrivals, want) {
		t.Errorf("arrivals %v, want %v", arrivals, want)
	}
}

// TestDownlinkServesInArrivalOrder checks the shared downlink
// serializes datagrams in the order their bytes reach the link, not in
// send order: a datagram sent later over a much shorter path must not
// queue behind (or be dropped by) one still in flight on a long path.
func TestDownlinkServesInArrivalOrder(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	far := n.Host(addr("10.0.0.1"))
	near := n.Host(addr("10.0.0.2"))
	b := n.Host(addr("10.0.0.3"))
	n.SetPath(far.Addr(), b.Addr(), PathParams{Delay: 150 * time.Millisecond})
	n.SetPath(near.Addr(), b.Addr(), PathParams{Delay: 5 * time.Millisecond})
	n.SetAccessLink(b.Addr(), AccessProfile{Name: "test", Down: 1e6})
	srv, _ := b.Listen(ProtoUDP, 53, 0)
	var order []string
	var arrivals []time.Duration
	w.Go(func() {
		c := far.Dial(ProtoUDP, 0)
		c.Send(srv.LocalAddr(), append([]byte("far"), make([]byte, 997)...))
	})
	w.Go(func() {
		c := near.Dial(ProtoUDP, 0)
		c.Send(srv.LocalAddr(), append([]byte("near"), make([]byte, 996)...))
	})
	w.Go(func() {
		for i := 0; i < 2; i++ {
			d, ok := srv.Recv()
			if !ok {
				return
			}
			order = append(order, string(d.Payload[:3]))
			arrivals = append(arrivals, w.Now())
		}
	})
	w.Run()
	if len(order) != 2 || order[0] != "nea" {
		t.Fatalf("delivery order %v, want the near datagram first", order)
	}
	// Near: 5ms path + 1ms serialization; far: 150ms + 1ms — the far
	// datagram must not impose a phantom 150ms queue on the near one.
	if arrivals[0] != 6*time.Millisecond || arrivals[1] != 151*time.Millisecond {
		t.Errorf("arrivals %v, want [6ms 151ms]", arrivals)
	}
}

// TestDialExhaustionFailsLoudly binds the full ephemeral range and
// checks the next Dial panics with a diagnostic instead of spinning
// forever (the regression this guards against).
func TestDialExhaustionFailsLoudly(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	h := n.Host(addr("10.0.0.1"))
	for i := 0; i < ephemeralSpan; i++ {
		h.Dial(ProtoUDP, 8)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Dial on an exhausted port space did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "ephemeral port space exhausted") {
			t.Fatalf("panic message %q lacks diagnostic", msg)
		}
	}()
	h.Dial(ProtoUDP, 8)
}

// TestProfilesWellFormed sanity-checks the named access profiles.
func TestProfilesWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Profiles() {
		if p.Name == "" || names[p.Name] {
			t.Errorf("profile %+v: empty or duplicate name", p)
		}
		names[p.Name] = true
		got, err := ProfileByName(p.Name)
		if err != nil || got != p {
			t.Errorf("ProfileByName(%q) = %+v, %v", p.Name, got, err)
		}
	}
	for _, want := range []string{"fiber", "cable", "4g", "3g", "satellite"} {
		if !names[want] {
			t.Errorf("missing profile %q", want)
		}
	}
	if _, err := ProfileByName("dialup"); err == nil {
		t.Error("ProfileByName(dialup) succeeded")
	}
}
