package netem

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestPolicyBlocksUDPPortSilently installs a UDP/853 block and checks
// the datagram vanishes: counted in Drops.Blocked, nothing delivered,
// no notification back to the sender.
func TestPolicyBlocksUDPPortSilently(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: 10 * time.Millisecond})
	n.SetPolicy(a.Addr(), b.Addr(), Policy{BlockUDPPorts: []uint16{853}})
	doq, _ := b.Listen(ProtoUDP, 853, 8)
	dns, _ := b.Listen(ProtoUDP, 53, 8)
	var c *Socket
	w.Go(func() {
		c = a.Dial(ProtoUDP, 8)
		c.Send(netip.AddrPortFrom(b.Addr(), 853), []byte("blocked"))
		c.Send(netip.AddrPortFrom(b.Addr(), 53), []byte("allowed"))
	})
	w.Run()
	if doq.RxDatagrams != 0 {
		t.Errorf("blocked port received %d datagrams, want 0", doq.RxDatagrams)
	}
	if dns.RxDatagrams != 1 {
		t.Errorf("allowed port received %d datagrams, want 1", dns.RxDatagrams)
	}
	if n.Drops.Blocked != 1 {
		t.Errorf("Drops.Blocked = %d, want 1", n.Drops.Blocked)
	}
	if c.RxDatagrams != 0 || c.queue.Len() != 0 {
		t.Error("silent block delivered a notification to the sender")
	}
}

// TestPolicyRejectNotifiesSender checks the ICMP-style reject: the
// sender's socket receives a Reject-marked datagram after one full path
// round trip, with no byte accounting on either side.
func TestPolicyRejectNotifiesSender(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: 10 * time.Millisecond})
	n.SetPolicy(a.Addr(), b.Addr(), Policy{BlockUDPPorts: []uint16{853}, Reject: true})
	b.Listen(ProtoUDP, 853, 8)
	var got Datagram
	var at time.Duration
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		c.Send(netip.AddrPortFrom(b.Addr(), 853), []byte("query"))
		d, ok := c.Recv()
		if !ok {
			t.Error("sender socket closed before the reject arrived")
			return
		}
		got, at = d, w.Now()
		if c.RxBytes != 0 || c.RxDatagrams != 0 {
			t.Errorf("reject was byte-accounted: RxBytes=%d RxDatagrams=%d", c.RxBytes, c.RxDatagrams)
		}
	})
	w.Run()
	if !got.Reject || got.Payload != nil {
		t.Errorf("notification = %+v, want Reject with nil payload", got)
	}
	if got.Src != netip.AddrPortFrom(b.Addr(), 853) {
		t.Errorf("notification Src = %v, want the rejected destination", got.Src)
	}
	if want := 20 * time.Millisecond; at != want {
		t.Errorf("reject arrived at %v, want %v (one path round trip)", at, want)
	}
	if n.Drops.Rejected != 1 || n.Drops.Blocked != 0 {
		t.Errorf("Drops = %+v, want exactly one Rejected", n.Drops)
	}
}

// TestPolicyRSTInjectOnTCP checks TCP port blocks with RSTInject notify
// the sender on its source port, the way an injected RST reaches the
// connection that sent the SYN.
func TestPolicyRSTInjectOnTCP(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: 5 * time.Millisecond})
	n.SetPolicy(a.Addr(), b.Addr(), Policy{BlockTCPPorts: []uint16{853}, RSTInject: true})
	b.Listen(ProtoTCP, 853, 0)
	rejected := false
	w.Go(func() {
		c := a.Dial(ProtoTCP, 0)
		c.Send(netip.AddrPortFrom(b.Addr(), 853), []byte("SYN"))
		if d, ok := c.Recv(); ok {
			rejected = d.Reject
		}
	})
	w.Run()
	if !rejected {
		t.Error("no injected RST reached the TCP sender")
	}
	if n.Drops.Rejected != 1 {
		t.Errorf("Drops.Rejected = %d, want 1", n.Drops.Rejected)
	}
}

// TestPolicyClampMTU checks the policy clamp drops oversized datagrams
// silently and independently of the path MTU.
func TestPolicyClampMTU(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPolicy(a.Addr(), b.Addr(), Policy{ClampMTU: 600})
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		c.Send(srv.LocalAddr(), make([]byte, 601))
		c.Send(srv.LocalAddr(), make([]byte, 600))
	})
	w.Run()
	if srv.RxDatagrams != 1 {
		t.Errorf("RxDatagrams = %d, want 1 (over-clamp dropped)", srv.RxDatagrams)
	}
	if n.Drops.Clamped != 1 || n.Drops.MTU != 0 {
		t.Errorf("Drops = %+v, want 1 Clamped, 0 MTU", n.Drops)
	}
}

// TestDropsTotalAgreesUnderMixedCauses exercises every drop cause at
// once and checks Total() equals the sum of the per-cause counters and
// the delivered+dropped ledger balances.
func TestDropsTotalAgreesUnderMixedCauses(t *testing.T) {
	w := sim.NewWorld(3)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: time.Millisecond})
	n.SetPolicy(a.Addr(), b.Addr(), Policy{
		BlockUDPPorts: []uint16{853},
		BlockTCPPorts: []uint16{853},
		RSTInject:     true,
		ClampMTU:      1000,
	})
	// A second pair with pure loss, outside the policy.
	c := n.Host(addr("10.0.0.3"))
	n.SetPath(a.Addr(), c.Addr(), PathParams{Delay: time.Millisecond, Loss: 1})
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	c.Listen(ProtoUDP, 53, 8)
	total := 0
	w.Go(func() {
		u := a.Dial(ProtoUDP, 8)
		tc := a.Dial(ProtoTCP, 0)
		u.Send(netip.AddrPortFrom(b.Addr(), 853), []byte("blocked"))  // Blocked
		u.Send(netip.AddrPortFrom(b.Addr(), 853), []byte("blocked2")) // Blocked
		tc.Send(netip.AddrPortFrom(b.Addr(), 853), []byte("SYN"))     // Rejected
		u.Send(srv.LocalAddr(), make([]byte, 1001))                   // Clamped
		u.Send(srv.LocalAddr(), make([]byte, DefaultMTU+1))           // MTU... clamped first
		u.Send(netip.AddrPortFrom(b.Addr(), 99), []byte("nobody"))    // NoRoute
		u.Send(netip.AddrPortFrom(c.Addr(), 53), []byte("lossy"))     // Loss
		u.Send(srv.LocalAddr(), []byte("ok"))                         // delivered
		total = 8
	})
	w.Run()
	d := n.Drops
	if d.Blocked != 2 || d.Rejected != 1 || d.Clamped != 2 || d.NoRoute != 1 || d.Loss != 1 {
		t.Errorf("Drops = %+v, want Blocked 2, Rejected 1, Clamped 2, NoRoute 1, Loss 1", d)
	}
	if sum := d.Loss + d.MTU + d.NoRoute + d.Overflow + d.Blocked + d.Rejected + d.Clamped; d.Total() != sum {
		t.Errorf("Total() = %d, want %d (sum of causes)", d.Total(), sum)
	}
	if d.Total()+n.Delivered != total {
		t.Errorf("dropped %d + delivered %d != sent %d", d.Total(), n.Delivered, total)
	}
}

// TestPolicyScheduleBoundary checks PolicyStep semantics match
// PathStep: a step is in effect exactly at its At, and the last step
// holds forever.
func TestPolicyScheduleBoundary(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	n.SetPath(a.Addr(), b.Addr(), PathParams{Delay: time.Millisecond})
	block := Policy{BlockAllUDP: true}
	n.SetPolicySchedule(a.Addr(), b.Addr(), []PolicyStep{
		{At: time.Second, Policy: block},
		{At: 2 * time.Second, Policy: Policy{}},
	})
	if n.PolicyAt(a.Addr(), b.Addr(), time.Second-time.Nanosecond).Active() {
		t.Error("policy active before its At")
	}
	if !n.PolicyAt(a.Addr(), b.Addr(), time.Second).Active() {
		t.Error("policy not active exactly at its At")
	}
	if n.PolicyAt(a.Addr(), b.Addr(), 3*time.Second).Active() {
		t.Error("zero-Policy final step did not lift the block")
	}
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		c.Send(srv.LocalAddr(), []byte("before"))
		w.Sleep(time.Second) // lands exactly on the boundary
		c.Send(srv.LocalAddr(), []byte("at-boundary"))
		w.Sleep(1500 * time.Millisecond)
		c.Send(srv.LocalAddr(), []byte("after"))
	})
	w.Run()
	if srv.RxDatagrams != 2 {
		t.Errorf("delivered %d datagrams, want 2 (boundary send must be blocked)", srv.RxDatagrams)
	}
	if n.Drops.Blocked != 1 {
		t.Errorf("Drops.Blocked = %d, want 1", n.Drops.Blocked)
	}
}

// TestPathScheduleBoundaryExact pins SetPathSchedule's boundary
// semantics: a datagram sent exactly at a step's At uses that step's
// parameters, one nanosecond earlier uses the previous ones.
func TestPathScheduleBoundaryExact(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	base := PathParams{Delay: time.Millisecond}
	n.SetPath(a.Addr(), b.Addr(), base)
	n.SetPathSchedule(a.Addr(), b.Addr(), []PathStep{
		{At: time.Second, Params: PathParams{Delay: time.Millisecond, Loss: 1}},
	})
	if got := n.PathAt(a.Addr(), b.Addr(), time.Second-time.Nanosecond).Loss; got != 0 {
		t.Errorf("PathAt(At-1ns).Loss = %v, want 0 (previous params)", got)
	}
	if got := n.PathAt(a.Addr(), b.Addr(), time.Second).Loss; got != 1 {
		t.Errorf("PathAt(At).Loss = %v, want 1 (step active exactly at At)", got)
	}
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		w.Sleep(time.Second - time.Nanosecond)
		c.Send(srv.LocalAddr(), []byte("last-clean"))
		w.Sleep(time.Nanosecond) // now exactly At
		c.Send(srv.LocalAddr(), []byte("first-lossy"))
	})
	w.Run()
	if srv.RxDatagrams != 1 || n.Drops.Loss != 1 {
		t.Errorf("delivered %d, Drops.Loss %d; want 1 and 1 (blackout starts exactly at At)",
			srv.RxDatagrams, n.Drops.Loss)
	}
}

// TestBurstStatePersistsAcrossScheduleFlip drives the Gilbert–Elliott
// chain into its bad state, flips the path schedule to a new step
// mid-burst, and checks the chain is still bad afterwards: link state
// must survive schedule changes exactly like a real fade straddling a
// routing or policy flip.
func TestBurstStatePersistsAcrossScheduleFlip(t *testing.T) {
	w := sim.NewWorld(1)
	n := NewNetwork(w)
	a := n.Host(addr("10.0.0.1"))
	b := n.Host(addr("10.0.0.2"))
	// Enters the bad state on the first datagram and (essentially)
	// never leaves; every bad-state datagram is dropped.
	stuckBad := BurstLoss{PGoodBad: 1, PBadGood: 1e-12, LossBad: 1}
	n.SetPathSchedule(a.Addr(), b.Addr(), []PathStep{
		{At: 0, Params: PathParams{Delay: time.Millisecond, Burst: stuckBad}},
		// The flip changes delay (a different step), keeps the chain
		// parameters — if the flip reset ls.bad, the chain would restart
		// in the good state and deliver the first post-flip datagram.
		{At: time.Second, Params: PathParams{Delay: 2 * time.Millisecond, Burst: BurstLoss{PGoodBad: 1e-12, PBadGood: 1e-12, LossBad: 1}}},
	})
	// A policy flip at the same instant must not touch link state either.
	n.SetPolicySchedule(a.Addr(), b.Addr(), []PolicyStep{
		{At: time.Second, Policy: Policy{BlockUDPPorts: []uint16{9999}}},
	})
	srv, _ := b.Listen(ProtoUDP, 53, 8)
	w.Go(func() {
		c := a.Dial(ProtoUDP, 8)
		for i := 0; i < 5; i++ {
			c.Send(srv.LocalAddr(), []byte("pre-flip"))
			w.Sleep(10 * time.Millisecond)
		}
		w.Sleep(time.Second)
		for i := 0; i < 5; i++ {
			c.Send(srv.LocalAddr(), []byte("post-flip"))
			w.Sleep(10 * time.Millisecond)
		}
	})
	w.Run()
	if srv.RxDatagrams != 0 {
		t.Errorf("delivered %d datagrams, want 0: burst bad state must persist across the schedule flip", srv.RxDatagrams)
	}
	if n.Drops.Loss != 10 {
		t.Errorf("Drops.Loss = %d, want 10", n.Drops.Loss)
	}
}
