package netem

import (
	"fmt"
	"time"
)

// AccessProfile describes an access network attached to a host: a
// bandwidth pair (shared bottleneck per direction), last-mile latency,
// and a loss model. Attach one with Network.SetAccessLink; named
// profiles for common access technologies come from Profiles /
// ProfileByName.
type AccessProfile struct {
	Name string
	// Down and Up are the link rates in bytes/second toward and from
	// the host; 0 leaves that direction unshaped.
	Down, Up float64
	// ExtraDelay is the one-way last-mile latency added per direction.
	ExtraDelay time.Duration
	// Loss is the independent per-datagram drop probability.
	Loss float64
	// Burst adds Gilbert–Elliott burst loss (fades, handovers). Burst
	// state is kept per direction.
	Burst BurstLoss
	// QueueBytes bounds each direction's queue (0 = DefaultQueueBytes).
	QueueBytes int
}

// The named access-network profiles of the E19–E21 grids, ordered from
// best to worst. Rates are bytes/second.
var accessProfiles = []AccessProfile{
	{
		// A datacenter/fibre uplink — the paper's EC2 vantage points.
		// Serialization is negligible; the profile exists so that every
		// vantage always has a real link for the browser to consume.
		Name: "fiber", Down: 125e6, Up: 125e6, ExtraDelay: 200 * time.Microsecond,
	},
	{
		// DOCSIS cable: 200/20 Mbit/s, a few ms of last-mile latency.
		Name: "cable", Down: 25e6, Up: 2.5e6, ExtraDelay: 3 * time.Millisecond,
	},
	{
		// LTE: 50/12 Mbit/s, radio-scheduler latency, light random loss.
		Name: "4g", Down: 6.25e6, Up: 1.5e6, ExtraDelay: 25 * time.Millisecond,
		Loss: 0.002,
	},
	{
		// HSPA-era 3G: 2 Mbit/s down, 512 kbit/s up, high latency, loss.
		Name: "3g", Down: 250e3, Up: 64e3, ExtraDelay: 60 * time.Millisecond,
		Loss: 0.005,
	},
	{
		// GEO satellite: decent rate, ~560ms RTT from orbit alone, and
		// rain-fade bursts (mean fade ≈ 10 datagrams at 30% loss).
		Name: "satellite", Down: 12.5e6, Up: 625e3, ExtraDelay: 280 * time.Millisecond,
		Loss:  0.003,
		Burst: BurstLoss{PGoodBad: 0.002, PBadGood: 0.1, LossBad: 0.3},
	},
}

// extraProfiles are named profiles resolvable by ProfileByName but kept
// out of the Profiles/ProfileNames grid set: the E19/E21 grids iterate
// that set, and its membership is part of their report shape. "wifi" is
// the migration scenario's starting link (E26): a home WLAN a notch
// below fiber, with the light loss of a shared radio.
var extraProfiles = []AccessProfile{
	{
		Name: "wifi", Down: 12.5e6, Up: 5e6, ExtraDelay: 2 * time.Millisecond,
		Loss: 0.001,
	},
}

// Profiles returns the named access profiles, best to worst.
func Profiles() []AccessProfile {
	return append([]AccessProfile(nil), accessProfiles...)
}

// ProfileNames returns the profile names in Profiles order.
func ProfileNames() []string {
	names := make([]string, len(accessProfiles))
	for i, p := range accessProfiles {
		names[i] = p.Name
	}
	return names
}

// ProfileByName looks a named profile up, including the extra profiles
// outside the grid set.
func ProfileByName(name string) (AccessProfile, error) {
	for _, p := range accessProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range extraProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	return AccessProfile{}, fmt.Errorf("netem: unknown access profile %q (have %v)", name, ProfileNames())
}
