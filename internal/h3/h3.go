// Package h3 implements the subset of HTTP/3 (RFC 9114) that DNS over
// HTTP/3 needs: HEADERS/DATA frames carried on QUIC streams, a control
// stream with a SETTINGS exchange, and a QPACK (RFC 9204) header codec
// restricted to the static table — the configuration a client must use
// when it wants requests to be replayable as 0-RTT data, because the
// static table is known before any server state exists.
//
// The package relates to internal/quic exactly as internal/h2 relates to
// internal/tcpsim: it adds HTTP framing and header compression on top of
// an existing reliable transport. The measurement consequence is the
// paper's open question about DoH3 (§5): HTTP/2's per-connection setup
// (preface, SETTINGS, first-request header literals) and the TCP+TLS
// layering below it make a single DoH query several hundred bytes larger
// than DoQ; once DoH rides QUIC, the framing shrinks to two varint-typed
// frames per request and the header block to mostly 1-byte static-table
// references, so DoH3's single-query sizes land between DoQ and DoH
// (experiment E13).
//
// Deliberate simplifications, mirroring internal/h2's honesty about
// HPACK: QPACK's bit-level prefix-integer and Huffman coding are not
// reproduced — static-table hits cost one byte, name references a small
// literal, exactly the size behaviour of the real encoding — and the
// control-stream SETTINGS exchange runs over one bidirectional stream
// (internal/quic models no unidirectional streams) instead of a pair of
// unidirectional ones. Neither affects timing, and sizes only by a few
// bytes.
package h3

import (
	"errors"
	"fmt"

	"repro/internal/netapi"
	"repro/internal/quic"
)

// Frame types (RFC 9114 §7.2).
const (
	frameData     = 0x0
	frameHeaders  = 0x1
	frameSettings = 0x4
	frameGoAway   = 0x7
)

// StreamTypeControl opens a control stream (RFC 9114 §6.2.1). Request
// streams carry no stream-type prefix; they begin directly with a
// HEADERS frame, so the first varint on a stream discriminates the two.
const StreamTypeControl = 0x00

// Settings identifiers (RFC 9114 §7.2.4.1, RFC 9204 §5).
const (
	settingQPACKMaxTableCapacity = 0x01
	settingMaxFieldSectionSize   = 0x06
	settingQPACKBlockedStreams   = 0x07
)

// Header is an HTTP header field.
type Header struct {
	Name, Value string
}

// settingsPayload advertises the static-table-only QPACK configuration:
// a zero-capacity dynamic table and no blocked streams.
func settingsPayload() []byte {
	var b []byte
	b = quic.AppendVarint(b, settingQPACKMaxTableCapacity)
	b = quic.AppendVarint(b, 0)
	b = quic.AppendVarint(b, settingMaxFieldSectionSize)
	b = quic.AppendVarint(b, 16384)
	b = quic.AppendVarint(b, settingQPACKBlockedStreams)
	b = quic.AppendVarint(b, 0)
	return b
}

// appendFrame appends one HTTP/3 frame: type varint, length varint,
// payload.
//
//simlint:hotpath
func appendFrame(b []byte, ftype uint64, payload []byte) []byte {
	b = quic.AppendVarint(b, ftype)
	b = quic.AppendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

// readFrame slices one frame off the front of b.
func readFrame(b []byte) (ftype uint64, payload, rest []byte, err error) {
	ftype, n, err := quic.ReadVarint(b)
	if err != nil {
		return 0, nil, nil, err
	}
	b = b[n:]
	length, n, err := quic.ReadVarint(b)
	if err != nil {
		return 0, nil, nil, err
	}
	b = b[n:]
	if uint64(len(b)) < length {
		return 0, nil, nil, errors.New("h3: truncated frame")
	}
	return ftype, b[:length], b[length:], nil
}

// --- QPACK static-table-only codec ---

// staticEntry is one RFC 9204 Appendix A static-table row at its RFC
// index (the table is sparse in index space here, so each entry carries
// its own index).
type staticEntry struct {
	idx uint64
	h   Header
}

// staticTable is the subset of the RFC 9204 Appendix A static table that
// DNS over HTTP/3 exchanges touch. The table was designed with DoH in
// mind: "accept: application/dns-message" and "content-type:
// application/dns-message" are static entries, which is why a DoH3
// request encodes almost entirely in 1-byte references.
var staticTable = []staticEntry{
	{0, Header{":authority", ""}},
	{1, Header{":path", "/"}},
	{2, Header{"age", "0"}},
	{3, Header{"content-disposition", ""}},
	{4, Header{"content-length", "0"}},
	{17, Header{":method", "GET"}},
	{20, Header{":method", "POST"}},
	{22, Header{":scheme", "http"}},
	{23, Header{":scheme", "https"}},
	{24, Header{":status", "103"}},
	{25, Header{":status", "200"}},
	{26, Header{":status", "304"}},
	{27, Header{":status", "404"}},
	{28, Header{":status", "503"}},
	{29, Header{"accept", "*/*"}},
	{30, Header{"accept", "application/dns-message"}},
	{31, Header{"accept-encoding", "gzip, deflate, br"}},
	{36, Header{"cache-control", "max-age=0"}},
	{44, Header{"content-type", "application/dns-message"}},
	{95, Header{"user-agent", ""}}, // name-only reference
}

// staticLookup returns (index, exact): a full match when the static
// table holds name:value, else a name-only match, else ok=false.
func staticLookup(h Header) (idx uint64, exact, ok bool) {
	nameIdx, nameOK := uint64(0), false
	for _, e := range staticTable {
		if e.h.Name != h.Name {
			continue
		}
		if e.h.Value == h.Value {
			return e.idx, true, true
		}
		if !nameOK {
			nameIdx, nameOK = e.idx, true
		}
	}
	return nameIdx, false, nameOK
}

func staticByIndex(idx uint64) (Header, bool) {
	for _, e := range staticTable {
		if e.idx == idx {
			return e.h, true
		}
	}
	return Header{}, false
}

// Field-line markers. The real QPACK packs these into prefix-integer
// bit patterns; one marker byte reproduces the same sizes.
const (
	fieldIndexedStatic = 0xc0 // full static match: marker|nothing, index byte follows
	fieldNameRefStatic = 0x50 // static name, literal value
	fieldLiteral       = 0x20 // literal name and value
)

// EncodeFieldSection encodes headers as a QPACK field section using only
// the static table: a 2-byte prefix (Required Insert Count 0, Base 0 —
// no dynamic table), then one field line per header.
func EncodeFieldSection(headers []Header) []byte {
	b := []byte{0x00, 0x00}
	for _, h := range headers {
		idx, exact, ok := staticLookup(h)
		switch {
		case ok && exact:
			b = append(b, fieldIndexedStatic, byte(idx))
		case ok && len(h.Value) < 256:
			b = append(b, fieldNameRefStatic, byte(idx), byte(len(h.Value)))
			b = append(b, h.Value...)
		default:
			b = append(b, fieldLiteral, byte(len(h.Name)))
			b = append(b, h.Name...)
			b = append(b, byte(len(h.Value)>>8), byte(len(h.Value)))
			b = append(b, h.Value...)
		}
	}
	return b
}

// DecodeFieldSection reverses EncodeFieldSection.
func DecodeFieldSection(b []byte) ([]Header, error) {
	if len(b) < 2 {
		return nil, errors.New("h3: short field section")
	}
	b = b[2:]
	var out []Header
	for len(b) > 0 {
		switch b[0] {
		case fieldIndexedStatic:
			if len(b) < 2 {
				return nil, errors.New("h3: truncated indexed field")
			}
			h, ok := staticByIndex(uint64(b[1]))
			if !ok {
				return nil, fmt.Errorf("h3: unknown static index %d", b[1])
			}
			out = append(out, h)
			b = b[2:]
		case fieldNameRefStatic:
			if len(b) < 3 {
				return nil, errors.New("h3: truncated name-ref field")
			}
			h, ok := staticByIndex(uint64(b[1]))
			if !ok {
				return nil, fmt.Errorf("h3: unknown static name index %d", b[1])
			}
			vl := int(b[2])
			if len(b) < 3+vl {
				return nil, errors.New("h3: truncated field value")
			}
			out = append(out, Header{h.Name, string(b[3 : 3+vl])})
			b = b[3+vl:]
		case fieldLiteral:
			if len(b) < 2 {
				return nil, errors.New("h3: truncated literal field")
			}
			nl := int(b[1])
			if len(b) < 2+nl+2 {
				return nil, errors.New("h3: truncated literal name")
			}
			name := string(b[2 : 2+nl])
			vl := int(b[2+nl])<<8 | int(b[3+nl])
			if len(b) < 4+nl+vl {
				return nil, errors.New("h3: truncated literal value")
			}
			out = append(out, Header{name, string(b[4+nl : 4+nl+vl])})
			b = b[4+nl+vl:]
		default:
			return nil, fmt.Errorf("h3: unknown field marker 0x%02x", b[0])
		}
	}
	return out, nil
}

// --- Client ---

// Response is a completed HTTP/3 exchange result.
type Response struct {
	Headers []Header
	Body    []byte
}

// Status returns the :status pseudo-header value.
func (r *Response) Status() string {
	for _, h := range r.Headers {
		if h.Name == ":status" {
			return h.Value
		}
	}
	return ""
}

// ClientConn is the client side of an HTTP/3 connection. Each request
// runs on its own client-initiated bidirectional QUIC stream (HEADERS
// then DATA, FIN); the control stream carries the SETTINGS exchange.
type ClientConn struct {
	rt     netapi.Runtime
	conn   *quic.Conn
	ctrl   *quic.Stream
	closed bool
}

// NewClientConn opens the control stream and sends SETTINGS. When the
// connection was dialed early with 0-RTT offered, the SETTINGS — and any
// requests issued before the handshake completes — ride in 0-RTT
// packets; the framing depends only on the static QPACK table, so it
// needs no negotiated server state (the DoH3 analogue of DoQ's rule
// that 0-RTT framing follows the offered ALPN).
func NewClientConn(rt netapi.Runtime, conn *quic.Conn) *ClientConn {
	c := &ClientConn{rt: rt, conn: conn, ctrl: conn.OpenStream()}
	var b []byte
	b = quic.AppendVarint(b, StreamTypeControl)
	b = appendFrame(b, frameSettings, settingsPayload())
	c.ctrl.Write(b, false)
	// Drain the server's SETTINGS (and any GOAWAY) until teardown.
	rt.Go(func() {
		for {
			if _, ok := c.ctrl.Read(); !ok {
				return
			}
		}
	})
	return c
}

// RoundTrip issues one request on a fresh stream and blocks for the
// response.
func (c *ClientConn) RoundTrip(headers []Header, body []byte) (*Response, error) {
	if c.closed {
		return nil, errors.New("h3: connection closed")
	}
	st := c.conn.OpenStream()
	var b []byte
	b = appendFrame(b, frameHeaders, EncodeFieldSection(headers))
	b = appendFrame(b, frameData, body)
	if err := st.Write(b, true); err != nil {
		return nil, err
	}
	raw, ok := st.ReadAll()
	if !ok {
		return nil, errors.New("h3: request stream reset or connection lost")
	}
	return parseExchange(raw)
}

// parseExchange splits a stream's bytes into HEADERS + DATA frames.
func parseExchange(raw []byte) (*Response, error) {
	resp := &Response{}
	sawHeaders := false
	for len(raw) > 0 {
		ftype, payload, rest, err := readFrame(raw)
		if err != nil {
			return nil, err
		}
		raw = rest
		switch ftype {
		case frameHeaders:
			hs, err := DecodeFieldSection(payload)
			if err != nil {
				return nil, err
			}
			resp.Headers = append(resp.Headers, hs...)
			sawHeaders = true
		case frameData:
			resp.Body = append(resp.Body, payload...)
		default:
			// Unknown frame types are ignored (RFC 9114 §9).
		}
	}
	if !sawHeaders {
		return nil, errors.New("h3: stream ended without HEADERS")
	}
	return resp, nil
}

// Close sends GOAWAY on the control stream and closes the connection.
func (c *ClientConn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.ctrl.Write(appendFrame(nil, frameGoAway, []byte{0}), false)
	c.conn.Close()
}

// --- Server ---

// Handler processes one request and returns the response.
type Handler func(headers []Header, body []byte) (respHeaders []Header, respBody []byte)

// ServeConn runs the server side of an HTTP/3 connection until the peer
// disconnects: the control stream answers the SETTINGS exchange, request
// streams are served concurrently. It blocks, so call it from its own
// sim task.
func ServeConn(rt netapi.Runtime, conn *quic.Conn, handler Handler) {
	srv := &serverConn{handler: handler}
	for {
		st, ok := conn.AcceptStream()
		if !ok {
			return
		}
		// Per-stream (= per-request) spawn through a pre-bound adapter
		// and a pooled argument box instead of a fresh closure.
		var j *streamJob
		if n := len(srv.free); n > 0 {
			j = srv.free[n-1]
			srv.free = srv.free[:n-1]
		} else {
			j = &streamJob{}
		}
		j.srv, j.st = srv, st
		rt.GoCall(serveStreamJob, j)
	}
}

// serverConn holds the handler shared by a connection's request tasks
// and the free list of their argument boxes.
type serverConn struct {
	handler Handler
	free    []*streamJob
}

type streamJob struct {
	srv *serverConn
	st  *quic.Stream
}

// serveStreamJob is the shared pre-bound adapter; the box is returned
// to the free list as soon as its fields are read (the world runs one
// task at a time, so the accept loop cannot reuse it before then).
//
//simlint:hotpath
func serveStreamJob(v any) {
	j := v.(*streamJob)
	srv, st := j.srv, j.st
	j.srv, j.st = nil, nil
	srv.free = append(srv.free, j)
	serveStream(st, srv.handler)
}

func serveStream(st *quic.Stream, handler Handler) {
	first, ok := st.Read()
	if !ok || len(first) == 0 {
		return
	}
	if first[0] == StreamTypeControl {
		// Control stream: acknowledge with our SETTINGS on the same
		// (bidirectional) stream and keep draining until teardown.
		var b []byte
		b = quic.AppendVarint(b, StreamTypeControl)
		b = appendFrame(b, frameSettings, settingsPayload())
		st.Write(b, false)
		for {
			if _, ok := st.Read(); !ok {
				return
			}
		}
	}
	// Request stream: gather until FIN, then serve.
	buf := first
	rest, ok := st.ReadAll()
	if !ok {
		return
	}
	buf = append(buf, rest...)
	var reqHeaders []Header
	var reqBody []byte
	for len(buf) > 0 {
		ftype, payload, r, err := readFrame(buf)
		if err != nil {
			return
		}
		buf = r
		switch ftype {
		case frameHeaders:
			hs, err := DecodeFieldSection(payload)
			if err != nil {
				return
			}
			reqHeaders = append(reqHeaders, hs...)
		case frameData:
			reqBody = append(reqBody, payload...)
		}
	}
	if reqHeaders == nil {
		return
	}
	respHeaders, respBody := handler(reqHeaders, reqBody)
	var out []byte
	out = appendFrame(out, frameHeaders, EncodeFieldSection(respHeaders))
	out = appendFrame(out, frameData, respBody)
	st.Write(out, true)
}
