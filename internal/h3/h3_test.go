package h3

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/netapi/simnet"
	"repro/internal/netem"
	"repro/internal/quic"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

func TestFieldSectionRoundTrip(t *testing.T) {
	cases := [][]Header{
		{{":method", "POST"}, {":scheme", "https"}, {":path", "/dns-query"}},
		{
			{":method", "POST"},
			{":scheme", "https"},
			{":authority", "resolver-003.EU.example"},
			{":path", "/dns-query"},
			{"accept", "application/dns-message"},
			{"content-type", "application/dns-message"},
			{"content-length", "42"},
			{"user-agent", "repro-dnsperf/1.0"},
		},
		{{":status", "200"}, {"content-type", "application/dns-message"}, {"cache-control", "max-age=60"}},
		{{"x-custom-header", "some opaque value"}},
		nil,
	}
	for _, hs := range cases {
		enc := EncodeFieldSection(hs)
		dec, err := DecodeFieldSection(enc)
		if err != nil {
			t.Fatalf("decode(%v): %v", hs, err)
		}
		if len(hs) == 0 && len(dec) == 0 {
			continue
		}
		if !reflect.DeepEqual(dec, hs) {
			t.Errorf("round trip: got %v, want %v", dec, hs)
		}
	}
}

// TestStaticTableHitsAreOneByte pins the size property E13 rests on: a
// full static match costs 2 bytes (marker+index) versus the literal's
// name+value spelling, so the DoH3 header block stays a fraction of the
// equivalent first-request HPACK block.
func TestStaticTableHitsAreOneByte(t *testing.T) {
	static := EncodeFieldSection([]Header{{"content-type", "application/dns-message"}})
	literal := EncodeFieldSection([]Header{{"content-type", "application/dns-binary!"}})
	if len(static) != 2+2 {
		t.Errorf("static hit encoded in %d bytes, want 4 (prefix+marker+index)", len(static))
	}
	if len(literal) <= len(static) {
		t.Errorf("literal (%d bytes) not larger than static hit (%d bytes)", len(literal), len(static))
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("frame payload")
	b := appendFrame(nil, frameHeaders, payload)
	b = appendFrame(b, frameData, []byte("body"))
	ftype, got, rest, err := readFrame(b)
	if err != nil || ftype != frameHeaders || !bytes.Equal(got, payload) {
		t.Fatalf("first frame: type=%d payload=%q err=%v", ftype, got, err)
	}
	ftype, got, rest, err = readFrame(rest)
	if err != nil || ftype != frameData || string(got) != "body" {
		t.Fatalf("second frame: type=%d payload=%q err=%v", ftype, got, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

type env struct {
	w      *sim.World
	client *netem.Host
	server *netem.Host
	rng    *rand.Rand
	id     *tlsmini.Identity
}

func newEnv(seed int64, rtt time.Duration) *env {
	w := sim.NewWorld(seed)
	n := netem.NewNetwork(w)
	c := n.Host(netip.MustParseAddr("10.0.0.1"))
	s := n.Host(netip.MustParseAddr("10.0.0.2"))
	n.SetSymmetricPath(c.Addr(), s.Addr(), netem.PathParams{Delay: rtt / 2})
	rng := rand.New(rand.NewSource(seed))
	return &env{w: w, client: c, server: s, rng: rng,
		id: tlsmini.GenerateIdentity(rng, "h3.example", 1000)}
}

// TestRequestResponseOverQUIC drives a full HTTP/3 exchange — control
// streams, SETTINGS, HEADERS+DATA request framing — over the simulated
// QUIC stack.
func TestRequestResponseOverQUIC(t *testing.T) {
	e := newEnv(1, 40*time.Millisecond)
	l, err := quic.Listen(e.server, 443, quic.Config{
		ALPN:        []string{"h3"},
		Identity:    e.id,
		TicketStore: tlsmini.NewTicketStore(),
		Rand:        e.rng,
		Now:         e.w.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.w.Go(func() {
		for {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			e.w.Go(func() {
				ServeConn(simnet.NewRuntime(e.w, nil), conn, func(headers []Header, body []byte) ([]Header, []byte) {
					for _, h := range headers {
						if h.Name == ":path" && h.Value != "/dns-query" {
							return []Header{{":status", "404"}}, nil
						}
					}
					return []Header{{":status", "200"}}, append([]byte("echo:"), body...)
				})
			})
		}
	})

	var resp1, resp2 *Response
	e.w.Go(func() {
		conn, err := quic.Dial(e.client, netip.AddrPortFrom(e.server.Addr(), 443), quic.Config{
			ALPN:       []string{"h3"},
			ServerName: "h3.example",
			Rand:       e.rng,
			Now:        e.w.Now,
		})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c := NewClientConn(simnet.NewRuntime(e.w, nil), conn)
		resp1, err = c.RoundTrip([]Header{
			{":method", "POST"}, {":scheme", "https"},
			{":authority", "h3.example"}, {":path", "/dns-query"},
		}, []byte("query-1"))
		if err != nil {
			t.Errorf("roundtrip 1: %v", err)
			return
		}
		resp2, err = c.RoundTrip([]Header{
			{":method", "POST"}, {":scheme", "https"},
			{":authority", "h3.example"}, {":path", "/other"},
		}, []byte("query-2"))
		if err != nil {
			t.Errorf("roundtrip 2: %v", err)
			return
		}
		c.Close()
	})
	e.w.Run()
	if resp1 == nil || resp1.Status() != "200" || string(resp1.Body) != "echo:query-1" {
		t.Fatalf("resp1 = %+v", resp1)
	}
	if resp2 == nil || resp2.Status() != "404" {
		t.Fatalf("resp2 = %+v", resp2)
	}
}
