// Package bytepool provides a tiered free list for the per-datagram and
// per-record buffers that dominate steady-state allocation in the
// simulator: netem datagram payloads, QUIC packet assembly, TCP segment
// encoding, and TLS record protection all lease buffers here instead of
// allocating garbage per packet.
//
// A Pool belongs to one simulation World. The sim kernel runs exactly one
// task at a time per World, so Pool methods need no locking; the only
// shared state is the package-level hit/miss counters, which are atomic
// so concurrent campaign shards can aggregate into them.
//
// Ownership discipline: a leased buffer has exactly one owner. Sending a
// buffer through a netem socket transfers ownership to the network, which
// releases it on drop or hands it to the receiver, who releases it after
// parsing. Double-Put is a bug; Put clears the slice header it is given
// in debug builds of callers by convention (callers should nil their
// reference after Put).
package bytepool

import "sync/atomic"

// Tier capacities. 512 covers queries and ACK-sized segments, 2048
// covers MTU-sized datagrams and typical TLS records, 18432 covers
// maximum-size TLS records (16KB plaintext + framing) and certificate
// chains.
var tierCaps = [...]int{512, 2048, 18432}

const maxPerTier = 256 // free-list depth bound per tier

var (
	hits   atomic.Uint64
	misses atomic.Uint64
)

// Stats returns the cumulative lease counters across all pools: hits
// (leases served from a free list) and misses (leases that allocated,
// including oversized requests).
func Stats() (h, m uint64) { return hits.Load(), misses.Load() }

// ResetStats zeroes the counters (used by benchmarks).
func ResetStats() { hits.Store(0); misses.Store(0) }

// Pool is a tiered byte-slice free list for a single World. The zero
// value is ready to use.
type Pool struct {
	free [len(tierCaps)][][]byte
}

// Get leases a zero-length buffer with capacity at least n. Requests
// larger than the top tier are allocated directly and will be dropped
// again on Put.
func (p *Pool) Get(n int) []byte {
	for t, c := range tierCaps {
		if n <= c {
			if l := len(p.free[t]); l > 0 {
				b := p.free[t][l-1]
				p.free[t][l-1] = nil
				p.free[t] = p.free[t][:l-1]
				hits.Add(1)
				return b[:0]
			}
			misses.Add(1)
			return make([]byte, 0, c)
		}
	}
	misses.Add(1)
	return make([]byte, 0, n)
}

// Put returns a buffer leased by Get to its tier. Buffers whose capacity
// matches no tier (oversized or foreign) are dropped for the GC; a nil
// buffer is a no-op, so callers can Put unconditionally on drop paths.
func (p *Pool) Put(b []byte) {
	if b == nil {
		return
	}
	c := cap(b)
	for t, tc := range tierCaps {
		if c == tc {
			if len(p.free[t]) < maxPerTier {
				p.free[t] = append(p.free[t], b[:0])
			}
			return
		}
	}
}
