// Package report renders the evaluation's tables and figures as text:
// protocol-by-vantage matrices (Fig. 2), CDF summaries (Fig. 3), the
// vantage-by-page grid (Fig. 4), and Table 1.
package report

import (
	"cmp"
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Table is a simple text table builder.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns. Rows may be wider than
// the header; extra columns get their own widths.
func (t *Table) String() string {
	ncol := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncol {
			ncol = len(row)
		}
	}
	widths := make([]int, ncol)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// CDFSummary renders an empirical CDF the way the paper's prose reads
// Fig. 3: the fraction of samples at or below a set of thresholds, plus
// a sparkline of the distribution between lo and hi.
func CDFSummary(name string, c *stats.CDF, thresholds []float64, lo, hi float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s n=%-6d median=%7s  ", name, c.N(), stats.FormatPct(c.Median()))
	for _, th := range thresholds {
		fmt.Fprintf(&sb, "P[<=%s]=%.2f  ", stats.FormatPct(th), c.At(th))
	}
	// Sparkline of CDF values across the range.
	const bins = 24
	vals := make([]float64, bins)
	for i := 0; i < bins; i++ {
		x := lo + (hi-lo)*float64(i)/float64(bins-1)
		vals[i] = c.At(x)
	}
	sb.WriteString(stats.Sparkline(vals, 0, 1))
	return sb.String()
}

// SortedKeys returns the map's keys in ascending order. It is the one
// idiom for deterministic map iteration; the maporder lint rule points
// here.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	return slices.Sorted(maps.Keys(m))
}

// KeysByValue returns map keys sorted by their descending values (for
// AS-distribution style listings), keys ascending on ties.
func KeysByValue(m map[string]int) []string {
	keys := SortedKeys(m)
	sort.SliceStable(keys, func(i, j int) bool { return m[keys[i]] > m[keys[j]] })
	return keys
}

// Pct formats n/total as a percentage string.
func Pct(n, total int) string {
	if total == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", float64(n)*100/float64(total))
}

// Ms formats a duration-in-nanoseconds float as milliseconds with one
// decimal, the unit of Fig. 2.
func Ms(ns float64) string { return fmt.Sprintf("%.1f", ns/1e6) }
