package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tab := &Table{
		Title:  "title",
		Header: []string{"col", "value"},
	}
	tab.Add("a", "1")
	tab.Add("longer-name", "23456")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "col") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line = %q", lines[1])
	}
	// Column two must start at the same offset in every row.
	idx := strings.Index(lines[3], "1")
	if idx < 0 || len(lines[4]) <= idx || lines[4][idx] != '2' {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

// TestTableRowWiderThanHeader is the regression test for the render
// panic: the width pass guarded i < len(widths) but the render pass
// indexed widths[i] unguarded, so any row with more cells than the
// header crashed String.
func TestTableRowWiderThanHeader(t *testing.T) {
	tab := &Table{
		Header: []string{"col", "value"},
	}
	tab.Add("a", "1", "extra", "cells")
	tab.Add("b", "2")
	out := tab.String()
	for _, want := range []string{"col", "extra", "cells"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCDFSummaryContainsThresholds(t *testing.T) {
	c := stats.NewCDF([]float64{-0.1, 0, 0.1, 0.2, 0.5})
	out := CDFSummary("DoQ", c, []float64{0, 0.2}, -0.2, 0.8)
	for _, want := range []string{"DoQ", "n=5", "P[<=+0.0%]", "P[<=+20.0%]"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q: %s", want, out)
		}
	}
}

func TestKeysByValueDescending(t *testing.T) {
	m := map[string]int{"a": 1, "b": 3, "c": 2, "d": 3}
	got := KeysByValue(m)
	want := []string{"b", "d", "c", "a"} // ties break lexicographically
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KeysByValue = %v, want %v", got, want)
		}
	}
}

func TestSortedKeysAscending(t *testing.T) {
	got := SortedKeys(map[int]string{3: "c", 1: "a", 2: "b"})
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v, want %v", got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1, 3); got != "33.3%" {
		t.Errorf("Pct(1,3) = %q", got)
	}
	if got := Pct(5, 0); got != "0.0%" {
		t.Errorf("Pct(5,0) = %q", got)
	}
}

func TestMs(t *testing.T) {
	if got := Ms(1.5e6); got != "1.5" {
		t.Errorf("Ms = %q", got)
	}
}
