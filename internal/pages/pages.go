// Package pages models the landing pages of the Tranco top-10 websites
// the paper loads (Fig. 4, ordered by the average number of DNS queries
// each page needs): wikipedia (1), instagram (1), facebook (3),
// linkedin (3), google (5), baidu (6), twitter (6), netflix (7),
// microsoft (8), youtube (9).
//
// The models capture what matters for the DNS-protocol comparison: how
// many distinct names resolve (and when — the landing host first, third
// parties after the HTML arrives), how much content gates First
// Contentful Paint versus onLoad, and that the simple login/search pages
// (wikipedia, instagram, linkedin) finish quickly, which is exactly why
// the paper sees the largest relative DNS impact there.
package pages

import "time"

// Resource is one fetchable page asset.
type Resource struct {
	// Host is the DNS name serving the asset.
	Host string
	// Size in bytes.
	Size int
	// Critical assets gate First Contentful Paint.
	Critical bool
}

// Page models one landing page.
type Page struct {
	Name string
	// URL is the landing host (already the post-redirect host, as the
	// paper replaces URLs with the actual landing page).
	URL string
	// HTMLSize is the main document size in bytes.
	HTMLSize int
	// Resources are the sub-resources, fetched after the HTML arrives.
	Resources []Resource
	// RenderDelay models layout/paint work between the critical assets
	// finishing and first paint.
	RenderDelay time.Duration
	// OnLoadDelay models script execution between the last asset and the
	// onLoad event.
	OnLoadDelay time.Duration
	// OriginRTT is the round-trip time to the page's CDN edge.
	OriginRTT time.Duration
}

// DNSNames returns the unique names the page resolves, landing host
// first.
func (p *Page) DNSNames() []string {
	seen := map[string]bool{p.URL: true}
	names := []string{p.URL}
	for _, r := range p.Resources {
		if !seen[r.Host] {
			seen[r.Host] = true
			names = append(names, r.Host)
		}
	}
	return names
}

// DNSQueryCount is the number of unique names (the paper's per-page
// column header in Fig. 4).
func (p *Page) DNSQueryCount() int { return len(p.DNSNames()) }

// thirdParty synthesizes n-1 additional hosts and spreads size bytes of
// assets across them plus the landing host.
func thirdParty(landing string, hosts []string, sizes []int, criticalN int) []Resource {
	var out []Resource
	for i, h := range hosts {
		out = append(out, Resource{Host: h, Size: sizes[i%len(sizes)], Critical: i < criticalN})
	}
	_ = landing
	return out
}

// Calibration multipliers: page content and client-side work are scaled
// so the simulated PLTs land in the regime where the paper's relative
// DNS-protocol differences (~10% on simple pages, ~2% on complex ones)
// emerge. The resource graph shape is unchanged.
const (
	sizeScale  = 2
	delayScale = 2
)

// Top10 returns the paper's ten pages, ordered by DNS query count as in
// Fig. 4.
func Top10() []*Page {
	out := top10raw()
	for _, p := range out {
		p.HTMLSize *= sizeScale
		for i := range p.Resources {
			p.Resources[i].Size *= sizeScale
		}
		p.RenderDelay *= delayScale
		p.OnLoadDelay *= delayScale
	}
	return out
}

func top10raw() []*Page {
	return []*Page{
		{
			Name: "wikipedia", URL: "www.wikipedia.org",
			HTMLSize: 75 << 10,
			Resources: []Resource{
				{Host: "www.wikipedia.org", Size: 140 << 10, Critical: true},
				{Host: "www.wikipedia.org", Size: 60 << 10},
			},
			RenderDelay: 260 * time.Millisecond,
			OnLoadDelay: 320 * time.Millisecond,
			OriginRTT:   22 * time.Millisecond,
		},
		{
			Name: "instagram", URL: "www.instagram.com",
			HTMLSize: 110 << 10,
			Resources: []Resource{
				{Host: "www.instagram.com", Size: 220 << 10, Critical: true},
				{Host: "www.instagram.com", Size: 150 << 10},
			},
			RenderDelay: 300 * time.Millisecond,
			OnLoadDelay: 380 * time.Millisecond,
			OriginRTT:   24 * time.Millisecond,
		},
		{
			Name: "facebook", URL: "www.facebook.com",
			HTMLSize: 180 << 10,
			Resources: append([]Resource{
				{Host: "www.facebook.com", Size: 250 << 10, Critical: true},
			}, thirdParty("www.facebook.com",
				[]string{"static.xx.fbcdn.net", "connect.facebook.net"},
				[]int{300 << 10, 120 << 10}, 1)...),
			RenderDelay: 320 * time.Millisecond,
			OnLoadDelay: 450 * time.Millisecond,
			OriginRTT:   20 * time.Millisecond,
		},
		{
			Name: "linkedin", URL: "www.linkedin.com",
			HTMLSize: 120 << 10,
			Resources: append([]Resource{
				{Host: "www.linkedin.com", Size: 180 << 10, Critical: true},
			}, thirdParty("www.linkedin.com",
				[]string{"static.licdn.com", "media.licdn.com"},
				[]int{200 << 10, 90 << 10}, 1)...),
			RenderDelay: 280 * time.Millisecond,
			OnLoadDelay: 360 * time.Millisecond,
			OriginRTT:   24 * time.Millisecond,
		},
		{
			Name: "google", URL: "www.google.com",
			HTMLSize: 210 << 10,
			Resources: append([]Resource{
				{Host: "www.google.com", Size: 240 << 10, Critical: true},
			}, thirdParty("www.google.com",
				[]string{"www.gstatic.com", "apis.google.com", "fonts.gstatic.com", "ssl.gstatic.com"},
				[]int{260 << 10, 90 << 10, 60 << 10, 120 << 10}, 1)...),
			RenderDelay: 340 * time.Millisecond,
			OnLoadDelay: 520 * time.Millisecond,
			OriginRTT:   18 * time.Millisecond,
		},
		{
			Name: "baidu", URL: "www.baidu.com",
			HTMLSize: 260 << 10,
			Resources: append([]Resource{
				{Host: "www.baidu.com", Size: 280 << 10, Critical: true},
			}, thirdParty("www.baidu.com",
				[]string{"ss0.bdstatic.com", "ss1.bdstatic.com", "t7.baidu.com", "hectorstatic.baidu.com", "dss0.bdstatic.com"},
				[]int{320 << 10, 150 << 10, 90 << 10, 70 << 10, 110 << 10}, 2)...),
			RenderDelay: 380 * time.Millisecond,
			OnLoadDelay: 600 * time.Millisecond,
			OriginRTT:   30 * time.Millisecond,
		},
		{
			Name: "twitter", URL: "twitter.com",
			HTMLSize: 240 << 10,
			Resources: append([]Resource{
				{Host: "twitter.com", Size: 260 << 10, Critical: true},
			}, thirdParty("twitter.com",
				[]string{"abs.twimg.com", "pbs.twimg.com", "video.twimg.com", "api.twitter.com", "t.co"},
				[]int{360 << 10, 240 << 10, 150 << 10, 60 << 10, 20 << 10}, 2)...),
			RenderDelay: 400 * time.Millisecond,
			OnLoadDelay: 640 * time.Millisecond,
			OriginRTT:   22 * time.Millisecond,
		},
		{
			Name: "netflix", URL: "www.netflix.com",
			HTMLSize: 320 << 10,
			Resources: append([]Resource{
				{Host: "www.netflix.com", Size: 300 << 10, Critical: true},
			}, thirdParty("www.netflix.com",
				[]string{"assets.nflxext.com", "codex.nflxext.com", "occ-0-1-2.1.nflxso.net", "ipv4-c001.1.nflxso.net", "beacon.netflix.com", "customerevents.netflix.com"},
				[]int{420 << 10, 180 << 10, 260 << 10, 120 << 10, 30 << 10, 25 << 10}, 2)...),
			RenderDelay: 420 * time.Millisecond,
			OnLoadDelay: 700 * time.Millisecond,
			OriginRTT:   20 * time.Millisecond,
		},
		{
			Name: "microsoft", URL: "www.microsoft.com",
			HTMLSize: 380 << 10,
			Resources: append([]Resource{
				{Host: "www.microsoft.com", Size: 340 << 10, Critical: true},
			}, thirdParty("www.microsoft.com",
				[]string{"img-prod-cms-rt-microsoft-com.akamaized.net", "statics-marketingsites-wcus-ms-com.akamaized.net", "mem.gfx.ms", "js.monitor.azure.com", "c.s-microsoft.com", "assets.onestore.ms", "wcpstatic.microsoft.com"},
				[]int{480 << 10, 260 << 10, 140 << 10, 90 << 10, 180 << 10, 120 << 10, 70 << 10}, 3)...),
			RenderDelay: 460 * time.Millisecond,
			OnLoadDelay: 780 * time.Millisecond,
			OriginRTT:   22 * time.Millisecond,
		},
		{
			Name: "youtube", URL: "www.youtube.com",
			HTMLSize: 480 << 10,
			Resources: append([]Resource{
				{Host: "www.youtube.com", Size: 420 << 10, Critical: true},
			}, thirdParty("www.youtube.com",
				[]string{"i.ytimg.com", "yt3.ggpht.com", "fonts.gstatic.com", "www.gstatic.com", "googleads.g.doubleclick.net", "static.doubleclick.net", "jnn-pa.googleapis.com", "play.google.com"},
				[]int{520 << 10, 240 << 10, 80 << 10, 280 << 10, 110 << 10, 90 << 10, 60 << 10, 130 << 10}, 3)...),
			RenderDelay: 500 * time.Millisecond,
			OnLoadDelay: 850 * time.Millisecond,
			OriginRTT:   18 * time.Millisecond,
		},
	}
}

// ByName returns the page with the given name, or nil.
func ByName(name string) *Page {
	for _, p := range Top10() {
		if p.Name == name {
			return p
		}
	}
	return nil
}
