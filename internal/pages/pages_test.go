package pages

import "testing"

func TestTop10QueryCountsMatchFig4(t *testing.T) {
	want := []struct {
		name    string
		queries int
	}{
		{"wikipedia", 1}, {"instagram", 1}, {"facebook", 3}, {"linkedin", 3},
		{"google", 5}, {"baidu", 6}, {"twitter", 6}, {"netflix", 7},
		{"microsoft", 8}, {"youtube", 9},
	}
	ps := Top10()
	if len(ps) != len(want) {
		t.Fatalf("Top10 has %d pages", len(ps))
	}
	for i, w := range want {
		if ps[i].Name != w.name {
			t.Errorf("page %d = %s, want %s (Fig. 4 order)", i, ps[i].Name, w.name)
		}
		if got := ps[i].DNSQueryCount(); got != w.queries {
			t.Errorf("%s: %d DNS queries, want %d", w.name, got, w.queries)
		}
	}
}

func TestLandingHostFirst(t *testing.T) {
	for _, p := range Top10() {
		names := p.DNSNames()
		if len(names) == 0 || names[0] != p.URL {
			t.Errorf("%s: DNSNames()[0] = %v, want %s", p.Name, names, p.URL)
		}
		seen := map[string]bool{}
		for _, n := range names {
			if seen[n] {
				t.Errorf("%s: duplicate name %s", p.Name, n)
			}
			seen[n] = true
		}
	}
}

func TestEveryPageHasCriticalContent(t *testing.T) {
	for _, p := range Top10() {
		critical := false
		for _, r := range p.Resources {
			if r.Critical {
				critical = true
			}
			if r.Size <= 0 {
				t.Errorf("%s: resource with size %d", p.Name, r.Size)
			}
		}
		if !critical {
			t.Errorf("%s: no critical resource gates FCP", p.Name)
		}
		if p.HTMLSize <= 0 || p.RenderDelay <= 0 || p.OnLoadDelay <= 0 || p.OriginRTT <= 0 {
			t.Errorf("%s: incomplete model: %+v", p.Name, p)
		}
	}
}

func TestSimplePagesAreLight(t *testing.T) {
	weight := func(p *Page) int {
		total := p.HTMLSize
		for _, r := range p.Resources {
			total += r.Size
		}
		return total
	}
	wiki := weight(ByName("wikipedia"))
	yt := weight(ByName("youtube"))
	if wiki*3 > yt {
		t.Errorf("wikipedia (%d B) not much lighter than youtube (%d B)", wiki, yt)
	}
}

func TestByName(t *testing.T) {
	if ByName("wikipedia") == nil {
		t.Error("wikipedia missing")
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName invented a page")
	}
}
