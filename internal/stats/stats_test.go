package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestMedianDuration(t *testing.T) {
	in := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	if got := MedianDuration(in); got != 2*time.Second {
		t.Errorf("got %v", got)
	}
	even := []time.Duration{time.Second, 3 * time.Second}
	if got := MedianDuration(even); got != 2*time.Second {
		t.Errorf("even: got %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 5.5 {
		t.Errorf("p50 = %v, want 5.5", got)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFQuantileMedian(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30})
	if got := c.Median(); got != 20 {
		t.Errorf("median = %v", got)
	}
}

// TestCDFQuantileMatchesPercentile pins the fast path that interpolates
// over the CDF's already-sorted samples to the batch Percentile
// definition.
func TestCDFQuantileMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	c := NewCDF(xs)
	for q := 0.0; q <= 1.0; q += 0.01 {
		if got, want := c.Quantile(q), Percentile(xs, q*100); got != want {
			t.Fatalf("Quantile(%v) = %v, want Percentile %v", q, got, want)
		}
	}
}

// TestMedianIntegerNoOverflow is the satellite regression: the even-
// length midpoint must not overflow for extreme values, as (a+b)/2 did.
func TestMedianIntegerNoOverflow(t *testing.T) {
	big := time.Duration(math.MaxInt64)
	if got := MedianDuration([]time.Duration{big - 1, big}); got != big-1 {
		t.Errorf("MedianDuration near MaxInt64 = %v, want %v", got, big-1)
	}
	if got := MedianInt([]int{math.MaxInt, math.MaxInt - 2}); got != math.MaxInt-1 {
		t.Errorf("MedianInt near MaxInt = %v, want %v", got, math.MaxInt-1)
	}
	if got := MedianInt([]int{math.MinInt, math.MinInt + 2}); got != math.MinInt+1 {
		t.Errorf("MedianInt near MinInt = %v, want %v", got, math.MinInt+1)
	}
}

func TestCDFPointsMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	pts := NewCDF(xs).Points(20)
	if len(pts) != 20 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] <= pts[i-1][1] {
			t.Fatalf("points not monotonic: %v", pts)
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Errorf("last point P = %v, want 1", pts[len(pts)-1][1])
	}
}

func TestRelDiff(t *testing.T) {
	if got := RelDiff(110, 100); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("RelDiff(110,100) = %v", got)
	}
	if got := RelDiff(90, 100); math.Abs(got+0.1) > 1e-9 {
		t.Errorf("RelDiff(90,100) = %v", got)
	}
	if got := RelDiff(5, 0); got != 0 {
		t.Errorf("RelDiff with zero baseline = %v", got)
	}
}

func TestPropertyMedianBetweenMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Median(clean)
		s := append([]float64(nil), clean...)
		sort.Float64s(s)
		return m >= s[0] && m <= s[len(s)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCDFAtMonotonic(t *testing.T) {
	f := func(xs []float64, probe1, probe2 float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if math.IsNaN(probe1) || math.IsNaN(probe2) {
			return true
		}
		c := NewCDF(clean)
		lo, hi := probe1, probe2
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1}, 0, 1)
	if len([]rune(s)) != 3 {
		t.Errorf("sparkline length = %d, want 3", len([]rune(s)))
	}
	r := []rune(s)
	if r[0] >= r[1] || r[1] >= r[2] {
		t.Errorf("sparkline not increasing: %q", s)
	}
}

func TestMeanAndMedianInt(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := MedianInt([]int{5, 1, 9}); got != 5 {
		t.Errorf("MedianInt = %v", got)
	}
}
