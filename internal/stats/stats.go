// Package stats provides the small statistical toolkit the evaluation
// needs: medians, percentiles, empirical CDFs, and relative-difference
// series, matching how the paper aggregates its measurements.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Median returns the median of xs (mean of the two central elements for
// even lengths). It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	// Midpoint form avoids overflow for extreme values.
	return s[n/2-1]/2 + s[n/2]/2
}

// integer constrains the integer-valued sample types the evaluation
// aggregates (byte counts, virtual-time durations).
type integer interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64
}

// midpoint returns the midpoint of a and b without overflowing, the
// integer analogue of Median's overflow-safe midpoint form. For an odd
// sum it rounds toward negative infinity.
func midpoint[T integer](a, b T) T {
	return (a & b) + ((a ^ b) >> 1)
}

// medianInteger is Median over any integer-valued sample type, sharing
// the overflow-safe midpoint with Median.
func medianInteger[T integer](xs []T) T {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]T(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if n%2 == 1 {
		return s[n/2]
	}
	return midpoint(s[n/2-1], s[n/2])
}

// MedianDuration is Median over durations.
func MedianDuration(xs []time.Duration) time.Duration { return medianInteger(xs) }

// MedianInt is Median over ints, returning an int.
func MedianInt(xs []int) int { return medianInteger(xs) }

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// percentileSorted is Percentile over an already-sorted slice, shared by
// Percentile and the CDF accessors so the latter do not re-copy and
// re-sort their samples on every call.
func percentileSorted(s []float64, p float64) float64 {
	n := len(s)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0..1). It interpolates directly
// over the CDF's sorted samples, so each call is O(1) rather than the
// O(n log n) copy-and-sort a Percentile call would pay.
func (c *CDF) Quantile(q float64) float64 {
	return percentileSorted(c.sorted, q*100)
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Points samples the CDF at n evenly spaced sample indices, returning
// (x, P(X<=x)) pairs suitable for plotting or table output.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 1; i <= n; i++ {
		q := float64(i) / float64(n)
		idx := int(q*float64(len(c.sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(c.sorted) {
			idx = len(c.sorted) - 1
		}
		out = append(out, [2]float64{c.sorted[idx], q})
	}
	return out
}

// RelDiff returns (x-baseline)/baseline, the paper's relative difference
// metric (e.g. "+10%" means 10% slower than the baseline protocol).
func RelDiff(x, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (x - baseline) / baseline
}

// RelDiffDurations computes RelDiff over duration medians.
func RelDiffDurations(x, baseline time.Duration) float64 {
	return RelDiff(float64(x), float64(baseline))
}

// Sparkline renders values (assumed in [lo, hi]) as a unicode mini-chart.
// It is used by the report package to draw CDF shapes in terminals.
func Sparkline(values []float64, lo, hi float64) string {
	if hi <= lo {
		hi = lo + 1
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, v := range values {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		idx := int(f * float64(len(ramp)-1))
		sb.WriteRune(ramp[idx])
	}
	return sb.String()
}

// FormatPct formats a fraction as a signed percentage.
func FormatPct(f float64) string {
	return fmt.Sprintf("%+.1f%%", f*100)
}
