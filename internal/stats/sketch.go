package stats

import (
	"math"
	"time"
)

// Sketch layout: one bucket per 1/sketchSubBuckets of an octave (a
// doubling), covering 2^sketchMinExp through 2^sketchMaxExp, plus a
// dedicated bucket for non-positive samples. The footprint is fixed at
// construction (~20 KiB), independent of how many samples stream
// through — the property that lets million-query campaigns aggregate
// per shard without holding samples.
const (
	sketchSubBuckets = 32
	sketchMinExp     = -16
	sketchMaxExp     = 64
	sketchBuckets    = (sketchMaxExp - sketchMinExp) * sketchSubBuckets
)

// SketchRelError bounds the relative error of Sketch.Quantile for
// positive samples: a bucket spans a 2^(1/32) ratio and the reported
// value is its geometric midpoint, so no in-range sample is misreported
// by more than half a bucket (~1.1%); callers should allow this much
// slack when comparing against exact order statistics.
const SketchRelError = 0.011

// Sketch is a fixed-memory streaming quantile summary: a log-bucketed
// histogram in the spirit of HDR histograms, sized for the evaluation's
// sample ranges (durations in nanoseconds, byte counts). Unlike CDF it
// never stores samples, so memory stays constant as campaigns grow by
// orders of magnitude, and two sketches merge exactly: feeding a sample
// stream through per-shard sketches and merging them (in any order)
// yields bit-identical counts — and therefore byte-identical reports —
// to streaming the whole campaign through one sketch.
type Sketch struct {
	counts []uint64
	// nonPos counts samples <= 0 (a lossless DoUDP resolve can be
	// measured as 0 on a cache hit answered in the same event).
	nonPos   uint64
	n        uint64
	sum      float64
	min, max float64
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{
		counts: make([]uint64, sketchBuckets),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// sketchIndex maps a positive sample to its bucket.
func sketchIndex(x float64) int {
	i := int(math.Floor(math.Log2(x)*sketchSubBuckets)) - sketchMinExp*sketchSubBuckets
	if i < 0 {
		i = 0
	}
	if i >= sketchBuckets {
		i = sketchBuckets - 1
	}
	return i
}

// sketchValue is the representative value of bucket i: the geometric
// midpoint of the bucket's edges.
func sketchValue(i int) float64 {
	exp := (float64(i)+0.5)/sketchSubBuckets + sketchMinExp
	return math.Exp2(exp)
}

// Add records one sample.
func (s *Sketch) Add(x float64) {
	s.n++
	s.sum += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if x <= 0 {
		s.nonPos++
		return
	}
	s.counts[sketchIndex(x)]++
}

// AddDuration records a duration sample in nanoseconds.
func (s *Sketch) AddDuration(d time.Duration) { s.Add(float64(d)) }

// N returns the number of recorded samples.
func (s *Sketch) N() int { return int(s.n) }

// Sum returns the sum of all samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, 0 for an empty sketch.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min and Max are exact (tracked outside the buckets).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest recorded sample, 0 for an empty sketch.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Quantile returns the q-th quantile (0..1) as the smallest recorded
// bucket whose cumulative count reaches ceil(q*n) — the order-statistic
// definition — with at most SketchRelError relative error for positive
// samples. Quantile(0) and Quantile(1) are the exact min and max.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	target := uint64(math.Ceil(q * float64(s.n)))
	if target < 1 {
		target = 1
	}
	if target > s.n {
		target = s.n
	}
	cum := s.nonPos
	if cum >= target {
		// The quantile falls among the non-positive samples; min bounds
		// them from below and 0 from above.
		return s.min
	}
	for i, c := range s.counts {
		cum += c
		if cum >= target {
			v := sketchValue(i)
			// The exact extremes sharpen the outermost buckets.
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// QuantileDuration returns Quantile over duration samples.
func (s *Sketch) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// Median returns the 0.5 quantile.
func (s *Sketch) Median() float64 { return s.Quantile(0.5) }

// MedianDuration returns the 0.5 quantile as a duration.
func (s *Sketch) MedianDuration() time.Duration { return s.QuantileDuration(0.5) }

// Merge folds o into s. Bucket counts, N, min and max — and therefore
// every Quantile — merge exactly and order-independently, which is what
// keeps sharded campaigns byte-identical at any parallelism. Sum is
// float addition and therefore order-sensitive in its last bits, so
// campaigns must merge per-shard sketches in shard order (they do: the
// gather step is ordered by shard index).
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.nonPos += o.nonPos
	s.n += o.n
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}
