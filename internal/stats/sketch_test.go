package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSketchEmpty(t *testing.T) {
	s := NewSketch()
	if s.N() != 0 || s.Quantile(0.5) != 0 || s.Median() != 0 || s.Mean() != 0 {
		t.Errorf("empty sketch not all-zero: n=%d q50=%v mean=%v", s.N(), s.Quantile(0.5), s.Mean())
	}
}

func TestSketchMinMaxExact(t *testing.T) {
	s := NewSketch()
	for _, x := range []float64{3, 0.125, 900, 41, 7} {
		s.Add(x)
	}
	if s.Min() != 0.125 || s.Max() != 900 {
		t.Errorf("min=%v max=%v, want 0.125/900", s.Min(), s.Max())
	}
	if got := s.Quantile(0); got != 0.125 {
		t.Errorf("Quantile(0) = %v, want exact min", got)
	}
	if got := s.Quantile(1); got != 900 {
		t.Errorf("Quantile(1) = %v, want exact max", got)
	}
}

func TestSketchNonPositiveSamples(t *testing.T) {
	s := NewSketch()
	s.Add(0)
	s.Add(0)
	s.Add(0)
	s.Add(10)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median of {0,0,0,10} = %v, want 0", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("max = %v", got)
	}
}

// exactOrderStat returns the order statistic Sketch.Quantile targets:
// the ceil(q*n)-th smallest sample.
func exactOrderStat(sorted []float64, q float64) float64 {
	k := int(math.Ceil(q * float64(len(sorted))))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1]
}

// TestSketchQuantileErrorBound checks the documented guarantee: for
// positive in-range samples every quantile is within SketchRelError of
// the exact order statistic.
func TestSketchQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSketch()
	xs := make([]float64, 4096)
	for i := range xs {
		// Log-uniform over ~9 orders of magnitude.
		xs[i] = math.Exp2(rng.Float64()*30 - 5)
		s.Add(xs[i])
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		exact := exactOrderStat(xs, q)
		got := s.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > SketchRelError+1e-9 {
			t.Errorf("q=%v: sketch %v vs exact %v (rel err %.4f > %.4f)", q, got, exact, rel, SketchRelError)
		}
	}
}

// TestPropertySketchConvergesToPercentile is the satellite property
// test: on the same samples, the streaming sketch's quantiles converge
// to stats.Percentile (the interpolated batch definition) — within the
// bucket resolution plus the gap between adjacent order statistics.
func TestPropertySketchConvergesToPercentile(t *testing.T) {
	f := func(raw []float64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a positive in-range sample set: cleaned quick-check
		// values plus enough lognormal filler for stable percentiles.
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > math.Exp2(sketchMinExp) && x < math.Exp2(sketchMaxExp) && !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		for len(xs) < 3000 {
			xs = append(xs, math.Exp(rng.NormFloat64()))
		}
		s := NewSketch()
		for _, x := range xs {
			s.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			exact := Percentile(xs, q*100)
			got := s.Quantile(q)
			// The interpolated percentile lies between two adjacent
			// order statistics; the sketch reports one of them to
			// within SketchRelError. Bound the total disagreement by
			// the wider of the two neighbours' spread plus the bucket
			// error.
			k := int(math.Ceil(q * float64(len(sorted))))
			lo, hi := sorted[maxInt(k-2, 0)], sorted[minInt(k, len(sorted)-1)]
			slack := (hi - lo) + exact*SketchRelError + 1e-12
			if math.Abs(got-exact) > slack {
				t.Logf("q=%v: sketch %v vs percentile %v (slack %v)", q, got, exact, slack)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSketchMergeExact checks the determinism-bearing property: feeding
// a stream through per-shard sketches and merging equals one sketch fed
// the whole stream, exactly — not approximately.
func TestSketchMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64() * 2)
	}
	whole := NewSketch()
	for _, x := range xs {
		whole.Add(x)
	}
	const shards = 7
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = NewSketch()
	}
	for i, x := range xs {
		parts[i%shards].Add(x)
	}
	// Merge in a scrambled order: the result must not depend on it.
	merged := NewSketch()
	for _, i := range []int{3, 0, 6, 1, 5, 2, 4} {
		merged.Merge(parts[i])
	}
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merge lost samples: n=%d/%d", merged.N(), whole.N())
	}
	// Sum is float addition, which is not associative: only counts,
	// min/max and therefore quantiles are exactly order-independent.
	if rel := math.Abs(merged.Sum()-whole.Sum()) / whole.Sum(); rel > 1e-9 {
		t.Fatalf("merged sum %v vs whole %v", merged.Sum(), whole.Sum())
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		if a, b := merged.Quantile(q), whole.Quantile(q); a != b {
			t.Errorf("q=%v: merged %v != whole %v", q, a, b)
		}
	}
}

func TestSketchDurations(t *testing.T) {
	s := NewSketch()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		s.AddDuration(d)
	}
	med := s.MedianDuration()
	if med < 1900*time.Microsecond || med > 2100*time.Microsecond {
		t.Errorf("median duration %v, want ~2ms", med)
	}
}

// BenchmarkSketchAdd pins the streaming hot path: zero allocations per
// sample.
func BenchmarkSketchAdd(b *testing.B) {
	s := NewSketch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i%1000+1) * 1e6)
	}
}
