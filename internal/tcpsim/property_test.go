package tcpsim

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// TestPropertyStreamIntegrity drives random write patterns through a
// lossy, jittery (reordering) path and requires byte-exact in-order
// delivery — the invariant the whole TLS/DoT/DoH stack rests on.
func TestPropertyStreamIntegrity(t *testing.T) {
	f := func(seed int64, chunkSeed uint8) bool {
		w := sim.NewWorld(seed)
		n := netem.NewNetwork(w)
		a := n.Host(netip.MustParseAddr("10.0.0.1"))
		b := n.Host(netip.MustParseAddr("10.0.0.2"))
		n.SetSymmetricPath(a.Addr(), b.Addr(), netem.PathParams{
			Delay:  8 * time.Millisecond,
			Jitter: 4 * time.Millisecond, // reordering
			Loss:   0.05,
		})
		rng := rand.New(rand.NewSource(seed ^ int64(chunkSeed)))
		var sent []byte
		nChunks := 1 + rng.Intn(8)
		chunks := make([][]byte, nChunks)
		for i := range chunks {
			c := make([]byte, 1+rng.Intn(3*MSS))
			rng.Read(c)
			chunks[i] = c
			sent = append(sent, c...)
		}

		l, err := Listen(b, 53)
		if err != nil {
			return false
		}
		var received []byte
		w.Go(func() {
			conn, ok := l.Accept()
			if !ok {
				return
			}
			for {
				data, ok := conn.Read()
				if !ok {
					return
				}
				received = append(received, data...)
			}
		})
		w.Go(func() {
			conn, err := Dial(a, l.Addr())
			if err != nil {
				return
			}
			for _, c := range chunks {
				conn.Write(c)
				if rng.Intn(2) == 0 {
					w.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
				}
			}
			conn.Close()
		})
		w.Run()
		return bytes.Equal(received, sent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
