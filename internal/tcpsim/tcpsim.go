// Package tcpsim implements a simplified TCP over netem: 3-way
// handshake, cumulative-ACK reliable byte stream with go-back-N
// retransmission, RFC 6298-style RTO with the standard 1-second initial
// timeout (which the paper contrasts with DoUDP's 5-second
// application-layer retransmit), and FIN teardown.
//
// Segment layout on the wire: flags(1) seq(4) ack(4) padding. Headers are
// padded to 32 bytes (20-byte TCP header plus common options such as
// timestamps), 40 bytes for SYN/SYN-ACK, matching what the paper's
// Table 1 counts as IP payload for the DoTCP handshake (72 bytes
// client-to-resolver: SYN 40 + ACK 32; 40 bytes back: SYN-ACK).
//
// TCP Fast Open is intentionally not implemented: the paper found no
// resolver supporting it, so every connection pays the full round trip.
package tcpsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"maps"
	"net/netip"
	"slices"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

// Wire sizes.
const (
	headerLen    = 32 // TCP header + options (timestamps)
	synHeaderLen = 40 // SYN carries more options (MSS, SACK, WScale)
	// MSS is the maximum payload per segment.
	MSS = 1380
)

// Retransmission parameters (RFC 6298 flavoured).
const (
	initialRTO = 1 * time.Second
	minRTO     = 200 * time.Millisecond
	maxRTO     = 60 * time.Second
	maxRetries = 8
)

// Segment flags.
const (
	flagSYN = 1 << iota
	flagACK
	flagFIN
	flagRST
)

type segment struct {
	flags   uint8
	seq     uint32
	ack     uint32
	payload []byte
}

// appendSegment encodes s into b, which must be an empty slice with
// enough capacity (wire buffers are leased from the socket's pool, so
// per-segment encodes allocate nothing).
//
//simlint:hotpath
func appendSegment(b []byte, s segment) []byte {
	n := headerLen
	if s.flags&flagSYN != 0 {
		n = synHeaderLen
	}
	b = b[:n+len(s.payload)]
	clear(b[:n]) // header padding must not leak pooled bytes
	b[0] = s.flags
	binary.BigEndian.PutUint32(b[1:5], s.seq)
	binary.BigEndian.PutUint32(b[5:9], s.ack)
	b[9] = byte(n) // header length marker
	copy(b[n:], s.payload)
	return b
}

// wireSize is the encoded size of s.
func wireSize(s segment) int {
	if s.flags&flagSYN != 0 {
		return synHeaderLen + len(s.payload)
	}
	return headerLen + len(s.payload)
}

func decodeSegment(b []byte) (segment, error) {
	if len(b) < 10 {
		return segment{}, errors.New("tcpsim: short segment")
	}
	hl := int(b[9])
	if hl < 10 || hl > len(b) {
		return segment{}, errors.New("tcpsim: bad header length")
	}
	return segment{
		flags:   b[0],
		seq:     binary.BigEndian.Uint32(b[1:5]),
		ack:     binary.BigEndian.Uint32(b[5:9]),
		payload: append([]byte(nil), b[hl:]...),
	}, nil
}

// Conn is an established TCP connection. It satisfies tlsmini.Stream.
type Conn struct {
	w     *sim.World
	sock  *netem.Socket // client: own socket; server: shared via listener
	owned bool          // whether Close should close sock
	peer  netip.AddrPort

	sndNxt uint32
	sndUna uint32
	rcvNxt uint32

	rtxq     []segment
	rtxTimer sim.Timer
	rtxFn    func() // onRtxTimeout, bound once so re-arming allocates nothing
	rto      time.Duration
	retries  int
	srtt     time.Duration
	sentAt   map[uint32]time.Duration // seq -> send time for RTT samples

	readQ    *sim.Queue[[]byte]
	ooo      map[uint32]segment  // out-of-order segments by sequence
	incoming *sim.Queue[segment] // server-side demuxed segments
	onClose  func()              // listener's demux-map removal hook
	dead     bool
	sentFIN  bool
	gotFIN   bool
}

// Stats returns the client-side byte counters of the underlying socket
// (IP payload bytes, per the paper's accounting). Only meaningful for
// dialed connections, which own their socket.
func (c *Conn) Stats() (tx, rx int) {
	return c.sock.TxBytes, c.sock.RxBytes
}

// LocalAddr returns the local endpoint.
func (c *Conn) LocalAddr() netip.AddrPort { return c.sock.LocalAddr() }

// RemoteAddr returns the peer endpoint.
func (c *Conn) RemoteAddr() netip.AddrPort { return c.peer }

func newConn(w *sim.World, sock *netem.Socket, owned bool, peer netip.AddrPort) *Conn {
	c := &Conn{
		w:      w,
		sock:   sock,
		owned:  owned,
		peer:   peer,
		rto:    initialRTO,
		sentAt: make(map[uint32]time.Duration),
		readQ:  sim.NewQueue[[]byte](w, "tcp-read"),
		ooo:    make(map[uint32]segment),
	}
	c.rtxFn = c.onRtxTimeout
	return c
}

// Dial establishes a connection from host to raddr. It blocks on the
// virtual clock for the 3-way handshake (one RTT), retransmitting the SYN
// with exponential backoff on loss.
func Dial(host *netem.Host, raddr netip.AddrPort) (*Conn, error) {
	w := host.World()
	sock := host.Dial(netem.ProtoTCP, 0) // overhead folded into padded headers
	c := newConn(w, sock, true, raddr)
	c.sndNxt = 1
	c.rcvNxt = 0

	rto := initialRTO
	for attempt := 0; ; attempt++ {
		if attempt > maxRetries {
			sock.Close()
			return nil, errors.New("tcpsim: connect timeout")
		}
		syn := segment{flags: flagSYN, seq: 0}
		sock.Send(raddr, appendSegment(sock.Pool().Get(wireSize(syn)), syn))
		d, ok := sock.RecvTimeout(rto)
		if !ok {
			rto *= 2
			continue
		}
		if d.Reject {
			// Middlebox rejected the SYN (administratively prohibited):
			// fail fast instead of burning the retransmit budget.
			sock.Close()
			return nil, errors.New("tcpsim: connection refused")
		}
		seg, err := decodeSegment(d.Payload)
		sock.Pool().Put(d.Payload)
		if err != nil || seg.flags&(flagSYN|flagACK) != flagSYN|flagACK {
			continue
		}
		c.rcvNxt = seg.seq + 1
		break
	}
	c.sndUna = 1
	// Third handshake segment: pure ACK.
	ack := segment{flags: flagACK, seq: c.sndNxt, ack: c.rcvNxt}
	sock.Send(raddr, appendSegment(sock.Pool().Get(wireSize(ack)), ack))
	w.Go(c.clientLoop)
	return c, nil
}

func (c *Conn) clientLoop() {
	for {
		d, ok := c.sock.Recv()
		if !ok {
			c.teardown()
			return
		}
		if d.Reject {
			// A mid-connection rejection (policy flipped on): the path is
			// administratively dead, so tear down like an RST.
			c.teardown()
			return
		}
		seg, err := decodeSegment(d.Payload)
		c.sock.Pool().Put(d.Payload)
		if err != nil {
			continue
		}
		c.handleSegment(seg)
		if c.dead {
			return
		}
	}
}

// serverLoop drains segments demuxed by the listener.
func (c *Conn) serverLoop() {
	for {
		seg, ok := c.incoming.Pop()
		if !ok {
			c.teardown()
			return
		}
		c.handleSegment(seg)
		if c.dead {
			return
		}
	}
}

func (c *Conn) handleSegment(seg segment) {
	if seg.flags&flagRST != 0 {
		c.teardown()
		return
	}
	if seg.flags&flagACK != 0 {
		c.processAck(seg.ack)
	}
	if len(seg.payload) > 0 || seg.flags&flagFIN != 0 {
		c.processData(seg)
	}
}

func (c *Conn) processAck(ack uint32) {
	if ack <= c.sndUna {
		return
	}
	if at, ok := c.sentAt[ack]; ok {
		sample := c.w.Now() - at
		if c.srtt == 0 {
			c.srtt = sample
		} else {
			c.srtt = (7*c.srtt + sample) / 8
		}
		rto := 2*c.srtt + 50*time.Millisecond
		if rto < minRTO {
			rto = minRTO
		}
		c.rto = rto
		delete(c.sentAt, ack)
	}
	c.sndUna = ack
	// Drop fully acknowledged segments from the retransmission queue.
	keep := c.rtxq[:0]
	for _, s := range c.rtxq {
		end := s.seq + uint32(len(s.payload))
		if s.flags&flagFIN != 0 {
			end++
		}
		if end > ack {
			keep = append(keep, s)
		}
	}
	c.rtxq = keep
	c.retries = 0
	c.rearmRtx()
}

func (c *Conn) processData(seg segment) {
	switch {
	case seg.seq == c.rcvNxt:
		c.deliver(seg)
		// Drain any buffered continuation.
		for {
			next, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.deliver(next)
		}
		c.sendAck()
	case seg.seq < c.rcvNxt:
		// Duplicate (retransmission already received): re-ACK.
		c.sendAck()
	default:
		// Out of order (reordering or loss): buffer until the gap fills,
		// and send a duplicate ACK so the sender can recover the hole.
		c.ooo[seg.seq] = seg
		c.sendAck()
	}
}

// deliver consumes an in-sequence segment.
func (c *Conn) deliver(seg segment) {
	if len(seg.payload) > 0 {
		c.rcvNxt = seg.seq + uint32(len(seg.payload))
		c.readQ.Push(seg.payload)
	}
	if seg.flags&flagFIN != 0 {
		c.rcvNxt++
		c.gotFIN = true
		c.readQ.Close()
	}
}

//simlint:hotpath
func (c *Conn) sendAck() {
	c.send(segment{flags: flagACK, seq: c.sndNxt, ack: c.rcvNxt})
}

//simlint:hotpath
func (c *Conn) send(s segment) {
	c.sock.Send(c.peer, appendSegment(c.sock.Pool().Get(wireSize(s)), s))
}

// Write queues p for reliable delivery, segmenting at MSS.
func (c *Conn) Write(p []byte) error {
	if c.dead {
		return errors.New("tcpsim: connection closed")
	}
	if c.sentFIN {
		return errors.New("tcpsim: write after close")
	}
	for off := 0; off < len(p); off += MSS {
		end := off + MSS
		if end > len(p) {
			end = len(p)
		}
		chunk := append([]byte(nil), p[off:end]...)
		s := segment{flags: flagACK, seq: c.sndNxt, ack: c.rcvNxt, payload: chunk}
		c.sndNxt += uint32(len(chunk))
		c.rtxq = append(c.rtxq, s)
		c.sentAt[c.sndNxt] = c.w.Now()
		c.send(s)
	}
	c.rearmRtx()
	return nil
}

// Read blocks for the next chunk of received bytes; ok is false once the
// peer's FIN has been consumed or the connection died.
func (c *Conn) Read() ([]byte, bool) { return c.readQ.Pop() }

// ReadTimeout is Read with a virtual-time deadline.
func (c *Conn) ReadTimeout(d time.Duration) ([]byte, bool) { return c.readQ.PopTimeout(d) }

// Abort tears the connection down immediately without the FIN exchange:
// pending and future reads fail at once, and nothing in flight is
// waited for. This is what the 4-tuple's death looks like from above
// when the host's address changes underneath it (an access-network
// flip): the peer's in-flight bytes can never arrive, and the local
// stack surfaces the break synchronously.
func (c *Conn) Abort() {
	c.teardown()
}

// Close sends FIN and releases resources once the retransmission queue
// drains. It does not linger waiting for the peer's FIN.
func (c *Conn) Close() {
	if c.dead || c.sentFIN {
		return
	}
	c.sentFIN = true
	s := segment{flags: flagACK | flagFIN, seq: c.sndNxt, ack: c.rcvNxt}
	c.sndNxt++
	c.rtxq = append(c.rtxq, s)
	c.send(s)
	c.rearmRtx()
	// Allow in-flight retransmissions to finish; the conn fully tears
	// down when the FIN is acknowledged or retries are exhausted.
}

func (c *Conn) rearmRtx() {
	c.rtxTimer.Stop()
	c.rtxTimer = sim.Timer{}
	if len(c.rtxq) == 0 {
		if c.sentFIN {
			c.teardown()
		}
		return
	}
	c.rtxTimer = c.w.AfterFunc(c.rto, c.rtxFn)
}

func (c *Conn) onRtxTimeout() {
	if c.dead || len(c.rtxq) == 0 {
		return
	}
	c.retries++
	if c.retries > maxRetries {
		c.teardown()
		return
	}
	// Go-back-N: resend everything outstanding.
	for _, s := range c.rtxq {
		s.ack = c.rcvNxt
		c.send(s)
	}
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	c.rearmRtx()
}

func (c *Conn) teardown() {
	if c.dead {
		return
	}
	c.dead = true
	c.rtxTimer.Stop()
	c.rtxTimer = sim.Timer{}
	c.readQ.Close()
	if c.incoming != nil {
		c.incoming.Close()
	}
	if c.owned {
		c.sock.Close()
	}
	if c.onClose != nil {
		c.onClose()
	}
}

// Listener accepts incoming connections on a port.
type Listener struct {
	w       *sim.World
	sock    *netem.Socket
	conns   map[netip.AddrPort]*Conn
	acceptQ *sim.Queue[*Conn]
	closed  bool
}

// Listen binds a listener to port on host and starts its demux task.
func Listen(host *netem.Host, port uint16) (*Listener, error) {
	sock, err := host.Listen(netem.ProtoTCP, port, 0)
	if err != nil {
		return nil, err
	}
	l := &Listener{
		w:       host.World(),
		sock:    sock,
		conns:   make(map[netip.AddrPort]*Conn),
		acceptQ: sim.NewQueue[*Conn](host.World(), fmt.Sprintf("tcp-accept:%d", port)),
	}
	l.w.Go(l.demux)
	return l, nil
}

func (l *Listener) demux() {
	for {
		d, ok := l.sock.Recv()
		if !ok {
			// Close connections in a fixed (peer-address) order: map
			// iteration order would wake blocked tasks nondeterministically.
			for _, ap := range slices.SortedFunc(maps.Keys(l.conns), netip.AddrPort.Compare) {
				l.conns[ap].incoming.Close()
			}
			l.acceptQ.Close()
			return
		}
		if d.Reject {
			// Rejection notification for one of our sends; the listener
			// keeps serving other peers.
			continue
		}
		seg, err := decodeSegment(d.Payload)
		l.sock.Pool().Put(d.Payload)
		if err != nil {
			continue
		}
		conn, exists := l.conns[d.Src]
		if !exists {
			if seg.flags&flagSYN == 0 {
				// Stray segment for a finished connection.
				continue
			}
			conn = newConn(l.w, l.sock, false, d.Src)
			conn.rcvNxt = seg.seq + 1
			conn.sndNxt = 1
			conn.sndUna = 0
			// Static queue name: conns are created per query on hot paths.
			conn.incoming = sim.NewQueue[segment](l.w, "tcp-in")
			src := d.Src
			conn.onClose = func() { delete(l.conns, src) }
			l.conns[d.Src] = conn
			conn.send(segment{flags: flagSYN | flagACK, seq: 0, ack: conn.rcvNxt})
			l.w.Go(conn.serverLoop)
			l.acceptQ.Push(conn)
			continue
		}
		if seg.flags&flagSYN != 0 {
			// SYN retransmission: re-send SYN-ACK.
			conn.send(segment{flags: flagSYN | flagACK, seq: 0, ack: conn.rcvNxt})
			continue
		}
		conn.incoming.Push(seg)
	}
}

// Accept blocks for the next incoming connection; ok is false once the
// listener is closed.
func (l *Listener) Accept() (*Conn, bool) { return l.acceptQ.Pop() }

// Close shuts the listener and all its connections' demux queues.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	l.sock.Close()
}

// Addr returns the listening address.
func (l *Listener) Addr() netip.AddrPort { return l.sock.LocalAddr() }
