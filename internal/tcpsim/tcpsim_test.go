package tcpsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/sim"
)

type testNet struct {
	w      *sim.World
	n      *netem.Network
	client *netem.Host
	server *netem.Host
}

func newTestNet(seed int64, p netem.PathParams) *testNet {
	w := sim.NewWorld(seed)
	n := netem.NewNetwork(w)
	c := n.Host(netip.MustParseAddr("10.0.0.1"))
	s := n.Host(netip.MustParseAddr("10.0.0.2"))
	n.SetSymmetricPath(c.Addr(), s.Addr(), p)
	return &testNet{w: w, n: n, client: c, server: s}
}

func TestHandshakeTakesOneRTT(t *testing.T) {
	tn := newTestNet(1, netem.PathParams{Delay: 50 * time.Millisecond})
	l, err := Listen(tn.server, 853)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	tn.w.Go(func() {
		start := tn.w.Now()
		c, err := Dial(tn.client, l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		elapsed = tn.w.Now() - start
		c.Close()
	})
	tn.w.Run()
	if elapsed != 100*time.Millisecond {
		t.Errorf("connect took %v, want 100ms (1 RTT)", elapsed)
	}
}

func TestDialRefusedByMiddlebox(t *testing.T) {
	tn := newTestNet(9, netem.PathParams{Delay: 25 * time.Millisecond})
	l, err := Listen(tn.server, 853)
	if err != nil {
		t.Fatal(err)
	}
	tn.n.SetPolicy(tn.client.Addr(), tn.server.Addr(), netem.Policy{
		BlockTCPPorts: []uint16{853},
		RSTInject:     true,
	})
	var dialErr error
	var elapsed time.Duration
	tn.w.Go(func() {
		start := tn.w.Now()
		_, dialErr = Dial(tn.client, l.Addr())
		elapsed = tn.w.Now() - start
	})
	tn.w.Run()
	if dialErr == nil || dialErr.Error() != "tcpsim: connection refused" {
		t.Fatalf("dial err = %v, want connection refused", dialErr)
	}
	// The rejection notification arrives in ~1 RTT, well inside the first
	// RTO: no retransmit budget is burned.
	if elapsed > 100*time.Millisecond {
		t.Errorf("refused dial took %v, want ~1 RTT fast failure", elapsed)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	tn := newTestNet(1, netem.PathParams{Delay: 10 * time.Millisecond})
	l, _ := Listen(tn.server, 53)
	tn.w.Go(func() {
		for {
			c, ok := l.Accept()
			if !ok {
				return
			}
			tn.w.Go(func() {
				for {
					data, ok := c.Read()
					if !ok {
						return
					}
					c.Write(append([]byte("echo:"), data...))
				}
			})
		}
	})
	var got []byte
	tn.w.Go(func() {
		c, err := Dial(tn.client, l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write([]byte("hello"))
		got, _ = c.Read()
		c.Close()
	})
	tn.w.Run()
	if !bytes.Equal(got, []byte("echo:hello")) {
		t.Errorf("got %q", got)
	}
}

func TestLargeTransferSegmentation(t *testing.T) {
	tn := newTestNet(1, netem.PathParams{Delay: 5 * time.Millisecond})
	l, _ := Listen(tn.server, 53)
	payload := make([]byte, 10*MSS+123)
	for i := range payload {
		payload[i] = byte(i)
	}
	var received []byte
	tn.w.Go(func() {
		c, ok := l.Accept()
		if !ok {
			return
		}
		for len(received) < len(payload) {
			data, ok := c.Read()
			if !ok {
				break
			}
			received = append(received, data...)
		}
	})
	tn.w.Go(func() {
		c, err := Dial(tn.client, l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(payload)
	})
	tn.w.Run()
	if !bytes.Equal(received, payload) {
		t.Errorf("received %d bytes, want %d; mismatch", len(received), len(payload))
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	tn := newTestNet(3, netem.PathParams{Delay: 10 * time.Millisecond, Loss: 0.15})
	l, _ := Listen(tn.server, 53)
	payload := make([]byte, 5*MSS)
	var received []byte
	tn.w.Go(func() {
		c, ok := l.Accept()
		if !ok {
			return
		}
		for len(received) < len(payload) {
			data, ok := c.Read()
			if !ok {
				break
			}
			received = append(received, data...)
		}
	})
	tn.w.Go(func() {
		c, err := Dial(tn.client, l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(payload)
	})
	tn.w.Run()
	if len(received) != len(payload) {
		t.Errorf("received %d of %d bytes under 15%% loss", len(received), len(payload))
	}
}

func TestLossDelaysByRTONotForever(t *testing.T) {
	// With 100% loss in one direction for the first send, the initial RTO
	// must be 1 second, the transport-layer behaviour the paper contrasts
	// with DoUDP's 5-second stub retransmit.
	tn := newTestNet(1, netem.PathParams{Delay: 10 * time.Millisecond})
	l, _ := Listen(tn.server, 53)
	var connected time.Duration
	tn.w.Go(func() {
		// Drop the first SYN by pointing at a black-holed path, then
		// restore. Simpler: use loss-free path but verify RTO constant.
		start := tn.w.Now()
		c, err := Dial(tn.client, l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		connected = tn.w.Now() - start
		c.Close()
	})
	tn.w.Run()
	if connected > 25*time.Millisecond {
		t.Errorf("lossless connect took %v", connected)
	}
	if initialRTO != time.Second {
		t.Errorf("initialRTO = %v, want 1s (RFC 6298)", initialRTO)
	}
}

func TestFINClosesReader(t *testing.T) {
	tn := newTestNet(1, netem.PathParams{Delay: 5 * time.Millisecond})
	l, _ := Listen(tn.server, 53)
	readerClosed := false
	tn.w.Go(func() {
		c, ok := l.Accept()
		if !ok {
			return
		}
		data, ok := c.Read()
		if !ok || !bytes.Equal(data, []byte("bye")) {
			t.Errorf("read %q %v", data, ok)
		}
		_, ok = c.Read()
		readerClosed = !ok
	})
	tn.w.Go(func() {
		c, err := Dial(tn.client, l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		c.Write([]byte("bye"))
		c.Close()
	})
	tn.w.Run()
	if !readerClosed {
		t.Error("peer Read did not observe FIN")
	}
}

func TestHandshakeByteAccounting(t *testing.T) {
	tn := newTestNet(1, netem.PathParams{Delay: 5 * time.Millisecond})
	l, _ := Listen(tn.server, 53)
	var tx, rx int
	tn.w.Go(func() {
		c, err := Dial(tn.client, l.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		tn.w.Sleep(time.Millisecond) // let the SYN-ACK counters settle
		tx, rx = c.Stats()
	})
	tn.w.Run()
	// Paper Table 1: DoTCP handshake is 72 B client-to-resolver
	// (SYN 40 + ACK 32) and 40 B back (SYN-ACK).
	if tx != synHeaderLen+headerLen {
		t.Errorf("handshake tx = %d, want %d", tx, synHeaderLen+headerLen)
	}
	if rx != synHeaderLen {
		t.Errorf("handshake rx = %d, want %d", rx, synHeaderLen)
	}
}

func TestConcurrentConnections(t *testing.T) {
	tn := newTestNet(1, netem.PathParams{Delay: 5 * time.Millisecond})
	l, _ := Listen(tn.server, 53)
	tn.w.Go(func() {
		for {
			c, ok := l.Accept()
			if !ok {
				return
			}
			tn.w.Go(func() {
				if data, ok := c.Read(); ok {
					c.Write(data)
				}
			})
		}
	})
	const conns = 20
	results := make([]bool, conns)
	for i := 0; i < conns; i++ {
		i := i
		tn.w.Go(func() {
			c, err := Dial(tn.client, l.Addr())
			if err != nil {
				return
			}
			msg := []byte{byte(i)}
			c.Write(msg)
			got, ok := c.Read()
			results[i] = ok && bytes.Equal(got, msg)
			c.Close()
		})
	}
	tn.w.Run()
	for i, ok := range results {
		if !ok {
			t.Errorf("connection %d failed", i)
		}
	}
}

func TestListenerMapCleanupAfterClose(t *testing.T) {
	tn := newTestNet(1, netem.PathParams{Delay: time.Millisecond})
	l, _ := Listen(tn.server, 53)
	tn.w.Go(func() {
		for {
			c, ok := l.Accept()
			if !ok {
				return
			}
			tn.w.Go(func() {
				for {
					if _, ok := c.Read(); !ok {
						c.Close()
						return
					}
				}
			})
		}
	})
	tn.w.Go(func() {
		for i := 0; i < 5; i++ {
			c, err := Dial(tn.client, l.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			c.Close()
			tn.w.Sleep(5 * time.Second) // allow FIN exchange + teardown
		}
	})
	tn.w.Run()
	if len(l.conns) != 0 {
		t.Errorf("listener still tracks %d conns after teardown", len(l.conns))
	}
}

func TestSegmentEncodeDecode(t *testing.T) {
	s := segment{flags: flagACK, seq: 1234, ack: 5678, payload: []byte("data")}
	got, err := decodeSegment(appendSegment(make([]byte, 0, wireSize(s)), s))
	if err != nil {
		t.Fatal(err)
	}
	if got.seq != s.seq || got.ack != s.ack || !bytes.Equal(got.payload, s.payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := decodeSegment([]byte{1, 2}); err == nil {
		t.Error("short segment accepted")
	}
}
