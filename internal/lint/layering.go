package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// Layering reports direct sim.World references from protocol packages.
var Layering = &analysis.Analyzer{
	Name: "layering",
	Doc: `forbid direct sim.World references in protocol packages

The ROADMAP's multi-backend refactor needs protocol code (dnsmsg, dox,
h2, h3, quic, tcpsim, tlsmini, dnsproxy) written against a narrow
scheduling interface rather than the concrete simulation kernel, so that
the same protocol machines can run on a different backend. Every
reference to the sim.World type from a protocol package is reported;
cmd/simlint ratchets the count against the committed baseline
(internal/lint/layering_baseline.txt): existing debt is tolerated, new
debt fails the build. Shrink the baseline as references are removed.`,
	Run: runLayering,
}

func runLayering(pass *analysis.Pass) error {
	if !isProtocolPkg(pass.Pkg.Path()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != "World" {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		if isSimPkgPath(obj.Pkg().Path()) {
			pass.Reportf(id.Pos(), "protocol package %s references sim.World directly; depend on a narrower scheduling interface (layering ratchet)", pass.Pkg.Name())
		}
		return true
	})
	return nil
}
