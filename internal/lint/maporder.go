package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// MapOrder flags order-dependent effects inside map iteration.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: `flag map-range loops with order-dependent effects

Go randomizes map iteration order, so a map-range loop that appends to a
slice, writes output, or schedules simulation work bakes nondeterminism
into results — the exact shape of the PR 1 wakeup bug, where failure
paths woke blocked tasks in map order. Order-independent bodies
(aggregation, writes into another map, deletes) are fine, as is the
collect-keys-then-sort idiom: an append whose target is sorted later in
the same block is not flagged. Prefer iterating report.SortedKeys(m).`,
	Run: runMapOrder,
}

// orderedSinkMethods are method names whose invocation inside a map
// range emits in iteration order: stream/builder writes and sim
// scheduling. The receiver package narrows the sim set below.
var simScheduleMethods = map[string]bool{
	"Go": true, "GoCall": true, "AfterFunc": true, "AfterCall": true, "Push": true,
}

// netapiWakeMethods are backend-seam calls that schedule or wake work
// in call order: the Runtime spawn/timer surface plus Future and Event
// completion, which wake parked tasks. Backend-seam consumers (dox,
// racing) hit the same PR 1 wakeup-bug shape through the seam that
// kernel code hits through sim.World — failing a pending-query map in
// range order wakes tasks in map order.
var netapiWakeMethods = map[string]bool{
	"Go": true, "GoCall": true, "AfterFunc": true,
	"Resolve": true, "Fail": true, "Complete": true,
}

var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Add": true, // report.Table.Add builds output rows in call order
}

// fmtOutputFuncs write formatted output in call order.
var fmtOutputFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkMapRanges(pass, fn.Body)
			return true
		})
	}
	return nil
}

// checkMapRanges walks a function body looking for map-range statements,
// keeping track of the statement list that encloses each so the
// sorted-later suppression can look at the loop's siblings.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	var walkStmts func(list []ast.Stmt)
	var walkStmt func(s ast.Stmt, rest []ast.Stmt)

	walkStmts = func(list []ast.Stmt) {
		for i, s := range list {
			walkStmt(s, list[i+1:])
		}
	}
	walkStmt = func(s ast.Stmt, rest []ast.Stmt) {
		switch s := s.(type) {
		case *ast.RangeStmt:
			if t := pass.TypeOf(s.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapRangeBody(pass, s, rest)
				}
			}
			walkStmts(s.Body.List)
		case *ast.BlockStmt:
			walkStmts(s.List)
		case *ast.IfStmt:
			walkStmts(s.Body.List)
			if s.Else != nil {
				walkStmt(s.Else, rest)
			}
		case *ast.ForStmt:
			walkStmts(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				walkStmts(c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				walkStmts(c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				walkStmts(c.(*ast.CommClause).Body)
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, rest)
		}
	}
	walkStmts(body.List)
}

// checkMapRangeBody reports order-dependent effects inside one map-range
// loop. rest is the statement list following the loop in its enclosing
// block, used to recognize the collect-then-sort idiom.
func checkMapRangeBody(pass *analysis.Pass, loop *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges are visited on their own.
			if t := pass.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap && n != loop {
					return false
				}
			}
		case *ast.FuncLit:
			return false // deferred/goroutine bodies judged too coarsely
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				target, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.ObjectOf(target)
				if obj == nil || declaredWithin(pass, obj, loop) {
					continue
				}
				if sortedInStmts(pass, obj, rest) || sortedInStmts(pass, obj, loop.Body.List) {
					continue
				}
				pass.Reportf(n.Pos(), "append to %s inside map iteration without a later sort makes its order nondeterministic; sort afterwards or range over report.SortedKeys", target.Name)
			}
		case *ast.CallExpr:
			reportOrderedSink(pass, n)
		}
		return true
	})
}

// reportOrderedSink flags calls that emit in iteration order.
func reportOrderedSink(pass *analysis.Pass, call *ast.CallExpr) {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		if f.Pkg().Path() == "fmt" && fmtOutputFuncs[f.Name()] {
			pass.Reportf(call.Pos(), "fmt.%s inside map iteration writes output in nondeterministic order; iterate sorted keys (report.SortedKeys)", f.Name())
		}
		return
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	pkgPath := named.Obj().Pkg().Path()
	switch {
	case isSimPkgPath(pkgPath) && simScheduleMethods[f.Name()]:
		pass.Reportf(call.Pos(), "%s.%s inside map iteration schedules simulation work in nondeterministic order (the PR 1 wakeup-bug shape); collect and sort first", named.Obj().Name(), f.Name())
	case isNetapiPkgPath(pkgPath) && netapiWakeMethods[f.Name()]:
		pass.Reportf(call.Pos(), "%s.%s inside map iteration schedules or wakes backend work in nondeterministic order (the PR 1 wakeup-bug shape); collect and sort first", named.Obj().Name(), f.Name())
	case writerMethods[f.Name()] && writesInCallOrder(pkgPath, named.Obj().Name(), f.Name()):
		pass.Reportf(call.Pos(), "%s.%s inside map iteration emits output in nondeterministic order; iterate sorted keys (report.SortedKeys)", named.Obj().Name(), f.Name())
	}
}

// writesInCallOrder limits the writer-method heuristic to the types that
// actually accumulate ordered output: strings.Builder, bytes.Buffer,
// anything satisfying io.Writer by name, and report.Table.
func writesInCallOrder(pkgPath, typeName, method string) bool {
	switch {
	case pkgPath == "strings" && typeName == "Builder":
		return true
	case pkgPath == "bytes" && typeName == "Buffer":
		return true
	case method == "Add":
		segs := pathSegments(pkgPath)
		return segs[len(segs)-1] == "report" && typeName == "Table"
	case method == "Write" || method == "WriteString":
		return pkgPath == "os" || pkgPath == "bufio" || pkgPath == "io"
	}
	return false
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(pass *analysis.Pass, obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// sortedInStmts reports whether any statement in list passes obj to a
// sort.* or slices.Sort* function (the deterministic-order idiom).
func sortedInStmts(pass *analysis.Pass, obj types.Object, list []ast.Stmt) bool {
	for _, s := range list {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			f := analysis.CalleeFunc(pass.TypesInfo, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			isSorter := (f.Pkg().Path() == "sort") ||
				(f.Pkg().Path() == "slices" && (f.Name() == "Sort" || f.Name() == "SortFunc" || f.Name() == "SortStableFunc"))
			if !isSorter {
				return true
			}
			for _, arg := range call.Args {
				if mentionsObject(pass, arg, obj) {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
