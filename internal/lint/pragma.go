package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Allow pragmas record intentional, reviewed exceptions in the source:
//
//	//simlint:allow <rule> <reason>
//
// The pragma suppresses diagnostics of <rule> reported on the same line
// (trailing comment) or on the line directly below (own-line comment).
// The reason is mandatory: an allow pragma without one is itself a
// finding, so every exception carries its justification in the diff that
// introduces it.
const allowPrefix = "//simlint:allow"

// pragma is one parsed //simlint:allow comment.
type pragma struct {
	pos    token.Pos
	rule   string
	reason string
	line   int
}

// pragmaIndex maps file name -> line -> pragmas taking effect there.
type pragmaIndex struct {
	fset  *token.FileSet
	byPos map[string]map[int][]*pragma
}

// scanPragmas parses every //simlint:allow comment in files. Malformed
// pragmas (missing rule, unknown rule, missing reason) are reported
// through report with the pseudo-rule "pragma"; known ranges from
// ruleNames.
func scanPragmas(fset *token.FileSet, files []*ast.File, ruleNames map[string]bool, report func(pos token.Pos, msg string)) *pragmaIndex {
	idx := &pragmaIndex{fset: fset, byPos: make(map[string]map[int][]*pragma)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //simlint:allowance — not ours
				}
				// A nested "//" ends the pragma (used by fixtures to
				// attach // want expectations to the pragma line).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				p := &pragma{pos: c.Pos()}
				if len(fields) == 0 {
					report(c.Pos(), "simlint:allow pragma names no rule")
					continue
				}
				p.rule = fields[0]
				if !ruleNames[p.rule] {
					report(c.Pos(), "simlint:allow pragma names unknown rule "+p.rule)
					continue
				}
				p.reason = strings.Join(fields[1:], " ")
				if p.reason == "" {
					report(c.Pos(), "simlint:allow "+p.rule+" needs a reason (//simlint:allow "+p.rule+" <why>)")
					continue
				}
				pos := fset.Position(c.Pos())
				p.line = pos.Line
				m := idx.byPos[pos.Filename]
				if m == nil {
					m = make(map[int][]*pragma)
					idx.byPos[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], p)
			}
		}
	}
	return idx
}

// allowed reports whether a diagnostic of rule at pos is suppressed by a
// pragma on the same line (trailing) or the line above (own-line).
func (idx *pragmaIndex) allowed(pos token.Pos, rule string) bool {
	p := idx.fset.Position(pos)
	m := idx.byPos[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, pr := range m[line] {
			if pr.rule == rule {
				return true
			}
		}
	}
	return false
}
