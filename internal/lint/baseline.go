package lint

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/report"
)

// The layering baseline is the ratchet: a committed file recording how
// many sim.World references each protocol package is allowed to carry.
// cmd/simlint fails only when a package's live count exceeds its
// baseline, so existing debt compiles while new debt cannot land.
// Regenerate (only to shrink) with `go run ./cmd/simlint -write-layering-baseline`.

// Baseline maps package path -> tolerated layering-finding count.
type Baseline map[string]int

// ReadBaseline parses a baseline file. Blank lines and #-comments are
// ignored; each entry is "<pkgpath> <count>". A missing file is an empty
// baseline (every finding is new debt).
func ReadBaseline(path string) (Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Baseline{}, nil
		}
		return nil, err
	}
	defer f.Close()
	b := Baseline{}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<pkgpath> <count>\", got %q", path, lineNo, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, lineNo, fields[1])
		}
		b[fields[0]] = n
	}
	return b, sc.Err()
}

// WriteBaseline writes counts in deterministic order with the ratchet
// header.
func WriteBaseline(path string, counts Baseline) error {
	var sb strings.Builder
	sb.WriteString("# simlint layering baseline: tolerated sim.World references per protocol package.\n")
	sb.WriteString("# The count may only shrink. Regenerate with: go run ./cmd/simlint -write-layering-baseline\n")
	for _, p := range report.SortedKeys(counts) {
		if counts[p] > 0 {
			fmt.Fprintf(&sb, "%s %d\n", p, counts[p])
		}
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// ApplyBaseline splits layering findings into tolerated and failing
// sets: for each package, up to baseline[pkg] findings are tolerated
// (all of them if within budget; all flagged if over, so the developer
// sees the whole debt of the package they just grew). It also returns
// the packages whose count shrank below baseline, as a hint to ratchet
// down.
func ApplyBaseline(findings []Finding, base Baseline) (failing []Finding, counts Baseline, shrunk []string) {
	counts = Baseline{}
	var rest []Finding
	for _, f := range findings {
		if f.Rule == Layering.Name {
			counts[f.PkgPath]++
		} else {
			rest = append(rest, f)
		}
	}
	failing = rest
	for _, f := range findings {
		if f.Rule == Layering.Name && counts[f.PkgPath] > base[f.PkgPath] {
			failing = append(failing, f)
		}
	}
	for p, allowed := range base {
		if counts[p] < allowed {
			shrunk = append(shrunk, fmt.Sprintf("%s %d -> %d", p, allowed, counts[p]))
		}
	}
	sort.Strings(shrunk)
	return failing, counts, shrunk
}
