// Package h2 is a fixture protocol package for the layering rule.
package h2

import "repro/internal/sim"

type Conn struct {
	w *sim.World // want `protocol package h2 references sim\.World directly`
}

func Dial(w *sim.World) *Conn { // want `protocol package h2 references sim\.World directly`
	return &Conn{w: w}
}

func Attach(w *sim.World) *Conn { //simlint:allow layering transitional constructor until the scheduler interface lands
	return &Conn{w: w}
}
