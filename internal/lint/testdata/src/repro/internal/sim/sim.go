// Package sim is a fixture stand-in for the real simulation kernel:
// just the World surface the analyzers pattern-match against.
package sim

import "time"

type World struct{ now time.Duration }

func (w *World) Now() time.Duration                               { return w.now }
func (w *World) Go(fn func())                                     {}
func (w *World) GoCall(fn func(any), arg any)                     {}
func (w *World) AfterFunc(d time.Duration, fn func())             {}
func (w *World) AfterCall(d time.Duration, fn func(any), arg any) {}

func DeriveSeed(seed int64, salts ...uint64) int64 { return seed }
