// Package racing is a fixture backend-seam consumer: the resilient
// stub must stay portable across simnet and livenet, so it may import
// the seam (and other consumers) but never the simulation stack.
package racing

import (
	"repro/internal/netapi"
	"repro/internal/netem" // want `racing is a backend-seam consumer and must not import the network emulator`
	"repro/internal/sim"   // want `racing is a backend-seam consumer and must not import the simulation kernel`
)

type Stub struct {
	rt netapi.Runtime
	h  netem.Host
}

var _ = sim.DeriveSeed
