// Package badpragma exercises pragma validation: an allow pragma must
// name a known rule and carry a reason, or it is itself a finding and
// suppresses nothing.
package badpragma

import "time"

func MissingReason() time.Time {
	//simlint:allow nowallclock // want `simlint:allow nowallclock needs a reason`
	return time.Now() // want `time\.Now reads the wall clock`
}

func NoRule() {
	//simlint:allow // want `simlint:allow pragma names no rule`
	_ = 0
}

func UnknownRule() {
	//simlint:allow speedlimit because I said so // want `simlint:allow pragma names unknown rule speedlimit`
	_ = 0
}
