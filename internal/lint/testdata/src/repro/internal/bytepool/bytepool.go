// Package bytepool is a fixture stand-in for the real tiered byte pool.
package bytepool

type Pool struct{ free [][]byte }

func (p *Pool) Get(n int) []byte { return make([]byte, 0, n) }
func (p *Pool) Put(b []byte)     {}
