// Package dox is a fixture backend-seam consumer: it may import the
// seam but never the simulation stack behind it.
package dox

import (
	"repro/internal/netapi"
	"repro/internal/netem" // want `dox is a backend-seam consumer and must not import the network emulator`
	"repro/internal/sim"   // want `dox is a backend-seam consumer and must not import the simulation kernel`
)

type Client struct {
	rt netapi.Runtime
	h  netem.Host
}

var _ = sim.DeriveSeed
