package pooluser

import "repro/internal/bytepool"

func Leak(p *bytepool.Pool, n int) int {
	b := p.Get(n) // want `b is leased from a bytepool but never Put and never transferred`
	b = append(b, 0)
	return len(b)
}

func GetPutOK(p *bytepool.Pool, n int) int {
	b := p.Get(n)
	b = append(b, 0)
	m := len(b)
	p.Put(b)
	return m
}

func DoublePut(p *bytepool.Pool, n int) {
	b := p.Get(n)
	p.Put(b)
	p.Put(b) // want `b is Put twice on the same path`
}

// UseAfterPut reproduces the bytepool retention bug class: reading a
// buffer after returning it to the pool, when it may already be
// re-leased and overwritten.
func UseAfterPut(p *bytepool.Pool, n int) byte {
	b := p.Get(n)
	b = append(b, 7)
	p.Put(b)
	return b[0] // want `b is used after Put returned it to the bytepool`
}

func AppendAfterPut(p *bytepool.Pool, n int) {
	b := p.Get(n)
	p.Put(b)
	b = append(b, 1) // want `b is used after Put returned it to the bytepool`
	_ = b
}

// BranchedPutOK releases on the drop path and hands the buffer to the
// caller otherwise; neither path leaks.
func BranchedPutOK(p *bytepool.Pool, n int, drop bool) []byte {
	b := p.Get(n)
	if drop {
		p.Put(b)
		return nil
	}
	return b
}

// TransferOK: passing the buffer to a call transfers ownership (the
// netem Send contract).
func TransferOK(p *bytepool.Pool, send func([]byte), n int) {
	b := p.Get(n)
	b = append(b, 0xCA)
	send(b)
}

// DirectHandoffOK never binds the lease to a variable: ownership flows
// straight into the callee.
func DirectHandoffOK(p *bytepool.Pool, send func([]byte), n int) {
	send(p.Get(n))
}

func DeferPutOK(p *bytepool.Pool, n int) int {
	b := p.Get(n)
	defer p.Put(b)
	b = append(b, 1)
	return len(b)
}

// StoreOK retains the buffer in a struct: ownership transfers to the
// holder, whose own discipline is out of intra-function scope.
type frame struct{ buf []byte }

func StoreOK(p *bytepool.Pool, f *frame, n int) {
	b := p.Get(n)
	f.buf = b
}

func AllowedLeak(p *bytepool.Pool, n int) {
	b := p.Get(n) //simlint:allow poolown buffer intentionally parked; released by the pool's world teardown
	_ = b
}
