// Package netem is a fixture stand-in for the network emulator.
package netem

type Host struct{}
