package wallclock

import "time"

func Bad() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	<-time.After(time.Second)    // want `time\.After reads the wall clock`
	t := time.NewTimer(0)        // want `time\.NewTimer reads the wall clock`
	t.Stop()
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// Duration arithmetic and constants are virtual-time currency, not wall
// clock.
func DurationOK(d time.Duration) time.Duration {
	return 2*d + 500*time.Millisecond
}

func AllowedTrailing() time.Time {
	return time.Now() //simlint:allow nowallclock seeding a demo, value never reaches report output
}

func AllowedAbove() time.Duration {
	//simlint:allow nowallclock coarse host-side watchdog, compared only against itself
	since := time.Since(time.Unix(0, 0))
	return since
}
