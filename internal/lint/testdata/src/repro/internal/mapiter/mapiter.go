package mapiter

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/netapi"
	"repro/internal/sim"
)

// WakeAll is the PR 1 wakeup-bug shape: failure paths woke blocked
// tasks by ranging a map, so wake order — and therefore event order —
// depended on map hashing.
func WakeAll(w *sim.World, waiting map[string]func()) {
	for _, fn := range waiting {
		w.Go(fn) // want `World\.Go inside map iteration schedules simulation work`
	}
}

func TimerFanout(w *sim.World, deadlines map[string]func()) {
	for _, fn := range deadlines {
		w.AfterFunc(0, fn) // want `World\.AfterFunc inside map iteration schedules simulation work`
	}
}

func AppendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration without a later sort`
	}
	return keys
}

// CollectThenSort is the sanctioned idiom: the append is fine because
// the slice is sorted before anything observes its order.
func CollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func PrintUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stderr, "%s=%d\n", k, v) // want `fmt\.Fprintf inside map iteration writes output`
	}
}

func BuildUnsorted(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `Builder\.WriteString inside map iteration emits output`
	}
	return sb.String()
}

// Order-independent bodies are not flagged: aggregation, writes into
// another map, deletes, and per-iteration locals.
func SumOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func InvertOK(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func PerIterationLocalOK(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		n += len(evens)
	}
	return n
}

func AllowedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //simlint:allow maporder single caller sorts the slice after merging shards
	}
	return keys
}

// FailPendingUnsorted is the racing/dox pending-map shape seen through
// the backend seam: failing futures in map order wakes tasks in map
// order, exactly like the sim.World case above.
func FailPendingUnsorted(pending map[uint16]*netapi.Future[int]) {
	for _, f := range pending {
		f.Fail() // want `Future\.Fail inside map iteration schedules or wakes backend work`
	}
}

func SpawnThroughSeam(rt netapi.Runtime, waiting map[string]func()) {
	for _, fn := range waiting {
		rt.Go(fn) // want `Runtime\.Go inside map iteration schedules or wakes backend work`
	}
}

// FailPendingSorted is the sanctioned idiom (dox.failPending): wake in
// ascending key order.
func FailPendingSorted(pending map[uint16]*netapi.Future[int]) {
	keys := make([]uint16, 0, len(pending))
	for id := range pending {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, id := range keys {
		pending[id].Fail()
	}
}
