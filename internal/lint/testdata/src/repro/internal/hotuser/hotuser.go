package hotuser

import (
	"fmt"

	"repro/internal/sim"
)

type conn struct {
	id   int
	name string
}

func step(arg any) {}

func tick() {}

//simlint:hotpath
func BadFmt(c *conn) string {
	return fmt.Sprintf("conn-%d", c.id) // want `fmt\.Sprintf allocates on a hot path`
}

//simlint:hotpath
func BadClosure(w *sim.World, c *conn) {
	w.Go(func() { // want `closure capturing c allocates on a hot path`
		c.id++
	})
}

//simlint:hotpath
func BadBoxing(w *sim.World, c *conn) {
	w.GoCall(step, *c) // want `argument boxes repro/internal/hotuser\.conn into any`
}

//simlint:hotpath
func BadAssignBoxing(c *conn) {
	var box any
	box = *c // want `assignment boxes repro/internal/hotuser\.conn into any`
	_ = box
}

//simlint:hotpath
func BadReturnBoxing(c *conn) any {
	v := *c
	return v // want `return boxes repro/internal/hotuser\.conn into any`
}

// Pre-bound callbacks with pointer-shaped args are the sanctioned
// pattern: a pointer in an interface word does not allocate.
//
//simlint:hotpath
func PointerOK(w *sim.World, c *conn) {
	w.GoCall(step, c)
}

// A func literal that captures nothing is a static closure: free.
//
//simlint:hotpath
func NoCaptureOK(w *sim.World) {
	w.Go(func() { tick() })
}

// ColdFmt is not marked, so nothing is flagged.
func ColdFmt(c *conn) string {
	return fmt.Sprintf("conn-%d", c.id)
}

//simlint:hotpath
func AllowedFmt(c *conn) string {
	return fmt.Sprintf("conn-%d", c.id) //simlint:allow hotalloc deadlock-diagnostic path, runs at most once per campaign
}
