// Package livenet is a fixture live backend for the backendpurity
// rule: any simulation-stack import is a hard error.
package livenet

import (
	"repro/internal/netapi"
	"repro/internal/netem" // want `livenet is the live backend and must not import the network emulator`
	"repro/internal/sim"   // want `livenet is the live backend and must not import the simulation kernel`
)

type Backend struct {
	rt netapi.Runtime
	h  netem.Host
}

var _ = sim.DeriveSeed
