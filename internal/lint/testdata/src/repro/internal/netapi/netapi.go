// Package netapi is a fixture stand-in for the backend seam.
package netapi

type Runtime interface {
	Go(fn func())
}
