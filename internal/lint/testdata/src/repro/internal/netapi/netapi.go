// Package netapi is a fixture stand-in for the backend seam.
package netapi

type Runtime interface {
	Go(fn func())
}

// Future is a fixture stand-in for the seam's one-shot result.
type Future[T any] struct{ v T }

func (f *Future[T]) Resolve(v T) {}
func (f *Future[T]) Fail()       {}
