// Package simnet is a fixture sim adapter: the one sanctioned bridge
// between the seam and the kernel, so its sim/netem imports are clean.
package simnet

import (
	"repro/internal/netapi"
	"repro/internal/netem"
	"repro/internal/sim"
)

type Backend struct {
	rt netapi.Runtime
	h  netem.Host
}

var _ = sim.DeriveSeed
