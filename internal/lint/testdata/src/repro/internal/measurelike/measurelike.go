// Package measurelike shows the layering rule scoping: measurement
// orchestration is not a protocol package, so it may hold sim.World.
package measurelike

import "repro/internal/sim"

type Campaign struct{ w *sim.World }

func Run(w *sim.World) *Campaign { return &Campaign{w: w} }
