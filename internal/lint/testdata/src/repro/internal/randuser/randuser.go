package randuser

import (
	crand "crypto/rand"
	"math/rand"

	"repro/internal/sim"
)

func BadGlobal() int {
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	return rand.Intn(10)               // want `rand\.Intn draws from the process-global source`
}

func BadEntropy(b []byte) {
	crand.Read(b) // want `crypto/rand\.Read is nondeterministic entropy`
}

func BadEntropyVar() any {
	return crand.Reader // want `crypto/rand\.Reader is nondeterministic entropy`
}

// Seeded streams are the sanctioned idiom.
func Good(seed int64) int {
	rng := rand.New(rand.NewSource(sim.DeriveSeed(seed, 7)))
	return rng.Intn(10)
}

func Allowed() float64 {
	return rand.Float64() //simlint:allow seededrand operator-facing sampling knob, never inside a World
}
