// Package timing shows the cmd/... allowlist: commands may read the
// wall clock for stderr progress lines and draw untracked jitter —
// neither reaches report output.
package timing

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

func Report(start time.Time, n int) {
	fmt.Fprintf(os.Stderr, "%d reports in %.1fs\n", n, time.Since(start).Seconds())
}

func SplashJitter() int {
	return rand.Intn(3)
}
