package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// hotpathMarker tags a function whose body must stay allocation-free.
const hotpathMarker = "//simlint:hotpath"

// HotAlloc statically complements the Test*ZeroAlloc runtime guards.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: `flag allocation sources in //simlint:hotpath functions

Functions marked //simlint:hotpath (in the doc comment) are the
steady-state paths covered by AllocsPerRun guards: the sim kernel's
dispatch/handoff, netem delivery, and the pre-bound GoCall/AfterCall
protocol callbacks from PRs 5/6. Three allocation sources are flagged
statically so the guard fails at lint time, not test time:

  - fmt calls (every fmt API allocates)
  - capturing closures (a func literal that captures variables
    allocates unless inlined; hot paths use pre-bound callbacks)
  - interface boxing (converting a concrete non-pointer value to an
    interface type heap-allocates the value)

Non-capturing func literals and pointer-shaped conversions are free and
are not flagged.`,
	Run: runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		if fn.Body == nil || !isHotpath(fn) {
			return true
		}
		checkHotBody(pass, fn)
		return true
	})
	return nil
}

func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, hotpathMarker) {
			rest := strings.TrimPrefix(c.Text, hotpathMarker)
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

func checkHotBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fn, n)
		case *ast.FuncLit:
			if immediatelyCalled(fn.Body, n) {
				return true
			}
			if capt := capturedVars(pass, fn, n); len(capt) > 0 {
				pass.Reportf(n.Pos(), "closure capturing %s allocates on a hot path; use a pre-bound callback (GoCall/AfterCall with a pooled arg)", strings.Join(capt, ", "))
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				lt := pass.TypeOf(lhs)
				checkBoxing(pass, lt, n.Rhs[i], "assignment")
			}
		case *ast.ReturnStmt:
			sig, _ := pass.TypeOf(fn.Name).(*types.Signature)
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					checkBoxing(pass, sig.Results().At(i).Type(), r, "return")
				}
			}
		}
		return true
	})
}

// checkHotCall flags fmt calls and interface boxing at call boundaries.
func checkHotCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	// Type conversions to interface types box their operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkBoxing(pass, tv.Type, call.Args[0], "conversion")
		return
	}
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates on a hot path; pre-format off the hot path or append to a scratch buffer", f.Name())
		return
	}
	sig, _ := pass.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = sig.Params().At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, pt, arg, "argument")
	}
}

// checkBoxing reports when expr (a concrete, non-pointer-shaped value)
// is converted to the interface type dst.
func checkBoxing(pass *analysis.Pass, dst types.Type, expr ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	at := pass.TypeOf(expr)
	if at == nil || types.IsInterface(at) {
		return
	}
	if tv, ok := pass.TypesInfo.Types[expr]; ok && (tv.IsNil() || tv.Value != nil) {
		// nil never allocates; constants (small ints, strings) either
		// use the runtime's static boxes or are hoisted by the compiler.
		return
	}
	if pointerShaped(at) {
		return
	}
	pass.Reportf(expr.Pos(), "%s boxes %s into %s, allocating on a hot path; keep hot-path values pointer-shaped or avoid the interface", what, at.String(), dst.String())
}

// pointerShaped reports whether values of t fit an interface word
// without allocation: pointers, maps, channels, funcs, unsafe pointers,
// and zero-size types.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 0
	case *types.Array:
		return u.Len() == 0
	}
	return false
}

// immediatelyCalled reports whether lit appears as f() of a call
// expression somewhere in body (the func(){...}() pattern, which the
// compiler inlines without allocating).
func immediatelyCalled(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	called := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == lit {
			called = true
		}
		return !called
	})
	return called
}

// capturedVars lists the outer-function variables a func literal
// captures (objects declared in fn but outside lit).
func capturedVars(pass *analysis.Pass, fn *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[types.Object]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= fn.Pos() && obj.Pos() < fn.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			seen[obj] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}
