// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough surface (Analyzer, Pass,
// Diagnostic) for the simlint suite to be written in the upstream style,
// so that a future PR can swap the real module in without rewriting the
// analyzers. The repository builds offline, so vendoring x/tools is not
// an option; everything here rests on go/ast and go/types only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named invariant checker. Run receives a fully
// type-checked package via *Pass and reports findings through
// Pass.Report; it must not retain the Pass after returning.
type Analyzer struct {
	// Name is the rule name used in messages, allow pragmas
	// (//simlint:allow <name> <reason>), and -rules selection.
	Name string

	// Doc is a one-paragraph description shown by `simlint -help`.
	Doc string

	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver wraps this to apply
	// //simlint:allow pragmas, so analyzers never see suppression.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the static type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// Inspect walks every file in the pass in depth-first order, calling f
// for each node; f returning false prunes the subtree (ast.Inspect
// semantics).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// CalleeFunc resolves the called function or method of call to its
// types.Func, looking through parenthesization. It returns nil for
// builtins, conversions, and calls of function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (methods do not match).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := CalleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	if f.Pkg().Path() != pkgPath || f.Name() != name {
		return false
	}
	return f.Type().(*types.Signature).Recv() == nil
}
