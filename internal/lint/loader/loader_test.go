package loader

import (
	"go/types"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot walks up from this file to the directory containing go.mod.
func moduleRoot(t *testing.T) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestLoadModuleTypeChecks(t *testing.T) {
	pkgs, err := LoadModule(moduleRoot(t), "./internal/report", "./internal/bytepool")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Fatalf("%s: incomplete package", p.Path)
		}
	}
	rep := byPath["repro/internal/report"]
	if rep == nil {
		t.Fatalf("missing repro/internal/report; have %v", pkgs)
	}
	// The stats import must have resolved through export data.
	obj := rep.Types.Scope().Lookup("CDFSummary")
	if obj == nil {
		t.Fatal("report.CDFSummary not found")
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 5 {
		t.Fatalf("CDFSummary params = %d, want 5", sig.Params().Len())
	}
	if got := sig.Params().At(1).Type().String(); got != "*repro/internal/stats.CDF" {
		t.Fatalf("param 1 type = %s", got)
	}
}

func TestLoadModuleWholeTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree load in -short mode")
	}
	pkgs, err := LoadModule(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("got %d packages, expected the whole tree", len(pkgs))
	}
}
