// Package loader parses and type-checks Go packages for the simlint
// analyzers without depending on golang.org/x/tools/go/packages (the
// repository builds offline). Two loading modes cover the two callers:
//
//   - LoadModule: the cmd/simlint driver loads real module packages.
//     Dependency types come from compiler export data located with
//     `go list -export -deps`, which works offline against the local
//     build cache, so each analyzed package is type-checked from source
//     with every import resolved exactly as the compiler sees it.
//
//   - LoadTree: the analysistest harness loads GOPATH-style fixture
//     trees (testdata/src/<importpath>/*.go). Fixture-local imports are
//     type-checked from source recursively; standard-library imports go
//     through the same export-data mechanism.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory holding the source files
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over patterns and
// returns the decoded package stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer that resolves import paths
// through compiler export data files, consulting local (source-loaded)
// packages first.
func exportImporter(fset *token.FileSet, exports map[string]string, local func(path string) (*types.Package, error)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if local != nil {
			if pkg, err := local(path); pkg != nil || err != nil {
				return pkg, err
			}
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// parseDir parses the non-test Go files listed in files (relative to
// dir), or every non-test .go file in dir when files is nil.
func parseDir(fset *token.FileSet, dir string, files []string) ([]*ast.File, error) {
	if files == nil {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, name)
		}
		sort.Strings(files)
	}
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return parsed, nil
}

func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

// LoadModule loads the module packages matching patterns (e.g. "./...")
// rooted at dir. Only non-dependency, non-standard packages are returned
// for analysis; their imports (standard library and intra-module alike)
// are resolved from compiler export data, so loading cost is one
// `go list` plus a source type-check of just the analyzed packages.
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports, nil)

	var out []*Package
	for _, p := range listed {
		if p.Standard || p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files, err := parseDir(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := typeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			Path: p.ImportPath, Dir: p.Dir,
			Fset: fset, Files: files, Types: tpkg, Info: info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadFiles type-checks one package from an explicit file list, with
// imports resolved from the given export-data map. It serves the vettool
// mode, where `go vet` hands simlint exactly this information.
func LoadFiles(path, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var rel []string
	for _, f := range goFiles {
		if filepath.IsAbs(f) {
			r, err := filepath.Rel(dir, f)
			if err != nil {
				r = f
			}
			f = r
		}
		rel = append(rel, f)
	}
	files, err := parseDir(fset, dir, rel)
	if err != nil {
		return nil, err
	}
	imp := exportImporter(fset, exports, nil)
	tpkg, info, err := typeCheck(fset, path, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// tree loads a GOPATH-style fixture tree.
type tree struct {
	root    string // the src directory
	fset    *token.FileSet
	exports map[string]string
	pkgs    map[string]*Package
	loading map[string]bool
}

// LoadTree loads the fixture packages named by paths from a
// testdata/src-style root: the package with import path p lives in
// root/p. Imports that resolve to a directory under root are loaded from
// source (recursively); everything else must be standard library and is
// resolved via export data.
func LoadTree(root string, paths ...string) ([]*Package, error) {
	t := &tree{
		root:    root,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	if err := t.collectExports(paths); err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range paths {
		pkg, err := t.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func (t *tree) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(t.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// collectExports gathers the non-local imports reachable from the fixture
// packages and resolves their export data with one `go list` run.
func (t *tree) collectExports(roots []string) error {
	std := make(map[string]bool)
	seen := make(map[string]bool)
	var walk func(path string) error
	walk = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		files, err := parseDir(token.NewFileSet(), filepath.Join(t.root, filepath.FromSlash(path)), nil)
		if err != nil {
			return err
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if t.isLocal(p) {
					if err := walk(p); err != nil {
						return err
					}
				} else {
					std[p] = true
				}
			}
		}
		return nil
	}
	for _, p := range roots {
		if err := walk(p); err != nil {
			return err
		}
	}
	t.exports = make(map[string]string)
	if len(std) == 0 {
		return nil
	}
	var pats []string
	for p := range std {
		pats = append(pats, p)
	}
	sort.Strings(pats)
	listed, err := goList(t.root, pats)
	if err != nil {
		return err
	}
	for _, p := range listed {
		if p.Export != "" {
			t.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

func (t *tree) load(path string) (*Package, error) {
	if pkg, ok := t.pkgs[path]; ok {
		return pkg, nil
	}
	if t.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	t.loading[path] = true
	defer delete(t.loading, path)

	dir := filepath.Join(t.root, filepath.FromSlash(path))
	files, err := parseDir(t.fset, dir, nil)
	if err != nil {
		return nil, err
	}
	imp := exportImporter(t.fset, t.exports, func(p string) (*types.Package, error) {
		if !t.isLocal(p) {
			return nil, nil
		}
		pkg, err := t.load(p)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	})
	tpkg, info, err := typeCheck(t.fset, path, files, imp)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: t.fset, Files: files, Types: tpkg, Info: info}
	t.pkgs[path] = pkg
	return pkg, nil
}
