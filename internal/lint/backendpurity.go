package lint

import (
	"strconv"

	"repro/internal/lint/analysis"
)

// backendConsumerPkgNames are the packages written against the netapi
// backend seam: protocol clients, the stub proxy, the HTTP layers and
// the browser model. They reach scheduling and sockets only through
// netapi.Backend, so the identical code runs on simnet and livenet;
// a direct simulation-stack import would silently re-couple them to
// one backend. The sim-stack packages themselves (quic, tcpsim,
// tlsmini) are deliberately absent — they ARE the simulation transport.
var backendConsumerPkgNames = map[string]bool{
	"browser":  true,
	"dnsproxy": true,
	"dox":      true,
	"h2":       true,
	"h3":       true,
	"racing":   true,
}

// BackendPurity enforces the backend seam at the import graph.
var BackendPurity = &analysis.Analyzer{
	Name: "backendpurity",
	Doc: `forbid simulation-stack imports across the netapi seam

Two import rules keep the backend seam honest:

  - netapi/livenet must not import internal/sim or internal/netem: the
    live backend exists so real sockets can replace the simulation, and
    a kernel import would drag virtual time into live measurements.
  - backend-consumer packages (dox, dnsproxy, browser, h2, h3) must not
    import internal/sim or internal/netem directly; everything they
    need from a runtime arrives via netapi.Backend. (netapi/simnet is
    the one sanctioned adapter between the seam and the kernel.)

Violations are hard errors, not ratcheted: the seam held at zero when
it was introduced and must stay there.`,
	Run: runBackendPurity,
}

// isLivenetPkg reports whether path is the live backend package.
func isLivenetPkg(path string) bool {
	segs := pathSegments(path)
	return isInternalPkg(path) && segs[len(segs)-1] == "livenet"
}

// isNetemPkgPath reports whether path is the network emulator package.
func isNetemPkgPath(path string) bool {
	segs := pathSegments(path)
	return isInternalPkg(path) && segs[len(segs)-1] == "netem"
}

// isBackendConsumerPkg reports whether path is written against the
// netapi seam.
func isBackendConsumerPkg(path string) bool {
	segs := pathSegments(path)
	return isInternalPkg(path) && backendConsumerPkgNames[segs[len(segs)-1]]
}

func runBackendPurity(pass *analysis.Pass) error {
	pkgPath := pass.Pkg.Path()
	var role string
	switch {
	case isLivenetPkg(pkgPath):
		role = "the live backend"
	case isBackendConsumerPkg(pkgPath):
		role = "a backend-seam consumer"
	default:
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			target, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case isSimPkgPath(target):
				pass.Reportf(imp.Pos(), "%s is %s and must not import the simulation kernel %s; use netapi.Backend", pass.Pkg.Name(), role, target)
			case isNetemPkgPath(target):
				pass.Reportf(imp.Pos(), "%s is %s and must not import the network emulator %s; use netapi.Backend", pass.Pkg.Name(), role, target)
			}
		}
	}
	return nil
}
