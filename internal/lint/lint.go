// Package lint is the simlint analyzer suite: seven static checkers
// that machine-enforce the invariants this repository otherwise
// guarantees only by convention and after-the-fact runtime tests.
//
//	nowallclock  virtual time only in internal/... (no time.Now etc.;
//	             netapi/livenet is exempt — the wall clock is its job)
//	seededrand   randomness flows through seeded *rand.Rand, never the
//	             global math/rand source or crypto/rand
//	maporder     no order-dependent effects inside map iteration
//	poolown      bytepool lease discipline: no leaks, double-Put, or
//	             use-after-Put
//	hotalloc     no closures, fmt, or interface boxing in functions
//	             marked //simlint:hotpath
//	layering     protocol packages do not reference sim.World directly
//	             (ratcheted by a committed baseline)
//	backendpurity  netapi/livenet never imports sim/netem, and
//	             backend-seam consumers (dox, dnsproxy, browser, h2,
//	             h3) reach the runtime only through netapi
//
// Intentional exceptions are recorded in the source as
// //simlint:allow <rule> <reason>; the reason is mandatory. See
// DESIGN.md §9 for the rule catalog and the layering-ratchet workflow.
package lint

import (
	"go/token"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Analyzers is the full simlint suite, in report order.
var Analyzers = []*analysis.Analyzer{
	BackendPurity,
	HotAlloc,
	Layering,
	MapOrder,
	NoWallClock,
	PoolOwn,
	SeededRand,
}

// ruleNames holds every valid rule name for pragma validation, including
// the pseudo-rule for pragma findings themselves.
var ruleNames = func() map[string]bool {
	m := map[string]bool{}
	for _, a := range Analyzers {
		m[a.Name] = true
	}
	return m
}()

// Finding is one diagnostic after pragma filtering.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
	PkgPath string
}

// Run applies analyzers to every package and returns the surviving
// findings sorted by position. //simlint:allow pragmas are applied here,
// and malformed pragmas are reported as rule "pragma", so the driver and
// the analysistest harness exercise identical suppression behavior.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		pragmas := scanPragmas(pkg.Fset, pkg.Files, ruleNames, func(pos token.Pos, msg string) {
			out = append(out, Finding{
				Pos: pkg.Fset.Position(pos), Rule: "pragma", Message: msg, PkgPath: pkg.Path,
			})
		})
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				if pragmas.allowed(d.Pos, a.Name) {
					return
				}
				out = append(out, Finding{
					Pos: pkg.Fset.Position(d.Pos), Rule: a.Name, Message: d.Message, PkgPath: pkg.Path,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out, nil
}
