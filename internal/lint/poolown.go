package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// PoolOwn checks bytepool lease discipline inside each function.
var PoolOwn = &analysis.Analyzer{
	Name: "poolown",
	Doc: `check bytepool.Pool lease discipline

A leased buffer has exactly one owner. Within a function, a variable
bound to Pool.Get must be released with Pool.Put, or its ownership must
visibly transfer: passed to a call (netem Send owns payloads it is
given), returned, or stored into a longer-lived structure. The analyzer
flags three bug classes, conservatively (straight-line must-analysis, so
every report is real):

  - leak: a Get-bound variable that is never Put and never escapes
  - double-Put: the same variable Put twice with no rebinding between
  - use-after-Put: the variable read or passed onward after Put

Buffers handed around as struct fields are out of scope; the rule tracks
local variables, which is where the PR 5/6 pooling bugs lived.`,
	Run: runPoolOwn,
}

// poolCallKind classifies a call as bytepool Get/Put on a Pool receiver.
func poolCallKind(pass *analysis.Pass, call *ast.CallExpr) string {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	if f.Name() != "Get" && f.Name() != "Put" {
		return ""
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		return ""
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" || named.Obj().Pkg() == nil {
		return ""
	}
	if !isBytepoolPath(named.Obj().Pkg().Path()) {
		return ""
	}
	return f.Name()
}

// leaseState is a may-analysis bitset for one tracked variable.
type leaseState uint8

const (
	stOwned leaseState = 1 << iota
	stReleased
	stTransferred
)

type poolTracker struct {
	pass  *analysis.Pass
	state map[types.Object]leaseState
	// getPos remembers where each tracked variable was leased, for the
	// leak report at function exit.
	getPos map[types.Object]ast.Node
}

func runPoolOwn(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		t := &poolTracker{
			pass:   pass,
			state:  make(map[types.Object]leaseState),
			getPos: make(map[types.Object]ast.Node),
		}
		t.walkStmts(fn.Body.List)
		for obj, st := range t.state {
			if st == stOwned { // must-owned on every path: definite leak
				t.pass.Reportf(t.getPos[obj].Pos(), "%s is leased from a bytepool but never Put and never transferred; release it or hand ownership on", obj.Name())
			}
		}
		return true
	})
	return nil
}

func (t *poolTracker) copyState() map[types.Object]leaseState {
	c := make(map[types.Object]leaseState, len(t.state))
	for k, v := range t.state {
		c[k] = v
	}
	return c
}

// mergeStates joins branch outcomes: union of possible states.
func mergeStates(states ...map[types.Object]leaseState) map[types.Object]leaseState {
	out := make(map[types.Object]leaseState)
	for _, s := range states {
		for k, v := range s {
			out[k] |= v
		}
	}
	return out
}

func (t *poolTracker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		t.walkStmt(s)
	}
}

func (t *poolTracker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		t.assign(s)
	case *ast.ExprStmt:
		t.expr(s.X)
	case *ast.DeferStmt:
		// defer pool.Put(b) releases at exit: ownership is discharged,
		// and later uses in the body remain valid, so mark transferred.
		if poolCallKind(t.pass, s.Call) == "Put" {
			if obj := t.trackedArg(s.Call); obj != nil {
				t.state[obj] |= stTransferred
				t.state[obj] &^= stOwned
			}
		} else {
			t.expr(s.Call)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t.escapeIn(r)
		}
	case *ast.GoStmt:
		t.expr(s.Call)
	case *ast.IfStmt:
		if s.Init != nil {
			t.walkStmt(s.Init)
		}
		t.exprUses(s.Cond)
		before := t.copyState()
		t.walkStmts(s.Body.List)
		thenState := t.state
		t.state = before
		if s.Else != nil {
			t.walkStmt(s.Else)
		}
		t.state = mergeStates(thenState, t.state)
	case *ast.BlockStmt:
		t.walkStmts(s.List)
	case *ast.ForStmt:
		t.loopBody(s.Body, s.Init, s.Cond, s.Post)
	case *ast.RangeStmt:
		t.exprUses(s.X)
		t.loopBody(s.Body, nil, nil, nil)
	case *ast.SwitchStmt:
		if s.Init != nil {
			t.walkStmt(s.Init)
		}
		t.exprUses(s.Tag)
		t.branches(s.Body)
	case *ast.TypeSwitchStmt:
		t.branches(s.Body)
	case *ast.SelectStmt:
		t.branches(s.Body)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						t.expr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		t.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		t.exprUses(s.X)
	case *ast.SendStmt:
		t.escapeIn(s.Value)
	}
}

// branches analyzes each case body independently and unions the results.
func (t *poolTracker) branches(body *ast.BlockStmt) {
	before := t.copyState()
	results := []map[types.Object]leaseState{before}
	for _, c := range body.List {
		t.state = mergeStates(before) // fresh copy
		switch c := c.(type) {
		case *ast.CaseClause:
			t.walkStmts(c.Body)
		case *ast.CommClause:
			t.walkStmts(c.Body)
		}
		results = append(results, t.state)
	}
	t.state = mergeStates(results...)
}

// loopBody analyzes a loop body once and unions with the pre-state: a
// lease both created and discharged inside the body stays balanced.
func (t *poolTracker) loopBody(body *ast.BlockStmt, init, cond, post ast.Node) {
	if s, ok := init.(ast.Stmt); ok && s != nil {
		t.walkStmt(s)
	}
	if e, ok := cond.(ast.Expr); ok && e != nil {
		t.exprUses(e)
	}
	before := t.copyState()
	t.walkStmts(body.List)
	if s, ok := post.(ast.Stmt); ok && s != nil {
		t.walkStmt(s)
	}
	t.state = mergeStates(before, t.state)
}

// assign handles b := pool.Get(n), rebinding, and escapes via composite
// or indexed stores.
func (t *poolTracker) assign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		t.expr(r)
	}
	for i, lhs := range s.Lhs {
		id, isIdent := ast.Unparen(lhs).(*ast.Ident)
		if !isIdent {
			// Store into a field/slice/map: anything tracked on the RHS
			// escapes there.
			if i < len(s.Rhs) {
				t.escapeIn(s.Rhs[i])
			}
			t.exprUses(lhs)
			continue
		}
		obj := t.pass.ObjectOf(id)
		if obj == nil {
			continue
		}
		// Rebinding clears any previous lease state — unless the RHS is
		// derived from the variable itself (b = append(b, ...) and
		// b = b[:0] keep the same lease).
		if _, tracked := t.state[obj]; tracked {
			selfDerived := false
			for _, r := range s.Rhs {
				if mentionsObject(t.pass, r, obj) {
					selfDerived = true
				}
			}
			if selfDerived {
				continue
			}
		}
		delete(t.state, obj)
		if i < len(s.Rhs) || len(s.Rhs) == 1 {
			ri := i
			if len(s.Rhs) == 1 {
				ri = 0
			}
			if call, ok := ast.Unparen(s.Rhs[ri]).(*ast.CallExpr); ok && len(s.Lhs) == len(s.Rhs) {
				if poolCallKind(t.pass, call) == "Get" {
					t.state[obj] = stOwned
					t.getPos[obj] = s
				}
			}
		}
	}
}

// expr walks an expression for pool calls and tracked-variable uses.
func (t *poolTracker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		switch poolCallKind(t.pass, e) {
		case "Put":
			if obj := t.trackedArg(e); obj != nil {
				if t.state[obj] == stReleased {
					t.pass.Reportf(e.Pos(), "%s is Put twice on the same path (double release corrupts the free list); nil or rebind it after the first Put", obj.Name())
				}
				t.state[obj] = stReleased
				return
			}
			// Put of an untracked expression (field, call result):
			// evaluate arguments normally.
			for _, a := range e.Args {
				t.exprUses(a)
			}
			return
		case "Get":
			// Bare Get whose result feeds an enclosing expression: the
			// caller (assign / escapeIn) decides tracking; a Get used
			// directly as a call argument transfers ownership to the
			// callee, which is fine.
			for _, a := range e.Args {
				t.exprUses(a)
			}
			return
		}
		// Builtins (len, cap, append, copy, delete, ...) read the
		// buffer without taking ownership.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := t.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				for _, a := range e.Args {
					t.exprUses(a)
				}
				return
			}
		}
		// Ordinary call: tracked variables passed as arguments are a
		// use (flag if released) and then an ownership transfer.
		t.exprUses(e.Fun)
		for _, a := range e.Args {
			t.escapeIn(a)
		}
	case *ast.FuncLit:
		// Closure bodies get their own conservative pass: uses count,
		// transfers count, but no reports from inside (the closure may
		// run later).
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := t.pass.TypesInfo.Uses[id]; obj != nil {
					if _, tracked := t.state[obj]; tracked {
						t.state[obj] |= stTransferred
						t.state[obj] &^= stOwned
					}
				}
			}
			return true
		})
	default:
		t.exprUses(e)
	}
}

// exprUses records reads of tracked variables, reporting use-after-Put.
func (t *poolTracker) exprUses(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			t.expr(call)
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := t.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if st, tracked := t.state[obj]; tracked && st == stReleased {
			t.pass.Reportf(id.Pos(), "%s is used after Put returned it to the bytepool; the buffer may already be re-leased", obj.Name())
			t.state[obj] |= stTransferred // report once per path
		}
		return true
	})
}

// escapeIn marks tracked variables inside e as transferred (stored,
// returned, or passed on), and still reports use-after-Put.
func (t *poolTracker) escapeIn(e ast.Expr) {
	if e == nil {
		return
	}
	t.exprUses(e)
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Builtins read without taking ownership: len(b), cap(b)
			// escape nothing.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := t.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return false
				}
			}
		case *ast.Ident:
			if obj := t.pass.TypesInfo.Uses[n]; obj != nil {
				if _, tracked := t.state[obj]; tracked {
					t.state[obj] |= stTransferred
					t.state[obj] &^= stOwned
				}
			}
		}
		return true
	})
}

// trackedArg returns the object of a single-identifier argument to a
// pool call, or nil.
func (t *poolTracker) trackedArg(call *ast.CallExpr) types.Object {
	if len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := t.pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	if _, tracked := t.state[obj]; !tracked {
		return nil
	}
	return obj
}
