package lint

import "strings"

// pathSegments splits an import path on "/".
func pathSegments(path string) []string { return strings.Split(path, "/") }

// isInternalPkg reports whether path is a deterministic simulation
// package: anything under an internal/ tree. The whole repository's
// library code lives in repro/internal/..., so this is the scope where
// virtual-time and seeded-randomness rules apply.
func isInternalPkg(path string) bool {
	for _, seg := range pathSegments(path) {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// isCmdPkg reports whether path is a command: binaries under cmd/ are
// allowed to measure wall-clock time for stderr progress reporting.
func isCmdPkg(path string) bool {
	for _, seg := range pathSegments(path) {
		if seg == "cmd" {
			return true
		}
	}
	return false
}

// protocolPkgNames are the wire-protocol implementation packages the
// layering rule keeps off sim.World: the ROADMAP's multi-backend
// refactor needs protocol code bound to a narrow scheduling interface,
// not to the concrete kernel. netem is deliberately absent — the network
// emulator is kernel-adjacent infrastructure, not protocol code.
var protocolPkgNames = map[string]bool{
	"dnsmsg":   true,
	"dnsproxy": true,
	"dox":      true,
	"h2":       true,
	"h3":       true,
	"quic":     true,
	"tcpsim":   true,
	"tlsmini":  true,
}

// isProtocolPkg reports whether path is one of the protocol packages.
func isProtocolPkg(path string) bool {
	segs := pathSegments(path)
	return isInternalPkg(path) && protocolPkgNames[segs[len(segs)-1]]
}

// isSimPkgPath reports whether path is the simulation kernel package
// (last segment exactly "sim" under an internal tree).
func isSimPkgPath(path string) bool {
	segs := pathSegments(path)
	return isInternalPkg(path) && segs[len(segs)-1] == "sim"
}

// isNetapiPkgPath reports whether path is the backend-seam package
// (last segment exactly "netapi" under an internal tree).
func isNetapiPkgPath(path string) bool {
	segs := pathSegments(path)
	return isInternalPkg(path) && segs[len(segs)-1] == "netapi"
}

// isBytepoolPath reports whether path is the byte-pool package.
func isBytepoolPath(path string) bool {
	segs := pathSegments(path)
	return segs[len(segs)-1] == "bytepool"
}
