package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// wallClockFuncs are the package time functions that read or wait on the
// host's wall clock. time.Duration arithmetic and constants are fine —
// virtual time is expressed in time.Duration — but any call below makes
// simulation output depend on real elapsed time and breaks reproduction.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Sleep":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallClock forbids wall-clock time in deterministic packages.
var NoWallClock = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: `forbid wall-clock time in internal/... packages

Simulation code runs on virtual time (sim.World.Now, sim.World.Sleep,
sim timers). Calling time.Now, time.Since, time.After, time.Sleep, or a
timer constructor couples results to the host clock and breaks the
byte-identical-reports guarantee. Commands under cmd/ are exempt: they
time campaigns for stderr progress lines, which never reach report
output. netapi/livenet is exempt by design: it is the backend that
exists to bind the seam to the wall clock, and nothing it measures
reaches committed reports.`,
	Run: runNoWallClock,
}

func runNoWallClock(pass *analysis.Pass) error {
	if isCmdPkg(pass.Pkg.Path()) || !isInternalPkg(pass.Pkg.Path()) || isLivenetPkg(pass.Pkg.Path()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.CalleeFunc(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" {
			return true
		}
		if wallClockFuncs[f.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; use the sim.World virtual clock (World.Now, World.Sleep, World.AfterFunc)", f.Name())
		}
		return true
	})
	return nil
}
