// Package analysistest runs simlint analyzers over fixture packages and
// checks their diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the local framework.
//
// Fixtures live in a GOPATH-style tree: <testdata>/src/<importpath>/*.go.
// A line expecting diagnostics carries a trailing comment of the form
//
//	code() // want "regexp" "second regexp"
//
// with each quoted (or backquoted) regexp matching exactly one
// diagnostic reported on that line, in any order. Lines without a want
// comment must produce no diagnostics. Because fixtures load through
// lint.Run, //simlint:allow pragmas are honored, so suppression behavior
// is testable: an allowed line simply carries no want comment.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Run loads each fixture package from testdata/src and checks analyzer
// diagnostics (plus any pragma findings) against its want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	pkgs, err := loader.LoadTree(filepath.Join(testdata, "src"), pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	// Match findings to wants per (file, line).
	for _, f := range findings {
		key := posKey{filepath.ToSlash(f.Pos.Filename), f.Pos.Line}
		ws := wants[key]
		matched := false
		for i, w := range ws {
			if w != nil && w.re.MatchString(f.Message) {
				ws[i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Message, f.Rule)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.pattern)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	pattern string
	re      *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// collectWants parses // want comments from every fixture file.
func collectWants(t *testing.T, pkgs []*loader.Package) map[posKey][]*want {
	t.Helper()
	wants := make(map[posKey][]*want)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := posKey{filepath.ToSlash(pos.Filename), pos.Line}
					pats, err := parsePatterns(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					}
					for _, p := range pats {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
						}
						wants[key] = append(wants[key], &want{pattern: p, re: re})
					}
				}
			}
		}
	}
	return wants
}

// parsePatterns reads a sequence of Go string literals ("..." or `...`).
func parsePatterns(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected string literal at %q", s)
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated string in %q", s)
		}
		lit := s[:end+1]
		p, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", lit, err)
		}
		pats = append(pats, p)
		s = strings.TrimSpace(s[end+1:])
	}
	return pats, nil
}
