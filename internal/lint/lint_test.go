package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestNoWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoWallClock,
		"repro/internal/wallclock",
		"repro/internal/badpragma",
		"repro/cmd/timing",
	)
}

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SeededRand,
		"repro/internal/randuser",
		"repro/cmd/timing",
	)
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.MapOrder, "repro/internal/mapiter")
}

func TestPoolOwn(t *testing.T) {
	analysistest.Run(t, "testdata", lint.PoolOwn, "repro/internal/pooluser")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "repro/internal/hotuser")
}

func TestBackendPurity(t *testing.T) {
	analysistest.Run(t, "testdata", lint.BackendPurity,
		"repro/internal/netapi/livenet",
		"repro/internal/netapi/simnet",
		"repro/internal/dox",
		"repro/internal/racing",
	)
}

func TestLayering(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Layering,
		"repro/internal/h2",
		"repro/internal/measurelike",
	)
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	in := lint.Baseline{"repro/internal/quic": 12, "repro/internal/h2": 3, "repro/internal/empty": 0}
	if err := lint.WriteBaseline(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := lint.ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out["repro/internal/quic"] != 12 || out["repro/internal/h2"] != 3 {
		t.Fatalf("round trip = %v", out)
	}
	missing, err := lint.ReadBaseline(filepath.Join(t.TempDir(), "nope.txt"))
	if err != nil || len(missing) != 0 {
		t.Fatalf("missing baseline = %v, %v", missing, err)
	}
}

func TestApplyBaselineRatchet(t *testing.T) {
	findings := []lint.Finding{
		{Rule: "layering", PkgPath: "repro/internal/h2", Message: "a"},
		{Rule: "layering", PkgPath: "repro/internal/h2", Message: "b"},
		{Rule: "layering", PkgPath: "repro/internal/quic", Message: "c"},
		{Rule: "maporder", PkgPath: "repro/internal/report", Message: "d"},
	}
	base := lint.Baseline{"repro/internal/h2": 2, "repro/internal/quic": 2}

	failing, counts, shrunk := lint.ApplyBaseline(findings, base)
	if len(failing) != 1 || failing[0].Rule != "maporder" {
		t.Fatalf("within budget: failing = %v", failing)
	}
	if counts["repro/internal/h2"] != 2 || counts["repro/internal/quic"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if len(shrunk) != 1 || shrunk[0] != "repro/internal/quic 2 -> 1" {
		t.Fatalf("shrunk = %v", shrunk)
	}

	// Growth in one package surfaces that package's entire debt.
	failing, _, _ = lint.ApplyBaseline(findings, lint.Baseline{"repro/internal/h2": 1, "repro/internal/quic": 2})
	var layeringFails int
	for _, f := range failing {
		if f.Rule == "layering" {
			if f.PkgPath != "repro/internal/h2" {
				t.Fatalf("unexpected failing package %s", f.PkgPath)
			}
			layeringFails++
		}
	}
	if layeringFails != 2 {
		t.Fatalf("layering failures = %d, want 2", layeringFails)
	}
}
