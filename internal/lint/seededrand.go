package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// globalRandFuncs are the math/rand (and math/rand/v2) top-level
// functions that draw from the process-global source. The global source
// is shared across goroutines and seeded per process, so any draw from
// it leaks nondeterminism into simulation output.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "UintN": true, "N": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// SeededRand forbids unseeded randomness in deterministic packages.
var SeededRand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: `forbid global math/rand functions and crypto/rand in internal/...

Deterministic packages must draw randomness from a *rand.Rand seeded via
sim.DeriveSeed (or from a World's Rand()), so that every stream is a pure
function of the campaign seed. Top-level math/rand functions use the
shared process-global source; crypto/rand is entropy by design. Both
break byte-identical reproduction.`,
	Run: runSeededRand,
}

func runSeededRand(pass *analysis.Pass) error {
	if isCmdPkg(pass.Pkg.Path()) || !isInternalPkg(pass.Pkg.Path()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			f := analysis.CalleeFunc(pass.TypesInfo, n)
			if f == nil || f.Pkg() == nil {
				return true
			}
			switch f.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[f.Name()] && isPackageLevel(pass, n) {
					pass.Reportf(n.Pos(), "rand.%s draws from the process-global source; use a *rand.Rand seeded via sim.DeriveSeed", f.Name())
				}
			}
		case *ast.SelectorExpr:
			// Any reference into crypto/rand (rand.Reader, rand.Read,
			// rand.Int, ...) is real entropy.
			if obj := pass.TypesInfo.Uses[n.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "crypto/rand" {
				pass.Reportf(n.Pos(), "crypto/rand.%s is nondeterministic entropy; deterministic packages must derive randomness from the campaign seed", n.Sel.Name)
			}
		}
		return true
	})
	return nil
}

// isPackageLevel reports whether call invokes a package-level function
// (not a method): rand.Intn matches, rng.Intn does not.
func isPackageLevel(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil {
		return false
	}
	return f.Type().(*types.Signature).Recv() == nil
}
