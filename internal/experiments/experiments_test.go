package experiments

import (
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{
		Seed:         7,
		Resolvers:    10,
		Rounds:       1,
		WebLoads:     1,
		WebPages:     3,
		WebResolvers: 2,
		ScanScale:    32,
		Loss:         0.001,
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if e.Artifact == "" || e.About == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, ok := ByID("E4"); !ok {
		t.Error("ByID(E4) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) succeeded")
	}
}

func TestAllExperimentsProduceReports(t *testing.T) {
	r := NewRunner(tiny())
	for _, e := range All() {
		out, err := e.Run(r)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short report:\n%s", e.ID, out)
		}
		t.Logf("%s (%s):\n%s", e.ID, e.Artifact, out)
	}
}

func TestE1FunnelNumbersExactAtTinyScale(t *testing.T) {
	r := NewRunner(tiny())
	out, err := runE1(r)
	if err != nil {
		t.Fatal(err)
	}
	// With loss disabled in the scan world the funnel is exact.
	for _, want := range []string{"DoQ verified (ALPN)", "verified DoX resolvers"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in E1 output", want)
		}
	}
}

func TestSingleQueryCachedAcrossExperiments(t *testing.T) {
	r := NewRunner(tiny())
	a, err := r.SingleQuery()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.SingleQuery()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("single-query campaign re-ran instead of being cached")
	}
}
