package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dox"
	"repro/internal/measure"
	"repro/internal/stats"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{
		Seed:         7,
		Resolvers:    10,
		Rounds:       1,
		WebLoads:     1,
		WebPages:     3,
		WebResolvers: 2,
		ScanScale:    32,
		CacheQueries: 40,
		CacheNames:   60,
		Loss:         0.001,
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if e.Artifact == "" || e.About == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, ok := ByID("E4"); !ok {
		t.Error("ByID(E4) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) succeeded")
	}
}

func TestAllExperimentsProduceReports(t *testing.T) {
	r := NewRunner(tiny())
	for _, e := range All() {
		out, err := e.Run(r)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short report:\n%s", e.ID, out)
		}
		t.Logf("%s (%s):\n%s", e.ID, e.Artifact, out)
	}
}

func TestE1FunnelNumbersExactAtTinyScale(t *testing.T) {
	r := NewRunner(tiny())
	out, err := runE1(r)
	if err != nil {
		t.Fatal(err)
	}
	// With loss disabled in the scan world the funnel is exact.
	for _, want := range []string{"DoQ verified (ALPN)", "verified DoX resolvers"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in E1 output", want)
		}
	}
}

func TestSingleQueryCachedAcrossExperiments(t *testing.T) {
	r := NewRunner(tiny())
	a, err := r.SingleQuery()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.SingleQuery()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("single-query campaign re-ran instead of being cached")
	}
}

// TestReportsDeterministicAcrossParallelism enforces the acceptance
// criterion that every experiment E1-E18 — the DoH3 campaigns and the
// cache/Zipf campaigns included — emits a byte-identical report at
// parallelism 1 and parallelism 8 for the same seed. Each parallelism
// level gets a fresh Runner so campaign caches cannot mask a
// divergence.
func TestReportsDeterministicAcrossParallelism(t *testing.T) {
	reports := func(par int) map[string]string {
		cfg := tiny()
		cfg.Parallelism = par
		r := NewRunner(cfg)
		out := map[string]string{}
		for _, res := range RunAll(r, All(), par) {
			if res.Err != nil {
				t.Fatalf("%s: %v", res.Experiment.ID, res.Err)
			}
			out[res.Experiment.ID] = res.Output
		}
		return out
	}
	base := reports(1)
	got := reports(8)
	for _, e := range All() {
		if base[e.ID] != got[e.ID] {
			t.Errorf("%s report differs between parallelism 1 and 8:\n--- p1:\n%s\n--- p8:\n%s",
				e.ID, base[e.ID], got[e.ID])
		}
	}
}

// TestE13DoH3QuerySizesBelowDoH enforces the E13 acceptance criterion
// at the campaign level: over the sixth-transport population, DoH3's
// median query size sits strictly below DoH-over-HTTP/2's (QPACK static
// references, no TCP/TLS layering) while staying above DoQ's bare
// stream framing.
func TestE13DoH3QuerySizesBelowDoH(t *testing.T) {
	r := NewRunner(tiny())
	samples, err := r.SingleQueryDoH3()
	if err != nil {
		t.Fatal(err)
	}
	med := func(p dox.Protocol, f func(measure.SingleQuerySample) int) float64 {
		var xs []float64
		for _, s := range samples {
			if s.OK && s.Protocol == p {
				xs = append(xs, float64(f(s)))
			}
		}
		if len(xs) == 0 {
			t.Fatalf("no OK samples for %v", p)
		}
		return stats.Median(xs)
	}
	q := func(s measure.SingleQuerySample) int { return s.M.QueryTx }
	if h3, h := med(dox.DoH3, q), med(dox.DoH, q); h3 >= h {
		t.Errorf("DoH3 median query %v B not strictly below DoH %v B", h3, h)
	}
	if h3, dq := med(dox.DoH3, q), med(dox.DoQ, q); h3 <= dq {
		t.Errorf("DoH3 median query %v B not above DoQ %v B", h3, dq)
	}
	total := func(s measure.SingleQuerySample) int {
		return s.M.HandshakeTx + s.M.HandshakeRx + s.M.QueryTx + s.M.QueryRx
	}
	if h3, h := med(dox.DoH3, total), med(dox.DoH, total); h3 >= h {
		t.Logf("note: DoH3 median total %v B not below DoH %v B (Initial padding dominates)", h3, h)
	}
}

// TestE17UncachedSlowerThanCached enforces the E17 acceptance shape at
// campaign level: on the lossless baseline, flushing the resolver cache
// before the measured query makes every transport's median resolve pay
// upstream recursion.
func TestE17UncachedSlowerThanCached(t *testing.T) {
	r := NewRunner(tiny())
	out, err := runE17(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cached", "uncached", "DoQ", "DoT"} {
		if !strings.Contains(out, want) {
			t.Errorf("E17 output missing %q:\n%s", want, out)
		}
	}
	// The recursion-cost column must be positive for every transport:
	// an uncached resolve cannot be faster than a cached one on
	// lossless paths.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		switch fields[0] {
		case "DoUDP", "DoTCP", "DoQ", "DoH", "DoT":
			if strings.HasPrefix(fields[3], "-") {
				t.Errorf("%s: uncached faster than cached: %s", fields[0], line)
			}
		}
	}
}

// TestE19GridCoversAllProfiles checks the access grid reports one row
// per named profile and that the satellite handshake medians dwarf
// fiber's (the orbit RTT must be visible, or the access link is not
// being applied).
func TestE19GridCoversAllProfiles(t *testing.T) {
	r := NewRunner(tiny())
	out, err := runE19(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fiber", "cable", "4g", "3g", "satellite"} {
		if !strings.Contains(out, want) {
			t.Errorf("E19 output missing profile %q:\n%s", want, out)
		}
	}
	cells, err := r.AccessGrid()
	if err != nil {
		t.Fatal(err)
	}
	med := func(profile string, p dox.Protocol) float64 {
		for _, c := range cells {
			if c.Profile != profile {
				continue
			}
			var xs []float64
			for _, s := range c.Samples {
				if s.OK && s.Protocol == p {
					xs = append(xs, float64(s.Handshake))
				}
			}
			return stats.Median(xs)
		}
		t.Fatalf("no cell for profile %q", profile)
		return 0
	}
	fiber, sat := med("fiber", dox.DoQ), med("satellite", dox.DoQ)
	// The satellite profile adds 280ms of one-way orbit latency, so a
	// one-round-trip handshake gains ~560ms over fiber.
	if sat < fiber+float64(500*time.Millisecond) {
		t.Errorf("satellite DoQ handshake median %.1fms not >= fiber %.1fms + 500ms orbit RTT",
			sat/1e6, fiber/1e6)
	}
}

// TestE20DoQTailBeatsTCPTransports enforces the E20 acceptance
// criterion at campaign level: in the bursty windows of the schedule,
// DoQ's resolve-time tail must sit below DoT's and DoH's — QUIC's probe
// timeout undercuts the TCP transports' RTO under the same loss bursts.
func TestE20DoQTailBeatsTCPTransports(t *testing.T) {
	// Tail quantiles need more samples than tiny()'s ten resolvers
	// provide: at ~25 bursty samples per transport, p95 is decided by a
	// single exchange's burst luck rather than by the recovery timers.
	cfg := tiny()
	cfg.Resolvers = 24
	r := NewRunner(cfg)
	samples, err := r.BurstLossCampaign()
	if err != nil {
		t.Fatal(err)
	}
	tail := func(p dox.Protocol) float64 {
		var xs []float64
		for _, s := range samples {
			if s.OK && s.Protocol == p && e20InBurst(s.At) {
				xs = append(xs, float64(s.Resolve))
			}
		}
		if len(xs) < 5 {
			t.Fatalf("only %d bursty samples for %v; schedule phases not visited", len(xs), p)
		}
		// p90, the report's headline tail (see runE20: p95 is one
		// exchange's burst luck at this scale).
		return stats.NewCDF(xs).Quantile(0.90)
	}
	doq, dot, doh := tail(dox.DoQ), tail(dox.DoT), tail(dox.DoH)
	if doq >= dot {
		t.Errorf("DoQ bursty p90 %.1fms not below DoT %.1fms", doq/1e6, dot/1e6)
	}
	if doq >= doh {
		t.Errorf("DoQ bursty p90 %.1fms not below DoH %.1fms", doq/1e6, doh/1e6)
	}
}

// TestE16ReportShape checks the E16 grid covers every skew/TTL cell.
func TestE16ReportShape(t *testing.T) {
	r := NewRunner(tiny())
	out, err := runE16(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"30s", "5m0s", "1h0m0s", "hit ratio", "centre cell"} {
		if !strings.Contains(out, want) {
			t.Errorf("E16 output missing %q:\n%s", want, out)
		}
	}
}

// TestRunAllOrderAndCaching checks that RunAll returns results in input
// order and that shared campaigns still run once under concurrency.
func TestRunAllOrderAndCaching(t *testing.T) {
	r := NewRunner(tiny())
	var emitted []string
	results := RunAllFunc(r, All(), 4, func(res Result) {
		emitted = append(emitted, res.Experiment.ID)
	})
	if len(results) != len(All()) {
		t.Fatalf("got %d results", len(results))
	}
	for i, e := range All() {
		if results[i].Experiment.ID != e.ID {
			t.Fatalf("result %d is %s, want %s", i, results[i].Experiment.ID, e.ID)
		}
		if emitted[i] != e.ID {
			t.Fatalf("emit %d was %s, want input order %s", i, emitted[i], e.ID)
		}
		if results[i].Err != nil {
			t.Errorf("%s: %v", e.ID, results[i].Err)
		}
	}
	a, err := r.SingleQuery()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.SingleQuery()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || &a[0] != &b[0] {
		t.Error("single-query campaign was not cached across RunAll")
	}
}
