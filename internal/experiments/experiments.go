// Package experiments binds workloads to the paper's tables and figures:
// one registry entry per artifact (see DESIGN.md §4), each producing a
// textual report comparing the measured shape to the paper's published
// numbers. The cmd/experiments binary and the repository's benchmarks
// drive this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/netem"
	"repro/internal/pages"
	"repro/internal/quic"
	"repro/internal/report"
	"repro/internal/resolver"
	"repro/internal/scan"
	"repro/internal/stats"
	"repro/internal/tlsmini"
)

// Config scales the campaigns. The defaults run every experiment in a
// few seconds; Full() reproduces the paper's population sizes.
type Config struct {
	Seed int64
	// Resolvers is the verified-resolver population size (paper: 313).
	Resolvers int
	// Rounds of the single-query campaign (paper: 84 = 2-hourly for a
	// week).
	Rounds int
	// WebLoads per combination (paper: 4).
	WebLoads int
	// WebPages caps the page list (paper: 10).
	WebPages int
	// WebResolvers caps the resolver count for web campaigns (they are
	// far more expensive per combination).
	WebResolvers int
	// ScanScale divides the scan population (1 = the paper's 1216).
	ScanScale int
	// CacheQueries is the per-[vantage:resolver] Zipf stream length of
	// the cache-workload campaigns (E16).
	CacheQueries int
	// CacheNames sizes the Zipf name universe of those campaigns.
	CacheNames int
	// Loss is the path loss rate. Zero selects the 0.3% default; a
	// genuinely lossless configuration uses resolver.NoLoss (E17 builds
	// its clean cached baseline that way regardless of this knob).
	Loss float64
	// RacingPolicy restricts E25's middlebox grid to one named policy
	// from measure.MiddleboxPolicies (empty = the full grid).
	RacingPolicy string
	// Parallelism sizes the campaign worker pools and the number of
	// experiments RunAll executes concurrently (0 = GOMAXPROCS). It
	// scales wall time only: campaign shard plans and seeds never depend
	// on it, so reports are byte-identical at parallelism 1 and N.
	Parallelism int
}

// Default returns a configuration that keeps every experiment fast while
// preserving the distributions' shape.
func Default() Config {
	return Config{
		Seed:         2022,
		Resolvers:    48,
		Rounds:       1,
		WebLoads:     2,
		WebPages:     10,
		WebResolvers: 6,
		ScanScale:    8,
		CacheQueries: 250,
		CacheNames:   400,
		Loss:         0.003,
	}
}

// Full returns the paper-scale configuration (slow: minutes of wall
// time).
func Full() Config {
	c := Default()
	c.Resolvers = 313
	c.Rounds = 4
	c.WebLoads = 4
	c.WebResolvers = 24
	c.ScanScale = 1
	c.CacheQueries = 2000
	c.CacheNames = 4000
	return c
}

// Experiment is one reproducible artifact.
type Experiment struct {
	ID       string
	Artifact string
	About    string
	Run      func(r *Runner) (string, error)
}

// Runner caches campaign results so experiments sharing a workload (E3
// through E6 all consume the single-query campaign, E1 and E2 the scan)
// run it once. A Runner is safe for concurrent use by RunAll: the first
// caller of a campaign computes it while later callers wait for the
// cached result. Each cached campaign has its own lock so the three
// independent campaigns (scan, single-query, web) can overlap.
type Runner struct {
	Cfg Config

	sqMu      sync.Mutex
	sq        []measure.SingleQuerySample
	sqDone    bool
	webMu     sync.Mutex
	web       []measure.WebSample
	webDone   bool
	scanMu    sync.Mutex
	scan      scan.FunnelResult
	scanDone  bool
	sqH3Mu    sync.Mutex
	sqH3      []measure.SingleQuerySample
	sqH3Done  bool
	webH3Mu   sync.Mutex
	webH3     []measure.WebSample
	webH3Done bool

	accessMu      sync.Mutex
	access        []measure.AccessGridCell
	accessDone    bool
	accessWebMu   sync.Mutex
	accessWeb     []measure.AccessWebGridCell
	accessWebDone bool
	burstMu       sync.Mutex
	burst         []measure.SingleQuerySample
	burstDone     bool
}

// NewRunner creates a Runner for cfg.
func NewRunner(cfg Config) *Runner { return &Runner{Cfg: cfg} }

func (r *Runner) blueprint(seedOffset int64, resolvers int, mutate func(*resolver.Profile)) (*resolver.Blueprint, error) {
	return resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           r.Cfg.Seed + seedOffset,
		ResolverCounts: resolver.ScaledCounts(resolvers),
		Loss:           r.Cfg.Loss,
		MutateProfile:  mutate,
	})
}

// SingleQuery runs (once) the default single-query campaign, sharded
// across the worker pool.
func (r *Runner) SingleQuery() ([]measure.SingleQuerySample, error) {
	r.sqMu.Lock()
	defer r.sqMu.Unlock()
	if r.sqDone {
		return r.sq, nil
	}
	bp, err := r.blueprint(0, r.Cfg.Resolvers, nil)
	if err != nil {
		return nil, err
	}
	r.sq, err = measure.RunSingleQuery(measure.SingleQueryConfig{
		Blueprint:   bp,
		Parallelism: r.Cfg.Parallelism,
		Rounds:      r.Cfg.Rounds,
	})
	if err != nil {
		return nil, err
	}
	r.sqDone = true
	return r.sq, nil
}

// Web runs (once) the default web campaign, sharded across the worker
// pool.
func (r *Runner) Web() ([]measure.WebSample, error) {
	r.webMu.Lock()
	defer r.webMu.Unlock()
	if r.webDone {
		return r.web, nil
	}
	bp, err := r.blueprint(1, r.Cfg.WebResolvers, nil)
	if err != nil {
		return nil, err
	}
	r.web, err = measure.RunWeb(measure.WebConfig{
		Blueprint:   bp,
		Parallelism: r.Cfg.Parallelism,
		Pages:       pages.Top10()[:r.Cfg.WebPages],
		Loads:       r.Cfg.WebLoads,
	})
	if err != nil {
		return nil, err
	}
	r.webDone = true
	return r.web, nil
}

// doh3Protocols is the sixth-transport comparison set of E13–E15: the
// two QUIC transports side by side with DoH over HTTP/2.
var doh3Protocols = []dox.Protocol{dox.DoQ, dox.DoH, dox.DoH3}

// SingleQueryDoH3 runs (once) the sixth-transport single-query campaign
// consumed by E13 and E14: DoQ, DoH and DoH3 over a fresh blueprint.
func (r *Runner) SingleQueryDoH3() ([]measure.SingleQuerySample, error) {
	r.sqH3Mu.Lock()
	defer r.sqH3Mu.Unlock()
	if r.sqH3Done {
		return r.sqH3, nil
	}
	bp, err := r.blueprint(50, r.Cfg.Resolvers, nil)
	if err != nil {
		return nil, err
	}
	r.sqH3, err = measure.RunSingleQuery(measure.SingleQueryConfig{
		Blueprint:   bp,
		Parallelism: r.Cfg.Parallelism,
		Rounds:      r.Cfg.Rounds,
		Protocols:   doh3Protocols,
	})
	if err != nil {
		return nil, err
	}
	r.sqH3Done = true
	return r.sqH3, nil
}

// WebDoH3 runs (once) the sixth-transport web campaign consumed by E15.
func (r *Runner) WebDoH3() ([]measure.WebSample, error) {
	r.webH3Mu.Lock()
	defer r.webH3Mu.Unlock()
	if r.webH3Done {
		return r.webH3, nil
	}
	bp, err := r.blueprint(60, r.Cfg.WebResolvers, nil)
	if err != nil {
		return nil, err
	}
	r.webH3, err = measure.RunWeb(measure.WebConfig{
		Blueprint:   bp,
		Parallelism: r.Cfg.Parallelism,
		Protocols:   doh3Protocols,
		Pages:       pages.Top10()[:r.Cfg.WebPages],
		Loads:       r.Cfg.WebLoads,
	})
	if err != nil {
		return nil, err
	}
	r.webH3Done = true
	return r.webH3, nil
}

// All returns the registry in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Artifact: "§2 scan funnel", About: "1216 DoQ resolvers; 548/706/1149/732 per protocol; 313 verified", Run: runE1},
		{ID: "E2", Artifact: "Fig. 1", About: "geographic and AS distribution of the verified resolvers", Run: runE2},
		{ID: "E3", Artifact: "§3 shares", About: "QUIC/DoQ/TLS version and feature shares", Run: runE3},
		{ID: "E4", Artifact: "Table 1", About: "median single-query sizes and sample counts", Run: runE4},
		{ID: "E5", Artifact: "Fig. 2a", About: "median handshake time per protocol and vantage point", Run: runE5},
		{ID: "E6", Artifact: "Fig. 2b", About: "median resolve time per protocol and vantage point", Run: runE6},
		{ID: "E7", Artifact: "Fig. 3a", About: "CDF of relative FCP differences vs DoUDP", Run: runE7},
		{ID: "E8", Artifact: "Fig. 3b", About: "CDF of relative PLT differences vs DoUDP", Run: runE8},
		{ID: "E9", Artifact: "Fig. 4", About: "PLT grid: DoQ baseline vs DoUDP and DoH per vantage and page", Run: runE9},
		{ID: "E10", Artifact: "§3.1 ablation", About: "DoQ without Session Resumption (amplification limit)", Run: runE10},
		{ID: "E11", Artifact: "§4 ablation", About: "0-RTT enabled at resolvers (future work)", Run: runE11},
		{ID: "E12", Artifact: "§3.2 ablation", About: "DoT proxy in-flight bug vs fixed connection reuse", Run: runE12},
		{ID: "E13", Artifact: "§5 DoH3 sizes", About: "Table-1-style single-query sizes with DoH3: does QPACK+QUIC close the DoH gap?", Run: runE13},
		{ID: "E14", Artifact: "§5 DoH3 timing", About: "handshake and resolve medians per vantage: DoH3 vs DoQ vs DoH", Run: runE14},
		{ID: "E15", Artifact: "§5 DoH3 web", About: "PLT grid with DoH3 as baseline vs DoQ and DoH", Run: runE15},
		{ID: "E16", Artifact: "§4 caching", About: "resolver-cache hit ratio vs Zipf skew and TTL under a many-user workload", Run: runE16},
		{ID: "E17", Artifact: "§4 cached split", About: "cached vs uncached resolve medians per transport on a lossless baseline", Run: runE17},
		{ID: "E18", Artifact: "§4 warm web", About: "PLT grid under a warm shared (stub) cache: does the encrypted penalty survive?", Run: runE18},
		{ID: "E19", Artifact: "§3 access grid", About: "handshake and resolve medians per transport across access-network profiles", Run: runE19},
		{ID: "E20", Artifact: "§3.1 burst loss", About: "resolve tails under Gilbert-Elliott burst loss: DoQ recovery vs the TCP transports", Run: runE20},
		{ID: "E21", Artifact: "§3.2 access web", About: "PLT across access-network profiles: where does the encrypted penalty hurt most?", Run: runE21},
		{ID: "E22", Artifact: "§6 coalescing", About: "in-flight query coalescing: upstream-QPS reduction and tail latency under aligned cohorts", Run: runE22},
		{ID: "E23", Artifact: "§6 serve-stale", About: "RFC 8767 availability and answer-staleness CDF across a scheduled upstream outage", Run: runE23},
		{ID: "E24", Artifact: "§6 prefetch", About: "TTL-expiry prefetch of the Zipf head: stub hit-ratio and p95 resolve lift", Run: runE24},
		{ID: "E25", Artifact: "§7 racing", About: "happy-eyeballs transport racing per middlebox policy: fallback penalty and winning transport", Run: runE25},
		{ID: "E26", Artifact: "§7 migration", About: "PLT with a mid-load wifi-to-4g flip: QUIC connection migration vs TCP reconnect", Run: runE26},
		{ID: "E27", Artifact: "§7 failover", About: "availability through a primary-resolver outage: pinned vs multi-upstream failover", Run: runE27},
	}
}

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Result is one experiment's report (or failure).
type Result struct {
	Experiment Experiment
	Output     string
	Err        error
}

// RunAll executes the given experiments on a shared Runner, up to
// parallelism at a time (0 = GOMAXPROCS), and returns results in input
// order. Experiments sharing a campaign serialize on the Runner's cache,
// so each campaign still runs exactly once; independent experiments
// (scan, ablations, web) proceed concurrently. Reports are identical at
// any parallelism because every campaign underneath is.
//
// Concurrent experiments each spawn their own campaign worker pool, so
// the total goroutine count can exceed parallelism; goroutines are
// cheap, and actual simultaneous execution is bounded by GOMAXPROCS
// (which cmd/experiments pins to -parallel N).
func RunAll(r *Runner, exps []Experiment, parallelism int) []Result {
	return RunAllFunc(r, exps, parallelism, nil)
}

// RunAllFunc is RunAll with streaming: emit, when non-nil, receives each
// result in input order as soon as it and all earlier experiments have
// completed, so a long run shows progress without giving up the
// input-ordered (and therefore parallelism-independent) output.
func RunAllFunc(r *Runner, exps []Experiment, parallelism int, emit func(Result)) []Result {
	results := make([]Result, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		campaign.Run(r.Cfg.Seed, len(exps), parallelism, func(s campaign.Shard) struct{} {
			e := exps[s.Index]
			out, err := e.Run(r)
			results[s.Index] = Result{Experiment: e, Output: out, Err: err}
			close(done[s.Index])
			return struct{}{}
		})
	}()
	for i := range exps {
		<-done[i]
		if emit != nil {
			emit(results[i])
		}
	}
	<-finished
	return results
}

// --- E1 / E2: scan ---

// runScan runs (once) the sharded discovery funnel.
func (r *Runner) runScan() (scan.FunnelResult, scan.PopulationSpec, error) {
	spec := scan.PaperSpec().Scaled(r.Cfg.ScanScale)
	r.scanMu.Lock()
	defer r.scanMu.Unlock()
	if r.scanDone {
		return r.scan, spec, nil
	}
	res, err := scan.RunFunnel(scan.FunnelConfig{
		Seed:        r.Cfg.Seed + 10,
		Spec:        spec,
		Parallelism: r.Cfg.Parallelism,
	})
	if err != nil {
		return scan.FunnelResult{}, spec, err
	}
	r.scan = res
	r.scanDone = true
	return res, spec, nil
}

func runE1(r *Runner) (string, error) {
	res, spec, err := r.runScan()
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:  fmt.Sprintf("E1 — scan funnel (population scale 1/%d)", r.Cfg.ScanScale),
		Header: []string{"stage", "measured", "paper(scaled)", "paper(full)"},
	}
	scale := func(v int) string { return fmt.Sprint(v / r.Cfg.ScanScale) }
	t.Add("addresses probed", fmt.Sprint(res.Probed), "-", "-")
	t.Add("QUIC responsive", fmt.Sprint(res.QUICResponsive), "-", "-")
	t.Add("DoQ verified (ALPN)", fmt.Sprint(res.DoQVerified), scale(1216), "1216")
	t.Add("  + DoUDP", fmt.Sprint(res.Support[dox.DoUDP]), scale(548), "548")
	t.Add("  + DoTCP", fmt.Sprint(res.Support[dox.DoTCP]), scale(706), "706")
	t.Add("  + DoT", fmt.Sprint(res.Support[dox.DoT]), scale(1149), "1149")
	t.Add("  + DoH", fmt.Sprint(res.Support[dox.DoH]), scale(732), "732")
	t.Add("  + DoH3 (beyond paper)", fmt.Sprint(res.Support[dox.DoH3]), "-", "-")
	t.Add("verified DoX resolvers", fmt.Sprint(res.Verified), scale(313), "313")
	_ = spec
	return t.String(), nil
}

func runE2(r *Runner) (string, error) {
	res, _, err := r.runScan()
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:  "E2 — verified resolver distribution (Fig. 1)",
		Header: []string{"continent", "measured", "paper(full)"},
	}
	paper := map[geo.Continent]int{geo.EU: 130, geo.AS: 128, geo.NA: 49, geo.AF: 2, geo.OC: 2, geo.SA: 2}
	for _, c := range geo.Continents {
		t.Add(c.String(), fmt.Sprint(res.ByContinent[c]), fmt.Sprint(paper[c]))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("Top Autonomous Systems (paper: ORACLE 15.0%, DIGITALOCEAN 6.4%, MNGTNET 5.8%, OVHCLOUD 5.1%):\n")
	keys := report.KeysByValue(res.ByASN)
	for i, as := range keys {
		if i >= 4 {
			break
		}
		fmt.Fprintf(&sb, "  %-14s %3d (%s)\n", as, res.ByASN[as], report.Pct(res.ByASN[as], res.Verified))
	}
	return sb.String(), nil
}

// --- E3: version and feature shares ---

func runE3(r *Runner) (string, error) {
	samples, err := r.SingleQuery()
	if err != nil {
		return "", err
	}
	quicVer := map[string]int{}
	alpn := map[string]int{}
	tlsVer := map[string]int{}
	doqN, encN, resumed, zrtt, vn, tok := 0, 0, 0, 0, 0, 0
	for _, s := range samples {
		if !s.OK {
			continue
		}
		if s.Protocol == dox.DoQ {
			doqN++
			quicVer[quic.VersionName(s.M.QUICVersion)]++
			alpn[s.M.DoQALPN]++
			if s.M.UsedVN {
				vn++
			}
			if s.M.UsedToken {
				tok++
			}
		}
		if s.Protocol.Encrypted() {
			encN++
			tlsVer[s.M.TLSVersion.String()]++
			if s.M.UsedResumption {
				resumed++
			}
			if s.M.Used0RTT {
				zrtt++
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("E3 — protocol version and feature shares (§3)\n")
	sb.WriteString("QUIC versions (paper: v1 89.1%, draft-34 8.5%, draft-32 1.8%, draft-29 0.6%):\n")
	for _, k := range report.KeysByValue(quicVer) {
		fmt.Fprintf(&sb, "  %-10s %s\n", k, report.Pct(quicVer[k], doqN))
	}
	sb.WriteString("DoQ versions (paper: doq-i02 87.4%, doq-i03 10.8%, doq-i00 1.8%):\n")
	for _, k := range report.KeysByValue(alpn) {
		fmt.Fprintf(&sb, "  %-10s %s\n", k, report.Pct(alpn[k], doqN))
	}
	sb.WriteString("TLS versions (paper: ~99% TLS 1.3):\n")
	for _, k := range report.KeysByValue(tlsVer) {
		fmt.Fprintf(&sb, "  %-10s %s\n", k, report.Pct(tlsVer[k], encN))
	}
	fmt.Fprintf(&sb, "Session Resumption used: %s (paper: all TLS 1.3 measurements)\n", report.Pct(resumed, encN))
	fmt.Fprintf(&sb, "0-RTT used: %s (paper: no resolver supports it)\n", report.Pct(zrtt, encN))
	fmt.Fprintf(&sb, "DoQ address-validation token reused: %s; Version Negotiation on measured conn: %s (paper: avoided via caching)\n",
		report.Pct(tok, doqN), report.Pct(vn, doqN))
	return sb.String(), nil
}

// --- E4: Table 1 ---

func runE4(r *Runner) (string, error) {
	samples, err := r.SingleQuery()
	if err != nil {
		return "", err
	}
	type sizes struct{ total, hsUp, hsDown, q, resp, n []float64 }
	per := map[dox.Protocol]*sizes{}
	for _, p := range dox.Protocols {
		per[p] = &sizes{}
	}
	counts := map[dox.Protocol]int{}
	for _, s := range samples {
		if !s.OK {
			continue
		}
		counts[s.Protocol]++
		z := per[s.Protocol]
		z.hsUp = append(z.hsUp, float64(s.M.HandshakeTx))
		z.hsDown = append(z.hsDown, float64(s.M.HandshakeRx))
		z.q = append(z.q, float64(s.M.QueryTx))
		z.resp = append(z.resp, float64(s.M.QueryRx))
		z.total = append(z.total, float64(s.M.HandshakeTx+s.M.HandshakeRx+s.M.QueryTx+s.M.QueryRx))
	}
	t := &report.Table{
		Title:  "E4 — Table 1: median single-query sizes (bytes of IP payload)",
		Header: []string{"row", "DoUDP", "DoTCP", "DoQ", "DoH", "DoT", "paper(DoQ/DoH/DoT)"},
	}
	row := func(name string, f func(*sizes) []float64, paper string) {
		cells := []string{name}
		for _, p := range dox.Protocols {
			cells = append(cells, fmt.Sprintf("%.0f", stats.Median(f(per[p]))))
		}
		cells = append(cells, paper)
		t.Add(cells...)
	}
	row("Total", func(z *sizes) []float64 { return z.total }, "4444/2163/1522")
	row("Handshake C->R", func(z *sizes) []float64 { return z.hsUp }, "2564/569/551")
	row("Handshake R->C", func(z *sizes) []float64 { return z.hsDown }, "1304/211/211")
	row("DNS Query", func(z *sizes) []float64 { return z.q }, "190/579/261")
	row("DNS Response", func(z *sizes) []float64 { return z.resp }, "386/804/499")
	sampleRow := []string{"Samples OK"}
	for _, p := range dox.Protocols {
		sampleRow = append(sampleRow, fmt.Sprint(counts[p]))
	}
	sampleRow = append(sampleRow, "~155-160k each (paper)")
	t.Add(sampleRow...)
	return t.String(), nil
}

// --- E5 / E6: Fig. 2 matrices ---

func fig2Matrix(samples []measure.SingleQuerySample, title string, f func(measure.SingleQuerySample) time.Duration, protos []dox.Protocol, skipUDP bool) string {
	rowsOrder := append([]string{"Total"}, vantageNames()...)
	header := []string{"vantage"}
	for _, p := range protos {
		header = append(header, p.String())
	}
	t := &report.Table{Title: title, Header: header}
	for _, rowName := range rowsOrder {
		cells := []string{rowName}
		for _, p := range protos {
			if p == dox.DoUDP && skipUDP {
				cells = append(cells, "-")
				continue
			}
			var xs []float64
			for _, s := range samples {
				if !s.OK || s.Protocol != p {
					continue
				}
				if rowName != "Total" && s.Vantage != rowName {
					continue
				}
				xs = append(xs, float64(f(s)))
			}
			cells = append(cells, report.Ms(stats.Median(xs)))
		}
		t.Add(cells...)
	}
	return t.String()
}

func vantageNames() []string {
	var out []string
	for _, vp := range geo.VantagePoints() {
		out = append(out, vp.Name)
	}
	return out
}

func runE5(r *Runner) (string, error) {
	samples, err := r.SingleQuery()
	if err != nil {
		return "", err
	}
	s := fig2Matrix(samples, "E5 — Fig. 2a: median handshake time (ms)",
		func(s measure.SingleQuerySample) time.Duration { return s.Handshake }, dox.Protocols, true)
	return s + "paper Total row: DoTCP 183.2, DoQ 186.7, DoH 375.8, DoT 376.6\n", nil
}

func runE6(r *Runner) (string, error) {
	samples, err := r.SingleQuery()
	if err != nil {
		return "", err
	}
	s := fig2Matrix(samples, "E6 — Fig. 2b: median resolve time (ms)",
		func(s measure.SingleQuerySample) time.Duration { return s.Resolve }, dox.Protocols, false)
	return s + "paper Total row: DoUDP 183.8, DoTCP 184.8, DoQ 185.4, DoH 187.3, DoT 185.7\n", nil
}

// --- E7 / E8 / E9: web figures ---

// relDiffSeries computes, for each [vantage,resolver,page] combination,
// the relative difference of each protocol's per-combo median metric
// against the baseline protocol.
func relDiffSeries(samples []measure.WebSample, metric func(measure.WebSample) time.Duration, baseline dox.Protocol) map[dox.Protocol][]float64 {
	type key struct {
		vantage  string
		resolver int
		page     string
	}
	med := map[key]map[dox.Protocol][]float64{}
	for _, s := range samples {
		if !s.OK {
			continue
		}
		k := key{s.Vantage, s.ResolverIdx, s.Page}
		if med[k] == nil {
			med[k] = map[dox.Protocol][]float64{}
		}
		med[k][s.Protocol] = append(med[k][s.Protocol], float64(metric(s)))
	}
	out := map[dox.Protocol][]float64{}
	for _, perProto := range med {
		base, ok := perProto[baseline]
		if !ok {
			continue
		}
		b := stats.Median(base)
		if b == 0 {
			continue
		}
		for p, xs := range perProto {
			if p == baseline {
				continue
			}
			out[p] = append(out[p], stats.RelDiff(stats.Median(xs), b))
		}
	}
	return out
}

func fig3(samples []measure.WebSample, title string, metric func(measure.WebSample) time.Duration) string {
	series := relDiffSeries(samples, metric, dox.DoUDP)
	var sb strings.Builder
	sb.WriteString(title + "\n")
	thresholds := []float64{0, 0.10, 0.20}
	for _, p := range []dox.Protocol{dox.DoQ, dox.DoT, dox.DoH, dox.DoTCP} {
		c := stats.NewCDF(series[p])
		sb.WriteString(report.CDFSummary(p.String(), c, thresholds, -0.2, 0.8) + "\n")
	}
	return sb.String()
}

func runE7(r *Runner) (string, error) {
	samples, err := r.Web()
	if err != nil {
		return "", err
	}
	out := fig3(samples, "E7 — Fig. 3a: relative FCP difference vs DoUDP (per-combo medians)",
		func(s measure.WebSample) time.Duration { return s.FCP })
	return out + "paper: ~40% of DoQ loads delay FCP by <=10%; DoT/DoH delay >20% at that fraction\n", nil
}

func runE8(r *Runner) (string, error) {
	samples, err := r.Web()
	if err != nil {
		return "", err
	}
	out := fig3(samples, "E8 — Fig. 3b: relative PLT difference vs DoUDP (per-combo medians)",
		func(s measure.WebSample) time.Duration { return s.PLT })
	return out + "paper: <15% of DoQ loads increase PLT by >15%; >40% of DoH loads do\n", nil
}

func runE9(r *Runner) (string, error) {
	samples, err := r.Web()
	if err != nil {
		return "", err
	}
	series := relDiffSeries(samples, func(s measure.WebSample) time.Duration { return s.PLT }, dox.DoQ)
	_ = series
	// Per (vantage, page): median rel diff of DoUDP and DoH vs DoQ.
	type key struct {
		vantage string
		page    string
	}
	perCell := map[key]map[dox.Protocol][]float64{}
	type comboKey struct {
		vantage  string
		resolver int
		page     string
	}
	med := map[comboKey]map[dox.Protocol][]float64{}
	for _, s := range samples {
		if !s.OK {
			continue
		}
		k := comboKey{s.Vantage, s.ResolverIdx, s.Page}
		if med[k] == nil {
			med[k] = map[dox.Protocol][]float64{}
		}
		med[k][s.Protocol] = append(med[k][s.Protocol], float64(s.PLT))
	}
	doqFasterThanDoH, cells := 0, 0
	for k, perProto := range med {
		base := stats.Median(perProto[dox.DoQ])
		if base == 0 {
			continue
		}
		ck := key{k.vantage, k.page}
		if perCell[ck] == nil {
			perCell[ck] = map[dox.Protocol][]float64{}
		}
		for _, p := range []dox.Protocol{dox.DoUDP, dox.DoH} {
			if xs := perProto[p]; len(xs) > 0 {
				perCell[ck][p] = append(perCell[ck][p], stats.RelDiff(stats.Median(xs), base))
			}
		}
		if xs := perProto[dox.DoH]; len(xs) > 0 {
			cells++
			if stats.Median(xs) > base {
				doqFasterThanDoH++
			}
		}
	}
	pageOrder := []string{}
	for _, p := range pages.Top10() {
		pageOrder = append(pageOrder, p.Name)
	}
	t := &report.Table{
		Title:  "E9 — Fig. 4: median relative PLT vs DoQ baseline (DoUDP | DoH), per vantage and page",
		Header: append([]string{"vantage"}, pageOrder...),
	}
	for _, vp := range vantageNames() {
		cellsRow := []string{vp}
		for _, pg := range pageOrder {
			m := perCell[key{vp, pg}]
			if m == nil {
				cellsRow = append(cellsRow, "-")
				continue
			}
			cellsRow = append(cellsRow, fmt.Sprintf("%s|%s",
				stats.FormatPct(stats.Median(m[dox.DoUDP])),
				stats.FormatPct(stats.Median(m[dox.DoH]))))
		}
		t.Add(cellsRow...)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "DoQ faster than DoH in %s of [vantage:resolver:page] combinations (paper: DoQ mostly improves on DoH; up to 10%% for simple pages)\n",
		report.Pct(doqFasterThanDoH, cells))
	// Amortization: rel diff DoUDP-vs-DoQ per page (negative = DoUDP faster).
	sb.WriteString("Amortization (median DoUDP-vs-DoQ rel. PLT per page; paper: -10% simple pages -> ~-2% complex):\n")
	var pagesSorted []string
	seen := map[string]bool{}
	for _, pg := range pageOrder {
		if !seen[pg] {
			seen[pg] = true
			pagesSorted = append(pagesSorted, pg)
		}
	}
	sort.SliceStable(pagesSorted, func(i, j int) bool {
		return pages.ByName(pagesSorted[i]).DNSQueryCount() < pages.ByName(pagesSorted[j]).DNSQueryCount()
	})
	for _, pg := range pagesSorted {
		var xs []float64
		for _, vp := range vantageNames() {
			if m := perCell[key{vp, pg}]; m != nil {
				xs = append(xs, m[dox.DoUDP]...)
			}
		}
		if len(xs) > 0 {
			fmt.Fprintf(&sb, "  %-10s (%d queries): %s\n", pg, pages.ByName(pg).DNSQueryCount(), stats.FormatPct(stats.Median(xs)))
		}
	}
	return sb.String(), nil
}

// --- E10 / E11 / E12: ablations ---

func runE10(r *Runner) (string, error) {
	bp, err := r.blueprint(20, r.Cfg.Resolvers, nil)
	if err != nil {
		return "", err
	}
	with, err := measure.RunSingleQuery(measure.SingleQueryConfig{
		Blueprint: bp, Parallelism: r.Cfg.Parallelism,
		Protocols: []dox.Protocol{dox.DoQ, dox.DoH, dox.DoT},
	})
	if err != nil {
		return "", err
	}
	without, err := measure.RunSingleQuery(measure.SingleQueryConfig{
		Blueprint: bp, Parallelism: r.Cfg.Parallelism,
		Protocols: []dox.Protocol{dox.DoQ, dox.DoH, dox.DoT}, DisableResumption: true,
	})
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:  "E10 — handshake medians with vs without Session Resumption (ms)",
		Header: []string{"protocol", "resumed", "cold", "penalty"},
	}
	for _, p := range []dox.Protocol{dox.DoQ, dox.DoH, dox.DoT} {
		a := medianHandshake(with, p)
		b := medianHandshake(without, p)
		t.Add(p.String(), report.Ms(a), report.Ms(b), stats.FormatPct(stats.RelDiff(b, a)))
	}
	return t.String() + "paper: ~40% of cold DoQ handshakes pay +1 RTT (amplification limit); Session Resumption removes it\n", nil
}

func medianHandshake(samples []measure.SingleQuerySample, p dox.Protocol) float64 {
	var xs []float64
	for _, s := range samples {
		if s.OK && s.Protocol == p {
			xs = append(xs, float64(s.Handshake))
		}
	}
	return stats.Median(xs)
}

func runE11(r *Runner) (string, error) {
	mk := func(zeroRTT bool) ([]measure.SingleQuerySample, error) {
		bp, err := r.blueprint(30, r.Cfg.Resolvers, func(p *resolver.Profile) {
			p.AcceptEarlyData = zeroRTT
		})
		if err != nil {
			return nil, err
		}
		return measure.RunSingleQuery(measure.SingleQueryConfig{
			Blueprint: bp, Parallelism: r.Cfg.Parallelism,
			Protocols: []dox.Protocol{dox.DoQ}, Use0RTT: zeroRTT,
		})
	}
	base, err := mk(false)
	if err != nil {
		return "", err
	}
	early, err := mk(true)
	if err != nil {
		return "", err
	}
	total := func(samples []measure.SingleQuerySample) float64 {
		var xs []float64
		for _, s := range samples {
			if s.OK {
				xs = append(xs, float64(s.Total))
			}
		}
		return stats.Median(xs)
	}
	used := 0
	okN := 0
	for _, s := range early {
		if s.OK {
			okN++
			if s.M.Used0RTT {
				used++
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("E11 — 0-RTT at resolvers (the paper's future work, §4)\n")
	fmt.Fprintf(&sb, "median DoQ total response time (connect to answer): baseline %sms, with 0-RTT %sms (0-RTT used in %s of sessions)\n",
		report.Ms(total(base)), report.Ms(total(early)), report.Pct(used, okN))
	sb.WriteString("expectation: 0-RTT shifts DoQ total response time close to DoUDP's single round trip\n")
	return sb.String(), nil
}

func runE12(r *Runner) (string, error) {
	run := func(fixed bool) ([]measure.WebSample, error) {
		bp, err := r.blueprint(40, r.Cfg.WebResolvers, nil)
		if err != nil {
			return nil, err
		}
		return measure.RunWeb(measure.WebConfig{
			Blueprint:   bp,
			Parallelism: r.Cfg.Parallelism,
			Protocols:   []dox.Protocol{dox.DoUDP, dox.DoT},
			Pages:       pages.Top10()[:r.Cfg.WebPages],
			Loads:       r.Cfg.WebLoads,
			FixDoTReuse: fixed,
		})
	}
	buggy, err := run(false)
	if err != nil {
		return "", err
	}
	fixed, err := run(true)
	if err != nil {
		return "", err
	}
	med := func(samples []measure.WebSample) float64 {
		series := relDiffSeries(samples, func(s measure.WebSample) time.Duration { return s.PLT }, dox.DoUDP)
		return stats.Median(series[dox.DoT])
	}
	var sb strings.Builder
	sb.WriteString("E12 — DoT proxy in-flight bug (paper §3.2 root cause + community contribution)\n")
	fmt.Fprintf(&sb, "median DoT PLT penalty vs DoUDP: buggy proxy %s, fixed proxy %s\n",
		stats.FormatPct(med(buggy)), stats.FormatPct(med(fixed)))
	sb.WriteString("paper: the bug repeats the full DoT handshake in ~60% of page loads, making DoT look worse than DoH;\n")
	sb.WriteString("the authors' upstream fix (reproduced by FixDoTReuse) removes the artifact\n")
	return sb.String(), nil
}

// --- E13 / E14 / E15: the sixth transport (DoH3) ---

// runE13 answers the paper's §5 open question in Table 1 terms: once DoH
// rides HTTP/3 over the same QUIC stack as DoQ, how much of its size
// overhead survives? QPACK's static-table references replace the
// first-request HPACK literals, the HTTP/2 preface and TCP+TLS framing
// disappear, and the remaining gap to DoQ is pure HTTP framing.
func runE13(r *Runner) (string, error) {
	samples, err := r.SingleQueryDoH3()
	if err != nil {
		return "", err
	}
	type sizes struct{ total, hsUp, hsDown, q, resp []float64 }
	per := map[dox.Protocol]*sizes{}
	counts := map[dox.Protocol]int{}
	for _, p := range doh3Protocols {
		per[p] = &sizes{}
	}
	for _, s := range samples {
		if !s.OK {
			continue
		}
		counts[s.Protocol]++
		z := per[s.Protocol]
		z.hsUp = append(z.hsUp, float64(s.M.HandshakeTx))
		z.hsDown = append(z.hsDown, float64(s.M.HandshakeRx))
		z.q = append(z.q, float64(s.M.QueryTx))
		z.resp = append(z.resp, float64(s.M.QueryRx))
		z.total = append(z.total, float64(s.M.HandshakeTx+s.M.HandshakeRx+s.M.QueryTx+s.M.QueryRx))
	}
	t := &report.Table{
		Title:  "E13 — Table-1-style median single-query sizes with DoH3 (bytes of IP payload)",
		Header: []string{"row", "DoQ", "DoH", "DoH3", "paper(DoQ/DoH)"},
	}
	row := func(name string, f func(*sizes) []float64, paper string) {
		cells := []string{name}
		for _, p := range doh3Protocols {
			cells = append(cells, fmt.Sprintf("%.0f", stats.Median(f(per[p]))))
		}
		cells = append(cells, paper)
		t.Add(cells...)
	}
	row("Total", func(z *sizes) []float64 { return z.total }, "4444/2163")
	row("Handshake C->R", func(z *sizes) []float64 { return z.hsUp }, "2564/569")
	row("Handshake R->C", func(z *sizes) []float64 { return z.hsDown }, "1304/211")
	row("DNS Query", func(z *sizes) []float64 { return z.q }, "190/579")
	row("DNS Response", func(z *sizes) []float64 { return z.resp }, "386/804")
	sampleRow := []string{"Samples OK"}
	for _, p := range doh3Protocols {
		sampleRow = append(sampleRow, fmt.Sprint(counts[p]))
	}
	sampleRow = append(sampleRow, "no DoH3 in paper (§5)")
	t.Add(sampleRow...)
	var sb strings.Builder
	sb.WriteString(t.String())
	qH, qH3, qQ := stats.Median(per[dox.DoH].q), stats.Median(per[dox.DoH3].q), stats.Median(per[dox.DoQ].q)
	fmt.Fprintf(&sb, "DoH3 median query: %.0f B vs DoH %.0f B (%s; QPACK static refs, no TCP/TLS layering) and DoQ %.0f B (%s; HTTP framing remains)\n",
		qH3, qH, stats.FormatPct(stats.RelDiff(qH3, qH)), qQ, stats.FormatPct(stats.RelDiff(qH3, qQ)))
	sb.WriteString("expectation (§5): moving DoH onto QUIC sheds most of the framing/header overhead but not all of DoQ's edge\n")
	return sb.String(), nil
}

func runE14(r *Runner) (string, error) {
	samples, err := r.SingleQueryDoH3()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(fig2Matrix(samples, "E14 — median handshake time per vantage: DoH3 vs DoQ vs DoH (ms)",
		func(s measure.SingleQuerySample) time.Duration { return s.Handshake }, doh3Protocols, false))
	sb.WriteString(fig2Matrix(samples, "E14 — median resolve time per vantage (ms)",
		func(s measure.SingleQuerySample) time.Duration { return s.Resolve }, doh3Protocols, false))
	sb.WriteString("expectation: DoH3 handshakes match DoQ (one combined QUIC round trip, resumed), one RTT below DoH's TCP+TLS; resolve times converge across all three\n")
	return sb.String(), nil
}

// runE15 renders the Fig. 4 grid with DoH3 as the baseline: per vantage
// and page, the median relative PLT of DoQ and DoH against DoH3.
func runE15(r *Runner) (string, error) {
	samples, err := r.WebDoH3()
	if err != nil {
		return "", err
	}
	type comboKey struct {
		vantage  string
		resolver int
		page     string
	}
	med := map[comboKey]map[dox.Protocol][]float64{}
	for _, s := range samples {
		if !s.OK {
			continue
		}
		k := comboKey{s.Vantage, s.ResolverIdx, s.Page}
		if med[k] == nil {
			med[k] = map[dox.Protocol][]float64{}
		}
		med[k][s.Protocol] = append(med[k][s.Protocol], float64(s.PLT))
	}
	type key struct {
		vantage string
		page    string
	}
	perCell := map[key]map[dox.Protocol][]float64{}
	doh3FasterThanDoH, cells := 0, 0
	for k, perProto := range med {
		base := stats.Median(perProto[dox.DoH3])
		if base == 0 {
			continue
		}
		ck := key{k.vantage, k.page}
		if perCell[ck] == nil {
			perCell[ck] = map[dox.Protocol][]float64{}
		}
		for _, p := range []dox.Protocol{dox.DoQ, dox.DoH} {
			if xs := perProto[p]; len(xs) > 0 {
				perCell[ck][p] = append(perCell[ck][p], stats.RelDiff(stats.Median(xs), base))
			}
		}
		if xs := perProto[dox.DoH]; len(xs) > 0 {
			cells++
			if stats.Median(xs) > base {
				doh3FasterThanDoH++
			}
		}
	}
	pageOrder := []string{}
	for _, p := range pages.Top10() {
		pageOrder = append(pageOrder, p.Name)
	}
	t := &report.Table{
		Title:  "E15 — PLT grid, DoH3 baseline: median relative PLT (DoQ | DoH), per vantage and page",
		Header: append([]string{"vantage"}, pageOrder...),
	}
	for _, vp := range vantageNames() {
		cellsRow := []string{vp}
		for _, pg := range pageOrder {
			m := perCell[key{vp, pg}]
			if m == nil {
				cellsRow = append(cellsRow, "-")
				continue
			}
			cellsRow = append(cellsRow, fmt.Sprintf("%s|%s",
				stats.FormatPct(stats.Median(m[dox.DoQ])),
				stats.FormatPct(stats.Median(m[dox.DoH]))))
		}
		t.Add(cellsRow...)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "DoH3 faster than DoH in %s of [vantage:resolver:page] combinations (positive DoH cells = DoH slower than the DoH3 baseline)\n",
		report.Pct(doh3FasterThanDoH, cells))
	sb.WriteString("expectation (§5): page loads over DoH3 sit at DoQ's level — the HTTP layer costs bytes, not round trips\n")
	return sb.String(), nil
}

// --- E16 / E17 / E18: caching and Zipf workloads ---

// cacheGridSkews and cacheGridTTLs span the E16 grid: from a nearly
// flat popularity law to a heavily concentrated one, and from a
// short-lived record to a long-lived one.
var (
	cacheGridSkews = []float64{1.05, 1.3, 2.0}
	cacheGridTTLs  = []time.Duration{30 * time.Second, 300 * time.Second, 3600 * time.Second}
)

// runE16 measures the resolver-side cache under a many-users workload:
// per (Zipf skew, record TTL) cell, a query stream with that popularity
// law runs against resolvers whose answers live for that TTL, and the
// cell reports the shared cache's hit ratio. This is the regime the
// paper appeals to when it attributes the cached/uncached resolution
// split to resolver caching — the simulator could not express it while
// every campaign query was a unique cold name.
func runE16(r *Runner) (string, error) {
	queries, names := r.Cfg.CacheQueries, r.Cfg.CacheNames
	if queries == 0 {
		queries = 250
	}
	if names == 0 {
		names = 400
	}
	header := []string{"TTL \\ skew"}
	for _, s := range cacheGridSkews {
		header = append(header, fmt.Sprintf("%.2f", s))
	}
	t := &report.Table{
		Title:  fmt.Sprintf("E16 — resolver-cache hit ratio vs Zipf skew and TTL (%d queries/stream, %d names)", queries, names),
		Header: header,
	}
	var mid measure.CacheWorkloadSummary
	for ti, ttl := range cacheGridTTLs {
		cells := []string{ttl.String()}
		for si, skew := range cacheGridSkews {
			bp, err := r.blueprint(70+int64(ti*len(cacheGridSkews)+si), r.Cfg.WebResolvers, func(p *resolver.Profile) {
				// The cell isolates cache dynamics: answer every query
				// and pin the TTL under test.
				p.ResponseRate = 1
				p.CacheTTL = ttl
			})
			if err != nil {
				return "", err
			}
			sums, err := measure.RunCacheWorkload(measure.CacheWorkloadConfig{
				Blueprint:   bp,
				Parallelism: r.Cfg.Parallelism,
				Queries:     queries,
				Names:       names,
				Skew:        skew,
			})
			if err != nil {
				return "", err
			}
			all := measure.MergeCacheSummaries(sums)
			cells = append(cells, fmt.Sprintf("%.1f%%", all.ResolverCache.HitRatio()*100))
			if ti == 1 && si == 1 {
				mid = all
			}
		}
		t.Add(cells...)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "centre cell (skew 1.30, TTL 5m): %d/%d answered; median resolve hit %s ms vs miss %s ms; %d expirations\n",
		mid.OK, mid.Queries,
		report.Ms(float64(mid.HitResolve.MedianDuration())), report.Ms(float64(mid.MissResolve.MedianDuration())),
		mid.ResolverCache.Expirations)
	sb.WriteString("expectation: hit ratio rises with skew (popular names dominate) and with TTL (fewer expirations)\n")
	return sb.String(), nil
}

// runE17 reproduces the paper's cached/uncached split per transport on
// a genuinely lossless baseline — the configuration the zero-loss trap
// made inexpressible. Both campaigns warm the session (ticket, token,
// version); the uncached arm then flushes the resolver's answer cache,
// so the only difference between the two medians is upstream recursion.
func runE17(r *Runner) (string, error) {
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           r.Cfg.Seed + 80,
		ResolverCounts: resolver.ScaledCounts(r.Cfg.Resolvers),
		Loss:           resolver.NoLoss,
	})
	if err != nil {
		return "", err
	}
	run := func(flush bool) ([]measure.SingleQuerySample, error) {
		return measure.RunSingleQuery(measure.SingleQueryConfig{
			Blueprint:          bp,
			Parallelism:        r.Cfg.Parallelism,
			FlushResolverCache: flush,
		})
	}
	cached, err := run(false)
	if err != nil {
		return "", err
	}
	uncached, err := run(true)
	if err != nil {
		return "", err
	}
	medResolve := func(samples []measure.SingleQuerySample, p dox.Protocol) float64 {
		var xs []float64
		for _, s := range samples {
			if s.OK && s.Protocol == p {
				xs = append(xs, float64(s.Resolve))
			}
		}
		return stats.Median(xs)
	}
	t := &report.Table{
		Title:  "E17 — median resolve time, cached vs uncached, lossless paths (ms)",
		Header: []string{"protocol", "cached", "uncached", "recursion cost"},
	}
	for _, p := range dox.Protocols {
		c := medResolve(cached, p)
		u := medResolve(uncached, p)
		t.Add(p.String(), report.Ms(c), report.Ms(u), stats.FormatPct(stats.RelDiff(u, c)))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("paper: cached responses collapse upstream recursion, leaving the encrypted handshake as the dominant cost;\n")
	sb.WriteString("the uncached-minus-cached gap approximates the population's median recursive-lookup latency on every transport\n")
	return sb.String(), nil
}

// runE18 renders the Fig. 4-style PLT grid under a warm shared cache:
// each combination's DNS proxy keeps a client-side answer cache that
// survives session resets, so the warming navigation leaves the
// measured loads resolving repeated names locally.
func runE18(r *Runner) (string, error) {
	protos := []dox.Protocol{dox.DoUDP, dox.DoQ, dox.DoH}
	run := func(warm bool) ([]measure.WebSample, error) {
		bp, err := r.blueprint(90, r.Cfg.WebResolvers, nil)
		if err != nil {
			return nil, err
		}
		return measure.RunWeb(measure.WebConfig{
			Blueprint:   bp,
			Parallelism: r.Cfg.Parallelism,
			Protocols:   protos,
			Pages:       pages.Top10()[:r.Cfg.WebPages],
			Loads:       r.Cfg.WebLoads,
			StubCache:   warm,
		})
	}
	cold, err := run(false)
	if err != nil {
		return "", err
	}
	warm, err := run(true)
	if err != nil {
		return "", err
	}
	type comboKey struct {
		vantage  string
		resolver int
		page     string
	}
	type cellKey struct {
		vantage string
		page    string
	}
	grid := func(samples []measure.WebSample) map[cellKey]map[dox.Protocol][]float64 {
		med := map[comboKey]map[dox.Protocol][]float64{}
		for _, s := range samples {
			if !s.OK {
				continue
			}
			k := comboKey{s.Vantage, s.ResolverIdx, s.Page}
			if med[k] == nil {
				med[k] = map[dox.Protocol][]float64{}
			}
			med[k][s.Protocol] = append(med[k][s.Protocol], float64(s.PLT))
		}
		perCell := map[cellKey]map[dox.Protocol][]float64{}
		for k, perProto := range med {
			base := stats.Median(perProto[dox.DoUDP])
			if base == 0 {
				continue
			}
			ck := cellKey{k.vantage, k.page}
			if perCell[ck] == nil {
				perCell[ck] = map[dox.Protocol][]float64{}
			}
			for _, p := range []dox.Protocol{dox.DoQ, dox.DoH} {
				if xs := perProto[p]; len(xs) > 0 {
					perCell[ck][p] = append(perCell[ck][p], stats.RelDiff(stats.Median(xs), base))
				}
			}
		}
		return perCell
	}
	warmCells := grid(warm)
	coldCells := grid(cold)
	pageOrder := []string{}
	for _, p := range pages.Top10()[:r.Cfg.WebPages] {
		pageOrder = append(pageOrder, p.Name)
	}
	t := &report.Table{
		Title:  "E18 — PLT grid under a warm shared (stub) cache: median relative PLT vs DoUDP (DoQ | DoH)",
		Header: append([]string{"vantage"}, pageOrder...),
	}
	for _, vp := range vantageNames() {
		cellsRow := []string{vp}
		for _, pg := range pageOrder {
			m := warmCells[cellKey{vp, pg}]
			if m == nil {
				cellsRow = append(cellsRow, "-")
				continue
			}
			cellsRow = append(cellsRow, fmt.Sprintf("%s|%s",
				stats.FormatPct(stats.Median(m[dox.DoQ])),
				stats.FormatPct(stats.Median(m[dox.DoH]))))
		}
		t.Add(cellsRow...)
	}
	overall := func(cells map[cellKey]map[dox.Protocol][]float64, p dox.Protocol) float64 {
		var xs []float64
		for _, m := range cells {
			xs = append(xs, m[p]...)
		}
		return stats.Median(xs)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "median PLT penalty vs DoUDP, cold proxy -> warm stub cache: DoQ %s -> %s, DoH %s -> %s\n",
		stats.FormatPct(overall(coldCells, dox.DoQ)), stats.FormatPct(overall(warmCells, dox.DoQ)),
		stats.FormatPct(overall(coldCells, dox.DoH)), stats.FormatPct(overall(warmCells, dox.DoH)))
	sb.WriteString("expectation: with repeated names absorbed at the stub, upstream DNS leaves the page-load critical path\n")
	sb.WriteString("and the encrypted transports' PLT penalty shrinks toward DoUDP's\n")
	return sb.String(), nil
}

// --- E19 / E20 / E21: the dynamic link model ---

// AccessGrid runs (once) the per-profile single-query grid consumed by
// E19: the same population behind each named access link.
func (r *Runner) AccessGrid() ([]measure.AccessGridCell, error) {
	r.accessMu.Lock()
	defer r.accessMu.Unlock()
	if r.accessDone {
		return r.access, nil
	}
	cells, err := measure.RunAccessGrid(measure.AccessGridConfig{
		Seed:           r.Cfg.Seed + 100,
		ResolverCounts: resolver.ScaledCounts(r.Cfg.Resolvers),
		Loss:           r.Cfg.Loss,
		Parallelism:    r.Cfg.Parallelism,
		Rounds:         r.Cfg.Rounds,
	})
	if err != nil {
		return nil, err
	}
	r.access = cells
	r.accessDone = true
	return cells, nil
}

// The E20 burst-loss schedule: the campaign alternates 60-second clean
// and bursty windows, so every shard's serial measurement loop (paced
// by QuerySpacing) keeps crossing degrade/recover boundaries. In the
// bursty windows a Gilbert-Elliott chain with ~4-datagram mean bursts
// at 45% loss replaces the baseline independent loss.
const (
	e20Period = 60 * time.Second
	// e20Steps covers over four simulated hours. The campaign packs its
	// rounds e20RoundInterval apart (not the default 2h — round spacing
	// is sampling, not a subject here), so even a -full run ends long
	// before the schedule does and the phase classification below never
	// desynchronizes. Lookup is a binary search (netem.PathAt) and the
	// per-pair step slices are shard-transient, so the step count costs
	// neither send-path time nor resident memory.
	e20Steps         = 256
	e20RoundInterval = 5 * time.Minute
)

var e20Burst = netem.BurstLoss{PGoodBad: 0.08, PBadGood: 0.25, LossBad: 0.45}

func e20Phases(baseLoss float64) []resolver.PathPhase {
	phases := make([]resolver.PathPhase, e20Steps)
	for i := range phases {
		phases[i].At = time.Duration(i) * e20Period
		if i%2 == 1 {
			phases[i].Burst = e20Burst
		} else {
			phases[i].Loss = baseLoss
		}
	}
	return phases
}

// e20InBurst classifies a sample by its shard-local measurement time,
// mirroring the installed schedule exactly: past the schedule horizon
// the last (bursty) step holds forever, so samples there classify as
// bursty rather than resuming a phantom alternation. (The default
// campaign ends hours before the horizon; this matters only for
// configurations with very large Rounds.)
func e20InBurst(at time.Duration) bool {
	step := int(at / e20Period)
	if step >= e20Steps {
		step = e20Steps - 1
	}
	return step%2 == 1
}

// BurstLossCampaign runs (once) the scheduled burst-loss campaign of
// E20.
func (r *Runner) BurstLossCampaign() ([]measure.SingleQuerySample, error) {
	r.burstMu.Lock()
	defer r.burstMu.Unlock()
	if r.burstDone {
		return r.burst, nil
	}
	loss := r.Cfg.Loss
	if loss == 0 {
		loss = 0.003
	}
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           r.Cfg.Seed + 105,
		ResolverCounts: resolver.ScaledCounts(r.Cfg.Resolvers),
		Loss:           r.Cfg.Loss,
		PathPhases:     e20Phases(loss),
	})
	if err != nil {
		return nil, err
	}
	// Tail quantiles need samples: run at least two rounds regardless
	// of the configured default (the rounds land in different schedule
	// windows, so they also decorrelate burst luck across the grid).
	rounds := r.Cfg.Rounds
	if rounds < 2 {
		rounds = 2
	}
	r.burst, err = measure.RunSingleQuery(measure.SingleQueryConfig{
		Blueprint:     bp,
		Parallelism:   r.Cfg.Parallelism,
		Rounds:        rounds,
		RoundInterval: e20RoundInterval,
		QuerySpacing:  2 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	r.burstDone = true
	return r.burst, nil
}

// AccessWebGrid runs (once) the per-profile web grid consumed by E21.
func (r *Runner) AccessWebGrid() ([]measure.AccessWebGridCell, error) {
	r.accessWebMu.Lock()
	defer r.accessWebMu.Unlock()
	if r.accessWebDone {
		return r.accessWeb, nil
	}
	cells, err := measure.RunAccessWebGrid(measure.AccessGridConfig{
		Seed:           r.Cfg.Seed + 110,
		ResolverCounts: resolver.ScaledCounts(r.Cfg.WebResolvers),
		Loss:           r.Cfg.Loss,
		Parallelism:    r.Cfg.Parallelism,
		Protocols:      []dox.Protocol{dox.DoUDP, dox.DoQ, dox.DoH},
		Pages:          pages.Top10()[:r.Cfg.WebPages],
		Loads:          r.Cfg.WebLoads,
	})
	if err != nil {
		return nil, err
	}
	r.accessWeb = cells
	r.accessWebDone = true
	return cells, nil
}

// runE19 reports the paper's vantage-diversity observation on the
// access-network axis the simulator can now express: the same resolver
// population measured from behind fiber, cable, 4G, 3G and satellite
// links. Slow uplinks stretch the multi-round-trip encrypted handshakes
// far more than the single-datagram Do53 exchange, and the satellite
// profile's orbit latency dominates everything.
func runE19(r *Runner) (string, error) {
	cells, err := r.AccessGrid()
	if err != nil {
		return "", err
	}
	header := []string{"profile"}
	for _, p := range dox.Protocols {
		header = append(header, p.String())
	}
	t := &report.Table{
		Title:  "E19 — access-network grid: median handshake | resolve per transport (ms)",
		Header: header,
	}
	for _, cell := range cells {
		row := []string{cell.Profile}
		for _, p := range dox.Protocols {
			var hs, res []float64
			for _, s := range cell.Samples {
				if !s.OK || s.Protocol != p {
					continue
				}
				hs = append(hs, float64(s.Handshake))
				res = append(res, float64(s.Resolve))
			}
			if p == dox.DoUDP {
				row = append(row, "-|"+report.Ms(stats.Median(res)))
				continue
			}
			row = append(row, report.Ms(stats.Median(hs))+"|"+report.Ms(stats.Median(res)))
		}
		t.Add(row...)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("expectation: the encrypted handshake penalty grows as the access link slows (serialization of the TLS\n")
	sb.WriteString("flights) and the satellite profile's ~560ms orbit RTT multiplies every handshake round trip\n")
	return sb.String(), nil
}

// runE20 measures resolve-time tails while the vantage-resolver paths
// alternate between clean windows and Gilbert-Elliott burst-loss
// windows. This is the regime where the paper argues QUIC's loss
// recovery pays off: DoQ's probe timeout (2*srtt+30ms) undercuts the
// TCP transports' RTO (2*srtt+50ms), so in the bursty windows DoQ's
// tail sits below DoT's and DoH's while the medians stay comparable.
func runE20(r *Runner) (string, error) {
	samples, err := r.BurstLossCampaign()
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title: fmt.Sprintf("E20 — resolve time under Gilbert-Elliott burst loss (60s clean / 60s bursty; bad state: %.0f%% loss, mean burst %.1f datagrams)",
			e20Burst.LossBad*100, 1/e20Burst.PBadGood),
		Header: []string{"protocol", "clean p50", "bursty p50", "bursty p90", "bursty p95", "n(bursty)"},
	}
	// The headline tail is p90: at campaign scale the p95 sample is a
	// single exchange's burst luck on whichever path happens to sit
	// there (path RTTs span 130-760ms), while p90 is stable enough to
	// show the structural recovery-timer difference.
	tail := map[dox.Protocol]float64{}
	for _, p := range dox.Protocols {
		var clean, burst []float64
		for _, s := range samples {
			if !s.OK || s.Protocol != p {
				continue
			}
			if e20InBurst(s.At) {
				burst = append(burst, float64(s.Resolve))
			} else {
				clean = append(clean, float64(s.Resolve))
			}
		}
		bc := stats.NewCDF(burst)
		tail[p] = bc.Quantile(0.90)
		t.Add(p.String(), report.Ms(stats.Median(clean)), report.Ms(bc.Median()),
			report.Ms(bc.Quantile(0.90)), report.Ms(bc.Quantile(0.95)), fmt.Sprint(len(burst)))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "bursty p90: DoQ %s ms vs DoT %s ms / DoH %s ms — %s\n",
		report.Ms(tail[dox.DoQ]), report.Ms(tail[dox.DoT]), report.Ms(tail[dox.DoH]),
		map[bool]string{true: "DoQ's loss recovery wins the tail", false: "NO DoQ tail advantage (unexpected)"}[tail[dox.DoQ] < tail[dox.DoT] && tail[dox.DoQ] < tail[dox.DoH]])
	sb.WriteString("paper (§3.1): DoQ keeps resolution times close to Do53 even under adverse paths; TCP-based transports\n")
	sb.WriteString("pay their coarser retransmission timeout in exactly these windows\n")
	return sb.String(), nil
}

// runE21 renders the PLT view of the access grid: per profile, the
// median absolute DoUDP page load time and the relative penalty of DoQ
// and DoH against it (per-combo medians, the Fig. 4 aggregation). On
// fast links the DNS protocol is visible in the totals; on slow links
// content serialization dominates and the relative encrypted penalty
// compresses — except where lossy profiles hit the TCP transports.
func runE21(r *Runner) (string, error) {
	cells, err := r.AccessWebGrid()
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:  "E21 — PLT across access profiles: median DoUDP PLT (ms) and relative penalty (DoQ | DoH)",
		Header: []string{"profile", "PLT(DoUDP)", "DoQ", "DoH", "loads OK"},
	}
	for _, cell := range cells {
		var udp []float64
		ok := 0
		for _, s := range cell.Samples {
			if !s.OK {
				continue
			}
			ok++
			if s.Protocol == dox.DoUDP {
				udp = append(udp, float64(s.PLT))
			}
		}
		series := relDiffSeries(cell.Samples, func(s measure.WebSample) time.Duration { return s.PLT }, dox.DoUDP)
		t.Add(cell.Profile,
			report.Ms(stats.Median(udp)),
			stats.FormatPct(stats.Median(series[dox.DoQ])),
			stats.FormatPct(stats.Median(series[dox.DoH])),
			fmt.Sprint(ok))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("expectation: absolute PLT explodes as the downlink shrinks (content serialization through the real\n")
	sb.WriteString("link); the relative encrypted-DNS penalty is largest on fast links and compresses once content dominates\n")
	return sb.String(), nil
}

// Ensure unused import pruning doesn't bite.
var _ = tlsmini.VersionTLS13
