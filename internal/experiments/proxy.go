package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/resolver"
	"repro/internal/stats"
)

// The proxy serving-semantics experiments (E22–E24, DESIGN.md §8) share
// one campaign shape: per [vantage : resolver] a local DNS proxy with a
// cohort of aligned stub clients behind it (measure.RunProxyServe). Each
// experiment toggles one serving feature and reports its effect.

// proxyRounds scales the per-client stream length off the cache-campaign
// knob so the tiny test config stays fast, with a floor that keeps the
// dynamics (TTL expiries, outage windows) observable.
func (r *Runner) proxyRounds() int {
	rounds := r.Cfg.CacheQueries / 2
	if rounds < 20 {
		rounds = 20
	}
	return rounds
}

func (r *Runner) proxyNames() int {
	if r.Cfg.CacheNames > 0 {
		return r.Cfg.CacheNames
	}
	return 400
}

// runE22 measures in-flight coalescing: Clients identical queries are in
// flight together each round, so without coalescing every stub-cache
// miss costs the cohort Clients upstream exchanges, and with it exactly
// one. The headline number is the upstream-QPS reduction; the latency
// rows show waiters are not penalized for sharing.
func runE22(r *Runner) (string, error) {
	const clients = 4
	rounds := r.proxyRounds()
	run := func(coalesce bool) (measure.ProxyServeSummary, error) {
		bp, err := r.blueprint(120, r.Cfg.WebResolvers, func(p *resolver.Profile) {
			// Isolate the coalescing dynamics: answer every query and pin
			// a short TTL so popular names keep re-expiring into the
			// concurrent-miss regime.
			p.ResponseRate = 1
			p.CacheTTL = 5 * time.Second
		})
		if err != nil {
			return measure.ProxyServeSummary{}, err
		}
		sums, err := measure.RunProxyServe(measure.ProxyServeConfig{
			Blueprint:   bp,
			Parallelism: r.Cfg.Parallelism,
			Clients:     clients,
			Queries:     rounds,
			Names:       r.proxyNames(),
			Coalesce:    coalesce,
		})
		if err != nil {
			return measure.ProxyServeSummary{}, err
		}
		return measure.MergeProxyServeSummaries(sums), nil
	}
	off, err := run(false)
	if err != nil {
		return "", err
	}
	on, err := run(true)
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:  fmt.Sprintf("E22 — in-flight query coalescing (%d aligned clients, %d rounds/client)", clients, rounds),
		Header: []string{"coalescing", "answered", "upstream queries", "coalesced", "resolve p50 (ms)", "resolve p95 (ms)"},
	}
	row := func(label string, s measure.ProxyServeSummary) {
		t.Add(label,
			fmt.Sprintf("%d/%d", s.OK, s.Queries),
			fmt.Sprintf("%d", s.UpstreamQueries),
			fmt.Sprintf("%d", s.Coalesced),
			report.Ms(s.Resolve.Quantile(0.5)),
			report.Ms(s.Resolve.Quantile(0.95)))
	}
	row("off", off)
	row("on", on)
	var sb strings.Builder
	sb.WriteString(t.String())
	reduction := 0.0
	if off.UpstreamQueries > 0 {
		reduction = 1 - float64(on.UpstreamQueries)/float64(off.UpstreamQueries)
	}
	fmt.Fprintf(&sb, "upstream-QPS reduction: %s (%d -> %d exchanges for the same %d answered queries)\n",
		stats.FormatPct(reduction), off.UpstreamQueries, on.UpstreamQueries, on.OK)
	sb.WriteString("expectation: with aligned cohorts every concurrent miss collapses to one exchange, approaching (clients-1)/clients\n")
	return sb.String(), nil
}

// runE23 measures RFC 8767 serve-stale across a scheduled total upstream
// outage. The classification window starts one TTL into the outage, when
// every pre-outage entry has expired: without serve-stale nothing can be
// answered there, with it the Zipf head survives on stale answers and is
// revalidated after recovery.
func runE23(r *Runner) (string, error) {
	rounds := r.proxyRounds()
	total := time.Duration(rounds) * time.Second
	ttl := total / 10
	outStart, outEnd := total*2/5, total*7/10
	// Advertised TTLs round up, so a pre-outage entry can outlive the
	// nominal boundary by up to a second; pad the window start past it.
	classifyStart := outStart + ttl + 2*time.Second
	run := func(serveStale bool) (measure.ProxyServeSummary, error) {
		bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
			Seed:           r.Cfg.Seed + 130,
			ResolverCounts: resolver.ScaledCounts(r.Cfg.WebResolvers),
			Loss:           r.Cfg.Loss,
			PathPhases:     resolver.OutagePhases(r.Cfg.Loss, outStart, outEnd),
			MutateProfile: func(p *resolver.Profile) {
				p.ResponseRate = 1
				p.CacheTTL = ttl
			},
		})
		if err != nil {
			return measure.ProxyServeSummary{}, err
		}
		sums, err := measure.RunProxyServe(measure.ProxyServeConfig{
			Blueprint:   bp,
			Parallelism: r.Cfg.Parallelism,
			Clients:     2,
			Queries:     rounds,
			Names:       r.proxyNames(),
			ServeStale:  serveStale,
			// Fail fast upstream so the stale fallback beats the client's
			// 3s budget: 3 x 500ms attempts, then answer from the cache.
			UDPTimeout:    500 * time.Millisecond,
			ClassifyStart: classifyStart,
			ClassifyEnd:   outEnd,
		})
		if err != nil {
			return measure.ProxyServeSummary{}, err
		}
		return measure.MergeProxyServeSummaries(sums), nil
	}
	off, err := run(false)
	if err != nil {
		return "", err
	}
	on, err := run(true)
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title: fmt.Sprintf("E23 — serve-stale availability across a total outage [%s, %s), TTL %s, window [%s, %s)",
			outStart, outEnd, ttl, classifyStart, outEnd),
		Header: []string{"serve-stale", "availability in window", "stale served", "revalidations", "answered overall"},
	}
	row := func(label string, s measure.ProxyServeSummary) {
		t.Add(label,
			fmt.Sprintf("%s (%d/%d)", stats.FormatPct(s.Availability()), s.WindowOK, s.WindowQueries),
			fmt.Sprintf("%d", s.StaleServed),
			fmt.Sprintf("%d", s.Revalidations),
			fmt.Sprintf("%d/%d", s.OK, s.Queries))
	}
	row("off", off)
	row("on", on)
	var sb strings.Builder
	sb.WriteString(t.String())
	if on.StaleAge.N() > 0 {
		fmt.Fprintf(&sb, "answer staleness (age past expiry): p50 %s, p90 %s, max %s over %d stale answers\n",
			on.StaleAge.QuantileDuration(0.5).Round(time.Millisecond),
			on.StaleAge.QuantileDuration(0.9).Round(time.Millisecond),
			time.Duration(on.StaleAge.Max()).Round(time.Millisecond),
			on.StaleAge.N())
	}
	sb.WriteString("expectation: the window starts one TTL into the outage, so the off arm has nothing cached to answer from;\n")
	sb.WriteString("the on arm keeps the Zipf head alive on stale answers and revalidates it once the path heals\n")
	return sb.String(), nil
}

// runE24 measures TTL-expiry prefetch: the hotness tracker marks the
// Zipf head, and the proxy refreshes those names just before expiry, so
// the cohort's repeat queries stay stub hits instead of paying a full
// upstream exchange every TTL.
func runE24(r *Runner) (string, error) {
	rounds := r.proxyRounds()
	// A hot-head regime: a small, highly skewed name universe whose TTL
	// lapses several times per stream. Here the head's periodic cold
	// misses are a visible share of the latency distribution, which is
	// exactly what prefetch removes.
	names := r.proxyNames() / 10
	if names < 12 {
		names = 12
	}
	run := func(prefetch bool) (measure.ProxyServeSummary, error) {
		bp, err := r.blueprint(140, r.Cfg.WebResolvers, func(p *resolver.Profile) {
			p.ResponseRate = 1
			p.CacheTTL = 5 * time.Second
		})
		if err != nil {
			return measure.ProxyServeSummary{}, err
		}
		sums, err := measure.RunProxyServe(measure.ProxyServeConfig{
			Blueprint:   bp,
			Parallelism: r.Cfg.Parallelism,
			Clients:     2,
			Queries:     rounds,
			Names:       names,
			Skew:        1.5,
			Prefetch:    prefetch,
		})
		if err != nil {
			return measure.ProxyServeSummary{}, err
		}
		return measure.MergeProxyServeSummaries(sums), nil
	}
	off, err := run(false)
	if err != nil {
		return "", err
	}
	on, err := run(true)
	if err != nil {
		return "", err
	}
	hitRatio := func(s measure.ProxyServeSummary) float64 {
		if s.ProxyQueries == 0 {
			return 0
		}
		return float64(s.StubHits) / float64(s.ProxyQueries)
	}
	t := &report.Table{
		Title:  fmt.Sprintf("E24 — TTL-expiry prefetch of the Zipf head (%d rounds/client, %d names, TTL 5s)", rounds, names),
		Header: []string{"prefetch", "stub hit ratio", "prefetches", "upstream queries", "resolve p50 (ms)", "resolve p95 (ms)"},
	}
	row := func(label string, s measure.ProxyServeSummary) {
		t.Add(label,
			stats.FormatPct(hitRatio(s)),
			fmt.Sprintf("%d", s.Prefetches),
			fmt.Sprintf("%d", s.UpstreamQueries),
			report.Ms(s.Resolve.Quantile(0.5)),
			report.Ms(s.Resolve.Quantile(0.95)))
	}
	row("off", off)
	row("on", on)
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "stub hit-ratio lift: %s -> %s; p95 lift: %s -> %s ms\n",
		stats.FormatPct(hitRatio(off)), stats.FormatPct(hitRatio(on)),
		report.Ms(off.Resolve.Quantile(0.95)), report.Ms(on.Resolve.Quantile(0.95)))
	sb.WriteString("expectation: hot names are refreshed before expiry, so repeat queries never pay the upstream exchange;\n")
	sb.WriteString("the tail improves because the head's periodic cold misses disappear from the distribution\n")
	return sb.String(), nil
}
