package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dox"
	"repro/internal/dox/racing"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/resolver"
	"repro/internal/stats"
)

// The hostile-network experiments (E25–E27, DESIGN.md §11) measure the
// resilience machinery this repository adds around the paper's
// transports: the happy-eyeballs racing stub across middlebox fault
// policies, QUIC connection migration through a mid-load access flip,
// and multi-upstream failover through a resolver outage.

// runE25 measures the racing fallback stub per middlebox policy: which
// transport wins, what the fallback penalty (race duration) is, and
// what the sticky steady state costs afterwards.
func runE25(r *Runner) (string, error) {
	bp, err := r.blueprint(150, r.Cfg.WebResolvers, func(p *resolver.Profile) {
		// Isolate the fallback dynamics from resolver flakiness.
		p.ResponseRate = 1
	})
	if err != nil {
		return "", err
	}
	rc := measure.RacingConfig{
		Blueprint:   bp,
		Parallelism: r.Cfg.Parallelism,
	}
	if want := r.Cfg.RacingPolicy; want != "" {
		for _, pol := range measure.MiddleboxPolicies() {
			if pol.Name == want {
				rc.Policies = []measure.MiddleboxPolicy{pol}
			}
		}
		if len(rc.Policies) == 0 {
			return "", fmt.Errorf("unknown middlebox policy %q", want)
		}
	}
	samples, err := measure.RunRacing(rc)
	if err != nil {
		return "", err
	}
	type cell struct {
		winners map[dox.Protocol]int
		race    *stats.Sketch // first-resolve race time (fallback penalty)
		sticky  *stats.Sketch // steady-state resolve time
		ok, n   int
	}
	cells := map[string]*cell{}
	for _, s := range samples {
		c := cells[s.Policy]
		if c == nil {
			c = &cell{winners: map[dox.Protocol]int{}, race: stats.NewSketch(), sticky: stats.NewSketch()}
			cells[s.Policy] = c
		}
		c.n++
		if !s.OK {
			continue
		}
		c.ok++
		if s.Sticky {
			c.sticky.AddDuration(s.Resolve)
		} else {
			c.winners[s.Winner]++
			c.race.AddDuration(s.RaceTime)
		}
	}
	t := &report.Table{
		Title:  "E25 — racing fallback ladder (DoQ > DoH3 > DoT > DoH > Do53) per middlebox policy",
		Header: []string{"policy", "answered", "winning transport", "race p50 (ms)", "race p95 (ms)", "sticky p50 (ms)"},
	}
	for _, pol := range measure.MiddleboxPolicies() {
		c := cells[pol.Name]
		if c == nil {
			continue
		}
		winner := "-"
		best := 0
		for _, p := range racing.DefaultLadder() {
			if c.winners[p] > best {
				winner, best = p.String(), c.winners[p]
			}
		}
		t.Add(pol.Name,
			fmt.Sprintf("%d/%d", c.ok, c.n),
			fmt.Sprintf("%s (%d/%d races)", winner, best, c.race.N()),
			report.Ms(c.race.Quantile(0.5)),
			report.Ms(c.race.Quantile(0.95)),
			report.Ms(c.sticky.Quantile(0.5)))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("expectation: an open path is won by DoQ at the top of the ladder; blocking UDP 853 pushes the win to DoH3,\n")
	sb.WriteString("a full UDP blackhole to DoT (one stagger later), and active rejection costs less than a silent drop because\n")
	sb.WriteString("the refused rungs fail fast instead of burning their attempt budget\n")
	return sb.String(), nil
}

// runE26 measures page loads through a mid-load access flip (wifi to
// 4g): the QUIC upstreams migrate the proxy's session with one path
// validation round trip, the TCP upstreams tear down and pay a resumed
// handshake on the next query.
func runE26(r *Runner) (string, error) {
	bp, err := resolver.NewBlueprint(resolver.UniverseConfig{
		Seed:           r.Cfg.Seed + 160,
		ResolverCounts: resolver.ScaledCounts(r.Cfg.WebResolvers),
		Loss:           r.Cfg.Loss,
		Access:         "wifi",
	})
	if err != nil {
		return "", err
	}
	samples, err := measure.RunMigrationWeb(measure.MigrationWebConfig{
		Blueprint:   bp,
		Parallelism: r.Cfg.Parallelism,
	})
	if err != nil {
		return "", err
	}
	type cell struct {
		plt             *stats.Sketch
		migrated, ok, n int
	}
	cells := map[dox.Protocol]*cell{}
	for _, s := range samples {
		c := cells[s.Protocol]
		if c == nil {
			c = &cell{plt: stats.NewSketch()}
			cells[s.Protocol] = c
		}
		c.n++
		if s.Migrated {
			c.migrated++
		}
		if s.OK {
			c.ok++
			c.plt.AddDuration(s.PLT)
		}
	}
	t := &report.Table{
		Title:  "E26 — PLT with a mid-load wifi-to-4g flip: QUIC migration vs TCP reconnect",
		Header: []string{"protocol", "loads", "sessions migrated", "PLT p50 (ms)", "PLT p95 (ms)"},
	}
	order := []dox.Protocol{dox.DoQ, dox.DoH3, dox.DoT, dox.DoH}
	for _, p := range order {
		c := cells[p]
		if c == nil {
			continue
		}
		t.Add(p.String(),
			fmt.Sprintf("%d/%d", c.ok, c.n),
			fmt.Sprintf("%d/%d", c.migrated, c.n),
			report.Ms(c.plt.Quantile(0.5)),
			report.Ms(c.plt.Quantile(0.95)))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	if q, tcp := cells[dox.DoQ], cells[dox.DoT]; q != nil && tcp != nil && q.plt.N() > 0 && tcp.plt.N() > 0 {
		fmt.Fprintf(&sb, "median PLT, DoQ (migrates) vs DoT (reconnects): %s vs %s ms\n",
			report.Ms(q.plt.Quantile(0.5)), report.Ms(tcp.plt.Quantile(0.5)))
	}
	sb.WriteString("expectation: DoQ and DoH3 carry their upstream session across the flip (one PATH_CHALLENGE round trip),\n")
	sb.WriteString("while DoT and DoH reconnect — so post-flip DNS lookups on the TCP transports pay a fresh handshake\n")
	sb.WriteString("on the slower access network and their PLT tail stretches\n")
	return sb.String(), nil
}

// runE27 measures availability and latency of a steady query stream
// through a 15-second primary-resolver outage, pinned to the primary vs
// backed by the failover health tracker.
func runE27(r *Runner) (string, error) {
	bp, err := r.blueprint(170, r.Cfg.WebResolvers, func(p *resolver.Profile) {
		p.ResponseRate = 1
	})
	if err != nil {
		return "", err
	}
	cfg := measure.FailoverCampaignConfig{
		Blueprint:   bp,
		Parallelism: r.Cfg.Parallelism,
		OutageStart: 10 * time.Second,
		OutageEnd:   25 * time.Second,
	}
	samples, err := measure.RunFailoverCampaign(cfg)
	if err != nil {
		return "", err
	}
	type cell struct {
		resolve            *stats.Sketch
		winOK, winN, ok, n int
		switched           int // window queries served by a non-primary upstream
	}
	cells := map[string]*cell{}
	for _, s := range samples {
		c := cells[s.Arm]
		if c == nil {
			c = &cell{resolve: stats.NewSketch()}
			cells[s.Arm] = c
		}
		c.n++
		if s.OK {
			c.ok++
			c.resolve.AddDuration(s.Resolve)
		}
		if s.At >= cfg.OutageStart && s.At < cfg.OutageEnd {
			c.winN++
			if s.OK {
				c.winOK++
				if s.Upstream != 0 {
					c.switched++
				}
			}
		}
	}
	t := &report.Table{
		Title: fmt.Sprintf("E27 — resolver failover through a primary outage [%s, %s) (eject after %d consecutive timeouts)",
			cfg.OutageStart, cfg.OutageEnd, racing.DefaultEjectAfter),
		Header: []string{"arm", "availability in outage", "served by backup", "answered overall", "resolve p50 (ms)", "resolve p95 (ms)"},
	}
	for _, arm := range []string{"pinned", "failover"} {
		c := cells[arm]
		if c == nil {
			continue
		}
		avail := 0.0
		if c.winN > 0 {
			avail = float64(c.winOK) / float64(c.winN)
		}
		t.Add(arm,
			fmt.Sprintf("%s (%d/%d)", stats.FormatPct(avail), c.winOK, c.winN),
			fmt.Sprintf("%d", c.switched),
			fmt.Sprintf("%d/%d", c.ok, c.n),
			report.Ms(c.resolve.Quantile(0.5)),
			report.Ms(c.resolve.Quantile(0.95)))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("expectation: the pinned arm loses the whole outage window to timeouts; the failover arm pays the ejection\n")
	sb.WriteString("threshold (a few consecutive timeouts), then serves from a backup upstream until the jittered cooldown\n")
	sb.WriteString("readmits the primary after recovery\n")
	return sb.String(), nil
}
