package campaign

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestBlocksPartition(t *testing.T) {
	cases := []struct {
		n, size int
		want    []Span
	}{
		{0, 4, nil},
		{1, 4, []Span{{0, 1}}},
		{4, 4, []Span{{0, 4}}},
		{5, 4, []Span{{0, 3}, {3, 5}}}, // remainder 1 < 4/2: rebalanced
		{8, 4, []Span{{0, 4}, {4, 8}}},
		{6, 4, []Span{{0, 4}, {4, 6}}},                   // remainder 2 = 4/2: untouched
		{10, 3, []Span{{0, 3}, {3, 6}, {6, 8}, {8, 10}}}, // tail 3+1 → 2+2
		{7, 0, []Span{{0, 7}}},                           // size 0 = one span
		{3, 100, []Span{{0, 3}}},                         // oversized block clamps
	}
	for _, c := range cases {
		got := Blocks(c.n, c.size)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Blocks(%d,%d) = %v, want %v", c.n, c.size, got, c.want)
		}
	}
}

func TestBlocksCoverEveryIndexOnce(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for size := 1; size <= 10; size++ {
			seen := make([]int, n)
			for _, s := range Blocks(n, size) {
				if s.Len() <= 0 || s.Len() > size {
					t.Fatalf("Blocks(%d,%d): bad span %v", n, size, s)
				}
				for i := s.Lo; i < s.Hi; i++ {
					seen[i]++
				}
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("Blocks(%d,%d): index %d covered %d times", n, size, i, c)
				}
			}
		}
	}
}

// TestBlocksNoTinyTail sweeps awkward (n, size) pairs — remainders of 1,
// near-multiples, size just over n/2 — and checks the anti-pathology
// guarantee: whenever the plan has more than one span, no span is
// smaller than half a block.
func TestBlocksNoTinyTail(t *testing.T) {
	cases := [][2]int{
		{33, 32}, {65, 32}, {97, 32}, {321, 32}, // remainder 1
		{31, 32}, {63, 32}, // just under a multiple
		{17, 16}, {49, 16}, {100, 16},
		{9, 8}, {1000, 999}, {11, 7}, {13, 12},
	}
	for _, c := range cases {
		n, size := c[0], c[1]
		spans := Blocks(n, size)
		if len(spans) < 2 {
			continue
		}
		for _, s := range spans {
			if s.Len()*2 < size {
				t.Errorf("Blocks(%d,%d) = %v: span %v smaller than half a block", n, size, spans, s)
			}
			if s.Len() > size {
				t.Errorf("Blocks(%d,%d): span %v exceeds block size", n, size, s)
			}
		}
	}
	// The rebalance stays local: earlier spans keep the exact block size.
	spans := Blocks(97, 32)
	if spans[0] != (Span{0, 32}) || len(spans) != 4 {
		t.Errorf("Blocks(97,32) = %v: leading spans must stay full blocks", spans)
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := Workers(4, 10); w != 4 {
		t.Errorf("Workers(4,10) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Errorf("Workers(8,3) = %d (must not exceed shards)", w)
	}
	if w := Workers(0, 100); w < 1 {
		t.Errorf("Workers(0,100) = %d", w)
	}
}

// TestRunGatherOrder checks that results land at their shard index no
// matter the parallelism.
func TestRunGatherOrder(t *testing.T) {
	for _, par := range []int{1, 2, 7, 64} {
		got := Run(42, 23, par, func(s Shard) int { return s.Index * 10 })
		for i, v := range got {
			if v != i*10 {
				t.Fatalf("parallelism %d: results[%d] = %d", par, i, v)
			}
		}
	}
}

// TestRunShardSeedsIndependentOfParallelism is the core determinism
// property: shard seeds depend only on (campaign seed, index).
func TestRunShardSeedsIndependentOfParallelism(t *testing.T) {
	seeds := func(par int) []int64 {
		return Run(7, 16, par, func(s Shard) int64 { return s.Seed })
	}
	want := seeds(1)
	for _, par := range []int{2, 4, 16} {
		if got := seeds(par); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d changed shard seeds", par)
		}
	}
	for i, s := range want {
		if s != sim.DeriveSeed(7, uint64(i)) {
			t.Errorf("shard %d seed = %d, want DeriveSeed", i, s)
		}
	}
	// A different campaign seed must reshuffle every shard seed.
	other := Run(8, 16, 1, func(s Shard) int64 { return s.Seed })
	for i := range want {
		if want[i] == other[i] {
			t.Errorf("shard %d seed identical across campaign seeds", i)
		}
	}
}

// TestRunActuallyParallel checks that with parallelism N, N shards can
// be in flight at once (workers don't serialize behind each other).
func TestRunActuallyParallel(t *testing.T) {
	const par = 4
	var inFlight, peak int32
	var mu sync.Mutex
	gate := make(chan struct{})
	Run(1, par, par, func(s Shard) int {
		n := atomic.AddInt32(&inFlight, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		if int(n) == par {
			close(gate) // all workers arrived; release everyone
		}
		<-gate
		atomic.AddInt32(&inFlight, -1)
		return 0
	})
	if peak != par {
		t.Errorf("peak concurrency = %d, want %d", peak, par)
	}
}

// TestStealingSkewedCampaign is the scheduler's core property test: a
// campaign where one shard costs ~10× the others must (a) produce
// byte-identical results at parallelism 1, 2, and 8, and (b) actually
// steal — more than one worker finishes shards outside its static span.
func TestStealingSkewedCampaign(t *testing.T) {
	const n = 16
	run := func(s Shard) string {
		d := 2 * time.Millisecond
		if s.Index == 0 {
			d = 20 * time.Millisecond // the skewed shard
		}
		time.Sleep(d)
		return fmt.Sprintf("shard %d seed %d", s.Index, s.Seed)
	}
	want, _ := RunTraced(99, n, 1, run)
	for _, par := range []int{2, 8} {
		got, workerOf := RunTraced(99, n, par, run)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d changed results:\n got %v\nwant %v", par, got, want)
		}
		workers := Workers(par, n)
		spans := staticSpans(n, workers)
		owner := func(i int) int {
			for w, sp := range spans {
				if i >= sp.Lo && i < sp.Hi {
					return w
				}
			}
			return -1
		}
		stolen := 0
		finishers := map[int]bool{}
		for i, w := range workerOf {
			finishers[w] = true
			if w != owner(i) {
				stolen++
			}
		}
		if stolen == 0 {
			t.Errorf("parallelism %d: no shard was stolen despite 10x skew (workerOf=%v)", par, workerOf)
		}
		if len(finishers) < 2 {
			t.Errorf("parallelism %d: only %d worker(s) finished shards", par, len(finishers))
		}
	}
}

// TestStealVictimIsMostLoaded pins the victim-selection policy: a thief
// takes the tail shard of the worker with the most remaining work.
func TestStealVictimIsMostLoaded(t *testing.T) {
	st := &stealState{spans: []Span{{0, 0}, {4, 6}, {6, 12}}}
	if i, ok := st.next(0); !ok || i != 11 {
		t.Fatalf("steal = %d, %v; want tail of most-loaded span (11)", i, ok)
	}
	if st.spans[2] != (Span{6, 11}) {
		t.Fatalf("victim span = %v after steal", st.spans[2])
	}
	// Own work always beats stealing.
	if i, ok := st.next(1); !ok || i != 4 {
		t.Fatalf("own-span next = %d, %v; want 4", i, ok)
	}
}

func TestConcat(t *testing.T) {
	got := Concat([][]int{{1, 2}, nil, {3}, {}, {4, 5}})
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Errorf("Concat = %v", got)
	}
}
