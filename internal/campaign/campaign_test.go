package campaign

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func TestBlocksPartition(t *testing.T) {
	cases := []struct {
		n, size int
		want    []Span
	}{
		{0, 4, nil},
		{1, 4, []Span{{0, 1}}},
		{4, 4, []Span{{0, 4}}},
		{5, 4, []Span{{0, 4}, {4, 5}}},
		{8, 4, []Span{{0, 4}, {4, 8}}},
		{10, 3, []Span{{0, 3}, {3, 6}, {6, 9}, {9, 10}}},
		{7, 0, []Span{{0, 7}}},   // size 0 = one span
		{3, 100, []Span{{0, 3}}}, // oversized block clamps
	}
	for _, c := range cases {
		got := Blocks(c.n, c.size)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Blocks(%d,%d) = %v, want %v", c.n, c.size, got, c.want)
		}
	}
}

func TestBlocksCoverEveryIndexOnce(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for size := 1; size <= 10; size++ {
			seen := make([]int, n)
			for _, s := range Blocks(n, size) {
				if s.Len() <= 0 || s.Len() > size {
					t.Fatalf("Blocks(%d,%d): bad span %v", n, size, s)
				}
				for i := s.Lo; i < s.Hi; i++ {
					seen[i]++
				}
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("Blocks(%d,%d): index %d covered %d times", n, size, i, c)
				}
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := Workers(4, 10); w != 4 {
		t.Errorf("Workers(4,10) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Errorf("Workers(8,3) = %d (must not exceed shards)", w)
	}
	if w := Workers(0, 100); w < 1 {
		t.Errorf("Workers(0,100) = %d", w)
	}
}

// TestRunGatherOrder checks that results land at their shard index no
// matter the parallelism.
func TestRunGatherOrder(t *testing.T) {
	for _, par := range []int{1, 2, 7, 64} {
		got := Run(42, 23, par, func(s Shard) int { return s.Index * 10 })
		for i, v := range got {
			if v != i*10 {
				t.Fatalf("parallelism %d: results[%d] = %d", par, i, v)
			}
		}
	}
}

// TestRunShardSeedsIndependentOfParallelism is the core determinism
// property: shard seeds depend only on (campaign seed, index).
func TestRunShardSeedsIndependentOfParallelism(t *testing.T) {
	seeds := func(par int) []int64 {
		return Run(7, 16, par, func(s Shard) int64 { return s.Seed })
	}
	want := seeds(1)
	for _, par := range []int{2, 4, 16} {
		if got := seeds(par); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d changed shard seeds", par)
		}
	}
	for i, s := range want {
		if s != sim.DeriveSeed(7, uint64(i)) {
			t.Errorf("shard %d seed = %d, want DeriveSeed", i, s)
		}
	}
	// A different campaign seed must reshuffle every shard seed.
	other := Run(8, 16, 1, func(s Shard) int64 { return s.Seed })
	for i := range want {
		if want[i] == other[i] {
			t.Errorf("shard %d seed identical across campaign seeds", i)
		}
	}
}

// TestRunActuallyParallel checks that with parallelism N, N shards can
// be in flight at once (workers don't serialize behind each other).
func TestRunActuallyParallel(t *testing.T) {
	const par = 4
	var inFlight, peak int32
	var mu sync.Mutex
	gate := make(chan struct{})
	Run(1, par, par, func(s Shard) int {
		n := atomic.AddInt32(&inFlight, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		if int(n) == par {
			close(gate) // all workers arrived; release everyone
		}
		<-gate
		atomic.AddInt32(&inFlight, -1)
		return 0
	})
	if peak != par {
		t.Errorf("peak concurrency = %d, want %d", peak, par)
	}
}

func TestConcat(t *testing.T) {
	got := Concat([][]int{{1, 2}, nil, {3}, {}, {4, 5}})
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Errorf("Concat = %v", got)
	}
}
