// Package campaign is the shard-scatter / deterministic-gather engine
// underneath every measurement campaign in this repository.
//
// The paper's campaigns (single-query matrix, web page-load matrix, scan
// funnel) are embarrassingly parallel across vantage/resolver/target
// partitions, but the sim kernel deliberately runs one task at a time so
// that each World stays reproducible. The campaign engine reconciles the
// two: a campaign is split into shards, each shard gets its own
// sim.World seeded by a SplitMix-style derivation from (campaign seed,
// shard index), shards execute on a worker pool of OS threads sized by
// GOMAXPROCS, and results are gathered in shard order.
//
// Determinism guarantee: the shard plan and every shard seed are pure
// functions of the campaign configuration — never of the worker count —
// and the gather step orders results by shard index. A campaign
// therefore produces byte-identical output at parallelism 1 and
// parallelism N.
package campaign

import (
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Shard identifies one unit of campaign work.
type Shard struct {
	// Index is the shard's position in the campaign plan; results are
	// gathered in Index order.
	Index int
	// Seed is derived from (campaign seed, Index) via sim.DeriveSeed and
	// should seed everything random inside the shard (its World, its
	// client RNG).
	Seed int64
}

// Workers resolves a parallelism knob: 0 (or negative) means
// GOMAXPROCS, and the result never exceeds the shard count.
func Workers(parallelism, shards int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > shards {
		parallelism = shards
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// Run executes n shards on a pool of Workers(parallelism, n) OS threads
// and returns the per-shard results in shard order. run is called once
// per shard, possibly concurrently with other shards; it must confine
// all mutable state to its own shard (each shard builds its own World).
func Run[R any](seed int64, n, parallelism int, run func(Shard) R) []R {
	if n <= 0 {
		return nil
	}
	results := make([]R, n)
	workers := Workers(parallelism, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			results[i] = run(Shard{Index: i, Seed: sim.DeriveSeed(seed, uint64(i))})
		}
		return results
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = run(Shard{Index: i, Seed: sim.DeriveSeed(seed, uint64(i))})
			}
		}()
	}
	wg.Wait()
	return results
}

// RunErr is Run for fallible shards: it executes n shards like Run and
// returns the per-shard results in shard order, or the first (by shard
// index) error any shard produced. All shards run to completion even
// when one fails — the campaign result is all-or-nothing.
func RunErr[R any](seed int64, n, parallelism int, run func(Shard) (R, error)) ([]R, error) {
	type out struct {
		result R
		err    error
	}
	parts := Run(seed, n, parallelism, func(s Shard) out {
		r, err := run(s)
		return out{result: r, err: err}
	})
	results := make([]R, n)
	for i, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		results[i] = p.result
	}
	return results, nil
}

// Span is a half-open index range [Lo, Hi).
type Span struct{ Lo, Hi int }

// Len returns the number of indices in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Blocks partitions [0, n) into consecutive spans of at most size
// indices. size <= 0 yields a single span. The partition depends only on
// (n, size) — never on the worker count — so it is safe to use as a
// shard plan.
func Blocks(n, size int) []Span {
	if n <= 0 {
		return nil
	}
	if size <= 0 || size > n {
		size = n
	}
	out := make([]Span, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Span{Lo: lo, Hi: hi})
	}
	return out
}

// Concat gathers per-shard sample slices into one campaign result,
// preserving shard order.
func Concat[T any](parts [][]T) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
