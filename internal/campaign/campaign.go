// Package campaign is the shard-scatter / deterministic-gather engine
// underneath every measurement campaign in this repository.
//
// The paper's campaigns (single-query matrix, web page-load matrix, scan
// funnel) are embarrassingly parallel across vantage/resolver/target
// partitions, but the sim kernel deliberately runs one task at a time so
// that each World stays reproducible. The campaign engine reconciles the
// two: a campaign is split into shards, each shard gets its own
// sim.World seeded by a SplitMix-style derivation from (campaign seed,
// shard index), shards execute on a worker pool of OS threads sized by
// GOMAXPROCS, and results are gathered in shard order.
//
// Determinism guarantee: the shard plan and every shard seed are pure
// functions of the campaign configuration — never of the worker count —
// and the gather step orders results by shard index. A campaign
// therefore produces byte-identical output at parallelism 1 and
// parallelism N.
package campaign

import (
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Shard identifies one unit of campaign work.
type Shard struct {
	// Index is the shard's position in the campaign plan; results are
	// gathered in Index order.
	Index int
	// Seed is derived from (campaign seed, Index) via sim.DeriveSeed and
	// should seed everything random inside the shard (its World, its
	// client RNG).
	Seed int64
}

// Workers resolves a parallelism knob: 0 (or negative) means
// GOMAXPROCS, and the result never exceeds the shard count.
func Workers(parallelism, shards int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > shards {
		parallelism = shards
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// Run executes n shards on a pool of Workers(parallelism, n) OS threads
// and returns the per-shard results in shard order. run is called once
// per shard, possibly concurrently with other shards; it must confine
// all mutable state to its own shard (each shard builds its own World).
//
// Scheduling is work-stealing: each worker owns a static consecutive
// span of the shard plan and consumes it front-to-back; a worker whose
// span runs dry steals the tail shard from whichever worker has the
// most work left. Skewed campaigns (one expensive shard) therefore
// finish in max(shard) time instead of max(static span) time, while
// shard seeds and the gather order stay pure functions of the plan.
func Run[R any](seed int64, n, parallelism int, run func(Shard) R) []R {
	results, _ := RunTraced(seed, n, parallelism, run)
	return results
}

// RunTraced is Run plus scheduling observability: it also reports which
// worker executed each shard (indexed by shard). The trace exists for
// tests and diagnostics; campaign output must never depend on it.
func RunTraced[R any](seed int64, n, parallelism int, run func(Shard) R) ([]R, []int) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]R, n)
	workerOf := make([]int, n)
	workers := Workers(parallelism, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			results[i] = run(Shard{Index: i, Seed: sim.DeriveSeed(seed, uint64(i))})
		}
		return results, workerOf
	}
	st := &stealState{spans: staticSpans(n, workers)}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				i, ok := st.next(self)
				if !ok {
					return
				}
				workerOf[i] = self
				results[i] = run(Shard{Index: i, Seed: sim.DeriveSeed(seed, uint64(i))})
			}
		}(w)
	}
	wg.Wait()
	return results, workerOf
}

// staticSpans deals [0, n) to workers as consecutive near-equal spans
// (the initial ownership of the work-stealing queue).
func staticSpans(n, workers int) []Span {
	spans := make([]Span, workers)
	base, rem := n/workers, n%workers
	lo := 0
	for w := range spans {
		sz := base
		if w < rem {
			sz++
		}
		spans[w] = Span{Lo: lo, Hi: lo + sz}
		lo += sz
	}
	return spans
}

// stealState is the shared work-stealing queue: per-worker remaining
// spans under one mutex. Shards are coarse (milliseconds to seconds of
// simulation each), so a single lock is cheaper than per-worker deques
// and keeps victim selection (most-loaded) exact.
type stealState struct {
	mu    sync.Mutex
	spans []Span
}

// next returns the next shard index for worker self: the front of its
// own span, or — once empty — the tail shard stolen from the worker
// with the most remaining work. ok is false when no work remains.
func (st *stealState) next(self int) (i int, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if sp := &st.spans[self]; sp.Lo < sp.Hi {
		i = sp.Lo
		sp.Lo++
		return i, true
	}
	victim, most := -1, 0
	for w := range st.spans {
		if l := st.spans[w].Len(); l > most {
			victim, most = w, l
		}
	}
	if victim < 0 {
		return 0, false
	}
	sp := &st.spans[victim]
	sp.Hi--
	return sp.Hi, true
}

// RunErr is Run for fallible shards: it executes n shards like Run and
// returns the per-shard results in shard order, or the first (by shard
// index) error any shard produced. All shards run to completion even
// when one fails — the campaign result is all-or-nothing.
func RunErr[R any](seed int64, n, parallelism int, run func(Shard) (R, error)) ([]R, error) {
	type out struct {
		result R
		err    error
	}
	parts := Run(seed, n, parallelism, func(s Shard) out {
		r, err := run(s)
		return out{result: r, err: err}
	})
	results := make([]R, n)
	for i, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		results[i] = p.result
	}
	return results, nil
}

// Span is a half-open index range [Lo, Hi).
type Span struct{ Lo, Hi int }

// Len returns the number of indices in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Blocks partitions [0, n) into consecutive spans of at most size
// indices. size <= 0 yields a single span. The partition depends only on
// (n, size) — never on the worker count — so it is safe to use as a
// shard plan.
//
// A remainder smaller than half a block would otherwise leave a
// pathological tiny final shard (e.g. n=33, size=32 → spans of 32 and
// 1); in that case the last two spans are rebalanced to near-equal
// sizes instead. Remainders of half a block or more are left alone, so
// plans without the pathology are unchanged.
func Blocks(n, size int) []Span {
	if n <= 0 {
		return nil
	}
	if size <= 0 || size > n {
		size = n
	}
	out := make([]Span, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, Span{Lo: lo, Hi: hi})
	}
	if k := len(out); k >= 2 {
		if r := out[k-1].Len(); r*2 < size {
			total := out[k-2].Len() + r
			first := (total + 1) / 2
			lo := out[k-2].Lo
			out[k-2] = Span{Lo: lo, Hi: lo + first}
			out[k-1] = Span{Lo: lo + first, Hi: out[k-1].Hi}
		}
	}
	return out
}

// Concat gathers per-shard sample slices into one campaign result,
// preserving shard order.
func Concat[T any](parts [][]T) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
