// Package scan reimplements the paper's resolver-discovery methodology
// (§2): a ZMap-style probe of candidate addresses on the proposed DoQ
// ports (UDP 784, 853, 8853) using a QUIC Initial with the invalid
// version 0 — a responding host reveals itself with a Version Negotiation
// packet without any state being created — followed by an ALPN-verifying
// DoQ handshake, and finally per-protocol DNSPerf-style checks that
// produce the verified DoX funnel:
//
//	1216 DoQ resolvers -> DoUDP 548 / DoTCP 706 / DoT 1149 / DoH 732
//	-> 313 supporting every protocol ("verified DoX resolvers").
//
// Beyond the paper, the funnel also probes DoH3 (assumed deployed
// wherever DoH is; see PlanPopulation) and reports its support count,
// but the "verified" intersection stays the paper's four-transport
// definition.
//
// The funnel runs as a sharded campaign (RunFunnel): the population is
// planned once, split into contiguous target blocks, and each block is
// probed inside its own World on the internal/campaign worker pool; the
// per-shard funnels merge additively, independent of parallelism.
package scan

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/campaign"
	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/netapi/simnet"
	"repro/internal/netem"
	"repro/internal/quic"
	"repro/internal/sim"
	"repro/internal/tlsmini"
)

// DoQPorts are the proposed DoQ ports the paper scans.
var DoQPorts = []uint16{784, 853, 8853}

// PopulationSpec describes the synthetic scan population.
type PopulationSpec struct {
	// DoQResolvers respond to the QUIC probe and verify the DoQ ALPN.
	DoQResolvers int
	// QUICNonDoQ speak QUIC (e.g. HTTP/3 frontends) but refuse the DoQ
	// ALPN.
	QUICNonDoQ int
	// Deaf addresses do not respond at all.
	Deaf int
	// Support gives, for each non-DoQ transport, how many of the DoQ
	// resolvers also support it.
	Support map[dox.Protocol]int
	// FullIntersection is the number of resolvers supporting everything.
	FullIntersection int
}

// PaperSpec reproduces the week-14-2022 numbers.
func PaperSpec() PopulationSpec {
	return PopulationSpec{
		DoQResolvers: 1216,
		QUICNonDoQ:   180,
		Deaf:         300,
		Support: map[dox.Protocol]int{
			dox.DoUDP: 548,
			dox.DoTCP: 706,
			dox.DoT:   1149,
			dox.DoH:   732,
		},
		FullIntersection: 313,
	}
}

// Scaled shrinks the spec by keeping proportions (at least the
// intersection stays consistent).
func (s PopulationSpec) Scaled(factor int) PopulationSpec {
	if factor <= 1 {
		return s
	}
	out := PopulationSpec{
		DoQResolvers:     s.DoQResolvers / factor,
		QUICNonDoQ:       s.QUICNonDoQ / factor,
		Deaf:             s.Deaf / factor,
		Support:          map[dox.Protocol]int{},
		FullIntersection: s.FullIntersection / factor,
	}
	for p, n := range s.Support {
		out.Support[p] = n / factor
	}
	return out
}

// AssignSupport distributes protocol support over n DoQ resolvers such
// that exactly spec.FullIntersection of them support all four other
// transports and the per-protocol totals match spec.Support. No resolver
// outside the intersection supports all four (otherwise the verified
// count would exceed the target).
func AssignSupport(rng *rand.Rand, spec PopulationSpec) ([]map[dox.Protocol]bool, error) {
	n := spec.DoQResolvers
	full := spec.FullIntersection
	if full > n {
		return nil, fmt.Errorf("scan: intersection %d exceeds population %d", full, n)
	}
	protos := []dox.Protocol{dox.DoUDP, dox.DoTCP, dox.DoT, dox.DoH}
	remaining := map[dox.Protocol]int{}
	for _, p := range protos {
		r := spec.Support[p] - full
		if r < 0 {
			return nil, fmt.Errorf("scan: %v support %d below intersection %d", p, spec.Support[p], full)
		}
		if r > n-full {
			return nil, fmt.Errorf("scan: %v support %d unsatisfiable", p, spec.Support[p])
		}
		remaining[p] = r
	}
	out := make([]map[dox.Protocol]bool, n)
	for i := range out {
		out[i] = map[dox.Protocol]bool{dox.DoQ: true}
	}
	perm := rng.Perm(n)
	for i := 0; i < full; i++ {
		for _, p := range protos {
			out[perm[i]][p] = true
		}
	}
	// The rest get at most 3 of the 4 transports, drawn from those with
	// the largest remaining need.
	rest := perm[full:]
	for _, idx := range rest {
		// Order protocols by remaining need, descending.
		order := append([]dox.Protocol(nil), protos...)
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if remaining[order[j]] > remaining[order[i]] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		assigned := 0
		for _, p := range order {
			if assigned == 3 || remaining[p] == 0 {
				continue
			}
			// Assign greedily but probabilistically, to spread support.
			need := 0
			for _, q := range protos {
				need += remaining[q]
			}
			if rng.Float64() < float64(remaining[p]*3)/float64(need+1) || remaining[p] >= len(rest) {
				out[idx][p] = true
				remaining[p]--
				assigned++
			}
		}
	}
	// Force-place leftovers onto hosts with spare capacity.
	for _, p := range protos {
		for remaining[p] > 0 {
			placed := false
			for _, idx := range rest {
				if out[idx][p] {
					continue
				}
				count := 0
				for _, q := range protos {
					if out[idx][q] {
						count++
					}
				}
				if count >= 3 {
					continue
				}
				out[idx][p] = true
				remaining[p]--
				placed = true
				if remaining[p] == 0 {
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("scan: could not place %v support", p)
			}
		}
	}
	return out, nil
}

// Target is one scannable address.
type Target struct {
	Addr     netip.Addr
	DoQPort  uint16
	IsDoQ    bool
	Supports map[dox.Protocol]bool
	Place    geo.Place
}

// Population is a running set of scan targets.
type Population struct {
	Targets []*Target
	Spec    PopulationSpec
}

// targetKind classifies a planned scan target.
type targetKind uint8

const (
	kindDoQ targetKind = iota
	kindQUICNonDoQ
	kindDeaf
)

// TargetPlan is the World-free description of one scan target: its
// address, port, protocol support, and place. Planning consumes all
// population randomness up front so that any contiguous block of the
// plan can be instantiated inside a private shard World.
type TargetPlan struct {
	Addr     netip.Addr
	DoQPort  uint16
	Kind     targetKind
	Supports map[dox.Protocol]bool
	Place    geo.Place
}

// PlanPopulation draws the full scan population from rng without
// touching a World.
func PlanPopulation(rng *rand.Rand, spec PopulationSpec) ([]TargetPlan, error) {
	support, err := AssignSupport(rng, spec)
	if err != nil {
		return nil, err
	}
	places := geo.PlaceResolvers(rng, scaledGeoCounts(spec.DoQResolvers))
	var plans []TargetPlan
	next := 0
	addrFor := func() netip.Addr {
		a := netip.AddrFrom4([4]byte{100, byte(64 + next/60000), byte(next / 250 % 240), byte(next % 250)})
		next++
		return a
	}
	for i := 0; i < spec.DoQResolvers; i++ {
		port := DoQPorts[1] // 853 dominates
		switch {
		case rng.Float64() < 0.06:
			port = DoQPorts[0]
		case rng.Float64() < 0.06:
			port = DoQPorts[2]
		}
		// DoH3 deploys wherever DoH does: the HTTP/3 endpoint is the
		// same HTTP stack behind the resolver's existing QUIC machinery,
		// so its support set mirrors DoH's (no extra randomness drawn —
		// the paper-exact funnel stays untouched).
		support[i][dox.DoH3] = support[i][dox.DoH]
		plans = append(plans, TargetPlan{
			Addr:     addrFor(),
			DoQPort:  port,
			Kind:     kindDoQ,
			Supports: support[i],
			Place:    places[i%len(places)],
		})
	}
	for i := 0; i < spec.QUICNonDoQ; i++ {
		plans = append(plans, TargetPlan{Addr: addrFor(), DoQPort: 853, Kind: kindQUICNonDoQ})
	}
	for i := 0; i < spec.Deaf; i++ {
		plans = append(plans, TargetPlan{Addr: addrFor(), Kind: kindDeaf})
	}
	return plans, nil
}

// BuildTargets instantiates plans[lo:hi] as running hosts on net. Each
// target's identity randomness derives from (seed, global plan index),
// so a target behaves identically whether it is built as part of the
// whole population or inside a single shard's partition.
func BuildTargets(net *netem.Network, seed int64, plans []TargetPlan, lo, hi int) ([]*Target, error) {
	w := net.World
	answer := func(q *dnsmsg.Message, _ dox.Protocol, _ netip.AddrPort) *dnsmsg.Message {
		r := dnsmsg.Reply(*q)
		r.AnswerA(netip.AddrFrom4([4]byte{198, 18, 0, 1}), 300)
		return &r
	}
	var targets []*Target
	for gi := lo; gi < hi; gi++ {
		p := plans[gi]
		host := net.Host(p.Addr)
		rng := rand.New(rand.NewSource(sim.DeriveSeed(seed, uint64(gi))))
		switch p.Kind {
		case kindDoQ:
			tgt := &Target{
				Addr:     p.Addr,
				DoQPort:  p.DoQPort,
				IsDoQ:    true,
				Supports: p.Supports,
				Place:    p.Place,
			}
			cfg := dox.ServerConfig{
				Handler:     answer,
				Identity:    tlsmini.GenerateIdentity(rng, fmt.Sprintf("scan-%d", gi), 1100),
				TicketStore: tlsmini.NewTicketStore(),
				DoQPort:     p.DoQPort,
			}
			srv := dox.NewServer(simnet.New(host, rng), cfg)
			type ent struct {
				on bool
				fn func() error
			}
			for _, e := range []ent{
				{true, srv.ServeDoQ},
				{tgt.Supports[dox.DoUDP], srv.ServeUDP},
				{tgt.Supports[dox.DoTCP], srv.ServeTCP},
				{tgt.Supports[dox.DoT], srv.ServeDoT},
				{tgt.Supports[dox.DoH], srv.ServeDoH},
				{tgt.Supports[dox.DoH3], srv.ServeDoH3},
			} {
				if !e.on {
					continue
				}
				if err := e.fn(); err != nil {
					return nil, err
				}
			}
			targets = append(targets, tgt)
		case kindQUICNonDoQ:
			// QUIC speaker without the DoQ ALPN (an HTTP/3 frontend).
			_, err := quic.Listen(host, 853, quic.Config{
				ALPN:        []string{"h3"},
				Identity:    tlsmini.GenerateIdentity(rng, fmt.Sprintf("h3-%d", gi), 1100),
				TicketStore: tlsmini.NewTicketStore(),
				Rand:        rng,
				Now:         w.Now,
			})
			if err != nil {
				return nil, err
			}
			targets = append(targets, &Target{Addr: p.Addr, DoQPort: 853})
		case kindDeaf:
			targets = append(targets, &Target{Addr: p.Addr}) // host exists, nothing listens
		}
	}
	return targets, nil
}

// BuildPopulation creates and starts every target host on net — the
// single-World convenience path. Targets are deliberately lightweight
// resolvers (static answer, no recursion). Sharded scans plan once and
// build per-shard blocks via RunFunnel.
func BuildPopulation(net *netem.Network, rng *rand.Rand, spec PopulationSpec) (*Population, error) {
	plans, err := PlanPopulation(rng, spec)
	if err != nil {
		return nil, err
	}
	targets, err := BuildTargets(net, rng.Int63(), plans, 0, len(plans))
	if err != nil {
		return nil, err
	}
	return &Population{Targets: targets, Spec: spec}, nil
}

func scaledGeoCounts(n int) map[geo.Continent]int {
	out := map[geo.Continent]int{}
	for c, v := range geo.VerifiedResolverCounts {
		s := v * n / 313
		if s < 1 {
			s = 1
		}
		out[c] = s
	}
	return out
}

// FunnelResult is the scan outcome (paper §2).
type FunnelResult struct {
	Probed         int
	QUICResponsive int
	DoQVerified    int
	Support        map[dox.Protocol]int
	Verified       int // full intersection
	ByContinent    map[geo.Continent]int
	ByASN          map[string]int
}

// FunnelConfig parameterizes a sharded scan campaign.
type FunnelConfig struct {
	Seed int64
	Spec PopulationSpec
	// Parallelism caps the worker pool (0 = GOMAXPROCS); it never
	// affects the funnel result.
	Parallelism int
	// TargetBlock is the shard granularity in targets (default 256).
	// Part of the shard plan (changing it changes shard seeds).
	TargetBlock int
	// PathDelay is the uniform probe path delay (default 40ms, no loss —
	// the funnel must be exact).
	PathDelay time.Duration
	// ProbeTimeout bounds each probe (default 2s).
	ProbeTimeout time.Duration
}

// RunFunnel executes the discovery scan as a sharded campaign: the
// population is planned once (a pure function of Seed and Spec), split
// into contiguous target blocks, and every block is probed inside a
// private World on the campaign worker pool. Per-shard funnels merge
// additively in shard order, so the result is identical at any
// parallelism level.
func RunFunnel(cfg FunnelConfig) (FunnelResult, error) {
	if cfg.TargetBlock == 0 {
		cfg.TargetBlock = 256
	}
	if cfg.PathDelay == 0 {
		cfg.PathDelay = 40 * time.Millisecond
	}
	planRng := rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, 0x5CA4)))
	plans, err := PlanPopulation(planRng, cfg.Spec)
	if err != nil {
		return FunnelResult{}, err
	}
	identitySeed := sim.DeriveSeed(cfg.Seed, 0x1DE47)
	blocks := campaign.Blocks(len(plans), cfg.TargetBlock)
	parts, err := campaign.RunErr(cfg.Seed, len(blocks), cfg.Parallelism, func(s campaign.Shard) (FunnelResult, error) {
		blk := blocks[s.Index]
		w := sim.NewWorld(s.Seed)
		net := netem.NewNetwork(w)
		net.SetDefaultPath(netem.PathParams{Delay: cfg.PathDelay})
		targets, err := BuildTargets(net, identitySeed, plans, blk.Lo, blk.Hi)
		if err != nil {
			return FunnelResult{}, err
		}
		scanner := &Scanner{
			Host:         net.Host(netip.AddrFrom4([4]byte{10, 99, 0, 1})),
			Rand:         rand.New(rand.NewSource(sim.DeriveSeed(s.Seed, 0x5C))),
			ProbeTimeout: cfg.ProbeTimeout,
		}
		var res FunnelResult
		w.Go(func() { res = scanner.Run(&Population{Targets: targets, Spec: cfg.Spec}) })
		w.Run()
		// Per-shard World: reap parked target/server goroutines before
		// dropping it, or they outlive the shard for the whole process.
		w.Shutdown()
		return res, nil
	})
	if err != nil {
		return FunnelResult{}, err
	}
	var merged FunnelResult
	merged.Support = map[dox.Protocol]int{}
	merged.ByContinent = map[geo.Continent]int{}
	merged.ByASN = map[string]int{}
	for _, res := range parts {
		merged.Probed += res.Probed
		merged.QUICResponsive += res.QUICResponsive
		merged.DoQVerified += res.DoQVerified
		merged.Verified += res.Verified
		for proto, n := range res.Support {
			merged.Support[proto] += n
		}
		for c, n := range res.ByContinent {
			merged.ByContinent[c] += n
		}
		for as, n := range res.ByASN {
			merged.ByASN[as] += n
		}
	}
	return merged, nil
}

// Scanner runs the discovery pipeline from one host.
type Scanner struct {
	Host *netem.Host
	Rand *rand.Rand
	// ProbeTimeout bounds each probe (default 2s).
	ProbeTimeout time.Duration
}

func (s *Scanner) timeout() time.Duration {
	if s.ProbeTimeout == 0 {
		return 2 * time.Second
	}
	return s.ProbeTimeout
}

// Run scans all targets (in parallel, ZMap style) and builds the funnel.
func (s *Scanner) Run(pop *Population) FunnelResult {
	w := s.Host.World()
	res := FunnelResult{
		Probed:      len(pop.Targets),
		Support:     map[dox.Protocol]int{},
		ByContinent: map[geo.Continent]int{},
		ByASN:       map[string]int{},
	}
	wg := sim.NewWaitGroup(w)
	for _, tgt := range pop.Targets {
		tgt := tgt
		wg.Add(1)
		w.Go(func() {
			defer wg.Done()
			port, ok := s.probeQUIC(tgt)
			if !ok {
				return
			}
			res.QUICResponsive++
			if !s.verifyDoQ(tgt, port) {
				return
			}
			res.DoQVerified++
			all := true
			// DoH3 is probed alongside the paper's four but kept out of
			// the "verified" intersection, which stays paper-defined.
			for _, proto := range []dox.Protocol{dox.DoUDP, dox.DoTCP, dox.DoT, dox.DoH, dox.DoH3} {
				if s.checkDoX(tgt, proto) {
					res.Support[proto]++
				} else if proto != dox.DoH3 {
					all = false
				}
			}
			if all {
				res.Verified++
				res.ByContinent[tgt.Place.Continent]++
				res.ByASN[tgt.Place.ASN]++
			}
		})
	}
	wg.Wait()
	res.Support[dox.DoQ] = res.DoQVerified
	return res
}

// probeQUIC sends the ZMap trick: a QUIC Initial with version 0; any
// QUIC endpoint answers with Version Negotiation without creating state.
func (s *Scanner) probeQUIC(tgt *Target) (uint16, bool) {
	for _, port := range DoQPorts {
		sock := s.Host.Dial(netem.ProtoUDP, 8)
		probe := buildVersionProbe(s.Rand)
		sock.Send(netip.AddrPortFrom(tgt.Addr, port), probe)
		d, ok := sock.RecvTimeout(s.timeout())
		sock.Close()
		if !ok {
			continue
		}
		if len(d.Payload) >= 5 && d.Payload[0]&0x80 != 0 &&
			binary.BigEndian.Uint32(d.Payload[1:5]) == 0 {
			return port, true
		}
	}
	return 0, false
}

// buildVersionProbe crafts a long-header packet with version 0.
func buildVersionProbe(rng *rand.Rand) []byte {
	b := []byte{0x80}
	b = binary.BigEndian.AppendUint32(b, 0) // invalid version
	dcid := make([]byte, 8)
	rng.Read(dcid)
	b = append(b, 8)
	b = append(b, dcid...)
	scid := make([]byte, 8)
	rng.Read(scid)
	b = append(b, 8)
	b = append(b, scid...)
	// Pad to the minimum Initial datagram size, as ZMap's QUIC probe
	// module does.
	for len(b) < quic.MinInitialDatagram {
		b = append(b, 0)
	}
	return b
}

// verifyDoQ attempts a handshake offering the DoQ ALPN set.
func (s *Scanner) verifyDoQ(tgt *Target, port uint16) bool {
	type result struct{ ok bool }
	f := sim.NewFuture[result](s.Host.World(), "scan-verify")
	s.Host.World().Go(func() {
		conn, err := quic.Dial(s.Host, netip.AddrPortFrom(tgt.Addr, port), quic.Config{
			ALPN:       dox.AllDoQALPNs(),
			ServerName: tgt.Addr.String(),
			Rand:       s.Rand,
			Now:        s.Host.World().Now,
		})
		if err != nil {
			f.Resolve(result{false})
			return
		}
		conn.Close()
		f.Resolve(result{true})
	})
	r, ok := f.WaitTimeout(s.timeout())
	return ok && r.ok
}

// checkDoX optimistically queries the target over one transport, like
// the paper's DNSPerf verification.
func (s *Scanner) checkDoX(tgt *Target, proto dox.Protocol) bool {
	w := s.Host.World()
	type result struct{ ok bool }
	f := sim.NewFuture[result](w, "scan-dox")
	w.Go(func() {
		c, err := dox.Connect(proto, dox.Options{
			Backend:    simnet.New(s.Host, s.Rand),
			Resolver:   tgt.Addr,
			ServerName: tgt.Addr.String(),
			UDPTimeout: s.timeout(),
			UDPRetries: 0,
		})
		if err != nil {
			f.Resolve(result{false})
			return
		}
		q := dnsmsg.NewQuery(uint16(s.Rand.Intn(65536)), "example.com", dnsmsg.TypeA)
		_, err = c.Query(&q)
		c.Close()
		f.Resolve(result{err == nil})
	})
	r, ok := f.WaitTimeout(10 * s.timeout())
	return ok && r.ok
}
