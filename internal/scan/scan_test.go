package scan

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dox"
	"repro/internal/netem"
	"repro/internal/sim"
)

func TestAssignSupportPaperNumbers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := PaperSpec()
	sup, err := AssignSupport(rng, spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[dox.Protocol]int{}
	verified := 0
	for _, m := range sup {
		all := true
		for _, p := range []dox.Protocol{dox.DoUDP, dox.DoTCP, dox.DoT, dox.DoH} {
			if m[p] {
				counts[p]++
			} else {
				all = false
			}
		}
		if all {
			verified++
		}
	}
	for p, want := range spec.Support {
		if counts[p] != want {
			t.Errorf("%v support = %d, want %d", p, counts[p], want)
		}
	}
	if verified != spec.FullIntersection {
		t.Errorf("verified = %d, want %d", verified, spec.FullIntersection)
	}
}

func TestAssignSupportPropertyConsistent(t *testing.T) {
	f := func(seed int64, a, b, c, d uint8, inter uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100
		full := int(inter) % 40
		spec := PopulationSpec{
			DoQResolvers: n,
			Support: map[dox.Protocol]int{
				dox.DoUDP: full + int(a)%40,
				dox.DoTCP: full + int(b)%40,
				dox.DoT:   full + int(c)%40,
				dox.DoH:   full + int(d)%40,
			},
			FullIntersection: full,
		}
		sup, err := AssignSupport(rng, spec)
		if err != nil {
			return true // unsatisfiable specs may error
		}
		counts := map[dox.Protocol]int{}
		verified := 0
		for _, m := range sup {
			all := true
			for _, p := range []dox.Protocol{dox.DoUDP, dox.DoTCP, dox.DoT, dox.DoH} {
				if m[p] {
					counts[p]++
				} else {
					all = false
				}
			}
			if all {
				verified++
			}
		}
		if verified != full {
			return false
		}
		for p, want := range spec.Support {
			if counts[p] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScaledSpecShape(t *testing.T) {
	s := PaperSpec().Scaled(8)
	if s.DoQResolvers != 152 || s.FullIntersection != 39 {
		t.Errorf("scaled = %+v", s)
	}
	if s.Support[dox.DoT] <= s.Support[dox.DoH] {
		t.Error("scaling lost the DoT > DoH ordering")
	}
}

// TestFunnelSmallPopulation runs the full scan pipeline on a 1/16-scale
// population and expects the funnel to match the spec exactly (no loss
// configured).
func TestFunnelSmallPopulation(t *testing.T) {
	w := sim.NewWorld(9)
	net := netem.NewNetwork(w)
	net.SetDefaultPath(netem.PathParams{Delay: 20 * time.Millisecond})
	rng := rand.New(rand.NewSource(9))
	spec := PaperSpec().Scaled(16)
	pop, err := BuildPopulation(net, rng, spec)
	if err != nil {
		t.Fatal(err)
	}
	scanner := &Scanner{
		Host: net.Host(netip.MustParseAddr("10.9.0.1")),
		Rand: rng,
	}
	var res FunnelResult
	w.Go(func() { res = scanner.Run(pop) })
	w.Run()

	if res.Probed != len(pop.Targets) {
		t.Errorf("probed %d of %d", res.Probed, len(pop.Targets))
	}
	wantResponsive := spec.DoQResolvers + spec.QUICNonDoQ
	if res.QUICResponsive != wantResponsive {
		t.Errorf("QUIC responsive = %d, want %d", res.QUICResponsive, wantResponsive)
	}
	if res.DoQVerified != spec.DoQResolvers {
		t.Errorf("DoQ verified = %d, want %d", res.DoQVerified, spec.DoQResolvers)
	}
	for p, want := range spec.Support {
		if res.Support[p] != want {
			t.Errorf("%v = %d, want %d", p, res.Support[p], want)
		}
	}
	if res.Verified != spec.FullIntersection {
		t.Errorf("verified = %d, want %d", res.Verified, spec.FullIntersection)
	}
}

// TestFunnelShardedMatchesSpec runs the sharded funnel and expects the
// lossless scan to recover the spec exactly, like the single-World path.
func TestFunnelShardedMatchesSpec(t *testing.T) {
	spec := PaperSpec().Scaled(16)
	res, err := RunFunnel(FunnelConfig{Seed: 9, Spec: spec, Parallelism: 4, TargetBlock: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.DoQVerified != spec.DoQResolvers {
		t.Errorf("DoQ verified = %d, want %d", res.DoQVerified, spec.DoQResolvers)
	}
	if res.Verified != spec.FullIntersection {
		t.Errorf("verified = %d, want %d", res.Verified, spec.FullIntersection)
	}
	for p, want := range spec.Support {
		if res.Support[p] != want {
			t.Errorf("%v = %d, want %d", p, res.Support[p], want)
		}
	}
}

// TestFunnelDeterministicAcrossParallelism enforces the engine guarantee
// on the scan: identical funnels (including the per-continent and per-AS
// maps) at parallelism 1 and N.
func TestFunnelDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) FunnelResult {
		res, err := RunFunnel(FunnelConfig{
			Seed:        9,
			Spec:        PaperSpec().Scaled(16),
			Parallelism: par,
			TargetBlock: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, par := range []int{2, 8} {
		if got := run(par); !reflect.DeepEqual(base, got) {
			t.Fatalf("parallelism %d funnel differs:\n1: %+v\n%d: %+v", par, base, par, got)
		}
	}
}
