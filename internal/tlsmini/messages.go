package tlsmini

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Epoch identifies the key space a handshake message or application
// record belongs to. QUIC maps epochs onto packet number spaces.
type Epoch uint8

// Epochs in handshake order.
const (
	EpochInitial   Epoch = iota // plaintext / QUIC Initial keys
	EpochEarly                  // 0-RTT keys
	EpochHandshake              // handshake keys
	EpochApp                    // 1-RTT application keys
)

func (e Epoch) String() string {
	switch e {
	case EpochInitial:
		return "initial"
	case EpochEarly:
		return "early"
	case EpochHandshake:
		return "handshake"
	case EpochApp:
		return "app"
	}
	return fmt.Sprintf("Epoch(%d)", uint8(e))
}

// MsgType identifies a handshake message.
type MsgType uint8

// Handshake message types (TLS 1.3 numbering where applicable).
const (
	TypeClientHello         MsgType = 1
	TypeServerHello         MsgType = 2
	TypeNewSessionTicket    MsgType = 4
	TypeEncryptedExtensions MsgType = 8
	TypeCertificate         MsgType = 11
	TypeServerHelloDone     MsgType = 14 // TLS 1.2 emulation
	TypeCertificateVerify   MsgType = 15
	TypeClientKeyExchange   MsgType = 16 // TLS 1.2 emulation
	TypeFinished            MsgType = 20
)

// Version is the negotiated protocol version.
type Version uint16

// Supported versions.
const (
	VersionTLS12 Version = 0x0303
	VersionTLS13 Version = 0x0304
)

func (v Version) String() string {
	switch v {
	case VersionTLS12:
		return "TLS 1.2"
	case VersionTLS13:
		return "TLS 1.3"
	}
	return fmt.Sprintf("Version(%#04x)", uint16(v))
}

// Message is a decoded handshake message paired with the epoch it must be
// carried in.
type Message struct {
	Type  MsgType
	Epoch Epoch
	Body  any
}

// chExtensionPad approximates the extensions real ClientHellos carry that
// this implementation does not model individually (supported_groups,
// signature_algorithms, status_request, renegotiation_info, GREASE, ...).
const chExtensionPad = 60

// ClientHello opens the handshake.
type ClientHello struct {
	Random            [32]byte
	SessionID         [32]byte
	ServerName        string
	ALPN              []string
	KeyShare          [32]byte // X25519 public key
	SupportedVersions []Version
	PSKTicket         []byte   // non-nil when offering resumption
	PSKBinder         [32]byte // authenticates the PSK offer
	EarlyData         bool     // 0-RTT offered
}

// ServerHello answers a ClientHello.
type ServerHello struct {
	Random      [32]byte
	KeyShare    [32]byte
	Version     Version
	PSKAccepted bool
}

// EncryptedExtensions carries the negotiated ALPN and the 0-RTT verdict.
type EncryptedExtensions struct {
	ALPN              string
	EarlyDataAccepted bool
}

// Certificate carries the server identity. Chain is the certificate chain
// blob; its size models real chain sizes (the paper's amplification-limit
// finding depends on it).
type Certificate struct {
	Name      string
	PublicKey []byte // Ed25519
	Chain     []byte
}

// CertificateVerify proves possession of the certificate key.
type CertificateVerify struct {
	Signature []byte // Ed25519 over the transcript hash
}

// Finished authenticates the handshake transcript.
type Finished struct {
	VerifyData [32]byte
}

// NewSessionTicket provisions a resumption ticket (post-handshake).
type NewSessionTicket struct {
	LifetimeSecs     uint32
	AgeAdd           uint32
	Nonce            [8]byte
	Ticket           []byte
	EarlyDataAllowed bool
}

// ClientKeyExchange is the TLS 1.2 emulation's second client flight.
type ClientKeyExchange struct {
	KeyShare [32]byte
}

// ServerHelloDone ends the TLS 1.2 emulation's first server flight.
type ServerHelloDone struct{}

var errTruncated = errors.New("tlsmini: truncated handshake message")

// EncodeMessage serializes a message as type(1) || len(3) || body.
func EncodeMessage(m Message) []byte { return AppendMessage(nil, m) }

// AppendMessage appends the serialized message to dst and returns the
// extended slice, reusing dst's capacity; the hot encoders (transcript
// hashing, record flights, QUIC crypto streams) pass a per-connection
// scratch buffer so steady-state encoding does not allocate.
func AppendMessage(dst []byte, m Message) []byte {
	b := builder{out: append(dst, byte(m.Type), 0, 0, 0)}
	bodyStart := len(b.out)
	encodeBody(&b, m)
	n := len(b.out) - bodyStart
	b.out[bodyStart-3] = byte(n >> 16)
	b.out[bodyStart-2] = byte(n >> 8)
	b.out[bodyStart-1] = byte(n)
	return b.out
}

func encodeBody(b *builder, m Message) {
	switch v := m.Body.(type) {
	case *ClientHello:
		b.bytes(v.Random[:])
		b.bytes(v.SessionID[:])
		b.vec8([]byte(v.ServerName))
		b.u8(uint8(len(v.ALPN)))
		for _, a := range v.ALPN {
			b.vec8([]byte(a))
		}
		b.bytes(v.KeyShare[:])
		b.u8(uint8(len(v.SupportedVersions)))
		for _, sv := range v.SupportedVersions {
			b.u16(uint16(sv))
		}
		b.vec16(v.PSKTicket)
		if len(v.PSKTicket) > 0 {
			b.bytes(v.PSKBinder[:])
		}
		b.bool(v.EarlyData)
		b.bytes(make([]byte, chExtensionPad))
	case *ServerHello:
		b.bytes(v.Random[:])
		b.bytes(v.KeyShare[:])
		b.u16(uint16(v.Version))
		b.bool(v.PSKAccepted)
		b.bytes(make([]byte, 14)) // legacy session id echo + cipher + ext framing
	case *EncryptedExtensions:
		b.vec8([]byte(v.ALPN))
		b.bool(v.EarlyDataAccepted)
		b.bytes(make([]byte, 12)) // misc extension framing
	case *Certificate:
		b.vec8([]byte(v.Name))
		b.vec8(v.PublicKey)
		b.vec16(v.Chain)
	case *CertificateVerify:
		b.vec16(v.Signature)
	case *Finished:
		b.bytes(v.VerifyData[:])
	case *NewSessionTicket:
		b.u32(v.LifetimeSecs)
		b.u32(v.AgeAdd)
		b.bytes(v.Nonce[:])
		b.vec16(v.Ticket)
		b.bool(v.EarlyDataAllowed)
		b.bytes(zeroExtension[:]) // extension framing
	case *ClientKeyExchange:
		b.bytes(v.KeyShare[:])
	case *ServerHelloDone:
	default:
		panic(fmt.Sprintf("tlsmini: cannot encode %T", m.Body))
	}
}

// DecodeMessage parses one message from b, returning it and the number of
// bytes consumed.
func DecodeMessage(b []byte) (Message, int, error) {
	if len(b) < 4 {
		return Message{}, 0, errTruncated
	}
	t := MsgType(b[0])
	n := int(b[1])<<16 | int(b[2])<<8 | int(b[3])
	if len(b) < 4+n {
		return Message{}, 0, errTruncated
	}
	body := b[4 : 4+n]
	m := Message{Type: t}
	p := parser{buf: body}
	switch t {
	case TypeClientHello:
		v := &ClientHello{}
		p.read(v.Random[:])
		p.read(v.SessionID[:])
		v.ServerName = string(p.vec8())
		na := p.u8()
		for i := 0; i < int(na); i++ {
			v.ALPN = append(v.ALPN, string(p.vec8()))
		}
		p.read(v.KeyShare[:])
		nv := p.u8()
		for i := 0; i < int(nv); i++ {
			v.SupportedVersions = append(v.SupportedVersions, Version(p.u16()))
		}
		v.PSKTicket = p.vec16()
		if len(v.PSKTicket) > 0 {
			p.read(v.PSKBinder[:])
		}
		v.EarlyData = p.bool()
		m.Body = v
	case TypeServerHello:
		v := &ServerHello{}
		p.read(v.Random[:])
		p.read(v.KeyShare[:])
		v.Version = Version(p.u16())
		v.PSKAccepted = p.bool()
		m.Body = v
	case TypeEncryptedExtensions:
		v := &EncryptedExtensions{}
		v.ALPN = string(p.vec8())
		v.EarlyDataAccepted = p.bool()
		m.Body = v
	case TypeCertificate:
		v := &Certificate{}
		v.Name = string(p.vec8())
		v.PublicKey = p.vec8()
		v.Chain = p.vec16()
		m.Body = v
	case TypeCertificateVerify:
		v := &CertificateVerify{}
		v.Signature = p.vec16()
		m.Body = v
	case TypeFinished:
		v := &Finished{}
		p.read(v.VerifyData[:])
		m.Body = v
	case TypeNewSessionTicket:
		v := &NewSessionTicket{}
		v.LifetimeSecs = p.u32()
		v.AgeAdd = p.u32()
		p.read(v.Nonce[:])
		v.Ticket = p.vec16()
		v.EarlyDataAllowed = p.bool()
		m.Body = v
	case TypeClientKeyExchange:
		v := &ClientKeyExchange{}
		p.read(v.KeyShare[:])
		m.Body = v
	case TypeServerHelloDone:
		m.Body = &ServerHelloDone{}
	default:
		return Message{}, 0, fmt.Errorf("tlsmini: unknown message type %d", t)
	}
	if p.err != nil {
		return Message{}, 0, p.err
	}
	return m, 4 + n, nil
}

var zeroExtension [16]byte

type builder struct{ out []byte }

func (b *builder) u8(v uint8)   { b.out = append(b.out, v) }
func (b *builder) u16(v uint16) { b.out = binary.BigEndian.AppendUint16(b.out, v) }
func (b *builder) u32(v uint32) { b.out = binary.BigEndian.AppendUint32(b.out, v) }
func (b *builder) bytes(v []byte) {
	b.out = append(b.out, v...)
}
func (b *builder) vec8(v []byte) {
	b.u8(uint8(len(v)))
	b.bytes(v)
}
func (b *builder) vec16(v []byte) {
	b.u16(uint16(len(v)))
	b.bytes(v)
}
func (b *builder) bool(v bool) {
	if v {
		b.u8(1)
	} else {
		b.u8(0)
	}
}

type parser struct {
	buf []byte
	err error
}

func (p *parser) take(n int) []byte {
	if p.err != nil || len(p.buf) < n {
		p.err = errTruncated
		return make([]byte, n)
	}
	v := p.buf[:n]
	p.buf = p.buf[n:]
	return v
}
func (p *parser) read(dst []byte) { copy(dst, p.take(len(dst))) }
func (p *parser) u8() uint8       { return p.take(1)[0] }
func (p *parser) u16() uint16     { return binary.BigEndian.Uint16(p.take(2)) }
func (p *parser) u32() uint32     { return binary.BigEndian.Uint32(p.take(4)) }
func (p *parser) vec8() []byte    { return append([]byte(nil), p.take(int(p.u8()))...) }
func (p *parser) vec16() []byte   { return append([]byte(nil), p.take(int(p.u16()))...) }
func (p *parser) bool() bool      { return p.u8() != 0 }
