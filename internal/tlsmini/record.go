package tlsmini

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Stream is the byte-stream transport a Conn runs over. internal/tcpsim's
// Conn satisfies it.
type Stream interface {
	// Write queues p for reliable in-order delivery.
	Write(p []byte) error
	// Read blocks for the next chunk of bytes; ok is false at EOF.
	Read() ([]byte, bool)
	// Close tears the stream down.
	Close()
}

// Record framing: contentType(1) || epoch(1) || length(2) || payload.
// Protected epochs carry AEAD ciphertext (payload + 16-byte tag).
const recordHeaderLen = 4

// Content types.
const (
	recordHandshake = 22
	recordAppData   = 23
)

// Conn is a TLS session over a byte stream: the record-layer counterpart
// of crypto/tls.Conn for this repository's stack.
type Conn struct {
	stream   Stream
	engine   *Engine
	isClient bool

	rbuf []byte
	roff int // consumed prefix of rbuf
	wbuf []byte
	fbuf []byte // writeFlight encode scratch, reused across flights
	eof  bool

	readSeq  map[Epoch]uint64
	writeSeq map[Epoch]uint64

	sealer AEADCache
	opener AEADCache

	appIn   [][]byte
	hsDone  bool
	lastErr error
}

// NewConn wraps stream with a TLS endpoint configured by cfg.
func NewConn(stream Stream, cfg Config) *Conn {
	return &Conn{
		stream:   stream,
		engine:   NewEngine(cfg),
		isClient: cfg.IsClient,
		readSeq:  make(map[Epoch]uint64),
		writeSeq: make(map[Epoch]uint64),
	}
}

// Engine exposes the underlying handshake engine for inspection
// (negotiated version, ALPN, resumption).
func (c *Conn) Engine() *Engine { return c.engine }

// Handshake runs the handshake to completion on this side. Clients
// return once they have sent their Finished (and may immediately Write);
// servers return once the client Finished verifies.
func (c *Conn) Handshake() error {
	if c.hsDone {
		return c.lastErr
	}
	flight, err := c.engine.Start()
	if err != nil {
		return c.fatal(err)
	}
	if err := c.writeFlight(flight); err != nil {
		return c.fatal(err)
	}
	for !c.engine.Complete() {
		ct, epoch, payload, err := c.readRecord()
		if err != nil {
			return c.fatal(err)
		}
		if ct != recordHandshake {
			// Early application data on servers accepting 0-RTT arrives
			// before the handshake completes; buffer it.
			if epoch == EpochEarly && c.engine.EarlyDataAccepted() {
				c.appIn = append(c.appIn, payload)
				continue
			}
			return c.fatal(fmt.Errorf("tlsmini: unexpected content type %d during handshake", ct))
		}
		for len(payload) > 0 {
			m, n, err := DecodeMessage(payload)
			if err != nil {
				return c.fatal(err)
			}
			m.Epoch = epoch
			payload = payload[n:]
			out, err := c.engine.Handle(m)
			if err != nil {
				return c.fatal(err)
			}
			if err := c.writeFlight(out); err != nil {
				return c.fatal(err)
			}
		}
	}
	c.hsDone = true
	return nil
}

func (c *Conn) fatal(err error) error {
	if c.lastErr == nil {
		c.lastErr = err
	}
	c.hsDone = true
	return err
}

// writeFlight sends handshake messages, coalescing consecutive messages
// of the same epoch into one record as real stacks do.
func (c *Conn) writeFlight(msgs []Message) error {
	i := 0
	for i < len(msgs) {
		epoch := msgs[i].Epoch
		payload := c.fbuf[:0]
		for i < len(msgs) && msgs[i].Epoch == epoch {
			payload = AppendMessage(payload, msgs[i])
			i++
		}
		err := c.writeRecord(recordHandshake, epoch, payload)
		c.fbuf = payload[:0]
		if err != nil {
			return err
		}
	}
	return nil
}

// writeRecord assembles the wire record in a buffer reused across
// records (the stream copies what it keeps, so handing it the same
// backing array every time is safe).
func (c *Conn) writeRecord(ct byte, epoch Epoch, payload []byte) error {
	b := append(c.wbuf[:0], ct, byte(epoch), 0, 0)
	if epoch == EpochInitial {
		b = append(b, payload...)
	} else {
		secret := c.engine.TrafficSecret(epoch, c.isClient)
		if secret == nil {
			return fmt.Errorf("tlsmini: no write key for epoch %v", epoch)
		}
		seq := c.writeSeq[epoch]
		c.writeSeq[epoch] = seq + 1
		// The AAD is exactly the first two header bytes already in b.
		b = c.sealer.SealAppend(b, secret, seq, payload, b[:2])
	}
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)-recordHeaderLen))
	c.wbuf = b[:0]
	return c.stream.Write(b)
}

func (c *Conn) readRecord() (ct byte, epoch Epoch, payload []byte, err error) {
	for len(c.rbuf)-c.roff < recordHeaderLen {
		if !c.fill() {
			return 0, 0, nil, errors.New("tlsmini: stream closed")
		}
	}
	hdr := c.rbuf[c.roff:]
	ct, epoch = hdr[0], Epoch(hdr[1])
	if epoch > EpochApp {
		return 0, 0, nil, fmt.Errorf("tlsmini: bad record epoch %d", uint8(epoch))
	}
	n := int(binary.BigEndian.Uint16(hdr[2:4]))
	for len(c.rbuf)-c.roff < recordHeaderLen+n {
		if !c.fill() {
			return 0, 0, nil, errors.New("tlsmini: stream closed mid-record")
		}
	}
	body := c.rbuf[c.roff+recordHeaderLen : c.roff+recordHeaderLen+n]
	c.roff += recordHeaderLen + n
	if c.roff == len(c.rbuf) {
		// Fully consumed: rewind so fill appends from the start again.
		c.rbuf = c.rbuf[:0]
		c.roff = 0
	}
	if epoch == EpochInitial {
		// Copy: body aliases rbuf, which is overwritten by later fills,
		// and decoded handshake messages may retain slices of it.
		return ct, epoch, append([]byte(nil), body...), nil
	}
	secret := c.engine.TrafficSecret(epoch, !c.isClient)
	if secret == nil {
		return 0, 0, nil, fmt.Errorf("tlsmini: no read key for epoch %v", epoch)
	}
	seq := c.readSeq[epoch]
	c.readSeq[epoch] = seq + 1
	aad := []byte{ct, byte(epoch)}
	plain, err := c.opener.Open(secret, seq, body, aad)
	if err != nil {
		return 0, 0, nil, err
	}
	return ct, epoch, plain, nil
}

func (c *Conn) fill() bool {
	if c.eof {
		return false
	}
	chunk, ok := c.stream.Read()
	if !ok {
		c.eof = true
		return false
	}
	c.rbuf = append(c.rbuf, chunk...)
	return true
}

// Write sends application data in a protected record. It is valid after
// Handshake, or before it on clients that negotiated 0-RTT (the data is
// then sent under the early traffic keys).
func (c *Conn) Write(p []byte) error {
	if c.lastErr != nil {
		return c.lastErr
	}
	epoch := EpochApp
	if !c.hsDone {
		if c.isClient && c.engine.EarlyDataOffered() {
			epoch = EpochEarly
		} else {
			return errors.New("tlsmini: Write before handshake")
		}
	}
	return c.writeRecord(recordAppData, epoch, p)
}

// Read returns the next application data record's payload. Post-handshake
// messages (NewSessionTicket) are consumed transparently. ok is false at
// stream end or on error.
func (c *Conn) Read() ([]byte, bool) {
	for {
		if len(c.appIn) > 0 {
			p := c.appIn[0]
			c.appIn = c.appIn[1:]
			return p, true
		}
		ct, epoch, payload, err := c.readRecord()
		if err != nil {
			return nil, false
		}
		switch ct {
		case recordAppData:
			return payload, true
		case recordHandshake:
			for len(payload) > 0 {
				m, n, err := DecodeMessage(payload)
				if err != nil {
					return nil, false
				}
				m.Epoch = epoch
				payload = payload[n:]
				out, err := c.engine.Handle(m)
				if err != nil {
					return nil, false
				}
				if err := c.writeFlight(out); err != nil {
					return nil, false
				}
			}
		default:
			return nil, false
		}
	}
}

// Close closes the underlying stream.
func (c *Conn) Close() { c.stream.Close() }
