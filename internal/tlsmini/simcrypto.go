package tlsmini

import "crypto/sha256"

// Simulation key exchange and signatures.
//
// Earlier versions of this package used real X25519 and Ed25519. Profiling
// the 21-experiment suite showed the curve arithmetic dominating handshake
// cost (~44% of CPU on the handshake-heavy rows) while contributing nothing
// the paper measures: reports depend only on message *sizes* and virtual
// timings, never on ciphertext bits. These stand-ins preserve everything
// observable — the exact number of deterministic RNG bytes drawn per
// handshake (32 per key share, 32 per identity), every wire size
// (32-byte public values, 64-byte signatures), and the commutativity the
// key schedule relies on — at hash-function cost.
//
// They are NOT cryptographically secure and must never leave the
// simulation: the "shared secret" is computable from the two public
// values alone, and signatures are forgeable by anyone holding the
// public key.

const (
	sigPublicKeySize = 32 // matches ed25519.PublicKeySize
	sigSize          = 64 // matches ed25519.SignatureSize
)

// simDHPub derives the public half of a key share from a 32-byte scalar.
func simDHPub(priv [32]byte) (pub [32]byte) {
	h := sha256.New()
	h.Write([]byte("repro-dh-pub"))
	h.Write(priv[:])
	h.Sum(pub[:0])
	return pub
}

// simDHShared computes the shared secret for (priv, peerPub). Both sides
// arrive at the same value because the hash input orders the two public
// values canonically, mimicking the commutativity of real DH.
func simDHShared(priv [32]byte, peerPub [32]byte) (shared [32]byte) {
	own := simDHPub(priv)
	lo, hi := own, peerPub
	for i := 0; i < 32; i++ {
		if own[i] != peerPub[i] {
			if own[i] > peerPub[i] {
				lo, hi = peerPub, own
			}
			break
		}
	}
	h := sha256.New()
	h.Write([]byte("repro-dh-shared"))
	h.Write(lo[:])
	h.Write(hi[:])
	h.Sum(shared[:0])
	return shared
}

// simSigKey derives the 32-byte public key from a 32-byte seed.
func simSigKey(seed [32]byte) (pub [32]byte) {
	h := sha256.New()
	h.Write([]byte("repro-sig-pub"))
	h.Write(seed[:])
	h.Sum(pub[:0])
	return pub
}

// simSign produces a 64-byte signature over msg. The signature is a
// function of the public key and the message only, so simVerify can
// recompute it; like the private key layout of crypto/ed25519, priv is
// seed || public key.
func simSign(priv []byte, msg []byte) []byte {
	sig := make([]byte, sigSize)
	simSignInto(sig, priv[32:], msg)
	return sig
}

func simSignInto(sig, pub, msg []byte) {
	h := sha256.New()
	h.Write([]byte("repro-sig-1"))
	h.Write(pub)
	h.Write(msg)
	h.Sum(sig[:0])
	h.Reset()
	h.Write([]byte("repro-sig-2"))
	h.Write(pub)
	h.Write(msg)
	h.Sum(sig[:32]) // appends in place, filling sig[32:64]
}

// simVerify checks a simSign signature against the public key.
func simVerify(pub, msg, sig []byte) bool {
	if len(pub) != sigPublicKeySize || len(sig) != sigSize {
		return false
	}
	var want [sigSize]byte
	simSignInto(want[:], pub, msg)
	return hmacEqual(want[:], sig)
}
